// Fault-injection fabric: seeded determinism, probability behaviour,
// scripted triggers, loss degradation, and Fabric plan installation.
#include <gtest/gtest.h>

#include <vector>

#include "emc/netsim/fabric.hpp"
#include "emc/netsim/fault.hpp"

namespace emc::net {
namespace {

std::vector<FaultDecision> decision_stream(const FaultPlan& plan, int n) {
  FaultInjector injector(plan);
  std::vector<FaultDecision> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(injector.next(0, 1, 256));
  }
  return out;
}

bool same_stream(const std::vector<FaultDecision>& a,
                 const std::vector<FaultDecision>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].position != b[i].position ||
        a[i].flip_mask != b[i].flip_mask ||
        a[i].new_length != b[i].new_length) {
      return false;
    }
  }
  return true;
}

TEST(FaultPlan, ValidatesProbabilities) {
  FaultPlan plan;
  plan.p_corrupt = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.p_corrupt = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.p_corrupt = 0.6;
  plan.p_drop = 0.6;  // sum over unity
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.p_drop = 0.4;
  EXPECT_NO_THROW(plan.validate());
  FaultPlan bad;
  bad.p_drop = 2.0;
  EXPECT_THROW(FaultInjector{bad}, std::invalid_argument);
}

TEST(FaultPlan, EnabledOnlyWithFaultsConfigured) {
  EXPECT_FALSE(FaultPlan{}.enabled());
  EXPECT_TRUE((FaultPlan{.p_corrupt = 0.1}.enabled()));
  FaultPlan scripted;
  scripted.triggers.push_back({.nth = 0, .kind = FaultKind::kDrop});
  EXPECT_TRUE(scripted.enabled());
}

TEST(FaultInjector, SameSeedReproducesIdenticalDecisions) {
  FaultPlan plan;
  plan.seed = 42;
  plan.p_corrupt = 0.2;
  plan.p_truncate = 0.2;
  plan.p_duplicate = 0.1;
  plan.p_drop = 0.1;
  EXPECT_TRUE(same_stream(decision_stream(plan, 500),
                          decision_stream(plan, 500)));
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPlan a;
  a.seed = 42;
  a.p_corrupt = 0.5;
  FaultPlan b = a;
  b.seed = 43;
  EXPECT_FALSE(same_stream(decision_stream(a, 500), decision_stream(b, 500)));
}

TEST(FaultInjector, DecisionsIndependentOfLinkInterleaving) {
  // The same (link, message-index) coordinate must draw the same fate
  // no matter what the other links did in between — the property that
  // keeps a fault campaign reproducible across scheduling orders.
  FaultPlan plan;
  plan.seed = 7;
  plan.p_corrupt = 0.3;
  plan.p_drop = 0.3;

  FaultInjector alone(plan);
  std::vector<FaultDecision> solo;
  for (int i = 0; i < 50; ++i) solo.push_back(alone.next(2, 5, 128));

  FaultInjector mixed(plan);
  std::vector<FaultDecision> interleaved;
  for (int i = 0; i < 50; ++i) {
    (void)mixed.next(0, 1, 128);  // traffic on an unrelated link
    interleaved.push_back(mixed.next(2, 5, 128));
    (void)mixed.next(5, 2, 128);  // reverse direction is its own link
  }
  EXPECT_TRUE(same_stream(solo, interleaved));
}

TEST(FaultInjector, CertainDropDropsEverything) {
  FaultInjector injector(FaultPlan{.seed = 1, .p_drop = 1.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.next(0, 1, 64).kind, FaultKind::kDrop);
  }
  EXPECT_EQ(injector.stats().dropped, 100u);
  EXPECT_EQ(injector.stats().messages_seen, 100u);
  EXPECT_EQ(injector.stats().total_injected(), 100u);
}

TEST(FaultInjector, CorruptionPicksValidBitInsidePayload) {
  FaultInjector injector(FaultPlan{.seed = 9, .p_corrupt = 1.0});
  for (int i = 0; i < 200; ++i) {
    const FaultDecision d = injector.next(0, 1, 17);
    ASSERT_EQ(d.kind, FaultKind::kCorrupt);
    EXPECT_LT(d.position, 17u);
    // Exactly one bit set in the mask.
    EXPECT_NE(d.flip_mask, 0);
    EXPECT_EQ(d.flip_mask & (d.flip_mask - 1), 0);
  }
}

TEST(FaultInjector, TruncationAlwaysShortens) {
  FaultInjector injector(FaultPlan{.seed = 3, .p_truncate = 1.0});
  for (int i = 0; i < 200; ++i) {
    const FaultDecision d = injector.next(0, 1, 64);
    ASSERT_EQ(d.kind, FaultKind::kTruncate);
    EXPECT_LT(d.new_length, 64u);
  }
}

TEST(FaultInjector, TriggerFiresOnExactLinkAndIndex) {
  FaultPlan plan;
  plan.triggers.push_back({.src = 0,
                           .dst = 1,
                           .nth = 2,
                           .kind = FaultKind::kTruncate,
                           .new_length = 5});
  FaultInjector injector(plan);
  // Wrong link: never fires, even at index 2.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(injector.next(1, 0, 32).kind, FaultKind::kNone);
  }
  // Right link: fires exactly on the third message, with the scripted
  // truncation length, then never again.
  EXPECT_EQ(injector.next(0, 1, 32).kind, FaultKind::kNone);
  EXPECT_EQ(injector.next(0, 1, 32).kind, FaultKind::kNone);
  const FaultDecision hit = injector.next(0, 1, 32);
  EXPECT_EQ(hit.kind, FaultKind::kTruncate);
  EXPECT_EQ(hit.new_length, 5u);
  EXPECT_EQ(injector.next(0, 1, 32).kind, FaultKind::kNone);
  EXPECT_EQ(injector.stats().truncated, 1u);
}

TEST(FaultInjector, WildcardTriggerMatchesEveryLink) {
  FaultPlan plan;
  plan.triggers.push_back({.nth = 0, .kind = FaultKind::kDrop});
  FaultInjector injector(plan);
  EXPECT_EQ(injector.next(0, 1, 8).kind, FaultKind::kDrop);
  EXPECT_EQ(injector.next(3, 7, 8).kind, FaultKind::kDrop);
  EXPECT_EQ(injector.next(0, 1, 8).kind, FaultKind::kNone);
}

TEST(FaultInjector, LossForbiddenDegradesToCorruption) {
  // On rendezvous pulls, dropping or duplicating the transfer would
  // wedge the parked sender, so those fates become corruption.
  FaultInjector drops(FaultPlan{.seed = 1, .p_drop = 1.0});
  const FaultDecision d = drops.next(0, 1, 64, /*allow_loss=*/false);
  EXPECT_EQ(d.kind, FaultKind::kCorrupt);
  EXPECT_LT(d.position, 64u);

  FaultInjector dups(FaultPlan{.seed = 1, .p_duplicate = 1.0});
  EXPECT_EQ(dups.next(0, 1, 64, /*allow_loss=*/false).kind,
            FaultKind::kCorrupt);
  EXPECT_EQ(dups.stats().corrupted, 1u);
  EXPECT_EQ(dups.stats().duplicated, 0u);
}

TEST(FaultPlan, DelayRequiresPositiveSpikeAndValidProbability) {
  FaultPlan plan;
  plan.p_delay = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.p_delay = 0.3;
  plan.delay_seconds = 0.0;  // a zero-length spike is meaningless
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.delay_seconds = 1e-3;
  EXPECT_NO_THROW(plan.validate());
  EXPECT_TRUE(plan.enabled());
  plan.p_drop = 0.8;  // sum over unity including p_delay
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultInjector, DelaySpikeIsSeededPositiveAndBounded) {
  FaultPlan plan;
  plan.seed = 11;
  plan.p_delay = 1.0;
  plan.delay_seconds = 2e-3;
  FaultInjector injector(plan);
  std::vector<double> spikes;
  for (int i = 0; i < 200; ++i) {
    const FaultDecision d = injector.next(0, 1, 64);
    ASSERT_EQ(d.kind, FaultKind::kDelay);
    EXPECT_GT(d.delay_seconds, 0.0);
    EXPECT_LE(d.delay_seconds, 2e-3);
    spikes.push_back(d.delay_seconds);
  }
  EXPECT_EQ(injector.stats().delayed, 200u);
  EXPECT_EQ(injector.stats().total_injected(), 200u);
  // Same seed replays the exact spike magnitudes.
  FaultInjector again(plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(again.next(0, 1, 64).delay_seconds,
              spikes[static_cast<std::size_t>(i)]);
  }
}

TEST(FaultInjector, DelayTriggerUsesScriptedSpike) {
  FaultPlan plan;
  plan.triggers.push_back({.src = 0,
                           .dst = 1,
                           .nth = 1,
                           .kind = FaultKind::kDelay,
                           .delay_seconds = 5e-3});
  FaultInjector injector(plan);
  EXPECT_EQ(injector.next(0, 1, 32).kind, FaultKind::kNone);
  const FaultDecision hit = injector.next(0, 1, 32);
  EXPECT_EQ(hit.kind, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(hit.delay_seconds, 5e-3);
}

TEST(FaultInjector, DelaySurvivesLossForbiddenPaths) {
  // A latency spike is not loss: it must pass through allow_loss=false
  // untouched (the rendezvous pull just lands late).
  FaultInjector injector(FaultPlan{.seed = 4, .p_delay = 1.0});
  const FaultDecision d = injector.next(0, 1, 64, /*allow_loss=*/false);
  EXPECT_EQ(d.kind, FaultKind::kDelay);
  EXPECT_GT(d.delay_seconds, 0.0);
}

TEST(FaultInjector, EmptyPayloadsAreNeverDamagedInPlace) {
  FaultInjector injector(FaultPlan{.seed = 1, .p_corrupt = 1.0});
  EXPECT_EQ(injector.next(0, 1, 0).kind, FaultKind::kNone);
  FaultInjector trunc(FaultPlan{.seed = 1, .p_truncate = 1.0});
  EXPECT_EQ(trunc.next(0, 1, 0).kind, FaultKind::kNone);
}

TEST(FaultInjector, ResetStatsClearsCounters) {
  FaultInjector injector(FaultPlan{.seed = 1, .p_drop = 1.0});
  (void)injector.next(0, 1, 8);
  EXPECT_EQ(injector.stats().dropped, 1u);
  injector.reset_stats();
  EXPECT_EQ(injector.stats(), FaultStats{});
}

TEST(Fabric, FaultPlanInstallsAndClears) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.ranks_per_node = 1;
  config.inter = ethernet_10g();
  Fabric fabric(config);
  EXPECT_EQ(fabric.faults(), nullptr);  // default plan: no injector

  FaultPlan plan;
  plan.p_drop = 0.5;
  fabric.set_fault_plan(plan);
  ASSERT_NE(fabric.faults(), nullptr);
  EXPECT_DOUBLE_EQ(fabric.faults()->plan().p_drop, 0.5);

  fabric.set_fault_plan(FaultPlan{});  // benign plan removes the hook
  EXPECT_EQ(fabric.faults(), nullptr);
}

TEST(Fabric, ClusterConfigCarriesFaultPlan) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.ranks_per_node = 1;
  config.inter = ethernet_10g();
  config.faults.p_corrupt = 0.25;
  Fabric fabric(config);
  ASSERT_NE(fabric.faults(), nullptr);
  EXPECT_DOUBLE_EQ(fabric.faults()->plan().p_corrupt, 0.25);
}

TEST(Fabric, InvalidFaultPlanRejectedAtConstruction) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.ranks_per_node = 1;
  config.faults.p_drop = 1.5;
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
}

}  // namespace
}  // namespace emc::net
