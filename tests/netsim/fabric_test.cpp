// Network fabric model: profile math, NIC FIFO sharing, contention.
#include <gtest/gtest.h>

#include "emc/netsim/fabric.hpp"

namespace emc::net {
namespace {

ClusterConfig two_nodes(NetworkProfile inter) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.ranks_per_node = 8;
  config.inter = std::move(inter);
  return config;
}

TEST(Profiles, BuiltinsHaveSaneShapes) {
  const NetworkProfile eth = ethernet_10g();
  const NetworkProfile ib = infiniband_qdr_40g();
  const NetworkProfile shm = intra_node();
  EXPECT_LT(ib.latency, eth.latency);      // IB is lower latency
  EXPECT_GT(ib.bandwidth, eth.bandwidth);  // and higher bandwidth
  EXPECT_LT(shm.latency, ib.latency);
  EXPECT_GT(eth.eager_threshold, 0u);
  EXPECT_EQ(ib.contention_threshold, 5);  // Fig. 11 throttling model
  EXPECT_EQ(eth.contention_threshold, 0);
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(profile_by_name("eth").name, "ethernet-10g");
  EXPECT_EQ(profile_by_name("ib").name, "infiniband-qdr-40g");
  EXPECT_EQ(profile_by_name("shm").name, "intra-node-shm");
  EXPECT_THROW((void)profile_by_name("token-ring"), std::invalid_argument);
}

TEST(Fabric, RankToNodeMapping) {
  Fabric fabric(two_nodes(ethernet_10g()));
  EXPECT_EQ(fabric.node_of(0), 0);
  EXPECT_EQ(fabric.node_of(7), 0);
  EXPECT_EQ(fabric.node_of(8), 1);
  EXPECT_EQ(fabric.node_of(15), 1);
  EXPECT_TRUE(fabric.same_node(0, 7));
  EXPECT_FALSE(fabric.same_node(7, 8));
  EXPECT_THROW((void)fabric.node_of(16), std::out_of_range);
  EXPECT_THROW((void)fabric.node_of(-1), std::out_of_range);
}

TEST(Fabric, ProfileSelectionByLocality) {
  Fabric fabric(two_nodes(ethernet_10g()));
  EXPECT_EQ(fabric.profile(0, 1).name, "intra-node-shm");
  EXPECT_EQ(fabric.profile(0, 8).name, "ethernet-10g");
}

TEST(Fabric, SingleTransferTiming) {
  NetworkProfile prof = ethernet_10g();
  Fabric fabric(two_nodes(prof));
  const std::size_t bytes = 1'000'000;
  const PathTimes t = fabric.reserve_path(0, 8, bytes, 0.0);
  const double wire = static_cast<double>(bytes) / prof.bandwidth;
  EXPECT_DOUBLE_EQ(t.start, 0.0);
  EXPECT_NEAR(t.egress_done, prof.per_msg_nic + wire, 1e-12);
  EXPECT_NEAR(t.arrival, t.egress_done + prof.latency, 1e-12);
}

TEST(Fabric, NicSerializesConcurrentTransfers) {
  // Two messages reserved at the same instant leave back to back:
  // FIFO bandwidth sharing, the mechanism behind Fig. 5/6 saturation.
  Fabric fabric(two_nodes(ethernet_10g()));
  const std::size_t bytes = 2'000'000;
  const PathTimes first = fabric.reserve_path(0, 8, bytes, 0.0);
  const PathTimes second = fabric.reserve_path(1, 9, bytes, 0.0);
  EXPECT_DOUBLE_EQ(second.start, first.egress_done);
  EXPECT_GT(second.arrival, first.arrival);
}

TEST(Fabric, IndependentNicsDoNotInterfere) {
  // Opposite directions use different egress NICs.
  Fabric fabric(two_nodes(ethernet_10g()));
  const PathTimes a = fabric.reserve_path(0, 8, 1'000'000, 0.0);
  const PathTimes b = fabric.reserve_path(8, 0, 1'000'000, 0.0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(b.start, 0.0);
}

TEST(Fabric, IntraAndInterNicsAreSeparate) {
  Fabric fabric(two_nodes(ethernet_10g()));
  const PathTimes inter = fabric.reserve_path(0, 8, 1'000'000, 0.0);
  const PathTimes intra = fabric.reserve_path(0, 1, 1'000'000, 0.0);
  EXPECT_DOUBLE_EQ(inter.start, 0.0);
  EXPECT_DOUBLE_EQ(intra.start, 0.0);
}

TEST(Fabric, LateEarliestDelaysStart) {
  Fabric fabric(two_nodes(ethernet_10g()));
  const PathTimes t = fabric.reserve_path(0, 8, 1000, 5.0);
  EXPECT_DOUBLE_EQ(t.start, 5.0);
}

TEST(Fabric, GapLeavesNicIdle) {
  Fabric fabric(two_nodes(ethernet_10g()));
  (void)fabric.reserve_path(0, 8, 1000, 0.0);
  const PathTimes later = fabric.reserve_path(0, 8, 1000, 10.0);
  EXPECT_DOUBLE_EQ(later.start, 10.0);  // no carry-over of idle time
}

TEST(Fabric, ContentionCountsDistinctFlowsNotWindowDepth) {
  // A deep window from ONE sender must not trigger the contention
  // penalty (the paper's Fig. 11 throttling is a multi-flow effect).
  NetworkProfile ib = infiniband_qdr_40g();
  Fabric fabric(two_nodes(ib));
  const std::size_t bytes = 1'000'000;

  double single_flow_busy = 0.0;
  for (int i = 0; i < 64; ++i) {
    const PathTimes t = fabric.reserve_path(0, 8, bytes, 0.0);
    single_flow_busy = t.egress_done - t.start;
  }
  EXPECT_EQ(fabric.active_flows(0, 8, 0.0), 1);
  const double expected = ib.per_msg_nic + 1'000'000.0 / ib.bandwidth;
  EXPECT_NEAR(single_flow_busy, expected, 1e-9);
}

TEST(Fabric, ContentionInflatesBeyondFlowThreshold) {
  NetworkProfile ib = infiniband_qdr_40g();
  Fabric fabric(two_nodes(ib));
  const std::size_t bytes = 1'000'000;

  // Five distinct senders (threshold 5) overlapping at t=0.
  for (int src = 0; src < 5; ++src) {
    (void)fabric.reserve_path(src, 8 + src, bytes, 0.0);
  }
  EXPECT_EQ(fabric.active_flows(0, 8, 0.0), 5);

  const PathTimes contended = fabric.reserve_path(5, 13, bytes, 0.0);
  const double contended_busy = contended.egress_done - contended.start;
  const double plain_busy = ib.per_msg_nic + 1'000'000.0 / ib.bandwidth;
  EXPECT_GT(contended_busy, plain_busy * 1.05);
}

TEST(Fabric, ContentionExpiresWithTime) {
  NetworkProfile ib = infiniband_qdr_40g();
  Fabric fabric(two_nodes(ib));
  for (int src = 0; src < 6; ++src) {
    (void)fabric.reserve_path(src, 8, 1'000'000, 0.0);
  }
  // Far in the future all transfers completed; contention resets.
  const PathTimes t = fabric.reserve_path(0, 8, 1'000'000, 1e6);
  const double busy = t.egress_done - t.start;
  const double expected =
      ib.per_msg_nic + 1'000'000.0 / ib.bandwidth;
  EXPECT_NEAR(busy, expected, 1e-9);
}

TEST(Fabric, RejectsDegenerateClusters) {
  ClusterConfig config;
  config.num_nodes = 0;
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
}

}  // namespace
}  // namespace emc::net
