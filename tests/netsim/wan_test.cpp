// Hostile-network scenario pack: per-link WAN overrides (jitter,
// cross-traffic, per-link faults), multi-hop relayed routes, and the
// construction-time validation of both.
#include <gtest/gtest.h>

#include <vector>

#include "emc/netsim/fabric.hpp"

namespace emc::net {
namespace {

ClusterConfig lan(int nodes, int ranks_per_node = 1) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.ranks_per_node = ranks_per_node;
  return config;
}

ClusterConfig wan_pair(LinkProfile profile) {
  ClusterConfig config = lan(2);
  config.links.push_back({0, 1, profile});
  config.links.push_back({1, 0, std::move(profile)});
  return config;
}

// ---------------------------------------------------------------------
// Construction-time validation (structured usage errors, not UB later).

TEST(WanValidation, RejectsLinkNodesOutOfRange) {
  ClusterConfig config = lan(2);
  config.links.push_back({0, 2, LinkProfile{}});
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
  config.links.back() = {-1, 1, LinkProfile{}};
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
}

TEST(WanValidation, RejectsSelfLinkAndDuplicatePair) {
  ClusterConfig config = lan(2);
  config.links.push_back({1, 1, LinkProfile{}});
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
  config.links.back() = {0, 1, LinkProfile{}};
  config.links.push_back({0, 1, LinkProfile{}});
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
}

TEST(WanValidation, RejectsDegenerateLinkProfiles) {
  LinkProfile bad;
  bad.net.bandwidth = 0.0;
  EXPECT_THROW(Fabric{wan_pair(bad)}, std::invalid_argument);
  bad = LinkProfile{};
  bad.net.latency = -1e-3;
  EXPECT_THROW(Fabric{wan_pair(bad)}, std::invalid_argument);
  bad = LinkProfile{};
  bad.jitter = -1.0;
  EXPECT_THROW(Fabric{wan_pair(bad)}, std::invalid_argument);
}

TEST(WanValidation, RejectsInvalidPerLinkFaultRates) {
  LinkProfile lossy;
  lossy.faults.p_drop = 1.5;
  EXPECT_THROW(Fabric{wan_pair(lossy)}, std::invalid_argument);
  lossy = LinkProfile{};
  lossy.faults.p_drop = 0.6;
  lossy.faults.p_corrupt = 0.6;  // sums past 1
  EXPECT_THROW(Fabric{wan_pair(lossy)}, std::invalid_argument);
}

TEST(WanValidation, RejectsPerLinkRankCrashes) {
  // Crashes are world-scoped scripted events, not link behaviour.
  LinkProfile crashy;
  crashy.faults.crashes.push_back({0, 1.0});
  EXPECT_THROW(Fabric{wan_pair(crashy)}, std::invalid_argument);
}

TEST(WanValidation, RejectsSaturatingCrossTraffic) {
  LinkProfile jammed;
  jammed.cross.period = 1e-3;
  // Mean burst longer than the mean period: utilization >= 1 forever.
  jammed.cross.burst_bytes =
      static_cast<std::size_t>(jammed.net.bandwidth * 2e-3);
  EXPECT_THROW(Fabric{wan_pair(jammed)}, std::invalid_argument);
  jammed.cross.burst_bytes = 100;
  jammed.cross.jitter = 1.0;  // jitter must stay in [0, 1)
  EXPECT_THROW(Fabric{wan_pair(jammed)}, std::invalid_argument);
}

TEST(WanValidation, RejectsBadRoutes) {
  ClusterConfig config = lan(4);
  config.routes.push_back({0, 3, {}});  // empty via
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
  config.routes.back() = {0, 3, {4}};  // via out of range
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
  config.routes.back() = {0, 3, {1, 1}};  // duplicate relay
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
  config.routes.back() = {0, 3, {0}};  // endpoint as relay
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
  config.routes.back() = {0, 0, {1}};  // self route
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
  config.routes.back() = {0, 3, {1}};
  config.routes.push_back({0, 3, {2}});  // duplicate directed pair
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
}

TEST(WanValidation, ValidatesClusterPlanEvenWhenDisabled) {
  // A plan with no enabled probabilities but a nonsense rate is a
  // usage error; it must not slide through just because enabled() is
  // false.
  ClusterConfig config = lan(2);
  config.faults.p_drop = -0.25;
  EXPECT_THROW(Fabric{config}, std::invalid_argument);
  Fabric fabric{lan(2)};
  FaultPlan disabled_bad;
  disabled_bad.p_corrupt = -1.0;
  EXPECT_THROW(fabric.set_fault_plan(disabled_bad), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Per-link overrides: profile selection, jitter, reordering policy.

TEST(WanLinks, OverrideReplacesInterProfile) {
  LinkProfile wan = wan_link(wan_continental(), 0.0, 0.0, 7);
  Fabric fabric{wan_pair(wan)};
  EXPECT_EQ(fabric.profile(0, 1).name, wan_continental().name);
  EXPECT_EQ(fabric.hop_profile(1, 0).name, wan_continental().name);
  // Intra-node traffic is untouched by link overrides.
  Fabric both{[] {
    ClusterConfig c = lan(2, 2);
    c.links.push_back({0, 1, wan_link(wan_metro(), 0.0, 0.0, 1)});
    return c;
  }()};
  EXPECT_EQ(both.profile(0, 1).name, intra_node().name);
  EXPECT_EQ(both.profile(0, 2).name, wan_metro().name);
}

TEST(WanLinks, AsymmetricBandwidthPerDirection) {
  LinkProfile down = wan_link(wan_metro(), 0.0, 0.0, 1);
  LinkProfile up = down;
  up.net.bandwidth = down.net.bandwidth / 10.0;  // slow uplink
  ClusterConfig config = lan(2);
  config.links.push_back({0, 1, down});
  config.links.push_back({1, 0, up});
  Fabric fabric{config};
  const std::size_t bytes = 1'000'000;
  const PathTimes fwd = fabric.reserve_path(0, 1, bytes, 0.0);
  const PathTimes rev = fabric.reserve_path(1, 0, bytes, 0.0);
  EXPECT_GT(rev.egress_done - rev.start, (fwd.egress_done - fwd.start) * 5.0);
}

TEST(WanLinks, JitterDelaysButNeverReordersByDefault) {
  LinkProfile calm = wan_link(wan_metro(), 0.0, 0.0, 11);
  LinkProfile jittery = wan_link(wan_metro(), 0.0, 5e-3, 11);
  Fabric base{wan_pair(calm)};
  Fabric wan{wan_pair(jittery)};
  double last = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double at = 0.1 * i;
    const PathTimes clean = base.reserve_path(0, 1, 1000, at);
    const PathTimes jit = wan.reserve_path(0, 1, 1000, at);
    EXPECT_GE(jit.arrival, clean.arrival);              // jitter only adds
    EXPECT_LT(jit.arrival, clean.arrival + 5e-3 + 1e-12);
    EXPECT_GE(jit.arrival, last);                       // FIFO preserved
    last = jit.arrival;
  }
}

TEST(WanLinks, AllowReorderPermitsInversions) {
  // Huge jitter relative to the send spacing: with the FIFO guard off
  // some later message must overtake an earlier one.
  LinkProfile wild = wan_link(wan_metro(), 0.0, 50e-3, 23);
  wild.allow_reorder = true;
  Fabric fabric{wan_pair(wild)};
  bool inverted = false;
  double last = 0.0;
  for (int i = 0; i < 200; ++i) {
    const PathTimes t = fabric.reserve_path(0, 1, 64, 1e-4 * i);
    if (t.arrival < last) inverted = true;
    last = t.arrival;
  }
  EXPECT_TRUE(inverted);
}

TEST(WanLinks, JitterStreamIsSeededAndDeterministic) {
  const LinkProfile a = wan_link(wan_continental(), 0.0, 10e-3, 5);
  LinkProfile b = a;
  b.seed = 6;
  Fabric run1{wan_pair(a)};
  Fabric run2{wan_pair(a)};
  Fabric other{wan_pair(b)};
  bool seed_matters = false;
  for (int i = 0; i < 50; ++i) {
    const PathTimes x = run1.reserve_path(0, 1, 4096, 0.05 * i);
    const PathTimes y = run2.reserve_path(0, 1, 4096, 0.05 * i);
    EXPECT_DOUBLE_EQ(x.arrival, y.arrival);  // bit-exact replay
    if (other.reserve_path(0, 1, 4096, 0.05 * i).arrival != x.arrival) {
      seed_matters = true;
    }
  }
  EXPECT_TRUE(seed_matters);
}

TEST(WanLinks, PerLinkFaultsShadowClusterPlan) {
  ClusterConfig config = lan(3);
  config.faults.p_drop = 1.0;  // cluster: drop everything
  LinkProfile clean;
  clean.faults.p_corrupt = 1e-9;  // enabled -> replaces cluster plan
  clean.faults.seed = 99;
  config.links.push_back({0, 1, clean});
  Fabric fabric{config};
  ASSERT_NE(fabric.faults_for(0, 1), nullptr);
  EXPECT_NE(fabric.faults_for(0, 1), fabric.faults());
  EXPECT_EQ(fabric.faults_for(0, 2), fabric.faults());
  // The per-link injector essentially never drops.
  const FaultDecision d = fabric.faults_for(0, 1)->next(0, 1, 1024, true);
  EXPECT_NE(d.kind, FaultKind::kDrop);
}

// ---------------------------------------------------------------------
// Cross-traffic: deterministic background load.

TEST(WanCross, BackgroundBurstsDelayForegroundTraffic) {
  LinkProfile quiet = wan_link(wan_metro(), 0.0, 0.0, 3);
  LinkProfile busy = quiet;
  busy.cross.period = 1e-3;
  busy.cross.burst_bytes = 25'000;  // ~20% mean utilization at 1 Gb/s
  busy.cross.seed = 42;
  Fabric calm{wan_pair(quiet)};
  Fabric loaded{wan_pair(busy)};
  double calm_total = 0.0;
  double loaded_total = 0.0;
  for (int i = 0; i < 100; ++i) {
    calm_total += calm.reserve_path(0, 1, 10'000, 2e-3 * i).arrival;
    loaded_total += loaded.reserve_path(0, 1, 10'000, 2e-3 * i).arrival;
  }
  EXPECT_GT(loaded_total, calm_total);
}

TEST(WanCross, ScheduleIsDeterministicAcrossRuns) {
  LinkProfile busy = wan_link(wan_metro(), 0.0, 0.0, 3);
  busy.cross.period = 5e-4;
  busy.cross.burst_bytes = 12'000;
  Fabric run1{wan_pair(busy)};
  Fabric run2{wan_pair(busy)};
  for (int i = 0; i < 100; ++i) {
    const PathTimes a = run1.reserve_path(0, 1, 2048, 1e-3 * i);
    const PathTimes b = run2.reserve_path(0, 1, 2048, 1e-3 * i);
    EXPECT_DOUBLE_EQ(a.start, b.start);
    EXPECT_DOUBLE_EQ(a.arrival, b.arrival);
  }
}

TEST(WanCross, FarFutureReservationDoesNotReplayBacklog) {
  // Jumping far ahead in virtual time must fast-forward the burst
  // schedule in bounded work, and the sub-unity utilization guard
  // keeps the NIC catching up: a message sent late still leaves
  // promptly (within a few burst lengths of its earliest time).
  LinkProfile busy = wan_link(wan_metro(), 0.0, 0.0, 3);
  busy.cross.period = 1e-3;
  busy.cross.burst_bytes = 30'000;
  Fabric fabric{wan_pair(busy)};
  const PathTimes t = fabric.reserve_path(0, 1, 1000, 1000.0);
  EXPECT_GE(t.start, 1000.0);
  EXPECT_LT(t.start, 1000.0 + 0.1);
}

// ---------------------------------------------------------------------
// Multi-hop relayed routes.

ClusterConfig relayed_triangle() {
  ClusterConfig config = lan(3);
  config.routes.push_back({0, 2, {1}});
  config.routes.push_back({2, 0, {1}});
  return config;
}

TEST(WanRoutes, TopologyQueries) {
  Fabric fabric{relayed_triangle()};
  ASSERT_NE(fabric.route_for(0, 2), nullptr);
  EXPECT_EQ(fabric.route_for(0, 1), nullptr);
  EXPECT_TRUE(fabric.relayed(0, 2));
  EXPECT_FALSE(fabric.relayed(0, 1));
  EXPECT_EQ(fabric.relay_count(0, 2), 1);
  EXPECT_EQ(fabric.relay_count(0, 1), 0);
  EXPECT_EQ(fabric.path_nodes(0, 2), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(fabric.path_nodes(0, 1), (std::vector<int>{0, 1}));
  EXPECT_EQ(fabric.path_nodes(0, 0), (std::vector<int>{0}));
}

TEST(WanRoutes, StoreAndForwardArrivesAfterDirect) {
  Fabric routed{relayed_triangle()};
  Fabric direct{lan(3)};
  const std::size_t bytes = 100'000;
  const PathTimes via = routed.reserve_route(0, 2, bytes, 0.0);
  const PathTimes straight = direct.reserve_route(0, 2, bytes, 0.0);
  EXPECT_GT(via.arrival, straight.arrival);  // two serializations + 2x latency
  EXPECT_GT(via.relay_delay, 0.0);
  EXPECT_DOUBLE_EQ(straight.relay_delay, 0.0);
  EXPECT_NEAR(via.arrival - via.relay_delay, straight.arrival, 1e-12);
}

TEST(WanRoutes, PerRelayDelayIsChargedPerIntermediateNode) {
  ClusterConfig config = lan(4);
  config.routes.push_back({0, 3, {1, 2}});
  Fabric fabric{config};
  Fabric fabric2{config};
  const PathTimes free_relay = fabric.reserve_route(0, 3, 1000, 0.0, 0.0);
  const PathTimes paid_relay = fabric2.reserve_route(0, 3, 1000, 0.0, 1e-3);
  EXPECT_NEAR(paid_relay.arrival, free_relay.arrival + 2e-3, 1e-12);
}

TEST(WanRoutes, RouteHopsUseLinkOverrides) {
  ClusterConfig config = relayed_triangle();
  LinkProfile slow = wan_link(wan_continental(), 0.0, 0.0, 1);
  config.links.push_back({1, 2, slow});  // second hop is a WAN link
  Fabric overridden{config};
  Fabric uniform{relayed_triangle()};
  const PathTimes slow_route = overridden.reserve_route(0, 2, 10'000, 0.0);
  const PathTimes fast_route = uniform.reserve_route(0, 2, 10'000, 0.0);
  EXPECT_GT(slow_route.arrival, fast_route.arrival + 0.03);  // 40ms hop
}

TEST(WanRoutes, ExposureAccountingAccumulates) {
  Fabric fabric{relayed_triangle()};
  EXPECT_EQ(fabric.relay_exposures(), 0u);
  fabric.note_relay_exposure(fabric.relay_count(0, 2));
  fabric.note_relay_exposure(fabric.relay_count(0, 1));
  fabric.note_relay_exposure(fabric.relay_count(2, 0));
  EXPECT_EQ(fabric.relay_exposures(), 2u);
}

}  // namespace
}  // namespace emc::net
