// Correctness-verifier semantics: each checker must flag its seeded
// misuse with a structured Diagnostic, a clean program must stay
// diagnostic-free, and enabling verification must not perturb the
// deterministic schedule (identical virtual end times).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "emc/mpi/comm.hpp"
#include "emc/secure_mpi/secure_comm.hpp"

namespace emc {
namespace {

using mpi::Comm;
using mpi::World;
using mpi::WorldConfig;
using verify::Check;
using verify::Diagnostic;
using verify::Severity;
using verify::VerifyError;

WorldConfig verified_world(int nodes, int rpn) {
  WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = rpn;
  config.cluster.inter = net::ethernet_10g();
  config.verify.enabled = true;
  return config;
}

bool has_check(const std::vector<Diagnostic>& diags, Check check) {
  return std::any_of(diags.begin(), diags.end(),
                     [check](const Diagnostic& d) { return d.check == check; });
}

const Diagnostic& find_check(const std::vector<Diagnostic>& diags,
                             Check check) {
  const auto it =
      std::find_if(diags.begin(), diags.end(),
                   [check](const Diagnostic& d) { return d.check == check; });
  if (it == diags.end()) throw std::runtime_error("diagnostic not found");
  return *it;
}

// Above ethernet_10g's 64 KiB eager threshold: rides the rendezvous
// protocol, so the sender parks until the receiver pulls.
constexpr std::size_t kRndvBytes = 128 * 1024;

// ------------------------------------------------------------- deadlock

TEST(VerifyDeadlock, HeadToHeadRendezvousSendsNameTheCycle) {
  // The classic unsafe pattern: both ranks send (rendezvous) first.
  // Neither reaches its recv, the engine finds every process parked,
  // and the verifier's wait-for graph must name the 0 <-> 1 cycle.
  World world(verified_world(2, 1));
  try {
    world.run([](Comm& comm) {
      Bytes mine(kRndvBytes, static_cast<std::uint8_t>(comm.rank()));
      Bytes theirs(kRndvBytes);
      const int peer = 1 - comm.rank();
      comm.send(mine, peer, 7);
      comm.recv(theirs, peer, 7);
    });
    FAIL() << "expected sim::Deadlock";
  } catch (const sim::Deadlock& e) {
    EXPECT_NE(std::string(e.what()).find("wait-for cycle"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("rendezvous send"),
              std::string::npos)
        << e.what();
  }
  const auto diags = world.verifier()->diagnostics();
  ASSERT_TRUE(has_check(diags, Check::kDeadlock));
  const Diagnostic& d = find_check(diags, Check::kDeadlock);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.ranks.size(), 2u);  // the cycle is exactly {0, 1}
}

TEST(VerifyDeadlock, MutualRecvCycleIsExplained) {
  World world(verified_world(2, 1));
  try {
    world.run([](Comm& comm) {
      Bytes buf(8);
      comm.recv(buf, 1 - comm.rank(), 3);  // nobody ever sends
    });
    FAIL() << "expected sim::Deadlock";
  } catch (const sim::Deadlock& e) {
    EXPECT_NE(std::string(e.what()).find("wait-for cycle"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("recv from rank"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(has_check(world.verifier()->diagnostics(), Check::kDeadlock));
}

// ----------------------------------------------------- request lifecycle

TEST(VerifyRequests, LeakedRequestSurfacesAtEndOfRun) {
  // The isend completes on the wire (eager) and the receiver consumes
  // it, but the request object is destroyed without wait(): a leak,
  // reported when the run finishes (a destructor cannot throw).
  World world(verified_world(2, 1));
  try {
    world.run([](Comm& comm) {
      if (comm.rank() == 0) {
        Bytes data = bytes_of("leak-me");
        mpi::Request r = comm.isend(data, 1, 4);
        // r goes out of scope unwaited.
      } else {
        Bytes buf(16);
        comm.recv(buf, 0, 4);
      }
    });
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.diagnostic.check, Check::kRequestLeak);
    EXPECT_EQ(e.diagnostic.ranks, std::vector<int>{0});
    EXPECT_NE(std::string(e.what()).find("destroyed without wait"),
              std::string::npos)
        << e.what();
  }
}

TEST(VerifyRequests, MutatedSendBufferIsCaughtAtWait) {
  // MPI forbids touching a send buffer between isend and wait. The
  // eager path copies at post time so the payload happens to survive,
  // which is exactly why the misuse is invisible without the checker.
  World world(verified_world(2, 1));
  try {
    world.run([](Comm& comm) {
      if (comm.rank() == 0) {
        Bytes data = bytes_of("immutable!");
        mpi::Request r = comm.isend(data, 1, 4);
        data[0] ^= 0xff;  // illegal: request still in flight
        comm.wait(r);
      } else {
        Bytes buf(16);
        comm.recv(buf, 0, 4);
      }
    });
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.diagnostic.check, Check::kSendBufferMutated);
    EXPECT_EQ(e.diagnostic.ranks, std::vector<int>{0});
  }
}

TEST(VerifyRequests, DoubleWaitIsDiagnosed) {
  World world(verified_world(2, 1));
  try {
    world.run([](Comm& comm) {
      const int peer = 1 - comm.rank();
      Bytes mine = bytes_of("pingpong");
      Bytes theirs(mine.size());
      mpi::Request rr = comm.irecv(theirs, peer, 1);
      mpi::Request rs = comm.isend(mine, peer, 1);
      comm.wait(rr);
      comm.wait(rs);
      comm.wait(rs);  // already completed
    });
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.diagnostic.check, Check::kDoubleWait);
  }
}

TEST(VerifyRequests, WithoutVerifierDoubleWaitStillThrowsMpiError) {
  WorldConfig config = verified_world(2, 1);
  config.verify.enabled = false;
  EXPECT_THROW(run_world(config,
                         [](Comm& comm) {
                           const int peer = 1 - comm.rank();
                           Bytes mine = bytes_of("x");
                           Bytes theirs(1);
                           mpi::Request rr = comm.irecv(theirs, peer, 1);
                           mpi::Request rs = comm.isend(mine, peer, 1);
                           comm.wait(rr);
                           comm.wait(rs);
                           comm.wait(rs);
                         }),
               mpi::MpiError);
}

TEST(VerifyRequests, OverlappingInFlightReceiveBuffersAreRejected) {
  World world(verified_world(2, 1));
  try {
    world.run([](Comm& comm) {
      if (comm.rank() == 0) {
        Bytes buf(16);
        MutBytes window(buf);
        mpi::Request r1 = comm.irecv(window.first(12), 1, 1);
        mpi::Request r2 = comm.irecv(window.subspan(8), 1, 2);  // overlaps
        comm.wait(r1);
        comm.wait(r2);
      }
    });
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.diagnostic.check, Check::kOverlappingReceives);
    EXPECT_EQ(e.diagnostic.ranks, std::vector<int>{0});
  }
}

// ----------------------------------------------------------- collectives

TEST(VerifyCollectives, KindMismatchNamesBothRanks) {
  World world(verified_world(2, 1));
  try {
    world.run([](Comm& comm) {
      if (comm.rank() == 0) {
        Bytes data = bytes_of("payload!");
        comm.bcast(data, 0);
      } else {
        comm.barrier();  // diverged: must be flagged before any wire traffic
      }
    });
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.diagnostic.check, Check::kCollectiveMismatch);
    ASSERT_EQ(e.diagnostic.ranks.size(), 2u);  // diverging rank first
    const std::string what = e.what();
    EXPECT_NE(what.find("bcast"), std::string::npos) << what;
    EXPECT_NE(what.find("barrier"), std::string::npos) << what;
  }
  EXPECT_GE(world.verifier()->error_count(), 1u);
}

TEST(VerifyCollectives, RootMismatchIsDiagnosed) {
  World world(verified_world(2, 1));
  try {
    world.run([](Comm& comm) {
      Bytes part = bytes_of("blk");
      Bytes all(2 * part.size());
      comm.gather(part, all, /*root=*/comm.rank());  // each picks itself
    });
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.diagnostic.check, Check::kCollectiveMismatch);
    EXPECT_NE(std::string(e.what()).find("root"), std::string::npos)
        << e.what();
  }
}

TEST(VerifyCollectives, BlockSizeMismatchIsDiagnosed) {
  World world(verified_world(2, 1));
  try {
    world.run([](Comm& comm) {
      const std::size_t block = comm.rank() == 0 ? 4u : 8u;
      Bytes part(block, 0xab);
      Bytes all(2 * block);
      comm.allgather(part, all);
    });
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.diagnostic.check, Check::kCollectiveMismatch);
  }
}

TEST(VerifyCollectives, BcastUndersizedNonRootBufferIsDiagnosed) {
  World world(verified_world(2, 1));
  try {
    world.run([](Comm& comm) {
      Bytes data(comm.rank() == 0 ? 64u : 16u);  // non-root cannot hold it
      comm.bcast(data, 0);
    });
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.diagnostic.check, Check::kCollectiveMismatch);
    EXPECT_NE(std::string(e.what()).find("broadcasts"), std::string::npos)
        << e.what();
  }
}

TEST(VerifyCollectives, OversizedNonRootBcastBufferIsLegal) {
  // The plain layer forwards the *received* byte count, so a non-root
  // buffer larger than the payload is fine and must not be flagged.
  World world(verified_world(2, 1));
  world.run([](Comm& comm) {
    Bytes data(comm.rank() == 0 ? 16u : 64u);
    comm.bcast(data, 0);
  });
  EXPECT_TRUE(world.verifier()->clean());
}

// ------------------------------------------------------ unmatched audit

TEST(VerifyUnmatched, UnconsumedMessageIsAWarningNotAnError) {
  World world(verified_world(2, 1));
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      Bytes data = bytes_of("nobody wants this");
      comm.send(data, 1, 9);  // eager: completes without a receiver
    }
  });  // must not throw: warnings never fail-fast
  const auto diags = world.verifier()->diagnostics();
  ASSERT_TRUE(has_check(diags, Check::kUnmatchedMessage));
  const Diagnostic& d = find_check(diags, Check::kUnmatchedMessage);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("never received"), std::string::npos) << d.message;
  EXPECT_TRUE(world.verifier()->clean());  // warning != error
}

// --------------------------------------------- clean replay + secure path

void exercise_everything(Comm& comm) {
  const int n = comm.size();
  const int peer = (comm.rank() + 1) % n;
  const int from = (comm.rank() - 1 + n) % n;

  // P2p: eager, rendezvous, nonblocking pairs.
  Bytes small = bytes_of("eager");
  Bytes big(kRndvBytes, static_cast<std::uint8_t>(comm.rank()));
  Bytes in_small(small.size());
  Bytes in_big(big.size());
  comm.sendrecv(small, peer, 1, in_small, from, 1);
  std::vector<mpi::Request> reqs;
  reqs.push_back(comm.irecv(in_big, from, 2));
  reqs.push_back(comm.isend(big, peer, 2));
  comm.waitall(reqs);

  // Every collective once.
  comm.barrier();
  Bytes bc(256, 0x5a);
  comm.bcast(bc, 0);
  Bytes part(64, static_cast<std::uint8_t>(comm.rank()));
  Bytes all(part.size() * static_cast<std::size_t>(n));
  comm.allgather(part, all);
  comm.gather(part, all, 0);
  Bytes rpart(part.size());
  comm.scatter(all, rpart, 0);
  Bytes a2a_in(all.size());
  comm.alltoall(all, a2a_in, part.size());
}

TEST(VerifyClean, FullWorkloadIsDiagnosticFreeAndReplaysExactly) {
  WorldConfig plain_config = verified_world(2, 2);
  plain_config.verify.enabled = false;
  const double baseline = run_world(plain_config, exercise_everything);

  World world(verified_world(2, 2));
  const double verified = world.run(exercise_everything);
  EXPECT_TRUE(world.verifier()->clean());
  EXPECT_TRUE(world.verifier()->diagnostics().empty());
  // Verification hooks never advance virtual time: bit-equal end time.
  EXPECT_EQ(verified, baseline);
}

TEST(VerifyClean, SecureWorkloadIsDiagnosticFree) {
  WorldConfig config = verified_world(2, 1);
  secure::SecureConfig sec;
  sec.bind_context = true;
  sec.replay_window = 4;
  sec.charge_crypto = false;  // timing-independent determinism
  World world(config);
  world.run([&sec](Comm& comm) {
    secure::SecureComm secure(comm, sec);
    const int peer = 1 - comm.rank();
    Bytes mine = bytes_of("secure traffic");
    Bytes theirs(mine.size());
    secure.sendrecv(mine, peer, 1, theirs, peer, 1);
    secure.barrier();
    Bytes bc(128, 0x11);
    secure.bcast(bc, 0);
    Bytes part(32, static_cast<std::uint8_t>(comm.rank()));
    Bytes all(64);
    secure.allgather(part, all);
  });
  EXPECT_TRUE(world.verifier()->clean());
  EXPECT_TRUE(world.verifier()->diagnostics().empty());
}

TEST(VerifySecure, EarlyValidationRejectsBeforeSealing) {
  World world(verified_world(2, 1));
  EXPECT_THROW(world.run([](Comm& comm) {
                 secure::SecureComm secure(comm, {});
                 Bytes data = bytes_of("x");
                 secure.send(data, /*dst=*/5, /*tag=*/1);  // no such rank
               }),
               mpi::MpiError);

  World world2(verified_world(2, 1));
  try {
    world2.run([](Comm& comm) {
      secure::SecureComm secure(comm, {});
      const int peer = 1 - comm.rank();
      Bytes mine = bytes_of("pp");
      Bytes theirs(mine.size());
      mpi::Request rr = secure.irecv(theirs, peer, 1);
      mpi::Request rs = secure.isend(mine, peer, 1);
      secure.wait(rr);
      secure.wait(rs);
      secure.wait(rs);  // double wait through the secure layer
    });
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_EQ(e.diagnostic.check, Check::kDoubleWait);
  }
}

// ------------------------------------------------- schedule perturbation

TEST(VerifyPerturb, CleanProgramSurvivesAllTieBreakOrders) {
  WorldConfig config = verified_world(2, 2);
  config.verify.enabled = false;  // run_perturbed force-enables it
  const auto runs = run_perturbed(config, exercise_everything, 4, /*seed=*/7);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].salt, 0u);  // run 0 is always the FIFO baseline
  for (const auto& r : runs) {
    EXPECT_FALSE(r.failed) << r.error;
    EXPECT_TRUE(r.diagnostics.empty());
    EXPECT_GT(r.end_time, 0.0);
  }
}

TEST(VerifyPerturb, SameSeedReproducesSaltsAndTimes) {
  WorldConfig config = verified_world(2, 1);
  const auto body = [](Comm& comm) {
    const int peer = 1 - comm.rank();
    Bytes mine = bytes_of("deterministic");
    Bytes theirs(mine.size());
    comm.sendrecv(mine, peer, 1, theirs, peer, 1);
  };
  const auto a = run_perturbed(config, body, 3, 42);
  const auto b = run_perturbed(config, body, 3, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].salt, b[i].salt);
    EXPECT_EQ(a[i].end_time, b[i].end_time);
    EXPECT_EQ(a[i].failed, b[i].failed);
  }
}

TEST(VerifyPerturb, DeadlockIsFoundUnderPerturbationToo) {
  WorldConfig config = verified_world(2, 1);
  const auto runs = run_perturbed(
      config,
      [](Comm& comm) {
        Bytes buf(8);
        comm.recv(buf, 1 - comm.rank(), 3);
      },
      2, 1);
  for (const auto& r : runs) {
    EXPECT_TRUE(r.failed);
    EXPECT_TRUE(has_check(r.diagnostics, Check::kDeadlock));
  }
}

// --------------------------------------------------------- fail-fast off

TEST(VerifyCollect, FailFastOffCollectsInsteadOfThrowing) {
  WorldConfig config = verified_world(2, 1);
  config.verify.fail_fast = false;
  World world(config);
  world.run([](Comm& comm) {  // must complete despite the misuse
    const int peer = 1 - comm.rank();
    Bytes mine = bytes_of("pp");
    Bytes theirs(mine.size());
    mpi::Request rr = comm.irecv(theirs, peer, 1);
    mpi::Request rs = comm.isend(mine, peer, 1);
    comm.wait(rr);
    comm.wait(rs);
    if (comm.rank() == 0) {
      Bytes leak = bytes_of("leaked");
      mpi::Request r = comm.isend(leak, peer, 2);  // never waited
      Bytes sink(16);
      comm.recv(sink, peer, 3);
    } else {
      Bytes sink(16);
      comm.recv(sink, peer, 2);
      Bytes data = bytes_of("reply");
      comm.send(data, peer, 3);
    }
  });
  const auto diags = world.verifier()->diagnostics();
  EXPECT_TRUE(has_check(diags, Check::kRequestLeak));
  EXPECT_FALSE(world.verifier()->clean());
}

}  // namespace
}  // namespace emc
