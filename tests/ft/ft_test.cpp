// ULFM-style fault tolerance: scripted rank crashes, revocation
// propagation, survivor agreement (including further crashes while
// the protocol runs), shrink + re-rank, secure rekey, the fail-closed
// nonce guard, and the keeps-posting-after-revoke diagnostic.
//
// Every scenario is seeded and virtual-time scripted, so recovery is
// deterministic: the same config reproduces the same survivor masks,
// epochs, and end times bit-for-bit.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <functional>

#include "emc/ft/recover.hpp"
#include "emc/mpi/comm.hpp"
#include "emc/secure_mpi/secure_comm.hpp"

namespace emc::ft {
namespace {

using mpi::Comm;
using mpi::World;
using mpi::WorldConfig;

WorldConfig ft_world(int ranks, std::vector<net::RankCrash> crashes) {
  WorldConfig config;
  config.cluster.num_nodes = ranks;
  config.cluster.ranks_per_node = 1;
  config.cluster.inter = net::ethernet_10g();
  config.cluster.faults.crashes = std::move(crashes);
  return config;
}

/// Repeats @p op until the communicator's epoch is revoked; returns
/// the RevokedError every survivor eventually observes. The loop bound
/// only guards against a broken revocation path — ordinarily the
/// failure detector fires within detect_timeout of the crash.
RevokedError await_revocation(const std::function<void()>& op) {
  for (int it = 0; it < 100000; ++it) {
    try {
      op();
    } catch (const RevokedError& e) {
      return e;
    }
  }
  throw std::runtime_error("revocation never arrived");
}

/// What one survivor observed across revoke -> agree -> shrink.
struct Outcome {
  bool recovered = false;
  int dead_rank = -2;
  std::uint64_t mask = 0;
  std::uint64_t epoch = 0;
  int new_rank = -1;
  int new_size = 0;
  double revoked_at = -1.0;
  bool data_ok = false;
};

TEST(FtRecovery, MidAllgatherCrashShrinksAndFinishes) {
  std::array<Outcome, 4> out{};
  run_world(ft_world(4, {{.rank = 2, .at = 2e-4}}), [&](Comm& comm) {
    Bytes part(8, static_cast<std::uint8_t>(comm.rank()));
    Bytes all(part.size() * static_cast<std::size_t>(comm.size()));
    const RevokedError err =
        await_revocation([&] { comm.allgather(part, all); });

    const std::uint64_t mask = agree(comm);
    const std::unique_ptr<Comm> next = shrink(comm, mask);

    // Post-recovery workload on the shrunken communicator: every
    // survivor must see every other survivor's fresh contribution.
    Bytes spart(8, static_cast<std::uint8_t>(0x40 + next->rank()));
    Bytes sall(spart.size() * static_cast<std::size_t>(next->size()));
    next->allgather(spart, sall);
    bool ok = true;
    for (int r = 0; r < next->size(); ++r) {
      for (std::size_t b = 0; b < 8; ++b) {
        ok &= sall[static_cast<std::size_t>(r) * 8 + b] ==
              static_cast<std::uint8_t>(0x40 + r);
      }
    }

    Outcome& o = out[static_cast<std::size_t>(comm.rank())];
    o.recovered = true;
    o.dead_rank = err.dead_rank;
    o.mask = mask;
    o.epoch = next->epoch();
    o.new_rank = next->rank();
    o.new_size = next->size();
    o.revoked_at = err.revoked_at;
    o.data_ok = ok;
  });

  for (const int r : {0, 1, 3}) {
    const Outcome& o = out[static_cast<std::size_t>(r)];
    EXPECT_TRUE(o.recovered) << "rank " << r;
    EXPECT_EQ(o.dead_rank, 2) << "rank " << r;
    EXPECT_EQ(o.mask, 0b1011u) << "rank " << r;
    EXPECT_EQ(o.new_size, 3) << "rank " << r;
    EXPECT_TRUE(o.data_ok) << "rank " << r;
    // Every survivor observed the same revocation instant and got the
    // same fresh epoch.
    EXPECT_EQ(o.revoked_at, out[0].revoked_at) << "rank " << r;
    EXPECT_EQ(o.epoch, out[0].epoch) << "rank " << r;
  }
  // Re-ranking is dense over the survivor set.
  EXPECT_EQ(out[0].new_rank, 0);
  EXPECT_EQ(out[1].new_rank, 1);
  EXPECT_EQ(out[3].new_rank, 2);
  // The dead rank never recovers.
  EXPECT_FALSE(out[2].recovered);
}

TEST(FtRecovery, BcastRootCrashPromotesNewRoot) {
  std::array<Outcome, 3> out{};
  run_world(ft_world(3, {{.rank = 0, .at = 1e-4}}), [&](Comm& comm) {
    Bytes data(16, static_cast<std::uint8_t>(comm.rank() == 0 ? 0xAB : 0));
    (void)await_revocation([&] { comm.bcast(data, 0); });

    const std::uint64_t mask = agree(comm);
    const std::unique_ptr<Comm> next = shrink(comm, mask);

    // The old root is gone; the shrunken communicator's rank 0 (old
    // rank 1) takes over.
    Bytes payload(16, static_cast<std::uint8_t>(
                          next->rank() == 0 ? 0xCD : 0));
    next->bcast(payload, 0);
    bool ok = true;
    for (const std::uint8_t b : payload) ok &= b == 0xCD;

    Outcome& o = out[static_cast<std::size_t>(comm.rank())];
    o.recovered = true;
    o.mask = mask;
    o.new_rank = next->rank();
    o.new_size = next->size();
    o.data_ok = ok;
  });

  for (const int r : {1, 2}) {
    const Outcome& o = out[static_cast<std::size_t>(r)];
    EXPECT_TRUE(o.recovered) << "rank " << r;
    EXPECT_EQ(o.mask, 0b110u) << "rank " << r;
    EXPECT_EQ(o.new_size, 2) << "rank " << r;
    EXPECT_EQ(o.new_rank, r - 1) << "rank " << r;
    EXPECT_TRUE(o.data_ok) << "rank " << r;
  }
  EXPECT_FALSE(out[0].recovered);
}

TEST(FtRecovery, GatherRootCrashDrainsCleanly) {
  // Rendezvous-sized blocks (above the 64 KiB eager threshold): an
  // eager gather contribution to a dead root is fire-and-forget, but a
  // rendezvous sender parks on the handshake and is exactly where the
  // bounded ft wait must detect the root's death instead of hanging.
  constexpr std::size_t kBlock = 96 * 1024;
  std::array<Outcome, 3> out{};
  run_world(ft_world(3, {{.rank = 0, .at = 1e-4}}), [&](Comm& comm) {
    Bytes part(kBlock, static_cast<std::uint8_t>(comm.rank()));
    Bytes all(part.size() * static_cast<std::size_t>(comm.size()));
    (void)await_revocation([&] { comm.gather(part, all, 0); });

    const std::uint64_t mask = agree(comm);
    const std::unique_ptr<Comm> next = shrink(comm, mask);

    Bytes spart(8, static_cast<std::uint8_t>(0x60 + next->rank()));
    Bytes sall(spart.size() * static_cast<std::size_t>(next->size()));
    next->gather(spart, sall, 0);
    bool ok = true;
    if (next->rank() == 0) {
      for (int r = 0; r < next->size(); ++r) {
        for (std::size_t b = 0; b < 8; ++b) {
          ok &= sall[static_cast<std::size_t>(r) * 8 + b] ==
                static_cast<std::uint8_t>(0x60 + r);
        }
      }
    }

    Outcome& o = out[static_cast<std::size_t>(comm.rank())];
    o.recovered = true;
    o.mask = mask;
    o.new_size = next->size();
    o.data_ok = ok;
  });

  for (const int r : {1, 2}) {
    const Outcome& o = out[static_cast<std::size_t>(r)];
    EXPECT_TRUE(o.recovered) << "rank " << r;
    EXPECT_EQ(o.mask, 0b110u) << "rank " << r;
    EXPECT_EQ(o.new_size, 2) << "rank " << r;
    EXPECT_TRUE(o.data_ok) << "rank " << r;
  }
}

TEST(FtRecovery, ShrinksToSingleRank) {
  Outcome out{};
  run_world(ft_world(2, {{.rank = 1, .at = 1e-4}}), [&](Comm& comm) {
    if (comm.rank() == 1) {
      // Burn virtual time until the scripted crash kills this rank.
      while (true) comm.process().advance(1e-5);
    }
    Bytes part(4, 0x11);
    Bytes all(part.size() * static_cast<std::size_t>(comm.size()));
    (void)await_revocation([&] { comm.allgather(part, all); });

    const std::uint64_t mask = agree(comm);  // alone: agrees with itself
    const std::unique_ptr<Comm> next = shrink(comm, mask);

    // A lone survivor still has a working communicator.
    Bytes solo(4, 0x22);
    next->bcast(solo, 0);
    Bytes gathered(4);
    next->allgather(solo, gathered);

    out.recovered = true;
    out.mask = mask;
    out.new_rank = next->rank();
    out.new_size = next->size();
    out.data_ok = gathered == solo;
  });

  EXPECT_TRUE(out.recovered);
  EXPECT_EQ(out.mask, 0b1u);
  EXPECT_EQ(out.new_rank, 0);
  EXPECT_EQ(out.new_size, 1);
  EXPECT_TRUE(out.data_ok);
}

TEST(FtRecovery, CoordinatorDeathDuringAgreePromotesSuccessor) {
  // Rank 1 dies first (triggers the revocation); rank 0 — the lowest
  // survivor, hence the first agreement coordinator — dies before the
  // revocation is even detectable. Followers start the protocol
  // against a dead coordinator, suspect it, and promote rank 2.
  std::array<Outcome, 4> out{};
  WorldConfig config =
      ft_world(4, {{.rank = 1, .at = 2e-4}, {.rank = 0, .at = 3e-4}});
  World world(config);
  world.run([&](Comm& comm) {
    Bytes part(8, static_cast<std::uint8_t>(comm.rank()));
    Bytes all(part.size() * static_cast<std::size_t>(comm.size()));
    (void)await_revocation([&] { comm.allgather(part, all); });

    const std::uint64_t mask = agree(comm);
    const std::unique_ptr<Comm> next = shrink(comm, mask);

    Bytes spart(8, static_cast<std::uint8_t>(0x50 + next->rank()));
    Bytes sall(spart.size() * static_cast<std::size_t>(next->size()));
    next->allgather(spart, sall);
    bool ok = true;
    for (int r = 0; r < next->size(); ++r) {
      for (std::size_t b = 0; b < 8; ++b) {
        ok &= sall[static_cast<std::size_t>(r) * 8 + b] ==
              static_cast<std::uint8_t>(0x50 + r);
      }
    }

    Outcome& o = out[static_cast<std::size_t>(comm.rank())];
    o.recovered = true;
    o.mask = mask;
    o.new_rank = next->rank();
    o.new_size = next->size();
    o.data_ok = ok;
  });

  for (const int r : {2, 3}) {
    const Outcome& o = out[static_cast<std::size_t>(r)];
    EXPECT_TRUE(o.recovered) << "rank " << r;
    EXPECT_EQ(o.mask, 0b1100u) << "rank " << r;
    EXPECT_EQ(o.new_size, 2) << "rank " << r;
    EXPECT_EQ(o.new_rank, r - 2) << "rank " << r;
    EXPECT_TRUE(o.data_ok) << "rank " << r;
  }
  EXPECT_FALSE(out[0].recovered);
  EXPECT_FALSE(out[1].recovered);

  // The agreement log shows the failed attempt against the dead
  // coordinator and exactly one committed decision.
  const std::vector<AgreeLogEntry>& log = world.ft_state()->agree_log();
  int committed = 0;
  int failed = 0;
  for (const AgreeLogEntry& e : log) {
    if (e.committed) {
      ++committed;
      EXPECT_EQ(e.mask, 0b1100u);
      EXPECT_EQ(e.coordinator, 2);
    } else {
      ++failed;
      EXPECT_EQ(e.coordinator, 0);  // the attempt the crash aborted
    }
  }
  EXPECT_EQ(committed, 1);
  EXPECT_GE(failed, 1);
}

TEST(FtRecovery, RecoveryIsDeterministicAcrossRuns) {
  struct RunResult {
    double end_time = 0.0;
    std::array<Outcome, 4> out{};
  };
  const auto one_run = [] {
    RunResult rr;
    rr.end_time = mpi::run_world(
        ft_world(4, {{.rank = 2, .at = 2e-4}}), [&rr](Comm& comm) {
          Bytes part(8, static_cast<std::uint8_t>(comm.rank()));
          Bytes all(part.size() * static_cast<std::size_t>(comm.size()));
          const RevokedError err =
              await_revocation([&] { comm.allgather(part, all); });
          const std::uint64_t mask = agree(comm);
          const std::unique_ptr<Comm> next = shrink(comm, mask);
          Outcome& o = rr.out[static_cast<std::size_t>(comm.rank())];
          o.recovered = true;
          o.mask = mask;
          o.epoch = next->epoch();
          o.revoked_at = err.revoked_at;
        });
    return rr;
  };
  const RunResult a = one_run();
  const RunResult b = one_run();
  EXPECT_EQ(a.end_time, b.end_time);  // bit-exact virtual time
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(a.out[r].recovered, b.out[r].recovered) << "rank " << r;
    EXPECT_EQ(a.out[r].mask, b.out[r].mask) << "rank " << r;
    EXPECT_EQ(a.out[r].epoch, b.out[r].epoch) << "rank " << r;
    EXPECT_EQ(a.out[r].revoked_at, b.out[r].revoked_at) << "rank " << r;
  }
}

TEST(FtRecovery, EpochIsolationBlocksStragglers) {
  // An op on the revoked parent after recovery still fails with
  // RevokedError — the old epoch stays revoked forever — while the
  // shrunken communicator keeps working.
  run_world(ft_world(2, {{.rank = 1, .at = 1e-4}}), [](Comm& comm) {
    if (comm.rank() == 1) {
      while (true) comm.process().advance(1e-5);
    }
    Bytes buf(4);
    (void)await_revocation([&] { (void)comm.recv(buf, 1, 3); });
    const std::unique_ptr<Comm> next = shrink(comm, agree(comm));
    EXPECT_THROW(comm.send(buf, 1, 3), RevokedError);
    next->barrier();  // fresh epoch unaffected
    EXPECT_THROW((void)comm.recv(buf, 1, 3), RevokedError);
  });
}

TEST(FtRecovery, SecureRekeyAfterShrink) {
  static const crypto::DhGroup& dh = [] {
    static crypto::DhGroup g = crypto::generate_test_group(192, 42);
    return g;
  }();

  std::array<Outcome, 3> out{};
  std::array<std::uint64_t, 3> rekeys{};
  WorldConfig config = ft_world(3, {{.rank = 1, .at = 2e-4}});
  secure::SecureConfig sc;
  sc.nonce_mode = secure::NonceMode::kCounter;
  secure::run_secure_world(config, sc, [&](secure::SecureComm& sec) {
    Comm& comm = sec.plain();
    Bytes part(8, static_cast<std::uint8_t>(comm.rank()));
    Bytes all(part.size() * static_cast<std::size_t>(comm.size()));
    (void)await_revocation([&] { sec.allgather(part, all); });

    const std::uint64_t mask = agree(comm);
    SecureRecovery rec = shrink_secure(comm, mask, sec.config(), dh);

    // Encrypted traffic over the recovered communicator, under the
    // freshly exchanged key.
    Bytes spart(8, static_cast<std::uint8_t>(0x70 + rec.comm->rank()));
    Bytes sall(spart.size() * static_cast<std::size_t>(rec.comm->size()));
    rec.secure->allgather(spart, sall);
    bool ok = true;
    for (int r = 0; r < rec.comm->size(); ++r) {
      for (std::size_t b = 0; b < 8; ++b) {
        ok &= sall[static_cast<std::size_t>(r) * 8 + b] ==
              static_cast<std::uint8_t>(0x70 + r);
      }
    }
    // The recovered session key is fresh, not the pre-crash key.
    EXPECT_NE(rec.secure->config().key, sec.config().key);

    Outcome& o = out[static_cast<std::size_t>(comm.rank())];
    o.recovered = true;
    o.mask = mask;
    o.new_size = rec.comm->size();
    o.data_ok = ok;
    rekeys[static_cast<std::size_t>(comm.rank())] =
        rec.secure->counters().rekeys;
  });

  for (const int r : {0, 2}) {
    const Outcome& o = out[static_cast<std::size_t>(r)];
    EXPECT_TRUE(o.recovered) << "rank " << r;
    EXPECT_EQ(o.mask, 0b101u) << "rank " << r;
    EXPECT_EQ(o.new_size, 2) << "rank " << r;
    EXPECT_TRUE(o.data_ok) << "rank " << r;
    EXPECT_EQ(rekeys[static_cast<std::size_t>(r)], 1u) << "rank " << r;
  }
}

TEST(FtValidation, RejectsBadCrashSpecs) {
  const auto reject = [](std::vector<net::RankCrash> crashes) {
    WorldConfig config = ft_world(2, std::move(crashes));
    EXPECT_THROW(
        {
          World world(config);
          (void)world;
        },
        std::invalid_argument);
  };
  reject({{.rank = 5, .at = 1.0}});    // rank out of range
  reject({{.rank = -1, .at = 1.0}});   // negative rank
  reject({{.rank = 0, .at = -1.0}});   // negative crash time
  reject({{.rank = 0, .at = std::numeric_limits<double>::infinity()}});
  reject({{.rank = 0, .at = std::nan("")}});
  reject({{.rank = 0, .at = 1.0}, {.rank = 0, .at = 2.0}});  // twice

  WorldConfig config = ft_world(2, {{.rank = 0, .at = 1.0}});
  config.ft.detect_timeout = 0.0;
  EXPECT_THROW(
      {
        World world(config);
        (void)world;
      },
      std::invalid_argument);
}

TEST(FtValidation, AgreeAndShrinkRequireFtLayer) {
  run_world(ft_world(1, {}), [](Comm& comm) {
    EXPECT_THROW((void)agree(comm), mpi::MpiError);
    EXPECT_THROW((void)shrink(comm, 0b1), mpi::MpiError);
  });
}

TEST(FtVerify, KeepsPostingAfterRevokeIsDiagnosed) {
  WorldConfig config = ft_world(2, {{.rank = 1, .at = 1e-4}});
  config.verify.enabled = true;
  config.verify.fail_fast = false;
  World world(config);
  world.run([](Comm& comm) {
    if (comm.rank() == 1) {
      while (true) comm.process().advance(1e-5);
    }
    Bytes buf(4);
    // First op observes the death and revokes the epoch.
    EXPECT_THROW((void)comm.recv(buf, 1, 7), RevokedError);
    // An application that swallows RevokedError and keeps posting is
    // flagged on the second post.
    EXPECT_THROW(comm.send(buf, 1, 7), RevokedError);
    EXPECT_THROW(comm.send(buf, 1, 7), RevokedError);
  });
  bool flagged = false;
  for (const verify::Diagnostic& d : world.verifier()->diagnostics()) {
    flagged |= d.check == verify::Check::kRevokeIgnored;
  }
  EXPECT_TRUE(flagged);
  // The revocation debris itself must not raise unmatched-message
  // noise or errors.
  EXPECT_EQ(world.verifier()->error_count(), 0u);
}

TEST(NonceGuard, FailsClosedAtThresholdAndRekeyRestarts) {
  WorldConfig config = ft_world(2, {});
  secure::SecureConfig sc;
  sc.nonce_mode = secure::NonceMode::kCounter;
  sc.nonce_rekey_threshold = 2;
  const Bytes fresh_key(32, 0x7E);
  secure::run_secure_world(config, sc, [&](secure::SecureComm& sec) {
    Bytes msg = bytes_of("payload!");
    Bytes buf(msg.size());
    if (sec.rank() == 0) {
      sec.send(msg, 1, 1);
      sec.send(msg, 1, 2);
      // Third seal under the same key would cross the threshold: the
      // communicator fails closed instead of risking nonce reuse.
      EXPECT_THROW(sec.send(msg, 1, 3), secure::NonceExhaustedError);
      sec.rekey(fresh_key);
      sec.send(msg, 1, 3);  // counter restarted under the new key
    } else {
      (void)sec.recv(buf, 0, 1);
      (void)sec.recv(buf, 0, 2);
      sec.rekey(fresh_key);
      const mpi::Status st = sec.recv(buf, 0, 3);
      EXPECT_EQ(st.bytes, msg.size());
      EXPECT_EQ(buf, msg);
    }
    EXPECT_EQ(sec.counters().rekeys, 1u);
  });
}

TEST(NonceGuard, RandomModeCountsInvocationsToo) {
  WorldConfig config = ft_world(2, {});
  secure::SecureConfig sc;
  sc.nonce_mode = secure::NonceMode::kRandom;
  sc.nonce_rekey_threshold = 1;
  secure::run_secure_world(config, sc, [&](secure::SecureComm& sec) {
    Bytes msg = bytes_of("once");
    Bytes buf(msg.size());
    if (sec.rank() == 0) {
      sec.send(msg, 1, 1);
      EXPECT_THROW(sec.send(msg, 1, 2), secure::NonceExhaustedError);
    } else {
      (void)sec.recv(buf, 0, 1);
    }
  });
}

}  // namespace
}  // namespace emc::ft
