// AES-CCM properties: roundtrip, tamper rejection, AAD binding,
// determinism, and divergence from GCM under identical inputs.
// (No public KAT uses the 12-byte-nonce/16-byte-tag profile this
// library fixes for wire compatibility, so correctness rests on the
// structural properties below plus the audited SP 800-38C formatting.)
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/crypto/ccm.hpp"
#include "emc/crypto/provider.hpp"

namespace emc::crypto {
namespace {

class CcmRoundtripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CcmRoundtripTest, SealOpenRoundtrip) {
  Xoshiro256 rng(GetParam() + 0xCC);
  const AeadKeyPtr key = make_aes_ccm(demo_key(32));
  const Bytes pt = rng.bytes(GetParam());
  const Bytes nonce = rng.bytes(kGcmNonceBytes);
  const Bytes aad = rng.bytes(GetParam() % 40);

  Bytes wire(pt.size() + kGcmTagBytes);
  key->seal(nonce, aad, pt, wire);
  Bytes back(pt.size());
  ASSERT_TRUE(key->open(nonce, aad, wire, back));
  EXPECT_EQ(back, pt);
}

TEST_P(CcmRoundtripTest, TamperingDetected) {
  Xoshiro256 rng(GetParam() + 0xDD);
  const AeadKeyPtr key = make_aes_ccm(demo_key(16));
  const Bytes pt = rng.bytes(GetParam());
  const Bytes nonce = rng.bytes(kGcmNonceBytes);
  Bytes wire(pt.size() + kGcmTagBytes);
  key->seal(nonce, {}, pt, wire);
  Bytes sink(pt.size());

  for (std::size_t pos = 0; pos < wire.size();
       pos += std::max<std::size_t>(1, wire.size() / 9)) {
    Bytes tampered = wire;
    tampered[pos] ^= 0x20;
    EXPECT_FALSE(key->open(nonce, {}, tampered, sink)) << pos;
  }
  // Wrong AAD and wrong nonce must fail too.
  EXPECT_FALSE(key->open(nonce, bytes_of("x"), wire, sink));
  Bytes bad_nonce = nonce;
  bad_nonce[5] ^= 1;
  EXPECT_FALSE(key->open(bad_nonce, {}, wire, sink));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CcmRoundtripTest,
                         ::testing::Values(0u, 1u, 15u, 16u, 17u, 100u,
                                           4096u, 70000u));

TEST(Ccm, AadPathsCoverBlockBoundaries) {
  Xoshiro256 rng(0xEE);
  const AeadKeyPtr key = make_aes_ccm(demo_key(32));
  const Bytes pt = rng.bytes(64);
  const Bytes nonce = rng.bytes(kGcmNonceBytes);
  // AAD sizes straddling the 14-byte first-block capacity and block
  // multiples thereafter.
  for (std::size_t aad_len : {1u, 13u, 14u, 15u, 30u, 31u, 46u, 100u}) {
    const Bytes aad = rng.bytes(aad_len);
    Bytes wire(pt.size() + kGcmTagBytes);
    key->seal(nonce, aad, pt, wire);
    Bytes back(pt.size());
    ASSERT_TRUE(key->open(nonce, aad, wire, back)) << aad_len;
    ASSERT_EQ(back, pt);
    // Different AAD of the same length fails.
    Bytes other = aad;
    other[0] ^= 1;
    EXPECT_FALSE(key->open(nonce, other, wire, back)) << aad_len;
  }
}

TEST(Ccm, DeterministicGivenNonce) {
  const AeadKeyPtr key = make_aes_ccm(demo_key(32));
  const Bytes pt = bytes_of("same input, same output");
  const Bytes nonce(kGcmNonceBytes, 0x11);
  Bytes w1(pt.size() + kGcmTagBytes);
  Bytes w2(pt.size() + kGcmTagBytes);
  key->seal(nonce, {}, pt, w1);
  key->seal(nonce, {}, pt, w2);
  EXPECT_EQ(w1, w2);
}

TEST(Ccm, DiffersFromGcmUnderSameInputs) {
  const AeadKeyPtr ccm = make_aes_ccm(demo_key(32));
  const AeadKeyPtr gcm = make_aes_gcm("libsodium-sim", demo_key(32));
  const Bytes pt = bytes_of("mode separation");
  const Bytes nonce(kGcmNonceBytes, 0x22);
  Bytes wc(pt.size() + kGcmTagBytes);
  Bytes wg(pt.size() + kGcmTagBytes);
  ccm->seal(nonce, {}, pt, wc);
  gcm->seal(nonce, {}, pt, wg);
  EXPECT_NE(wc, wg);
  // And GCM cannot open a CCM wire (cross-mode confusion rejected).
  Bytes sink(pt.size());
  EXPECT_FALSE(gcm->open(nonce, {}, wc, sink));
}

TEST(Ccm, ErrorsOnBadArguments) {
  const AeadKeyPtr key = make_aes_ccm(demo_key(32));
  const Bytes pt(10, 0);
  Bytes wire(26);
  EXPECT_THROW(key->seal(Bytes(8, 0), {}, pt, wire),
               std::invalid_argument);  // non-12-byte nonce
  Bytes small(12);
  EXPECT_THROW(key->seal(Bytes(12, 0), {}, pt, small),
               std::invalid_argument);
}

}  // namespace
}  // namespace emc::crypto
