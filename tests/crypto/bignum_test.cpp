// BigUint arithmetic: 64-bit reference cross-checks, algebraic
// properties, Montgomery-vs-slow modexp agreement, Miller-Rabin, and
// verification of the published RFC 3526 Diffie-Hellman modulus.
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/crypto/bignum.hpp"
#include "emc/crypto/dh.hpp"

namespace emc::crypto {
namespace {

TEST(BigUint, HexAndBytesRoundTrip) {
  const BigUint x = BigUint::from_hex("0123456789abcdef fedcba9876543210 42");
  EXPECT_EQ(x.to_hex(), "123456789abcdeffedcba987654321042");
  const Bytes be = x.to_bytes();
  EXPECT_EQ(BigUint::from_bytes(be), x);
  // Padding preserves value.
  EXPECT_EQ(BigUint::from_bytes(x.to_bytes(40)), x);
  EXPECT_EQ(x.to_bytes(40).size(), 40u);
}

TEST(BigUint, ZeroBehaves) {
  const BigUint zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_hex(), "0");
  EXPECT_EQ(BigUint::from_u64(0), zero);
  EXPECT_EQ(zero.add(BigUint::from_u64(7)).to_hex(), "7");
  EXPECT_TRUE(BigUint::mul(zero, BigUint::from_u64(123)).is_zero());
}

TEST(BigUint, SmallArithmeticMatchesU64) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = rng.next() >> 2;
    const std::uint64_t b = rng.next() >> 2;
    const BigUint ba = BigUint::from_u64(a);
    const BigUint bb = BigUint::from_u64(b);
    EXPECT_EQ(ba.add(bb), BigUint::from_u64(a + b));
    if (a >= b) {
      EXPECT_EQ(ba.sub(bb), BigUint::from_u64(a - b));
    }
    const auto [q, r] = ba.divmod(BigUint::from_u64(b | 1));
    EXPECT_EQ(q, BigUint::from_u64(a / (b | 1)));
    EXPECT_EQ(r, BigUint::from_u64(a % (b | 1)));
  }
}

TEST(BigUint, MulMatchesU128) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next();
    const std::uint64_t b = rng.next();
    __extension__ using u128 = unsigned __int128;
    const u128 p = static_cast<u128>(a) * b;
    Bytes be(16);
    store_be64(be.data(), static_cast<std::uint64_t>(p >> 64));
    store_be64(be.data() + 8, static_cast<std::uint64_t>(p));
    EXPECT_EQ(BigUint::mul(BigUint::from_u64(a), BigUint::from_u64(b)),
              BigUint::from_bytes(be));
  }
}

TEST(BigUint, SubUnderflowThrows) {
  EXPECT_THROW((void)BigUint::from_u64(1).sub(BigUint::from_u64(2)),
               std::underflow_error);
}

TEST(BigUint, DivisionByZeroThrows) {
  EXPECT_THROW((void)BigUint::from_u64(1).divmod(BigUint{}),
               std::domain_error);
}

TEST(BigUint, MultiLimbAlgebra) {
  // (a + b) * c == a*c + b*c on random 256-bit values.
  Xoshiro256 rng(3);
  for (int i = 0; i < 50; ++i) {
    const BigUint a = BigUint::from_bytes(rng.bytes(32));
    const BigUint b = BigUint::from_bytes(rng.bytes(32));
    const BigUint c = BigUint::from_bytes(rng.bytes(32));
    EXPECT_EQ(BigUint::mul(a.add(b), c),
              BigUint::mul(a, c).add(BigUint::mul(b, c)));
  }
}

TEST(BigUint, DivModReconstructs) {
  // a == q*m + r with r < m, random widths.
  Xoshiro256 rng(4);
  for (int i = 0; i < 50; ++i) {
    const BigUint a = BigUint::from_bytes(rng.bytes(48));
    const BigUint m = BigUint::from_bytes(rng.bytes(static_cast<std::size_t>(1 + i % 24)));
    if (m.is_zero()) continue;
    const auto [q, r] = a.divmod(m);
    EXPECT_LT(r.compare(m), 0);
    EXPECT_EQ(BigUint::mul(q, m).add(r), a);
  }
}

TEST(BigUint, ShiftLeftMultipliesByPowersOfTwo) {
  const BigUint x = BigUint::from_hex("deadbeef");
  EXPECT_EQ(x.shifted_left(0), x);
  EXPECT_EQ(x.shifted_left(4).to_hex(), "deadbeef0");
  EXPECT_EQ(x.shifted_left(64).to_hex(), "deadbeef0000000000000000");
  EXPECT_EQ(x.shifted_left(67),
            BigUint::mul(x, BigUint::from_u64(8).shifted_left(64)));
}

TEST(BigUint, ModexpSmallKnownValues) {
  // 3^7 mod 10 = 7 (2187), 2^10 mod 1000 = 24, 5^0 mod 7 = 1.
  EXPECT_EQ(BigUint::modexp_slow(BigUint::from_u64(3), BigUint::from_u64(7),
                                 BigUint::from_u64(10)),
            BigUint::from_u64(7));
  EXPECT_EQ(BigUint::modexp(BigUint::from_u64(2), BigUint::from_u64(10),
                            BigUint::from_u64(1001)),
            BigUint::from_u64(1024 % 1001));
  EXPECT_EQ(BigUint::modexp(BigUint::from_u64(5), BigUint{},
                            BigUint::from_u64(7)),
            BigUint::from_u64(1));
}

TEST(BigUint, MontgomeryMatchesSlowPath) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 25; ++i) {
    const BigUint base = BigUint::from_bytes(rng.bytes(24));
    const BigUint exp = BigUint::from_bytes(rng.bytes(8));
    Bytes mod_bytes = rng.bytes(24);
    mod_bytes.back() |= 1;  // odd modulus for Montgomery
    mod_bytes.front() |= 0x80;
    const BigUint m = BigUint::from_bytes(mod_bytes);
    EXPECT_EQ(BigUint::modexp(base, exp, m),
              BigUint::modexp_slow(base, exp, m))
        << "case " << i;
  }
}

TEST(BigUint, FermatLittleTheoremHolds) {
  // a^(p-1) = 1 mod p for prime p and gcd(a,p)=1.
  const BigUint p = BigUint::from_u64(0xffffffffffffffc5ull);  // 2^64-59 prime
  Xoshiro256 rng(6);
  for (int i = 0; i < 10; ++i) {
    const BigUint a = BigUint::from_u64(rng.next() | 1);
    EXPECT_EQ(BigUint::modexp(a.mod(p), p.sub(BigUint::from_u64(1)), p),
              BigUint::from_u64(1));
  }
}

TEST(BigUint, MillerRabinClassifiesSmallNumbers) {
  const std::uint64_t primes[] = {2,  3,  5,  7,  11, 13, 101,
                                  104729, 32416190071ull};
  for (std::uint64_t p : primes) {
    EXPECT_TRUE(BigUint::probably_prime(BigUint::from_u64(p), 16, 99))
        << p;
  }
  const std::uint64_t composites[] = {1,  4,   9,      15,  91,
                                      561 /* Carmichael */, 104730,
                                      32416190073ull};
  for (std::uint64_t c : composites) {
    EXPECT_FALSE(BigUint::probably_prime(BigUint::from_u64(c), 16, 99))
        << c;
  }
}

TEST(BigUint, RandomBelowStaysInRange) {
  const BigUint bound = BigUint::from_hex("10000000000000000");  // 2^64
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    EXPECT_LT(BigUint::random_below(bound, seed).compare(bound), 0);
  }
}

TEST(DhGroup, Rfc3526Group14ModulusIsPrime) {
  // Verifies the transcribed constant: the 2048-bit MODP modulus must
  // be prime (8 Miller-Rabin rounds; error probability < 4^-8).
  const DhGroup& group = modp_group14();
  EXPECT_EQ(group.p.bit_length(), 2048u);
  EXPECT_TRUE(BigUint::probably_prime(group.p, 8, 0xD4));
}

TEST(DhGroup, ExchangeAgreesAndKeysDiffer) {
  const DhGroup group = generate_test_group(192, 0xAB);
  EXPECT_TRUE(BigUint::probably_prime(group.p, 12, 1));

  const DhKeyPair alice = dh_generate(group, 1);
  const DhKeyPair bob = dh_generate(group, 2);
  EXPECT_NE(alice.public_key, bob.public_key);

  const Bytes s1 =
      dh_shared_secret(group, alice.private_key, bob.public_key);
  const Bytes s2 =
      dh_shared_secret(group, bob.private_key, alice.public_key);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), group.byte_length());

  // A third party derives something different.
  const DhKeyPair eve = dh_generate(group, 3);
  EXPECT_NE(dh_shared_secret(group, eve.private_key, bob.public_key), s1);
}

TEST(DhGroup, RejectsOutOfRangePublics) {
  const DhGroup group = generate_test_group(128, 0xCD);
  const DhKeyPair pair = dh_generate(group, 4);
  EXPECT_THROW(
      (void)dh_shared_secret(group, pair.private_key, BigUint{}),
      std::invalid_argument);
  EXPECT_THROW((void)dh_shared_secret(group, pair.private_key, group.p),
               std::invalid_argument);
}

TEST(DhGroup, Deterministic) {
  const DhGroup g1 = generate_test_group(128, 7);
  const DhGroup g2 = generate_test_group(128, 7);
  EXPECT_EQ(g1.p, g2.p);
  EXPECT_EQ(dh_generate(g1, 9).public_key, dh_generate(g2, 9).public_key);
}

}  // namespace
}  // namespace emc::crypto
