// Provider registry behaviour: lookup, capability restrictions,
// self-tests, and the CryptoPP build-profile dispatcher.
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/crypto/provider.hpp"

namespace emc::crypto {
namespace {

TEST(ProviderRegistry, ContainsTheFourStudiedLibraries) {
  const auto& all = providers();
  ASSERT_EQ(all.size(), 5u);  // four libraries + the Fig. 9 CryptoPP build
  EXPECT_NO_THROW((void)provider("boringssl-sim"));
  EXPECT_NO_THROW((void)provider("openssl-sim"));
  EXPECT_NO_THROW((void)provider("libsodium-sim"));
  EXPECT_NO_THROW((void)provider("cryptopp-sim"));
  EXPECT_NO_THROW((void)provider("cryptopp-opt-sim"));
}

TEST(ProviderRegistry, UnknownNameThrows) {
  EXPECT_THROW((void)provider("wolfssl"), std::invalid_argument);
  EXPECT_THROW((void)make_aes_gcm("", demo_key(32)), std::invalid_argument);
}

TEST(ProviderRegistry, ReportedProvidersMatchPaper) {
  const auto gcc48 = reported_providers(/*optimized_cryptopp=*/false);
  ASSERT_EQ(gcc48.size(), 3u);
  EXPECT_EQ(gcc48[0]->name, "boringssl-sim");
  EXPECT_EQ(gcc48[1]->name, "libsodium-sim");
  EXPECT_EQ(gcc48[2]->name, "cryptopp-sim");

  const auto mvapich = reported_providers(/*optimized_cryptopp=*/true);
  EXPECT_EQ(mvapich[2]->name, "cryptopp-opt-sim");
}

TEST(ProviderRegistry, LibsodiumOnlySupportsAes256) {
  // Mirrors the real library's API limitation noted in §III-B.
  const Provider& sodium = provider("libsodium-sim");
  EXPECT_FALSE(sodium.supports_key_size(16));
  EXPECT_FALSE(sodium.supports_key_size(24));
  EXPECT_TRUE(sodium.supports_key_size(32));
  EXPECT_THROW((void)sodium.make_key(demo_key(16)), std::invalid_argument);
  EXPECT_NO_THROW((void)sodium.make_key(demo_key(32)));
}

TEST(ProviderRegistry, HwTierSupportsBothStudiedKeySizes) {
  // The paper benchmarks 128- and 256-bit keys (§III-A).
  for (const char* name : {"boringssl-sim", "openssl-sim"}) {
    const Provider& p = provider(name);
    EXPECT_TRUE(p.supports_key_size(16)) << name;
    EXPECT_TRUE(p.supports_key_size(32)) << name;
  }
}

class ProviderSelfTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProviderSelfTest, PassesKatAndTamperCheck) {
  EXPECT_TRUE(self_test(provider(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(
    All, ProviderSelfTest,
    ::testing::Values("boringssl-sim", "openssl-sim", "libsodium-sim",
                      "cryptopp-sim", "cryptopp-opt-sim"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(CryptoppOpt, TierSwitchIsTransparent) {
  // The Fig. 9 dispatcher must produce wire bytes identical to the
  // other tiers on both sides of the 64 KB threshold.
  Xoshiro256 rng(0xFEED);
  const AeadKeyPtr opt = make_aes_gcm("cryptopp-opt-sim", demo_key(32));
  const AeadKeyPtr plain = make_aes_gcm("cryptopp-sim", demo_key(32));
  for (std::size_t size : {1024u, 65535u, 65536u, 262144u}) {
    const Bytes pt = rng.bytes(size);
    const Bytes nonce = rng.bytes(kGcmNonceBytes);
    Bytes w1(size + kGcmTagBytes);
    Bytes w2(size + kGcmTagBytes);
    opt->seal(nonce, {}, pt, w1);
    plain->seal(nonce, {}, pt, w2);
    ASSERT_EQ(w1, w2) << size;
    Bytes back(size);
    ASSERT_TRUE(opt->open(nonce, {}, w1, back));
    ASSERT_EQ(back, pt);
  }
}

TEST(DemoKey, IsDeterministicAndSized) {
  EXPECT_EQ(demo_key(32).size(), 32u);
  EXPECT_EQ(demo_key(16).size(), 16u);
  EXPECT_EQ(demo_key(32), demo_key(32));
  const Bytes k32 = demo_key(32);
  const Bytes k16 = demo_key(16);
  EXPECT_TRUE(std::equal(k16.begin(), k16.end(), k32.begin()));
}

}  // namespace
}  // namespace emc::crypto
