// Functional tests of the legacy (insecure) modes plus SP 800-38A
// known answers for CBC and CTR.
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/crypto/legacy.hpp"
#include "emc/crypto/provider.hpp"

namespace emc::crypto::legacy {
namespace {

const char* kSpKey128 = "2b7e151628aed2a6abf7158809cf4f3c";
const char* kSpBlock1 = "6bc1bee22e409f96e93d7e117393172a";

TEST(LegacyCbc, MatchesSp800_38aFirstBlock) {
  const AesPortable aes(from_hex(kSpKey128));
  const Bytes iv = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes ct = cbc_encrypt(aes, iv, from_hex(kSpBlock1));
  // Padding appends one extra block; the first matches the vector.
  ASSERT_GE(ct.size(), 32u);
  EXPECT_EQ(to_hex(BytesView(ct).first(16)),
            "7649abac8119b246cee98e9b12e9197d");
}

TEST(LegacyCtr, MatchesSp800_38aFirstBlock) {
  const AesPortable aes(from_hex(kSpKey128));
  const Bytes iv = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes ct = ctr_crypt(aes, iv, from_hex(kSpBlock1));
  EXPECT_EQ(to_hex(ct), "874d6191b620e3261bef6864990db6ce");
}

TEST(LegacyCtr, IsItsOwnInverse) {
  Xoshiro256 rng(21);
  const AesPortable aes(demo_key(32));
  const Bytes iv = rng.bytes(16);
  for (std::size_t size : {0u, 1u, 16u, 17u, 333u}) {
    const Bytes pt = rng.bytes(size);
    EXPECT_EQ(ctr_crypt(aes, iv, ctr_crypt(aes, iv, pt)), pt);
  }
}

class LegacyRoundtripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LegacyRoundtripTest, EcbRoundtrips) {
  Xoshiro256 rng(GetParam());
  const AesPortable aes(demo_key(16));
  const Bytes pt = rng.bytes(GetParam());
  const Bytes ct = ecb_encrypt(aes, pt);
  EXPECT_EQ(ct.size() % 16, 0u);
  EXPECT_GT(ct.size(), pt.size());  // PKCS#7 always pads
  EXPECT_EQ(ecb_decrypt(aes, ct), pt);
}

TEST_P(LegacyRoundtripTest, CbcRoundtrips) {
  Xoshiro256 rng(GetParam() + 99);
  const AesPortable aes(demo_key(32));
  const Bytes iv = rng.bytes(16);
  const Bytes pt = rng.bytes(GetParam());
  EXPECT_EQ(cbc_decrypt(aes, iv, cbc_encrypt(aes, iv, pt)), pt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LegacyRoundtripTest,
                         ::testing::Values(0u, 1u, 15u, 16u, 17u, 100u,
                                           4096u));

TEST(LegacyPadding, CorruptPaddingThrows) {
  const AesPortable aes(demo_key(16));
  Bytes ct = ecb_encrypt(aes, bytes_of("hello"));
  EXPECT_THROW((void)ecb_decrypt(aes, BytesView(ct).first(8)),
               std::runtime_error);
  EXPECT_THROW((void)ecb_decrypt(aes, Bytes{}), std::runtime_error);
}

TEST(BigKeyPad, RoundtripsViaSecondPad) {
  Xoshiro256 rng(5);
  Bytes big_key = rng.bytes(1024);
  BigKeyPad enc(big_key);
  BigKeyPad dec(big_key);
  const Bytes m1 = rng.bytes(100);
  const Bytes m2 = rng.bytes(200);
  EXPECT_EQ(dec.encrypt(enc.encrypt(m1)), m1);
  EXPECT_EQ(dec.encrypt(enc.encrypt(m2)), m2);
}

TEST(BigKeyPad, ReportsPadReuseAfterWrap) {
  Xoshiro256 rng(6);
  BigKeyPad pad(rng.bytes(256));
  (void)pad.encrypt(rng.bytes(200));
  EXPECT_FALSE(pad.pad_reused());
  (void)pad.encrypt(rng.bytes(100));  // 300 > 256: wrapped
  EXPECT_TRUE(pad.pad_reused());
}

TEST(BigKeyPad, EmptyKeyRejected) {
  EXPECT_THROW(BigKeyPad{Bytes{}}, std::invalid_argument);
}

}  // namespace
}  // namespace emc::crypto::legacy
