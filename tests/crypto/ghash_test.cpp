// Cross-engine agreement and algebraic properties of the GHASH cores.
// The bit-serial engine is the reference; the table engines are built
// from it by linearity, and the PCLMUL engine (exercised through the
// hardware GCM key in gcm_test) must match it bit for bit.
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/crypto/ghash.hpp"

namespace emc::crypto {
namespace {

Bytes mul_with(const auto& engine, BytesView x) {
  Bytes out(x.begin(), x.end());
  engine.mul(out.data());
  return out;
}

class GhashAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GhashAgreementTest, TableEnginesMatchReference) {
  Xoshiro256 rng(GetParam());
  const Bytes h = rng.bytes(16);
  const GhashSoft soft(h.data());
  const GhashTable4 t4(h.data());
  const GhashTable8 t8(h.data());
  for (int i = 0; i < 300; ++i) {
    const Bytes x = rng.bytes(16);
    const Bytes expect = mul_with(soft, x);
    ASSERT_EQ(mul_with(t4, x), expect) << to_hex(x);
    ASSERT_EQ(mul_with(t8, x), expect) << to_hex(x);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GhashAgreementTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234567u));

TEST(GhashAlgebra, MultiplyByZeroIsZero) {
  Xoshiro256 rng(7);
  const Bytes h = rng.bytes(16);
  const GhashSoft soft(h.data());
  const Bytes zero(16, 0x00);
  EXPECT_EQ(mul_with(soft, zero), zero);
}

TEST(GhashAlgebra, ZeroHashKeyAnnihilates) {
  const Bytes h(16, 0x00);
  const GhashSoft soft(h.data());
  Xoshiro256 rng(8);
  const Bytes x = rng.bytes(16);
  EXPECT_EQ(mul_with(soft, x), Bytes(16, 0x00));
}

TEST(GhashAlgebra, DistributesOverXor) {
  // (a ^ b) . H == (a . H) ^ (b . H) — linearity, the property the
  // table engines rely on.
  Xoshiro256 rng(9);
  const Bytes h = rng.bytes(16);
  const GhashSoft soft(h.data());
  for (int i = 0; i < 100; ++i) {
    const Bytes a = rng.bytes(16);
    const Bytes b = rng.bytes(16);
    Bytes ab(16);
    for (int j = 0; j < 16; ++j) {
      ab[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(
          a[static_cast<std::size_t>(j)] ^ b[static_cast<std::size_t>(j)]);
    }
    const Bytes lhs = mul_with(soft, ab);
    const Bytes ra = mul_with(soft, a);
    const Bytes rb = mul_with(soft, b);
    Bytes rhs(16);
    for (int j = 0; j < 16; ++j) {
      rhs[static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(
          ra[static_cast<std::size_t>(j)] ^ rb[static_cast<std::size_t>(j)]);
    }
    ASSERT_EQ(lhs, rhs);
  }
}

TEST(GhashAlgebra, MultiplicationByOneElement) {
  // The field's multiplicative identity in GCM bit order is 0x80 0x00...
  Bytes one(16, 0x00);
  one[0] = 0x80;
  const GhashSoft as_h(one.data());
  Xoshiro256 rng(10);
  for (int i = 0; i < 50; ++i) {
    const Bytes x = rng.bytes(16);
    ASSERT_EQ(mul_with(as_h, x), x);
  }
}

TEST(GhashUpdate, PartialBlockIsZeroPadded) {
  Xoshiro256 rng(11);
  const Bytes h = rng.bytes(16);
  const GhashSoft soft(h.data());

  const Bytes data = rng.bytes(20);  // one full block + 4 bytes
  std::uint8_t y1[16] = {};
  ghash_update(soft, y1, data);

  Bytes padded(data.begin(), data.end());
  padded.resize(32, 0x00);
  std::uint8_t y2[16] = {};
  ghash_update(soft, y2, padded);

  EXPECT_EQ(Bytes(y1, y1 + 16), Bytes(y2, y2 + 16));
}

TEST(GhashUpdate, EmptyInputLeavesAccumulator) {
  Xoshiro256 rng(12);
  const Bytes h = rng.bytes(16);
  const GhashSoft soft(h.data());
  std::uint8_t y[16];
  const Bytes init = rng.bytes(16);
  std::copy(init.begin(), init.end(), y);
  ghash_update(soft, y, {});
  EXPECT_EQ(Bytes(y, y + 16), init);
}

TEST(GhashLengths, EncodesBitLengths) {
  // With H = identity element the length block passes through XOR.
  Bytes one(16, 0x00);
  one[0] = 0x80;
  const GhashSoft as_h(one.data());
  std::uint8_t y[16] = {};
  ghash_lengths(as_h, y, /*aad_bytes=*/2, /*ct_bytes=*/3);
  EXPECT_EQ(load_be64(y), 16u);       // 2 bytes = 16 bits
  EXPECT_EQ(load_be64(y + 8), 24u);   // 3 bytes = 24 bits
}

}  // namespace
}  // namespace emc::crypto
