// Known-answer and property tests for the AES cores.
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/crypto/aes.hpp"

namespace emc::crypto {
namespace {

struct AesKat {
  const char* key;
  const char* pt;
  const char* ct;
};

// FIPS-197 Appendix C example vectors.
const AesKat kFipsVectors[] = {
    {"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff",
     "69c4e0d86a7b0430d8cdb78070b4c55a"},
    {"000102030405060708090a0b0c0d0e0f1011121314151617",
     "00112233445566778899aabbccddeeff",
     "dda97ca4864cdfe06eaf70a0ec0d7191"},
    {"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff",
     "8ea2b7ca516745bfeafc49904b496089"},
};

// NIST SP 800-38A F.1 ECB single-block vectors.
const AesKat kSp800Vectors[] = {
    {"2b7e151628aed2a6abf7158809cf4f3c", "6bc1bee22e409f96e93d7e117393172a",
     "3ad77bb40d7a3660a89ecaf32466ef97"},
    {"8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b",
     "6bc1bee22e409f96e93d7e117393172a",
     "bd334f1d6e45f25ff712a214571fa5cc"},
    {"603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
     "6bc1bee22e409f96e93d7e117393172a",
     "f3eed1bdb5d2a03c064b5a7e3db181f8"},
};

class AesKatTest : public ::testing::TestWithParam<AesKat> {};

TEST_P(AesKatTest, PortableMatchesVector) {
  const AesKat& kat = GetParam();
  const Bytes key = from_hex(kat.key);
  const Bytes pt = from_hex(kat.pt);
  AesPortable aes(key);
  Bytes out(16);
  aes.encrypt_block(pt.data(), out.data());
  EXPECT_EQ(to_hex(out), kat.ct);
}

TEST_P(AesKatTest, TtableMatchesVector) {
  const AesKat& kat = GetParam();
  const Bytes key = from_hex(kat.key);
  const Bytes pt = from_hex(kat.pt);
  AesTtable aes(key);
  Bytes out(16);
  aes.encrypt_block(pt.data(), out.data());
  EXPECT_EQ(to_hex(out), kat.ct);
}

TEST_P(AesKatTest, PortableDecryptInverts) {
  const AesKat& kat = GetParam();
  const Bytes key = from_hex(kat.key);
  const Bytes ct = from_hex(kat.ct);
  AesPortable aes(key);
  Bytes out(16);
  aes.decrypt_block(ct.data(), out.data());
  EXPECT_EQ(to_hex(out), kat.pt);
}

INSTANTIATE_TEST_SUITE_P(Fips197, AesKatTest,
                         ::testing::ValuesIn(kFipsVectors));
INSTANTIATE_TEST_SUITE_P(Sp800_38a, AesKatTest,
                         ::testing::ValuesIn(kSp800Vectors));

class AesPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesPropertyTest, CoresAgreeOnRandomInputs) {
  Xoshiro256 rng(GetParam());
  const Bytes key = rng.bytes(GetParam());
  AesPortable portable(key);
  AesTtable ttable(key);
  for (int i = 0; i < 200; ++i) {
    const Bytes block = rng.bytes(16);
    Bytes a(16);
    Bytes b(16);
    portable.encrypt_block(block.data(), a.data());
    ttable.encrypt_block(block.data(), b.data());
    ASSERT_EQ(a, b) << "block " << i << ": " << to_hex(block);
  }
}

TEST_P(AesPropertyTest, PortableRoundTripsRandomBlocks) {
  Xoshiro256 rng(GetParam() + 17);
  const Bytes key = rng.bytes(GetParam());
  AesPortable aes(key);
  for (int i = 0; i < 200; ++i) {
    const Bytes block = rng.bytes(16);
    Bytes ct(16);
    Bytes back(16);
    aes.encrypt_block(block.data(), ct.data());
    aes.decrypt_block(ct.data(), back.data());
    ASSERT_EQ(back, block);
    ASSERT_NE(ct, block);  // identity would be a catastrophic bug
  }
}

INSTANTIATE_TEST_SUITE_P(AllKeySizes, AesPropertyTest,
                         ::testing::Values(16u, 24u, 32u));

TEST(AesKeySchedule, RejectsBadKeySizes) {
  for (std::size_t bad : {0u, 1u, 15u, 17u, 23u, 31u, 33u, 64u}) {
    const Bytes key(bad, 0xab);
    EXPECT_THROW(AesKeySchedule{key}, std::invalid_argument) << bad;
  }
}

TEST(AesKeySchedule, RoundCountsMatchKeySize) {
  EXPECT_EQ(AesKeySchedule(Bytes(16)).rounds(), 10);
  EXPECT_EQ(AesKeySchedule(Bytes(24)).rounds(), 12);
  EXPECT_EQ(AesKeySchedule(Bytes(32)).rounds(), 14);
}

TEST(AesSbox, InverseIsConsistent) {
  const auto& sbox = detail::aes_sbox();
  const auto& inv = detail::aes_inv_sbox();
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(inv[sbox[static_cast<std::size_t>(i)]], i);
  }
}

TEST(AesGf, MulMatchesKnownProducts) {
  // {53} . {CA} = {01} is the classic inverse pair from FIPS-197.
  EXPECT_EQ(detail::gf_mul(0x53, 0xca), 0x01);
  EXPECT_EQ(detail::gf_mul(0x57, 0x13), 0xfe);  // AES spec example
  EXPECT_EQ(detail::gf_mul(0x01, 0xff), 0xff);
  EXPECT_EQ(detail::gf_mul(0x00, 0xff), 0x00);
}

}  // namespace
}  // namespace emc::crypto
