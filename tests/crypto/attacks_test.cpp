// Concrete demonstrations of the attacks the paper's Related Work
// (§II) describes against prior encrypted-MPI systems — and proof that
// AES-GCM resists the same manipulations.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "emc/common/rng.hpp"
#include "emc/crypto/legacy.hpp"
#include "emc/crypto/provider.hpp"

namespace emc::crypto {
namespace {

using namespace legacy;

TEST(EcbAttack, EqualPlaintextBlocksLeakThroughCiphertext) {
  // ES-MPICH2 encrypts with ECB: identical 16-byte plaintext blocks
  // produce identical ciphertext blocks, revealing message structure.
  const AesPortable aes(demo_key(16));
  Bytes structured;
  for (int i = 0; i < 64; ++i) {
    const Bytes block =
        bytes_of(i % 2 == 0 ? "PATIENT-RECORD-A" : "PATIENT-RECORD-B");
    structured.insert(structured.end(), block.begin(), block.end());
  }
  const Bytes ct = ecb_encrypt(aes, structured);
  EXPECT_GE(duplicate_block_count(ct), 2u)
      << "ECB must leak the repeating structure";

  // The same plaintext under GCM (fresh nonce) shows no repetition.
  const AeadKeyPtr gcm = make_aes_gcm("libsodium-sim", demo_key(32));
  Xoshiro256 rng(1);
  Bytes wire(structured.size() + kGcmTagBytes);
  gcm->seal(rng.bytes(kGcmNonceBytes), {}, structured, wire);
  EXPECT_EQ(duplicate_block_count(BytesView(wire).first(structured.size())),
            0u);
}

TEST(EcbAttack, DeterminismLeaksMessageEquality) {
  // Two encryptions of the same message are distinguishable under ECB
  // (identical ciphertexts) but not under GCM with fresh nonces.
  const AesPortable aes(demo_key(16));
  const Bytes msg = bytes_of("transfer $100 to account 12345");
  EXPECT_EQ(ecb_encrypt(aes, msg), ecb_encrypt(aes, msg));
}

TEST(TwoTimePadAttack, RecoversSecondMessageAfterWrap) {
  // VAN-MPICH2 draws one-time pads as substrings of a big key K; once
  // the offset wraps, two messages share pad bytes and
  // M2 = C1 xor C2 xor M1 on the overlap (§II).
  Xoshiro256 rng(2);
  const Bytes big_key = rng.bytes(512);
  BigKeyPad pad(big_key);

  const Bytes m1 = bytes_of(std::string(512, 'A'));  // consumes whole key
  const Bytes m2 = bytes_of(
      "TOP SECRET: the quarterly engineering results are attached.");
  const Bytes c1 = pad.encrypt(m1);
  const Bytes c2 = pad.encrypt(m2);  // pad wrapped: reuses K[0..]
  ASSERT_TRUE(pad.pad_reused());

  const Bytes recovered = recover_second_plaintext(c1, c2, m1);
  EXPECT_EQ(recovered, m2);
}

TEST(TwoTimePadAttack, NoRecoveryBeforeWrap) {
  Xoshiro256 rng(3);
  BigKeyPad pad(rng.bytes(4096));
  const Bytes m1 = rng.bytes(100);
  const Bytes m2 = rng.bytes(100);
  const Bytes c1 = pad.encrypt(m1);
  const Bytes c2 = pad.encrypt(m2);
  ASSERT_FALSE(pad.pad_reused());
  // Disjoint pads: the xor trick recovers garbage, not m2.
  EXPECT_NE(recover_second_plaintext(c1, c2, m1), m2);
}

TEST(CbcAttack, TargetedBitFlipSurvivesDecryption) {
  // CBC provides no integrity: flipping ciphertext byte b of block i
  // flips plaintext byte b of block i+1 predictably. A "checksum
  // inside the encryption" does not help when the checksum does not
  // cover what the attacker changes (An–Bellare, §II).
  const AesPortable aes(demo_key(32));
  Xoshiro256 rng(4);
  const Bytes iv = rng.bytes(16);
  const Bytes pt = bytes_of("BLOCK-0 PADDING.amount=100 dollars pad pad.");
  const Bytes ct = cbc_encrypt(aes, iv, pt);

  // Plaintext byte 23 is the '1' of "100"; it lives in block 1, so
  // flip the matching byte of ciphertext block 0.
  ASSERT_EQ(pt[23], '1');
  const Bytes forged =
      cbc_bitflip(ct, /*block=*/0, /*index=*/23 - 16, '1' ^ '9');
  const Bytes tampered = cbc_decrypt(aes, iv, forged);

  // Block 0 is garbled, but the targeted byte flipped exactly.
  ASSERT_EQ(tampered.size(), pt.size());
  EXPECT_EQ(tampered[23], '9');
  EXPECT_TRUE(std::equal(tampered.begin() + 24, tampered.end(),
                         pt.begin() + 24))
      << "bytes after the target are untouched";
}

TEST(CtrAttack, BitFlipIsPerfectlyTargeted) {
  const AesPortable aes(demo_key(32));
  Xoshiro256 rng(5);
  const Bytes iv = rng.bytes(16);
  const Bytes pt = bytes_of("pay   10 coins");
  Bytes ct = ctr_crypt(aes, iv, pt);
  ct[6] ^= '1' ^ '9';  // flip the amount in the ciphertext
  const Bytes tampered = ctr_crypt(aes, iv, ct);
  EXPECT_EQ(std::string(tampered.begin(), tampered.end()), "pay   90 coins");
}

TEST(GcmDefense, SameManipulationsAreAllRejected) {
  const AeadKeyPtr gcm = make_aes_gcm("boringssl-sim", demo_key(32));
  Xoshiro256 rng(6);
  const Bytes nonce = rng.bytes(kGcmNonceBytes);
  const Bytes pt = bytes_of("pay   10 coins");
  Bytes wire(pt.size() + kGcmTagBytes);
  gcm->seal(nonce, {}, pt, wire);

  Bytes sink(pt.size());
  // CTR-style targeted flip.
  Bytes flip = wire;
  flip[6] ^= '1' ^ '9';
  EXPECT_FALSE(gcm->open(nonce, {}, flip, sink));
  // Truncation.
  EXPECT_FALSE(
      gcm->open(nonce, {}, BytesView(wire).first(wire.size() - 1),
                MutBytes(sink).first(pt.size() - 1)));
  // Tag clobbering.
  Bytes tag_hit = wire;
  tag_hit.back() ^= 0xff;
  EXPECT_FALSE(gcm->open(nonce, {}, tag_hit, sink));
}

}  // namespace
}  // namespace emc::crypto
