// SHA-256 / HMAC / HKDF against published vectors (FIPS 180-4,
// RFC 4231, RFC 5869) plus streaming-interface properties.
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/crypto/sha256.hpp"

namespace emc::crypto {
namespace {

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(to_hex(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::digest(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      to_hex(Sha256::digest(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  Bytes out(kSha256Digest);
  hasher.finalize(out.data());
  EXPECT_EQ(to_hex(out),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingEqualsOneShot) {
  Xoshiro256 rng(3);
  const Bytes data = rng.bytes(10'000);
  // Feed in awkward chunk sizes crossing block boundaries.
  Sha256 hasher;
  std::size_t i = 0;
  std::size_t chunk = 1;
  while (i < data.size()) {
    const std::size_t take = std::min(chunk, data.size() - i);
    hasher.update(BytesView(data).subspan(i, take));
    i += take;
    chunk = (chunk * 7 + 3) % 200 + 1;
  }
  Bytes streamed(kSha256Digest);
  hasher.finalize(streamed.data());
  EXPECT_EQ(streamed, Sha256::digest(data));
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 hasher;
  hasher.update(bytes_of("ignore me"));
  hasher.reset();
  hasher.update(bytes_of("abc"));
  Bytes out(kSha256Digest);
  hasher.finalize(out.data());
  EXPECT_EQ(out, Sha256::digest(bytes_of("abc")));
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths around the 56-byte padding cut and the 64-byte block.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const Bytes data(len, 0x61);
    const Bytes once = Sha256::digest(data);
    Sha256 h;
    h.update(BytesView(data).first(len / 2));
    h.update(BytesView(data).subspan(len / 2));
    Bytes out(kSha256Digest);
    h.finalize(out.data());
    EXPECT_EQ(out, once) << "length " << len;
  }
}

TEST(HmacSha256, Rfc4231Vectors) {
  // Test case 1.
  EXPECT_EQ(to_hex(hmac_sha256(Bytes(20, 0x0b), bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2.
  EXPECT_EQ(to_hex(hmac_sha256(bytes_of("Jefe"),
                               bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeysAreHashedDown) {
  // Keys longer than the block size must behave like their digest.
  Xoshiro256 rng(4);
  const Bytes long_key = rng.bytes(200);
  const Bytes data = bytes_of("payload");
  EXPECT_EQ(hmac_sha256(long_key, data),
            hmac_sha256(Sha256::digest(long_key), data));
}

TEST(HkdfSha256, Rfc5869TestCase1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf_sha256(ikm, salt, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(HkdfSha256, LengthsAndDomainSeparation) {
  const Bytes ikm = bytes_of("input keying material");
  EXPECT_EQ(hkdf_sha256(ikm, {}, {}, 16).size(), 16u);
  EXPECT_EQ(hkdf_sha256(ikm, {}, {}, 100).size(), 100u);
  EXPECT_THROW((void)hkdf_sha256(ikm, {}, {}, 255 * 32 + 1),
               std::invalid_argument);
  // Different info strings must derive unrelated keys.
  EXPECT_NE(hkdf_sha256(ikm, {}, bytes_of("a"), 32),
            hkdf_sha256(ikm, {}, bytes_of("b"), 32));
  // A prefix of a longer expansion equals the shorter expansion.
  const Bytes long_okm = hkdf_sha256(ikm, {}, bytes_of("x"), 64);
  const Bytes short_okm = hkdf_sha256(ikm, {}, bytes_of("x"), 32);
  EXPECT_TRUE(std::equal(short_okm.begin(), short_okm.end(),
                         long_okm.begin()));
}

}  // namespace
}  // namespace emc::crypto
