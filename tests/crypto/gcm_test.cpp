// AES-GCM known-answer vectors (McGrew–Viega / NIST) and AEAD
// properties across every provider tier, including cross-provider
// ciphertext equality — four independently built engines must agree
// on every byte.
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/crypto/gcm.hpp"
#include "emc/crypto/provider.hpp"

namespace emc::crypto {
namespace {

struct GcmKat {
  const char* key;
  const char* nonce;
  const char* aad;
  const char* pt;
  const char* ct;
  const char* tag;
};

// Test cases 1-4 (AES-128) and 13-15 (AES-256) of the GCM spec.
const GcmKat kGcmVectors[] = {
    {"00000000000000000000000000000000", "000000000000000000000000", "", "",
     "", "58e2fccefa7e3061367f1d57a4e7455a"},
    {"00000000000000000000000000000000", "000000000000000000000000", "",
     "00000000000000000000000000000000", "0388dace60b6a392f328c2b971b2fe78",
     "ab6e47d42cec13bdf53a67b21257bddf"},
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888", "",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
     "4d5c2af327cd64a62cf35abd2ba6fab4"},
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
     "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
     "5bc94fbc3221a5db94fae95ae7121a47"},
    {"0000000000000000000000000000000000000000000000000000000000000000",
     "000000000000000000000000", "", "", "",
     "530f8afbc74536b9a963b4f1c4cb738b"},
    {"0000000000000000000000000000000000000000000000000000000000000000",
     "000000000000000000000000", "", "00000000000000000000000000000000",
     "cea7403d4d606b6e074ec5d3baf39d18", "d0d1c8a799996bf0265b98b5d48ab919"},
    {"feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
     "cafebabefacedbaddecaf888", "",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
     "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
     "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad",
     "b094dac5d93471bdec1a502270e3cc6c"},
};

std::vector<std::string> all_provider_names() {
  std::vector<std::string> names;
  for (const Provider& p : providers()) names.push_back(p.name);
  return names;
}

using KatCase = std::tuple<std::string, int>;

class GcmKatTest : public ::testing::TestWithParam<KatCase> {};

TEST_P(GcmKatTest, MatchesSpecVector) {
  const auto& [provider_name, index] = GetParam();
  const GcmKat& kat = kGcmVectors[static_cast<std::size_t>(index)];
  const Provider& p = provider(provider_name);
  const Bytes key = from_hex(kat.key);
  if (!p.supports_key_size(key.size())) {
    GTEST_SKIP() << provider_name << " does not support this key size";
  }
  const Bytes nonce = from_hex(kat.nonce);
  const Bytes aad = from_hex(kat.aad);
  const Bytes pt = from_hex(kat.pt);

  const AeadKeyPtr k = p.make_key(key);
  Bytes out(pt.size() + kGcmTagBytes);
  k->seal(nonce, aad, pt, out);
  EXPECT_EQ(to_hex(BytesView(out).first(pt.size())), kat.ct);
  EXPECT_EQ(to_hex(BytesView(out).last(kGcmTagBytes)), kat.tag);

  Bytes round(pt.size());
  ASSERT_TRUE(k->open(nonce, aad, out, round));
  EXPECT_EQ(round, pt);
}

INSTANTIATE_TEST_SUITE_P(
    AllProvidersAllVectors, GcmKatTest,
    ::testing::Combine(::testing::ValuesIn(all_provider_names()),
                       ::testing::Range(0, 7)),
    [](const ::testing::TestParamInfo<KatCase>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_tc" + std::to_string(std::get<1>(info.param));
    });

struct RoundtripCase {
  std::string provider;
  std::size_t size;
};

class GcmRoundtripTest : public ::testing::TestWithParam<RoundtripCase> {};

TEST_P(GcmRoundtripTest, SealOpenRoundtrip) {
  const auto& param = GetParam();
  Xoshiro256 rng(0xD00D + param.size);
  const AeadKeyPtr k = make_aes_gcm(param.provider, demo_key(32));
  const Bytes pt = rng.bytes(param.size);
  const Bytes nonce = rng.bytes(kGcmNonceBytes);
  const Bytes aad = rng.bytes(13);

  Bytes wire(pt.size() + kGcmTagBytes);
  k->seal(nonce, aad, pt, wire);
  Bytes back(pt.size());
  ASSERT_TRUE(k->open(nonce, aad, wire, back));
  EXPECT_EQ(back, pt);
}

TEST_P(GcmRoundtripTest, TamperingAnywhereIsDetected) {
  const auto& param = GetParam();
  if (param.size > 4096) GTEST_SKIP() << "bit-flip sweep kept small";
  Xoshiro256 rng(0xBEEF + param.size);
  const AeadKeyPtr k = make_aes_gcm(param.provider, demo_key(32));
  const Bytes pt = rng.bytes(param.size);
  const Bytes nonce = rng.bytes(kGcmNonceBytes);

  Bytes wire(pt.size() + kGcmTagBytes);
  k->seal(nonce, {}, pt, wire);
  Bytes sink(pt.size());

  // Flip one random bit in each 16-byte window plus every tag byte.
  for (std::size_t pos = 0; pos < wire.size();
       pos += (pos < pt.size() ? 16 : 1)) {
    Bytes tampered = wire;
    tampered[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
    EXPECT_FALSE(k->open(nonce, {}, tampered, sink)) << "position " << pos;
  }

  // Wrong nonce and wrong AAD must also fail.
  Bytes bad_nonce = nonce;
  bad_nonce[0] ^= 1;
  EXPECT_FALSE(k->open(bad_nonce, {}, wire, sink));
  const Bytes aad = bytes_of("header");
  EXPECT_FALSE(k->open(nonce, aad, wire, sink));
}

std::vector<RoundtripCase> roundtrip_cases() {
  std::vector<RoundtripCase> cases;
  for (const std::string& name : all_provider_names()) {
    for (std::size_t size :
         {0u, 1u, 15u, 16u, 17u, 255u, 1024u, 65536u, 100000u}) {
      cases.push_back({name, size});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GcmRoundtripTest, ::testing::ValuesIn(roundtrip_cases()),
    [](const ::testing::TestParamInfo<RoundtripCase>& info) {
      std::string name = info.param.provider;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_" + std::to_string(info.param.size) + "b";
    });

TEST(GcmCrossProvider, AllTiersProduceIdenticalWire) {
  // Four independently implemented engines agreeing on every byte is
  // the strongest internal correctness check we have.
  Xoshiro256 rng(0xC0FFEE);
  const Bytes key = demo_key(32);
  std::vector<AeadKeyPtr> keys;
  for (const Provider& p : providers()) keys.push_back(p.make_key(key));

  for (std::size_t size : {0u, 1u, 16u, 33u, 1000u, 65536u, 70000u}) {
    const Bytes pt = rng.bytes(size);
    const Bytes nonce = rng.bytes(kGcmNonceBytes);
    const Bytes aad = rng.bytes(7);
    Bytes reference;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      Bytes wire(size + kGcmTagBytes);
      keys[i]->seal(nonce, aad, pt, wire);
      if (i == 0) {
        reference = wire;
      } else {
        ASSERT_EQ(wire, reference)
            << providers()[i].name << " diverges at size " << size;
      }
    }
  }
}

TEST(GcmNonce, NonStandardNonceLengthsSupported) {
  // The GHASH-derived J0 path (|IV| != 96 bits).
  Xoshiro256 rng(0xABCD);
  const GcmKey<AesPortable, GhashTable4> k(demo_key(32), "test");
  const GcmKey<AesTtable, GhashTable8> k2(demo_key(32), "test");
  for (std::size_t nonce_len : {1u, 8u, 16u, 60u}) {
    const Bytes nonce = rng.bytes(nonce_len);
    const Bytes pt = rng.bytes(100);
    Bytes w1(pt.size() + kGcmTagBytes);
    Bytes w2(pt.size() + kGcmTagBytes);
    k.seal(nonce, {}, pt, w1);
    k2.seal(nonce, {}, pt, w2);
    ASSERT_EQ(w1, w2);
    Bytes back(pt.size());
    ASSERT_TRUE(k.open(nonce, {}, w1, back));
    ASSERT_EQ(back, pt);
  }
}

TEST(GcmNonce, DifferentNoncesGiveDifferentCiphertexts) {
  const AeadKeyPtr k = make_aes_gcm("libsodium-sim", demo_key(32));
  const Bytes pt = bytes_of("same message, different nonce");
  Bytes w1(pt.size() + kGcmTagBytes);
  Bytes w2(pt.size() + kGcmTagBytes);
  k->seal(from_hex("000000000000000000000001"), {}, pt, w1);
  k->seal(from_hex("000000000000000000000002"), {}, pt, w2);
  EXPECT_NE(w1, w2);
}

TEST(GcmErrors, WrongBufferSizesThrow) {
  const AeadKeyPtr k = make_aes_gcm("cryptopp-sim", demo_key(32));
  const Bytes nonce(kGcmNonceBytes, 0);
  const Bytes pt(10, 0);
  Bytes small(10);  // needs 26
  EXPECT_THROW(k->seal(nonce, {}, pt, small), std::invalid_argument);

  Bytes wire(26);
  k->seal(nonce, {}, pt, wire);
  Bytes wrong(11);
  EXPECT_THROW((void)k->open(nonce, {}, wire, wrong), std::invalid_argument);
}

TEST(GcmErrors, TruncatedWireFailsCleanly) {
  const AeadKeyPtr k = make_aes_gcm("cryptopp-sim", demo_key(32));
  Bytes sink;
  EXPECT_FALSE(k->open(Bytes(12, 0), {}, Bytes(5, 0), sink));
}

TEST(GcmNi, AvailabilityMatchesCpuid) {
  if (gcm_ni_available()) {
    EXPECT_NO_THROW((void)make_gcm_ni(demo_key(32)));
  } else {
    EXPECT_THROW((void)make_gcm_ni(demo_key(32)), std::runtime_error);
  }
}

}  // namespace
}  // namespace emc::crypto
