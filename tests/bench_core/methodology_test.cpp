// The paper's stopping rule, the table/CSV reporters, size parsing.
#include <gtest/gtest.h>

#include <sstream>

#include "emc/bench_core/args.hpp"
#include "emc/bench_core/methodology.hpp"
#include "emc/bench_core/report.hpp"
#include "emc/common/rng.hpp"

namespace emc::bench {
namespace {

TEST(Methodology, StableSampleStopsAtMinRuns) {
  int calls = 0;
  const MeasureResult result = run_until_stable([&] {
    ++calls;
    return 10.0;  // zero variance
  });
  EXPECT_TRUE(result.stable);
  EXPECT_EQ(result.runs, 20u);  // the paper's minimum
  EXPECT_EQ(calls, 20);
  EXPECT_DOUBLE_EQ(result.mean, 10.0);
}

TEST(Methodology, NoisySampleRunsLonger) {
  Xoshiro256 rng(11);
  int calls = 0;
  const MeasureResult result = run_until_stable([&] {
    ++calls;
    // ~30% relative noise: needs more than 20 runs.
    return 100.0 + 60.0 * (rng.next_double() - 0.5);
  });
  EXPECT_GT(result.runs, 20u);
  EXPECT_NEAR(result.mean, 100.0, 10.0);
}

TEST(Methodology, FallsBackToConfidenceInterval) {
  // Noise too large for the stddev rule but the CI rule succeeds with
  // enough samples (CI shrinks as 1/sqrt(n), stddev does not).
  Xoshiro256 rng(12);
  const MeasureResult result = run_until_stable([&] {
    return 100.0 + 40.0 * (rng.next_double() - 0.5);
  });
  EXPECT_TRUE(result.stable);
  EXPECT_GE(result.runs, 100u);  // reached phase 2
  EXPECT_LE(result.runs, 300u);
}

TEST(Methodology, HardCapTerminatesPathologicalSamples) {
  Xoshiro256 rng(13);
  StabilityPolicy policy;
  policy.hard_cap = 150;
  const MeasureResult result = run_until_stable(
      [&] { return rng.next_double() < 0.5 ? 1.0 : 1000.0; }, policy);
  EXPECT_EQ(result.runs, 150u);
  EXPECT_FALSE(result.stable);
}

TEST(Methodology, QuickPolicyIsCheap) {
  int calls = 0;
  const MeasureResult result = run_until_stable(
      [&] {
        ++calls;
        return 5.0;
      },
      StabilityPolicy::quick());
  EXPECT_EQ(result.runs, 3u);
  EXPECT_TRUE(result.stable);
}

TEST(Overhead, MatchesPaperArithmetic) {
  // BoringSSL NAS on Ethernet: 99.81s vs 88.52s baseline -> 12.75%.
  EXPECT_NEAR(overhead_percent(88.52, 99.81), 12.75, 0.01);
  EXPECT_DOUBLE_EQ(overhead_percent(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(overhead_percent(100.0, 50.0), -50.0);
  EXPECT_DOUBLE_EQ(overhead_percent(0.0, 10.0), 0.0);
}

TEST(Report, TableRendersAndRejectsBadRows) {
  Table table("Ping-pong", {"size", "MB/s"});
  table.add_row({"1B", "0.05"});
  table.add_row({"2MB", "1038.00"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);

  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Ping-pong"), std::string::npos);
  EXPECT_NE(text.find("1038.00"), std::string::npos);

  std::ostringstream csv;
  table.write_csv(csv);
  EXPECT_EQ(csv.str(), "size,MB/s\n1B,0.05\n2MB,1038.00\n");
}

TEST(Report, CsvQuotesCellsWithSeparators) {
  // fmt_us groups thousands with commas; such cells must be quoted so
  // the CSV keeps its column structure, with embedded quotes doubled.
  Table table("Alltoall", {"size", "latency"});
  table.add_row({"2MB", fmt_us(1.01542e-3)});
  table.add_row({"a \"b\"", "plain"});

  std::ostringstream csv;
  table.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "size,latency\n2MB,\"1,015.42\"\n\"a \"\"b\"\"\",plain\n");
}

TEST(Report, SizeLabels) {
  EXPECT_EQ(size_label(1), "1B");
  EXPECT_EQ(size_label(256), "256B");
  EXPECT_EQ(size_label(16 * 1024), "16KB");
  EXPECT_EQ(size_label(2 * 1024 * 1024), "2MB");
  EXPECT_EQ(size_label(1500), "1500B");  // not a clean KB multiple
}

TEST(Report, Formatting) {
  EXPECT_EQ(fmt_mbps(1.038e9, 2), "1038.00");
  EXPECT_EQ(fmt_us(1.96629947, 2), "1,966,299.47");
  EXPECT_EQ(fmt_percent(78.3), "+78.3%");
  EXPECT_EQ(fmt_percent(-5.25, 2), "-5.25%");
}

TEST(Report, ParseSize) {
  EXPECT_EQ(parse_size("1"), 1u);
  EXPECT_EQ(parse_size("16k"), 16u * 1024);
  EXPECT_EQ(parse_size("16KB"), 16u * 1024);
  EXPECT_EQ(parse_size("2m"), 2u * 1024 * 1024);
  EXPECT_THROW((void)parse_size("2q"), std::invalid_argument);
  EXPECT_THROW((void)parse_size(""), std::invalid_argument);
}

TEST(ArgsParser, ParsesFlagsValuesAndPositionals) {
  const char* argv[] = {"/path/to/bench_pingpong", "--net=ib", "--quick",
                        "--runs=7", "extra"};
  Args args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.program(), "bench_pingpong");
  EXPECT_TRUE(args.has("quick"));
  EXPECT_FALSE(args.has("verbose"));
  EXPECT_EQ(args.get("net", "eth"), "ib");
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("runs", 1), 7);
  EXPECT_EQ(args.get_int("other", 3), 3);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "extra");
}

}  // namespace
}  // namespace emc::bench
