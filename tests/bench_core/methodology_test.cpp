// The paper's stopping rule, the table/CSV reporters, size parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "emc/bench_core/args.hpp"
#include "emc/bench_core/methodology.hpp"
#include "emc/bench_core/report.hpp"
#include "emc/common/rng.hpp"

namespace emc::bench {
namespace {

TEST(Methodology, StableSampleStopsAtMinRuns) {
  int calls = 0;
  const MeasureResult result = run_until_stable([&] {
    ++calls;
    return 10.0;  // zero variance
  });
  EXPECT_TRUE(result.stable);
  EXPECT_EQ(result.runs, 20u);  // the paper's minimum
  EXPECT_EQ(calls, 20);
  EXPECT_DOUBLE_EQ(result.mean, 10.0);
}

TEST(Methodology, NoisySampleRunsLonger) {
  Xoshiro256 rng(11);
  int calls = 0;
  const MeasureResult result = run_until_stable([&] {
    ++calls;
    // ~30% relative noise: needs more than 20 runs.
    return 100.0 + 60.0 * (rng.next_double() - 0.5);
  });
  EXPECT_GT(result.runs, 20u);
  EXPECT_NEAR(result.mean, 100.0, 10.0);
}

TEST(Methodology, FallsBackToConfidenceInterval) {
  // Noise too large for the stddev rule but the CI rule succeeds with
  // enough samples (CI shrinks as 1/sqrt(n), stddev does not).
  Xoshiro256 rng(12);
  const MeasureResult result = run_until_stable([&] {
    return 100.0 + 40.0 * (rng.next_double() - 0.5);
  });
  EXPECT_TRUE(result.stable);
  EXPECT_GE(result.runs, 100u);  // reached phase 2
  EXPECT_LE(result.runs, 300u);
}

TEST(Methodology, HardCapTerminatesPathologicalSamples) {
  Xoshiro256 rng(13);
  StabilityPolicy policy;
  policy.hard_cap = 150;
  const MeasureResult result = run_until_stable(
      [&] { return rng.next_double() < 0.5 ? 1.0 : 1000.0; }, policy);
  EXPECT_EQ(result.runs, 150u);
  EXPECT_FALSE(result.stable);
}

TEST(Methodology, QuickPolicyIsCheap) {
  int calls = 0;
  const MeasureResult result = run_until_stable(
      [&] {
        ++calls;
        return 5.0;
      },
      StabilityPolicy::quick());
  EXPECT_EQ(result.runs, 3u);
  EXPECT_TRUE(result.stable);
}

TEST(Overhead, MatchesPaperArithmetic) {
  // BoringSSL NAS on Ethernet: 99.81s vs 88.52s baseline -> 12.75%.
  EXPECT_NEAR(overhead_percent(88.52, 99.81), 12.75, 0.01);
  EXPECT_DOUBLE_EQ(overhead_percent(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(overhead_percent(100.0, 50.0), -50.0);
}

TEST(Overhead, ZeroBaselineIsUndefinedNotZero) {
  // A degenerate zero baseline must not masquerade as "no overhead":
  // the result is NaN, which the report layer renders as "n/a".
  EXPECT_TRUE(std::isnan(overhead_percent(0.0, 10.0)));
  EXPECT_EQ(fmt_percent(overhead_percent(0.0, 10.0)), "n/a");
}

TEST(Methodology, MeasureResultCarriesMedianAndCi) {
  const MeasureResult r = run_until_stable([] { return 10.0; });
  EXPECT_DOUBLE_EQ(r.median, 10.0);
  EXPECT_DOUBLE_EQ(r.ci95_low, 10.0);
  EXPECT_DOUBLE_EQ(r.ci95_high, 10.0);
  EXPECT_DOUBLE_EQ(r.rel_stddev, 0.0);
  EXPECT_EQ(r.runs, 20u);

  const MeasureResult one = MeasureResult::single(7.5);
  EXPECT_DOUBLE_EQ(one.mean, 7.5);
  EXPECT_DOUBLE_EQ(one.median, 7.5);
  EXPECT_DOUBLE_EQ(one.ci95_low, 7.5);
  EXPECT_DOUBLE_EQ(one.ci95_high, 7.5);
  EXPECT_EQ(one.runs, 1u);
  EXPECT_TRUE(one.stable);
}

TEST(Methodology, SaltScheduleCyclesDistinctSalts) {
  SaltSchedule schedule;
  schedule.salts = 4;
  schedule.seed = 9;
  // Slot 0 is always the unperturbed FIFO order.
  EXPECT_EQ(schedule.salt_for(0), 0u);
  EXPECT_EQ(schedule.salt_for(4), 0u);  // cycles with period K
  std::set<std::uint64_t> distinct;
  for (std::size_t run = 0; run < 8; ++run) {
    distinct.insert(schedule.salt_for(run));
    EXPECT_EQ(schedule.salt_for(run), schedule.salt_for(run + 4)) << run;
  }
  EXPECT_EQ(distinct.size(), 4u);  // 0 plus three derived non-zero salts
  for (std::size_t slot = 1; slot < 4; ++slot) {
    EXPECT_NE(schedule.salt_for(slot), 0u) << slot;
  }

  SaltSchedule single;
  single.salts = 1;
  for (std::size_t run = 0; run < 5; ++run) {
    EXPECT_EQ(single.salt_for(run), 0u);
  }
}

TEST(Methodology, RunScheduleFeedsSaltsToSamples) {
  SaltSchedule schedule;
  schedule.salts = 3;
  schedule.seed = 2;
  std::vector<std::uint64_t> seen;
  const MeasureResult r = run_schedule(
      [&](std::uint64_t salt) {
        seen.push_back(salt);
        return 42.0;
      },
      StabilityPolicy::quick(), schedule);
  EXPECT_TRUE(r.stable);
  ASSERT_EQ(seen.size(), r.runs);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], schedule.salt_for(i)) << i;
  }
  EXPECT_DOUBLE_EQ(r.median, 42.0);
}

TEST(Methodology, RunSchedulePhase2ConvergesWithCi) {
  // Noise too big for the 5% stddev rule; phase 2's t-based CI rule
  // must stop it, and the bootstrap median CI must bracket the median.
  Xoshiro256 rng(21);
  const MeasureResult r = run_schedule(
      [&](std::uint64_t) { return 100.0 + 40.0 * (rng.next_double() - 0.5); },
      StabilityPolicy{}, SaltSchedule{});
  EXPECT_TRUE(r.stable);
  EXPECT_GE(r.runs, 100u);
  EXPECT_NEAR(r.median, 100.0, 10.0);
  EXPECT_LE(r.ci95_low, r.median);
  EXPECT_GE(r.ci95_high, r.median);
  EXPECT_LT(r.ci95_low, r.ci95_high);
  EXPECT_GT(r.rel_stddev, 0.0);
}

TEST(Report, TableRendersAndRejectsBadRows) {
  Table table("Ping-pong", {"size", "MB/s"});
  table.add_row({"1B", "0.05"});
  table.add_row({"2MB", "1038.00"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);

  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Ping-pong"), std::string::npos);
  EXPECT_NE(text.find("1038.00"), std::string::npos);

  std::ostringstream csv;
  table.write_csv(csv);
  EXPECT_EQ(csv.str(), "size,MB/s\n1B,0.05\n2MB,1038.00\n");
}

TEST(Report, CsvQuotesCellsWithSeparators) {
  // fmt_us groups thousands with commas; such cells must be quoted so
  // the CSV keeps its column structure, with embedded quotes doubled.
  Table table("Alltoall", {"size", "latency"});
  table.add_row({"2MB", fmt_us(1.01542e-3)});
  table.add_row({"a \"b\"", "plain"});

  std::ostringstream csv;
  table.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "size,latency\n2MB,\"1,015.42\"\n\"a \"\"b\"\"\",plain\n");
}

TEST(Report, SizeLabels) {
  EXPECT_EQ(size_label(1), "1B");
  EXPECT_EQ(size_label(256), "256B");
  EXPECT_EQ(size_label(16 * 1024), "16KB");
  EXPECT_EQ(size_label(2 * 1024 * 1024), "2MB");
  EXPECT_EQ(size_label(1500), "1500B");  // not a clean KB multiple
}

TEST(Report, Formatting) {
  EXPECT_EQ(fmt_mbps(1.038e9, 2), "1038.00");
  EXPECT_EQ(fmt_us(1.96629947, 2), "1,966,299.47");
  EXPECT_EQ(fmt_percent(78.3), "+78.3%");
  EXPECT_EQ(fmt_percent(-5.25, 2), "-5.25%");
}

TEST(Report, ParseSize) {
  EXPECT_EQ(parse_size("1"), 1u);
  EXPECT_EQ(parse_size("16k"), 16u * 1024);
  EXPECT_EQ(parse_size("16KB"), 16u * 1024);
  EXPECT_EQ(parse_size("2m"), 2u * 1024 * 1024);
  EXPECT_THROW((void)parse_size("2q"), std::invalid_argument);
  EXPECT_THROW((void)parse_size(""), std::invalid_argument);
}

TEST(ArgsParser, ParsesFlagsValuesAndPositionals) {
  const char* argv[] = {"/path/to/bench_pingpong", "--net=ib", "--quick",
                        "--runs=7", "extra"};
  Args args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.program(), "bench_pingpong");
  EXPECT_TRUE(args.has("quick"));
  EXPECT_FALSE(args.has("verbose"));
  EXPECT_EQ(args.get("net", "eth"), "ib");
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("runs", 1), 7);
  EXPECT_EQ(args.get_int("other", 3), 3);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "extra");
}

TEST(ArgsParser, ParsesDoubles) {
  const char* argv[] = {"bench", "--cpu-scale=0.5"};
  Args args(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("cpu-scale", 1.0), 0.5);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(ArgsParser, AllowOnlyAcceptsKnownFlags) {
  const char* argv[] = {"bench", "--net=ib", "--quick"};
  Args args(3, const_cast<char**>(argv));
  args.allow_only({"net", "quick", "iters"});  // must not exit
}

using ArgsDeath = ::testing::Test;

TEST(ArgsDeath, NonNumericIntExitsWithUsage) {
  const char* argv[] = {"bench", "--iters=abc"};
  Args args(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)args.get_int("iters", 1),
              ::testing::ExitedWithCode(2), "not an integer");
}

TEST(ArgsDeath, TrailingJunkIntExitsWithUsage) {
  const char* argv[] = {"bench", "--iters=12x"};
  Args args(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)args.get_int("iters", 1),
              ::testing::ExitedWithCode(2), "trailing junk");
}

TEST(ArgsDeath, NonNumericDoubleExitsWithUsage) {
  const char* argv[] = {"bench", "--cpu-scale=fast"};
  Args args(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)args.get_double("cpu-scale", 1.0),
              ::testing::ExitedWithCode(2), "not a number");
}

TEST(ArgsDeath, UnknownFlagFailsAllowOnly) {
  const char* argv[] = {"bench", "--nett=ib"};
  Args args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.allow_only({"net", "quick"}),
              ::testing::ExitedWithCode(2), "unknown option --nett");
}

TEST(ArgsDeath, EmptyValueIsRejectedAtParse) {
  const char* argv[] = {"bench", "--iters="};
  EXPECT_EXIT((Args(2, const_cast<char**>(argv))),
              ::testing::ExitedWithCode(2), "empty value for --iters");
}

TEST(Report, AttachStatsGrowsCsvColumns) {
  Table table("T", {"size", "MB/s"});
  table.add_row({"1B", "0.05"});
  MeasureResult r;
  r.mean = 0.05e6;
  r.median = 0.05e6;
  r.ci95_low = 0.04e6;
  r.ci95_high = 0.06e6;
  r.rel_stddev = 1.5;
  r.runs = 20;
  table.attach_stats(1, r, 1e-6);
  table.add_row({"2MB", "1038.00"});  // no stats on this row

  std::ostringstream csv;
  table.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "size,MB/s,MB/s_median,MB/s_ci95_low,MB/s_ci95_high,"
            "MB/s_rel_stddev,MB/s_n_runs\n"
            "1B,0.05,0.0500,0.0400,0.0600,1.5000,20\n"
            "2MB,1038.00,,,,,\n");
}

TEST(Report, AttachStatsValidates) {
  Table table("T", {"a", "b"});
  MeasureResult r;
  EXPECT_THROW(table.attach_stats(1, r), std::logic_error);
  table.add_row({"x", "y"});
  EXPECT_THROW(table.attach_stats(2, r), std::invalid_argument);
}

}  // namespace
}  // namespace emc::bench
