// BENCH_<area>.json emission: JSON round-trip (including NaN <-> null),
// the campaign-shape config hash, and the Trajectory collector.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "emc/bench_core/trajectory.hpp"

namespace emc::bench {
namespace {

TrajectoryFile sample_file() {
  TrajectoryFile f;
  f.area = "pingpong";
  f.git_sha = "0123456789abcdef";
  f.settings = "net=eth policy=quick salts=3 seed=1";
  f.host_wall_seconds = 5.25;
  f.engine_events = 55352;
  f.events_per_second = 10543.238;
  TrajectoryRow row;
  row.config = "eth/BoringSSL/16KB";
  row.metric = "throughput";
  row.unit = "MB/s";
  row.higher_is_better = true;
  row.mean = 179.78;
  row.median = 180.25;
  row.ci95_low = 175.0;
  row.ci95_high = 184.5;
  row.rel_stddev = 2.1;
  row.n_runs = 9;
  row.stable = true;
  f.rows.push_back(row);
  TrajectoryRow latency;
  latency.config = "eth/Bcast/CryptoPP/4MB";
  latency.metric = "time";
  latency.unit = "us";
  latency.higher_is_better = false;
  latency.mean = 1.5e5;
  latency.median = std::numeric_limits<double>::quiet_NaN();  // -> null
  latency.ci95_low = std::numeric_limits<double>::quiet_NaN();
  latency.ci95_high = std::numeric_limits<double>::quiet_NaN();
  latency.n_runs = 1;
  f.rows.push_back(latency);
  f.config_hash = trajectory_config_hash(f);
  return f;
}

TEST(Trajectory, JsonRoundTripPreservesEverything) {
  const TrajectoryFile f = sample_file();
  std::stringstream ss;
  write_trajectory_json(ss, f);
  const TrajectoryFile back = parse_trajectory_json(ss);

  EXPECT_EQ(back.schema_version, 1);
  EXPECT_EQ(back.area, f.area);
  EXPECT_EQ(back.git_sha, f.git_sha);
  EXPECT_EQ(back.config_hash, f.config_hash);
  EXPECT_EQ(back.settings, f.settings);
  EXPECT_DOUBLE_EQ(back.host_wall_seconds, f.host_wall_seconds);
  EXPECT_EQ(back.engine_events, f.engine_events);
  EXPECT_DOUBLE_EQ(back.events_per_second, f.events_per_second);
  ASSERT_EQ(back.rows.size(), 2u);

  const TrajectoryRow& r = back.rows[0];
  EXPECT_EQ(r.config, "eth/BoringSSL/16KB");
  EXPECT_EQ(r.metric, "throughput");
  EXPECT_EQ(r.unit, "MB/s");
  EXPECT_TRUE(r.higher_is_better);
  EXPECT_DOUBLE_EQ(r.mean, 179.78);
  EXPECT_DOUBLE_EQ(r.median, 180.25);
  EXPECT_DOUBLE_EQ(r.ci95_low, 175.0);
  EXPECT_DOUBLE_EQ(r.ci95_high, 184.5);
  EXPECT_DOUBLE_EQ(r.rel_stddev, 2.1);
  EXPECT_EQ(r.n_runs, 9u);
  EXPECT_TRUE(r.stable);
}

TEST(Trajectory, NanSerializesAsNullAndBack) {
  const TrajectoryFile f = sample_file();
  std::stringstream ss;
  write_trajectory_json(ss, f);
  const std::string text = ss.str();
  EXPECT_NE(text.find("\"median\": null"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);

  const TrajectoryFile back = parse_trajectory_json(ss);
  ASSERT_EQ(back.rows.size(), 2u);
  EXPECT_TRUE(std::isnan(back.rows[1].median));
  EXPECT_TRUE(std::isnan(back.rows[1].ci95_low));
  EXPECT_FALSE(back.rows[1].higher_is_better);
  EXPECT_DOUBLE_EQ(back.rows[1].mean, 1.5e5);
}

TEST(Trajectory, ParseRejectsGarbageAndWrongSchema) {
  {
    std::stringstream ss("{not json");
    EXPECT_THROW((void)parse_trajectory_json(ss), std::runtime_error);
  }
  {
    std::stringstream ss(R"({"schema_version": 99, "area": "x"})");
    EXPECT_THROW((void)parse_trajectory_json(ss), std::runtime_error);
  }
}

TEST(Trajectory, ConfigHashTracksCampaignShapeOnly) {
  TrajectoryFile a = sample_file();
  TrajectoryFile b = sample_file();
  // Measured values do not change the shape...
  b.rows[0].median *= 2.0;
  b.host_wall_seconds = 99.0;
  b.git_sha = "ffffffffffffffff";
  EXPECT_EQ(trajectory_config_hash(a), trajectory_config_hash(b));
  // ...but the row set and the settings do.
  b.rows[0].config = "eth/BoringSSL/32KB";
  EXPECT_NE(trajectory_config_hash(a), trajectory_config_hash(b));
  TrajectoryFile c = sample_file();
  c.settings = "net=ib policy=quick salts=3 seed=1";
  EXPECT_NE(trajectory_config_hash(a), trajectory_config_hash(c));
}

TEST(Trajectory, CollectorFillsHostMetrics) {
  Trajectory traj("unit_test_area");
  traj.set_settings("policy=test");
  MeasureResult m;
  m.mean = 2.0;
  m.median = 2.0;
  m.ci95_low = 1.9;
  m.ci95_high = 2.1;
  m.runs = 5;
  m.stable = true;
  traj.add("cfg/a", "throughput", "MB/s", true, m);
  traj.add_scalar("cfg/b", "time", "s", false, 0.25);

  const TrajectoryFile snap = traj.snapshot();
  EXPECT_EQ(snap.area, "unit_test_area");
  EXPECT_EQ(snap.settings, "policy=test");
  EXPECT_EQ(snap.config_hash, trajectory_config_hash(snap));
  EXPECT_GE(snap.host_wall_seconds, 0.0);
  ASSERT_EQ(snap.rows.size(), 2u);
  EXPECT_EQ(snap.rows[0].n_runs, 5u);
  EXPECT_DOUBLE_EQ(snap.rows[1].mean, 0.25);
  EXPECT_DOUBLE_EQ(snap.rows[1].median, 0.25);
  EXPECT_EQ(snap.rows[1].n_runs, 1u);
  EXPECT_FALSE(snap.rows[1].higher_is_better);
}

}  // namespace
}  // namespace emc::bench
