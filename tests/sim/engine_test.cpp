// Discrete-event engine semantics: virtual-clock ordering,
// determinism, waitable hand-off, charge accounting, error paths.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "emc/sim/engine.hpp"

namespace emc::sim {
namespace {

TEST(Engine, SingleProcessAdvancesClock) {
  Engine engine(1);
  const Time end = engine.run([](Process& p) {
    EXPECT_EQ(p.now(), 0.0);
    p.advance(1.5);
    EXPECT_DOUBLE_EQ(p.now(), 1.5);
    p.advance(0.5);
    EXPECT_DOUBLE_EQ(p.now(), 2.0);
  });
  EXPECT_DOUBLE_EQ(end, 2.0);
}

TEST(Engine, NegativeOrZeroAdvanceIsNoop) {
  Engine engine(1);
  const Time end = engine.run([](Process& p) {
    p.advance(0.0);
    p.advance(-5.0);
  });
  EXPECT_DOUBLE_EQ(end, 0.0);
}

TEST(Engine, ProcessesInterleaveByVirtualTime) {
  // Two processes advancing different amounts must observe a globally
  // ordered clock: the recorded (time, index) sequence is sorted.
  Engine engine(2);
  std::vector<std::pair<double, int>> log;
  engine.run([&log](Process& p) {
    const double step = p.index() == 0 ? 1.0 : 0.4;
    for (int i = 0; i < 5; ++i) {
      p.advance(step);
      log.emplace_back(p.now(), p.index());
    }
  });
  ASSERT_EQ(log.size(), 10u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].first, log[i].first) << "clock went backwards";
  }
}

TEST(Engine, RunsEveryProcessExactlyOnce) {
  Engine engine(17);
  std::atomic<int> count{0};
  engine.run([&count](Process&) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 17);
}

TEST(Engine, WaitableHandsOffBetweenProcesses) {
  // Process 1 waits; process 0 advances then notifies; the waiter
  // resumes at the notifier's clock.
  Engine engine(2);
  Waitable ready;
  bool flag = false;
  double waiter_resume_time = -1.0;
  engine.run([&](Process& p) {
    if (p.index() == 0) {
      p.advance(2.0);
      flag = true;
      p.notify_all(ready);
    } else {
      while (!flag) p.wait(ready);
      waiter_resume_time = p.now();
    }
  });
  EXPECT_DOUBLE_EQ(waiter_resume_time, 2.0);
}

TEST(Engine, NotifyOneReleasesSingleWaiter) {
  Engine engine(3);
  Waitable gate;
  int released = 0;
  int token = 0;
  engine.run([&](Process& p) {
    if (p.index() == 0) {
      p.advance(1.0);
      token = 1;
      p.notify_one(gate);
      p.advance(1.0);
      token = 2;
      p.notify_all(gate);
    } else {
      while (token == 0 ||
             (released >= 1 && token < 2)) {
        p.wait(gate);
      }
      ++released;
    }
  });
  EXPECT_EQ(released, 2);
}

TEST(Engine, DeadlockIsDetected) {
  Engine engine(2);
  Waitable never;
  EXPECT_THROW(engine.run([&never](Process& p) { p.wait(never); }), Deadlock);
}

TEST(Engine, ExceptionInOneProcessPropagates) {
  Engine engine(4);
  Waitable never;
  EXPECT_THROW(engine.run([&never](Process& p) {
                 if (p.index() == 2) throw std::logic_error("boom");
                 p.wait(never);  // others parked; must be torn down
               }),
               std::logic_error);
}

TEST(Engine, ChargeBillsMeasuredTime) {
  Engine engine(1);
  engine.run([](Process& p) {
    const double before = p.now();
    const double measured = p.charge([] {
      volatile double x = 0;
      for (int i = 0; i < 100000; ++i) x += i;
    });
    EXPECT_GT(measured, 0.0);
    EXPECT_DOUBLE_EQ(p.now(), before + measured);
  });
}

TEST(Engine, ChargeScaleMultiplies) {
  Engine engine(1);
  engine.run([](Process& p) {
    const double measured = p.charge(
        [] {
          volatile double x = 0;
          for (int i = 0; i < 100000; ++i) x += i;
        },
        2.0);
    EXPECT_NEAR(p.now(), 2.0 * measured, 1e-12);
  });
}

TEST(Engine, RepeatedRunsAccumulateTime) {
  Engine engine(2);
  const Time t1 = engine.run([](Process& p) { p.advance(1.0); });
  EXPECT_DOUBLE_EQ(t1, 1.0);
  const Time t2 = engine.run([](Process& p) { p.advance(1.0); });
  EXPECT_DOUBLE_EQ(t2, 2.0);
}

TEST(Engine, SameTimeEventsOrderedBySchedulingSequence) {
  // Determinism check: repeated identical runs produce identical logs.
  auto run_once = [] {
    Engine engine(4);
    std::vector<int> order;
    engine.run([&order](Process& p) {
      for (int i = 0; i < 3; ++i) {
        p.advance(1.0);  // all processes collide at t=1,2,3
        order.push_back(p.index());
      }
    });
    return order;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Engine, YieldDoesNotAdvanceClock) {
  Engine engine(1);
  const Time end = engine.run([](Process& p) {
    p.advance(1.0);
    p.yield();
    EXPECT_DOUBLE_EQ(p.now(), 1.0);
  });
  EXPECT_DOUBLE_EQ(end, 1.0);
}

TEST(Engine, ChargeScaleCalibratesVirtualCost) {
  Engine engine(1);
  engine.set_charge_scale(0.5);
  EXPECT_DOUBLE_EQ(engine.charge_scale(), 0.5);
  engine.run([](Process& p) {
    EXPECT_DOUBLE_EQ(p.charge_scale(), 0.5);
    const double measured = p.charge([] {
      volatile double x = 0;
      for (int i = 0; i < 200000; ++i) x += i;
    });
    // Virtual cost is half the measured host cost.
    EXPECT_NEAR(p.now(), 0.5 * measured, 1e-12);
  });
}

TEST(Engine, ChargeScaleComposesWithExplicitScale) {
  Engine engine(1);
  engine.set_charge_scale(2.0);
  engine.run([](Process& p) {
    const double measured = p.charge(
        [] {
          volatile double x = 0;
          for (int i = 0; i < 200000; ++i) x += i;
        },
        3.0);
    EXPECT_NEAR(p.now(), 6.0 * measured, 1e-12);
  });
}

TEST(Engine, ManyProcessesScale) {
  // 64 ranks is the paper's largest setting; make sure the engine
  // handles it with plenty of context switches.
  Engine engine(64);
  std::atomic<long> switches{0};
  engine.run([&switches](Process& p) {
    for (int i = 0; i < 50; ++i) {
      p.advance(0.001 * (p.index() + 1));
      switches.fetch_add(1);
    }
  });
  EXPECT_EQ(switches.load(), 64 * 50);
}

TEST(Engine, WaitForReturnsTrueWhenNotifiedBeforeDeadline) {
  Engine engine(2);
  Waitable ready;
  bool notified = false;
  engine.run([&](Process& p) {
    if (p.index() == 0) {
      p.advance(1.0);
      p.notify_all(ready);
    } else {
      notified = p.wait_for(ready, 10.0);
      EXPECT_DOUBLE_EQ(p.now(), 1.0);  // resumed at notify time
    }
  });
  EXPECT_TRUE(notified);
}

TEST(Engine, WaitForTimesOutAtDeadline) {
  Engine engine(2);
  Waitable never;
  bool notified = true;
  engine.run([&](Process& p) {
    if (p.index() == 0) {
      p.advance(5.0);  // keeps the world alive past the deadline
    } else {
      notified = p.wait_for(never, 2.5);
      EXPECT_DOUBLE_EQ(p.now(), 2.5);  // woke exactly at the deadline
    }
  });
  EXPECT_FALSE(notified);
}

TEST(Engine, WaitForTimeoutDeregistersWaiter) {
  // After a timeout the process must be off the waiter list: a later
  // notify_all must not try to wake it a second time.
  Engine engine(2);
  Waitable cond;
  int wakeups = 0;
  engine.run([&](Process& p) {
    if (p.index() == 0) {
      p.advance(4.0);
      p.notify_all(cond);  // fires long after the waiter gave up
      p.advance(1.0);
    } else {
      if (!p.wait_for(cond, 1.0)) ++wakeups;
      p.advance(10.0);  // keep running; a stale wake would corrupt state
    }
  });
  EXPECT_EQ(wakeups, 1);
}

TEST(Engine, StaleTimeoutDoesNotRewakeNotifiedProcess) {
  // Notified before the deadline: the abandoned timeout entry still
  // sits in the ready heap at t=50.5 and must be skipped (epoch
  // guard), not grant the parked process a bogus second wake.
  Engine engine(2);
  Waitable ready;
  std::vector<double> resumes;
  engine.run([&](Process& p) {
    if (p.index() == 0) {
      p.advance(0.5);
      p.notify_all(ready);
      p.advance(100.0);     // outlive the stale timeout entry
      p.notify_all(ready);  // the only legitimate second wake
    } else {
      EXPECT_TRUE(p.wait_for(ready, 50.0));
      resumes.push_back(p.now());
      p.wait(ready);  // park again; only a real notify may wake us
      resumes.push_back(p.now());
    }
  });
  ASSERT_EQ(resumes.size(), 2u);
  EXPECT_DOUBLE_EQ(resumes[0], 0.5);
  EXPECT_DOUBLE_EQ(resumes[1], 100.5);  // not 50.5: stale entry ignored
}

// Order in which four processes (all scheduled at t=0) first run,
// under a given same-time tie-break salt.
std::vector<int> start_order(std::uint64_t salt) {
  Engine engine(4);
  engine.set_tiebreak_salt(salt);
  std::vector<int> order;
  engine.run([&order](Process& p) { order.push_back(p.index()); });
  return order;
}

TEST(Engine, TiebreakSaltZeroKeepsFifoOrderAndIsDeterministic) {
  EXPECT_EQ(start_order(0), (std::vector<int>{0, 1, 2, 3}));
  for (const std::uint64_t salt : {1ULL, 7ULL, 1234567ULL}) {
    EXPECT_EQ(start_order(salt), start_order(salt)) << "salt " << salt;
  }
}

TEST(Engine, SomeSaltPerturbsSameTimeOrdering) {
  // The salts exist to flush order-dependence out of same-time events;
  // at least one small salt must produce a non-FIFO start order.
  const auto baseline = start_order(0);
  bool differs = false;
  for (std::uint64_t salt = 1; salt <= 8 && !differs; ++salt) {
    differs = start_order(salt) != baseline;
  }
  EXPECT_TRUE(differs);
}

TEST(Engine, DeadlockExplainerTextIsAppended) {
  Engine engine(2);
  engine.set_deadlock_explainer([] { return std::string("extra context"); });
  Waitable never;
  try {
    engine.run([&never](Process& p) { p.wait(never); });
    FAIL() << "expected Deadlock";
  } catch (const Deadlock& e) {
    EXPECT_NE(std::string(e.what()).find("extra context"), std::string::npos)
        << e.what();
  }
}

TEST(Engine, ThrowingDeadlockExplainerIsSwallowed) {
  // A broken explainer must not mask the Deadlock report itself.
  Engine engine(1);
  engine.set_deadlock_explainer(
      []() -> std::string { throw std::runtime_error("broken explainer"); });
  Waitable never;
  EXPECT_THROW(engine.run([&never](Process& p) { p.wait(never); }), Deadlock);
}

}  // namespace
}  // namespace emc::sim
