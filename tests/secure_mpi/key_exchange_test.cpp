// Group key establishment (the paper's future-work key distribution):
// agreement across ranks, secrecy vs the wire, interoperability with
// SecureComm, and failure behaviour.
#include <gtest/gtest.h>

#include "emc/secure_mpi/key_exchange.hpp"
#include "emc/secure_mpi/secure_comm.hpp"

namespace emc::secure {
namespace {

using mpi::Comm;
using mpi::WorldConfig;

WorldConfig world_of(int nodes, int ranks_per_node) {
  WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = ranks_per_node;
  config.cluster.inter = net::ethernet_10g();
  return config;
}

/// Small deterministic group so tests stay fast; the 2048-bit RFC
/// group is exercised in bignum_test and the key_exchange example.
const crypto::DhGroup& test_group() {
  static const crypto::DhGroup group = crypto::generate_test_group(192, 42);
  return group;
}

TEST(KeyExchange, AllRanksDeriveTheSameKey) {
  std::vector<Bytes> keys(6);
  mpi::run_world(world_of(3, 2), [&](Comm& comm) {
    keys[static_cast<std::size_t>(comm.rank())] =
        establish_group_key(comm, test_group());
  });
  ASSERT_EQ(keys[0].size(), 32u);
  for (const Bytes& k : keys) EXPECT_EQ(k, keys[0]);
}

TEST(KeyExchange, DifferentSeedsGiveDifferentKeys) {
  const auto key_with_seed = [](std::uint64_t seed) {
    Bytes key;
    mpi::run_world(world_of(2, 1), [&](Comm& comm) {
      KeyExchangeConfig config;
      config.seed = seed;
      const Bytes k = establish_group_key(comm, test_group(), config);
      if (comm.rank() == 0) key = k;
    });
    return key;
  };
  EXPECT_NE(key_with_seed(1), key_with_seed(2));
}

TEST(KeyExchange, SessionKeyNeverAppearsOnTheWire) {
  // An eavesdropper sees public keys, wrapped keys, and the HMAC
  // confirmation — never the session key bytes themselves.
  mpi::run_world(world_of(2, 1), [&](Comm& comm) {
    // Snoop: wrap the exchange so rank 1 records what it receives.
    // Easiest check: the wrapped blob rank 1 receives does not contain
    // the final key as a substring.
    const Bytes key = establish_group_key(comm, test_group());
    EXPECT_EQ(key.size(), 32u);
    // The wrap is AES-GCM of the key under a KEK; equality of any
    // 32-byte window with the key would indicate plaintext leakage.
    // (Covered indirectly: unwrap requires the DH secret.)
  });
}

TEST(KeyExchange, EstablishedKeyDrivesSecureComm) {
  mpi::run_world(world_of(2, 2), [&](Comm& comm) {
    const Bytes session_key = establish_group_key(comm, test_group());

    SecureConfig config;
    config.provider = "libsodium-sim";  // 256-bit key: matches key_bytes
    config.key = session_key;
    config.charge_crypto = false;
    SecureComm secure(comm, config);

    Bytes data = comm.rank() == 0 ? bytes_of("distributed-key payload!")
                                  : Bytes(24);
    secure.bcast(data, 0);
    EXPECT_EQ(std::string(data.begin(), data.end()),
              "distributed-key payload!");
  });
}

TEST(KeyExchange, SixteenBitKeysSupported) {
  mpi::run_world(world_of(2, 1), [&](Comm& comm) {
    KeyExchangeConfig config;
    config.key_bytes = 16;
    const Bytes key = establish_group_key(comm, test_group(), config);
    EXPECT_EQ(key.size(), 16u);
  });
}

TEST(KeyExchange, HandshakeCostsVirtualTime) {
  const double t = mpi::run_world(world_of(2, 1), [&](Comm& comm) {
    (void)establish_group_key(comm, test_group());
  });
  EXPECT_GT(t, 0.0);  // modexp + wire traffic both charged
}

TEST(KeyExchange, TamperedWrapIsRejected) {
  // Corrupt the wrapped session key in transit: rank 1 must throw.
  EXPECT_THROW(
      mpi::run_world(world_of(2, 1),
                     [&](Comm& comm) {
                       if (comm.rank() == 0) {
                         // Run the root side of a real exchange, but
                         // corrupt the wrap before sending: simulate by
                         // sending garbage of the right size instead.
                         const auto width = test_group().byte_length();
                         Bytes publics(width * 2);
                         comm.allgather(Bytes(width, 1), publics);
                         Bytes bogus_wrap(12 + 32 + 16, 0xEE);
                         comm.send(bogus_wrap, 1, 901);
                       } else {
                         (void)establish_group_key(comm, test_group());
                       }
                     }),
      KeyExchangeError);
}

}  // namespace
}  // namespace emc::secure
