// Adversarial wire conditions against the secure layer: truncation,
// bit-flips, duplication/replay, cross-stream splicing, and drops.
// Every case must surface as IntegrityError (or a timeout MpiError
// for drops) — never undefined behaviour, silent corruption, or a
// deadlocked simulation. The faults come either from an attacker
// playing the plain protocol or from the fabric's FaultPlan.
#include <gtest/gtest.h>

#include <vector>

#include "emc/secure_mpi/secure_comm.hpp"

namespace emc::secure {
namespace {

using mpi::Comm;
using mpi::Status;
using mpi::World;
using mpi::WorldConfig;

WorldConfig world_of(int nodes, int rpn) {
  WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = rpn;
  config.cluster.inter = net::ethernet_10g();
  return config;
}

SecureConfig plain_crypto() {
  SecureConfig config;
  config.charge_crypto = false;
  return config;
}

TEST(AdversarialWire, TruncatedBelowOverheadRejectedOnRecvAndWait) {
  // Wire images shorter than nonce+tag (28 bytes) used to underflow
  // `bytes - kWireOverhead`; now they fail the length check before
  // any size arithmetic, through both recv and irecv/wait.
  mpi::run_world(world_of(2, 1), [](Comm& comm) {
    SecureComm secure(comm, plain_crypto());
    if (comm.rank() == 0) {
      comm.send(Bytes(27, 0x00), 1, 7);  // one byte short of the framing
      comm.send(Bytes(5, 0x00), 1, 7);   // grossly short
      comm.send(Bytes{}, 1, 7);          // empty wire
    } else {
      Bytes buf(64);
      EXPECT_THROW((void)secure.recv(buf, 0, 7), IntegrityError);
      mpi::Request r = secure.irecv(buf, 0, 7);
      EXPECT_THROW((void)secure.wait(r), IntegrityError);
      EXPECT_THROW((void)secure.recv(buf, 0, 7), IntegrityError);
      EXPECT_EQ(secure.counters().length_failures, 3u);
      EXPECT_EQ(secure.counters().faults_detected(), 3u);
    }
  });
}

TEST(AdversarialWire, TruncatedBcastRejected) {
  EXPECT_THROW(
      mpi::run_world(world_of(2, 1),
                     [](Comm& comm) {
                       SecureComm secure(comm, plain_crypto());
                       if (comm.rank() == 0) {
                         // Attacker root: broadcast 10 bytes where a
                         // 92-byte sealed message belongs.
                         Bytes bogus(10, 0xEE);
                         comm.bcast(bogus, 0);
                       } else {
                         Bytes data(64);
                         secure.bcast(data, 0);  // must throw
                       }
                     }),
      IntegrityError);
}

TEST(AdversarialWire, TruncatedScatterRejected) {
  EXPECT_THROW(
      mpi::run_world(world_of(2, 1),
                     [](Comm& comm) {
                       SecureComm secure(comm, plain_crypto());
                       if (comm.rank() == 0) {
                         Bytes all(20, 0xEE);  // 10-byte blocks, not 92
                         Bytes part(10);
                         comm.scatter(all, part, 0);
                       } else {
                         Bytes part(64);
                         secure.scatter({}, part, 0);  // must throw
                       }
                     }),
      IntegrityError);
}

TEST(AdversarialWire, TruncatedGatherRejected) {
  EXPECT_THROW(
      mpi::run_world(world_of(2, 1),
                     [](Comm& comm) {
                       SecureComm secure(comm, plain_crypto());
                       if (comm.rank() == 0) {
                         Bytes recvall(128);
                         secure.gather(Bytes(64, 0x01), recvall, 0);
                       } else {
                         comm.gather(Bytes(10, 0xEE), {}, 0);
                       }
                     }),
      IntegrityError);
}

TEST(AdversarialWire, GarbageAlltoallBlockRejected) {
  // The symmetric collectives force the attacker to supply full-size
  // wire blocks; unauthenticated garbage must still be rejected.
  EXPECT_THROW(
      mpi::run_world(
          world_of(2, 1),
          [](Comm& comm) {
            SecureComm secure(comm, plain_crypto());
            const std::size_t block = 64;
            const std::size_t wire_block = SecureComm::wire_size(block);
            if (comm.rank() == 0) {
              Bytes garbage(wire_block * 2, 0xEE);
              Bytes sink(wire_block * 2);
              comm.alltoall(garbage, sink, wire_block);
            } else {
              Bytes sendbuf(block * 2, 0x01);
              Bytes recvbuf(block * 2);
              secure.alltoall(sendbuf, recvbuf, block);  // must throw
            }
          }),
      IntegrityError);
}

TEST(AdversarialWire, GarbageAlltoallvBlockRejected) {
  EXPECT_THROW(
      mpi::run_world(
          world_of(2, 1),
          [](Comm& comm) {
            SecureComm secure(comm, plain_crypto());
            if (comm.rank() == 0) {
              // Wire-level participant: 40 garbage bytes to rank 1
              // (it expects wire_size(12)), nothing to self, and room
              // for rank 1's wire_size(10) = 38-byte sealed block.
              const std::vector<std::size_t> sendcounts{0, 40};
              const std::vector<std::size_t> senddispls{0, 0};
              const std::vector<std::size_t> recvcounts{0, 38};
              const std::vector<std::size_t> recvdispls{0, 0};
              Bytes sendbuf(40, 0xEE);
              Bytes recvbuf(38);
              comm.alltoallv(sendbuf, sendcounts, senddispls, recvbuf,
                             recvcounts, recvdispls);
            } else {
              const std::vector<std::size_t> sendcounts{10, 20};
              const std::vector<std::size_t> senddispls{0, 10};
              const std::vector<std::size_t> recvcounts{12, 20};
              const std::vector<std::size_t> recvdispls{0, 12};
              Bytes sendbuf(30, 0x01);
              Bytes recvbuf(32);
              secure.alltoallv(sendbuf, sendcounts, senddispls, recvbuf,
                               recvcounts, recvdispls);  // must throw
            }
          }),
      IntegrityError);
}

TEST(AdversarialWire, FabricBitFlipDetectedThenChannelRecovers) {
  WorldConfig config = world_of(2, 1);
  config.cluster.faults.triggers.push_back(
      {.src = 0, .dst = 1, .nth = 0, .kind = net::FaultKind::kCorrupt});
  mpi::run_world(config, [](Comm& comm) {
    SecureComm secure(comm, plain_crypto());
    if (comm.rank() == 0) {
      secure.send(bytes_of("first: damaged"), 1, 2);
      secure.send(bytes_of("second: clean"), 1, 2);
    } else {
      Bytes buf(32);
      EXPECT_THROW((void)secure.recv(buf, 0, 2), IntegrityError);
      EXPECT_EQ(secure.counters().auth_failures, 1u);
      const Status st = secure.recv(buf, 0, 2);
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + st.bytes),
                "second: clean");
    }
  });
}

TEST(AdversarialWire, FabricDuplicateSuppressedNotRejected) {
  // The fabric duplicates the first sealed message. A duplicating
  // wire is a benign anomaly, not an attack: the extra copy
  // authenticates as an already-delivered sequence number exactly
  // once, is absorbed silently, and the receive delivers the next
  // real message. Nothing lands in the attack counters.
  WorldConfig config = world_of(2, 1);
  config.cluster.faults.triggers.push_back(
      {.src = 0, .dst = 1, .nth = 0, .kind = net::FaultKind::kDuplicate});
  SecureConfig secure_config = plain_crypto();
  secure_config.bind_context = true;
  secure_config.replay_window = 8;
  mpi::run_world(config, [&](Comm& comm) {
    SecureComm secure(comm, secure_config);
    if (comm.rank() == 0) {
      secure.send(bytes_of("original"), 1, 2);
      secure.send(bytes_of("fresh"), 1, 2);
    } else {
      Bytes buf(16);
      Status st = secure.recv(buf, 0, 2);
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + st.bytes),
                "original");
      // The duplicate sits between the two real messages; this recv
      // absorbs it and returns the fresh payload.
      st = secure.recv(buf, 0, 2);
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + st.bytes), "fresh");
      EXPECT_EQ(secure.counters().duplicates_suppressed, 1u);
      EXPECT_EQ(secure.counters().replays_rejected, 0u);
      EXPECT_EQ(secure.counters().auth_failures, 0u);
      EXPECT_EQ(secure.counters().faults_detected(), 0u);
    }
  });
}

TEST(AdversarialWire, RepeatedReplayOfSameSequenceRejected) {
  // A wire can duplicate a frame once; only an attacker re-injects
  // the same sequence number again and again. Three sender-side
  // channel instances all seal their first message as sequence 0 of
  // the same (src, dst, tag) channel: the first copy delivers, the
  // second is absorbed as a benign duplicate, the third is a replay
  // attack and must be rejected with the plaintext wiped.
  SecureConfig secure_config = plain_crypto();
  secure_config.bind_context = true;
  secure_config.replay_window = 8;
  mpi::run_world(world_of(2, 1), [&](Comm& comm) {
    if (comm.rank() == 0) {
      SecureComm first(comm, secure_config);
      SecureComm second(comm, secure_config);
      SecureComm third(comm, secure_config);
      first.send(bytes_of("legit"), 1, 2);
      second.send(bytes_of("rplay"), 1, 2);
      third.send(bytes_of("again"), 1, 2);
      first.send(bytes_of("after"), 1, 2);  // sequence 1: must resync
    } else {
      SecureComm secure(comm, secure_config);
      Bytes buf(16);
      Status st = secure.recv(buf, 0, 2);
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + st.bytes), "legit");
      // One recv call: absorbs the first repeat of sequence 0, then
      // hits the second repeat and classifies it as a replay.
      EXPECT_THROW((void)secure.recv(buf, 0, 2), IntegrityError);
      EXPECT_EQ(secure.counters().duplicates_suppressed, 1u);
      EXPECT_EQ(secure.counters().replays_rejected, 1u);
      EXPECT_EQ(buf, Bytes(16, 0x00)) << "replayed plaintext must be wiped";
      st = secure.recv(buf, 0, 2);
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + st.bytes), "after");
      EXPECT_EQ(secure.counters().auth_failures, 0u);
    }
  });
}

TEST(AdversarialWire, SplicedCiphertextFromAnotherChannelRejected) {
  // Rank 1 captures a perfectly valid sealed message addressed to it
  // and forwards the bytes verbatim to rank 2. Context binding makes
  // the AAD (src, dst, tag, seq) part of the tag, so the splice fails.
  SecureConfig secure_config = plain_crypto();
  secure_config.bind_context = true;
  mpi::run_world(world_of(3, 1), [&](Comm& comm) {
    SecureComm secure(comm, secure_config);
    const std::size_t wire = SecureComm::wire_size(8);
    if (comm.rank() == 0) {
      secure.send(Bytes(8, 0x42), 1, 5);
    } else if (comm.rank() == 1) {
      Bytes captured(wire);
      const Status st = comm.recv(captured, 0, 5);
      EXPECT_EQ(st.bytes, wire);
      comm.send(captured, 2, 5);  // man-in-the-middle re-route
    } else {
      Bytes buf(8);
      EXPECT_THROW((void)secure.recv(buf, 1, 5), IntegrityError);
      EXPECT_EQ(secure.counters().auth_failures, 1u);
    }
  });
}

TEST(AdversarialWire, DroppedSecureMessageTimesOutInsteadOfDeadlocking) {
  WorldConfig config = world_of(2, 1);
  config.recv_timeout = 0.5;
  config.cluster.faults.triggers.push_back(
      {.src = 0, .dst = 1, .nth = 0, .kind = net::FaultKind::kDrop});
  EXPECT_THROW(
      mpi::run_world(config,
                     [](Comm& comm) {
                       SecureComm secure(comm, plain_crypto());
                       if (comm.rank() == 0) {
                         secure.send(Bytes(32, 0x11), 1, 1);
                       } else {
                         Bytes buf(32);
                         (void)secure.recv(buf, 0, 1);
                       }
                     }),
      mpi::MpiError);
}

TEST(AdversarialWire, WaitallDrainsRemainingRequestsAfterIntegrityError) {
  // Regression: waitall used to propagate the first IntegrityError
  // without completing the remaining requests. With a corrupted
  // rendezvous transfer in the batch, the abandoned request left the
  // sender parked on its handshake forever (deadlock). Now the batch
  // is drained, the error rethrown, and the world keeps running.
  const std::size_t big = 128 * 1024;  // above ethernet eager threshold
  WorldConfig config = world_of(3, 1);
  config.cluster.faults.triggers.push_back(
      {.src = 0, .dst = 1, .nth = 0, .kind = net::FaultKind::kCorrupt});
  mpi::run_world(config, [&](Comm& comm) {
    SecureComm secure(comm, plain_crypto());
    if (comm.rank() == 0) {
      secure.send(Bytes(big, 0x00), 1, 1);  // corrupted in the pull
      secure.send(bytes_of("after"), 1, 2);
    } else if (comm.rank() == 1) {
      Bytes big_buf(big);
      Bytes small_buf(16);
      std::vector<mpi::Request> requests;
      requests.push_back(secure.irecv(big_buf, 0, 1));
      requests.push_back(secure.irecv(small_buf, 2, 1));
      EXPECT_THROW((void)secure.waitall(requests), IntegrityError);
      EXPECT_EQ(secure.counters().auth_failures, 1u);
      // Both inner receives completed: the channel still works.
      Bytes buf(16);
      const Status st = secure.recv(buf, 0, 2);
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + st.bytes), "after");
    } else {
      secure.send(bytes_of("clean sibling"), 1, 1);
    }
  });
}

TEST(AdversarialWire, SeededCampaignIsDeterministic) {
  // The whole point of a seeded FaultPlan: two runs with the same
  // seed produce byte-identical injection stats, detection counters,
  // and virtual end times; a different seed produces a different
  // schedule.
  struct Outcome {
    net::FaultStats faults;
    std::uint64_t detected = 0;
    std::uint64_t suppressed = 0;
    std::uint64_t opened = 0;
    double end = 0.0;
    bool operator==(const Outcome&) const = default;
  };
  const auto campaign = [](std::uint64_t seed) {
    WorldConfig config;
    config.cluster.num_nodes = 2;
    config.cluster.ranks_per_node = 1;
    config.cluster.inter = net::ethernet_10g();
    config.cluster.faults.seed = seed;
    config.cluster.faults.p_corrupt = 0.10;
    config.cluster.faults.p_truncate = 0.05;
    config.cluster.faults.p_duplicate = 0.05;
    config.recv_timeout = 1.0;  // lets the receiver drain duplicates too
    World world(config);
    Outcome out;
    out.end = world.run([&](Comm& comm) {
      SecureConfig sc;
      sc.charge_crypto = false;
      sc.bind_context = true;
      sc.replay_window = 8;
      SecureComm secure(comm, sc);
      if (comm.rank() == 0) {
        for (int i = 0; i < 60; ++i) {
          secure.send(Bytes(256, static_cast<std::uint8_t>(i)), 1, 1);
        }
      } else {
        // Receive until the channel runs dry (duplicates mean more
        // than 60 envelopes can arrive).
        for (;;) {
          Bytes buf(256);
          try {
            (void)secure.recv(buf, 0, 1);
          } catch (const IntegrityError&) {
          } catch (const mpi::MpiError&) {
            break;  // timeout: everything delivered has been consumed
          }
        }
        out.detected = secure.counters().faults_detected();
        out.suppressed = secure.counters().duplicates_suppressed;
        out.opened = secure.counters().messages_opened;
      }
    });
    out.faults = world.fabric().faults()->stats();
    return out;
  };

  const Outcome first = campaign(1234);
  const Outcome second = campaign(1234);
  EXPECT_TRUE(first == second) << "same seed must replay exactly";
  EXPECT_GT(first.faults.total_injected(), 0u);
  // Every injected fault was accounted for, none slipped through
  // silently: corrupt/truncate fail to authenticate (attack counters),
  // each fabric duplicate is absorbed exactly once as a benign
  // anomaly (kept strictly apart from the replay-attack counter), and
  // the clean remainder all opened.
  EXPECT_EQ(first.detected, first.faults.corrupted + first.faults.truncated);
  EXPECT_EQ(first.suppressed, first.faults.duplicated);
  EXPECT_EQ(first.opened,
            60u - first.faults.corrupted - first.faults.truncated);
  const Outcome other = campaign(99);
  EXPECT_FALSE(first.faults == other.faults) << "seed must matter";
}

}  // namespace
}  // namespace emc::secure
