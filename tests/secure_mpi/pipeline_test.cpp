// The chunked encrypt->send pipeline (docs/PIPELINE.md): engagement
// threshold edges, exact-multiple and remainder chunking, ARQ
// interplay (dropped chunk, tampered chunk with and without e2e
// recovery), duplicate and replay classification per chunk, the
// nonce-exhaustion guard charged per chunk, rekey stream restarts,
// wildcard matching, the non-blocking paths, helper-core overlap
// attribution, and bit-exact replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>

#include "emc/secure_mpi/secure_comm.hpp"
#include "emc/trace/trace.hpp"

namespace emc::secure {
namespace {

using mpi::Comm;
using mpi::Status;
using mpi::World;
using mpi::WorldConfig;

WorldConfig world_of(int nodes, int rpn = 1) {
  WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = rpn;
  config.cluster.inter = net::ethernet_10g();
  return config;
}

net::FaultPlan nth_fault(net::FaultKind kind, std::uint64_t nth) {
  net::FaultPlan plan;
  plan.triggers.push_back({.src = 0, .dst = 1, .nth = nth, .kind = kind});
  return plan;
}

/// Functional-mode pipeline config: tiny chunks so a few KiB spans
/// several, no virtual-time billing (no cost model needed).
SecureConfig piped(std::size_t chunk = 1024, int cores = 2) {
  SecureConfig config;
  config.charge_crypto = false;
  config.nonce_mode = NonceMode::kCounter;
  config.pipeline.enabled = true;
  config.pipeline.chunk_bytes = chunk;
  config.pipeline.min_bytes = chunk;
  config.pipeline.helper_cores = cores;
  return config;
}

/// Timing-mode pipeline config: analytic crypto (deterministic), so
/// helper cores have a cost to hide behind the wire.
SecureConfig piped_timed(std::size_t chunk, int cores) {
  SecureConfig config = piped(chunk, cores);
  config.charge_crypto = true;
  config.cost_model = CryptoCostModel{
      .seal_per_op = 0.3e-6,
      .seal_per_byte = 1.0 / (2.0 * 1381e6),
      .open_per_op = 0.3e-6,
      .open_per_byte = 1.0 / (2.0 * 1381e6),
  };
  return config;
}

Bytes patterned(std::size_t n) {
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  return data;
}

// ------------------------------------------------------- configuration

TEST(PipelineConfig, ConstructorValidatesKnobs) {
  mpi::run_world(world_of(1), [](Comm& comm) {
    {
      SecureConfig bad = piped();
      bad.pipeline.chunk_bytes = 0;
      EXPECT_THROW(SecureComm(comm, bad), std::invalid_argument);
    }
    if constexpr (sizeof(std::size_t) > 4) {
      SecureConfig bad = piped();
      bad.pipeline.chunk_bytes = std::size_t{1} << 32;  // > u32 header field
      EXPECT_THROW(SecureComm(comm, bad), std::invalid_argument);
    }
    {
      SecureConfig bad = piped();
      bad.pipeline.helper_cores = -1;
      EXPECT_THROW(SecureComm(comm, bad), std::invalid_argument);
    }
    {
      // Wall-clock billing cannot reach helper cores: the pipeline
      // demands an analytic cost model while charge_crypto is on.
      SecureConfig bad = piped();
      bad.charge_crypto = true;
      EXPECT_THROW(SecureComm(comm, bad), std::invalid_argument);
    }
    EXPECT_NO_THROW(SecureComm(comm, piped()));
    EXPECT_NO_THROW(SecureComm(comm, piped_timed(1024, 2)));
  });
}

// ------------------------------------------------- engagement threshold

TEST(PipelineThreshold, SubChunkMessageStaysUnchunked) {
  // A message that fits one chunk gains nothing from chunk framing:
  // both a small payload and one of exactly chunk_bytes must ride the
  // ordinary sealed path.
  run_secure_world(world_of(2), piped(), [](SecureComm& comm) {
    for (const std::size_t n : {std::size_t{64}, std::size_t{1024}}) {
      const Bytes msg = patterned(n);
      if (comm.rank() == 0) {
        comm.send(msg, 1, 7);
      } else {
        Bytes buf(n);
        const Status st = comm.recv(buf, 0, 7);
        EXPECT_EQ(st.bytes, n);
        EXPECT_EQ(buf, msg);
      }
    }
    EXPECT_EQ(comm.counters().messages_pipelined, 0u);
    EXPECT_EQ(comm.counters().chunks_sealed, 0u);
    EXPECT_EQ(comm.counters().chunks_opened, 0u);
  });
}

TEST(PipelineThreshold, OneByteOverChunkSizeEngagesWithTwoChunks) {
  run_secure_world(world_of(2), piped(), [](SecureComm& comm) {
    const Bytes msg = patterned(1025);
    if (comm.rank() == 0) {
      comm.send(msg, 1, 7);
      EXPECT_EQ(comm.counters().messages_pipelined, 1u);
      EXPECT_EQ(comm.counters().chunks_sealed, 2u);
    } else {
      Bytes buf(msg.size());
      const Status st = comm.recv(buf, 0, 7);
      EXPECT_EQ(st.bytes, msg.size());
      EXPECT_EQ(buf, msg);
      EXPECT_EQ(comm.counters().chunks_opened, 2u);
    }
  });
}

TEST(PipelineThreshold, MinBytesHoldsThePipelineBack) {
  // min_bytes above the payload: even a multi-chunk-sized message
  // stays unchunked.
  SecureConfig config = piped();
  config.pipeline.min_bytes = 1 << 20;
  run_secure_world(world_of(2), config, [](SecureComm& comm) {
    const Bytes msg = patterned(8 * 1024);
    if (comm.rank() == 0) {
      comm.send(msg, 1, 7);
    } else {
      Bytes buf(msg.size());
      (void)comm.recv(buf, 0, 7);
      EXPECT_EQ(buf, msg);
    }
    EXPECT_EQ(comm.counters().messages_pipelined, 0u);
  });
}

// ------------------------------------------------------------ chunking

TEST(PipelineChunking, ExactMultipleOfChunkSizeTilesPerfectly) {
  // Exactly N chunks: the last chunk is full-sized, offsets tile the
  // message with no remainder.
  run_secure_world(world_of(2), piped(), [](SecureComm& comm) {
    const Bytes msg = patterned(4 * 1024);
    if (comm.rank() == 0) {
      comm.send(msg, 1, 3);
      EXPECT_EQ(comm.counters().chunks_sealed, 4u);
      EXPECT_EQ(comm.counters().messages_sealed, 4u);  // chunks count here too
      EXPECT_EQ(comm.counters().bytes_sealed, msg.size());
    } else {
      Bytes buf(msg.size());
      const Status st = comm.recv(buf, 0, 3);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 3);
      EXPECT_EQ(st.bytes, msg.size());
      EXPECT_EQ(buf, msg);
      EXPECT_EQ(comm.counters().chunks_opened, 4u);
      EXPECT_EQ(comm.counters().bytes_opened, msg.size());
    }
  });
}

TEST(PipelineChunking, RemainderTailChunkCarriesTheOddBytes) {
  run_secure_world(world_of(2), piped(), [](SecureComm& comm) {
    const Bytes msg = patterned(2 * 1024 + 513);  // 2 full chunks + tail
    if (comm.rank() == 0) {
      comm.send(msg, 1, 3);
      EXPECT_EQ(comm.counters().chunks_sealed, 3u);
    } else {
      Bytes buf(msg.size());
      const Status st = comm.recv(buf, 0, 3);
      EXPECT_EQ(st.bytes, msg.size());
      EXPECT_EQ(buf, msg);
    }
  });
}

TEST(PipelineChunking, WildcardSourceAndTagMatchPipelinedMessages) {
  // The first chunk's actual (source, tag) steer the remaining-frame
  // receives, so wildcards see a pipelined message as one message.
  run_secure_world(world_of(3), piped(), [](SecureComm& comm) {
    const std::size_t n = 3 * 1024;
    if (comm.rank() == 0) {
      Bytes buf(n);
      for (int i = 0; i < 2; ++i) {
        const Status st = comm.recv(buf, mpi::kAnySource, mpi::kAnyTag);
        EXPECT_EQ(st.bytes, n);
        EXPECT_EQ(st.tag, st.source);  // each sender tags with its rank
        EXPECT_EQ(buf, Bytes(n, static_cast<std::uint8_t>(st.source)));
      }
      EXPECT_EQ(comm.counters().chunks_opened, 6u);
    } else {
      comm.send(Bytes(n, static_cast<std::uint8_t>(comm.rank())), 0,
                comm.rank());
    }
  });
}

TEST(PipelineChunking, NonBlockingAndSendrecvRideThePipeline) {
  run_secure_world(world_of(2), piped(), [](SecureComm& comm) {
    const Bytes msg = patterned(5 * 1024);
    const int peer = 1 - comm.rank();
    {
      // isend/irecv: the pipelined send request is born complete.
      Bytes buf(msg.size());
      mpi::Request rr = comm.irecv(buf, peer, 1);
      mpi::Request rs = comm.isend(msg, peer, 1);
      const Status sent = comm.wait(rs);
      EXPECT_EQ(sent.bytes, msg.size());
      const Status got = comm.wait(rr);
      EXPECT_EQ(got.bytes, msg.size());
      EXPECT_EQ(buf, msg);
    }
    {
      Bytes buf(msg.size());
      const Status st = comm.sendrecv(msg, peer, 2, buf, peer, 2);
      EXPECT_EQ(st.bytes, msg.size());
      EXPECT_EQ(buf, msg);
    }
    EXPECT_EQ(comm.counters().messages_pipelined, 2u);
  });
}

// ------------------------------------------------------- fault handling

TEST(PipelineFaults, DroppedChunkIsRetransmittedByArq) {
  WorldConfig config = world_of(2);
  config.cluster.faults = nth_fault(net::FaultKind::kDrop, 1);  // chunk 1
  config.reliability.enabled = true;
  World world(config);
  world.run([](Comm& plain) {
    SecureComm comm(plain, piped());
    const Bytes msg = patterned(3 * 1024);
    if (plain.rank() == 0) {
      comm.send(msg, 1, 5);
    } else {
      Bytes buf(msg.size());
      Status st{};
      EXPECT_NO_THROW(st = comm.recv(buf, 0, 5));
      EXPECT_EQ(st.bytes, msg.size());
      EXPECT_EQ(buf, msg);
      EXPECT_EQ(comm.counters().faults_detected(), 0u);
    }
  });
  EXPECT_GE(world.reliability()->stats().retransmits, 1u);
}

TEST(PipelineFaults, TamperedChunkRecoversViaEndToEndNack) {
  // A corrupted chunk fails authentication; the e2e NACK retransmits
  // that single chunk — the other chunks are never resent and the
  // application sees no error.
  WorldConfig config = world_of(2);
  config.cluster.faults = nth_fault(net::FaultKind::kCorrupt, 1);
  config.reliability.enabled = true;
  World world(config);
  world.run([](Comm& plain) {
    SecureComm comm(plain, piped());
    const Bytes msg = patterned(4 * 1024);
    if (plain.rank() == 0) {
      comm.send(msg, 1, 5);
    } else {
      Bytes buf(msg.size());
      Status st{};
      EXPECT_NO_THROW(st = comm.recv(buf, 0, 5));
      EXPECT_EQ(st.bytes, msg.size());
      EXPECT_EQ(buf, msg);
      EXPECT_EQ(comm.counters().nacks_sent, 1u);
      EXPECT_EQ(comm.counters().retransmits_recovered, 1u);
      EXPECT_EQ(comm.counters().auth_failures, 0u);
      EXPECT_EQ(comm.counters().chunks_opened, 4u);
    }
  });
  EXPECT_EQ(world.reliability()->stats().damaged_deliveries, 1u);
  EXPECT_GE(world.reliability()->stats().e2e_nacks, 1u);
}

TEST(PipelineFaults, TamperedChunkWithoutArqRejectsWholeMessage) {
  // No reliability layer: the damaged chunk cannot be recovered, so
  // the receive fails closed — IntegrityError, with every already
  // accepted chunk wiped (nothing partially verified leaks).
  WorldConfig config = world_of(2);
  config.cluster.faults = nth_fault(net::FaultKind::kCorrupt, 1);
  mpi::run_world(config, [](Comm& plain) {
    SecureComm comm(plain, piped());
    const Bytes msg = patterned(4 * 1024);
    if (plain.rank() == 0) {
      comm.send(msg, 1, 5);
    } else {
      Bytes buf(msg.size(), 0xAA);
      EXPECT_THROW((void)comm.recv(buf, 0, 5), IntegrityError);
      EXPECT_GE(comm.counters().faults_detected(), 1u);
      EXPECT_EQ(buf, Bytes(msg.size(), 0x00)) << "partial plaintext leaked";
    }
  });
}

TEST(PipelineFaults, DuplicatedChunkAbsorbedAsBenignAnomaly) {
  // The fabric duplicates chunk 0. The extra copy is absorbed without
  // crypto (first duplicate of an accepted index), nothing lands in
  // the attack counters, and the channel keeps working.
  WorldConfig config = world_of(2);
  config.cluster.faults = nth_fault(net::FaultKind::kDuplicate, 0);
  mpi::run_world(config, [](Comm& plain) {
    SecureComm comm(plain, piped());
    const Bytes msg = patterned(3 * 1024);
    if (plain.rank() == 0) {
      comm.send(msg, 1, 5);
      comm.send(bytes_of("still alive"), 1, 6);
    } else {
      Bytes buf(msg.size());
      const Status st = comm.recv(buf, 0, 5);
      EXPECT_EQ(st.bytes, msg.size());
      EXPECT_EQ(buf, msg);
      EXPECT_EQ(comm.counters().duplicates_suppressed, 1u);
      EXPECT_EQ(comm.counters().replays_rejected, 0u);
      EXPECT_EQ(comm.counters().faults_detected(), 0u);
      Bytes next(11);
      (void)comm.recv(next, 0, 6);
      EXPECT_EQ(std::string(next.begin(), next.end()), "still alive");
    }
  });
}

// --------------------------------------------------- nonce-stream rules

TEST(PipelineNonces, RekeyThresholdCrossedMidMessageFailsClosed) {
  // The exhaustion guard is charged per chunk: a message whose chunk
  // count crosses the threshold fails closed mid-loop rather than
  // extending the nonce stream past the budget.
  SecureConfig config = piped();
  config.nonce_rekey_threshold = 2;
  run_secure_world(world_of(1), config, [](SecureComm& comm) {
    EXPECT_THROW(comm.send(patterned(4 * 1024), 0, 1), NonceExhaustedError);
    EXPECT_EQ(comm.counters().chunks_sealed, 2u);  // budget spent, then closed
  });
}

TEST(PipelineNonces, RekeyRestartsThePipelinedStreams) {
  // rekey() restarts every key-scoped stream, including the pipelined
  // message ids: the first post-rekey message is id 0 again, and the
  // receiver (whose duplicate tracking also reset) accepts it instead
  // of absorbing it as stale.
  run_secure_world(world_of(2), piped(), [](SecureComm& comm) {
    const Bytes fresh_key(32, 0x42);
    const Bytes msg = patterned(3 * 1024);
    Bytes buf(msg.size());
    if (comm.rank() == 0) {
      comm.send(msg, 1, 1);
      comm.rekey(fresh_key);
      comm.send(msg, 1, 2);
    } else {
      (void)comm.recv(buf, 0, 1);
      comm.rekey(fresh_key);
      const Status st = comm.recv(buf, 0, 2);
      EXPECT_EQ(st.bytes, msg.size());
      EXPECT_EQ(buf, msg);
      EXPECT_EQ(comm.counters().chunks_opened, 6u);
      EXPECT_EQ(comm.counters().duplicates_suppressed, 0u);
    }
    EXPECT_EQ(comm.counters().rekeys, 1u);
  });
}

TEST(PipelineNonces, ContextBindingSpansChunkedAndUnchunkedTraffic) {
  // With bind_context the per-chunk sequence numbers are consecutive
  // draws from the same channel stream as unchunked messages: strict
  // in-order authentication (window 0) must hold across a mixed
  // unchunked -> chunked -> unchunked conversation.
  SecureConfig config = piped();
  config.bind_context = true;
  run_secure_world(world_of(2), config, [](SecureComm& comm) {
    const Bytes big = patterned(3 * 1024);
    if (comm.rank() == 0) {
      comm.send(bytes_of("before"), 1, 1);
      comm.send(big, 1, 1);
      comm.send(bytes_of("after"), 1, 1);
    } else {
      Bytes small(6);
      Bytes buf(big.size());
      (void)comm.recv(small, 0, 1);
      EXPECT_EQ(std::string(small.begin(), small.end()), "before");
      (void)comm.recv(buf, 0, 1);
      EXPECT_EQ(buf, big);
      Status st = comm.recv(small, 0, 1);
      EXPECT_EQ(st.bytes, 5u);
      EXPECT_EQ(std::string(small.begin(), small.begin() + 5), "after");
      EXPECT_EQ(comm.counters().faults_detected(), 0u);
    }
  });
}

// ------------------------------------------------------ time & overlap

TEST(PipelineTiming, HelperCoresHideCryptoBehindTheWire) {
  // The CryptMPI effect, observed through the trace layer: with two
  // helper cores the per-chunk crypto runs on the concurrent helper
  // lane (crypto_helper spans) and mostly overlaps the wire — the
  // main timeline stalls for less than the helper-core busy time.
  WorldConfig config = world_of(2);
  auto rec = std::make_shared<trace::TraceRecorder>(trace::Config{},
                                                    /*num_ranks=*/2);
  config.trace = rec;
  const std::size_t n = 1 << 20;
  double piped_make = 0.0;
  mpi::run_world(config, [&](Comm& plain) {
    SecureComm comm(plain, piped_timed(64 * 1024, 2));
    if (plain.rank() == 0) {
      comm.send(patterned(n), 1, 1);
    } else {
      Bytes buf(n);
      (void)comm.recv(buf, 0, 1);
      const CryptoCounters& c = comm.counters();
      EXPECT_GT(c.helper_open_seconds, 0.0);
      EXPECT_LT(c.pipeline_stall_seconds, c.helper_open_seconds)
          << "no overlap: every helper second stalled the timeline";
    }
    piped_make = plain.now();
  });
  for (int rank = 0; rank < 2; ++rank) {
    const auto& secs = rec->category_seconds(rank);
    const double helper =
        secs[static_cast<std::size_t>(trace::Category::kCryptoHelper)];
    const double stall =
        secs[static_cast<std::size_t>(trace::Category::kPipelineStall)];
    EXPECT_GT(helper, 0.0) << "rank " << rank;
    EXPECT_LT(stall, helper) << "rank " << rank;
  }

  // And the headline: the pipelined makespan beats the serial secure
  // path (same crypto model, pipeline off) on the same network.
  const double serial_make = mpi::run_world(world_of(2), [&](Comm& plain) {
    SecureConfig serial = piped_timed(64 * 1024, 2);
    serial.pipeline.enabled = false;
    SecureComm comm(plain, serial);
    if (plain.rank() == 0) {
      comm.send(patterned(n), 1, 1);
    } else {
      Bytes buf(n);
      (void)comm.recv(buf, 0, 1);
    }
  });
  EXPECT_LT(piped_make, serial_make);
}

TEST(PipelineTiming, ZeroHelperCoresIsTheSerialChunkedBaseline) {
  // helper_cores == 0 keeps the chunk framing but bills crypto
  // serially on the rank: a valid baseline (it must still round-trip)
  // that cannot be faster than the two-core pipeline.
  const std::size_t n = 1 << 20;
  auto makespan_with_cores = [&](int cores) {
    return run_secure_world(
        world_of(2), piped_timed(64 * 1024, cores), [&](SecureComm& comm) {
          if (comm.rank() == 0) {
            comm.send(patterned(n), 1, 1);
          } else {
            Bytes buf(n);
            (void)comm.recv(buf, 0, 1);
            EXPECT_EQ(buf, patterned(n));
            EXPECT_EQ(comm.counters().helper_open_seconds > 0.0, cores > 0);
          }
        });
  };
  const double serial_chunked = makespan_with_cores(0);
  const double pipelined = makespan_with_cores(2);
  EXPECT_LE(pipelined, serial_chunked);
}

TEST(PipelineTiming, SameSeedReplaysBitExact) {
  // Helper-core scheduling is a pure function of the simulated
  // timeline: two runs of the same pipelined campaign produce the
  // exact same makespan and the exact same analytic helper billing.
  const std::size_t n = 768 * 1024;
  struct Outcome {
    double makespan = 0.0;
    double helper_seal = 0.0;
    double helper_open = 0.0;
    double stall = 0.0;
    std::uint64_t chunks = 0;
    bool operator==(const Outcome&) const = default;
  };
  auto run_once = [&] {
    Outcome out;
    out.makespan = run_secure_world(
        world_of(2), piped_timed(64 * 1024, 3), [&](SecureComm& comm) {
          const int peer = 1 - comm.rank();
          Bytes buf(n);
          for (int i = 0; i < 3; ++i) {
            if (comm.rank() == 0) {
              comm.send(patterned(n), peer, i);
              (void)comm.recv(buf, peer, i + 100);
            } else {
              (void)comm.recv(buf, peer, i);
              comm.send(patterned(n), peer, i + 100);
            }
          }
          if (comm.rank() == 1) {
            out.helper_seal = comm.counters().helper_seal_seconds;
            out.helper_open = comm.counters().helper_open_seconds;
            out.stall = comm.counters().pipeline_stall_seconds;
            out.chunks = comm.counters().chunks_opened;
          }
        });
    return out;
  };
  const Outcome first = run_once();
  const Outcome second = run_once();
  EXPECT_GT(first.chunks, 0u);
  EXPECT_TRUE(first == second) << "pipelined timeline is not deterministic";
}

}  // namespace
}  // namespace emc::secure
