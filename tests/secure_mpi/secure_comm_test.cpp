// Encrypted-MPI layer: plaintext equality through every wrapped
// routine under every provider, the +28-byte framing, decrypt-in-wait,
// counters, and tamper detection end to end.
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/mpi/reduce.hpp"
#include "emc/secure_mpi/secure_comm.hpp"

namespace emc::secure {
namespace {

using mpi::Comm;
using mpi::Request;
using mpi::Status;
using mpi::WorldConfig;

WorldConfig world_of(int nodes, int ranks_per_node,
                     net::NetworkProfile inter = net::ethernet_10g()) {
  WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = ranks_per_node;
  config.cluster.inter = std::move(inter);
  return config;
}

SecureConfig secure_with(const std::string& provider) {
  SecureConfig config;
  config.provider = provider;
  config.charge_crypto = false;  // functional tests: determinism first
  return config;
}

Bytes rank_block(int rank, std::size_t size, std::uint64_t salt = 0) {
  Xoshiro256 rng(0x5EC + static_cast<std::uint64_t>(rank) * 31 + salt);
  return rng.bytes(size);
}

class SecureProviderTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SecureProviderTest, PingPongRoundTrips) {
  run_secure_world(world_of(2, 1), secure_with(GetParam()),
                   [](SecureComm& comm) {
                     const Bytes msg = rank_block(0, 1000);
                     if (comm.rank() == 0) {
                       comm.send(msg, 1, 1);
                     } else {
                       Bytes buf(1000);
                       const Status st = comm.recv(buf, 0, 1);
                       EXPECT_EQ(st.bytes, 1000u);  // plaintext size
                       EXPECT_EQ(buf, msg);
                     }
                   });
}

TEST_P(SecureProviderTest, LargeMessageViaRendezvous) {
  run_secure_world(world_of(2, 1), secure_with(GetParam()),
                   [](SecureComm& comm) {
                     const Bytes msg = rank_block(9, 1 << 20);
                     if (comm.rank() == 0) {
                       comm.send(msg, 1, 1);
                     } else {
                       Bytes buf(1 << 20);
                       comm.recv(buf, 0, 1);
                       EXPECT_EQ(buf, msg);
                     }
                   });
}

TEST_P(SecureProviderTest, NonblockingDecryptsInWait) {
  run_secure_world(
      world_of(2, 1), secure_with(GetParam()), [](SecureComm& comm) {
        if (comm.rank() == 0) {
          const Bytes msg = rank_block(1, 4096);
          Request r = comm.isend(msg, 1, 2);
          comm.wait(r);
        } else {
          Bytes buf(4096);
          Request r = comm.irecv(buf, 0, 2);
          // Before wait the user buffer must still be untouched:
          // ciphertext lives in the internal wire buffer.
          const Bytes before = buf;
          const Status st = comm.wait(r);
          EXPECT_EQ(st.bytes, 4096u);
          EXPECT_EQ(buf, rank_block(1, 4096));
          EXPECT_NE(buf, before);
        }
      });
}

TEST_P(SecureProviderTest, CollectivesMatchPlaintextReference) {
  const int n = 6;
  run_secure_world(world_of(3, 2), secure_with(GetParam()), [n](SecureComm&
                                                                    comm) {
    // bcast
    Bytes data = comm.rank() == 2 ? rank_block(2, 500) : Bytes(500);
    comm.bcast(data, 2);
    ASSERT_EQ(data, rank_block(2, 500));

    // allgather
    const std::size_t block = 100;
    Bytes all(block * n);
    comm.allgather(rank_block(comm.rank(), block), all);
    for (int r = 0; r < n; ++r) {
      const Bytes expect = rank_block(r, block);
      ASSERT_TRUE(std::equal(
          expect.begin(), expect.end(),
          all.begin() + static_cast<std::ptrdiff_t>(
                            static_cast<std::size_t>(r) * block)));
    }

    // alltoall (Algorithm 1)
    Bytes sendbuf(block * n);
    for (int d = 0; d < n; ++d) {
      const Bytes part = rank_block(comm.rank() * 100 + d, block);
      std::copy(part.begin(), part.end(),
                sendbuf.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(d) * block));
    }
    Bytes recvbuf(block * n);
    comm.alltoall(sendbuf, recvbuf, block);
    for (int s = 0; s < n; ++s) {
      const Bytes expect = rank_block(s * 100 + comm.rank(), block);
      ASSERT_TRUE(std::equal(
          expect.begin(), expect.end(),
          recvbuf.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(s) * block)));
    }

    // alltoallv with ragged sizes
    const auto un = static_cast<std::size_t>(n);
    std::vector<std::size_t> scounts(un);
    std::vector<std::size_t> sdispls(un);
    std::vector<std::size_t> rcounts(un);
    std::vector<std::size_t> rdispls(un);
    std::size_t stotal = 0;
    std::size_t rtotal = 0;
    for (int d = 0; d < n; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      scounts[ud] = static_cast<std::size_t>(comm.rank() + d);
      sdispls[ud] = stotal;
      stotal += scounts[ud];
      rcounts[ud] = static_cast<std::size_t>(d + comm.rank());
      rdispls[ud] = rtotal;
      rtotal += rcounts[ud];
    }
    Bytes vsend(stotal);
    for (int d = 0; d < n; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      const Bytes part = rank_block(comm.rank() * 41 + d, scounts[ud]);
      std::copy(part.begin(), part.end(),
                vsend.begin() + static_cast<std::ptrdiff_t>(sdispls[ud]));
    }
    Bytes vrecv(rtotal);
    comm.alltoallv(vsend, scounts, sdispls, vrecv, rcounts, rdispls);
    for (int s = 0; s < n; ++s) {
      const auto us = static_cast<std::size_t>(s);
      const Bytes expect = rank_block(s * 41 + comm.rank(), rcounts[us]);
      ASSERT_TRUE(std::equal(
          expect.begin(), expect.end(),
          vrecv.begin() + static_cast<std::ptrdiff_t>(rdispls[us])));
    }

    // gather + scatter
    Bytes gathered(comm.rank() == 0 ? block * n : 0);
    comm.gather(rank_block(comm.rank(), block, 3), gathered, 0);
    Bytes back(block);
    comm.scatter(gathered, back, 0);
    EXPECT_EQ(back, rank_block(comm.rank(), block, 3));

    // typed allreduce rides encrypted point-to-point
    EXPECT_DOUBLE_EQ(mpi::allreduce_sum(comm, 1.0), n);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Providers, SecureProviderTest,
    ::testing::Values("boringssl-sim", "openssl-sim", "libsodium-sim",
                      "cryptopp-sim", "cryptopp-opt-sim"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SecureFraming, WireCarriesExactly28ExtraBytes) {
  EXPECT_EQ(SecureComm::wire_size(0), 28u);
  EXPECT_EQ(SecureComm::wire_size(1000), 1028u);
  // Observed on the wire: the plain communicator under a secure send
  // sees payload + 28.
  run_secure_world(world_of(2, 1), secure_with("libsodium-sim"),
                   [](SecureComm& comm) {
                     if (comm.rank() == 0) {
                       comm.send(Bytes(1000, 7), 1, 0);
                     } else {
                       Bytes wire(2000);
                       const Status st = comm.plain().recv(wire, 0, 0);
                       EXPECT_EQ(st.bytes, 1028u);
                     }
                   });
}

TEST(SecureFraming, CiphertextNeverEqualsPlaintext) {
  run_secure_world(world_of(2, 1), secure_with("boringssl-sim"),
                   [](SecureComm& comm) {
                     const Bytes msg(512, 0xAA);
                     if (comm.rank() == 0) {
                       comm.send(msg, 1, 0);
                     } else {
                       Bytes wire(1024);
                       const Status st = comm.plain().recv(wire, 0, 0);
                       const BytesView body =
                           BytesView(wire).subspan(12, st.bytes - 28);
                       EXPECT_FALSE(std::equal(msg.begin(), msg.end(),
                                               body.begin()));
                     }
                   });
}

TEST(SecureIntegrity, TamperedWireThrowsIntegrityError) {
  EXPECT_THROW(
      run_secure_world(
          world_of(2, 1), secure_with("boringssl-sim"),
          [](SecureComm& comm) {
            if (comm.rank() == 0) {
              // Adversary-in-the-middle: flip one ciphertext bit by
              // sending through the plain comm after sealing.
              Bytes msg(100, 0x42);
              Bytes wire(SecureComm::wire_size(msg.size()));
              // Build a legitimate wire message via a loopback seal:
              // easiest path is send-to-self then capture; instead,
              // tamper after a legitimate secure send is not possible
              // from outside, so corrupt in transit: send a valid
              // encrypted message, then a corrupted copy.
              comm.send(msg, 1, 0);
            } else {
              Bytes wire(SecureComm::wire_size(100));
              comm.plain().recv(wire, 0, 0);
              wire[40] ^= 0x01;  // corrupt ciphertext
              // Re-inject locally: open must reject.
              Bytes out(100);
              comm.plain().send(wire, 1, 1);  // to self via plain
              Bytes wire2(wire.size());
              comm.plain().recv(wire2, 1, 1);
              // Now use the secure path's recv machinery by waiting on
              // an irecv fed with the corrupted bytes.
              Request r = comm.irecv(out, 1, 2);
              comm.plain().send(wire2, 1, 2);
              comm.wait(r);  // must throw IntegrityError
            }
          }),
      IntegrityError);
}

TEST(SecureCounters, AccountSealedAndOpenedTraffic) {
  run_secure_world(world_of(2, 1), secure_with("cryptopp-sim"),
                   [](SecureComm& comm) {
                     if (comm.rank() == 0) {
                       comm.send(Bytes(100, 1), 1, 0);
                       comm.send(Bytes(200, 2), 1, 0);
                       EXPECT_EQ(comm.counters().messages_sealed, 2u);
                       EXPECT_EQ(comm.counters().bytes_sealed, 300u);
                       EXPECT_EQ(comm.counters().messages_opened, 0u);
                     } else {
                       Bytes buf(200);
                       comm.recv(MutBytes(buf).first(100), 0, 0);
                       comm.recv(buf, 0, 0);
                       EXPECT_EQ(comm.counters().messages_opened, 2u);
                       EXPECT_EQ(comm.counters().bytes_opened, 300u);
                       comm.reset_counters();
                       EXPECT_EQ(comm.counters().bytes_opened, 0u);
                     }
                   });
}

TEST(SecureNonces, CounterModeNoncesAreUniquePerRank) {
  SecureConfig config = secure_with("libsodium-sim");
  config.nonce_mode = NonceMode::kCounter;
  run_secure_world(world_of(2, 1), config, [](SecureComm& comm) {
    // Two identical plaintexts must still produce different wires.
    if (comm.rank() == 0) {
      comm.send(Bytes(64, 0x11), 1, 0);
      comm.send(Bytes(64, 0x11), 1, 0);
    } else {
      Bytes w1(200);
      Bytes w2(200);
      const Status s1 = comm.plain().recv(w1, 0, 0);
      const Status s2 = comm.plain().recv(w2, 0, 0);
      EXPECT_FALSE(std::equal(w1.begin(),
                              w1.begin() + static_cast<std::ptrdiff_t>(
                                               s1.bytes),
                              w2.begin()))
          << "nonce reuse would make equal plaintexts distinguishable";
      (void)s2;
    }
  });
}

TEST(SecureReplay, ContextBindingRejectsReplayedCiphertext) {
  // Footnote 1 of the paper scopes replay attacks out; the
  // bind_context extension closes them. An adversary that records a
  // valid wire message and re-injects it must be caught, because the
  // receiver's channel sequence number has moved on.
  SecureConfig config = secure_with("boringssl-sim");
  config.bind_context = true;
  EXPECT_THROW(
      run_secure_world(
          world_of(2, 1), config,
          [](SecureComm& comm) {
            if (comm.rank() == 0) {
              comm.send(bytes_of("pay me once!!"), 1, 3);
            } else {
              Bytes wire(SecureComm::wire_size(13));
              comm.plain().recv(wire, 0, 3);   // record the ciphertext
              Bytes out(13);
              // Deliver the original (seq 0): accepted.
              comm.plain().send(wire, 1, 3);
              Request r1 = comm.irecv(out, 1, 3);
              comm.wait(r1);
              EXPECT_EQ(std::string(out.begin(), out.end()),
                        "pay me once!!");
              // Replay the same bytes (receiver now expects seq 1).
              comm.plain().send(wire, 1, 3);
              Request r2 = comm.irecv(out, 1, 3);
              comm.wait(r2);  // must throw IntegrityError
            }
          }),
      IntegrityError);
}

TEST(SecureReplay, ContextBindingRejectsCrossChannelReroute) {
  // A ciphertext recorded on tag 5 must not be accepted on tag 6:
  // the tag is authenticated in the AAD.
  SecureConfig config = secure_with("boringssl-sim");
  config.bind_context = true;
  EXPECT_THROW(
      run_secure_world(
          world_of(2, 1), config,
          [](SecureComm& comm) {
            if (comm.rank() == 0) {
              comm.send(bytes_of("tagged"), 1, 5);
            } else {
              Bytes wire(SecureComm::wire_size(6));
              comm.plain().recv(wire, 0, 5);
              Bytes out(6);
              comm.plain().send(wire, 1, 6);  // reroute to tag 6
              Request r = comm.irecv(out, 1, 6);
              comm.wait(r);  // must throw
            }
          }),
      IntegrityError);
}

TEST(SecureReplay, BindingIsTransparentForHonestTraffic) {
  // With context binding on, every routine still round-trips.
  SecureConfig config = secure_with("libsodium-sim");
  config.bind_context = true;
  run_secure_world(world_of(2, 2), config, [](SecureComm& comm) {
    const int n = comm.size();
    // Repeated p2p on one channel exercises the sequence counters.
    const int partner = comm.rank() ^ 1;
    for (int i = 0; i < 5; ++i) {
      Bytes msg(64, static_cast<std::uint8_t>(comm.rank() * 16 + i));
      Bytes buf(64);
      comm.sendrecv(msg, partner, 7, buf, partner, 7);
      EXPECT_EQ(buf, Bytes(64, static_cast<std::uint8_t>(partner * 16 + i)));
    }
    // Collectives bind (src, dst, collective-sequence) per block.
    Bytes data = comm.rank() == 1 ? rank_block(1, 100) : Bytes(100);
    comm.bcast(data, 1);
    EXPECT_EQ(data, rank_block(1, 100));

    const std::size_t block = 32;
    Bytes all(block * static_cast<std::size_t>(n));
    comm.allgather(rank_block(comm.rank(), block), all);

    Bytes sendbuf(block * static_cast<std::size_t>(n),
                  static_cast<std::uint8_t>(comm.rank()));
    Bytes recvbuf(sendbuf.size());
    comm.alltoall(sendbuf, recvbuf, block);
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(recvbuf[static_cast<std::size_t>(s) * block],
                static_cast<std::uint8_t>(s));
    }

    Bytes gathered(comm.rank() == 0 ? block * static_cast<std::size_t>(n)
                                    : 0);
    comm.gather(rank_block(comm.rank(), block, 2), gathered, 0);
    Bytes part(block);
    comm.scatter(gathered, part, 0);
    EXPECT_EQ(part, rank_block(comm.rank(), block, 2));
  });
}

TEST(SecureConfigErrors, UnknownProviderAndBadKeySizeThrow) {
  WorldConfig world = world_of(1, 1);
  SecureConfig bad_provider = secure_with("schannel");
  EXPECT_THROW(
      run_secure_world(world, bad_provider, [](SecureComm&) {}),
      std::invalid_argument);

  SecureConfig bad_key = secure_with("libsodium-sim");
  bad_key.key = crypto::demo_key(16);  // libsodium tier is 256-bit only
  EXPECT_THROW(run_secure_world(world, bad_key, [](SecureComm&) {}),
               std::invalid_argument);
}

TEST(SecureTiming, ChargedCryptoAdvancesVirtualClock) {
  WorldConfig world = world_of(2, 1);
  SecureConfig uncharged = secure_with("cryptopp-sim");
  SecureConfig charged = secure_with("cryptopp-sim");
  charged.charge_crypto = true;

  auto body = [](SecureComm& comm) {
    const Bytes msg(1 << 18, 0x3c);
    Bytes buf(1 << 18);
    for (int i = 0; i < 3; ++i) {
      if (comm.rank() == 0) {
        comm.send(msg, 1, 0);
        comm.recv(buf, 1, 0);
      } else {
        comm.recv(buf, 0, 0);
        comm.send(msg, 0, 0);
      }
    }
  };
  const double t_plain = run_secure_world(world, uncharged, body);
  const double t_crypto = run_secure_world(world, charged, body);
  EXPECT_GT(t_crypto, t_plain);
}

}  // namespace
}  // namespace emc::secure
