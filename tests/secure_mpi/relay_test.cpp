// Untrusted-relay trust policy: plaintext-exposure accounting under
// hop-trusted vs end-to-end sealing, per-hop vs end-to-end corruption
// recovery on multi-hop routes, and the per-relay crypto surcharge.
#include <gtest/gtest.h>

#include "emc/secure_mpi/secure_comm.hpp"

namespace emc::secure {
namespace {

using mpi::Comm;
using mpi::Status;
using mpi::WorldConfig;

/// Three single-rank nodes; rank 0 <-> rank 2 traffic relays via node 1.
WorldConfig relayed_world() {
  WorldConfig config;
  config.cluster.num_nodes = 3;
  config.cluster.ranks_per_node = 1;
  config.cluster.routes.push_back({0, 2, {1}});
  config.cluster.routes.push_back({2, 0, {1}});
  return config;
}

SecureConfig secure_with_trust(RelayTrust trust) {
  SecureConfig config;
  config.charge_crypto = false;
  config.relay_trust = trust;
  return config;
}

TEST(RelayTrust, HopTrustedCountsExposuresEndToEndCountsNone) {
  // The central security-vs-cost trade of the untrusted-overlay
  // scenario: hop-trusted relays see plaintext (one exposure event per
  // relay node per delivered payload), end-to-end relays never do.
  for (const RelayTrust trust :
       {RelayTrust::kHopTrusted, RelayTrust::kEndToEnd}) {
    run_secure_world(
        relayed_world(), secure_with_trust(trust), [&](SecureComm& comm) {
          constexpr int kMsgs = 5;
          for (int i = 0; i < kMsgs; ++i) {
            if (comm.rank() == 0) {
              comm.send(Bytes(256, static_cast<std::uint8_t>(i)), 2, i);
            } else if (comm.rank() == 2) {
              Bytes buf(256);
              const Status st = comm.recv(buf, 0, i);
              EXPECT_EQ(st.bytes, 256u);
              EXPECT_EQ(buf, Bytes(256, static_cast<std::uint8_t>(i)));
            }
          }
          if (comm.rank() == 2) {
            // Every payload crossed exactly one relay; nothing else
            // has touched the relayed pairs yet. (A later barrier
            // would add exposures of its own — its dissemination
            // rounds cross the 0 <-> 2 route too.)
            if (trust == RelayTrust::kHopTrusted) {
              EXPECT_EQ(comm.exposure_events(),
                        static_cast<std::uint64_t>(kMsgs));
            } else {
              EXPECT_EQ(comm.exposure_events(), 0u);
            }
          }
          comm.barrier();
          if (trust == RelayTrust::kEndToEnd) {
            EXPECT_EQ(comm.exposure_events(), 0u);  // sealed everywhere
          }
        });
  }
}

TEST(RelayTrust, HopTrustedCatchesCorruptionAtTheFaultyHop) {
  // hop_integrity: the relay re-authenticates before forwarding, so a
  // corrupted hop frame is NACKed and retransmitted at that hop — the
  // destination's GCM open never even sees damage.
  WorldConfig config = relayed_world();
  config.cluster.faults.triggers.push_back(
      {.src = -1, .dst = -1, .nth = 0, .kind = net::FaultKind::kCorrupt});
  config.reliability.enabled = true;
  run_secure_world(
      config, secure_with_trust(RelayTrust::kHopTrusted),
      [](SecureComm& comm) {
        if (comm.rank() == 0) {
          comm.send(Bytes(512, 0x5A), 2, 1);
        } else if (comm.rank() == 2) {
          Bytes buf(512);
          Status st{};
          EXPECT_NO_THROW(st = comm.recv(buf, 0, 1));
          EXPECT_EQ(st.bytes, 512u);
          EXPECT_EQ(buf, Bytes(512, 0x5A));
          EXPECT_EQ(comm.counters().auth_failures, 0u);
          EXPECT_EQ(comm.counters().nacks_sent, 0u);  // no e2e recovery
        }
      });
}

TEST(RelayTrust, EndToEndLetsCorruptionRideAndRecoversAtDestination) {
  // Sealed forwarding: the relay cannot check what it cannot read, so
  // the damaged envelope rides to rank 2, fails authentication there,
  // and recovery costs a full end-to-end NACK dialogue.
  WorldConfig config = relayed_world();
  config.cluster.faults.triggers.push_back(
      {.src = -1, .dst = -1, .nth = 0, .kind = net::FaultKind::kCorrupt});
  config.reliability.enabled = true;
  mpi::World world(config);
  world.run([](Comm& plain) {
    SecureComm comm(plain, secure_with_trust(RelayTrust::kEndToEnd));
    if (comm.rank() == 0) {
      comm.send(Bytes(512, 0x5A), 2, 1);
    } else if (comm.rank() == 2) {
      Bytes buf(512);
      Status st{};
      EXPECT_NO_THROW(st = comm.recv(buf, 0, 1));
      EXPECT_EQ(st.bytes, 512u);
      EXPECT_EQ(buf, Bytes(512, 0x5A));
      EXPECT_EQ(comm.counters().auth_failures, 0u);  // recovered, not fatal
      EXPECT_EQ(comm.counters().nacks_sent, 1u);
      EXPECT_EQ(comm.counters().retransmits_recovered, 1u);
      EXPECT_EQ(comm.exposure_events(), 0u);
    }
  });
  EXPECT_GE(world.reliability()->stats().e2e_nacks, 1u);
}

TEST(RelayTrust, HopTrustedReSealsSpendTheNonceBudgetFailClosed) {
  // Each hop-trusted relay re-seals the payload under the same group
  // key, so a route with one relay burns two AEAD invocations per
  // message. With a threshold of 5, the third message (invocations 5
  // and 6) must be refused at the sender — fail closed before an
  // unaccountable relay overruns the (key, nonce) budget — while the
  // same traffic under end-to-end trust (one invocation per message)
  // sails through five messages.
  for (const RelayTrust trust :
       {RelayTrust::kHopTrusted, RelayTrust::kEndToEnd}) {
    SecureConfig sc = secure_with_trust(trust);
    sc.nonce_mode = NonceMode::kCounter;
    sc.nonce_rekey_threshold = 5;
    int sent = 0;
    bool exhausted = false;
    run_secure_world(relayed_world(), sc, [&](SecureComm& comm) {
      if (comm.rank() == 0) {
        try {
          for (int i = 0; i < 5; ++i) {
            comm.send(Bytes(64, static_cast<std::uint8_t>(i)), 2, i);
            ++sent;
          }
        } catch (const NonceExhaustedError&) {
          exhausted = true;
        }
      } else if (comm.rank() == 2) {
        Bytes buf(64);
        const int expect = trust == RelayTrust::kHopTrusted ? 2 : 5;
        for (int i = 0; i < expect; ++i) (void)comm.recv(buf, 0, i);
      }
    });
    if (trust == RelayTrust::kHopTrusted) {
      EXPECT_TRUE(exhausted);
      EXPECT_EQ(sent, 2);  // messages 1-2 spent 2 invocations each
    } else {
      EXPECT_FALSE(exhausted);
      EXPECT_EQ(sent, 5);
    }
  }
}

TEST(RelayTrust, HopTrustedPaysThePerRelayCryptoSurcharge) {
  // With an analytic cost model, every hop-trusted relay bills one
  // open + one seal per payload; end-to-end forwarding is free. Same
  // traffic, same network — the timeline difference is pure relay
  // crypto.
  const auto campaign = [](RelayTrust trust) {
    SecureConfig sc;
    sc.relay_trust = trust;
    sc.charge_crypto = true;
    CryptoCostModel model;
    model.seal_per_op = 2e-6;
    model.seal_per_byte = 1e-9;
    model.open_per_op = 2e-6;
    model.open_per_byte = 1e-9;
    sc.cost_model = model;
    return run_secure_world(relayed_world(), sc, [](SecureComm& comm) {
      for (int i = 0; i < 10; ++i) {
        if (comm.rank() == 0) {
          comm.send(Bytes(4096, 0x11), 2, i);
        } else if (comm.rank() == 2) {
          Bytes buf(4096);
          (void)comm.recv(buf, 0, i);
        }
      }
    });
  };
  const double hop_trusted = campaign(RelayTrust::kHopTrusted);
  const double end_to_end = campaign(RelayTrust::kEndToEnd);
  EXPECT_GT(hop_trusted, end_to_end);
}

}  // namespace
}  // namespace emc::secure
