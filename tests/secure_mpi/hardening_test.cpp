// Hardening properties of the encrypted layer: nonce-space separation
// across ranks, 128-bit-key operation, error surfaces for truncated or
// cross-key traffic, and collective tamper injection.
#include <gtest/gtest.h>

#include <set>

#include "emc/secure_mpi/secure_comm.hpp"

namespace emc::secure {
namespace {

using mpi::Comm;
using mpi::Status;
using mpi::WorldConfig;

WorldConfig world_of(int nodes, int rpn) {
  WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = rpn;
  config.cluster.inter = net::ethernet_10g();
  return config;
}

TEST(SecureHardening, CounterNoncesNeverCollideAcrossRanks) {
  // Counter mode embeds the rank, so two ranks' nonce streams are
  // disjoint even though both count from zero. Verify on the wire.
  SecureConfig config;
  config.provider = "libsodium-sim";
  config.nonce_mode = NonceMode::kCounter;
  config.charge_crypto = false;

  std::set<Bytes> nonces;
  run_secure_world(world_of(3, 1), config, [&](SecureComm& comm) {
    // Ranks 1 and 2 each send 20 messages to rank 0.
    if (comm.rank() == 0) {
      for (int i = 0; i < 40; ++i) {
        Bytes wire(SecureComm::wire_size(8));
        comm.plain().recv(wire, mpi::kAnySource, 5);
        nonces.insert(Bytes(wire.begin(), wire.begin() + 12));
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        comm.send(Bytes(8, static_cast<std::uint8_t>(i)), 0, 5);
      }
    }
  });
  EXPECT_EQ(nonces.size(), 40u) << "nonce collision across ranks";
}

TEST(SecureHardening, Aes128KeysWorkEndToEnd) {
  // The paper benchmarks both 128- and 256-bit keys (§III-A).
  SecureConfig config;
  config.provider = "boringssl-sim";
  config.key = crypto::demo_key(16);
  config.charge_crypto = false;
  run_secure_world(world_of(2, 1), config, [](SecureComm& comm) {
    Bytes data = comm.rank() == 0 ? bytes_of("short key") : Bytes(9);
    comm.bcast(data, 0);
    EXPECT_EQ(std::string(data.begin(), data.end()), "short key");
  });
}

TEST(SecureHardening, MismatchedKeysCannotTalk) {
  // Two ranks configured with different keys: decryption must fail
  // (the scenario a broken key-distribution step would create).
  EXPECT_THROW(
      mpi::run_world(world_of(2, 1),
                     [](Comm& comm) {
                       SecureConfig config;
                       config.charge_crypto = false;
                       config.key = crypto::demo_key(32);
                       if (comm.rank() == 1) config.key[0] ^= 0x01;
                       SecureComm secure(comm, config);
                       if (comm.rank() == 0) {
                         secure.send(Bytes(16, 0x55), 1, 0);
                       } else {
                         Bytes buf(16);
                         secure.recv(buf, 0, 0);  // wrong key -> throw
                       }
                     }),
      IntegrityError);
}

TEST(SecureHardening, TamperedAllgatherBlockIsRejected) {
  // Corrupt one contributor's ciphertext inside a collective: the
  // decrypt loop on the receiving side must throw, not deliver junk.
  EXPECT_THROW(
      mpi::run_world(
          world_of(2, 1),
          [](Comm& comm) {
            SecureConfig config;
            config.charge_crypto = false;
            SecureComm secure(comm, config);
            const std::size_t block = 64;
            const std::size_t wire_block = SecureComm::wire_size(block);
            if (comm.rank() == 0) {
              // Play a corrupted allgather participant: run the plain
              // collective with garbage where a sealed block belongs.
              Bytes bogus(wire_block, 0xEE);
              Bytes all(wire_block * 2);
              comm.allgather(bogus, all);
            } else {
              Bytes all(block * 2);
              secure.allgather(Bytes(block, 0x01), all);  // must throw
            }
          }),
      IntegrityError);
}

TEST(SecureHardening, StatusReportsPlaintextSizesWithWildcards) {
  SecureConfig config;
  config.charge_crypto = false;
  run_secure_world(world_of(3, 1), config, [](SecureComm& comm) {
    if (comm.rank() == 0) {
      std::size_t total = 0;
      for (int i = 0; i < 2; ++i) {
        Bytes buf(512);
        const Status st = comm.recv(buf, mpi::kAnySource, mpi::kAnyTag);
        EXPECT_EQ(st.bytes, static_cast<std::size_t>(st.source) * 100);
        total += st.bytes;
      }
      EXPECT_EQ(total, 300u);
    } else {
      comm.send(Bytes(static_cast<std::size_t>(comm.rank()) * 100, 1), 0,
                comm.rank());
    }
  });
}

}  // namespace
}  // namespace emc::secure
