// The ARQ reliability layer: configuration validation, backoff
// determinism, recovery from every fault kind on both wire protocols,
// end-to-end NACK recovery through the secure layer, graceful
// degradation on a scripted dead link, schedule-perturbation
// robustness, and bit-exact replay when the layer is disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "emc/reliable/reliable.hpp"
#include "emc/secure_mpi/secure_comm.hpp"

namespace emc::reliable {
namespace {

using mpi::Comm;
using mpi::Status;
using mpi::World;
using mpi::WorldConfig;

WorldConfig arq_world(int nodes, int rpn, const net::FaultPlan& plan) {
  WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = rpn;
  config.cluster.inter = net::ethernet_10g();
  config.cluster.faults = plan;
  config.reliability.enabled = true;
  return config;
}

net::FaultPlan nth_fault(net::FaultKind kind, std::uint64_t nth = 0) {
  net::FaultPlan plan;
  plan.triggers.push_back({.src = 0, .dst = 1, .nth = nth, .kind = kind});
  return plan;
}

TEST(ReliableConfig, ValidatesKnobs) {
  Config config;
  config.enabled = true;
  EXPECT_NO_THROW(config.validate());
  config.max_retries = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = Config{.enabled = true, .rto_initial = 0.0};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = Config{.enabled = true, .rto_initial = 1e-3, .rto_max = 1e-4};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = Config{.enabled = true, .backoff = 0.5};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = Config{.enabled = true, .jitter = 1.0};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = Config{.enabled = true, .ctrl_bytes = 0};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  // A disabled config never validates its knobs (it is inert).
  config = Config{.enabled = false, .max_retries = 0};
  EXPECT_NO_THROW(config.validate());
  // World construction rejects a bad enabled config up front.
  WorldConfig world = arq_world(2, 1, {});
  world.reliability.max_retries = 0;
  EXPECT_THROW(World{world}, std::invalid_argument);
}

TEST(ReliableConfig, NegativeRecvTimeoutRejectedAtConstruction) {
  WorldConfig config = arq_world(2, 1, {});
  config.recv_timeout = -0.5;
  EXPECT_THROW(World{config}, std::invalid_argument);
  config.recv_timeout = 0.0;  // 0.0 = wait forever: valid
  EXPECT_NO_THROW(World{config});
}

TEST(ReliableChannel, BackoffGrowsIsCappedAndJitterIsSeeded) {
  net::ClusterConfig cluster;
  cluster.num_nodes = 2;
  cluster.ranks_per_node = 1;
  cluster.inter = net::ethernet_10g();
  net::Fabric fabric(cluster);
  Config config;
  config.enabled = true;
  config.rto_initial = 1e-4;
  config.rto_max = 1e-3;
  config.backoff = 2.0;
  config.jitter = 0.2;
  Channel channel(config, fabric);

  double prev = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double t = channel.rto(0, 1, 7, attempt);
    // Within the jittered envelope of the capped exponential ladder.
    const double base =
        std::min(config.rto_initial * std::pow(2.0, attempt), config.rto_max);
    EXPECT_GE(t, base * (1.0 - config.jitter));
    EXPECT_LE(t, base * (1.0 + config.jitter));
    if (attempt > 0 && attempt < 4) {
      EXPECT_GT(t, prev * 1.2);
    }
    prev = t;
  }
  // Deterministic: the same coordinates give the same timer; different
  // sequence numbers decorrelate the jitter.
  EXPECT_DOUBLE_EQ(channel.rto(0, 1, 7, 3), channel.rto(0, 1, 7, 3));
  EXPECT_NE(channel.rto(0, 1, 7, 3), channel.rto(0, 1, 8, 3));
}

TEST(ReliableEager, DropIsRetransmittedAfterRto) {
  WorldConfig config = arq_world(2, 1, nth_fault(net::FaultKind::kDrop));
  World world(config);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(bytes_of("survives"), 1, 1);
    } else {
      Bytes buf(16);
      const Status st = comm.recv(buf, 0, 1);
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + st.bytes),
                "survives");
    }
  });
  const ReliabilityStats& stats = world.reliability()->stats();
  EXPECT_EQ(stats.rto_expirations, 1u);
  EXPECT_EQ(stats.retransmits, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.deliveries, 1u);
  EXPECT_GT(stats.recovery_delay_total, 0.0);
}

TEST(ReliableEager, TruncationIsNackedAtTheLinkLayer) {
  // The ARQ header carries the frame length, so a truncated frame
  // never reaches the application: the link layer NACKs and the
  // retransmission delivers the full payload.
  WorldConfig config = arq_world(2, 1, nth_fault(net::FaultKind::kTruncate));
  World world(config);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(Bytes(64, 0xAB), 1, 1);
    } else {
      Bytes buf(64, 0x00);
      const Status st = comm.recv(buf, 0, 1);
      EXPECT_EQ(st.bytes, 64u);  // full length, unlike the bare fabric
      EXPECT_EQ(buf, Bytes(64, 0xAB));
    }
  });
  EXPECT_EQ(world.reliability()->stats().link_nacks, 1u);
  EXPECT_EQ(world.reliability()->stats().retransmits, 1u);
}

TEST(ReliableEager, DuplicateIsSuppressedBySequenceWindow) {
  WorldConfig config = arq_world(2, 1, nth_fault(net::FaultKind::kDuplicate));
  config.recv_timeout = 0.25;
  World world(config);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(bytes_of("once"), 1, 1);
    } else {
      Bytes buf(8);
      const Status st = comm.recv(buf, 0, 1);
      EXPECT_EQ(st.bytes, 4u);
      // The fabric copy was absorbed below the MPI layer: a second
      // receive finds nothing and times out.
      EXPECT_THROW((void)comm.recv(buf, 0, 1), mpi::MpiError);
    }
  });
  EXPECT_EQ(world.reliability()->stats().duplicates_suppressed, 1u);
  EXPECT_EQ(world.reliability()->stats().deliveries, 1u);
}

TEST(ReliableEager, CorruptPointToPointIsDeliveredDamaged) {
  // User point-to-point frames are not link-checksummed: integrity
  // stays the upper layer's job, preserving the plain baseline's
  // silent-corruption story even with the ARQ enabled.
  WorldConfig config = arq_world(2, 1, nth_fault(net::FaultKind::kCorrupt));
  World world(config);
  world.run([](Comm& comm) {
    const std::size_t n = 64;
    if (comm.rank() == 0) {
      comm.send(Bytes(n, 0x00), 1, 1);
    } else {
      Bytes buf(n, 0x00);
      const Status st = comm.recv(buf, 0, 1);
      EXPECT_EQ(st.bytes, n);
      int flipped = 0;
      for (std::uint8_t byte : buf) flipped += std::popcount(byte);
      EXPECT_EQ(flipped, 1);
    }
  });
  EXPECT_EQ(world.reliability()->stats().damaged_deliveries, 1u);
}

TEST(ReliableEager, ShortDelayIsAbsorbedLongDelayRetransmitsSpuriously) {
  // Spike below the RTO: just a late arrival. Spike above the RTO:
  // the sender retransmits spuriously and the extra copy is absorbed
  // by the sequence window.
  for (const bool spurious : {false, true}) {
    net::FaultPlan plan;
    plan.triggers.push_back({.src = 0,
                             .dst = 1,
                             .nth = 0,
                             .kind = net::FaultKind::kDelay,
                             .delay_seconds = spurious ? 0.1 : 1e-5});
    WorldConfig config = arq_world(2, 1, plan);
    World world(config);
    world.run([](Comm& comm) {
      if (comm.rank() == 0) {
        comm.send(bytes_of("late"), 1, 1);
      } else {
        Bytes buf(8);
        const Status st = comm.recv(buf, 0, 1);
        EXPECT_EQ(std::string(buf.begin(), buf.begin() + st.bytes), "late");
      }
    });
    const ReliabilityStats& stats = world.reliability()->stats();
    EXPECT_EQ(stats.delays_absorbed, 1u);
    EXPECT_EQ(stats.spurious_retransmits, spurious ? 1u : 0u);
    EXPECT_EQ(stats.duplicates_suppressed, spurious ? 1u : 0u);
  }
}

TEST(ReliableRendezvous, DroppedPullIsRetriedOnTimer) {
  // Above the eager threshold the fault hits the RDMA pull; with the
  // ARQ the receiver's timer re-issues the pull instead of degrading
  // the drop to corruption.
  WorldConfig config = arq_world(2, 1, nth_fault(net::FaultKind::kDrop));
  World world(config);
  world.run([](Comm& comm) {
    const std::size_t n = 128 * 1024;
    if (comm.rank() == 0) {
      comm.send(Bytes(n, 0x77), 1, 1);
    } else {
      Bytes buf(n, 0x00);
      const Status st = comm.recv(buf, 0, 1);
      EXPECT_EQ(st.bytes, n);
      EXPECT_EQ(buf, Bytes(n, 0x77));
    }
  });
  const ReliabilityStats& stats = world.reliability()->stats();
  EXPECT_EQ(stats.rto_expirations, 1u);
  EXPECT_EQ(stats.retransmits, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
}

TEST(ReliableCollective, CorruptedCollectiveFrameRecoversTransparently) {
  // Collective-internal frames are link-checksummed: corruption is
  // NACKed and retransmitted below the MPI layer, so a bcast over a
  // lossy wire still delivers the exact payload everywhere.
  net::FaultPlan plan;
  plan.seed = 5;
  plan.p_corrupt = 0.2;
  plan.p_drop = 0.1;
  WorldConfig config = arq_world(4, 1, plan);
  World world(config);
  world.run([](Comm& comm) {
    Bytes data = comm.rank() == 0 ? bytes_of("gold payload")
                                  : Bytes(12, 0x00);
    comm.bcast(data, 0);
    EXPECT_EQ(std::string(data.begin(), data.end()), "gold payload");
    comm.barrier();
  });
  const ReliabilityStats& stats = world.reliability()->stats();
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_EQ(stats.damaged_deliveries, 0u);  // nothing reached the app damaged
}

TEST(ReliableSecure, AuthFailureBecomesNackAndRetransmitNotThrow) {
  // The marquee interaction: a corrupted eager frame fails GCM
  // authentication in the secure layer, which NACKs through the ARQ
  // instead of throwing IntegrityError; the retransmitted clean copy
  // authenticates and the application never sees an error.
  WorldConfig config = arq_world(2, 1, nth_fault(net::FaultKind::kCorrupt));
  World world(config);
  world.run([](Comm& comm) {
    secure::SecureConfig sc;
    sc.charge_crypto = false;
    secure::SecureComm secure(comm, sc);
    if (comm.rank() == 0) {
      secure.send(bytes_of("recovered end to end"), 1, 2);
    } else {
      Bytes buf(32);
      Status st{};
      EXPECT_NO_THROW(st = secure.recv(buf, 0, 2));
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + st.bytes),
                "recovered end to end");
      EXPECT_EQ(secure.counters().auth_failures, 0u);
      EXPECT_EQ(secure.counters().nacks_sent, 1u);
      EXPECT_EQ(secure.counters().retransmits_recovered, 1u);
    }
  });
  const ReliabilityStats& stats = world.reliability()->stats();
  EXPECT_EQ(stats.damaged_deliveries, 1u);
  EXPECT_GE(stats.e2e_nacks, 1u);
  EXPECT_GE(stats.retransmits, 1u);
}

TEST(ReliableSecure, RendezvousAuthFailureAlsoRecovers) {
  const std::size_t n = 128 * 1024;  // sealed wire rides the rendezvous
  WorldConfig config = arq_world(2, 1, nth_fault(net::FaultKind::kCorrupt));
  World world(config);
  world.run([&](Comm& comm) {
    secure::SecureConfig sc;
    sc.charge_crypto = false;
    secure::SecureComm secure(comm, sc);
    if (comm.rank() == 0) {
      secure.send(Bytes(n, 0x3C), 1, 2);
    } else {
      Bytes buf(n);
      Status st{};
      EXPECT_NO_THROW(st = secure.recv(buf, 0, 2));
      EXPECT_EQ(st.bytes, n);
      EXPECT_EQ(buf, Bytes(n, 0x3C));
      EXPECT_EQ(secure.counters().auth_failures, 0u);
      EXPECT_EQ(secure.counters().retransmits_recovered, 1u);
    }
  });
}

TEST(ReliableSecure, AttackerInjectionStillThrowsIntegrityError) {
  // End-to-end recovery must not absolve real attackers: garbage that
  // never passed through the fabric's damage path has no retransmit
  // stash entry, so authentication failure still throws.
  WorldConfig config = arq_world(2, 1, {});
  World world(config);
  world.run([](Comm& comm) {
    secure::SecureConfig sc;
    sc.charge_crypto = false;
    secure::SecureComm secure(comm, sc);
    if (comm.rank() == 0) {
      comm.send(Bytes(secure::SecureComm::wire_size(8), 0xEE), 1, 3);
    } else {
      Bytes buf(8);
      EXPECT_THROW((void)secure.recv(buf, 0, 3), secure::IntegrityError);
      EXPECT_EQ(secure.counters().auth_failures, 1u);
      EXPECT_EQ(secure.counters().nacks_sent, 0u);
    }
  });
}

TEST(ReliableDegrade, DeadLinkRaisesPeerUnreachableAndSurvivorsFinish) {
  // Scripted dead link 0 -> 1: every transmission attempt of the
  // first message is dropped until the retry budget runs out. The
  // sender gets a structured PeerUnreachable (no hang), the receiver
  // gets one from the tombstone (no timeout), the verifier records a
  // warning diagnostic, and traffic among survivors still flows.
  net::FaultPlan plan;
  constexpr int kRetries = 3;
  for (std::uint64_t nth = 0; nth <= kRetries; ++nth) {
    plan.triggers.push_back(
        {.src = 0, .dst = 1, .nth = nth, .kind = net::FaultKind::kDrop});
  }
  WorldConfig config = arq_world(3, 1, plan);
  config.reliability.max_retries = kRetries;
  config.verify.enabled = true;
  World world(config);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      bool unreachable = false;
      try {
        comm.send(bytes_of("into the void"), 1, 1);
      } catch (const PeerUnreachable& e) {
        unreachable = true;
        EXPECT_EQ(e.src, 0);
        EXPECT_EQ(e.dst, 1);
        EXPECT_EQ(e.attempts, static_cast<std::uint64_t>(kRetries) + 1);
      }
      EXPECT_TRUE(unreachable);
      // The dead link now fails fast, before burning another budget.
      EXPECT_THROW(comm.send(bytes_of("again"), 1, 1), PeerUnreachable);
      comm.send(bytes_of("still alive"), 2, 1);  // survivor traffic
    } else if (comm.rank() == 1) {
      Bytes buf(16);
      EXPECT_THROW((void)comm.recv(buf, 0, 1), PeerUnreachable);
      const Status st = comm.recv(buf, 2, 1);
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + st.bytes), "relay");
    } else {
      Bytes buf(16);
      const Status st = comm.recv(buf, 0, 1);
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + st.bytes),
                "still alive");
      comm.send(bytes_of("relay"), 1, 1);
    }
  });
  EXPECT_EQ(world.reliability()->stats().links_dead, 1u);
  // Degradation is a warning-severity diagnostic: recorded, but it
  // must never abort the surviving ranks even in fail-fast mode.
  bool recorded = false;
  for (const auto& d : world.verifier()->diagnostics()) {
    if (d.check == verify::Check::kPeerUnreachable) {
      recorded = true;
      EXPECT_EQ(d.severity, verify::Severity::kWarning);
      EXPECT_EQ(d.ranks, (std::vector<int>{0, 1}));
    }
  }
  EXPECT_TRUE(recorded);
  EXPECT_TRUE(world.verifier()->clean());
}

TEST(ReliablePerturbed, TranscriptsAndFaultStatsIdenticalAcrossSalts) {
  // Schedule perturbation must not change what the ARQ delivers: the
  // fault schedule is a pure function of (seed, link, frame index),
  // so every tie-break salt yields the same delivered payloads and
  // the same injection stats.
  net::FaultPlan plan;
  plan.seed = 21;
  plan.p_drop = 0.1;
  plan.p_corrupt = 0.1;
  WorldConfig config = arq_world(4, 1, plan);

  constexpr int kRuns = 5;  // run 0 baseline + 4 perturbed salts
  std::mutex mu;
  std::vector<std::string> transcripts;  // kRanks entries per run
  std::vector<net::FaultStats> fault_stats;  // 1 entry per run
  const auto body = [&](Comm& comm) {
    const int n = comm.size();
    const int next = (comm.rank() + 1) % n;
    const int prev = (comm.rank() - 1 + n) % n;
    std::string got;
    for (int i = 0; i < 8; ++i) {
      Bytes out(32, static_cast<std::uint8_t>(comm.rank() * 16 + i));
      mpi::Request rs = comm.isend(out, next, i);
      Bytes in(32);
      const Status st = comm.recv(in, prev, i);
      comm.wait(rs);
      got += std::to_string(st.bytes) + ":";
      for (std::uint8_t b : in) got += static_cast<char>('a' + (b % 26));
      got += "|";
    }
    comm.barrier();  // all traffic done: fault stats are final
    const std::lock_guard<std::mutex> lock(mu);
    transcripts.push_back(std::to_string(comm.rank()) + "=" + got);
    if (comm.rank() == 0) {
      fault_stats.push_back(comm.world().fabric().faults()->stats());
    }
  };

  const auto runs = mpi::run_perturbed(config, body, kRuns, /*seed=*/77);
  ASSERT_EQ(runs.size(), static_cast<std::size_t>(kRuns));
  std::vector<std::uint64_t> salts;
  for (const auto& run : runs) {
    EXPECT_FALSE(run.failed) << run.error;
    salts.push_back(run.salt);
  }
  EXPECT_GE(std::set<std::uint64_t>(salts.begin(), salts.end()).size(), 4u);

  ASSERT_EQ(transcripts.size(), static_cast<std::size_t>(4 * kRuns));
  ASSERT_EQ(fault_stats.size(), static_cast<std::size_t>(kRuns));
  // Per-run transcript sets must be identical across all salts.
  const auto run_set = [&](int run) {
    std::vector<std::string> s(transcripts.begin() + run * 4,
                               transcripts.begin() + (run + 1) * 4);
    std::sort(s.begin(), s.end());
    return s;
  };
  const auto baseline = run_set(0);
  for (int run = 1; run < kRuns; ++run) {
    EXPECT_EQ(run_set(run), baseline) << "salt " << salts[(std::size_t)run];
  }
  for (int run = 1; run < kRuns; ++run) {
    EXPECT_EQ(fault_stats[static_cast<std::size_t>(run)], fault_stats[0]);
  }
}

TEST(ReliableOffByDefault, DisabledLayerReplaysTheBareFabricBitExact) {
  // With reliability.enabled=false no channel is constructed and the
  // wire path must replay the bare fabric exactly: same per-byte
  // deliveries, same fault stats, same virtual end time.
  const auto campaign = [](bool declare_knobs) {
    WorldConfig config;
    config.cluster.num_nodes = 2;
    config.cluster.ranks_per_node = 1;
    config.cluster.inter = net::ethernet_10g();
    config.cluster.faults.seed = 9;
    config.cluster.faults.p_corrupt = 0.15;
    config.cluster.faults.p_duplicate = 0.1;
    config.recv_timeout = 0.5;
    if (declare_knobs) {
      // Touch every knob except the master switch: must be inert.
      config.reliability.max_retries = 2;
      config.reliability.rto_initial = 1e-5;
      config.reliability.jitter = 0.0;
    }
    World world(config);
    std::string transcript;
    const double end = world.run([&](Comm& comm) {
      if (comm.rank() == 0) {
        for (int i = 0; i < 20; ++i) comm.send(Bytes(64, 0x5A), 1, 1);
      } else {
        for (;;) {
          Bytes buf(64);
          try {
            const Status st = comm.recv(buf, 0, 1);
            transcript += std::to_string(st.bytes) + ",";
          } catch (const mpi::MpiError&) {
            break;  // drained
          }
        }
      }
    });
    EXPECT_EQ(world.reliability(), nullptr);
    return std::make_tuple(end, transcript,
                           world.fabric().faults()->stats());
  };
  EXPECT_EQ(campaign(false), campaign(true));
}

}  // namespace
}  // namespace emc::reliable
