// Congestion-controlled transports over hostile WAN links: clocked
// knob validation, the fixed-RTO spurious-retransmit collapse on long
// paths vs the adaptive (RFC 6298 + AIMD) transport, window/AIMD
// accounting, and the extreme-adversity property suite (30-50% seeded
// loss with zero application-visible errors, salt-invariant
// transcripts, tombstone fallback past the retry budget).
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "emc/mpi/comm.hpp"
#include "emc/reliable/reliable.hpp"

namespace emc::reliable {
namespace {

using mpi::Comm;
using mpi::Status;
using mpi::World;
using mpi::WorldConfig;

/// Two single-rank nodes joined by a symmetric overridden link.
WorldConfig wan_world(const net::LinkProfile& link, Transport transport) {
  WorldConfig config;
  config.cluster.num_nodes = 2;
  config.cluster.ranks_per_node = 1;
  config.cluster.links.push_back({0, 1, link});
  config.cluster.links.push_back({1, 0, link});
  config.reliability.enabled = true;
  config.reliability.transport = transport;
  return config;
}

TEST(CongestionConfig, ValidatesClockedKnobs) {
  Config config;
  config.enabled = true;
  config.transport = Transport::kAdaptive;
  EXPECT_NO_THROW(config.validate());
  config.cwnd_initial = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.cwnd_initial = 8;
  config.cwnd_limit = 4;  // limit below initial
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.cwnd_limit = 64;
  config.rto_min = -1e-3;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(CongestionTransport, ClockedModesStillDeliverEverythingOnCleanLinks) {
  for (const Transport t : {Transport::kFixedRto, Transport::kAdaptive}) {
    const net::LinkProfile clean = net::wan_link(net::wan_metro(), 0.0,
                                                0.0, 1);
    World world(wan_world(clean, t));
    world.run([](Comm& comm) {
      for (int i = 0; i < 10; ++i) {
        if (comm.rank() == 0) {
          comm.send(Bytes(2048, static_cast<std::uint8_t>(i)), 1, i);
        } else {
          Bytes buf(2048);
          const Status st = comm.recv(buf, 0, i);
          EXPECT_EQ(st.bytes, 2048u);
          EXPECT_EQ(buf, Bytes(2048, static_cast<std::uint8_t>(i)));
        }
      }
    });
    const ReliabilityStats& stats = world.reliability()->stats();
    EXPECT_EQ(stats.deliveries, 10u);
    EXPECT_EQ(stats.retransmits, 0u);
    EXPECT_EQ(stats.cwnd_halvings, 0u);
    if (t == Transport::kAdaptive) EXPECT_GT(stats.rtt_samples, 0u);
  }
}

TEST(CongestionTransport, FixedRtoCollapsesOnWanAdaptiveLearnsTheRtt) {
  // The motivating scenario: a LAN-tuned fixed RTO ladder (capped at
  // 20 ms) on an 80 ms-RTT continental path fires long before the ACK
  // can possibly return, burning the wire with spurious copies of
  // every frame. The adaptive transport seeds its timer from the
  // path's nominal latency and then from measured SRTT/RTTVAR, so the
  // same traffic crosses storm-free and finishes sooner.
  const net::LinkProfile wan =
      net::wan_link(net::wan_continental(), 0.0, 0.0, 3);
  const auto campaign = [&](Transport t) {
    WorldConfig config = wan_world(wan, t);
    // Same window for both transports: the measured difference is the
    // timer discipline, not the window size.
    config.reliability.cwnd_initial = 8;
    config.reliability.cwnd_limit = 8;
    World world(config);
    const double end = world.run([](Comm& comm) {
      for (int i = 0; i < 15; ++i) {
        if (comm.rank() == 0) {
          comm.send(Bytes(4096, 0x42), 1, i);
        } else {
          Bytes buf(4096);
          (void)comm.recv(buf, 0, i);
        }
      }
      // Close the loop so the end time covers the last delivery.
      if (comm.rank() == 1) comm.send(bytes_of("done"), 0, 99);
      else { Bytes b(8); (void)comm.recv(b, 1, 99); }
    });
    return std::make_pair(end, world.reliability()->stats());
  };

  const auto [fixed_end, fixed] = campaign(Transport::kFixedRto);
  const auto [adaptive_end, adaptive] = campaign(Transport::kAdaptive);

  EXPECT_EQ(fixed.deliveries, 16u);
  EXPECT_EQ(adaptive.deliveries, 16u);
  // The fixed ladder retransmits spuriously on essentially every
  // frame; the adaptive timer at worst grazes a few marginal samples
  // (NIC-queueing variance riding on a converged RTTVAR).
  EXPECT_GT(fixed.spurious_retransmits, 15u);
  EXPECT_LT(adaptive.spurious_retransmits, fixed.spurious_retransmits / 4);
  EXPECT_GT(adaptive.rtt_samples, 5u);
  EXPECT_EQ(fixed.rtt_samples, 0u);
  EXPECT_LT(adaptive_end, fixed_end);
}

TEST(CongestionTransport, FullWindowStallsTheSender) {
  const net::LinkProfile wan =
      net::wan_link(net::wan_continental(), 0.0, 0.0, 5);
  WorldConfig config = wan_world(wan, Transport::kFixedRto);
  config.reliability.cwnd_limit = 2;  // tiny window, 80 ms ACK clock
  config.reliability.cwnd_initial = 2;
  World world(config);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 12; ++i) comm.send(Bytes(1024, 0x01), 1, i);
    } else {
      for (int i = 0; i < 12; ++i) {
        Bytes buf(1024);
        (void)comm.recv(buf, 0, i);
      }
    }
  });
  const ReliabilityStats& stats = world.reliability()->stats();
  EXPECT_GT(stats.window_stalls, 0u);
  EXPECT_GT(stats.window_stall_seconds, 0.0);
}

TEST(CongestionTransport, LossHalvesTheAdaptiveWindow) {
  net::LinkProfile lossy = net::wan_link(net::wan_metro(), 0.10, 0.0, 11);
  World world(wan_world(lossy, Transport::kAdaptive));
  world.run([](Comm& comm) {
    for (int i = 0; i < 40; ++i) {
      if (comm.rank() == 0) comm.send(Bytes(1024, 0x55), 1, i);
      else { Bytes buf(1024); (void)comm.recv(buf, 0, i); }
    }
  });
  const ReliabilityStats& stats = world.reliability()->stats();
  EXPECT_GT(stats.cwnd_halvings, 0u);  // AIMD reacted to the losses
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_EQ(stats.deliveries, 40u);    // and still delivered everything
}

TEST(CongestionAdversity, ExtremeLossSurvivedWithZeroAppVisibleErrors) {
  // Property-style sweep: 30/40/50% seeded frame loss on a jittery
  // metro WAN path. The contract under test is the robustness story
  // end to end — every payload is delivered intact, no exception
  // reaches the application, and the delivered transcripts are
  // identical under perturbed engine tie-break orders (the ARQ
  // dialogue is a pure function of the fault schedule, not of the
  // scheduler).
  for (const double p_drop : {0.30, 0.40, 0.50}) {
    net::LinkProfile brutal =
        net::wan_link(net::wan_metro(), p_drop, 1e-3, 17);
    WorldConfig config = wan_world(brutal, Transport::kAdaptive);
    config.reliability.max_retries = 24;  // 0.5^24: loss, not death

    constexpr int kRuns = 3;
    constexpr int kMsgs = 12;
    std::mutex mu;
    std::vector<std::string> transcripts;
    const auto body = [&](Comm& comm) {
      std::string got;
      for (int i = 0; i < kMsgs; ++i) {
        Bytes payload(512, static_cast<std::uint8_t>(0xA0 + i));
        if (comm.rank() == 0) {
          comm.send(payload, 1, i);
          Bytes echo(512);
          const Status st = comm.recv(echo, 1, 100 + i);
          EXPECT_EQ(st.bytes, 512u);
          EXPECT_EQ(echo, payload);  // round trip intact
        } else {
          Bytes buf(512);
          const Status st = comm.recv(buf, 0, i);
          EXPECT_EQ(st.bytes, 512u);
          EXPECT_EQ(buf, payload);
          comm.send(buf, 0, 100 + i);
        }
        got += std::to_string(i) + ";";
      }
      const std::lock_guard<std::mutex> lock(mu);
      transcripts.push_back(std::to_string(comm.rank()) + "=" + got);
    };

    const auto runs = mpi::run_perturbed(config, body, kRuns, /*seed=*/31);
    ASSERT_EQ(runs.size(), static_cast<std::size_t>(kRuns));
    for (const auto& run : runs) {
      EXPECT_FALSE(run.failed) << "p_drop=" << p_drop << ": " << run.error;
    }
    ASSERT_EQ(transcripts.size(), static_cast<std::size_t>(2 * kRuns));
    const auto run_set = [&](int run) {
      std::vector<std::string> s(transcripts.begin() + run * 2,
                                 transcripts.begin() + (run + 1) * 2);
      std::sort(s.begin(), s.end());
      return s;
    };
    for (int run = 1; run < kRuns; ++run) {
      EXPECT_EQ(run_set(run), run_set(0)) << "p_drop=" << p_drop;
    }

    // Sanity: the link really was hostile — recovery did happen.
    World world(config);
    world.run(body);
    const ReliabilityStats& stats = world.reliability()->stats();
    EXPECT_GT(stats.retransmits, 0u);
    EXPECT_GT(stats.recoveries, 0u);
    EXPECT_EQ(stats.links_dead, 0u);
  }
}

TEST(CongestionAdversity, TotalLossFallsBackToPeerUnreachable) {
  // Past graceful degradation: a link that drops literally everything
  // exhausts the budget, the sender gets a structured PeerUnreachable
  // and the receiver a tombstone — bounded, deterministic, no hang.
  net::LinkProfile dead = net::wan_link(net::wan_metro(), 1.0, 0.0, 7);
  net::LinkProfile clean = net::wan_link(net::wan_metro(), 0.0, 0.0, 7);
  WorldConfig config;
  config.cluster.num_nodes = 2;
  config.cluster.ranks_per_node = 1;
  config.cluster.links.push_back({0, 1, dead});
  config.cluster.links.push_back({1, 0, clean});
  config.reliability.enabled = true;
  config.reliability.transport = Transport::kAdaptive;
  config.reliability.max_retries = 4;
  World world(config);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send(bytes_of("void"), 1, 1), PeerUnreachable);
    } else {
      Bytes buf(16);
      EXPECT_THROW((void)comm.recv(buf, 0, 1), PeerUnreachable);
    }
  });
  EXPECT_EQ(world.reliability()->stats().links_dead, 1u);
}

}  // namespace
}  // namespace emc::reliable
