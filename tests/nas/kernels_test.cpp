// Every mini-NAS kernel must self-verify on the plain communicator
// across rank counts, and produce identical verification results over
// the encrypted communicator (ciphertext transport must be invisible
// to the numerics).
#include <gtest/gtest.h>

#include "emc/nas/nas.hpp"
#include "emc/secure_mpi/secure_comm.hpp"

namespace emc::nas {
namespace {

mpi::WorldConfig world_of(int nodes, int ranks_per_node) {
  mpi::WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = ranks_per_node;
  config.cluster.inter = net::ethernet_10g();
  return config;
}

struct KernelCase {
  Kernel kernel;
  int nodes;
  int ranks_per_node;
};

class NasKernelTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(NasKernelTest, VerifiesOnPlainComm) {
  const KernelCase& param = GetParam();
  mpi::run_world(world_of(param.nodes, param.ranks_per_node),
                 [&](mpi::Comm& comm) {
                   const KernelResult result = run_kernel(
                       param.kernel, comm, comm.process(), ProblemClass::kS);
                   EXPECT_TRUE(result.verified)
                       << result.name << " residual " << result.residual
                       << " on " << comm.size() << " ranks";
                   EXPECT_EQ(result.name, kernel_name(param.kernel));
                   EXPECT_GE(result.comm_fraction, 0.0);
                   EXPECT_LE(result.comm_fraction, 1.0);
                 });
}

TEST_P(NasKernelTest, VerifiesOnSecureComm) {
  const KernelCase& param = GetParam();
  secure::SecureConfig secure_config;
  secure_config.provider = "boringssl-sim";
  secure::run_secure_world(
      world_of(param.nodes, param.ranks_per_node), secure_config,
      [&](secure::SecureComm& comm) {
        const KernelResult result = run_kernel(
            param.kernel, comm, comm.plain().process(), ProblemClass::kS);
        EXPECT_TRUE(result.verified)
            << result.name << " residual " << result.residual;
      });
}

std::vector<KernelCase> kernel_cases() {
  std::vector<KernelCase> cases;
  for (Kernel k : all_kernels()) {
    cases.push_back({k, 1, 1});   // serial sanity
    cases.push_back({k, 2, 2});   // 4 ranks, 2 nodes
    cases.push_back({k, 4, 2});   // 8 ranks, 4 nodes
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, NasKernelTest, ::testing::ValuesIn(kernel_cases()),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return std::string(kernel_name(info.param.kernel)) + "_" +
             std::to_string(info.param.nodes) + "n" +
             std::to_string(info.param.ranks_per_node) + "r";
    });

TEST(NasRegistry, NamesRoundTrip) {
  for (Kernel k : all_kernels()) {
    EXPECT_EQ(kernel_by_name(kernel_name(k)), k);
  }
  EXPECT_THROW((void)kernel_by_name("EP"), std::invalid_argument);
  EXPECT_EQ(class_by_name("S"), ProblemClass::kS);
  EXPECT_EQ(class_by_name("a"), ProblemClass::kA);
  EXPECT_THROW((void)class_by_name("C"), std::invalid_argument);
  EXPECT_EQ(all_kernels().size(), 7u);
}

TEST(NasEncryption, SecureRunIsSlowerInVirtualTime) {
  // Encryption must add measurable virtual time to a comm-heavy kernel.
  const auto config = world_of(2, 2);
  const double plain = mpi::run_world(config, [](mpi::Comm& comm) {
    (void)run_ft(comm, comm.process(), ProblemClass::kS);
  });

  secure::SecureConfig slow;
  slow.provider = "cryptopp-sim";  // slowest tier: visible overhead
  const double encrypted =
      secure::run_secure_world(config, slow, [](secure::SecureComm& comm) {
        (void)run_ft(comm, comm.plain().process(), ProblemClass::kS);
      });
  EXPECT_GT(encrypted, plain);
}

}  // namespace
}  // namespace emc::nas
