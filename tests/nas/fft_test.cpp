// FFT utility correctness: known transforms, inverse, Parseval.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "emc/common/rng.hpp"
#include "emc/nas/fft.hpp"

namespace emc::nas {
namespace {

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<Complex> data(8, Complex(0, 0));
  data[0] = Complex(1, 0);
  fft(data, false);
  for (const Complex& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  constexpr std::size_t kN = 64;
  std::vector<Complex> data(kN);
  const int tone = 5;
  for (std::size_t i = 0; i < kN; ++i) {
    const double phase = 2.0 * std::numbers::pi * tone *
                         static_cast<double>(i) / kN;
    data[i] = Complex(std::cos(phase), std::sin(phase));
  }
  fft(data, false);
  for (std::size_t k = 0; k < kN; ++k) {
    const double expected = k == static_cast<std::size_t>(tone) ? kN : 0.0;
    EXPECT_NEAR(std::abs(data[k]), expected, 1e-9) << "bin " << k;
  }
}

class FftRoundtripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundtripTest, InverseRecovers) {
  Xoshiro256 rng(GetParam());
  std::vector<Complex> data(GetParam());
  for (Complex& c : data) {
    c = Complex(rng.next_double() - 0.5, rng.next_double() - 0.5);
  }
  const std::vector<Complex> original = data;
  fft(data, false);
  fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST_P(FftRoundtripTest, ParsevalHolds) {
  Xoshiro256 rng(GetParam() + 1);
  std::vector<Complex> data(GetParam());
  for (Complex& c : data) {
    c = Complex(rng.next_double() - 0.5, rng.next_double() - 0.5);
  }
  double time_energy = 0.0;
  for (const Complex& c : data) time_energy += std::norm(c);
  fft(data, false);
  double freq_energy = 0.0;
  for (const Complex& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy,
              1e-8 * time_energy);
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, FftRoundtripTest,
                         ::testing::Values(1u, 2u, 4u, 16u, 128u, 1024u));

TEST(FftStrided, MatchesContiguous) {
  constexpr std::size_t kN = 32;
  constexpr std::size_t kStride = 7;
  Xoshiro256 rng(3);
  std::vector<Complex> strided(kN * kStride, Complex(9, 9));
  std::vector<Complex> reference(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const Complex v(rng.next_double(), rng.next_double());
    strided[i * kStride] = v;
    reference[i] = v;
  }
  std::vector<Complex> scratch(kN);
  fft_strided(strided.data(), kN, kStride, false, scratch);
  fft(reference, false);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(std::abs(strided[i * kStride] - reference[i]), 0.0, 1e-12);
  }
  // Elements off the stride grid are untouched.
  EXPECT_EQ(strided[1], Complex(9, 9));
}

TEST(FftUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

}  // namespace
}  // namespace emc::nas
