// Partitioning-independence checks: a kernel's verification residual
// is a global numerical property, so it must agree across rank counts
// up to floating-point reduction-order noise. This catches halo /
// pipeline bugs that still "verify" at one specific partition.
#include <gtest/gtest.h>

#include <cmath>

#include "emc/mpi/comm.hpp"
#include "emc/nas/nas.hpp"

namespace emc::nas {
namespace {

mpi::WorldConfig world_of(int nodes, int rpn) {
  mpi::WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = rpn;
  config.cluster.inter = net::ethernet_10g();
  return config;
}

double residual_with_ranks(Kernel kernel, int nodes, int rpn) {
  double residual = 0.0;
  mpi::run_world(world_of(nodes, rpn), [&](mpi::Comm& comm) {
    const KernelResult result =
        run_kernel(kernel, comm, comm.process(), ProblemClass::kS);
    EXPECT_TRUE(result.verified) << kernel_name(kernel);
    if (comm.rank() == 0) residual = result.residual;
  });
  return residual;
}

class PartitionConsistencyTest : public ::testing::TestWithParam<Kernel> {};

TEST_P(PartitionConsistencyTest, ResidualAgreesAcrossRankCounts) {
  const Kernel kernel = GetParam();
  const double serial = residual_with_ranks(kernel, 1, 1);
  const double par4 = residual_with_ranks(kernel, 2, 2);
  const double par8 = residual_with_ranks(kernel, 4, 2);

  // Reduction order differs across partitions, so compare with a
  // relative tolerance; the scale is the serial residual (or 1 when
  // the residual is a tiny round-off quantity, e.g. BT/SP's direct-
  // solve error or FT's energy drift).
  const double scale = std::max(std::abs(serial), 1e-12);
  EXPECT_NEAR(par4, serial, 0.05 * scale + 1e-10) << kernel_name(kernel);
  EXPECT_NEAR(par8, serial, 0.05 * scale + 1e-10) << kernel_name(kernel);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, PartitionConsistencyTest,
    ::testing::Values(Kernel::kCG, Kernel::kFT, Kernel::kMG, Kernel::kLU),
    [](const ::testing::TestParamInfo<Kernel>& param) {
      return kernel_name(param.param);
    });

TEST(PartitionConsistency, IsSortsIdenticallyEverywhere) {
  // IS verification is exact (sortedness + conservation), so just run
  // it at an irregular rank count for the ragged-bucket path.
  mpi::run_world(world_of(5, 1), [](mpi::Comm& comm) {
    const KernelResult result =
        run_is(comm, comm.process(), ProblemClass::kS);
    EXPECT_TRUE(result.verified);
  });
}

TEST(PartitionConsistency, AdiDirectSolveExactEverywhere) {
  // BT/SP verification is a direct-solve residual (< 1e-9 by
  // construction); check it stays at round-off for several partitions.
  for (int nodes : {1, 2, 4}) {
    mpi::run_world(world_of(nodes, 2), [](mpi::Comm& comm) {
      const KernelResult bt = run_bt(comm, comm.process(), ProblemClass::kS);
      EXPECT_TRUE(bt.verified);
      EXPECT_LT(bt.residual, 1e-9);
      const KernelResult sp = run_sp(comm, comm.process(), ProblemClass::kS);
      EXPECT_TRUE(sp.verified);
      EXPECT_LT(sp.residual, 1e-9);
    });
  }
}

}  // namespace
}  // namespace emc::nas
