// Point-to-point semantics of MiniMPI: matching, ordering, wildcards,
// eager vs rendezvous, non-blocking completion, and error paths.
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/mpi/comm.hpp"

namespace emc::mpi {
namespace {

WorldConfig small_world(int nodes, int ranks_per_node) {
  WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = ranks_per_node;
  config.cluster.inter = net::ethernet_10g();
  return config;
}

TEST(P2p, PingPongDeliversDataAndChargesTime) {
  const double end = run_world(small_world(2, 1), [](Comm& comm) {
    const Bytes ping = bytes_of("ping");
    if (comm.rank() == 0) {
      comm.send(ping, 1, 7);
      Bytes buf(16);
      const Status st = comm.recv(buf, 1, 8);
      EXPECT_EQ(st.bytes, 4u);
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + 4), "pong");
    } else {
      Bytes buf(16);
      const Status st = comm.recv(buf, 0, 7);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 4u);
      comm.send(bytes_of("pong"), 0, 8);
    }
  });
  // One round trip must cost at least two one-way latencies.
  EXPECT_GT(end, 2 * net::ethernet_10g().latency);
}

TEST(P2p, MessagesFromSameSourceArriveInOrder) {
  run_world(small_world(2, 1), [](Comm& comm) {
    if (comm.rank() == 0) {
      for (std::uint8_t i = 0; i < 50; ++i) {
        comm.send(Bytes{i}, 1, 3);
      }
    } else {
      for (std::uint8_t i = 0; i < 50; ++i) {
        Bytes buf(1);
        comm.recv(buf, 0, 3);
        ASSERT_EQ(buf[0], i);
      }
    }
  });
}

TEST(P2p, TagsSelectMessages) {
  run_world(small_world(2, 1), [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(bytes_of("tagged-5"), 1, 5);
      comm.send(bytes_of("tagged-6"), 1, 6);
    } else {
      Bytes buf(8);
      comm.recv(buf, 0, 6);  // out of arrival order, by tag
      EXPECT_EQ(std::string(buf.begin(), buf.end()), "tagged-6");
      comm.recv(buf, 0, 5);
      EXPECT_EQ(std::string(buf.begin(), buf.end()), "tagged-5");
    }
  });
}

TEST(P2p, WildcardSourceAndTag) {
  run_world(small_world(3, 1), [](Comm& comm) {
    if (comm.rank() == 0) {
      int from1 = 0;
      int from2 = 0;
      for (int i = 0; i < 2; ++i) {
        Bytes buf(4);
        const Status st = comm.recv(buf, kAnySource, kAnyTag);
        EXPECT_EQ(st.bytes, 4u);
        if (st.source == 1) ++from1;
        if (st.source == 2) ++from2;
        EXPECT_EQ(st.tag, st.source * 10);
      }
      EXPECT_EQ(from1, 1);
      EXPECT_EQ(from2, 1);
    } else {
      comm.send(bytes_of("data"), 0, comm.rank() * 10);
    }
  });
}

TEST(P2p, LargeMessagesUseRendezvousAndRoundTrip) {
  // 1 MB is far above the eager threshold of every profile.
  run_world(small_world(2, 1), [](Comm& comm) {
    Xoshiro256 rng(42);
    const Bytes payload = rng.bytes(1 << 20);
    if (comm.rank() == 0) {
      comm.send(payload, 1, 1);
    } else {
      Bytes buf(1 << 20);
      const Status st = comm.recv(buf, 0, 1);
      EXPECT_EQ(st.bytes, payload.size());
      EXPECT_EQ(buf, payload);
    }
  });
}

TEST(P2p, RendezvousIsSlowerThanWireMinimum) {
  // The RTS/CTS handshake must add at least two extra latencies.
  const auto prof = net::ethernet_10g();
  const std::size_t bytes = 1 << 20;
  const double wire_min =
      prof.latency + static_cast<double>(bytes) / prof.bandwidth;
  const double end = run_world(small_world(2, 1), [bytes](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(Bytes(bytes, 0xab), 1, 1);
    } else {
      Bytes buf(bytes);
      comm.recv(buf, 0, 1);
    }
  });
  EXPECT_GT(end, wire_min + 2 * prof.latency);
}

TEST(P2p, SelfSendWorksForAnySize) {
  run_world(small_world(1, 1), [](Comm& comm) {
    Xoshiro256 rng(7);
    for (std::size_t size : {0u, 1u, 1024u, 200'000u}) {
      const Bytes payload = rng.bytes(size);
      comm.send(payload, 0, 2);  // would deadlock if rendezvous
      Bytes buf(size);
      const Status st = comm.recv(buf, 0, 2);
      EXPECT_EQ(st.bytes, size);
      EXPECT_EQ(buf, payload);
    }
  });
}

TEST(P2p, NonblockingWindowCompletes) {
  run_world(small_world(2, 1), [](Comm& comm) {
    constexpr int kWindow = 64;
    Xoshiro256 rng(9);
    if (comm.rank() == 0) {
      std::vector<Bytes> payloads;
      std::vector<Request> requests;
      for (int i = 0; i < kWindow; ++i) {
        payloads.push_back(rng.bytes(512));
        requests.push_back(comm.isend(payloads.back(), 1, i));
      }
      comm.waitall(requests);
    } else {
      std::vector<Bytes> bufs(kWindow, Bytes(512));
      std::vector<Request> requests;
      for (int i = 0; i < kWindow; ++i) {
        requests.push_back(comm.irecv(bufs[static_cast<std::size_t>(i)],
                                      0, i));
      }
      const auto statuses = comm.waitall(requests);
      Xoshiro256 check(9);
      for (int i = 0; i < kWindow; ++i) {
        EXPECT_EQ(statuses[static_cast<std::size_t>(i)].bytes, 512u);
        EXPECT_EQ(bufs[static_cast<std::size_t>(i)], check.bytes(512));
      }
    }
  });
}

TEST(P2p, IrecvPostedBeforeSendMatches) {
  run_world(small_world(2, 1), [](Comm& comm) {
    if (comm.rank() == 0) {
      Bytes buf(8);
      Request r = comm.irecv(buf, 1, 4);
      const Status st = comm.wait(r);
      EXPECT_EQ(st.bytes, 5u);
      EXPECT_EQ(std::string(buf.begin(), buf.begin() + 5), "later");
    } else {
      comm.process().advance(1e-3);  // ensure the recv is posted first
      comm.send(bytes_of("later"), 0, 4);
    }
  });
}

TEST(P2p, SendrecvExchangesPairwise) {
  run_world(small_world(2, 2), [](Comm& comm) {
    const int partner = comm.rank() ^ 1;
    const Bytes mine = Bytes(64, static_cast<std::uint8_t>(comm.rank()));
    Bytes theirs(64);
    const Status st = comm.sendrecv(mine, partner, 5, theirs, partner, 5);
    EXPECT_EQ(st.source, partner);
    EXPECT_EQ(theirs, Bytes(64, static_cast<std::uint8_t>(partner)));
  });
}

TEST(P2p, TruncationThrows) {
  EXPECT_THROW(run_world(small_world(2, 1),
                         [](Comm& comm) {
                           if (comm.rank() == 0) {
                             comm.send(Bytes(100, 1), 1, 0);
                             Bytes buf(1);
                             comm.recv(buf, 1, 1);
                           } else {
                             Bytes small(10);
                             comm.recv(small, 0, 0);  // too small
                             comm.send(Bytes(1, 1), 0, 1);
                           }
                         }),
               MpiError);
}

TEST(P2p, InvalidArgumentsThrow) {
  EXPECT_THROW(run_world(small_world(1, 2),
                         [](Comm& comm) {
                           comm.send(Bytes(1), 5, 0);  // bad peer
                         }),
               MpiError);
  EXPECT_THROW(run_world(small_world(1, 2),
                         [](Comm& comm) {
                           comm.send(Bytes(1), 0, -3);  // bad tag
                         }),
               MpiError);
  EXPECT_THROW(run_world(small_world(1, 2),
                         [](Comm& comm) {
                           comm.send(Bytes(1), 0, kMaxUserTag + 1);
                         }),
               MpiError);
  EXPECT_THROW(run_world(small_world(1, 1),
                         [](Comm& comm) {
                           Request empty;
                           comm.wait(empty);
                         }),
               MpiError);
}

TEST(P2p, UnmatchedRecvDeadlocks) {
  EXPECT_THROW(run_world(small_world(2, 1),
                         [](Comm& comm) {
                           if (comm.rank() == 0) {
                             Bytes buf(4);
                             comm.recv(buf, 1, 0);  // never sent
                           }
                         }),
               sim::Deadlock);
}

TEST(P2p, AbandonedIrecvIsDeregistered) {
  // Dropping a request without wait() must not leave a dangling
  // posted receive that could match a later message.
  run_world(small_world(2, 1), [](Comm& comm) {
    if (comm.rank() == 0) {
      {
        Bytes buf(4);
        Request r = comm.irecv(buf, 1, 9);
        // destroyed unmatched
      }
      Bytes buf2(4);
      const Status st = comm.recv(buf2, 1, 9);
      EXPECT_EQ(st.bytes, 4u);
      EXPECT_EQ(std::string(buf2.begin(), buf2.end()), "real");
    } else {
      comm.process().advance(1e-3);
      comm.send(bytes_of("real"), 0, 9);
    }
  });
}

TEST(P2p, EagerThresholdBoundary) {
  // A message exactly at the threshold is eager (sender returns after
  // the local copy); one byte above uses rendezvous (sender blocks
  // until the receiver pulls). Distinguish by the sender-side time of
  // an isend+immediate-wait, which is cheap for eager and includes
  // the handshake for rendezvous.
  WorldConfig config = small_world(2, 1);
  const auto threshold = config.cluster.inter.eager_threshold;
  const double latency = config.cluster.inter.latency;

  const auto sender_time = [&](std::size_t bytes) {
    double observed = 0.0;
    run_world(config, [&](Comm& comm) {
      if (comm.rank() == 0) {
        const Bytes payload(bytes, 1);
        const double t0 = comm.now();
        comm.send(payload, 1, 0);
        observed = comm.now() - t0;
      } else {
        Bytes buf(bytes);
        comm.recv(buf, 0, 0);
      }
    });
    return observed;
  };

  const double at_threshold = sender_time(threshold);
  const double above_threshold = sender_time(threshold + 1);
  // Rendezvous blocks the sender across RTS+CTS latencies plus the
  // payload egress; the eager sender only pays overhead + local copy.
  EXPECT_GT(above_threshold, 2 * latency);
  EXPECT_LT(at_threshold, above_threshold / 2);
}

TEST(P2p, CpuScaleShrinksChargedWork) {
  WorldConfig config = small_world(1, 1);
  const auto body = [](Comm& comm) {
    comm.process().charge([] {
      volatile double x = 0;
      for (int i = 0; i < 500000; ++i) x += i;
    });
  };
  config.cpu_scale = 1.0;
  const double full = run_world(config, body);
  config.cpu_scale = 0.1;
  const double scaled = run_world(config, body);
  EXPECT_GT(full, 0.0);
  EXPECT_LT(scaled, full);  // same work, cheaper simulated CPU time
}

TEST(P2p, VirtualTimeIsDeterministic) {
  auto run_once = [] {
    return run_world(small_world(2, 4), [](Comm& comm) {
      const int partner = (comm.rank() + 4) % 8;
      Bytes buf(2048);
      for (int i = 0; i < 10; ++i) {
        if (comm.rank() < 4) {
          comm.send(Bytes(2048, 1), partner, 0);
          comm.recv(buf, partner, 0);
        } else {
          comm.recv(buf, partner, 0);
          comm.send(Bytes(2048, 2), partner, 0);
        }
      }
    });
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace emc::mpi
