// Soak tests: randomized traffic schedules over many ranks, mixing
// message sizes across the eager/rendezvous boundary, blocking and
// non-blocking calls, and collectives — with full payload checking.
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/mpi/comm.hpp"
#include "emc/mpi/reduce.hpp"

namespace emc::mpi {
namespace {

WorldConfig stress_world(int nodes, int rpn, bool ib) {
  WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = rpn;
  config.cluster.inter = ib ? net::infiniband_qdr_40g()
                            : net::ethernet_10g();
  return config;
}

/// Deterministic payload for a (round, src, dst) triple.
Bytes payload_for(int round, int src, int dst, std::size_t size) {
  Xoshiro256 rng(0xF00Du + static_cast<std::uint64_t>(round) * 1009 +
                 static_cast<std::uint64_t>(src) * 17 +
                 static_cast<std::uint64_t>(dst));
  return rng.bytes(size);
}

class TrafficSoakTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(TrafficSoakTest, RandomizedAllPairsTraffic) {
  const auto& [nodes, rpn, ib] = GetParam();
  const int n = nodes * rpn;
  constexpr int kRounds = 6;

  run_world(stress_world(nodes, rpn, ib), [&](Comm& comm) {
    const int me = comm.rank();
    Xoshiro256 size_rng(0xCAFE);  // identical schedule on all ranks

    for (int round = 0; round < kRounds; ++round) {
      // Every rank sends to every other rank; size drawn from a
      // schedule shared by all ranks so receivers know what to expect.
      std::vector<std::vector<std::size_t>> sizes(
          static_cast<std::size_t>(n),
          std::vector<std::size_t>(static_cast<std::size_t>(n)));
      for (int s = 0; s < n; ++s) {
        for (int d = 0; d < n; ++d) {
          // Mix tiny, eager, threshold-straddling, and rendezvous.
          static constexpr std::size_t kChoices[] = {
              0, 1, 64, 4096, 64 * 1024, 64 * 1024 + 1, 300 * 1000};
          sizes[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)] =
              kChoices[size_rng.next_below(7)];
        }
      }

      std::vector<Bytes> outgoing;
      std::vector<Bytes> incoming;
      std::vector<Request> requests;
      for (int peer = 0; peer < n; ++peer) {
        if (peer == me) continue;
        incoming.push_back(
            Bytes(sizes[static_cast<std::size_t>(peer)]
                       [static_cast<std::size_t>(me)]));
        requests.push_back(comm.irecv(incoming.back(), peer, round));
      }
      for (int peer = 0; peer < n; ++peer) {
        if (peer == me) continue;
        outgoing.push_back(payload_for(
            round, me, peer,
            sizes[static_cast<std::size_t>(me)]
                 [static_cast<std::size_t>(peer)]));
        requests.push_back(comm.isend(outgoing.back(), peer, round));
      }
      comm.waitall(requests);

      std::size_t idx = 0;
      for (int peer = 0; peer < n; ++peer) {
        if (peer == me) continue;
        const Bytes expect = payload_for(
            round, peer, me,
            sizes[static_cast<std::size_t>(peer)]
                 [static_cast<std::size_t>(me)]);
        ASSERT_EQ(incoming[idx], expect)
            << "round " << round << " from " << peer;
        ++idx;
      }

      // Interleave a collective every round to stress tag separation.
      EXPECT_EQ(allreduce_sum(comm, 1), n);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Clusters, TrafficSoakTest,
    ::testing::Values(std::make_tuple(2, 2, false),
                      std::make_tuple(4, 2, false),
                      std::make_tuple(2, 4, true),
                      std::make_tuple(4, 4, true)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, bool>>& param) {
      return std::to_string(std::get<0>(param.param)) + "n" +
             std::to_string(std::get<1>(param.param)) + "r" +
             (std::get<2>(param.param) ? "_ib" : "_eth");
    });

TEST(TrafficSoak, ManySmallMessagesOneChannelKeepOrder) {
  // 2000 back-to-back messages on one (src, dst, tag) channel must
  // arrive in order even as eager buffers queue up.
  run_world(stress_world(2, 1, false), [](Comm& comm) {
    constexpr int kCount = 2000;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i) {
        Bytes msg(4);
        store_be32(msg.data(), static_cast<std::uint32_t>(i));
        comm.send(msg, 1, 1);
      }
    } else {
      Bytes buf(4);
      for (int i = 0; i < kCount; ++i) {
        comm.recv(buf, 0, 1);
        ASSERT_EQ(load_be32(buf.data()), static_cast<std::uint32_t>(i));
      }
    }
  });
}

TEST(TrafficSoak, CollectiveBarrageKeepsTagIsolation) {
  // Back-to-back collectives of every kind must not cross-match even
  // when ranks enter them at skewed times.
  run_world(stress_world(2, 3, false), [](Comm& comm) {
    const int n = comm.size();
    comm.process().advance(1e-5 * comm.rank());  // skew entries
    for (int i = 0; i < 20; ++i) {
      Bytes data = comm.rank() == i % n
                       ? Bytes(100, static_cast<std::uint8_t>(i))
                       : Bytes(100);
      comm.bcast(data, i % n);
      ASSERT_EQ(data, Bytes(100, static_cast<std::uint8_t>(i)));

      Bytes all(32 * static_cast<std::size_t>(n));
      comm.allgather(Bytes(32, static_cast<std::uint8_t>(comm.rank())),
                     all);
      for (int r = 0; r < n; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r) * 32],
                  static_cast<std::uint8_t>(r));
      }
      comm.barrier();
    }
  });
}

}  // namespace
}  // namespace emc::mpi
