// Plain MiniMPI under an adversarial fabric: the baseline layer must
// keep functioning but has no integrity story — corruption is
// delivered silently, truncation shrinks the status, drops surface
// only through the receive timeout. Also covers the collective-tag
// exhaustion guard (regression for the old silent 28-bit wraparound).
#include <gtest/gtest.h>

#include <bit>

#include "emc/mpi/comm.hpp"

namespace emc::mpi {
namespace {

WorldConfig faulty_world(int nodes, int rpn, const net::FaultPlan& plan,
                         double recv_timeout = 0.0) {
  WorldConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.ranks_per_node = rpn;
  config.cluster.inter = net::ethernet_10g();
  config.cluster.faults = plan;
  config.recv_timeout = recv_timeout;
  return config;
}

net::FaultPlan nth_fault(net::FaultKind kind, std::uint64_t nth = 0) {
  net::FaultPlan plan;
  plan.triggers.push_back({.src = 0, .dst = 1, .nth = nth, .kind = kind});
  return plan;
}

TEST(FaultPath, CollTagExhaustionThrowsInsteadOfWrapping) {
  // The old code masked the collective tag to 28 bits, silently
  // re-entering the user tag range (and reusing tags) after 2^22
  // collectives. Now the counter walks the whole internal range and
  // the communicator fails loudly when it is exhausted.
  EXPECT_THROW(
      run_world(faulty_world(2, 1, {}),
                [](Comm& comm) {
                  comm.consume_coll_tags(Comm::kMaxCollectives - 2);
                  comm.barrier();  // two slots left: fine
                  comm.barrier();  // last slot: fine
                  comm.barrier();  // exhausted: must throw, not wrap
                }),
      MpiError);
}

TEST(FaultPath, CollTagsStayAboveUserRange) {
  // Even deep into the sequence, internal collective tags never
  // collide with user tags (the failure mode of the old wraparound).
  run_world(faulty_world(2, 1, {}), [](Comm& comm) {
    comm.consume_coll_tags(Comm::kMaxCollectives - 1);
    const int peer = 1 - comm.rank();
    Bytes mine = bytes_of("user-traffic");
    Bytes theirs(mine.size());
    // A user-tagged exchange interleaved with the very last collective
    // must not cross-match with its internal tags.
    comm.sendrecv(mine, peer, kMaxUserTag, theirs, peer, kMaxUserTag);
    EXPECT_EQ(std::string(theirs.begin(), theirs.end()), "user-traffic");
    comm.barrier();
  });
}

TEST(FaultPath, RecvTimeoutThrowsInsteadOfDeadlocking) {
  EXPECT_THROW(
      run_world(faulty_world(2, 1, {}, /*recv_timeout=*/0.5),
                [](Comm& comm) {
                  if (comm.rank() == 1) {
                    Bytes buf(8);
                    comm.recv(buf, 0, 3);  // nobody ever sends this
                  }
                }),
      MpiError);
}

TEST(FaultPath, RecvTimeoutLeavesHealthyTrafficAlone) {
  run_world(faulty_world(2, 1, {}, /*recv_timeout=*/10.0), [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(bytes_of("on time"), 1, 1);
    } else {
      Bytes buf(16);
      const Status st = comm.recv(buf, 0, 1);
      EXPECT_EQ(st.bytes, 7u);
    }
  });
}

TEST(FaultPath, CorruptedEagerPayloadIsDeliveredSilently) {
  // The indictment of the plain baseline: a flipped bit arrives as
  // ordinary data, with no error surfaced anywhere.
  run_world(faulty_world(2, 1, nth_fault(net::FaultKind::kCorrupt)),
            [](Comm& comm) {
              const std::size_t n = 64;
              if (comm.rank() == 0) {
                comm.send(Bytes(n, 0x00), 1, 1);
              } else {
                Bytes buf(n, 0x00);
                const Status st = comm.recv(buf, 0, 1);
                EXPECT_EQ(st.bytes, n);
                int flipped_bits = 0;
                for (std::uint8_t byte : buf) {
                  flipped_bits += std::popcount(byte);
                }
                EXPECT_EQ(flipped_bits, 1);  // exactly one bit damaged
              }
            });
}

TEST(FaultPath, TruncatedEagerPayloadShrinksStatus) {
  net::FaultPlan plan;
  plan.triggers.push_back({.src = 0,
                           .dst = 1,
                           .nth = 0,
                           .kind = net::FaultKind::kTruncate,
                           .new_length = 10});
  run_world(faulty_world(2, 1, plan), [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(Bytes(64, 0xAB), 1, 1);
    } else {
      Bytes buf(64, 0x00);
      const Status st = comm.recv(buf, 0, 1);
      EXPECT_EQ(st.bytes, 10u);  // silently shorter, no error
      for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(buf[i], 0xAB);
    }
  });
}

TEST(FaultPath, DuplicatedEagerPayloadArrivesTwice) {
  run_world(faulty_world(2, 1, nth_fault(net::FaultKind::kDuplicate)),
            [](Comm& comm) {
              if (comm.rank() == 0) {
                comm.send(bytes_of("echo"), 1, 1);
              } else {
                for (int i = 0; i < 2; ++i) {
                  Bytes buf(8);
                  const Status st = comm.recv(buf, 0, 1);
                  EXPECT_EQ(st.bytes, 4u);
                  EXPECT_EQ(std::string(buf.begin(), buf.begin() + 4),
                            "echo");
                }
              }
            });
}

TEST(FaultPath, DroppedMessageSurfacesAsTimeout) {
  EXPECT_THROW(
      run_world(faulty_world(2, 1, nth_fault(net::FaultKind::kDrop),
                             /*recv_timeout=*/0.5),
                [](Comm& comm) {
                  if (comm.rank() == 0) {
                    comm.send(Bytes(32, 0x11), 1, 1);
                  } else {
                    Bytes buf(32);
                    comm.recv(buf, 0, 1);  // the wire ate it
                  }
                }),
      MpiError);
}

TEST(FaultPath, RendezvousPullIsCorruptedInPlace) {
  // 128 KiB over ethernet is above the eager threshold, so the fault
  // hits the RDMA-style pull instead of the eager envelope.
  run_world(faulty_world(2, 1, nth_fault(net::FaultKind::kCorrupt)),
            [](Comm& comm) {
              const std::size_t n = 128 * 1024;
              if (comm.rank() == 0) {
                comm.send(Bytes(n, 0x00), 1, 1);
              } else {
                Bytes buf(n, 0x00);
                const Status st = comm.recv(buf, 0, 1);
                EXPECT_EQ(st.bytes, n);
                int flipped_bits = 0;
                for (std::uint8_t byte : buf) {
                  flipped_bits += std::popcount(byte);
                }
                EXPECT_EQ(flipped_bits, 1);
              }
            });
}

TEST(FaultPath, RendezvousNeverDropsEvenUnderCertainDrop) {
  // Dropping the rendezvous pull would leave the sender parked on the
  // handshake forever; the injector degrades it to corruption, so the
  // transfer completes (damaged) and both ranks make progress.
  net::FaultPlan plan;
  plan.p_drop = 1.0;
  run_world(faulty_world(2, 1, plan, /*recv_timeout=*/5.0), [](Comm& comm) {
    const std::size_t n = 128 * 1024;
    if (comm.rank() == 0) {
      comm.send(Bytes(n, 0x00), 1, 1);
    } else {
      Bytes buf(n, 0x00);
      const Status st = comm.recv(buf, 0, 1);
      EXPECT_EQ(st.bytes, n);
    }
  });
}

TEST(FaultPath, DelayedEagerPayloadArrivesIntactButLate) {
  // A latency spike postpones the arrival without touching the bytes;
  // the plain layer just sees a slow message.
  net::FaultPlan plan;
  plan.triggers.push_back({.src = 0,
                           .dst = 1,
                           .nth = 0,
                           .kind = net::FaultKind::kDelay,
                           .delay_seconds = 0.25});
  const double end =
      run_world(faulty_world(2, 1, plan), [](Comm& comm) {
        if (comm.rank() == 0) {
          comm.send(bytes_of("slow"), 1, 1);
        } else {
          Bytes buf(8);
          const Status st = comm.recv(buf, 0, 1);
          EXPECT_EQ(st.bytes, 4u);
          EXPECT_EQ(std::string(buf.begin(), buf.begin() + 4), "slow");
          EXPECT_GE(comm.now(), 0.25);
        }
      });
  EXPECT_GE(end, 0.25);
}

TEST(FaultPath, DelayedRendezvousPullArrivesIntactButLate) {
  net::FaultPlan plan;
  plan.triggers.push_back({.src = 0,
                           .dst = 1,
                           .nth = 0,
                           .kind = net::FaultKind::kDelay,
                           .delay_seconds = 0.25});
  const double end =
      run_world(faulty_world(2, 1, plan), [](Comm& comm) {
        const std::size_t n = 128 * 1024;  // above the eager threshold
        if (comm.rank() == 0) {
          comm.send(Bytes(n, 0x5A), 1, 1);
        } else {
          Bytes buf(n, 0x00);
          const Status st = comm.recv(buf, 0, 1);
          EXPECT_EQ(st.bytes, n);
          EXPECT_EQ(buf, Bytes(n, 0x5A));
          EXPECT_GE(comm.now(), 0.25);
        }
      });
  EXPECT_GE(end, 0.25);
}

TEST(FaultPath, SelfSendsBypassTheInjector) {
  net::FaultPlan plan;
  plan.p_drop = 1.0;
  run_world(faulty_world(1, 1, plan), [](Comm& comm) {
    Bytes buf(4);
    Request rx = comm.irecv(buf, 0, 1);
    comm.send(bytes_of("self"), 0, 1);
    const Status st = comm.wait(rx);
    EXPECT_EQ(st.bytes, 4u);  // loopback traffic is never faulted
  });
}

}  // namespace
}  // namespace emc::mpi
