// Every collective verified against a serially computed reference,
// across a sweep of communicator sizes (including non powers of two).
#include <gtest/gtest.h>

#include "emc/common/rng.hpp"
#include "emc/mpi/comm.hpp"
#include "emc/mpi/reduce.hpp"

namespace emc::mpi {
namespace {

WorldConfig world_of(int ranks) {
  WorldConfig config;
  // Spread across several nodes when the count factors, so collectives
  // mix intra- and inter-node links; odd counts fall back to 1/node.
  if (ranks % 2 == 0 && ranks >= 4) {
    config.cluster.ranks_per_node = 2;
    config.cluster.num_nodes = ranks / 2;
  } else {
    config.cluster.ranks_per_node = 1;
    config.cluster.num_nodes = ranks;
  }
  config.cluster.inter = net::ethernet_10g();
  return config;
}

/// Deterministic per-rank block content.
Bytes rank_block(int rank, std::size_t size, std::uint64_t salt = 0) {
  Xoshiro256 rng(0x1000u + static_cast<std::uint64_t>(rank) * 77 + salt);
  return rng.bytes(size);
}

class CollectiveSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizeTest, BarrierSynchronizes) {
  const int n = GetParam();
  WorldConfig config = world_of(n);
  // Rank r computes for r milliseconds; after the barrier every rank's
  // clock must be at least the slowest rank's compute time.
  run_world(config, [](Comm& comm) {
    comm.process().advance(1e-3 * comm.rank());
    comm.barrier();
    EXPECT_GE(comm.now(), 1e-3 * (comm.size() - 1));
  });
}

TEST_P(CollectiveSizeTest, BcastFromEveryRoot) {
  const int n = GetParam();
  run_world(world_of(n), [n](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      const Bytes expect = rank_block(root, 300);
      Bytes data = comm.rank() == root ? expect : Bytes(300);
      comm.bcast(data, root);
      ASSERT_EQ(data, expect) << "root " << root << " rank " << comm.rank();
    }
  });
}

TEST_P(CollectiveSizeTest, BcastLargePayload) {
  const int n = GetParam();
  run_world(world_of(n), [](Comm& comm) {
    const Bytes expect = rank_block(0, 300'000);  // rendezvous path
    Bytes data = comm.rank() == 0 ? expect : Bytes(expect.size());
    comm.bcast(data, 0);
    ASSERT_EQ(data, expect);
  });
}

TEST_P(CollectiveSizeTest, AllgatherCollectsInRankOrder) {
  const int n = GetParam();
  run_world(world_of(n), [n](Comm& comm) {
    const std::size_t block = 128;
    const Bytes mine = rank_block(comm.rank(), block);
    Bytes all(block * static_cast<std::size_t>(n));
    comm.allgather(mine, all);
    for (int r = 0; r < n; ++r) {
      const Bytes expect = rank_block(r, block);
      const BytesView got = BytesView(all).subspan(
          static_cast<std::size_t>(r) * block, block);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), expect.begin()))
          << "rank " << comm.rank() << " block " << r;
    }
  });
}

TEST_P(CollectiveSizeTest, AlltoallPermutesBlocks) {
  const int n = GetParam();
  run_world(world_of(n), [n](Comm& comm) {
    const std::size_t block = 64;
    // Block destined for rank d from rank s has content f(s, d).
    Bytes sendbuf(block * static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      const Bytes part = rank_block(comm.rank() * 1000 + d, block);
      std::copy(part.begin(), part.end(),
                sendbuf.begin() +
                    static_cast<std::ptrdiff_t>(
                        static_cast<std::size_t>(d) * block));
    }
    Bytes recvbuf(sendbuf.size());
    comm.alltoall(sendbuf, recvbuf, block);
    for (int s = 0; s < n; ++s) {
      const Bytes expect = rank_block(s * 1000 + comm.rank(), block);
      const BytesView got = BytesView(recvbuf).subspan(
          static_cast<std::size_t>(s) * block, block);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), expect.begin()))
          << "from rank " << s;
    }
  });
}

TEST_P(CollectiveSizeTest, AlltoallvWithRaggedSizes) {
  const int n = GetParam();
  run_world(world_of(n), [n](Comm& comm) {
    const auto un = static_cast<std::size_t>(n);
    const int me = comm.rank();
    // Rank s sends (s + d + 1) * 3 bytes to rank d.
    const auto count_for = [](int s, int d) {
      return static_cast<std::size_t>((s + d + 1) * 3);
    };
    std::vector<std::size_t> sendcounts(un);
    std::vector<std::size_t> senddispls(un);
    std::vector<std::size_t> recvcounts(un);
    std::vector<std::size_t> recvdispls(un);
    std::size_t send_total = 0;
    std::size_t recv_total = 0;
    for (int d = 0; d < n; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      sendcounts[ud] = count_for(me, d);
      senddispls[ud] = send_total;
      send_total += sendcounts[ud];
      recvcounts[ud] = count_for(d, me);
      recvdispls[ud] = recv_total;
      recv_total += recvcounts[ud];
    }
    Bytes sendbuf(send_total);
    for (int d = 0; d < n; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      const Bytes part = rank_block(me * 333 + d, sendcounts[ud]);
      std::copy(part.begin(), part.end(),
                sendbuf.begin() + static_cast<std::ptrdiff_t>(senddispls[ud]));
    }
    Bytes recvbuf(recv_total);
    comm.alltoallv(sendbuf, sendcounts, senddispls, recvbuf, recvcounts,
                   recvdispls);
    for (int s = 0; s < n; ++s) {
      const auto us = static_cast<std::size_t>(s);
      const Bytes expect = rank_block(s * 333 + me, recvcounts[us]);
      const BytesView got =
          BytesView(recvbuf).subspan(recvdispls[us], recvcounts[us]);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), expect.begin()))
          << "from rank " << s;
    }
  });
}

TEST_P(CollectiveSizeTest, GatherAndScatterMirror) {
  const int n = GetParam();
  run_world(world_of(n), [n](Comm& comm) {
    const std::size_t block = 96;
    const int root = n / 2;
    const Bytes mine = rank_block(comm.rank(), block, /*salt=*/5);
    Bytes gathered(comm.rank() == root
                       ? block * static_cast<std::size_t>(n)
                       : 0);
    comm.gather(mine, gathered, root);
    if (comm.rank() == root) {
      for (int r = 0; r < n; ++r) {
        const Bytes expect = rank_block(r, block, /*salt=*/5);
        ASSERT_TRUE(std::equal(
            expect.begin(), expect.end(),
            gathered.begin() + static_cast<std::ptrdiff_t>(
                                   static_cast<std::size_t>(r) * block)));
      }
    }
    // Scatter the gathered buffer back; every rank recovers its block.
    Bytes back(block);
    comm.scatter(gathered, back, root);
    EXPECT_EQ(back, mine);
  });
}

TEST_P(CollectiveSizeTest, TypedReduceAndAllreduce) {
  const int n = GetParam();
  run_world(world_of(n), [n](Comm& comm) {
    // Sum of ranks and of squares, vector form.
    const double r = comm.rank();
    const std::vector<double> in = {r, r * r, 1.0};
    std::vector<double> out(3);
    allreduce(comm, std::span<const double>(in), std::span<double>(out),
              std::plus<double>{});
    const double s = n * (n - 1) / 2.0;
    const double sq = (n - 1) * n * (2 * n - 1) / 6.0;
    EXPECT_DOUBLE_EQ(out[0], s);
    EXPECT_DOUBLE_EQ(out[1], sq);
    EXPECT_DOUBLE_EQ(out[2], n);

    EXPECT_DOUBLE_EQ(allreduce_sum(comm, 2.5), 2.5 * n);
    EXPECT_DOUBLE_EQ(allreduce_max(comm, r), static_cast<double>(n - 1));
    EXPECT_EQ(allreduce_max(comm, comm.rank()), n - 1);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 9, 16));

TEST(Collectives, SixtyFourRankBcastAndAlltoall) {
  // The paper's big setting: 64 ranks on 8 nodes.
  WorldConfig config;
  config.cluster.num_nodes = 8;
  config.cluster.ranks_per_node = 8;
  config.cluster.inter = net::infiniband_qdr_40g();
  run_world(config, [](Comm& comm) {
    Bytes data = comm.rank() == 0 ? rank_block(0, 4096) : Bytes(4096);
    comm.bcast(data, 0);
    ASSERT_EQ(data, rank_block(0, 4096));

    const std::size_t block = 256;
    Bytes sendbuf(block * 64, static_cast<std::uint8_t>(comm.rank()));
    Bytes recvbuf(block * 64);
    comm.alltoall(sendbuf, recvbuf, block);
    for (int s = 0; s < 64; ++s) {
      ASSERT_EQ(recvbuf[static_cast<std::size_t>(s) * block],
                static_cast<std::uint8_t>(s));
    }
  });
}

TEST(Collectives, MismatchedBufferSizesThrow) {
  WorldConfig config = world_of(2);
  EXPECT_THROW(run_world(config,
                         [](Comm& comm) {
                           Bytes small(10);
                           Bytes wrong(15);  // needs 20
                           comm.allgather(small, wrong);
                         }),
               MpiError);
  EXPECT_THROW(run_world(config,
                         [](Comm& comm) {
                           Bytes buf(10);
                           comm.bcast(buf, 9);  // bad root
                         }),
               MpiError);
}

}  // namespace
}  // namespace emc::mpi
