#include <gtest/gtest.h>

#include <set>

#include "emc/common/rng.hpp"

namespace emc {
namespace {

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256 rng(8);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);  // crude uniformity check
}

TEST(Xoshiro, FillCoversOddSizes) {
  Xoshiro256 rng(9);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 31u}) {
    Bytes buf(n, 0xcc);
    rng.fill(buf);
    // Just shape checks; content determinism covered above.
    EXPECT_EQ(buf.size(), n);
  }
}

TEST(Xoshiro, BytesIsDeterministic) {
  Xoshiro256 a(10);
  Xoshiro256 b(10);
  EXPECT_EQ(a.bytes(33), b.bytes(33));
}

TEST(RandomNonce, NoncesAreUnique) {
  std::set<Bytes> seen;
  for (int i = 0; i < 2000; ++i) {
    Bytes nonce(12);
    random_nonce(nonce);
    EXPECT_TRUE(seen.insert(nonce).second) << "duplicate nonce at " << i;
  }
}

}  // namespace
}  // namespace emc
