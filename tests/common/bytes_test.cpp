#include <gtest/gtest.h>

#include "emc/common/bytes.hpp"

namespace emc {
namespace {

TEST(Hex, RoundTrips) {
  const Bytes data = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "0001deadbeefff");
  EXPECT_EQ(from_hex("0001deadbeefff"), data);
  EXPECT_EQ(from_hex("0001DEADBEEFFF"), data);
}

TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, RejectsMalformedInput) {
  EXPECT_THROW((void)from_hex("abc"), std::invalid_argument);
  EXPECT_THROW((void)from_hex("zz"), std::invalid_argument);
  EXPECT_THROW((void)from_hex("0g"), std::invalid_argument);
}

TEST(BytesOf, CopiesAscii) {
  const Bytes b = bytes_of("hi!");
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 'h');
  EXPECT_EQ(b[2], '!');
}

TEST(CtEqual, ComparesCorrectly) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(XorInto, XorsPairwise) {
  Bytes dst = {0xff, 0x0f, 0x00};
  const Bytes src = {0x0f, 0x0f, 0x0f};
  xor_into(dst, src);
  EXPECT_EQ(dst, (Bytes{0xf0, 0x00, 0x0f}));
}

TEST(SecureZero, WipesBuffer) {
  Bytes buf = {1, 2, 3, 4};
  secure_zero(buf);
  EXPECT_EQ(buf, Bytes(4, 0x00));
}

TEST(Endian, Be32RoundTrips) {
  std::uint8_t buf[4];
  store_be32(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(load_be32(buf), 0x01020304u);
}

TEST(Endian, Be64RoundTrips) {
  std::uint8_t buf[8];
  store_be64(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(load_be64(buf), 0x0102030405060708ull);
}

TEST(Endian, Le64RoundTrips) {
  std::uint8_t buf[8];
  store_le64(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(load_le64(buf), 0x0102030405060708ull);
}

TEST(Rotl, RotatesBits) {
  EXPECT_EQ(rotl32(0x80000000u, 1), 0x00000001u);
  EXPECT_EQ(rotl64(0x8000000000000000ull, 1), 1ull);
  EXPECT_EQ(rotl32(0x12345678u, 8), 0x34567812u);
}

}  // namespace
}  // namespace emc
