#include <gtest/gtest.h>

#include <cmath>

#include "emc/common/stats.hpp"

namespace emc {
namespace {

TEST(RunningStats, MeanAndStddevMatchHandComputation) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroSpread) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.rel_stddev(), 0.0);
  EXPECT_EQ(rs.ci_halfwidth(0.95), 0.0);
}

TEST(RunningStats, RelStddevIsScaleFree) {
  RunningStats a;
  RunningStats b;
  for (double x : {1.0, 2.0, 3.0}) {
    a.add(x);
    b.add(1000 * x);
  }
  EXPECT_NEAR(a.rel_stddev(), b.rel_stddev(), 1e-12);
}

TEST(TCritical, MatchesTableValues) {
  EXPECT_NEAR(t_critical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 19), 2.093, 1e-3);
  EXPECT_NEAR(t_critical(0.99, 19), 2.861, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 1000), 1.96, 1e-3);
  EXPECT_NEAR(t_critical(0.99, 1000), 2.576, 1e-3);
}

TEST(TCritical, DecreasesWithDf) {
  for (std::size_t df = 2; df < 40; ++df) {
    EXPECT_LE(t_critical(0.95, df), t_critical(0.95, df - 1)) << df;
  }
}

TEST(CiHalfwidth, ShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  // Same alternating spread, more samples -> tighter CI.
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 9.0 : 11.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 9.0 : 11.0);
  EXPECT_GT(small.ci_halfwidth(0.95), large.ci_halfwidth(0.95));
  EXPECT_GT(large.ci_halfwidth(0.99), large.ci_halfwidth(0.95));
}

TEST(Percentiles, MedianMatchesHandComputation) {
  RunningStats odd;
  for (double x : {5.0, 1.0, 3.0}) odd.add(x);
  EXPECT_DOUBLE_EQ(odd.median(), 3.0);

  RunningStats even;
  for (double x : {4.0, 1.0, 3.0, 2.0}) even.add(x);
  EXPECT_DOUBLE_EQ(even.median(), 2.5);  // interpolated between 2 and 3

  RunningStats one;
  one.add(7.0);
  EXPECT_DOUBLE_EQ(one.median(), 7.0);
}

TEST(Percentiles, LinearInterpolation) {
  RunningStats rs;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(rs.percentile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(rs.percentile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(rs.percentile(0.25), 20.0);   // rank 1 exactly
  EXPECT_DOUBLE_EQ(rs.percentile(0.125), 15.0);  // halfway 10..20
}

TEST(MedianCi, DeterministicAndBracketsMedian) {
  RunningStats rs;
  for (int i = 0; i < 40; ++i) rs.add(100.0 + (i % 7) - 3.0);
  const Interval a = rs.median_ci();
  const Interval b = rs.median_ci();
  EXPECT_DOUBLE_EQ(a.low, b.low);  // seeded bootstrap: bit-identical
  EXPECT_DOUBLE_EQ(a.high, b.high);
  EXPECT_LE(a.low, rs.median());
  EXPECT_GE(a.high, rs.median());
  EXPECT_LT(a.low, a.high);

  // A different seed resamples differently but stays near the median.
  const Interval c = rs.median_ci(0.95, 200, 12345);
  EXPECT_LE(c.low, rs.median());
  EXPECT_GE(c.high, rs.median());
}

TEST(MedianCi, DegeneratesForTinySamples) {
  RunningStats rs;
  rs.add(5.0);
  rs.add(6.0);
  const Interval i = rs.median_ci();
  EXPECT_DOUBLE_EQ(i.low, rs.median());
  EXPECT_DOUBLE_EQ(i.high, rs.median());
}

TEST(MedianCi, ConstantSamplesHaveZeroWidth) {
  RunningStats rs;
  for (int i = 0; i < 25; ++i) rs.add(42.0);
  const Interval i = rs.median_ci();
  EXPECT_DOUBLE_EQ(i.low, 42.0);
  EXPECT_DOUBLE_EQ(i.high, 42.0);
}

TEST(MeanCi, MatchesTBasedHalfwidth) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  const Interval i = rs.mean_ci(0.95);
  EXPECT_DOUBLE_EQ(i.low, rs.mean() - rs.ci_halfwidth(0.95));
  EXPECT_DOUBLE_EQ(i.high, rs.mean() + rs.ci_halfwidth(0.95));
}

TEST(Summarize, HandlesEmptyAndFilled) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({1.0, 2.0, 3.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 3.0);
}

}  // namespace
}  // namespace emc
