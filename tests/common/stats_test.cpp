#include <gtest/gtest.h>

#include <cmath>

#include "emc/common/stats.hpp"

namespace emc {
namespace {

TEST(RunningStats, MeanAndStddevMatchHandComputation) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroSpread) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.rel_stddev(), 0.0);
  EXPECT_EQ(rs.ci_halfwidth(0.95), 0.0);
}

TEST(RunningStats, RelStddevIsScaleFree) {
  RunningStats a;
  RunningStats b;
  for (double x : {1.0, 2.0, 3.0}) {
    a.add(x);
    b.add(1000 * x);
  }
  EXPECT_NEAR(a.rel_stddev(), b.rel_stddev(), 1e-12);
}

TEST(TCritical, MatchesTableValues) {
  EXPECT_NEAR(t_critical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 19), 2.093, 1e-3);
  EXPECT_NEAR(t_critical(0.99, 19), 2.861, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 1000), 1.96, 1e-3);
  EXPECT_NEAR(t_critical(0.99, 1000), 2.576, 1e-3);
}

TEST(TCritical, DecreasesWithDf) {
  for (std::size_t df = 2; df < 40; ++df) {
    EXPECT_LE(t_critical(0.95, df), t_critical(0.95, df - 1)) << df;
  }
}

TEST(CiHalfwidth, ShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  // Same alternating spread, more samples -> tighter CI.
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 9.0 : 11.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 9.0 : 11.0);
  EXPECT_GT(small.ci_halfwidth(0.95), large.ci_halfwidth(0.95));
  EXPECT_GT(large.ci_halfwidth(0.99), large.ci_halfwidth(0.95));
}

TEST(Summarize, HandlesEmptyAndFilled) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({1.0, 2.0, 3.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 3.0);
}

}  // namespace
}  // namespace emc
