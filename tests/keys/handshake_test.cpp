// The lossy-link handshake: clean-fabric agreement, survival of a 30%
// loss continental WAN path with zero app-visible errors, bit-exact
// same-seed replay, the fail-closed retry budget, key_mgmt billing,
// and the usage guards.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "emc/keys/derive.hpp"
#include "emc/keys/handshake.hpp"
#include "emc/mpi/world.hpp"
#include "emc/netsim/wan.hpp"
#include "emc/trace/trace.hpp"

namespace emc::keys {
namespace {

using mpi::Comm;
using mpi::WorldConfig;

const crypto::DhGroup& group() {
  static const crypto::DhGroup g = crypto::generate_test_group(192, 42);
  return g;
}

WorldConfig clean_world() {
  WorldConfig config;
  config.cluster.num_nodes = 2;
  config.cluster.ranks_per_node = 1;
  config.cluster.inter = net::ethernet_10g();
  config.recv_timeout = 0.05;
  return config;
}

/// Two ranks joined by a continental WAN path dropping @p p_drop of
/// frames independently in each direction. recv_timeout must cover
/// the ~40 ms one-way latency plus jitter, or every wait times out.
WorldConfig lossy_world(double p_drop, std::uint64_t seed) {
  WorldConfig config;
  config.cluster.num_nodes = 2;
  config.cluster.ranks_per_node = 1;
  config.cluster.inter = net::ethernet_10g();
  config.cluster.links.push_back(
      {0, 1, net::wan_link(net::wan_continental(), p_drop, 2e-3, seed)});
  config.cluster.links.push_back(
      {1, 0, net::wan_link(net::wan_continental(), p_drop, 2e-3, seed + 1)});
  config.recv_timeout = 0.25;
  return config;
}

/// A loss-tolerant retry policy both endpoints agree on: enough
/// budget that the responder's timeout-driven waits survive the
/// initiator's backoff, and a bounded backoff so the linger window
/// stays short.
HandshakeConfig lossy_config(std::uint64_t seed) {
  HandshakeConfig cfg;
  cfg.seed = seed;
  cfg.max_attempts = 25;
  cfg.backoff_max = 0.5;
  return cfg;
}

struct EndpointOutcome {
  Bytes chain;
  int attempts = 0;
  double elapsed = 0.0;
  bool initiator = false;
  bool failed = false;
};

struct RunOutcome {
  std::array<EndpointOutcome, 2> ep;
  double end_time = 0.0;
};

RunOutcome run_handshake(const WorldConfig& world, const HandshakeConfig& cfg) {
  RunOutcome out;
  out.end_time = mpi::run_world(world, [&](Comm& comm) {
    EndpointOutcome& o = out.ep[static_cast<std::size_t>(comm.rank())];
    try {
      HandshakeResult res = link_handshake(comm, 1 - comm.rank(), group(), cfg);
      o.chain = res.chain;
      o.attempts = res.attempts;
      o.elapsed = res.elapsed;
      o.initiator = res.initiator;
    } catch (const HandshakeFailed& e) {
      o.failed = true;
      o.attempts = e.attempts;
    }
  });
  return out;
}

TEST(Handshake, CleanLinkAgreesFirstAttempt) {
  const RunOutcome out = run_handshake(clean_world(), {});
  for (const auto& o : out.ep) {
    ASSERT_FALSE(o.failed);
    EXPECT_EQ(o.attempts, 1);
    EXPECT_GT(o.elapsed, 0.0);
  }
  EXPECT_TRUE(out.ep[0].initiator);   // lower rank initiates
  EXPECT_FALSE(out.ep[1].initiator);
  ASSERT_EQ(out.ep[0].chain.size(), kChainBytes);
  EXPECT_EQ(out.ep[0].chain, out.ep[1].chain);
}

TEST(Handshake, BillsAsymmetricCryptoOnTheKeyMgmtLane) {
  WorldConfig config = clean_world();
  auto rec = std::make_shared<trace::TraceRecorder>(trace::Config{},
                                                    /*num_ranks=*/2);
  config.trace = rec;
  const RunOutcome out = run_handshake(config, {});
  ASSERT_FALSE(out.ep[0].failed);
  const HandshakeConfig defaults;
  for (int rank = 0; rank < 2; ++rank) {
    const double key_mgmt = rec->category_seconds(
        rank)[static_cast<std::size_t>(trace::Category::kKeyMgmt)];
    // One keygen + one shared-secret per endpoint, analytic cost.
    EXPECT_NEAR(key_mgmt, defaults.keygen_cost + defaults.shared_secret_cost,
                1e-12)
        << "rank " << rank;
  }
}

TEST(Handshake, SurvivesThirtyPercentLossWithZeroAppErrors) {
  const RunOutcome out =
      run_handshake(lossy_world(0.30, 17), lossy_config(0xc0ffee));
  for (const auto& o : out.ep) {
    ASSERT_FALSE(o.failed) << "budget exhausted under 30% loss";
    EXPECT_GE(o.attempts, 1);
    EXPECT_LE(o.attempts, 25);
  }
  ASSERT_EQ(out.ep[0].chain.size(), kChainBytes);
  EXPECT_EQ(out.ep[0].chain, out.ep[1].chain);
}

TEST(Handshake, LossyRunsReplayBitExactly) {
  const WorldConfig world = lossy_world(0.30, 99);
  const HandshakeConfig cfg = lossy_config(0xfeed);
  const RunOutcome a = run_handshake(world, cfg);
  const RunOutcome b = run_handshake(world, cfg);
  EXPECT_EQ(a.end_time, b.end_time);  // bit-exact virtual time
  for (std::size_t r = 0; r < 2; ++r) {
    ASSERT_FALSE(a.ep[r].failed);
    EXPECT_EQ(a.ep[r].chain, b.ep[r].chain) << "rank " << r;
    EXPECT_EQ(a.ep[r].attempts, b.ep[r].attempts) << "rank " << r;
    EXPECT_EQ(a.ep[r].elapsed, b.ep[r].elapsed) << "rank " << r;
  }
  // A different handshake seed lands on a different chain.
  HandshakeConfig other = cfg;
  other.seed ^= 1;
  const RunOutcome c = run_handshake(world, other);
  ASSERT_FALSE(c.ep[0].failed);
  EXPECT_NE(c.ep[0].chain, a.ep[0].chain);
}

TEST(Handshake, InstanceSeparatesSuccessiveHandshakes) {
  const WorldConfig world = clean_world();
  HandshakeConfig cfg;
  const RunOutcome first = run_handshake(world, cfg);
  cfg.instance = 1;
  const RunOutcome second = run_handshake(world, cfg);
  ASSERT_FALSE(first.ep[0].failed);
  ASSERT_FALSE(second.ep[0].failed);
  // Same seed, new instance: a fresh chain (quarantine re-handshake).
  EXPECT_NE(first.ep[0].chain, second.ep[0].chain);
  EXPECT_EQ(second.ep[0].chain, second.ep[1].chain);
}

TEST(Handshake, BudgetExhaustionFailsClosedOnBothEnds) {
  HandshakeConfig cfg;
  cfg.max_attempts = 3;
  const RunOutcome out = run_handshake(lossy_world(1.0, 5), cfg);
  for (const auto& o : out.ep) {
    EXPECT_TRUE(o.failed);
    EXPECT_EQ(o.attempts, 3);
    EXPECT_TRUE(o.chain.empty()) << "no half-keyed link on failure";
  }
}

TEST(Handshake, GuardsUsageErrors) {
  // recv_timeout = 0 means loss could block forever: refused up front.
  WorldConfig no_timeout = clean_world();
  no_timeout.recv_timeout = 0.0;
  std::array<bool, 2> rejected{};
  mpi::run_world(no_timeout, [&](Comm& comm) {
    try {
      (void)link_handshake(comm, 1 - comm.rank(), group(), {});
    } catch (const std::invalid_argument&) {
      rejected[static_cast<std::size_t>(comm.rank())] = true;
    }
  });
  EXPECT_TRUE(rejected[0]);
  EXPECT_TRUE(rejected[1]);

  std::array<bool, 2> bad_peer{};
  mpi::run_world(clean_world(), [&](Comm& comm) {
    try {
      (void)link_handshake(comm, comm.rank(), group(), {});  // self
    } catch (const std::invalid_argument&) {
      bad_peer[static_cast<std::size_t>(comm.rank())] = true;
    }
  });
  EXPECT_TRUE(bad_peer[0]);
  EXPECT_TRUE(bad_peer[1]);
}

}  // namespace
}  // namespace emc::keys
