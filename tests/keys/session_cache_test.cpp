// Epoch-bound session cache: strict LRU eviction, epoch-floor and
// whole-link retirement, counter accounting, and the bounded-resident
// guarantee under millions of inserted sessions.
#include <gtest/gtest.h>

#include "emc/crypto/provider.hpp"
#include "emc/keys/session_cache.hpp"

namespace emc::keys {
namespace {

const crypto::Provider& provider() {
  return crypto::provider("boringssl-sim");
}

crypto::AeadKeyPtr key_for(std::uint64_t link, std::uint32_t epoch) {
  Bytes raw(32);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::uint8_t>(link * 131 + epoch * 31 + i);
  }
  return provider().make_key(raw);
}

TEST(SessionCache, HitAndMissCounters) {
  SessionCache cache({.capacity = 8});
  EXPECT_EQ(cache.get(1, 0), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  const crypto::AeadKey* put = cache.put(1, 0, key_for(1, 0));
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(cache.get(1, 0), put);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.get(1, 1), nullptr);  // other epoch is its own entry
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SessionCache, LruEvictionAtCapacity) {
  SessionCache cache({.capacity = 3});
  cache.put(1, 0, key_for(1, 0));
  cache.put(2, 0, key_for(2, 0));
  cache.put(3, 0, key_for(3, 0));
  // Touch link 1 so link 2 becomes the LRU victim.
  EXPECT_NE(cache.get(1, 0), nullptr);
  cache.put(4, 0, key_for(4, 0));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.get(2, 0), nullptr);  // evicted
  EXPECT_NE(cache.get(1, 0), nullptr);
  EXPECT_NE(cache.get(3, 0), nullptr);
  EXPECT_NE(cache.get(4, 0), nullptr);
}

TEST(SessionCache, RetireBelowDropsOnlyOldEpochsOfThatLink) {
  SessionCache cache({.capacity = 16});
  for (std::uint32_t e = 0; e < 4; ++e) {
    cache.put(7, e, key_for(7, e));
    cache.put(9, e, key_for(9, e));
  }
  cache.retire_below(7, 2);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.get(7, 0), nullptr);
  EXPECT_EQ(cache.get(7, 1), nullptr);
  EXPECT_NE(cache.get(7, 2), nullptr);
  EXPECT_NE(cache.get(7, 3), nullptr);
  for (std::uint32_t e = 0; e < 4; ++e) {
    EXPECT_NE(cache.get(9, e), nullptr) << "link 9 epoch " << e;
  }
}

TEST(SessionCache, RetireLinkDropsEveryEpoch) {
  SessionCache cache({.capacity = 16});
  for (std::uint32_t e = 0; e < 3; ++e) cache.put(5, e, key_for(5, e));
  cache.put(6, 0, key_for(6, 0));
  cache.retire_link(5);
  EXPECT_EQ(cache.size(), 1u);
  for (std::uint32_t e = 0; e < 3; ++e) {
    EXPECT_EQ(cache.get(5, e), nullptr) << "epoch " << e;
  }
  EXPECT_NE(cache.get(6, 0), nullptr);
}

TEST(SessionCache, ReplacingAnEntryKeepsSizeStable) {
  SessionCache cache({.capacity = 4});
  const crypto::AeadKey* first = cache.put(1, 0, key_for(1, 0));
  const crypto::AeadKey* second = cache.put(1, 0, key_for(2, 9));
  EXPECT_NE(second, nullptr);
  (void)first;  // replaced (and destroyed); only the size is checkable
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SessionCache, MillionsOfSessionsStayBounded) {
  // ROADMAP scale drill: two million (link, epoch) sessions through a
  // quarter-million-entry cache. Residency must never exceed the
  // capacity, every overflow must be an eviction, and the final
  // generation must still be resident (strict LRU).
  constexpr std::size_t kCapacity = std::size_t{1} << 18;
  constexpr std::uint64_t kSessions = 2'000'000;
  SessionCache cache({.capacity = kCapacity});
  for (std::uint64_t s = 0; s < kSessions; ++s) {
    cache.put(s, 0, key_for(s, 0));
    ASSERT_LE(cache.size(), kCapacity);
  }
  EXPECT_EQ(cache.size(), kCapacity);
  EXPECT_EQ(cache.stats().evictions, kSessions - kCapacity);
  // The newest kCapacity links are resident, the oldest are gone.
  EXPECT_NE(cache.get(kSessions - 1, 0), nullptr);
  EXPECT_NE(cache.get(kSessions - kCapacity, 0), nullptr);
  EXPECT_EQ(cache.get(0, 0), nullptr);
  EXPECT_EQ(cache.get(kSessions - kCapacity - 1, 0), nullptr);
}

}  // namespace
}  // namespace emc::keys
