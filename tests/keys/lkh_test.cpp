// LKH group-key tree: O(log N) rekey fan-out, eviction and rejoin
// secrecy, the frame codec, and the transplant/stale-frame rejections
// the compromise-recovery drill depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "emc/keys/lkh.hpp"

namespace emc::keys {
namespace {

std::size_t log2_ceil(std::size_t n) {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

TEST(LkhTree, BuildsOverMembersAndAgreesOnRoot) {
  LkhTree tree(6);
  EXPECT_EQ(tree.capacity(), 8);  // next power of two
  EXPECT_EQ(tree.alive(), 6);
  EXPECT_EQ(tree.full_reexchange_messages(), 5u);
  const Bytes root = tree.group_key();
  EXPECT_EQ(root.size(), tree.config().key_bytes);
  for (int m = 0; m < 6; ++m) {
    EXPECT_EQ(tree.member_view(m).group_key(), root) << "member " << m;
  }
  EXPECT_THROW((void)tree.member_view(6), std::invalid_argument);
}

TEST(LkhTree, EvictionRotatesPathAndLocksTheEvicteeOut) {
  LkhTree tree(8);
  const Bytes old_root = tree.group_key();
  std::vector<LkhMemberView> views;
  for (int m = 0; m < 8; ++m) views.push_back(tree.member_view(m));

  const LkhBatch batch = tree.remove_member(3);
  EXPECT_EQ(tree.alive(), 7);
  EXPECT_LE(batch.frames.size(), 2 * log2_ceil(8));
  const Bytes new_root = tree.group_key();
  EXPECT_NE(new_root, old_root);

  for (int m = 0; m < 8; ++m) {
    const bool updated = views[static_cast<std::size_t>(m)].apply(batch.frames);
    if (m == 3) {
      // The evicted member holds none of the wrapping keys: nothing
      // installs, its stale root no longer matches the group.
      EXPECT_FALSE(updated);
      EXPECT_EQ(views[3].group_key(), old_root);
    } else {
      EXPECT_TRUE(updated) << "member " << m;
      EXPECT_EQ(views[static_cast<std::size_t>(m)].group_key(), new_root)
          << "member " << m;
    }
  }
}

TEST(LkhTree, RejoinRotatesSoTheNewcomerCannotReadPreJoinTraffic) {
  LkhTree tree(4);
  std::vector<LkhMemberView> views;
  for (int m = 0; m < 4; ++m) views.push_back(tree.member_view(m));
  const LkhBatch evict = tree.remove_member(1);
  for (const int m : {0, 2, 3}) {
    ASSERT_TRUE(views[static_cast<std::size_t>(m)].apply(evict.frames));
  }
  const Bytes pre_join_root = tree.group_key();

  const LkhBatch join = tree.add_member(1);
  EXPECT_EQ(tree.alive(), 4);
  const Bytes post_join_root = tree.group_key();
  EXPECT_NE(post_join_root, pre_join_root);  // backward secrecy
  // The newcomer is provisioned via a fresh view, not frames.
  LkhMemberView fresh = tree.member_view(1);
  EXPECT_EQ(fresh.group_key(), post_join_root);
  // Existing members follow via the join batch.
  for (const int m : {0, 2, 3}) {
    ASSERT_TRUE(views[static_cast<std::size_t>(m)].apply(join.frames));
    EXPECT_EQ(views[static_cast<std::size_t>(m)].group_key(), post_join_root);
  }
}

TEST(LkhTree, FrameCodecRoundTripsAndRejectsBadLengths) {
  LkhTree tree(8);
  const LkhBatch batch = tree.remove_member(5);
  ASSERT_FALSE(batch.frames.empty());
  const Bytes wire = serialize_frames(batch.frames);
  EXPECT_EQ(wire.size(),
            4 + batch.frames.size() *
                    lkh_frame_bytes(tree.config().key_bytes));
  const std::vector<LkhFrame> back =
      deserialize_frames(wire, tree.config().key_bytes);
  ASSERT_EQ(back.size(), batch.frames.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].node, batch.frames[i].node);
    EXPECT_EQ(back[i].wrap_node, batch.frames[i].wrap_node);
    EXPECT_EQ(back[i].version, batch.frames[i].version);
    EXPECT_EQ(back[i].wire, batch.frames[i].wire);
  }
  EXPECT_THROW((void)deserialize_frames(BytesView(wire.data(), 2), 32),
               std::invalid_argument);
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_THROW((void)deserialize_frames(truncated, tree.config().key_bytes),
               std::invalid_argument);
}

TEST(LkhTree, TransplantedFramesNeverInstall) {
  LkhTree tree(8);
  LkhMemberView view = tree.member_view(0);
  LkhBatch batch = tree.remove_member(7);
  const Bytes expected = tree.group_key();
  // Retarget every frame at a different node: the AAD binds (node,
  // wrap_node, version), so unwrap fails and nothing installs.
  std::vector<LkhFrame> forged = batch.frames;
  for (LkhFrame& f : forged) f.node = f.node == 1 ? 2 : 1;
  EXPECT_FALSE(view.apply(forged));
  // The untampered batch still lands afterwards.
  EXPECT_TRUE(view.apply(batch.frames));
  EXPECT_EQ(view.group_key(), expected);
}

TEST(LkhTree, StaleFramesOfAnOldVersionAreIgnoredAfterNewerOnes) {
  LkhTree tree(4);
  LkhMemberView view = tree.member_view(0);
  LkhBatch first = tree.remove_member(3);
  LkhBatch second = tree.remove_member(2);
  ASSERT_TRUE(view.apply(first.frames));
  ASSERT_TRUE(view.apply(second.frames));
  const Bytes current = view.group_key();
  EXPECT_EQ(current, tree.group_key());
  // Replaying the older batch cannot roll the view back: the old
  // wrapping keys were rotated away, so the frames no longer unwrap.
  EXPECT_FALSE(view.apply(first.frames));
  EXPECT_EQ(view.group_key(), current);
}

TEST(LkhTree, RekeyCostGrowsLogarithmicallyNotLinearly) {
  // The acceptance curve bench_keys plots, asserted at its endpoints:
  // evicting one member of N costs <= 2*log2(N) frames while a flat
  // re-exchange costs N-1 messages.
  for (const int n : {8, 64, 1024}) {
    LkhTree tree(n);
    const std::size_t full = tree.full_reexchange_messages();
    const LkhBatch batch = tree.remove_member(n / 2);
    EXPECT_LE(batch.frames.size(),
              2 * log2_ceil(static_cast<std::size_t>(n)))
        << "N=" << n;
    if (n >= 64) {
      EXPECT_LT(batch.frames.size(), full / 2) << "N=" << n;
    }
  }
}

TEST(LkhTree, GuardsAgainstInvalidMembership) {
  EXPECT_THROW(LkhTree bad(1), std::invalid_argument);
  LkhTree tree(2);
  EXPECT_THROW((void)tree.remove_member(5), std::invalid_argument);
  EXPECT_THROW((void)tree.add_member(0), std::invalid_argument);  // alive
  (void)tree.remove_member(0);
  // The last member can never be evicted — an empty group has no key.
  EXPECT_THROW((void)tree.remove_member(1), std::invalid_argument);
}

}  // namespace
}  // namespace emc::keys
