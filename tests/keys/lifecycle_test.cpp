// End-to-end key lifecycle: keyring-backed SecureComm traffic that
// ratchets mid-run without stopping, fail-closed unknown/quarantined
// links, the compromise-recovery drill (quarantine -> re-handshake ->
// old keys dead), grace-window drain and expiry, and the LKH-backed
// crash rekey over a real recovered communicator.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>

#include "emc/ft/recover.hpp"
#include "emc/keys/derive.hpp"
#include "emc/keys/handshake.hpp"
#include "emc/keys/keyring.hpp"
#include "emc/keys/lkh.hpp"
#include "emc/mpi/world.hpp"
#include "emc/secure_mpi/secure_comm.hpp"

namespace emc::keys {
namespace {

using mpi::Comm;
using mpi::WorldConfig;

WorldConfig plain_world(int ranks, double recv_timeout = 0.0) {
  WorldConfig config;
  config.cluster.num_nodes = ranks;
  config.cluster.ranks_per_node = 1;
  config.cluster.inter = net::ethernet_10g();
  config.recv_timeout = recv_timeout;
  return config;
}

/// Timing-independent secure config: counter nonces for collectives,
/// no wall-clock billing, and this rank's own keyring.
secure::SecureConfig keyring_config(std::shared_ptr<LinkKeyring> ring,
                                    std::uint64_t seal_budget) {
  secure::SecureConfig sc;
  sc.nonce_mode = secure::NonceMode::kCounter;
  sc.charge_crypto = false;
  sc.nonce_rekey_threshold = seal_budget;
  sc.keyring = std::move(ring);
  return sc;
}

std::shared_ptr<LinkKeyring> make_ring(const RatchetConfig& ratchet = {}) {
  return std::make_shared<LinkKeyring>("boringssl-sim", 32, ratchet);
}

const Bytes& demo_chain() {
  static const Bytes chain(kChainBytes, 0xab);
  return chain;
}

TEST(KeyLifecycle, RatchetsMidRunWithoutStoppingTraffic) {
  // A tiny per-epoch seal budget turns the nonce-exhaustion guard
  // into frequent online rotations: fifty ping-pongs must cross
  // several epochs with zero app-visible errors and zero plaintext
  // mismatches, the receiver catching up each time the sender
  // ratchets first.
  constexpr int kIters = 50;
  std::array<std::uint64_t, 2> ratchets{};
  std::array<std::uint64_t, 2> catchups{};
  std::array<int, 2> delivered{};
  mpi::run_world(plain_world(2), [&](Comm& comm) {
    const int me = comm.rank();
    const int peer = 1 - me;
    auto ring = make_ring();
    ring->install(peer, demo_chain(), comm.now());
    secure::SecureComm sec(comm, keyring_config(ring, /*seal_budget=*/8));
    Bytes buf(64);
    for (int i = 0; i < kIters; ++i) {
      Bytes payload(64, static_cast<std::uint8_t>(i + me));
      if (me == 0) {
        sec.send(payload, peer, 5);
        (void)sec.recv(buf, peer, 6);
        delivered[0] += buf == Bytes(64, static_cast<std::uint8_t>(i + 1));
      } else {
        (void)sec.recv(buf, peer, 5);
        delivered[1] += buf == Bytes(64, static_cast<std::uint8_t>(i));
        sec.send(payload, peer, 6);
      }
    }
    ratchets[static_cast<std::size_t>(me)] = sec.counters().link_ratchets;
    catchups[static_cast<std::size_t>(me)] = sec.counters().catchup_opens;
    // Both sides cross epochs; the epoch advance itself may come from
    // this side's own seal budget or from catching up with the peer.
    EXPECT_GT(ring->counters().ratchets, 0u) << "rank " << me;
    EXPECT_GT(ring->epoch(peer), 0u) << "rank " << me;
    EXPECT_GT(ring->cache_stats().hits, 0u) << "rank " << me;
    if (me == 0) {
      // Rank 0 seals first each round, so its budget fires first and
      // the peer follows via catch-up — the online replacement of the
      // old fail-closed NonceExhaustedError.
      EXPECT_GT(ring->counters().budget_ratchets, 0u);
    }
  });
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(delivered[static_cast<std::size_t>(r)], kIters) << "rank " << r;
  }
  EXPECT_GT(ratchets[0], 0u);  // seal-triggered rotations on the leader
  // The follower observed the leader ratcheting first.
  EXPECT_GT(catchups[0] + catchups[1], 0u);
}

TEST(KeyLifecycle, UnknownAndQuarantinedLinksFailClosed) {
  std::array<bool, 2> unknown_rejected{};
  std::array<bool, 2> quarantine_rejected{};
  bool receiver_rejected = false;
  mpi::run_world(plain_world(2), [&](Comm& comm) {
    const int me = comm.rank();
    const int peer = 1 - me;
    auto ring = make_ring();
    secure::SecureComm sec(comm, keyring_config(ring, 0));
    Bytes payload(32, 0x11);
    // No handshake ran: sealing must refuse, not fall back to the
    // group key.
    try {
      sec.send(payload, peer, 3);
    } catch (const KeyringError&) {
      unknown_rejected[static_cast<std::size_t>(me)] = true;
    }
    ring->install(peer, demo_chain(), comm.now());
    ring->quarantine(peer);
    try {
      sec.send(payload, peer, 3);
    } catch (const LinkQuarantined&) {
      quarantine_rejected[static_cast<std::size_t>(me)] = true;
    }
    // Receiver-side fail-closed: rank 0 re-installs and seals a valid
    // message; rank 1 keeps the link quarantined, so nothing
    // authenticates and the open surfaces as an integrity failure.
    if (me == 0) {
      ring->install(peer, demo_chain(), comm.now());
      sec.send(payload, peer, 4);
    } else {
      Bytes buf(32);
      try {
        (void)sec.recv(buf, peer, 4);
      } catch (const secure::IntegrityError&) {
        receiver_rejected = true;
      }
      EXPECT_GT(sec.counters().auth_failures, 0u);
    }
  });
  EXPECT_TRUE(unknown_rejected[0]);
  EXPECT_TRUE(unknown_rejected[1]);
  EXPECT_TRUE(quarantine_rejected[0]);
  EXPECT_TRUE(quarantine_rejected[1]);
  EXPECT_TRUE(receiver_rejected);
}

TEST(KeyLifecycle, CompromiseDrillReHandshakeRestoresTraffic) {
  // The full drill over a real (clean) fabric: bootstrap handshake,
  // traffic, suspected compromise -> quarantine (fail closed),
  // re-handshake under a new instance, traffic resumes under keys the
  // old chain cannot derive.
  static const crypto::DhGroup dh = crypto::generate_test_group(192, 42);
  std::array<bool, 2> drilled{};
  mpi::run_world(plain_world(2, /*recv_timeout=*/0.05), [&](Comm& comm) {
    const int me = comm.rank();
    const int peer = 1 - me;
    auto ring = make_ring();

    HandshakeConfig hs;
    HandshakeResult boot = link_handshake(comm, peer, dh, hs);
    ring->install(peer, boot.chain, comm.now());
    secure_zero(boot.chain);

    secure::SecureComm sec(comm, keyring_config(ring, 0));
    Bytes payload(48, static_cast<std::uint8_t>(0x20 + me));
    Bytes buf(48);
    if (me == 0) {
      sec.send(payload, peer, 7);
    } else {
      (void)sec.recv(buf, peer, 7);
      ASSERT_EQ(buf, Bytes(48, 0x20));
    }

    // Compromise suspected: both ends quarantine. Sealing fails
    // closed until the link is re-keyed.
    ring->quarantine(peer);
    EXPECT_THROW(sec.send(payload, peer, 7), LinkQuarantined);

    hs.instance = 1;  // stragglers of instance 0 can never complete this
    HandshakeResult fresh = link_handshake(comm, peer, dh, hs);
    ring->install(peer, fresh.chain, comm.now());
    secure_zero(fresh.chain);
    EXPECT_EQ(ring->counters().installs, 2u);
    EXPECT_EQ(ring->counters().quarantines, 1u);

    Bytes again(48, static_cast<std::uint8_t>(0x30 + me));
    if (me == 0) {
      sec.send(again, peer, 8);
      (void)sec.recv(buf, peer, 8);
      EXPECT_EQ(buf, Bytes(48, 0x31));
    } else {
      (void)sec.recv(buf, peer, 8);
      EXPECT_EQ(buf, Bytes(48, 0x30));
      sec.send(again, peer, 8);
    }
    drilled[static_cast<std::size_t>(me)] = true;
  });
  EXPECT_TRUE(drilled[0]);
  EXPECT_TRUE(drilled[1]);
}

TEST(KeyLifecycle, OldKeyCiphertextsDieAfterReHandshake) {
  // The attacker's view of the drill, at the keyring layer: a
  // ciphertext captured under the pre-quarantine key must not open
  // under any candidate the re-keyed link offers.
  LinkKeyring ring("boringssl-sim", 32);
  ring.install(4, demo_chain(), 0.0);
  const LinkKeyring::SealKey sk = ring.seal_key(4, 0.0, 0);
  const Bytes plain = bytes_of("attack-window-payload");
  std::uint8_t nonce[crypto::kGcmNonceBytes] = {0x01};
  Bytes wire(plain.size() + crypto::kGcmTagBytes);
  sk.aead->seal(BytesView(nonce, sizeof nonce), {}, plain, wire);

  ring.quarantine(4);
  Bytes fresh_chain(kChainBytes, 0xcd);  // the re-handshake's new chain
  ring.install(4, fresh_chain, 1.0);

  std::vector<LinkKeyring::OpenCandidate> candidates;
  ring.open_candidates(4, 1.0, candidates);
  ASSERT_FALSE(candidates.empty());
  Bytes out(plain.size());
  for (const auto& c : candidates) {
    EXPECT_FALSE(c.aead->open(BytesView(nonce, sizeof nonce), {}, wire, out))
        << "old-key ciphertext opened under epoch " << c.epoch;
  }
}

TEST(KeyLifecycle, GraceWindowDrainsInFlightThenExpires) {
  // Sender and receiver keyrings share a chain. The sender ratchets
  // on its seal budget; a ciphertext sealed just before the ratchet
  // still opens within the grace window (drain), and is a dead letter
  // after it expires.
  const RatchetConfig ratchet{.grace_window = 1.0};
  LinkKeyring sender("boringssl-sim", 32, ratchet);
  LinkKeyring receiver("boringssl-sim", 32, ratchet);
  sender.install(2, demo_chain(), 0.0);
  receiver.install(2, demo_chain(), 0.0);

  // Seal one epoch-0 message, then force the budget ratchet.
  const LinkKeyring::SealKey old_sk = sender.seal_key(2, 0.0, /*budget=*/1);
  ASSERT_EQ(old_sk.epoch, 0u);
  const Bytes plain = bytes_of("in-flight-before-ratchet");
  std::uint8_t nonce[crypto::kGcmNonceBytes] = {0x07};
  Bytes old_wire(plain.size() + crypto::kGcmTagBytes);
  old_sk.aead->seal(BytesView(nonce, sizeof nonce), {}, plain, old_wire);

  const LinkKeyring::SealKey new_sk = sender.seal_key(2, 0.1, /*budget=*/1);
  ASSERT_EQ(new_sk.epoch, 1u);
  ASSERT_TRUE(new_sk.ratcheted);

  // The receiver sees the epoch-1 message first and catches up,
  // retaining epoch 0 for the grace window.
  EXPECT_EQ(receiver.note_open(2, 1, 0.2), LinkKeyring::OpenKind::kCatchup);

  const auto open_old = [&](double now) {
    std::vector<LinkKeyring::OpenCandidate> candidates;
    receiver.open_candidates(2, now, candidates);
    Bytes out(plain.size());
    for (const auto& c : candidates) {
      if (c.aead->open(BytesView(nonce, sizeof nonce), {}, old_wire, out)) {
        EXPECT_EQ(receiver.note_open(2, c.epoch, now),
                  LinkKeyring::OpenKind::kGrace);
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(open_old(0.5));   // within the window: drains
  EXPECT_FALSE(open_old(5.0));  // expired: the schedule is destroyed
  EXPECT_GT(receiver.counters().grace_opens, 0u);
  EXPECT_GT(receiver.counters().keys_wiped, 0u);
}

// ---------------------------------------------------------------------
// LKH-backed crash recovery over a real communicator.

WorldConfig crashing_world(int ranks, int crash_rank, double at) {
  WorldConfig config = plain_world(ranks);
  config.cluster.faults.crashes = {{.rank = crash_rank, .at = at}};
  return config;
}

/// Repeats @p op until the epoch is revoked (see tests/ft).
ft::RevokedError await_revocation(const std::function<void()>& op) {
  for (int it = 0; it < 100000; ++it) {
    try {
      op();
    } catch (const ft::RevokedError& e) {
      return e;
    }
  }
  throw std::runtime_error("revocation never arrived");
}

TEST(KeyLifecycle, LkhShrinkRekeysInLogFanOut) {
  // Rank 2 crashes mid-allgather; survivors agree, shrink, and rekey
  // via LKH frames instead of a flat re-exchange. The key server
  // (lowest survivor) holds the tree, members their views.
  const auto one_run = [] {
    struct RunResult {
      std::array<std::size_t, 4> frames{};
      std::array<std::size_t, 4> full{};
      std::array<bool, 4> data_ok{};
      Bytes old_group_root;
      Bytes new_group_root;
      double end_time = 0.0;
    };
    RunResult rr;
    LkhTree tree(4);
    rr.old_group_root = tree.group_key();
    std::array<LkhMemberView, 4> views;
    for (int m = 0; m < 4; ++m) views[static_cast<std::size_t>(m)] =
        tree.member_view(m);

    secure::SecureConfig sc;
    sc.nonce_mode = secure::NonceMode::kCounter;
    sc.charge_crypto = false;
    rr.end_time = mpi::run_world(
        crashing_world(4, 2, 2e-4), [&](Comm& comm) {
          const int me = comm.rank();
          secure::SecureComm sec(comm, sc);
          Bytes part(8, static_cast<std::uint8_t>(me));
          Bytes all(part.size() * static_cast<std::size_t>(comm.size()));
          (void)await_revocation([&] { sec.allgather(part, all); });

          const std::uint64_t mask = ft::agree(comm);
          ft::LkhRecovery rec = ft::shrink_secure_lkh(
              comm, mask, sc, me == 0 ? &tree : nullptr,
              &views[static_cast<std::size_t>(me)]);
          rr.frames[static_cast<std::size_t>(me)] = rec.rekey_frames;
          rr.full[static_cast<std::size_t>(me)] =
              rec.full_exchange_messages;

          // Encrypted traffic under the LKH-rotated group key.
          Bytes spart(8, static_cast<std::uint8_t>(0x50 + rec.comm->rank()));
          Bytes sall(spart.size() *
                     static_cast<std::size_t>(rec.comm->size()));
          rec.secure->allgather(spart, sall);
          bool ok = true;
          for (int r = 0; r < rec.comm->size(); ++r) {
            for (std::size_t b = 0; b < 8; ++b) {
              ok &= sall[static_cast<std::size_t>(r) * 8 + b] ==
                    static_cast<std::uint8_t>(0x50 + r);
            }
          }
          rr.data_ok[static_cast<std::size_t>(me)] = ok;
          if (me == 0) rr.new_group_root = tree.group_key();
        });
    return rr;
  };

  const auto rr = one_run();
  for (const int r : {0, 1, 3}) {
    EXPECT_TRUE(rr.data_ok[static_cast<std::size_t>(r)]) << "rank " << r;
    EXPECT_GT(rr.frames[static_cast<std::size_t>(r)], 0u) << "rank " << r;
    EXPECT_LE(rr.frames[static_cast<std::size_t>(r)], 4u)  // 2*log2(4)
        << "rank " << r;
    EXPECT_EQ(rr.full[static_cast<std::size_t>(r)], 2u) << "rank " << r;
  }
  // The eviction rotated the root: the crashed rank's stale key is out.
  EXPECT_NE(rr.new_group_root, rr.old_group_root);

  // Same seed, same crash script: the recovery replays bit-exactly.
  const auto rr2 = one_run();
  EXPECT_EQ(rr.end_time, rr2.end_time);
  EXPECT_EQ(rr.new_group_root, rr2.new_group_root);
}

}  // namespace
}  // namespace emc::keys
