// The single audited derivation path (keys::derive): label
// separation, wrap/unwrap authentication, transcript binding, and the
// epoch-seed mixer every rekey consumer shares.
#include <gtest/gtest.h>

#include "emc/crypto/provider.hpp"
#include "emc/keys/derive.hpp"

namespace emc::keys {
namespace {

const crypto::Provider& provider() {
  return crypto::provider("boringssl-sim");
}

Bytes secret(std::uint8_t fill, std::size_t n = 32) {
  return Bytes(n, fill);
}

TEST(KeyDerive, WrapUnwrapRoundTrips) {
  const Bytes pairwise = secret(0x11);
  const Bytes session = secret(0x22);
  const Bytes wire = wrap_key(provider(), pairwise, session);
  EXPECT_EQ(wire.size(), wrapped_key_bytes(session.size()));
  const std::optional<Bytes> back =
      unwrap_key(provider(), pairwise, wire, session.size());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, session);
}

TEST(KeyDerive, TamperedWrapFailsClosed) {
  const Bytes pairwise = secret(0x11);
  const Bytes session = secret(0x22);
  Bytes wire = wrap_key(provider(), pairwise, session);
  for (const std::size_t at : {std::size_t{0}, wire.size() / 2,
                               wire.size() - 1}) {
    Bytes bad = wire;
    bad[at] ^= 0x01;
    EXPECT_FALSE(unwrap_key(provider(), pairwise, bad, session.size())
                     .has_value())
        << "flip at byte " << at;
  }
  // The wrong pairwise secret never authenticates either.
  EXPECT_FALSE(
      unwrap_key(provider(), secret(0x12), wire, session.size()).has_value());
}

TEST(KeyDerive, WrapIsDeterministicPerSecret) {
  // The wrap nonce is derived, not drawn: the same (secret, session
  // key) wraps to identical wire, so replays are bit-exact, while a
  // different pairwise secret changes every byte region.
  const Bytes session = secret(0x33);
  const Bytes a = wrap_key(provider(), secret(0x01), session);
  const Bytes b = wrap_key(provider(), secret(0x01), session);
  const Bytes c = wrap_key(provider(), secret(0x02), session);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(KeyDerive, LabelsSeparateDomains) {
  // One input keying material, six derivations — no two may collide.
  const Bytes ikm = secret(0x5a);
  const Bytes chain_next = ratchet_next_chain(ikm);
  const Bytes epoch = epoch_key(ikm, 32);
  const Bytes group = group_session_key(ikm, 32);
  const Bytes master = link_master(ikm, {});
  EXPECT_EQ(chain_next.size(), kChainBytes);
  EXPECT_EQ(master.size(), std::size_t{64});
  EXPECT_NE(chain_next, epoch);
  EXPECT_NE(chain_next, group);
  EXPECT_NE(epoch, group);
  EXPECT_NE(Bytes(master.begin(), master.begin() + 32), chain_next);
  EXPECT_NE(Bytes(master.begin(), master.begin() + 32), epoch);
}

TEST(KeyDerive, RatchetChainStepsNeverRepeat) {
  Bytes chain = secret(0x77);
  Bytes prev_epoch_key = epoch_key(chain, 32);
  for (int e = 0; e < 64; ++e) {
    const Bytes next = ratchet_next_chain(chain);
    const Bytes k = epoch_key(next, 32);
    EXPECT_NE(next, chain) << "epoch " << e;
    EXPECT_NE(k, prev_epoch_key) << "epoch " << e;
    chain = next;
    prev_epoch_key = k;
  }
}

TEST(KeyDerive, ConfirmTagBindsTranscript) {
  const Bytes key = secret(0x42);
  const Bytes t1 = bytes_of("transcript-one");
  const Bytes t2 = bytes_of("transcript-two");
  EXPECT_EQ(confirm_tag(key, t1), confirm_tag(key, t1));
  EXPECT_NE(confirm_tag(key, t1), confirm_tag(key, t2));
  EXPECT_NE(confirm_tag(key, t1), confirm_tag(secret(0x43), t1));
}

TEST(KeyDerive, MixEpochSeedIsInjectiveAcrossSmallEpochs) {
  const std::uint64_t seed = 0xfeedface;
  EXPECT_EQ(mix_epoch_seed(seed, 3), mix_epoch_seed(seed, 3));
  for (std::uint64_t a = 0; a < 32; ++a) {
    for (std::uint64_t b = a + 1; b < 32; ++b) {
      EXPECT_NE(mix_epoch_seed(seed, a), mix_epoch_seed(seed, b))
          << a << " vs " << b;
    }
  }
}

}  // namespace
}  // namespace emc::keys
