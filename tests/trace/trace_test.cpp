// Tests for the virtual-time tracing subsystem: recorder mechanics,
// disabled-mode transparency, span ordering, attribution exactness,
// charge categorization, and byte-identical deterministic export.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "emc/mpi/comm.hpp"
#include "emc/mpi/world.hpp"
#include "emc/secure_mpi/secure_comm.hpp"
#include "emc/trace/export.hpp"
#include "emc/trace/trace.hpp"

namespace {

using namespace emc;

mpi::WorldConfig two_rank_config() {
  mpi::WorldConfig config;
  config.cluster.num_nodes = 2;
  config.cluster.ranks_per_node = 1;
  return config;
}

std::shared_ptr<trace::TraceRecorder> attach_recorder(
    mpi::WorldConfig& config, std::size_t ring_capacity = 1 << 14) {
  auto rec = std::make_shared<trace::TraceRecorder>(
      trace::Config{.ring_capacity = ring_capacity},
      config.cluster.total_ranks());
  config.trace = rec;
  return rec;
}

/// Two ranks bounce a message; size > 64 KB exercises rendezvous on
/// the default Ethernet profile, below it the eager path.
void pingpong_body(mpi::Comm& comm, std::size_t size, int iters) {
  Bytes payload(size, 0x5a);
  Bytes buf(size);
  for (int i = 0; i < iters; ++i) {
    if (comm.rank() == 0) {
      comm.send(payload, 1, 1);
      comm.recv(buf, 1, 2);
    } else {
      comm.recv(buf, 0, 1);
      comm.send(payload, 0, 2);
    }
  }
}

secure::SecureConfig analytic_secure_config() {
  secure::SecureConfig scfg;
  scfg.provider = "boringssl-sim";
  scfg.nonce_mode = secure::NonceMode::kCounter;
  scfg.cost_model = secure::CryptoCostModel{
      .seal_per_op = 0.5e-6,
      .seal_per_byte = 1.0 / (2.0 * 1381e6),
      .open_per_op = 0.5e-6,
      .open_per_byte = 1.0 / (2.0 * 1381e6),
  };
  return scfg;
}

void secure_pingpong_body(mpi::Comm& plain, std::size_t size, int iters) {
  secure::SecureComm comm(plain, analytic_secure_config());
  Bytes payload(size, 0x5a);
  Bytes buf(size);
  for (int i = 0; i < iters; ++i) {
    if (plain.rank() == 0) {
      comm.send(payload, 1, 1);
      comm.recv(buf, 1, 2);
    } else {
      comm.recv(buf, 0, 1);
      comm.send(payload, 0, 2);
    }
  }
}

double seconds_of(const trace::TraceRecorder& rec, int rank,
                  trace::Category cat) {
  return rec.category_seconds(rank)[static_cast<std::size_t>(cat)];
}

// ------------------------------------------------------------- recorder

TEST(TraceRecorder, RecordsEventsAndAccumulatesSeconds) {
  trace::TraceRecorder rec(trace::Config{.ring_capacity = 8}, 2);
  rec.record(0, trace::Category::kWire, 1.0, 1.5, 1, 100);
  rec.record(0, trace::Category::kCopy, 1.5, 1.75);
  rec.record(1, trace::Category::kSyncWait, 0.0, 2.0, 0);

  const auto events = rec.events(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].category, trace::Category::kWire);
  EXPECT_DOUBLE_EQ(events[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(events[0].end, 1.5);
  EXPECT_EQ(events[0].peer, 1);
  EXPECT_EQ(events[0].bytes, 100u);
  EXPECT_EQ(events[1].category, trace::Category::kCopy);

  EXPECT_DOUBLE_EQ(seconds_of(rec, 0, trace::Category::kWire), 0.5);
  EXPECT_DOUBLE_EQ(seconds_of(rec, 0, trace::Category::kCopy), 0.25);
  EXPECT_DOUBLE_EQ(seconds_of(rec, 1, trace::Category::kSyncWait), 2.0);
  EXPECT_EQ(rec.dropped(0), 0u);
}

TEST(TraceRecorder, ReversedIntervalClampsToZeroWidth) {
  trace::TraceRecorder rec(trace::Config{}, 1);
  rec.record(0, trace::Category::kWire, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(seconds_of(rec, 0, trace::Category::kWire), 0.0);
  EXPECT_DOUBLE_EQ(rec.events(0)[0].end, 2.0);
}

TEST(TraceRecorder, RingWrapDropsOldEventsButKeepsSummaryExact) {
  trace::TraceRecorder rec(trace::Config{.ring_capacity = 4}, 1);
  for (int i = 0; i < 10; ++i) {
    rec.record(0, trace::Category::kCompute, i, i + 0.5);
  }
  EXPECT_EQ(rec.recorded(0), 10u);
  EXPECT_EQ(rec.dropped(0), 6u);
  const auto events = rec.events(0);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().begin, 6.0);  // oldest retained
  EXPECT_DOUBLE_EQ(events.back().begin, 9.0);
  // The per-category totals never drop with the ring.
  EXPECT_DOUBLE_EQ(seconds_of(rec, 0, trace::Category::kCompute), 5.0);
}

TEST(TraceRecorder, CapacityRoundsUpToPowerOfTwo) {
  trace::TraceRecorder rec(trace::Config{.ring_capacity = 5}, 1);
  for (int i = 0; i < 8; ++i) {
    rec.record(0, trace::Category::kCopy, i, i + 1);
  }
  EXPECT_EQ(rec.dropped(0), 0u);  // 5 rounds up to 8
  rec.record(0, trace::Category::kCopy, 8, 9);
  EXPECT_EQ(rec.dropped(0), 1u);
}

TEST(TraceRecorder, MismatchedRankCountIsRejectedByWorld) {
  mpi::WorldConfig config = two_rank_config();
  config.trace = std::make_shared<trace::TraceRecorder>(trace::Config{}, 3);
  EXPECT_THROW(mpi::World world(config), std::invalid_argument);
}

// ------------------------------------------------------ disabled mode

TEST(TraceDisabled, NoRecorderIsAllocatedByDefault) {
  mpi::World world(two_rank_config());
  EXPECT_EQ(world.trace(), nullptr);
}

TEST(TraceDisabled, TracedRunReplaysUntracedTimelineExactly) {
  for (const std::size_t size : {std::size_t{4096}, std::size_t{256 * 1024}}) {
    mpi::WorldConfig untraced = two_rank_config();
    const double t_untraced = mpi::run_world(
        untraced, [&](mpi::Comm& c) { pingpong_body(c, size, 3); });

    mpi::WorldConfig traced = two_rank_config();
    attach_recorder(traced);
    const double t_traced = mpi::run_world(
        traced, [&](mpi::Comm& c) { pingpong_body(c, size, 3); });

    EXPECT_EQ(t_untraced, t_traced) << "size " << size;
  }
}

// ------------------------------------------------------- span structure

TEST(TraceSpans, PerRankSpansAreChronologicalAndNonOverlapping) {
  mpi::WorldConfig config = two_rank_config();
  const auto rec = attach_recorder(config);
  mpi::run_world(config, [](mpi::Comm& c) {
    pingpong_body(c, 256 * 1024, 2);  // rendezvous
    pingpong_body(c, 1024, 2);        // eager
  });

  for (int rank = 0; rank < 2; ++rank) {
    const auto events = rec->events(rank);
    ASSERT_FALSE(events.empty());
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_LE(events[i].begin, events[i].end);
      if (i > 0) {
        // A rank's instrumentation is strictly sequential: each span
        // begins at or after the previous one ended.
        EXPECT_GE(events[i].begin, events[i - 1].end - 1e-12)
            << "rank " << rank << " event " << i;
      }
    }
  }
}

// -------------------------------------------------------- attribution

TEST(TraceSummary, CategoriesPlusIdleSumToTotalExactly) {
  mpi::WorldConfig config = two_rank_config();
  const auto rec = attach_recorder(config);
  mpi::run_world(config,
                 [](mpi::Comm& c) { pingpong_body(c, 16 * 1024, 4); });

  const trace::Summary summary = trace::Summary::from(*rec);
  ASSERT_EQ(summary.rows.size(), 2u);
  for (const trace::SummaryRow& row : summary.rows) {
    EXPECT_GT(row.total, 0.0);
    double covered = row.idle;
    for (const double s : row.seconds) covered += s;
    EXPECT_DOUBLE_EQ(covered, row.total);  // exact by construction
    // The p2p instrumentation is gapless: idle is numerically zero.
    EXPECT_NEAR(row.idle, 0.0, 1e-9) << "rank " << row.rank;
  }
}

TEST(TraceSummary, SecureAnalyticPingpongHasNoIdleAndCryptoTime) {
  for (const std::size_t size :
       {std::size_t{16 * 1024}, std::size_t{256 * 1024}}) {
    mpi::WorldConfig config = two_rank_config();
    const auto rec = attach_recorder(config);
    mpi::run_world(
        config, [&](mpi::Comm& c) { secure_pingpong_body(c, size, 3); });

    const trace::Summary summary = trace::Summary::from(*rec);
    for (const trace::SummaryRow& row : summary.rows) {
      EXPECT_NEAR(row.idle, 0.0, 1e-9)
          << "size " << size << " rank " << row.rank;
      EXPECT_GT(row.crypto_pct(), 0.0);
      EXPECT_GT(row.wire_pct(), 0.0);
    }
  }
}

TEST(TraceSummary, AggregateSumsRanks) {
  trace::TraceRecorder rec(trace::Config{}, 2);
  rec.begin_run(0.0);
  rec.record(0, trace::Category::kWire, 0.0, 1.0);
  rec.record(1, trace::Category::kCryptoEncrypt, 0.0, 3.0);
  rec.note_rank_done(0, 2.0);
  rec.note_rank_done(1, 4.0);
  const trace::Summary summary = trace::Summary::from(rec);
  const trace::SummaryRow agg = summary.aggregate();
  EXPECT_DOUBLE_EQ(agg.total, 6.0);
  EXPECT_DOUBLE_EQ(
      agg.seconds[static_cast<std::size_t>(trace::Category::kWire)], 1.0);
  EXPECT_DOUBLE_EQ(agg.idle, 2.0);
  EXPECT_DOUBLE_EQ(agg.crypto_pct(), 50.0);
}

// ------------------------------------------------- charge attribution

TEST(TraceCharge, ProcessChargeIsRecordedAsCompute) {
  mpi::WorldConfig config = two_rank_config();
  const auto rec = attach_recorder(config);
  mpi::run_world(config, [](mpi::Comm& c) {
    volatile double sink = 0.0;
    c.process().charge([&] {
      for (int i = 0; i < 200000; ++i) sink = sink + 1.0;
    });
  });
  for (int rank = 0; rank < 2; ++rank) {
    EXPECT_GT(seconds_of(*rec, rank, trace::Category::kCompute), 0.0);
  }
}

TEST(TraceCharge, WallClockCryptoIsRetaggedNotCompute) {
  mpi::WorldConfig config = two_rank_config();
  const auto rec = attach_recorder(config);
  mpi::run_world(config, [](mpi::Comm& plain) {
    secure::SecureConfig scfg;  // wall-clock charging, no cost model
    scfg.provider = "boringssl-sim";
    secure::SecureComm comm(plain, scfg);
    Bytes payload(4096, 0x5a);
    Bytes buf(4096);
    if (plain.rank() == 0) {
      comm.send(payload, 1, 1);
      comm.recv(buf, 1, 2);
    } else {
      comm.recv(buf, 0, 1);
      comm.send(payload, 0, 2);
    }
  });
  for (int rank = 0; rank < 2; ++rank) {
    EXPECT_GT(seconds_of(*rec, rank, trace::Category::kCryptoEncrypt), 0.0);
    EXPECT_GT(seconds_of(*rec, rank, trace::Category::kCryptoDecrypt), 0.0);
    EXPECT_DOUBLE_EQ(seconds_of(*rec, rank, trace::Category::kCompute), 0.0);
  }
}

TEST(TraceCharge, AnalyticCostModelRecordsExactCryptoSeconds) {
  mpi::WorldConfig config = two_rank_config();
  const auto rec = attach_recorder(config);
  const std::size_t size = 4096;
  mpi::run_world(config,
                 [&](mpi::Comm& c) { secure_pingpong_body(c, size, 1); });
  const secure::CryptoCostModel m = *analytic_secure_config().cost_model;
  const double expected_seal =
      m.seal_per_op + static_cast<double>(size) * m.seal_per_byte;
  for (int rank = 0; rank < 2; ++rank) {
    // One seal and one open per rank per iteration.
    EXPECT_NEAR(seconds_of(*rec, rank, trace::Category::kCryptoEncrypt),
                expected_seal, 1e-12);
    EXPECT_NEAR(seconds_of(*rec, rank, trace::Category::kCryptoDecrypt),
                expected_seal, 1e-12);
  }
}

// ----------------------------------------------- faults + reliability

TEST(TraceArq, RetransmissionTimeIsAttributed) {
  mpi::WorldConfig config = two_rank_config();
  config.cluster.faults.seed = 7;
  config.cluster.faults.triggers.push_back(
      {.src = 0, .dst = 1, .nth = 0, .kind = net::FaultKind::kDrop});
  config.reliability.enabled = true;
  const auto rec = attach_recorder(config);
  mpi::run_world(config,
                 [](mpi::Comm& c) { pingpong_body(c, 1024, 2); });
  // The dropped first eager frame forces an ARQ dialogue whose cost
  // lands on the receiving rank's timeline.
  EXPECT_GT(seconds_of(*rec, 1, trace::Category::kArqRetransmit), 0.0);
}

// ------------------------------------------------------- export format

std::pair<std::string, std::string> export_run(std::uint64_t fault_seed) {
  mpi::WorldConfig config = two_rank_config();
  config.cluster.faults.seed = fault_seed;
  config.cluster.faults.p_drop = 0.05;
  config.cluster.faults.p_delay = 0.05;
  config.reliability.enabled = true;
  const auto rec = attach_recorder(config);
  mpi::run_world(config, [](mpi::Comm& c) {
    pingpong_body(c, 16 * 1024, 3);
    pingpong_body(c, 256 * 1024, 1);
  });
  std::ostringstream json;
  trace::ChromeTraceWriter writer(json);
  writer.add_world(*rec, "determinism", 0);
  writer.finish();
  std::ostringstream csv;
  trace::write_attribution_csv(csv, trace::Summary::from(*rec),
                               "determinism", /*header=*/true);
  return {json.str(), csv.str()};
}

TEST(TraceExport, SameSeedRunsAreByteIdentical) {
  const auto [json_a, csv_a] = export_run(42);
  const auto [json_b, csv_b] = export_run(42);
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(csv_a, csv_b);
  // And a different fault schedule produces a different trace.
  const auto [json_c, csv_c] = export_run(43);
  EXPECT_NE(json_a, json_c);
}

TEST(TraceExport, ChromeJsonHasExpectedShape) {
  const auto [json, csv] = export_run(1);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"sync_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"wire\""), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  // CSV: header + 2 rank rows + aggregate.
  EXPECT_NE(csv.find("config,rank,total_s"), std::string::npos);
  EXPECT_NE(csv.find("determinism,all,"), std::string::npos);
}

}  // namespace
