// emc-lint fixture: the meta-rules policing the escape hatch itself.
// An allow that suppresses nothing, lacks a reason, or names an
// unknown rule is a finding. This file is linted, never compiled.
#include "emc/common/annotations.hpp"

namespace fixture {

// EMC_LINT_ALLOW(det-rand): nothing below draws entropy // EXPECT: EMC-LINT-UNUSED-ALLOW
int f() { return 1; }

int g() {
  EMC_LINT_ALLOW(det-clock);  // EXPECT: EMC-LINT-BAD-ALLOW, EMC-LINT-UNUSED-ALLOW
  return 2;
}

// EMC_LINT_ALLOW(no-such-rule): bogus rule id // EXPECT: EMC-LINT-BAD-ALLOW
int h() { return 3; }

}  // namespace fixture
