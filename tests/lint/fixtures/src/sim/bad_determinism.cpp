// emc-lint fixture: EMC-DET-RAND / EMC-DET-CLOCK / EMC-DET-PTRKEY —
// ambient nondeterminism banned from the simulation core. This file is
// linted, never compiled.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <unordered_map>

namespace fixture {

unsigned seed_from_hardware() {
  std::random_device rd;  // EXPECT: EMC-DET-RAND
  return rd();
}

int ambient_rand() {
  return std::rand();  // EXPECT: EMC-DET-RAND
}

double wall_now() {
  const auto t = std::chrono::steady_clock::now();  // EXPECT: EMC-DET-CLOCK
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

struct Tracker {
  std::unordered_map<void*, int> by_addr;  // EXPECT: EMC-DET-PTRKEY
};

std::uint64_t addr_of(const int* p) {
  return reinterpret_cast<std::uintptr_t>(p);  // EXPECT: EMC-DET-PTRKEY
}

}  // namespace fixture
