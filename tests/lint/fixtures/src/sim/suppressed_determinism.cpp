// emc-lint fixture: every violation below carries a sanctioned
// EMC_LINT_ALLOW (comment and macro forms) — the analyzer must report
// ZERO findings and count 3 suppressions. This file is linted, never
// compiled.
#include <chrono>
#include <random>

#include "emc/common/annotations.hpp"

namespace fixture {

unsigned seeded_bootstrap() {
  // EMC_LINT_ALLOW(det-rand): fixture — seed bootstrap outside sim time
  std::random_device rd;
  return rd();
}

double wall_profile() {
  EMC_LINT_ALLOW(det-clock, "fixture - host-side profiling only");
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double wall_profile_comment_form() {
  // EMC_LINT_ALLOW(det-clock): fixture — second sanctioned site
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace fixture
