// emc-lint fixture: src/keys/ is in the secret-hygiene scope, so
// EMC-SECRET-WIPE must fire for handshake ephemerals (DH private
// scalars, shared secrets, chain seeds) that are not zeroized before
// scope exit, and for key-holding handshake state classes without a
// scrubbing destructor. This file is linted, never compiled.
#include <array>
#include <cstdint>
#include <vector>

using Bytes = std::vector<std::uint8_t>;

Bytes kem_mix(const Bytes&);
void send_frame(const Bytes&);
void secure_zero(Bytes&);

namespace fixture {

Bytes leaky_handshake() {
  Bytes dh_priv(32, 0);  // EXPECT: EMC-SECRET-WIPE
  Bytes shared_secret = kem_mix(dh_priv);  // EXPECT: EMC-SECRET-WIPE
  Bytes chain = kem_mix(shared_secret);
  send_frame(chain);
  return chain;  // the surviving output may leave; the ephemerals may not
}

Bytes careful_handshake() {
  Bytes dh_priv(32, 0);
  Bytes shared_secret = kem_mix(dh_priv);
  Bytes chain = kem_mix(shared_secret);
  secure_zero(dh_priv);
  secure_zero(shared_secret);
  return chain;
}

class LeakyHandshakeState {
 public:
  int attempts() const { return attempts_; }

 private:
  int attempts_ = 0;
  std::array<std::uint8_t, 32> chain_key_{};  // EXPECT: EMC-SECRET-WIPE
};

class WipedHandshakeState {
 public:
  ~WipedHandshakeState();  // scrubs chain_key_

 private:
  std::array<std::uint8_t, 32> chain_key_{};
};

}  // namespace fixture
