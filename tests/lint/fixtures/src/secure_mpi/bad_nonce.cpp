// emc-lint fixture: EMC-NONCE-SOURCE / EMC-NONCE-CONST.
// This file is linted, never compiled.
#include <cstdint>

namespace fixture {

struct Aead {
  void seal(const std::uint8_t* nonce, const std::uint8_t* pt,
            std::uint8_t* out);
};

void random_nonce(std::uint8_t* out, unsigned n);
void store_be64(std::uint8_t* out, std::uint64_t v);

void zero_nonce(Aead& key, const std::uint8_t* pt, std::uint8_t* out) {
  std::uint8_t fixed_iv[12] = {0};
  key.seal(fixed_iv, pt, out);  // EXPECT: EMC-NONCE-CONST
}

void ad_hoc_entropy(std::uint8_t* out) {
  random_nonce(out, 12);  // EXPECT: EMC-NONCE-SOURCE
}

void counter_nonce(Aead& key, const std::uint8_t* pt, std::uint8_t* out) {
  std::uint8_t ctr_iv[12] = {0};
  store_be64(ctr_iv + 4, 7);  // filled from the channel counter: OK
  key.seal(ctr_iv, pt, out);
}

}  // namespace fixture
