// emc-lint fixture: EMC-SECRET-LOG — key material must never reach a
// logging/serialization sink. This file is linted, never compiled.
#include <cstdio>
#include <string>

namespace fixture {

std::string to_hex(const unsigned char*, unsigned long);

void debug_dump(const unsigned char* session_key, unsigned long n) {
  std::printf("key=%s\n", to_hex(session_key, n).c_str());  // EXPECT: EMC-SECRET-LOG
}

void ok_dump(unsigned long key_len) {
  // Lengths of key material are public: no finding.
  std::printf("key_len=%lu\n", key_len);
}

}  // namespace fixture
