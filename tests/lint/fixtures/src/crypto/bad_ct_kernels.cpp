// emc-lint fixture: EMC-CT-BRANCH / EMC-CT-INDEX must fire inside
// kernel functions (block-cipher ABI names) and stay quiet elsewhere.
// This file is linted, never compiled.
#include <cstdint>

namespace fixture {

extern const std::uint8_t kLut[256];

void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) {
  std::uint8_t acc = in[0];
  if (acc != 0) {  // EXPECT: EMC-CT-BRANCH
    acc ^= 0x1b;
  }
  out[0] = kLut[in[1]];           // EXPECT: EMC-CT-INDEX
  out[1] = acc != 0 ? kLut[0] : acc;  // EXPECT: EMC-CT-BRANCH
}

void not_a_kernel(const std::uint8_t in[16], std::uint8_t* out) {
  // Same shapes outside the kernel ABI: no findings.
  if (in[0] != 0) {
    *out = kLut[in[1]];
  }
}

}  // namespace fixture
