// emc-lint fixture: EMC-SECRET-WIPE must fire for unwiped key-material
// locals and for key-holding classes without a scrubbing destructor.
// This file is linted, never compiled.
#include <array>
#include <cstdint>
#include <vector>

using Bytes = std::vector<std::uint8_t>;

void consume(const Bytes&);
void secure_zero(Bytes&);

namespace fixture {

void leaky_local() {
  Bytes session_key(32, 0);  // EXPECT: EMC-SECRET-WIPE
  consume(session_key);
}

void wiped_local() {
  Bytes session_key(32, 0);
  consume(session_key);
  secure_zero(session_key);
}

class KeyBox {
 public:
  int id() const { return 7; }

 private:
  std::array<std::uint8_t, 32> key_bytes{};  // EXPECT: EMC-SECRET-WIPE
};

}  // namespace fixture
