// emc-lint fixture: a branchless kernel with wiped key locals — the
// analyzer must report ZERO findings here. This file is linted, never
// compiled.
#include <cstddef>
#include <cstdint>
#include <vector>

using Bytes = std::vector<std::uint8_t>;

void secure_zero(Bytes&);

namespace fixture {

void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) {
  const std::uint8_t acc = in[0];
  const std::uint8_t mask = static_cast<std::uint8_t>(0 - (acc >> 7));
  out[0] = static_cast<std::uint8_t>((acc << 1) ^ (mask & 0x1b));
}

void derive(Bytes& out) {
  Bytes round_key(16, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] ^= round_key[i % 16];
  }
  secure_zero(round_key);
}

}  // namespace fixture
