#!/usr/bin/env python3
"""Golden-diagnostic tests for emc-lint over the fixture corpus.

Each fixture under tests/lint/fixtures/src/ marks every line where a
diagnostic must fire with an end-of-line comment:

    ... violating code ...  // EXPECT: EMC-SECRET-WIPE
    ... two diagnostics ... // EXPECT: EMC-A, EMC-B

The test asserts that the set of (line, diagnostic) pairs emitted by
the analyzer for that file EXACTLY equals the set of EXPECT markers —
so both missed findings and false positives fail the test.

Fixtures live under a fake `src/` root so the analyzer's directory
scoping (src/crypto kernels, src/sim determinism, ...) applies to them
exactly as it does to the real tree.

Run directly (`python3 tests/lint/run_lint_tests.py`) or via ctest
(test name `lint_fixtures`).
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent
REPO = TESTS_DIR.parent.parent
FIXTURES = TESTS_DIR / "fixtures"

sys.path.insert(0, str(REPO / "tools" / "lint"))

from emclint import engine, rules  # noqa: E402

_EXPECT_RE = re.compile(r"EXPECT:\s*([A-Z][A-Z0-9-]*(?:\s*,\s*[A-Z][A-Z0-9-]*)*)")


def expected_findings(path: Path) -> set:
    """(line, diag) pairs declared by // EXPECT: markers in a fixture."""
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        m = _EXPECT_RE.search(line)
        if m:
            for diag in m.group(1).split(","):
                out.add((lineno, diag.strip()))
    return out


def lint(rel: str) -> engine.FileResult:
    return engine.lint_file(FIXTURES / rel, rel)


class GoldenFixtureTests(unittest.TestCase):
    """One known-bad fixture per rule; findings must match EXPECT markers."""

    maxDiff = None

    def assert_golden(self, rel: str) -> engine.FileResult:
        res = lint(rel)
        self.assertIsNone(res.error, f"lint error in {rel}: {res.error}")
        actual = {(f.line, f.diag) for f in res.findings}
        self.assertEqual(expected_findings(FIXTURES / rel), actual,
                         f"diagnostic mismatch in {rel}")
        return res

    def test_secret_wipe(self):
        self.assert_golden("src/crypto/bad_secret_wipe.cpp")

    def test_ct_branch_and_index(self):
        self.assert_golden("src/crypto/bad_ct_kernels.cpp")

    def test_nonce_rules(self):
        self.assert_golden("src/secure_mpi/bad_nonce.cpp")

    def test_secret_log(self):
        self.assert_golden("src/secure_mpi/bad_secret_log.cpp")

    def test_keys_handshake_ephemerals(self):
        self.assert_golden("src/keys/bad_handshake_ephemeral.cpp")

    def test_determinism_rules(self):
        self.assert_golden("src/sim/bad_determinism.cpp")

    def test_allow_meta_rules(self):
        self.assert_golden("src/sim/bad_allows.cpp")

    def test_clean_file_has_zero_findings(self):
        res = lint("src/crypto/clean_kernel.cpp")
        self.assertIsNone(res.error)
        self.assertEqual([], res.findings)
        self.assertEqual([], res.suppressed)

    def test_every_rule_has_a_bad_fixture(self):
        """The corpus must exercise every diagnostic in the registry."""
        covered = set()
        for f in FIXTURES.rglob("*.cpp"):
            covered |= {d for _, d in expected_findings(f)}
        all_diags = {info.diag for info in rules.RULES}
        self.assertEqual(all_diags, covered,
                         "rules without a known-bad fixture")


class SuppressionTests(unittest.TestCase):
    """EMC_LINT_ALLOW must suppress, be counted, and be policed."""

    def test_allows_suppress_and_are_counted(self):
        res = lint("src/sim/suppressed_determinism.cpp")
        self.assertIsNone(res.error)
        self.assertEqual([], res.findings)
        self.assertEqual(3, len(res.suppressed))
        self.assertEqual({"EMC-DET-RAND", "EMC-DET-CLOCK"},
                         {f.diag for f in res.suppressed})
        # Every allow in the file was used exactly once.
        self.assertEqual([1, 1, 1], [a.uses for a in res.allows])

    def test_suppressions_reported_in_json(self):
        res = lint("src/sim/suppressed_determinism.cpp")
        doc = engine.render_json([res])
        self.assertEqual(0, doc["finding_count"])
        self.assertEqual(3, doc["suppressed_count"])
        rules_seen = {s["rule"] for s in doc["suppressions"]}
        self.assertEqual({"det-rand", "det-clock"}, rules_seen)


class CliTests(unittest.TestCase):
    """scripts/emc_lint.py end-to-end: exit codes and JSON artifact."""

    SCRIPT = REPO / "scripts" / "emc_lint.py"

    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), *argv],
            capture_output=True, text=True, cwd=str(REPO))

    def test_findings_exit_1_and_json(self):
        with tempfile.TemporaryDirectory() as td:
            out = Path(td) / "lint.json"
            proc = self.run_cli(
                "--root", str(FIXTURES), "--json", str(out), "--paths",
                str(FIXTURES / "src/sim/bad_determinism.cpp"))
            self.assertEqual(1, proc.returncode, proc.stdout + proc.stderr)
            doc = json.loads(out.read_text())
            self.assertEqual(5, doc["finding_count"])
            diags = {f["diag"] for f in doc["findings"]}
            self.assertEqual({"EMC-DET-RAND", "EMC-DET-CLOCK",
                              "EMC-DET-PTRKEY"}, diags)
            for f in doc["findings"]:
                self.assertTrue(f["hint"], "every finding carries a fix hint")

    def test_clean_exit_0(self):
        proc = self.run_cli(
            "--root", str(FIXTURES), "--paths",
            str(FIXTURES / "src/crypto/clean_kernel.cpp"))
        self.assertEqual(0, proc.returncode, proc.stdout + proc.stderr)

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        self.assertEqual(0, proc.returncode)
        for info in rules.RULES:
            self.assertIn(info.diag, proc.stdout)

    def test_usage_error_exit_2(self):
        proc = self.run_cli("--compile-commands", "/nonexistent/ccdb.json")
        self.assertEqual(2, proc.returncode)


class ClangFrontendTests(unittest.TestCase):
    """The clang-AST cross-check frontend; skipped when clang is absent."""

    def test_clang_frontend_degrades_gracefully(self):
        from emclint import clang_frontend
        if clang_frontend.clang_path() is None:
            self.skipTest("clang not installed in this environment")
        entry = {"file": str(FIXTURES / "src/sim/bad_determinism.cpp"),
                 "directory": str(REPO),
                 "command": "c++ -std=c++17 -c bad_determinism.cpp"}
        findings = clang_frontend.lint_tu(entry, FIXTURES)
        self.assertIsInstance(findings, list)


if __name__ == "__main__":
    unittest.main(verbosity=2)
