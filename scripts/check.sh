#!/usr/bin/env bash
# Full local gate: configure, build, and run the test suite under both
# the Release preset and the ASan+UBSan preset, then run emc-lint over
# the exported compile_commands.json and lint the docs (dangling
# relative links). Run from the repo root:
#
#   scripts/check.sh            # both presets + emc-lint + docs
#   scripts/check.sh default    # Release only (+ emc-lint + docs)
#   scripts/check.sh sanitize   # sanitizers only (+ emc-lint + docs)
#   scripts/check.sh tsan       # ThreadSanitizer (+ emc-lint + docs)
#
# Exits non-zero on the first configure/build/test/lint/docs failure.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default sanitize)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset"
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> [$preset] test"
  ctest --preset "$preset" -j "$jobs"
done

# emc-lint over the TU set of the first preset built above (every
# preset exports compile_commands.json; the TU list is identical).
case "${presets[0]}" in
  default) lint_db=build/compile_commands.json ;;
  *)       lint_db="build-${presets[0]}/compile_commands.json" ;;
esac
echo "==> emc-lint ($lint_db)"
python3 scripts/emc_lint.py --compile-commands "$lint_db"

echo "==> docs"
scripts/check_docs.sh

echo "==> all presets green: ${presets[*]}"
