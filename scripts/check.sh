#!/usr/bin/env bash
# Full local gate: configure, build, and run the test suite under both
# the Release preset and the ASan+UBSan preset, then lint the docs
# (dangling relative links). Run from the repo root:
#
#   scripts/check.sh            # both presets + docs
#   scripts/check.sh default    # Release only (+ docs)
#   scripts/check.sh sanitize   # sanitizers only (+ docs)
#
# Exits non-zero on the first configure/build/test/docs failure.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default sanitize)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset"
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> [$preset] test"
  ctest --preset "$preset" -j "$jobs"
done

echo "==> docs"
scripts/check_docs.sh

echo "==> all presets green: ${presets[*]}"
