#!/usr/bin/env bash
# Docs gate: fail on dangling relative links in README.md and
# docs/*.md. A link is every "](target)" occurrence; http(s)/mailto
# targets and pure in-page anchors are skipped, "#section" suffixes
# are stripped, and the rest must exist relative to the linking file.
#
#   scripts/check_docs.sh
set -euo pipefail

cd "$(dirname "$0")/.."

failures=0
files=(README.md docs/*.md)

for file in "${files[@]}"; do
  dir=$(dirname "$file")
  # Extract inline-link targets: "](...)" up to the closing paren.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|"#"*) continue ;;
    esac
    path="${target%%#*}"            # drop any #anchor suffix
    [ -n "$path" ] || continue
    # Badge/workflow links like ../../actions/... resolve on GitHub,
    # not in the tree; anything escaping the repo root is skipped.
    case "$(realpath -m "$dir/$path")" in
      "$PWD"/*) ;;
      *) continue ;;
    esac
    if [ ! -e "$dir/$path" ]; then
      echo "dangling link in $file: $target" >&2
      failures=$((failures + 1))
    fi
  done < <(awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$file" \
             | grep -oE '\]\([^)]+\)' | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$failures" -gt 0 ]; then
  echo "==> docs check failed: $failures dangling link(s)" >&2
  exit 1
fi
echo "==> docs check: all relative links in ${files[*]} resolve"
