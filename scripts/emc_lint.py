#!/usr/bin/env python3
"""emc-lint CLI — crypto-hygiene and determinism static analysis.

Usage:
    scripts/emc_lint.py --compile-commands build/compile_commands.json
    scripts/emc_lint.py --paths src/crypto/ghash.cpp src/common/rng.cpp
    scripts/emc_lint.py --list-rules

Exits 0 when the tree is clean (suppressed findings are clean), 1 when
any unsuppressed finding remains, 2 on usage errors. See
docs/STATIC_ANALYSIS.md for the rule catalog and suppression policy.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "tools" / "lint"))

from emclint import engine, rules  # noqa: E402
from emclint import clang_frontend  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="emc_lint.py",
        description="emc-specific static analyzer (secret hygiene, "
                    "constant-time discipline, nonce discipline, "
                    "determinism purity)")
    ap.add_argument("--compile-commands", type=Path,
                    help="compile_commands.json to take the file list from "
                         "(filtered to src/, headers globbed in)")
    ap.add_argument("--paths", nargs="+", type=Path,
                    help="explicit files to lint instead of a database")
    ap.add_argument("--root", type=Path, default=_REPO_ROOT,
                    help="tree root used to compute repo-relative paths "
                         "(rule scopes key off src/... prefixes); default: "
                         "the repository root")
    ap.add_argument("--json", type=Path, metavar="FILE",
                    help="also write a machine-readable report here")
    ap.add_argument("--frontend", choices=["auto", "tokens", "clang-ast"],
                    default="auto",
                    help="'tokens' = lexical frontend only; 'clang-ast' "
                         "additionally cross-checks TUs through clang's "
                         "JSON AST dump (requires clang++ on PATH); "
                         "'auto' = clang-ast when available (default)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in rules.RULES:
            print(f"{r.diag:24} [{r.rule}]  {r.title}  (scope: {r.scope})")
        return 0

    root = args.root.resolve()
    db_entries = []
    if args.compile_commands:
        if not args.compile_commands.is_file():
            print(f"emc-lint: no such compile database: "
                  f"{args.compile_commands}", file=sys.stderr)
            return 2
        files = engine.files_from_compile_commands(args.compile_commands,
                                                   root)
        db_entries = json.loads(
            args.compile_commands.read_text(encoding="utf-8"))
    elif args.paths:
        files = [p.resolve() for p in args.paths]
        missing = [p for p in files if not p.is_file()]
        if missing:
            for p in missing:
                print(f"emc-lint: no such file: {p}", file=sys.stderr)
            return 2
    else:
        ap.print_usage(file=sys.stderr)
        print("emc-lint: need --compile-commands, --paths, or "
              "--list-rules", file=sys.stderr)
        return 2

    results = engine.run(files, root)

    use_clang = (args.frontend == "clang-ast" or
                 (args.frontend == "auto" and clang_frontend.available()))
    if args.frontend == "clang-ast" and not clang_frontend.available():
        print("emc-lint: --frontend clang-ast requested but no clang++ "
              "on PATH; token findings only", file=sys.stderr)
        use_clang = False
    if use_clang and db_entries:
        by_path = {res.path: res for res in results}
        for entry in db_entries:
            extra = clang_frontend.lint_tu(entry, root)
            for f in extra:
                res = by_path.get(f.path)
                if res is None:
                    continue
                known = {x.key() for x in res.findings}
                known |= {x.key() for x in res.suppressed}
                if f.key() not in known:
                    res.findings.append(f)

    n_findings = engine.render_human(results)
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(engine.render_json(results), indent=2) + "\n",
            encoding="utf-8")
    return 1 if n_findings else 0


if __name__ == "__main__":
    sys.exit(main())
