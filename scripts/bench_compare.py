#!/usr/bin/env python3
"""Perf-trajectory regression gate.

Compares a current BENCH_<area>.json (see src/bench_core/trajectory.hpp
and docs/BENCHMARKING.md) against a committed baseline and fails when a
metric regressed in a statistically meaningful way:

  * the current median moved in the "worse" direction (per the row's
    higher_is_better flag) by more than --threshold (relative), AND
  * the bootstrap 95% confidence intervals of the two medians do not
    overlap (so plain run-to-run noise does not trip the gate).

Rows present only on one side are reported but never fatal (campaigns
grow); a config_hash mismatch means the two files measured different
campaign shapes and the comparison refuses to proceed unless
--allow-config-mismatch is given (it then matches rows by name).

--history PATH additionally appends each *current* trajectory to a
perf-history JSONL artifact — one record per (git sha, area,
config_hash) holding the measured rows — so the trajectory across
commits accumulates instead of every run diffing only against HEAD's
baseline. Appends are idempotent: a (sha, area, config_hash) triple
already present in the file is skipped, so re-running CI on the same
commit never duplicates records. The history never gates: it is an
artifact for trend plots and bisection, not a comparison input.

Exit status: 0 = no significant slowdowns, 1 = at least one slowdown,
2 = usage or file-format error.

Usage:
  scripts/bench_compare.py BASELINE CURRENT [--threshold 0.25]
  scripts/bench_compare.py --baseline-dir results --current-dir out \
      [--areas pingpong,nas] [--history results/perf_history.jsonl]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys


def die(message):
    print(f"bench_compare: {message}", file=sys.stderr)
    raise SystemExit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        die(f"cannot read {path}: {e}")
    if data.get("schema_version") != 1:
        die(f"{path}: unsupported schema_version "
            f"{data.get('schema_version')!r}")
    return data


def row_key(row):
    return (row["config"], row["metric"])


def is_number(x):
    return isinstance(x, (int, float)) and not (
        isinstance(x, float) and math.isnan(x))


def compare_rows(base_row, cur_row, threshold):
    """Returns (verdict, rel_change) where verdict is one of
    'ok', 'slower', 'faster', 'n/a'.

    rel_change is signed: positive = improved, negative = regressed,
    following the row's higher_is_better direction.
    """
    b, c = base_row.get("median"), cur_row.get("median")
    if not is_number(b) or not is_number(c) or b == 0:
        return "n/a", 0.0
    higher_better = bool(base_row.get("higher_is_better", True))
    rel = (c - b) / abs(b)
    if not higher_better:
        rel = -rel
    if abs(rel) <= threshold:
        return "ok", rel

    # Beyond the threshold: require the CIs to be disjoint before
    # calling it significant. Degenerate (zero-width / missing) CIs
    # fall back to the pure threshold test.
    b_lo, b_hi = base_row.get("ci95_low"), base_row.get("ci95_high")
    c_lo, c_hi = cur_row.get("ci95_low"), cur_row.get("ci95_high")
    if all(is_number(v) for v in (b_lo, b_hi, c_lo, c_hi)):
        overlap = max(b_lo, c_lo) <= min(b_hi, c_hi)
        if overlap and (b_hi > b_lo or c_hi > c_lo):
            return "ok", rel
    return ("faster" if rel > 0 else "slower"), rel


def compare_files(base, cur, threshold, allow_mismatch, label):
    failures = []
    notes = []
    if base.get("config_hash") != cur.get("config_hash"):
        msg = (f"{label}: config_hash mismatch "
               f"({base.get('config_hash')} vs {cur.get('config_hash')}); "
               f"settings: {base.get('settings')!r} vs "
               f"{cur.get('settings')!r}")
        if not allow_mismatch:
            die(msg + " (use --allow-config-mismatch to compare by row "
                      "name anyway)")
        notes.append(msg + " — matching rows by name")

    base_rows = {row_key(r): r for r in base.get("rows", [])}
    cur_rows = {row_key(r): r for r in cur.get("rows", [])}
    for key in sorted(base_rows.keys() - cur_rows.keys()):
        notes.append(f"{label}: row {key[0]} [{key[1]}] only in baseline")
    for key in sorted(cur_rows.keys() - base_rows.keys()):
        notes.append(f"{label}: row {key[0]} [{key[1]}] only in current")

    compared = 0
    for key in sorted(base_rows.keys() & cur_rows.keys()):
        b, c = base_rows[key], cur_rows[key]
        verdict, rel = compare_rows(b, c, threshold)
        compared += 1
        desc = (f"{label}: {key[0]} [{key[1]}] "
                f"{b.get('median')} -> {c.get('median')} {b.get('unit', '')} "
                f"({rel:+.1%})")
        if verdict == "slower":
            failures.append(desc)
        elif verdict == "faster":
            notes.append(desc + " improved")
    return compared, failures, notes


def history_key(record):
    return (record.get("sha"), record.get("area"),
            record.get("config_hash"))


def load_history_keys(path):
    """The (sha, area, config_hash) triples already recorded, skipping
    unparseable lines (a truncated tail from a killed run must not
    poison future appends)."""
    keys = set()
    if not os.path.exists(path):
        return keys
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                keys.add(history_key(json.loads(line)))
            except ValueError:
                continue
    return keys


def append_history(path, trajectories):
    """Appends one JSONL record per trajectory file, deduplicated on
    (sha, area, config_hash). Returns (appended, skipped)."""
    seen = load_history_keys(path)
    appended = skipped = 0
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as f:
        for cur in trajectories:
            record = {
                "sha": cur.get("git_sha"),
                "area": cur.get("area"),
                "config_hash": cur.get("config_hash"),
                "settings": cur.get("settings"),
                "host": cur.get("host", {}),
                "rows": [
                    {k: row.get(k)
                     for k in ("config", "metric", "unit",
                               "higher_is_better", "median", "ci95_low",
                               "ci95_high", "rel_stddev", "n_runs")}
                    for row in cur.get("rows", [])
                ],
            }
            key = history_key(record)
            if key in seen:
                skipped += 1
                continue
            seen.add(key)
            f.write(json.dumps(record, sort_keys=True) + "\n")
            appended += 1
    return appended, skipped


def find_pairs(baseline_dir, current_dir, areas):
    names = sorted(
        n for n in os.listdir(baseline_dir)
        if n.startswith("BENCH_") and n.endswith(".json"))
    if areas:
        wanted = {f"BENCH_{a}.json" for a in areas}
        names = [n for n in names if n in wanted]
        missing = wanted - set(names)
        if missing:
            die(f"baselines missing in {baseline_dir}: "
                f"{', '.join(sorted(missing))}")
    pairs = []
    for name in names:
        cur = os.path.join(current_dir, name)
        if not os.path.exists(cur):
            die(f"current run missing {cur} (baseline {name} exists)")
        pairs.append((os.path.join(baseline_dir, name), cur, name))
    if not pairs:
        die(f"no BENCH_*.json found in {baseline_dir}")
    return pairs


def main(argv=None):
    p = argparse.ArgumentParser(
        description="Diff perf-trajectory JSONs; fail on significant "
                    "slowdowns.")
    p.add_argument("baseline", nargs="?", help="baseline BENCH_<area>.json")
    p.add_argument("current", nargs="?", help="current BENCH_<area>.json")
    p.add_argument("--baseline-dir", help="directory of committed baselines")
    p.add_argument("--current-dir", help="directory of the fresh run")
    p.add_argument("--areas",
                   help="comma-separated area list for --baseline-dir mode")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="relative slowdown tolerated before the CI-overlap "
                        "test applies (default 0.25)")
    p.add_argument("--allow-config-mismatch", action="store_true",
                   help="compare files whose config_hash differs, matching "
                        "rows by name")
    p.add_argument("--history", metavar="PATH", nargs="?",
                   const=os.path.join("results", "perf_history.jsonl"),
                   help="append the current trajectories to this perf-"
                        "history JSONL (default results/perf_history.jsonl"
                        " when given without a value); deduplicated on "
                        "(sha, area, config_hash), never gates")
    args = p.parse_args(argv)

    if bool(args.baseline) != bool(args.current):
        p.error("give both BASELINE and CURRENT, or use --baseline-dir/"
                "--current-dir")
    if args.baseline and (args.baseline_dir or args.current_dir):
        p.error("positional files and --baseline-dir/--current-dir are "
                "mutually exclusive")
    if not args.baseline and not (args.baseline_dir and args.current_dir):
        p.error("need BASELINE CURRENT or --baseline-dir and --current-dir")

    if args.baseline:
        pairs = [(args.baseline, args.current,
                  os.path.basename(args.baseline))]
    else:
        areas = ([a.strip() for a in args.areas.split(",") if a.strip()]
                 if args.areas else None)
        pairs = find_pairs(args.baseline_dir, args.current_dir, areas)

    total = 0
    failures = []
    currents = []
    for base_path, cur_path, name in pairs:
        base = load(base_path)
        cur = load(cur_path)
        currents.append(cur)
        compared, fails, notes = compare_files(
            base, cur, args.threshold, args.allow_config_mismatch, name)
        total += compared
        failures.extend(fails)
        for note in notes:
            print("note:", note)
        host = cur.get("host", {})
        print(f"{name}: {compared} rows compared; current host "
              f"wall {host.get('wall_seconds', 0):.1f}s, "
              f"{host.get('events_per_second', 0):.0f} engine events/s")

    if args.history:
        appended, skipped = append_history(args.history, currents)
        print(f"history: {args.history}: {appended} record(s) appended, "
              f"{skipped} duplicate(s) skipped")

    if failures:
        print(f"\nFAIL: {len(failures)} significant slowdown(s) "
              f"(threshold {args.threshold:.0%} + disjoint 95% CIs):")
        for f in failures:
            print(" ", f)
        return 1
    print(f"\nOK: no significant slowdowns across {total} rows "
          f"(threshold {args.threshold:.0%}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
