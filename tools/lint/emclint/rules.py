"""emc-lint rule implementations.

Every rule operates on the token stream of one file (see
tokenizer.py) plus its repo-relative path, and yields Finding objects.
Rules are scoped by directory (see SCOPES below): crypto hygiene rules
run over the crypto/secure-MPI modules, determinism rules over every
module that feeds the same-seed byte-identical contract.

The analyses are deliberately token-level and conservative: they model
the project's own idioms (emc::secure_zero, SecureComm::next_nonce,
emc::ct_equal) rather than attempting whole-program dataflow. Known
analysis limits are documented per rule in docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .tokenizer import ID, NUM, PUNCT, STR, Token, find_matching

# --------------------------------------------------------------- findings


@dataclass
class Finding:
    rule: str          # kebab-case rule id, e.g. "secret-wipe"
    diag: str          # diagnostic id, e.g. "EMC-SECRET-WIPE"
    path: str          # repo-relative posix path
    line: int
    message: str
    hint: str = ""
    suppressed_by: Optional[int] = None  # line of the allow that hit

    def key(self) -> Tuple[str, str, int]:
        return (self.rule, self.path, self.line)


@dataclass
class RuleInfo:
    rule: str
    diag: str
    title: str
    scope: str


# ----------------------------------------------------------------- scopes

# Directory prefixes (repo-relative, posix) per rule family.
DETERMINISM_DIRS = (
    "src/sim/", "src/netsim/", "src/mpi/", "src/secure_mpi/",
    "src/reliable/", "src/ft/", "src/trace/", "src/common/",
    "src/keys/",
)
CRYPTO_DIRS = ("src/crypto/",)
SECRET_DIRS = ("src/crypto/", "src/secure_mpi/", "src/keys/")
ALL_SRC = ("src/",)


def in_scope(path: str, prefixes: Sequence[str]) -> bool:
    return any(path.startswith(p) for p in prefixes)


# ------------------------------------------------------- shared predicates

_SECRET_PARTS = (
    "key", "secret", "priv", "keystream", "kek",
    "ipad", "opad", "prk", "ikm", "k_block",
)
_PUBLIC_PARTS = ("pub", "sbox", "nonce", "size", "_len", "length")


def is_secret_name(name: str) -> bool:
    """Heuristic: does this identifier look like it holds key material?"""
    low = name.lower()
    if any(p in low for p in _PUBLIC_PARTS):
        return False
    return any(p in low for p in _SECRET_PARTS)


# Entry points whose parameters are treated as secret for the
# constant-time rules. This is the project's kernel ABI: the block
# ciphers, hashes, field arithmetic, and AEAD seal/open fronts.
KERNEL_FUNCTIONS = {
    "xtime", "gf_mul", "soft_mul", "mul",
    "encrypt_block", "decrypt_block", "process_block",
    "modexp", "modexp_slow", "mont_mul", "montgomery_mul",
    "seal", "open",
}

# Methods whose results are public even on secret operands (lengths,
# shape queries) — branching on them is fine.
_PUBLIC_METHODS = {"size", "empty", "length", "rounds", "capacity"}

# Functions that declassify secret data: their boolean result is safe
# to branch on (the project's constant-time comparator, primality).
_DECLASSIFIERS = {"ct_equal", "probably_prime"}

# Functions that count as "cleansing" a nonce buffer between its
# declaration and a seal call.
_NONCE_FILLERS = {
    "random_nonce", "next_nonce", "fill", "derive_j0",
    "store_be32", "store_be64", "store_le32", "store_le64",
    "memcpy", "copy", "counter_block",
}

_OWNING_SIMPLE_TYPES = {"Bytes", "BigUint"}
_OWNING_TEMPLATED = {"array", "vector", "basic_string"}
_ARRAY_ELEM_TYPES = {
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "char", "__m128i",
    "int8_t", "int32_t", "int64_t",
}
_CLASS_NAME_SECRET = re.compile(r"(Key|Secret|Schedule|Pad)")

_CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "static_assert", "throw", "new", "delete",
    "defined", "assert", "EMC_LINT_ALLOW", "EMC_LINT_ALLOW_FILE",
}

_WALLCLOCK_IDS = {
    "steady_clock", "system_clock", "high_resolution_clock",
    "WallTimer", "clock_gettime", "gettimeofday", "timespec_get",
    "__rdtsc", "__builtin_readcyclecounter",
}
_RANDOM_IDS = {"random_device"}
_RANDOM_CALLS = {"rand", "srand", "random", "drand48", "lrand48", "getentropy"}

_LOG_SINKS = {"printf", "fprintf", "snprintf", "puts", "cout", "cerr",
              "clog", "to_hex"}


# --------------------------------------------------- function segmentation


@dataclass
class Function:
    name: str
    line: int
    params: List[str]
    body_start: int    # index of `{`
    body_end: int      # index of matching `}`


def extract_functions(tokens: List[Token]) -> List[Function]:
    """Finds function definitions by token shape.

    A definition is `name ( params ) [qualifiers / init-list] {`.
    Control statements, declarations (terminated by `;` before any
    `{`), and lambdas (`] (`) are skipped. Nested scanning continues
    inside bodies, so member functions in class bodies are found.
    """
    out: List[Function] = []
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.text != "(" or i == 0:
            continue
        prev = tokens[i - 1]
        if prev.kind != ID or prev.text in _CONTROL_KEYWORDS:
            continue
        if prev.text == "operator":
            continue
        close = find_matching(tokens, i)
        if close >= n:
            continue
        # Walk from `)` to a body `{`, tolerating qualifiers and a
        # constructor init list; give up on `;` (plain declaration).
        j = close + 1
        saw_colon = False
        body = -1
        steps = 0
        while j < n and steps < 400:
            t = tokens[j]
            steps += 1
            if t.text in (";", ")", "]", ".", "?", "==", "!=",
                          "&&", "||", "+", "-", "/"):
                break  # cannot sit between a param list and a body
            if t.text == ":" and tokens[j - 1].text != ":":
                saw_colon = True
                j += 1
                continue
            if t.text in ("(", "["):
                j = find_matching(tokens, j) + 1
                continue
            if t.text == "{":
                if saw_colon and tokens[j - 1].kind == ID and \
                        tokens[j + 1].text != "}" and _looks_like_init(tokens, j):
                    j = find_matching(tokens, j) + 1
                    continue
                body = j
                break
            j += 1
        if body < 0:
            continue
        name = prev.text
        if i >= 2 and tokens[i - 2].text == "~":
            name = "~" + name
        params = _param_names(tokens, i, close)
        out.append(Function(name, prev.line, params,
                            body, find_matching(tokens, body)))
    return out


def _looks_like_init(tokens: List[Token], brace: int) -> bool:
    """True when `{` after `ident` inside an init list is member
    brace-init (`member_{x}`) rather than the function body. The body
    brace follows `)` or an identifier that ends a qualifier."""
    end = find_matching(tokens, brace)
    return end < len(tokens) - 1 and tokens[end + 1].text in (",", "{")


def _param_names(tokens: List[Token], open_paren: int,
                 close_paren: int) -> List[str]:
    """Parameter names: last identifier of each comma-separated chunk
    (skipping array extents and default arguments)."""
    names: List[str] = []
    chunk: List[Token] = []
    depth = 0
    for j in range(open_paren + 1, close_paren):
        t = tokens[j]
        if t.text in ("(", "<", "[", "{"):
            depth += 1
        elif t.text in (")", ">", "]", "}"):
            depth -= 1
        if t.text == "," and depth == 0:
            _append_param(chunk, names)
            chunk = []
        else:
            chunk.append(t)
    _append_param(chunk, names)
    return names


def _append_param(chunk: List[Token], names: List[str]) -> None:
    # Trim default argument.
    for k, t in enumerate(chunk):
        if t.text == "=":
            chunk = chunk[:k]
            break
    # Trim trailing array extent: name [ N ].
    while chunk and chunk[-1].text == "]":
        depth = 0
        for k in range(len(chunk) - 1, -1, -1):
            if chunk[k].text == "]":
                depth += 1
            elif chunk[k].text == "[":
                depth -= 1
                if depth == 0:
                    chunk = chunk[:k]
                    break
        else:
            break
    if chunk and chunk[-1].kind == ID and chunk[-1].text not in (
            "void", "const", "noexcept", "override"):
        names.append(chunk[-1].text)


# ------------------------------------------------------------ rule: wipes


def rule_secret_wipe(path: str, tokens: List[Token]) -> List[Finding]:
    """EMC-SECRET-WIPE: owning buffers that look like key material must
    be wiped (emc::secure_zero / .wipe()) before scope exit, and
    key-holding classes must declare a destructor that wipes."""
    if not in_scope(path, SECRET_DIRS):
        return []
    findings: List[Finding] = []
    for fn in extract_functions(tokens):
        findings.extend(_check_local_wipes(path, tokens, fn))
    findings.extend(_check_member_wipes(path, tokens))
    return findings


def _owning_decls(tokens: List[Token], start: int, end: int,
                  top_level_only: bool = False,
                  allow_paren_init: bool = True) -> List[Tuple[str, str, int]]:
    """(name, type_word, line) of owning-buffer declarations in
    [start, end). With top_level_only, nested braces (method bodies,
    nested classes) are skipped — the class-member scan. With
    allow_paren_init off, ``name (`` is treated as a function
    declaration, not paren-init."""
    decls: List[Tuple[str, str, int]] = []
    j = start
    while j < end:
        t = tokens[j]
        if top_level_only and t.text in ("{", "("):
            j = find_matching(tokens, j) + 1
            continue
        if t.kind != ID:
            j += 1
            continue
        name_idx = -1
        if t.text in _OWNING_SIMPLE_TYPES:
            k = j + 1
            if k < end and tokens[k].kind == ID:
                name_idx = k
        elif t.text in _OWNING_TEMPLATED or t.text == "string":
            # std::array<...> name / std::vector<...> name / std::string name
            k = j + 1
            if k < end and tokens[k].text == "<":
                depth = 0
                while k < end:
                    if tokens[k].text == "<":
                        depth += 1
                    elif tokens[k].text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif tokens[k].text == ">>":
                        depth -= 2
                        if depth <= 0:
                            break
                    k += 1
                k += 1
            if k < end and tokens[k].kind == ID:
                name_idx = k
        elif t.text in _ARRAY_ELEM_TYPES:
            # elem name [ extent ]
            k = j + 1
            if k + 1 < end and tokens[k].kind == ID and \
                    tokens[k + 1].text == "[":
                name_idx = k
        if name_idx > 0:
            nxt = tokens[name_idx + 1].text if name_idx + 1 < end else ""
            followers = (";", "=", "{", "[") if not allow_paren_init \
                else (";", "=", "(", "{", "[")
            if nxt in followers:
                # Exclude references/pointers (non-owning).
                if tokens[name_idx - 1].text not in ("*", "&"):
                    decls.append((tokens[name_idx].text, t.text,
                                  tokens[name_idx].line))
            j = name_idx + 1
            continue
        j += 1
    return decls


def _check_local_wipes(path: str, tokens: List[Token],
                       fn: Function) -> List[Finding]:
    findings: List[Finding] = []
    body = range(fn.body_start, fn.body_end + 1)
    texts = [tokens[j].text for j in body]
    for name, _type, line in _owning_decls(tokens, fn.body_start,
                                           fn.body_end):
        if not is_secret_name(name):
            continue
        if _is_returned(texts, name) or _is_wiped(texts, name):
            continue
        findings.append(Finding(
            "secret-wipe", "EMC-SECRET-WIPE", path, line,
            f"'{name}' looks like key material but is not zeroized "
            f"before scope exit in {fn.name}()",
            f"call emc::secure_zero({name}) (or .wipe() for BigUint) "
            "before every exit, or justify with "
            "EMC_LINT_ALLOW(secret-wipe, \"...\")"))
    return findings


def _is_returned(texts: List[str], name: str) -> bool:
    for j, t in enumerate(texts):
        if t != "return":
            continue
        rest = texts[j + 1 : j + 7]
        if rest[:2] == [name, ";"]:
            return True
        if rest[:6] == ["std", "::", "move", "(", name, ")"]:
            return True
    return False


def _is_wiped(texts: List[str], name: str) -> bool:
    for j, t in enumerate(texts):
        if t == "secure_zero":
            # name appears inside the call parens
            depth = 0
            for k in range(j + 1, min(j + 40, len(texts))):
                if texts[k] == "(":
                    depth += 1
                elif texts[k] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif texts[k] == name:
                    return True
        if t == name and texts[j + 1 : j + 4] == [".", "wipe", "("]:
            return True
    return False


def _check_member_wipes(path: str, tokens: List[Token]) -> List[Finding]:
    findings: List[Finding] = []
    n = len(tokens)
    all_texts = [t.text for t in tokens]
    for i, tok in enumerate(tokens):
        if tok.text not in ("class", "struct") or i + 1 >= n:
            continue
        name_tok = tokens[i + 1]
        if name_tok.kind != ID:
            continue
        # Find the class body `{`, aborting on `;` (forward decl) or `(`.
        j = i + 2
        body = -1
        while j < n and j < i + 30:
            if tokens[j].text == ";" or tokens[j].text == "(":
                break
            if tokens[j].text == "{":
                body = j
                break
            j += 1
        if body < 0:
            continue
        body_end = find_matching(tokens, body)
        class_name = name_tok.text
        has_dtor = ("~" + class_name) in (
            a + b for a, b in zip(all_texts, all_texts[1:]))
        if has_dtor:
            continue
        class_secret = bool(_CLASS_NAME_SECRET.search(class_name))
        for member, type_word, line in _owning_decls(
                tokens, body + 1, body_end, top_level_only=True,
                allow_paren_init=False):
            # The class-name path only flags raw buffer types; a
            # string/vector member of a *Config struct named
            # "provider" is not key material.
            raw_buffer = type_word not in ("string", "basic_string")
            flagged = is_secret_name(member) or (class_secret and raw_buffer)
            if not flagged:
                continue
            findings.append(Finding(
                "secret-wipe", "EMC-SECRET-WIPE", path, line,
                f"{class_name}::{member} holds key-like material but "
                f"{class_name} has no destructor wiping it",
                f"add ~{class_name}() {{ emc::secure_zero(...); }} or "
                "justify with EMC_LINT_ALLOW(secret-wipe, \"...\")"))
            break  # one finding per class is enough
    return findings


# ----------------------------------------------------- rules: constant time


def _kernel_taint(tokens: List[Token], fn: Function) -> Set[str]:
    tainted: Set[str] = set(fn.params)
    tainted.update(p for p in fn.params if is_secret_name(p))
    # Propagate through simple assignments/initializations.
    texts = [t.text for t in tokens[fn.body_start : fn.body_end + 1]]
    kinds = [t.kind for t in tokens[fn.body_start : fn.body_end + 1]]
    for _ in range(3):
        changed = False
        for j, t in enumerate(texts):
            if t != "=" or j == 0:
                continue
            if kinds[j - 1] == ID:
                lhs = texts[j - 1]
            elif texts[j - 1] == "]":
                # arr[i] = tainted  →  arr becomes tainted.
                depth = 0
                lhs = None
                for k in range(j - 1, 0, -1):
                    if texts[k] == "]":
                        depth += 1
                    elif texts[k] == "[":
                        depth -= 1
                        if depth == 0:
                            if kinds[k - 1] == ID:
                                lhs = texts[k - 1]
                            break
                if lhs is None:
                    continue
            else:
                continue
            if lhs in tainted:
                continue
            # RHS until `;` at paren depth 0.
            depth = 0
            for k in range(j + 1, len(texts)):
                tk = texts[k]
                if tk in ("(", "[", "{"):
                    depth += 1
                elif tk in (")", "]", "}"):
                    depth -= 1
                elif tk == ";" and depth <= 0:
                    break
                if kinds[k] == ID and tk in tainted and \
                        not _public_use(texts, k):
                    tainted.add(lhs)
                    changed = True
                    break
        if not changed:
            break
    return tainted


def _public_use(texts: List[str], idx: int) -> bool:
    """True when the tainted identifier at idx is used only through a
    public-result method (x.size(), x.empty(), ...)."""
    if idx + 2 < len(texts) and texts[idx + 1] == "." and \
            texts[idx + 2] in _PUBLIC_METHODS:
        return True
    return False


def _expr_tainted(tokens: List[Token], start: int, end: int,
                  tainted: Set[str]) -> bool:
    """Any tainted identifier used non-publicly in tokens[start:end),
    skipping ranges inside declassifier calls."""
    texts = [t.text for t in tokens[start:end]]
    kinds = [t.kind for t in tokens[start:end]]
    j = 0
    while j < len(texts):
        if kinds[j] == ID and texts[j] in _DECLASSIFIERS and \
                j + 1 < len(texts) and texts[j + 1] == "(":
            # Skip the declassifier call's argument list.
            depth = 0
            k = j + 1
            while k < len(texts):
                if texts[k] == "(":
                    depth += 1
                elif texts[k] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            j = k + 1
            continue
        if kinds[j] == ID and texts[j] in tainted and \
                not _public_use(texts, j):
            return True
        j += 1
    return False


def rule_const_time(path: str, tokens: List[Token]) -> List[Finding]:
    """EMC-CT-BRANCH / EMC-CT-INDEX: no secret-dependent control flow
    or table indices inside the crypto kernels."""
    if not in_scope(path, CRYPTO_DIRS):
        return []
    findings: List[Finding] = []
    for fn in extract_functions(tokens):
        if fn.name not in KERNEL_FUNCTIONS:
            continue
        tainted = _kernel_taint(tokens, fn)
        if not tainted:
            continue
        j = fn.body_start
        while j < fn.body_end:
            t = tokens[j]
            if t.kind == ID and t.text in ("if", "while", "switch") and \
                    j + 1 < fn.body_end and tokens[j + 1].text == "(":
                close = find_matching(tokens, j + 1)
                if _expr_tainted(tokens, j + 2, close, tainted):
                    findings.append(Finding(
                        "ct-branch", "EMC-CT-BRANCH", path, t.line,
                        f"secret-dependent {t.text} in kernel "
                        f"{fn.name}()",
                        "rewrite with arithmetic masks "
                        "(mask = 0 - (bit)), or justify with "
                        "EMC_LINT_ALLOW(ct-branch, \"...\")"))
            elif t.text == "?":
                start = _cond_start(tokens, j, fn.body_start)
                if _expr_tainted(tokens, start, j, tainted):
                    findings.append(Finding(
                        "ct-branch", "EMC-CT-BRANCH", path, t.line,
                        f"secret-dependent conditional expression in "
                        f"kernel {fn.name}()",
                        "select with a mask instead of ?:, or justify "
                        "with EMC_LINT_ALLOW(ct-branch, \"...\")"))
            elif t.text == "[" and j > fn.body_start and \
                    (tokens[j - 1].text == "]" or
                     (tokens[j - 1].kind == ID and
                      tokens[j - 1].text not in _CONTROL_KEYWORDS)):
                close = find_matching(tokens, j)
                if _expr_tainted(tokens, j + 1, close, tainted):
                    findings.append(Finding(
                        "ct-index", "EMC-CT-INDEX", path, t.line,
                        f"secret-dependent table index in kernel "
                        f"{fn.name}()",
                        "constant-time kernels must not index memory "
                        "by secret bytes; if this lookup models a "
                        "studied software tier, justify with "
                        "EMC_LINT_ALLOW(ct-index, \"...\")"))
                j = close
            j += 1
    return findings


def _cond_start(tokens: List[Token], qmark: int, floor: int) -> int:
    depth = 0
    j = qmark - 1
    while j > floor:
        t = tokens[j].text
        if t in (")", "]", "}"):
            depth += 1
        elif t in ("(", "[", "{"):
            if depth == 0:
                return j + 1
            depth -= 1
        elif depth == 0 and t in (";", ",", "=", "return", "{", "}"):
            return j + 1
        j -= 1
    return floor


# -------------------------------------------------------- rules: determinism


def _free_or_std_call(tokens: List[Token], j: int) -> bool:
    """True for a free call (`rand(`) or a std-qualified one
    (`std::rand(`); member calls (`engine.time(`) and calls qualified
    by project namespaces (`emc::time(`) don't count."""
    if j == 0:
        return True
    prev = tokens[j - 1].text
    if prev in (".", "->"):
        return False
    if prev == "::":
        return j >= 2 and tokens[j - 2].text == "std"
    return True


def rule_det_rand(path: str, tokens: List[Token]) -> List[Finding]:
    """EMC-DET-RAND: no ambient entropy in deterministic modules."""
    if not in_scope(path, DETERMINISM_DIRS):
        return []
    findings: List[Finding] = []
    for j, t in enumerate(tokens):
        if t.kind != ID:
            continue
        hit = t.text in _RANDOM_IDS or (
            t.text in _RANDOM_CALLS
            and j + 1 < len(tokens) and tokens[j + 1].text == "("
            and _free_or_std_call(tokens, j))
        if hit:
            findings.append(Finding(
                "det-rand", "EMC-DET-RAND", path, t.line,
                f"'{t.text}' injects ambient entropy into a "
                "deterministic module (same-seed runs must be "
                "byte-identical)",
                "seed an emc::Xoshiro256 from the experiment config "
                "instead, or justify with "
                "EMC_LINT_ALLOW(det-rand, \"...\")"))
    return findings


def rule_det_clock(path: str, tokens: List[Token]) -> List[Finding]:
    """EMC-DET-CLOCK: no wall-clock reads in deterministic modules."""
    if not in_scope(path, DETERMINISM_DIRS):
        return []
    findings: List[Finding] = []
    for j, t in enumerate(tokens):
        if t.kind != ID:
            continue
        hit = t.text in _WALLCLOCK_IDS or (
            t.text in ("time", "clock")
            and j + 1 < len(tokens) and tokens[j + 1].text == "("
            and _free_or_std_call(tokens, j))
        if hit:
            findings.append(Finding(
                "det-clock", "EMC-DET-CLOCK", path, t.line,
                f"'{t.text}' reads host wall-clock time inside a "
                "deterministic module; simulated paths must advance "
                "virtual time only",
                "charge cost through the engine (Process::advance / "
                "CryptoCostModel); host timing belongs in bench_core. "
                "Justify measurement-mode sites with "
                "EMC_LINT_ALLOW(det-clock, \"...\")"))
    return findings


def rule_det_ptrkey(path: str, tokens: List[Token]) -> List[Finding]:
    """EMC-DET-PTRKEY: pointer-keyed hashing / address leaks make
    iteration order and results host-dependent."""
    if not in_scope(path, DETERMINISM_DIRS):
        return []
    findings: List[Finding] = []
    n = len(tokens)
    for j, t in enumerate(tokens):
        if t.kind != ID:
            continue
        if t.text in ("unordered_map", "unordered_set") and \
                j + 1 < n and tokens[j + 1].text == "<":
            depth = 0
            saw_star = False
            for k in range(j + 1, min(j + 60, n)):
                tk = tokens[k].text
                if tk == "<":
                    depth += 1
                elif tk in (">", ">>"):
                    depth -= 2 if tk == ">>" else 1
                    if depth <= 0:
                        break
                elif tk == "," and depth == 1 and \
                        t.text == "unordered_map":
                    break  # only the key type matters for the map
                elif tk == "*":
                    saw_star = True
            if saw_star:
                findings.append(Finding(
                    "det-ptrkey", "EMC-DET-PTRKEY", path, t.line,
                    f"pointer-keyed {t.text} hashes host addresses; "
                    "iteration order can leak ASLR into results",
                    "key on a stable id (rank, sequence number, "
                    "index), or justify with "
                    "EMC_LINT_ALLOW(det-ptrkey, \"...\")"))
        if t.text == "uintptr_t" and j >= 2 and \
                tokens[j - 1].text in ("<", "::") :
            back = " ".join(x.text for x in tokens[max(0, j - 4):j])
            if "reinterpret_cast" in back or "static_cast" in back:
                findings.append(Finding(
                    "det-ptrkey", "EMC-DET-PTRKEY", path, t.line,
                    "casting a pointer to an integer leaks a host "
                    "address into arithmetic",
                    "derive ids from simulation state, not addresses; "
                    "or justify with EMC_LINT_ALLOW(det-ptrkey, "
                    "\"...\")"))
    return findings


# ------------------------------------------------------------ rules: nonces


def rule_nonce_source(path: str, tokens: List[Token]) -> List[Finding]:
    """EMC-NONCE-SOURCE: every call to random_nonce() needs an explicit
    justification — the sanctioned nonce paths are the per-channel
    counter (SecureComm::next_nonce) and the rekey epoch."""
    if not in_scope(path, ALL_SRC):
        return []
    findings: List[Finding] = []
    for j, t in enumerate(tokens):
        if t.kind == ID and t.text == "random_nonce" and \
                j + 1 < len(tokens) and tokens[j + 1].text == "(" and \
                (j == 0 or tokens[j - 1].text not in ("void", "::")):
            findings.append(Finding(
                "nonce-source", "EMC-NONCE-SOURCE", path, t.line,
                "direct random_nonce() use: nonces should derive from "
                "the per-channel counter or rekey epoch so uniqueness "
                "is provable, not probabilistic",
                "use SecureComm::next_nonce / a counter scheme, or "
                "justify the random draw (one-shot key, birthday "
                "budget) with EMC_LINT_ALLOW(nonce-source, \"...\")"))
    return findings


def rule_nonce_const(path: str, tokens: List[Token]) -> List[Finding]:
    """EMC-NONCE-CONST: a seal() call whose nonce argument is a literal
    or a zero-initialized local that was never filled repeats (key,
    nonce) pairs — catastrophic for GCM."""
    if not in_scope(path, ALL_SRC):
        return []
    findings: List[Finding] = []
    n = len(tokens)
    zero_inited = _zero_inited_arrays(tokens)
    for j, t in enumerate(tokens):
        if t.kind != ID or t.text != "seal":
            continue
        if j == 0 or tokens[j - 1].text not in (".", "->"):
            continue  # definitions / declarations
        if j + 1 >= n or tokens[j + 1].text != "(":
            continue
        close = find_matching(tokens, j + 1)
        # First argument: tokens up to the first depth-0 comma.
        depth = 0
        arg_end = close
        for k in range(j + 2, close):
            tk = tokens[k].text
            if tk in ("(", "[", "{"):
                depth += 1
            elif tk in (")", "]", "}"):
                depth -= 1
            elif tk == "," and depth == 0:
                arg_end = k
                break
        arg = tokens[j + 2 : arg_end]
        bad = None
        if any(a.text == "{" for a in arg) or \
                any(a.kind == STR for a in arg):
            bad = "a literal"
        else:
            for a in arg:
                if a.kind == ID and a.text in zero_inited and \
                        not _filled_before(tokens, zero_inited[a.text],
                                           j, a.text):
                    bad = f"zero-initialized buffer '{a.text}'"
                    break
        if bad:
            findings.append(Finding(
                "nonce-const", "EMC-NONCE-CONST", path, t.line,
                f"seal() called with {bad} as nonce: a repeated "
                "(key, nonce) pair breaks GCM/CCM confidentiality "
                "and authenticity",
                "derive the nonce from the channel counter "
                "(next_nonce) before sealing"))
    return findings


def _zero_inited_arrays(tokens: List[Token]) -> Dict[str, int]:
    """name -> token index of declarations like `uint8_t n[12] = {0};`
    or `= {};`."""
    out: Dict[str, int] = {}
    n = len(tokens)
    for j, t in enumerate(tokens):
        if t.kind != ID or j + 1 >= n or tokens[j + 1].text != "[":
            continue
        close = find_matching(tokens, j + 1)
        if close + 1 >= n or tokens[close + 1].text != "=":
            continue
        if close + 2 < n and tokens[close + 2].text == "{":
            bend = find_matching(tokens, close + 2)
            inner = tokens[close + 3 : bend]
            if all(x.kind == NUM and
                   int(x.text.rstrip("uUlL"), 0) == 0
                   for x in inner if x.text != ","):
                out[t.text] = j
    return out


def _filled_before(tokens: List[Token], decl: int, use: int,
                   name: str) -> bool:
    for k in range(decl, use):
        t = tokens[k]
        if t.kind == ID and t.text in _NONCE_FILLERS:
            close = find_matching(tokens, k + 1) if \
                k + 1 < len(tokens) and tokens[k + 1].text == "(" else k
            if any(x.kind == ID and x.text == name
                   for x in tokens[k + 1 : close + 1]):
                return True
        # Direct element writes: name [ ... ] =
        if t.kind == ID and t.text == name and k + 1 < len(tokens) and \
                tokens[k + 1].text == "[" and k > decl + 2:
            close = find_matching(tokens, k + 1)
            if close + 1 < len(tokens) and \
                    tokens[close + 1].text in ("=", "^=", "|="):
                return True
    return False


# --------------------------------------------------------- rule: log sinks


def rule_secret_log(path: str, tokens: List[Token]) -> List[Finding]:
    """EMC-SECRET-LOG: key-like identifiers must not reach logging or
    serialization sinks."""
    if not in_scope(path, ALL_SRC):
        return []
    findings: List[Finding] = []
    # Statement = token run between ; { } boundaries.
    start = 0
    for j, t in enumerate(tokens):
        if t.text in (";", "{", "}"):
            _check_log_statement(path, tokens, start, j, findings)
            start = j + 1
    _check_log_statement(path, tokens, start, len(tokens), findings)
    return findings


def _check_log_statement(path: str, tokens: List[Token], start: int,
                         end: int, findings: List[Finding]) -> None:
    sink = None
    secret = None
    for k in range(start, end):
        t = tokens[k]
        if t.kind != ID:
            continue
        if t.text in _LOG_SINKS:
            # `to_hex` as a definition (preceded by a type or ::
            # qualification of the definition) still counts as a use
            # only when followed by `(` with arguments.
            if t.text == "to_hex" and (
                    k + 1 >= end or tokens[k + 1].text != "(" or
                    (k >= 1 and tokens[k - 1].text == "::")):
                continue
            sink = t
        elif is_secret_name(t.text):
            secret = t
    if sink is not None and secret is not None:
        findings.append(Finding(
            "secret-log", "EMC-SECRET-LOG", path, sink.line,
            f"'{secret.text}' reaches logging/serialization sink "
            f"'{sink.text}': key material must never be printed or "
            "written to CSV/JSON artifacts",
            "log lengths or digests of public values instead, or "
            "justify with EMC_LINT_ALLOW(secret-log, \"...\")"))


# ----------------------------------------------------------------- registry

RULES = [
    RuleInfo("secret-wipe", "EMC-SECRET-WIPE",
             "key material zeroized before scope exit",
             "src/crypto, src/secure_mpi, src/keys"),
    RuleInfo("secret-log", "EMC-SECRET-LOG",
             "key material never reaches log/CSV/hex sinks", "src"),
    RuleInfo("ct-branch", "EMC-CT-BRANCH",
             "no secret-dependent branches in crypto kernels",
             "src/crypto"),
    RuleInfo("ct-index", "EMC-CT-INDEX",
             "no secret-dependent table indices in crypto kernels",
             "src/crypto"),
    RuleInfo("nonce-source", "EMC-NONCE-SOURCE",
             "nonces derive from channel counters, not ad-hoc entropy",
             "src"),
    RuleInfo("nonce-const", "EMC-NONCE-CONST",
             "no literal/zero nonces at seal() call sites", "src"),
    RuleInfo("det-rand", "EMC-DET-RAND",
             "no ambient entropy in deterministic modules",
             "src/{sim,netsim,mpi,secure_mpi,reliable,ft,trace,common,keys}"),
    RuleInfo("det-clock", "EMC-DET-CLOCK",
             "no wall-clock reads in deterministic modules",
             "src/{sim,netsim,mpi,secure_mpi,reliable,ft,trace,common,keys}"),
    RuleInfo("det-ptrkey", "EMC-DET-PTRKEY",
             "no pointer-keyed containers / address leaks",
             "src/{sim,netsim,mpi,secure_mpi,reliable,ft,trace,common,keys}"),
    RuleInfo("unused-allow", "EMC-LINT-UNUSED-ALLOW",
             "every EMC_LINT_ALLOW must suppress something", "anywhere"),
    RuleInfo("bad-allow", "EMC-LINT-BAD-ALLOW",
             "every EMC_LINT_ALLOW must carry a reason", "anywhere"),
]

RULE_FUNCS = [
    rule_secret_wipe,
    rule_secret_log,
    rule_const_time,
    rule_nonce_source,
    rule_nonce_const,
    rule_det_rand,
    rule_det_clock,
    rule_det_ptrkey,
]

KNOWN_RULE_IDS = {r.rule for r in RULES}
