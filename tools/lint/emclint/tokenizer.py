"""Lightweight C++ lexer for emc-lint.

Produces a flat token stream (identifiers, numbers, literals,
punctuation) with line numbers, plus the comment text and #include
targets that the rule engine needs for suppression markers and
include-based checks. This is deliberately not a parser: emc-lint's
rules are written against token patterns and a small amount of brace
structure, so the whole analyzer runs anywhere Python runs — no
libclang, no compiler invocation (the optional clang AST frontend in
clang_frontend.py augments, never replaces, this path).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple

ID = "id"
NUM = "num"
STR = "str"
CHAR = "char"
PUNCT = "punct"

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>[ \t]+)
    | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<num>(?:0[xX][0-9a-fA-F']+|\d[\d']*(?:\.\d+)?(?:[eEpP][+-]?\d+)?)
              [uUlLfF]*)
    | (?P<punct>::|->\*?|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|
                \*=|/=|%=|&=|\^=|\|=|\.\.\.|[{}()\[\];:,.?~!+\-*/%<>=&^|#])
    """,
    re.VERBOSE,
)


@dataclass
class Token:
    kind: str
    text: str
    line: int


@dataclass
class Comment:
    text: str
    line: int          # line the comment starts on
    own_line: bool     # nothing but whitespace precedes it on its line


class LexError(Exception):
    pass


def tokenize(source: str) -> Tuple[List[Token], List[Comment]]:
    """Splits C++ source into code tokens and comments.

    Preprocessor directives are tokenized like ordinary code (the `#`
    shows up as punctuation), which is all the rules need; line
    continuations inside directives are handled by the raw scan.
    """
    tokens: List[Token] = []
    comments: List[Comment] = []
    i = 0
    line = 1
    n = len(source)
    line_start = True  # only whitespace seen since the last newline

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = True
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "/" and i + 1 < n:
            nxt = source[i + 1]
            if nxt == "/":
                end = source.find("\n", i)
                if end == -1:
                    end = n
                comments.append(Comment(source[i:end], line, line_start))
                i = end
                line_start = False
                continue
            if nxt == "*":
                end = source.find("*/", i + 2)
                if end == -1:
                    end = n - 2
                text = source[i : end + 2]
                comments.append(Comment(text, line, line_start))
                line += text.count("\n")
                i = end + 2
                line_start = False
                continue
        if ch == '"':
            # Raw strings: R"delim( ... )delim"
            if tokens and tokens[-1].kind == ID and tokens[-1].text.endswith("R") \
                    and i > 0 and source[i - 1] in "R\"":
                m = re.match(r'"([^()\s\\]{0,16})\(', source[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    end = source.find(close, i)
                    if end == -1:
                        raise LexError(f"unterminated raw string at line {line}")
                    text = source[i : end + len(close)]
                    tokens.append(Token(STR, text, line))
                    line += text.count("\n")
                    i = end + len(close)
                    line_start = False
                    continue
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise LexError(f"unterminated string at line {line}")
            tokens.append(Token(STR, source[i : j + 1], line))
            i = j + 1
            line_start = False
            continue
        if ch == "'":
            j = i + 1
            while j < n and source[j] != "'":
                if source[j] == "\\":
                    j += 1
                j += 1
            # Digit separators (1'000) never reach here: the number
            # pattern consumes them greedily before the quote.
            if j >= n:
                raise LexError(f"unterminated char literal at line {line}")
            tokens.append(Token(CHAR, source[i : j + 1], line))
            i = j + 1
            line_start = False
            continue

        m = _TOKEN_RE.match(source, i)
        if not m:
            # Unknown byte (e.g. `@` in a doc block) — skip defensively.
            i += 1
            line_start = False
            continue
        if m.lastgroup != "ws":
            kind = {"id": ID, "num": NUM, "punct": PUNCT}[m.lastgroup]
            tokens.append(Token(kind, m.group(), line))
            line_start = False
        i = m.end()

    return tokens, comments


def find_matching(tokens: List[Token], open_index: int) -> int:
    """Index of the token closing the bracket at ``open_index``.

    Works for (), {}, and []. Returns len(tokens) if unbalanced.
    """
    pairs = {"(": ")", "{": "}", "[": "]"}
    open_text = tokens[open_index].text
    close_text = pairs[open_text]
    depth = 0
    for j in range(open_index, len(tokens)):
        t = tokens[j].text
        if t == open_text:
            depth += 1
        elif t == close_text:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)
