"""Optional clang-AST cross-check frontend.

When a clang++ binary is on PATH (the CI static-analysis job installs
one; the token frontend never requires it), each TU is re-parsed with
``clang++ -fsyntax-only -Xclang -ast-dump=json`` — no libclang, no
Python bindings — and the JSON AST is walked for DeclRefExprs that
resolve to banned entropy/wall-clock symbols. Findings are merged with
the token frontend's by (rule, path, line), so this pass can only add
findings the lexical pass missed (e.g. a banned call reached through a
using-declaration or alias the token scan can't see through).

Everything here is defensive: missing clang, a failed parse, a
timeout, or unparseable JSON all downgrade to "frontend unavailable"
rather than failing the lint run.
"""

from __future__ import annotations

import json
import shlex
import shutil
import subprocess
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from . import rules as R

_BANNED_RAND = {"random_device", "rand", "srand", "drand48", "lrand48",
                "getentropy"}
_BANNED_CLOCK = {"clock_gettime", "gettimeofday", "timespec_get"}

_AST_TIMEOUT_S = 60


def clang_path() -> Optional[str]:
    for name in ("clang++", "clang++-18", "clang++-17", "clang++-16",
                 "clang++-15", "clang++-14"):
        p = shutil.which(name)
        if p:
            return p
    return None


def available() -> bool:
    return clang_path() is not None


def _ast_command(entry: dict, clang: str) -> Optional[List[str]]:
    if "arguments" in entry:
        args = list(entry["arguments"])
    elif "command" in entry:
        args = shlex.split(entry["command"])
    else:
        return None
    out: List[str] = [clang, "-fsyntax-only", "-Xclang", "-ast-dump=json",
                      "-Wno-everything"]
    skip_next = False
    for a in args[1:]:
        if skip_next:
            skip_next = False
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if a in ("-c", "-MD", "-MMD") or a.startswith("-f"):
            continue
        out.append(a)
    return out


def _walk(node: dict, line_state: List[int]) -> Iterator[Tuple[str, int]]:
    """Yields (referenced_name, line) for every DeclRefExpr.

    clang's JSON omits 'line' when it repeats the previous location, so
    the current line is threaded through as mutable state.
    """
    loc = node.get("loc") or {}
    ln = loc.get("line")
    if isinstance(ln, int):
        line_state[0] = ln
    if node.get("kind") == "DeclRefExpr":
        ref = node.get("referencedDecl") or {}
        name = ref.get("name")
        if isinstance(name, str):
            yield (name, line_state[0])
    for child in node.get("inner") or []:
        if isinstance(child, dict):
            yield from _walk(child, line_state)


def lint_tu(entry: dict, root: Path) -> List[R.Finding]:
    clang = clang_path()
    if clang is None:
        return []
    cmd = _ast_command(entry, clang)
    if cmd is None:
        return []
    f = Path(entry["file"])
    if not f.is_absolute():
        f = Path(entry.get("directory", ".")) / f
    try:
        rel = f.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return []
    if not R.in_scope(rel, R.DETERMINISM_DIRS):
        return []
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=_AST_TIMEOUT_S,
            cwd=entry.get("directory") or None)
        ast = json.loads(proc.stdout)
    except (OSError, subprocess.TimeoutExpired, json.JSONDecodeError,
            ValueError):
        return []
    findings: List[R.Finding] = []
    for name, line in _walk(ast, [0]):
        if name in _BANNED_RAND:
            findings.append(R.Finding(
                "det-rand", "EMC-DET-RAND", rel, line,
                f"'{name}' (clang AST) injects ambient entropy into a "
                "deterministic module",
                "seed an emc::Xoshiro256 from the experiment config"))
        elif name in _BANNED_CLOCK:
            findings.append(R.Finding(
                "det-clock", "EMC-DET-CLOCK", rel, line,
                f"'{name}' (clang AST) reads host wall-clock time in a "
                "deterministic module",
                "charge cost through the engine instead"))
    return findings


def merge(base: List[R.Finding],
          extra: List[R.Finding]) -> List[R.Finding]:
    seen = {f.key() for f in base}
    out = list(base)
    for f in extra:
        if f.key() not in seen:
            seen.add(f.key())
            out.append(f)
    return out
