"""emc-lint: project-specific static analysis for crypto hygiene and
determinism invariants. See docs/STATIC_ANALYSIS.md for the catalog."""

__version__ = "1.0.0"

from .rules import RULES, Finding  # noqa: F401
from .engine import lint_file, run  # noqa: F401
