"""emc-lint driver: file discovery, suppression handling, reporting.

Files come either from a compile_commands.json (the normal CI path —
every TU the build sees, filtered to src/) or from explicit paths.
Headers don't appear in compile_commands, so the src/ tree is also
globbed for .hpp/.h when running from a database.

Suppressions come in three forms, all carrying a rule id and a reason:

    EMC_LINT_ALLOW(det-rand, "seed bootstrap, outside sim time");
    // EMC_LINT_ALLOW(det-clock): measurement-mode wall timer
    // EMC_LINT_ALLOW_FILE(ct-index): models the table-based sw tier

Line allows cover their own line and the next line that has code (so
an annotation can sit above the flagged statement). File allows cover
the whole file for one rule. Every allow must suppress at least one
finding (EMC-LINT-UNUSED-ALLOW) and must carry a reason
(EMC-LINT-BAD-ALLOW) — suppressions are audited, not free.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, List, Optional, Sequence, Set, Tuple

from . import rules as R
from .tokenizer import ID, STR, Comment, LexError, Token, find_matching, tokenize

_ALLOW_WORD = "EMC_LINT_ALLOW"
_ALLOW_FILE_WORD = "EMC_LINT_ALLOW_FILE"


@dataclass
class Allow:
    rule: str
    path: str
    line: int
    reason: str
    file_level: bool
    uses: int = 0


@dataclass
class FileResult:
    path: str
    findings: List[R.Finding] = field(default_factory=list)
    suppressed: List[R.Finding] = field(default_factory=list)
    allows: List[Allow] = field(default_factory=list)
    error: Optional[str] = None


def _parse_comment_allows(path: str, comments: List[Comment]) -> List[Allow]:
    allows: List[Allow] = []
    for c in comments:
        text = c.text
        for word, file_level in ((_ALLOW_FILE_WORD, True),
                                 (_ALLOW_WORD, False)):
            at = text.find(word + "(")
            if at < 0:
                continue
            rest = text[at + len(word) + 1 :]
            close = rest.find(")")
            if close < 0:
                continue
            rule = rest[:close].strip()
            after = rest[close + 1 :].lstrip()
            reason = ""
            if after.startswith(":"):
                reason = after[1:].strip().rstrip("*/").strip()
            allows.append(Allow(rule, path, c.line, reason, file_level))
            break
    return allows


def _parse_macro_allows(path: str, tokens: List[Token]) -> List[Allow]:
    allows: List[Allow] = []
    for j, t in enumerate(tokens):
        if t.kind != ID or t.text not in (_ALLOW_WORD, _ALLOW_FILE_WORD):
            continue
        if j > 0 and tokens[j - 1].text == "define":
            continue  # the macro definition itself in annotations.hpp
        if j + 1 >= len(tokens) or tokens[j + 1].text != "(":
            continue
        close = find_matching(tokens, j + 1)
        rule_parts: List[str] = []
        reason = ""
        k = j + 2
        depth = 0
        while k < close:
            tk = tokens[k]
            if tk.text in ("(", "[", "{"):
                depth += 1
            elif tk.text in (")", "]", "}"):
                depth -= 1
            elif tk.text == "," and depth == 0:
                k += 1
                if k < close and tokens[k].kind == STR:
                    reason = tokens[k].text.strip('"')
                break
            else:
                rule_parts.append(tk.text)
            k += 1
        allows.append(Allow("".join(rule_parts), path, t.line, reason,
                            t.text == _ALLOW_FILE_WORD))
    return allows


def _covered_lines(allow: Allow, token_lines: Sequence[int]) -> Set[int]:
    covered = {allow.line}
    nxt = [ln for ln in token_lines if ln > allow.line]
    if nxt:
        covered.add(min(nxt))
    return covered


def lint_file(abs_path: Path, rel_path: str) -> FileResult:
    res = FileResult(rel_path)
    try:
        source = abs_path.read_text(encoding="utf-8", errors="replace")
        tokens, comments = tokenize(source)
    except (OSError, LexError) as exc:
        res.error = str(exc)
        return res

    raw: List[R.Finding] = []
    seen_keys = set()
    for fn in R.RULE_FUNCS:
        for f in fn(rel_path, tokens):
            if f.key() not in seen_keys:
                seen_keys.add(f.key())
                raw.append(f)
    raw.sort(key=lambda f: (f.line, f.rule))

    if rel_path.endswith("emc/common/annotations.hpp"):
        # The marker header itself: its doc examples and the macro
        # definitions must not register as live suppressions.
        allows: List[Allow] = []
    else:
        allows = _parse_comment_allows(rel_path, comments)
        allows.extend(_parse_macro_allows(rel_path, tokens))
    allows.sort(key=lambda a: a.line)
    res.allows = allows

    token_lines = sorted({t.line for t in tokens})
    line_cov: Dict[Tuple[str, int], Allow] = {}
    file_cov: Dict[str, Allow] = {}
    for a in allows:
        if a.file_level:
            file_cov.setdefault(a.rule, a)
        else:
            for ln in _covered_lines(a, token_lines):
                line_cov.setdefault((a.rule, ln), a)

    for f in raw:
        a = line_cov.get((f.rule, f.line)) or file_cov.get(f.rule)
        if a is not None:
            a.uses += 1
            f.suppressed_by = a.line
            res.suppressed.append(f)
        else:
            res.findings.append(f)

    # Meta rules: audit the allows themselves.
    for a in allows:
        if a.rule not in R.KNOWN_RULE_IDS:
            res.findings.append(R.Finding(
                "bad-allow", "EMC-LINT-BAD-ALLOW", rel_path, a.line,
                f"EMC_LINT_ALLOW names unknown rule '{a.rule}'",
                "run scripts/emc_lint.py --list-rules for the catalog"))
            continue
        if not a.reason:
            res.findings.append(R.Finding(
                "bad-allow", "EMC-LINT-BAD-ALLOW", rel_path, a.line,
                f"EMC_LINT_ALLOW({a.rule}) has no reason",
                "state why the exception is sound: "
                "EMC_LINT_ALLOW(rule, \"reason\") or "
                "// EMC_LINT_ALLOW(rule): reason"))
        if a.uses == 0:
            res.findings.append(R.Finding(
                "unused-allow", "EMC-LINT-UNUSED-ALLOW", rel_path, a.line,
                f"EMC_LINT_ALLOW({a.rule}) suppresses nothing",
                "delete the stale annotation (the code it excused is "
                "gone or was fixed)"))
    return res


# --------------------------------------------------------- file discovery


def files_from_compile_commands(db_path: Path, root: Path) -> List[Path]:
    entries = json.loads(db_path.read_text(encoding="utf-8"))
    seen: Set[Path] = set()
    out: List[Path] = []
    for e in entries:
        f = Path(e["file"])
        if not f.is_absolute():
            f = (Path(e.get("directory", ".")) / f).resolve()
        try:
            rel = f.resolve().relative_to(root.resolve())
        except ValueError:
            continue
        if not _in_lint_tree(rel):
            continue
        if f not in seen:
            seen.add(f)
            out.append(f.resolve())
    # Headers never show up in the database; glob them from src/.
    for pat in ("src/**/*.hpp", "src/**/*.h"):
        for f in sorted(root.glob(pat)):
            fr = f.resolve()
            if fr not in seen:
                seen.add(fr)
                out.append(fr)
    return sorted(out)


def _in_lint_tree(rel: Path) -> bool:
    return PurePosixPath(rel.as_posix()).parts[:1] == ("src",)


def run(files: Sequence[Path], root: Path) -> List[FileResult]:
    results: List[FileResult] = []
    for f in files:
        try:
            rel = f.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = f.as_posix()
        results.append(lint_file(f, rel))
    return results


# ---------------------------------------------------------------- reporting


def render_human(results: List[FileResult], out=sys.stdout) -> int:
    n_findings = 0
    n_suppressed = 0
    for res in results:
        if res.error:
            print(f"{res.path}: error: {res.error}", file=out)
            n_findings += 1
        for f in res.findings:
            n_findings += 1
            print(f"{f.path}:{f.line}: {f.diag}: {f.message}", file=out)
            if f.hint:
                print(f"    hint: {f.hint}", file=out)
        n_suppressed += len(res.suppressed)
    n_files = len(results)
    print(f"emc-lint: {n_files} file(s), {n_findings} finding(s), "
          f"{n_suppressed} suppressed by EMC_LINT_ALLOW", file=out)
    return n_findings


def render_json(results: List[FileResult]) -> dict:
    findings = []
    suppressions = []
    errors = []
    for res in results:
        if res.error:
            errors.append({"path": res.path, "error": res.error})
        for f in res.findings:
            findings.append({
                "rule": f.rule, "diag": f.diag, "path": f.path,
                "line": f.line, "message": f.message, "hint": f.hint,
            })
        for a in res.allows:
            suppressions.append({
                "rule": a.rule, "path": a.path, "line": a.line,
                "reason": a.reason, "file_level": a.file_level,
                "uses": a.uses,
            })
    return {
        "tool": "emc-lint",
        "files_scanned": len(results),
        "finding_count": len(findings),
        "suppressed_count": sum(s["uses"] for s in suppressions),
        "findings": findings,
        "suppressions": suppressions,
        "errors": errors,
    }
