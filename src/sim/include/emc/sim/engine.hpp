// Virtual-time discrete-event engine with cooperative processes.
//
// Each simulated process (an MPI rank in this project) runs on its own
// host thread, but the engine guarantees that EXACTLY ONE process
// thread executes at any instant: whenever the running process blocks
// (advance / wait), the scheduler hands the execution token to the
// ready process with the smallest virtual wake-up time. This gives
//   * deterministic virtual-time semantics independent of host core
//     count (the build host may have a single core; the simulated
//     cluster can have hundreds), and
//   * clean wall-clock measurement: `Process::charge` times a closure
//     on the host and bills that duration to the virtual clock without
//     interference from other simulated ranks.
//
// The model is sequential DES with threads as continuations — the same
// execution style SimGrid's SMPI uses for its actor contexts.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace emc::sim {

/// Virtual time in seconds.
using Time = double;

class Engine;
class Process;

/// Thrown inside process bodies when the simulation is being torn
/// down after another process failed; unwinds the thread.
struct Aborted : std::runtime_error {
  Aborted() : std::runtime_error("simulation aborted") {}
};

/// Thrown by the engine when no process can ever run again
/// (all blocked on conditions, none scheduled).
struct Deadlock : std::runtime_error {
  explicit Deadlock(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on a process's own thread the first time it would run at or
/// after its armed kill time (Engine::set_kill_time) — the rank-crash
/// fault primitive. Deliberately NOT derived from std::exception:
/// application-level `catch (const std::exception&)` recovery must not
/// absorb a crash; only the world-level harness catches it and retires
/// the rank.
struct Killed {
  int rank = -1;
  Time at = 0.0;
};

/// Intrusive wait queue. Processes block on it via Process::wait and
/// are released by Process::notify_one/notify_all. No payload: the
/// protected state lives in the caller (engine serialization makes
/// unsynchronized access safe).
class Waitable {
 public:
  Waitable() = default;
  Waitable(const Waitable&) = delete;
  Waitable& operator=(const Waitable&) = delete;

  [[nodiscard]] bool has_waiters() const noexcept { return !waiters_.empty(); }

 private:
  friend class Engine;
  friend class Process;
  std::vector<Process*> waiters_;
};

/// Handle a process body uses to interact with virtual time.
/// Only valid on its own thread, during Engine::run.
class Process {
 public:
  [[nodiscard]] int index() const noexcept { return index_; }

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept;

  /// Consumes @p dt seconds of virtual time (non-preemptible compute).
  /// Negative or zero dt is a no-op.
  void advance(Time dt);

  /// Blocks until another process calls notify on @p w.
  void wait(Waitable& w);

  /// Blocks until another process calls notify on @p w or @p timeout
  /// virtual seconds elapse, whichever comes first. Returns true when
  /// notified, false on timeout (the process is deregistered from the
  /// waitable before returning, so a later notify cannot touch it).
  bool wait_for(Waitable& w, Time timeout);

  /// Releases one / all waiters of @p w at the current virtual time.
  void notify_one(Waitable& w);
  void notify_all(Waitable& w);

  /// Runs @p work on the host, measures its wall-clock duration, and
  /// advances the virtual clock by duration * scale *
  /// engine.charge_scale(). Returns the measured seconds. Because the
  /// engine serializes process threads the measurement is uncontended.
  double charge(const std::function<void()>& work, double scale = 1.0);

  /// Yields without consuming time (reschedules at `now`); lets other
  /// processes scheduled at the same instant run. Rarely needed.
  void yield();

  /// The engine's global charge multiplier (see Engine::set_charge_scale).
  [[nodiscard]] double charge_scale() const noexcept;

 private:
  friend class Engine;
  explicit Process(Engine& engine, int index)
      : engine_(&engine), index_(index) {}

  Engine* engine_;
  int index_;
  // Host-thread handoff state, guarded by the engine mutex.
  std::condition_variable cv_;
  bool granted_ = false;
  bool done_ = false;
  /// Bumped every time the process is granted the execution token;
  /// heap entries carrying an older epoch are stale (e.g. the unused
  /// timeout wake-up of a wait_for that was notified first).
  std::uint64_t wake_epoch_ = 0;
  /// Virtual time at which this process is permanently killed
  /// (infinity = never). See Engine::set_kill_time.
  Time kill_at_ = std::numeric_limits<Time>::infinity();
  std::thread thread_;
};

/// The simulation engine. Construct with the number of processes,
/// then call run() with the body each process executes.
class Engine {
 public:
  explicit Engine(int num_processes);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(procs_.size());
  }

  /// Runs every process body to completion; returns the final virtual
  /// time. Rethrows the first exception a process body threw.
  /// May be called repeatedly; virtual time continues from the last run.
  Time run(const std::function<void(Process&)>& body);

  /// Virtual clock (meaningful during and after run()).
  [[nodiscard]] Time now() const noexcept { return clock_; }

  /// Total scheduling events processed since construction (every
  /// wake/advance enqueued on the ready heap). The benchmark
  /// trajectory layer divides this by host wall-clock to report the
  /// engine's events-per-second as a host-performance metric.
  [[nodiscard]] std::uint64_t scheduled_events() const noexcept {
    return seq_;
  }

  /// Global multiplier applied to Process::charge measurements. Used
  /// to calibrate the simulated CPU speed against the host (e.g. to
  /// model the paper's Xeon on a slower build machine). Default 1.
  void set_charge_scale(double scale) noexcept { charge_scale_ = scale; }
  [[nodiscard]] double charge_scale() const noexcept { return charge_scale_; }

  /// Perturbs the tie-break order of events scheduled at the same
  /// virtual time: 0 (default) keeps FIFO scheduling order; any other
  /// value orders same-time events by a seeded bijective mix of the
  /// scheduling sequence number. Each salt is fully deterministic —
  /// the verification layer reruns programs under several salts to
  /// flush schedule-dependent message matches. Takes effect for
  /// events scheduled after the call; set it before run().
  void set_tiebreak_salt(std::uint64_t salt) noexcept {
    tiebreak_salt_ = salt;
  }
  [[nodiscard]] std::uint64_t tiebreak_salt() const noexcept {
    return tiebreak_salt_;
  }

  /// Installs an observer invoked after every Process::charge bills
  /// the virtual clock, with (process index, virtual begin, virtual
  /// end) of the billed interval. Observation only: runs on the
  /// charging process thread after the advance completed and must not
  /// call back into the scheduling API. Used by the tracing layer to
  /// attribute charged compute/crypto time; pass an empty function to
  /// uninstall. Set it before run().
  void set_charge_observer(std::function<void(int, Time, Time)> observer) {
    charge_observer_ = std::move(observer);
  }

  /// Installs a callback invoked when the engine detects a global
  /// deadlock (every live process parked on a Waitable, empty event
  /// queue); its return value is appended to the sim::Deadlock
  /// message. Runs on a process thread with the scheduler lock held:
  /// it must not call back into this engine's scheduling API (reading
  /// now()/size() is fine). Exceptions it throws are swallowed.
  void set_deadlock_explainer(std::function<std::string()> explainer) {
    deadlock_explainer_ = std::move(explainer);
  }

  /// Arms a permanent crash of process @p index: the first time that
  /// process would run at or after virtual time @p at, sim::Killed is
  /// thrown on its thread instead (compute that would cross the kill
  /// time is capped at it, and a parked process is woken at the kill
  /// time to die). Pass infinity to disarm. Set before run(); kill
  /// times persist across runs until overwritten.
  void set_kill_time(int index, Time at) {
    procs_.at(static_cast<std::size_t>(index))->kill_at_ = at;
  }
  [[nodiscard]] Time kill_time(int index) const {
    return procs_.at(static_cast<std::size_t>(index))->kill_at_;
  }

  /// True once the current run began tearing down after an error or
  /// deadlock (process bodies unwind concurrently from that point).
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_relaxed);
  }

 private:
  friend class Process;

  struct HeapEntry {
    Time at;
    std::uint64_t order;  ///< seq, or its salted mix (tie-break key)
    Process* proc;
    std::uint64_t epoch;  ///< proc->wake_epoch_ at schedule time
    bool operator>(const HeapEntry& o) const noexcept {
      return at != o.at ? at > o.at : order > o.order;
    }
  };

  using Lock = std::unique_lock<std::mutex>;

  // All *_locked functions require mu_ held.
  void schedule_locked(Process& p, Time at);
  void grant_next_locked();
  void block_self_locked(Process& self, Lock& lk);
  void finish_locked(Process& self, Lock& lk);
  void check_abort_locked() const;
  void check_kill_locked(const Process& self) const;

  void proc_advance(Process& self, Time dt);
  void proc_wait(Process& self, Waitable& w);
  bool proc_wait_for(Process& self, Waitable& w, Time timeout);
  void proc_notify(Process& self, Waitable& w, bool all);

  mutable std::mutex mu_;
  std::condition_variable main_cv_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      ready_;
  Time clock_ = 0.0;
  std::uint64_t seq_ = 0;
  int unfinished_ = 0;
  int waiting_on_conditions_ = 0;
  std::atomic<bool> aborted_{false};
  double charge_scale_ = 1.0;
  std::uint64_t tiebreak_salt_ = 0;
  std::function<std::string()> deadlock_explainer_;
  std::function<void(int, Time, Time)> charge_observer_;
  std::exception_ptr first_error_;
};

}  // namespace emc::sim
