#include "emc/sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "emc/common/timer.hpp"

namespace emc::sim {

// ---------------------------------------------------------------- Process

Time Process::now() const noexcept { return engine_->now(); }

void Process::advance(Time dt) {
  if (dt > 0.0) engine_->proc_advance(*this, dt);
}

void Process::yield() { engine_->proc_advance(*this, 0.0); }

double Process::charge_scale() const noexcept {
  return engine_->charge_scale();
}

void Process::wait(Waitable& w) { engine_->proc_wait(*this, w); }

bool Process::wait_for(Waitable& w, Time timeout) {
  return engine_->proc_wait_for(*this, w, timeout);
}

void Process::notify_one(Waitable& w) { engine_->proc_notify(*this, w, false); }

void Process::notify_all(Waitable& w) { engine_->proc_notify(*this, w, true); }

double Process::charge(const std::function<void()>& work, double scale) {
  // EMC_LINT_ALLOW(det-clock): measurement-mode billing — host time is
  // read once around the charged work and converted to virtual time;
  // deterministic runs use charge_scale()=0 or the analytic cost model.
  WallTimer timer;
  const Time begin = now();
  work();
  const double elapsed = timer.seconds();
  advance(elapsed * scale * engine_->charge_scale());
  if (engine_->charge_observer_) {
    engine_->charge_observer_(index_, begin, now());
  }
  return elapsed;
}

// ----------------------------------------------------------------- Engine

Engine::Engine(int num_processes) {
  procs_.reserve(static_cast<std::size_t>(num_processes));
  for (int i = 0; i < num_processes; ++i) {
    procs_.emplace_back(std::unique_ptr<Process>(new Process(*this, i)));
  }
}

Engine::~Engine() = default;

namespace {
/// SplitMix64 finalizer: bijective, so distinct sequence numbers keep
/// distinct (but permuted) tie-break keys under any salt.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

void Engine::schedule_locked(Process& p, Time at) {
  const std::uint64_t seq = seq_++;
  const std::uint64_t order =
      tiebreak_salt_ == 0 ? seq : mix64(seq ^ tiebreak_salt_);
  ready_.push(HeapEntry{std::max(at, clock_), order, &p, p.wake_epoch_});
}

void Engine::check_abort_locked() const {
  if (aborted_) throw Aborted{};
}

void Engine::check_kill_locked(const Process& self) const {
  if (clock_ >= self.kill_at_) throw Killed{self.index_, self.kill_at_};
}

void Engine::grant_next_locked() {
  while (!ready_.empty()) {
    const HeapEntry next = ready_.top();
    ready_.pop();
    // Stale entries can remain after an abort teardown woke the
    // process directly, or when a wait_for was both notified and
    // scheduled a timeout wake-up (the loser keeps the old epoch);
    // skip anything finished, granted, or from a previous epoch.
    if (next.proc->done_ || next.proc->granted_ ||
        next.epoch != next.proc->wake_epoch_) {
      continue;
    }
    clock_ = std::max(clock_, next.at);
    ++next.proc->wake_epoch_;
    next.proc->granted_ = true;
    next.proc->cv_.notify_one();
    return;
  }
  if (unfinished_ == 0) {
    main_cv_.notify_all();
    return;
  }
  if (!aborted_) {
    // Every unfinished process is parked on a Waitable and nothing is
    // scheduled: nobody can ever make progress.
    std::string what =
        "simulation deadlock: " + std::to_string(unfinished_) +
        " process(es) blocked on conditions with an empty event queue";
    if (deadlock_explainer_) {
      // The explainer (the correctness verifier) reconstructs who
      // waits on what; every process is parked, so its state is
      // frozen. Failures in the explainer must not mask the deadlock.
      try {
        const std::string extra = deadlock_explainer_();
        if (!extra.empty()) what += "\n" + extra;
      } catch (...) {
      }
    }
    first_error_ = std::make_exception_ptr(Deadlock(what));
    aborted_ = true;
  }
  // Abort teardown: wake every parked process so it unwinds.
  for (auto& p : procs_) {
    if (!p->done_ && !p->granted_) {
      p->granted_ = true;
      p->cv_.notify_one();
    }
  }
}

void Engine::block_self_locked(Process& self, Lock& lk) {
  self.cv_.wait(lk, [&] { return self.granted_; });
  self.granted_ = false;
  check_abort_locked();
}

void Engine::finish_locked(Process& self, Lock&) {
  self.done_ = true;
  --unfinished_;
  if (unfinished_ == 0) {
    main_cv_.notify_all();
  } else {
    grant_next_locked();
  }
}

void Engine::proc_advance(Process& self, Time dt) {
  Lock lk(mu_);
  check_abort_locked();
  check_kill_locked(self);
  // Compute that would cross the kill time is capped at it: the rank
  // dies at exactly kill_at_, not after finishing the burst.
  schedule_locked(self,
                  std::min(clock_ + std::max(dt, 0.0), self.kill_at_));
  grant_next_locked();
  block_self_locked(self, lk);
  check_kill_locked(self);
}

void Engine::proc_wait(Process& self, Waitable& w) {
  Lock lk(mu_);
  check_abort_locked();
  check_kill_locked(self);
  w.waiters_.push_back(&self);
  ++waiting_on_conditions_;
  if (self.kill_at_ != std::numeric_limits<Time>::infinity()) {
    // A doomed process must not park forever: wake it at its kill
    // time so it can die. If a notify wins first, the grant's epoch
    // bump makes this entry stale (the wait_for mechanism).
    schedule_locked(self, self.kill_at_);
  }
  grant_next_locked();
  block_self_locked(self, lk);
  if (clock_ >= self.kill_at_) {
    const auto it = std::find(w.waiters_.begin(), w.waiters_.end(), &self);
    if (it != w.waiters_.end()) {
      w.waiters_.erase(it);
      --waiting_on_conditions_;
    }
    throw Killed{self.index_, self.kill_at_};
  }
}

bool Engine::proc_wait_for(Process& self, Waitable& w, Time timeout) {
  Lock lk(mu_);
  check_abort_locked();
  check_kill_locked(self);
  w.waiters_.push_back(&self);
  ++waiting_on_conditions_;
  // Also schedule a timeout wake-up; whichever fires first wins and
  // the loser's heap entry goes stale via the epoch bump on grant.
  // A kill time before the timeout takes the wake-up slot instead.
  schedule_locked(
      self, std::min(clock_ + std::max(timeout, 0.0), self.kill_at_));
  grant_next_locked();
  block_self_locked(self, lk);
  const auto it = std::find(w.waiters_.begin(), w.waiters_.end(), &self);
  if (clock_ >= self.kill_at_) {
    if (it != w.waiters_.end()) {
      w.waiters_.erase(it);
      --waiting_on_conditions_;
    }
    throw Killed{self.index_, self.kill_at_};
  }
  if (it == w.waiters_.end()) return true;  // a notify released us first
  w.waiters_.erase(it);
  --waiting_on_conditions_;
  return false;  // timed out
}

void Engine::proc_notify(Process& self, Waitable& w, bool all) {
  Lock lk(mu_);
  check_abort_locked();
  (void)self;
  while (!w.waiters_.empty()) {
    Process* waiter = w.waiters_.front();
    w.waiters_.erase(w.waiters_.begin());
    --waiting_on_conditions_;
    schedule_locked(*waiter, clock_);
    if (!all) break;
  }
  // The notifier keeps the execution token; released waiters run when
  // it next blocks.
}

Time Engine::run(const std::function<void(Process&)>& body) {
  {
    Lock lk(mu_);
    aborted_ = false;
    first_error_ = nullptr;
    waiting_on_conditions_ = 0;
    unfinished_ = static_cast<int>(procs_.size());
    for (auto& p : procs_) {
      p->done_ = false;
      p->granted_ = false;
      schedule_locked(*p, clock_);
    }
  }

  for (auto& p : procs_) {
    Process* proc = p.get();
    proc->thread_ = std::thread([this, proc, &body] {
      {
        Lock lk(mu_);
        proc->cv_.wait(lk, [&] { return proc->granted_; });
        proc->granted_ = false;
        if (aborted_) {
          finish_locked(*proc, lk);
          return;
        }
      }
      try {
        body(*proc);
      } catch (const Aborted&) {
        // unwound by teardown; not an error in itself
      } catch (...) {
        Lock lk(mu_);
        if (!first_error_) first_error_ = std::current_exception();
        aborted_ = true;
        for (auto& q : procs_) {
          if (!q->done_ && q.get() != proc && !q->granted_) {
            q->granted_ = true;
            q->cv_.notify_one();
          }
        }
      }
      Lock lk(mu_);
      finish_locked(*proc, lk);
    });
  }

  {
    Lock lk(mu_);
    grant_next_locked();
    main_cv_.wait(lk, [&] { return unfinished_ == 0; });
  }
  for (auto& p : procs_) {
    if (p->thread_.joinable()) p->thread_.join();
  }

  Lock lk(mu_);
  // Drain any leftover heap entries from an aborted run.
  while (!ready_.empty()) ready_.pop();
  if (first_error_) {
    auto err = std::exchange(first_error_, nullptr);
    std::rethrow_exception(err);
  }
  return clock_;
}

}  // namespace emc::sim
