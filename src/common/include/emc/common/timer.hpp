// Wall-clock timing helper for calibration and host-side measurement.
//
// EMC_LINT_ALLOW_FILE(det-clock): this is the sanctioned host-clock
// primitive — it exists so BENCH JSON metrics and measurement-mode
// crypto billing can read wall time in one audited place. Simulated
// paths must charge virtual time instead (sim::Process::advance).
#pragma once

#include <chrono>

namespace emc {

/// Monotonic stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction/reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds since construction/reset.
  [[nodiscard]] double micros() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace emc
