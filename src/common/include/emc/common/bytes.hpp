// Byte-buffer utilities shared by every module: hex codecs, endian
// load/store, constant-time comparison, and buffer aliases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace emc {

/// Owning byte buffer used throughout the library for messages,
/// plaintexts, and ciphertexts.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view of bytes.
using BytesView = std::span<const std::uint8_t>;

/// Non-owning writable view of bytes.
using MutBytes = std::span<std::uint8_t>;

/// Encodes @p data as lowercase hex ("deadbeef").
[[nodiscard]] std::string to_hex(BytesView data);

/// Decodes a hex string (case-insensitive, even length, no separators).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// Builds a Bytes buffer from an ASCII string literal (no NUL).
[[nodiscard]] Bytes bytes_of(std::string_view text);

/// Constant-time equality check; returns false on length mismatch.
/// Used for authentication-tag comparison so timing does not leak
/// how many prefix bytes matched.
[[nodiscard]] bool ct_equal(BytesView a, BytesView b) noexcept;

/// XORs @p src into @p dst (dst[i] ^= src[i]); sizes must match.
void xor_into(MutBytes dst, BytesView src) noexcept;

/// Best-effort secure wipe that the optimizer may not elide.
void secure_zero(MutBytes data) noexcept;

// --- Endian helpers (byte order explicit, alignment-free) ---------------

[[nodiscard]] constexpr std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

[[nodiscard]] constexpr std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  return (std::uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}

[[nodiscard]] constexpr std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

[[nodiscard]] constexpr std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  return std::uint64_t{load_le32(p)} | (std::uint64_t{load_le32(p + 4)} << 32);
}

constexpr void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

constexpr void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

constexpr void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

constexpr void store_le64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_le32(p, static_cast<std::uint32_t>(v));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

/// Rotate-left on 32-bit words (AES key schedule, hashing).
[[nodiscard]] constexpr std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

/// Rotate-left on 64-bit words (xoshiro).
[[nodiscard]] constexpr std::uint64_t rotl64(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace emc
