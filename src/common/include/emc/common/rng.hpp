// Deterministic fast PRNG (xoshiro256++) for workload generation and
// property tests, plus a process-wide entropy source for nonces.
//
// Benchmarks and tests need reproducible byte streams; nonce sampling
// in secure_mpi needs per-use uniqueness. Both are served here so the
// crypto module never depends on platform randomness directly.
#pragma once

#include <cstdint>

#include "emc/common/bytes.hpp"

namespace emc {

/// xoshiro256++ 1.0 — fast, high-quality, 2^256-1 period.
/// Deterministically seeded via SplitMix64 so a single 64-bit seed
/// reproduces an entire experiment.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  /// Next 64 uniformly random bits.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform value in [0, bound) using Lemire rejection (bound > 0).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Fills @p out with random bytes.
  void fill(MutBytes out) noexcept;

  /// Convenience: a fresh buffer of @p n random bytes.
  [[nodiscard]] Bytes bytes(std::size_t n);

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() noexcept { return next(); }

 private:
  std::uint64_t s_[4];
};

/// Fills @p out from a process-wide nonce generator: xoshiro seeded
/// once from std::random_device plus a monotonically increasing
/// counter mixed into each draw, so two calls can never return the
/// same stream even under fork-like state duplication.
void random_nonce(MutBytes out);

}  // namespace emc
