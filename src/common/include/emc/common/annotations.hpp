#pragma once

// Sanctioned-exception markers for emc-lint (scripts/emc_lint.py).
//
// The analyzer enforces the project's crypto-hygiene and determinism
// invariants (docs/STATIC_ANALYSIS.md). Code that legitimately breaks
// a rule — the seed bootstrap that touches std::random_device, the
// host wall-clock timer behind BENCH metrics, the table-based cipher
// tiers the paper studies — must say so in-source, with a reason, so
// exceptions are audited rather than silently skipped:
//
//     EMC_LINT_ALLOW(det-rand, "one-shot seed bootstrap, outside "
//                              "simulated time");
//
// The macro expands to a no-op statement usable at namespace, class,
// or block scope. Comment forms work where a statement can't go (e.g.
// between a doc block and a declaration) or for whole files:
//
//     // EMC_LINT_ALLOW(det-clock): measurement-mode wall timer
//     // EMC_LINT_ALLOW_FILE(ct-index): models the table-based tier
//
// Every allow must carry a reason (EMC-LINT-BAD-ALLOW) and must
// actually suppress a finding (EMC-LINT-UNUSED-ALLOW); stale or
// reasonless annotations fail the lint gate just like violations.

#define EMC_LINT_ALLOW(rule, ...) \
  static_assert(true, "emc-lint allow: " #rule)
#define EMC_LINT_ALLOW_FILE(rule, ...) \
  static_assert(true, "emc-lint file allow: " #rule)
