// Streaming statistics used by the benchmark methodology (paper §V):
// mean, sample standard deviation, confidence intervals, and — for
// the rigorous measurement harness — order statistics (median,
// percentiles) with a deterministic bootstrap confidence interval.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emc {

/// Confidence interval [low, high] around a location estimate.
struct Interval {
  double low = 0.0;
  double high = 0.0;
};

/// Welford streaming accumulator for mean/variance. Samples are also
/// retained (benchmark sample counts are bounded by the stopping
/// rule's hard cap, so storage is trivial) so order statistics —
/// median, percentiles, bootstrap CIs — are available alongside the
/// streaming moments.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// stddev / mean; 0 when mean is 0.
  [[nodiscard]] double rel_stddev() const noexcept;

  /// Half-width of the confidence interval for the mean at the given
  /// two-sided confidence level (0.95 or 0.99), using Student-t
  /// critical values; 0 for fewer than 2 samples.
  [[nodiscard]] double ci_halfwidth(double confidence) const noexcept;

  /// Student-t confidence interval for the mean.
  [[nodiscard]] Interval mean_ci(double confidence) const noexcept;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// All samples, in insertion order.
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  /// Median (average of the middle pair for even counts); 0 when
  /// empty.
  [[nodiscard]] double median() const;

  /// Percentile @p p in [0,1] with linear interpolation between
  /// order statistics; 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  /// Percentile-bootstrap confidence interval for the median:
  /// @p resamples resamples-with-replacement, each reduced to its
  /// median, then the (alpha/2, 1-alpha/2) percentiles of those
  /// medians. The resampling RNG is seeded from @p seed only, so the
  /// interval is a pure function of (samples, confidence, resamples,
  /// seed) — same-seed reruns reproduce it bit-exactly. Degenerates
  /// to [median, median] for fewer than 3 samples.
  [[nodiscard]] Interval median_ci(
      double confidence = 0.95, std::size_t resamples = 200,
      std::uint64_t seed = 0x9E3779B97F4A7C15ull) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
};

/// Two-sided Student-t critical value for @p confidence (0.95 / 0.99)
/// with @p df degrees of freedom; falls back to the normal quantile
/// for df > 120. Exposed for testing.
[[nodiscard]] double t_critical(double confidence, std::size_t df) noexcept;

/// Summary of a full sample vector (convenience for reporters).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(const std::vector<double>& xs);

}  // namespace emc
