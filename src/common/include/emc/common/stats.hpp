// Streaming statistics used by the benchmark methodology (paper §V):
// mean, sample standard deviation, and confidence intervals.
#pragma once

#include <cstddef>
#include <vector>

namespace emc {

/// Welford streaming accumulator for mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// stddev / mean; 0 when mean is 0.
  [[nodiscard]] double rel_stddev() const noexcept;

  /// Half-width of the confidence interval for the mean at the given
  /// two-sided confidence level (0.95 or 0.99), using Student-t
  /// critical values; 0 for fewer than 2 samples.
  [[nodiscard]] double ci_halfwidth(double confidence) const noexcept;

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value for @p confidence (0.95 / 0.99)
/// with @p df degrees of freedom; falls back to the normal quantile
/// for df > 120. Exposed for testing.
[[nodiscard]] double t_critical(double confidence, std::size_t df) noexcept;

/// Summary of a full sample vector (convenience for reporters).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(const std::vector<double>& xs) noexcept;

}  // namespace emc
