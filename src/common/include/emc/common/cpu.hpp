// Runtime CPU feature detection used to dispatch between the
// hardware-accelerated (AES-NI + PCLMULQDQ) and software crypto cores.
#pragma once

namespace emc {

struct CpuFeatures {
  bool aesni = false;   ///< AES New Instructions
  bool pclmul = false;  ///< Carry-less multiply (GHASH)
  bool avx2 = false;    ///< 256-bit integer SIMD
};

/// Detects once (thread-safe) and caches.
[[nodiscard]] const CpuFeatures& cpu_features() noexcept;

/// True when the hardware AES-GCM path is usable on this host.
[[nodiscard]] bool has_aes_hardware() noexcept;

}  // namespace emc
