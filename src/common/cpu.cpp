#include "emc/common/cpu.hpp"

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <cpuid.h>
#define EMC_X86 1
#endif

namespace emc {

namespace {

CpuFeatures detect() noexcept {
  CpuFeatures f;
#ifdef EMC_X86
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.aesni = (ecx & (1u << 25)) != 0;
    f.pclmul = (ecx & (1u << 1)) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx & (1u << 5)) != 0;
  }
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures f = detect();
  return f;
}

bool has_aes_hardware() noexcept {
  const auto& f = cpu_features();
  return f.aesni && f.pclmul;
}

}  // namespace emc
