#include "emc/common/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "emc/common/rng.hpp"

namespace emc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  samples_.push_back(x);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::rel_stddev() const noexcept {
  return mean_ == 0.0 ? 0.0 : stddev() / mean_;
}

double RunningStats::ci_halfwidth(double confidence) const noexcept {
  if (n_ < 2) return 0.0;
  const double t = t_critical(confidence, n_ - 1);
  return t * stddev() / std::sqrt(static_cast<double>(n_));
}

Interval RunningStats::mean_ci(double confidence) const noexcept {
  const double hw = ci_halfwidth(confidence);
  return Interval{mean_ - hw, mean_ + hw};
}

namespace {

/// Linear-interpolation percentile of an already-sorted sample.
double sorted_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double sorted_median(const std::vector<double>& sorted) {
  return sorted_percentile(sorted, 0.5);
}

}  // namespace

double RunningStats::median() const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return sorted_median(sorted);
}

double RunningStats::percentile(double p) const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return sorted_percentile(sorted, p);
}

Interval RunningStats::median_ci(double confidence, std::size_t resamples,
                                 std::uint64_t seed) const {
  const double med = median();
  if (n_ < 3 || resamples == 0) return Interval{med, med};

  Xoshiro256 rng(seed);
  std::vector<double> medians;
  medians.reserve(resamples);
  std::vector<double> draw(n_);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < n_; ++i) {
      draw[i] = samples_[rng.next_below(n_)];
    }
    std::sort(draw.begin(), draw.end());
    medians.push_back(sorted_median(draw));
  }
  std::sort(medians.begin(), medians.end());
  const double alpha = 1.0 - std::clamp(confidence, 0.0, 1.0);
  return Interval{sorted_percentile(medians, alpha / 2.0),
                  sorted_percentile(medians, 1.0 - alpha / 2.0)};
}

namespace {

// Two-sided critical values; index = df, capped table then normal tail.
constexpr std::array<double, 31> kT95 = {
    0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
    2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
    2.042};
constexpr std::array<double, 31> kT99 = {
    0,      63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
    3.169,  3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861,
    2.845,  2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756,
    2.750};

}  // namespace

double t_critical(double confidence, std::size_t df) noexcept {
  const bool ninety_nine = confidence >= 0.985;
  const auto& table = ninety_nine ? kT99 : kT95;
  if (df == 0) df = 1;
  if (df < table.size()) return table[df];
  if (df <= 40) return ninety_nine ? 2.704 : 2.021;
  if (df <= 60) return ninety_nine ? 2.660 : 2.000;
  if (df <= 120) return ninety_nine ? 2.617 : 1.980;
  return ninety_nine ? 2.576 : 1.960;
}

Summary summarize(const std::vector<double>& xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return Summary{rs.count(), rs.mean(), rs.stddev(), rs.min(), rs.max()};
}

}  // namespace emc
