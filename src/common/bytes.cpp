#include "emc/common/bytes.hpp"

#include <atomic>
#include <stdexcept>

namespace emc {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

bool ct_equal(BytesView a, BytesView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = static_cast<std::uint8_t>(diff | (a[i] ^ b[i]));
  }
  return diff == 0;
}

void xor_into(MutBytes dst, BytesView src) noexcept {
  const std::size_t n = dst.size() < src.size() ? dst.size() : src.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void secure_zero(MutBytes data) noexcept {
  // volatile pointer defeats dead-store elimination well enough for a
  // research library; a release fence keeps the stores ordered.
  volatile std::uint8_t* p = data.data();
  for (std::size_t i = 0; i < data.size(); ++i) p[i] = 0;
  std::atomic_thread_fence(std::memory_order_release);
}

}  // namespace emc
