#include "emc/common/rng.hpp"

#include <atomic>
#include <mutex>
#include <random>

namespace emc {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl64(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  // Unbiased modulo via rejection of the truncated top range.
  const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t x = next();
    if (x >= threshold) return x % bound;
  }
}

double Xoshiro256::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Xoshiro256::fill(MutBytes out) noexcept {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    store_le64(out.data() + i, next());
    i += 8;
  }
  if (i < out.size()) {
    std::uint8_t tail[8];
    store_le64(tail, next());
    for (std::size_t j = 0; i < out.size(); ++i, ++j) out[i] = tail[j];
  }
}

Bytes Xoshiro256::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

void random_nonce(MutBytes out) {
  static std::mutex mu;
  static Xoshiro256 rng = [] {
    // EMC_LINT_ALLOW(det-rand): one-shot seed bootstrap for the
    // process-global nonce stream; runs outside simulated time and
    // never feeds an experiment result (NonceMode::kCounter paths
    // bypass this entirely).
    std::random_device rd;
    const std::uint64_t seed =
        (std::uint64_t{rd()} << 32) ^ std::uint64_t{rd()};
    return Xoshiro256(seed);
  }();
  static std::atomic<std::uint64_t> counter{0};

  const std::uint64_t serial = counter.fetch_add(1, std::memory_order_relaxed);
  std::scoped_lock lock(mu);
  rng.fill(out);
  // Mix the serial into the low bytes: even if the generator state were
  // ever duplicated, distinct serials keep the nonces distinct.
  std::uint8_t mix[8];
  store_le64(mix, serial);
  for (std::size_t i = 0; i < out.size() && i < 8; ++i) out[i] ^= mix[i];
}

}  // namespace emc
