#include "emc/mpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <memory>
#include <utility>

#include "emc/mpi/validate.hpp"

namespace emc::mpi {

namespace detail {
namespace {

bool matches(const Envelope& env, const PendingRecv& pr) {
  return env.comm_epoch == pr.want_epoch &&
         (pr.want_src == kAnySource || pr.want_src == env.src) &&
         (pr.want_tag == kAnyTag || pr.want_tag == env.tag);
}

/// Shared teardown reporting of both request kinds: a request
/// destroyed without ever being waited on is a leak — unless the
/// stack is unwinding (simulation teardown or a caller exception) or
/// the request's communicator epoch was revoked (recovery abandons
/// in-flight requests by design), in which case the verifier is only
/// told to drop its tracking entry.
void finish_tracked_request(verify::Verifier* vrf, std::uint64_t vid,
                            bool waited, ft::State* ft, std::uint64_t epoch) {
  if (vrf == nullptr || vid == 0) return;
  const bool benign = waited || std::uncaught_exceptions() > 0 ||
                      (ft != nullptr && ft->revoked(epoch));
  vrf->on_request_finish(vid, benign ? verify::ReqFinish::kDropped
                                     : verify::ReqFinish::kLeaked);
}

}  // namespace

/// Request state of a non-blocking send.
struct SendState final : RequestState {
  std::unique_ptr<RndvHandshake> handshake;  // null on the eager path
  int dst = 0;
  int tag = 0;
  // Verification bookkeeping (vrf null when verification is off).
  verify::Verifier* vrf = nullptr;
  std::uint64_t vid = 0;
  bool waited = false;
  ft::State* ft = nullptr;
  std::uint64_t epoch = 0;

  ~SendState() override { finish_tracked_request(vrf, vid, waited, ft, epoch); }
};

/// Request state of a non-blocking receive. Deregisters itself from
/// the posted queue if the request is abandoned before matching.
struct RecvState final : RequestState {
  PendingRecv pr;
  Mailbox* mailbox = nullptr;
  verify::Verifier* vrf = nullptr;
  std::uint64_t vid = 0;
  bool waited = false;
  ft::State* ft = nullptr;
  std::uint64_t epoch = 0;

  ~RecvState() override {
    if (mailbox != nullptr && !pr.matched) {
      std::erase(mailbox->posted, &pr);
    }
    finish_tracked_request(vrf, vid, waited, ft, epoch);
  }
};

}  // namespace detail

using detail::Envelope;
using detail::PendingRecv;
using detail::RecvState;
using detail::RndvHandshake;
using detail::SendState;

Comm::Comm(World& world, sim::Process& proc)
    : Comm(world, proc, {}, 0, false) {}

Comm::Comm(World& world, sim::Process& proc, std::vector<int> group,
           std::uint64_t epoch, bool recovery)
    : world_(&world),
      proc_(&proc),
      vrf_(world.verifier()),
      arq_(world.reliability()),
      trc_(world.trace()),
      ft_(world.ft_state()),
      group_(std::move(group)),
      local_rank_(proc.index()),
      epoch_(epoch),
      recovery_(recovery) {
  if (group_.empty()) return;
  int local = -1;
  for (std::size_t i = 0; i < group_.size(); ++i) {
    const int w = group_[i];
    if (w < 0 || w >= world_->size()) {
      throw MpiError("Comm group: world rank " + std::to_string(w) +
                     " out of range");
    }
    if (i > 0 && group_[i - 1] >= w) {
      throw MpiError("Comm group must be strictly ascending world ranks");
    }
    if (w == proc_->index()) local = static_cast<int>(i);
  }
  if (local < 0) {
    throw MpiError("Comm group does not contain the calling rank " +
                   std::to_string(proc_->index()));
  }
  local_rank_ = local;
}

int Comm::to_local(int world_rank) const {
  if (group_.empty()) {
    return world_rank >= 0 && world_rank < world_->size() ? world_rank : -1;
  }
  const auto it = std::lower_bound(group_.begin(), group_.end(), world_rank);
  return it != group_.end() && *it == world_rank
             ? static_cast<int>(it - group_.begin())
             : -1;
}

void Comm::ft_guard(bool post) {
  if (ft_ == nullptr || recovery_ || !ft_->revoked(epoch_)) return;
  if (post) {
    const std::uint64_t n = ft_->note_post_after_revoke(epoch_, wrank());
    if (n >= 2 && vrf_ != nullptr) {
      vrf_->on_post_after_revoke(wrank(), epoch_, n);
    }
  }
  ft_->throw_revoked(epoch_);
}

template <typename F>
decltype(auto) Comm::guarded(F&& f) {
  if (ft_ == nullptr || recovery_) return f();
  try {
    return f();
  } catch (const reliable::PeerUnreachable& e) {
    // First structured observation of a dead peer revokes the epoch;
    // every later or pending operation on it fails fast with the
    // RevokedError below instead of rediscovering the failure.
    const int dead = e.src == wrank() ? e.dst : e.src;
    ft_->revoke(epoch_, dead, proc_->now());
    ft_->throw_revoked(epoch_);
  }
}

void Comm::sleep_until(double t) { proc_->advance(t - proc_->now()); }

void Comm::trace_span(trace::Category cat, double begin, int peer,
                      std::uint64_t bytes) {
  if (trc_ != nullptr && proc_->now() > begin) {
    trc_->record(wrank(), cat, begin, proc_->now(), peer, bytes);
  }
}

void Comm::sleep_traced(double arrival, double queue_delay,
                        trace::Category cat, int peer, std::uint64_t bytes,
                        double relay_delay) {
  if (trc_ == nullptr) {
    sleep_until(arrival);
    return;
  }
  const double begin = proc_->now();
  sleep_until(arrival);
  if (arrival <= begin) return;
  const double mid =
      queue_delay > 0.0 ? std::min(arrival, begin + queue_delay) : begin;
  if (mid > begin) {
    trc_->record(wrank(), trace::Category::kNicQueue, begin, mid, peer, bytes);
  }
  // Store-and-forward time past the first hop is the relay's doing,
  // not this link's: attribute it separately so hop-count sweeps show
  // where the latency went.
  const double relay_begin =
      relay_delay > 0.0 ? std::max(mid, arrival - relay_delay) : arrival;
  if (relay_begin > mid) trc_->record(wrank(), cat, mid, relay_begin, peer, bytes);
  if (arrival > relay_begin) {
    trc_->record(wrank(), trace::Category::kRelayForward, relay_begin, arrival,
                 peer, bytes);
  }
}

void Comm::wait_timer(double dt) {
  if (dt <= 0.0) return;
  const double begin = proc_->now();
  // A private waitable nobody notifies: wait_for always times out, so
  // this is a pure virtual-time timer (the ARQ backoff clock).
  sim::Waitable timer;
  (void)proc_->wait_for(timer, dt);
  trace_span(trace::Category::kArqRetransmit, begin);
}

void Comm::note_collective(verify::CollKind kind, int root,
                           std::size_t bytes) {
  if (vrf_ == nullptr) return;
  // Mix the epoch into the verifier's collective key so invocation N
  // of a shrunken communicator never cross-checks against invocation
  // N of the world communicator (epoch 0 keeps the bare sequence).
  const std::uint64_t key =
      epoch_ == 0 ? coll_seq_ : verify::splitmix64(epoch_) + coll_seq_;
  vrf_->on_collective(wrank(), key, kind, root, bytes);
}

int Comm::next_coll_tag() {
  // 64 internal tag slots per collective invocation (one per round).
  // The sequence walks the whole [2^28, 2^31) internal-tag range and
  // fails loudly when it runs out: a silent wrap would let tags of
  // long-separated collectives collide and cross-match.
  if (coll_seq_ >= kMaxCollectives) {
    throw MpiError("collective tag space exhausted after " +
                   std::to_string(coll_seq_) +
                   " collectives on this communicator");
  }
  const auto base = (std::uint32_t{1} << 28) + coll_seq_ * 64;
  ++coll_seq_;
  return static_cast<int>(base);
}

// ------------------------------------------------------------- matching

void Comm::post_envelope(int dst, std::unique_ptr<Envelope> env) {
  detail::Mailbox& box = world_->mailbox(to_world(dst));
  for (auto it = box.posted.begin(); it != box.posted.end(); ++it) {
    PendingRecv* pr = *it;
    if (detail::matches(*env, *pr)) {
      box.posted.erase(it);
      pr->matched = std::move(env);
      proc_->notify_all(pr->cond);
      return;
    }
  }
  box.unexpected.push_back(std::move(env));
}

void Comm::deliver_eager(int dst, std::unique_ptr<Envelope> env) {
  const int wd = to_world(dst);
  net::FaultInjector* faults =
      dst == rank() ? nullptr : world_->fabric().faults_for(wrank(), wd);
  // The ARQ channel takes over whenever faults can strike OR it owns
  // the wire itself (clocked transport / routed path — engaged()).
  if (arq_ != nullptr && dst != rank() &&
      (faults != nullptr || arq_->engaged(wrank(), wd))) {
    deliver_reliable(dst, std::move(env));
    return;
  }
  if (faults == nullptr || dst == rank()) {
    post_envelope(dst, std::move(env));
    return;
  }
  // Unreliable routed traffic draws its fault end-to-end (one draw for
  // the whole path — per-hop granularity needs the ARQ layer).
  const net::FaultDecision d = faults->next(wrank(), wd, env->payload.size());
  switch (d.kind) {
    case net::FaultKind::kDrop:
      return;  // the wire ate it; nothing ever arrives
    case net::FaultKind::kCorrupt:
      env->payload[d.position] ^= d.flip_mask;
      break;
    case net::FaultKind::kTruncate:
      env->payload.resize(d.new_length);
      break;
    case net::FaultKind::kDuplicate: {
      auto copy = std::make_unique<Envelope>(*env);
      copy->seq = world_->next_seq();
      // The duplicate crosses the wire again behind the original.
      const net::PathTimes extra = world_->fabric().reserve_route(
          wrank(), wd, copy->payload.size(), env->arrival,
          relay_policy_.hop_delay(copy->payload.size()));
      copy->arrival = extra.arrival;
      copy->relay_delay = extra.relay_delay;
      post_envelope(dst, std::move(env));
      post_envelope(dst, std::move(copy));
      return;
    }
    case net::FaultKind::kDelay:
      env->arrival += d.delay_seconds;
      break;
    case net::FaultKind::kNone:
    case net::FaultKind::kRankCrash:  // not a wire fault; never drawn
      break;
  }
  post_envelope(dst, std::move(env));
}

void Comm::deliver_reliable(int dst, std::unique_ptr<Envelope> env) {
  const int wd = to_world(dst);
  if (arq_->link_dead(wrank(), wd)) {
    throw reliable::PeerUnreachable(wrank(), wd, 0);
  }
  // Collective-internal traffic (tags >= 2^28) is link-checksummed, so
  // corruption is caught and retransmitted below the MPI layer; user
  // point-to-point payloads defer integrity to the upper layer.
  const bool checksummed = env->tag >= (1 << 28);
  const bool channel_wire = arq_->engaged(wrank(), wd);
  // A pipelined chunk may not hit the wire before its helper core
  // finished sealing it; 0 (every non-chunk path) leaves the send
  // time untouched.
  const double send_time = std::max(proc_->now(), env->wire_not_before);
  const reliable::Delivery d =
      arq_->deliver(wrank(), wd, env->payload.size(), send_time,
                    env->arrival, checksummed, relay_policy_);
  env->arq_seq = d.seq;
  env->arq_transmissions = d.transmissions;
  switch (d.result) {
    case reliable::Delivery::Result::kDelivered:
      env->arrival = d.arrival;
      if (channel_wire) env->nic_queue = d.queue_delay;
      env->relay_delay = d.relay_delay;
      post_envelope(dst, std::move(env));
      return;
    case reliable::Delivery::Result::kDeliveredDamaged:
      // The payload stays clean in the mailbox (it doubles as the
      // sender's retransmit buffer); the damage is applied when the
      // receiver copies it out, and undone again if the upper layer
      // NACKs (Comm::recover_damaged_recv).
      env->arrival = d.arrival;
      if (channel_wire) env->nic_queue = d.queue_delay;
      env->relay_delay = d.relay_delay;
      env->damage = d.damage;
      post_envelope(dst, std::move(env));
      return;
    case reliable::Delivery::Result::kDeadLink: {
      // Graceful degradation: tell the verifier, leave a tombstone so
      // the receiver fails fast instead of timing out, and raise the
      // structured error on the sender.
      if (vrf_ != nullptr) {
        vrf_->on_peer_unreachable(wrank(), wd, d.transmissions);
      }
      const int src = wrank();
      const std::uint32_t attempts = d.transmissions;
      env->poisoned = true;
      env->payload.clear();
      post_envelope(dst, std::move(env));
      throw reliable::PeerUnreachable(src, wd, attempts);
    }
  }
}

void Comm::await_handshake(RndvHandshake& handshake, int dst, int tag,
                           std::uint64_t bytes) {
  const double wait_begin = proc_->now();
  {
    const verify::Verifier::BlockScope block(
        vrf_, wrank(), {verify::BlockKind::kRndvSend, dst, tag});
    if (ft_ == nullptr) {
      while (!handshake.completed) proc_->wait(handshake.done);
    } else {
      // Bounded park: if the receiver dies (or the epoch is revoked
      // under us) nobody will ever complete the handshake — poll the
      // failure detector instead of blocking forever. Abandoning the
      // handshake is safe: the receiver re-checks revocation and the
      // sender's ground-truth crash state before dereferencing any
      // rendezvous envelope, and virtual time is globally monotone,
      // so a receiver running before the revocation still finds the
      // handshake (and the send buffer) intact.
      const int wd = to_world(dst);
      const double poll = ft_->config().detect_timeout;
      while (!handshake.completed) {
        if (!recovery_ && ft_->revoked(epoch_)) {
          trace_span(trace::Category::kSyncWait, wait_begin, dst, bytes);
          ft_->throw_revoked(epoch_);
        }
        if (ft_->detectable(wd, proc_->now())) {
          trace_span(trace::Category::kSyncWait, wait_begin, dst, bytes);
          throw reliable::PeerUnreachable(wrank(), wd, 0);
        }
        (void)proc_->wait_for(handshake.done, poll);
      }
    }
  }
  trace_span(trace::Category::kSyncWait, wait_begin, dst, bytes);
  const double drain_begin = proc_->now();
  sleep_until(handshake.sender_complete);
  // Time the sender's NIC still needs to drain the pulled payload.
  trace_span(trace::Category::kNicQueue, drain_begin, dst, bytes);
}

// ------------------------------------------------------------ send side

void Comm::send_internal(BytesView data, int dst, int tag) {
  validate_peer(dst, size());
  ft_guard(/*post=*/true);
  const int wd = to_world(dst);
  const net::NetworkProfile& prof = world_->fabric().profile(wrank(), wd);
  const bool self = dst == rank();
  const double now = proc_->now();

  if (self || data.size() <= prof.eager_threshold) {
    proc_->advance(prof.send_overhead +
                   static_cast<double>(data.size()) / prof.copy_bandwidth);
    trace_span(trace::Category::kCopy, now, dst, data.size());
    auto env = std::make_unique<Envelope>();
    env->src = rank();
    env->world_src = wrank();
    env->comm_epoch = epoch_;
    env->tag = tag;
    env->seq = world_->next_seq();
    env->payload.assign(data.begin(), data.end());
    if (self || arq_resolves_wire(wd)) {
      // Self-sends never touch the wire; engaged ARQ transports
      // (clocked / routed) reserve the wire inside deliver_reliable,
      // which then fills arrival/queue/relay from the Delivery.
      env->arrival = proc_->now();
    } else {
      const net::PathTimes path = world_->fabric().reserve_route(
          wrank(), wd, data.size(), proc_->now(),
          relay_policy_.hop_delay(data.size()));
      env->arrival = path.arrival;
      env->nic_queue = path.queue_delay;
      env->relay_delay = path.relay_delay;
    }
    deliver_eager(dst, std::move(env));
    return;
  }

  // Rendezvous: announce via RTS, wait for the receiver to pull.
  proc_->advance(prof.send_overhead);
  trace_span(trace::Category::kCopy, now, dst, data.size());
  RndvHandshake handshake;
  auto env = std::make_unique<Envelope>();
  env->src = rank();
  env->world_src = wrank();
  env->comm_epoch = epoch_;
  env->tag = tag;
  env->seq = world_->next_seq();
  env->rendezvous = true;
  env->rndv_data = data;
  env->handshake = &handshake;
  env->arrival = world_->fabric()
                     .reserve_route(wrank(), wd, world_->config().ctrl_bytes,
                                    std::max(now, proc_->now()),
                                    relay_policy_.hop_delay(
                                        world_->config().ctrl_bytes))
                     .arrival;
  post_envelope(dst, std::move(env));
  await_handshake(handshake, dst, tag, data.size());
}

void Comm::send(BytesView data, int dst, int tag) {
  validate_user_tag(tag);
  guarded([&] { send_internal(data, dst, tag); });
}

void Comm::send_chunk(BytesView data, int dst, int tag,
                      double wire_not_before) {
  validate_user_tag(tag);
  guarded([&] {
    validate_peer(dst, size());
    ft_guard(/*post=*/true);
    const int wd = to_world(dst);
    const net::NetworkProfile& prof = world_->fabric().profile(wrank(), wd);
    const bool self = dst == rank();
    const double begin = proc_->now();
    // Always the eager shape, whatever the chunk size: a chunk is a
    // self-contained sealed frame, and a rendezvous handshake would
    // serialize the pipeline it exists to create. The sender's clock
    // advances only by CPU overhead + copy; the wire is reserved (or
    // ARQ-resolved) no earlier than the chunk's seal-completion time,
    // which is how encryption hides behind transmission.
    proc_->advance(prof.send_overhead +
                   static_cast<double>(data.size()) / prof.copy_bandwidth);
    trace_span(trace::Category::kCopy, begin, dst, data.size());
    auto env = std::make_unique<Envelope>();
    env->src = rank();
    env->world_src = wrank();
    env->comm_epoch = epoch_;
    env->tag = tag;
    env->seq = world_->next_seq();
    env->payload.assign(data.begin(), data.end());
    env->wire_not_before = wire_not_before;
    if (self || arq_resolves_wire(wd)) {
      // Engaged ARQ transports reserve the wire in deliver_reliable,
      // which clamps to wire_not_before itself.
      env->arrival = std::max(proc_->now(), wire_not_before);
    } else {
      const net::PathTimes path = world_->fabric().reserve_route(
          wrank(), wd, data.size(), std::max(proc_->now(), wire_not_before),
          relay_policy_.hop_delay(data.size()));
      env->arrival = path.arrival;
      env->nic_queue = path.queue_delay;
      env->relay_delay = path.relay_delay;
    }
    deliver_eager(dst, std::move(env));
  });
}

Request Comm::isend_internal(BytesView data, int dst, int tag) {
  validate_peer(dst, size());
  ft_guard(/*post=*/true);
  const int wd = to_world(dst);
  const net::NetworkProfile& prof = world_->fabric().profile(wrank(), wd);
  const bool self = dst == rank();
  auto state = std::make_unique<SendState>();
  state->dst = dst;
  state->tag = tag;
  state->ft = ft_;
  state->epoch = epoch_;
  if (vrf_ != nullptr) {
    state->vrf = vrf_;
    state->vid = vrf_->on_request_start(wrank(), verify::ReqKind::kSend, dst,
                                        tag, data.data(), data.size());
  }

  const double begin = proc_->now();
  if (self || data.size() <= prof.eager_threshold) {
    proc_->advance(prof.send_overhead +
                   static_cast<double>(data.size()) / prof.copy_bandwidth);
    trace_span(trace::Category::kCopy, begin, dst, data.size());
    auto env = std::make_unique<Envelope>();
    env->src = rank();
    env->world_src = wrank();
    env->comm_epoch = epoch_;
    env->tag = tag;
    env->seq = world_->next_seq();
    env->payload.assign(data.begin(), data.end());
    if (self || arq_resolves_wire(wd)) {
      env->arrival = proc_->now();
    } else {
      const net::PathTimes path = world_->fabric().reserve_route(
          wrank(), wd, data.size(), proc_->now(),
          relay_policy_.hop_delay(data.size()));
      env->arrival = path.arrival;
      env->nic_queue = path.queue_delay;
      env->relay_delay = path.relay_delay;
    }
    deliver_eager(dst, std::move(env));
    return Request(std::move(state));
  }

  proc_->advance(prof.send_overhead);
  trace_span(trace::Category::kCopy, begin, dst, data.size());
  state->handshake = std::make_unique<RndvHandshake>();
  auto env = std::make_unique<Envelope>();
  env->src = rank();
  env->world_src = wrank();
  env->comm_epoch = epoch_;
  env->tag = tag;
  env->seq = world_->next_seq();
  env->rendezvous = true;
  env->rndv_data = data;
  env->handshake = state->handshake.get();
  env->arrival = world_->fabric()
                     .reserve_route(wrank(), wd, world_->config().ctrl_bytes,
                                    proc_->now(),
                                    relay_policy_.hop_delay(
                                        world_->config().ctrl_bytes))
                     .arrival;
  post_envelope(dst, std::move(env));
  return Request(std::move(state));
}

Request Comm::isend(BytesView data, int dst, int tag) {
  validate_user_tag(tag);
  return guarded([&] { return isend_internal(data, dst, tag); });
}

// ------------------------------------------------------------ recv side

Request Comm::irecv_internal(MutBytes buf, int src, int tag) {
  validate_recv_peer(src, size());
  ft_guard(/*post=*/true);
  auto state = std::make_unique<RecvState>();
  state->pr.want_src = src;
  state->pr.want_tag = tag;
  state->pr.want_epoch = epoch_;
  state->pr.buf = buf;
  state->ft = ft_;
  state->epoch = epoch_;

  detail::Mailbox& box = world_->mailbox(wrank());
  bool matched = false;
  for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
    if (detail::matches(**it, state->pr)) {
      state->pr.matched = std::move(*it);
      box.unexpected.erase(it);
      matched = true;
      break;
    }
  }
  if (!matched) {
    state->mailbox = &box;
    box.posted.push_back(&state->pr);
  }
  if (vrf_ != nullptr) {
    state->vrf = vrf_;
    state->vid = vrf_->on_request_start(wrank(), verify::ReqKind::kRecv, src,
                                        tag, buf.data(), buf.size());
  }
  return Request(std::move(state));
}

Request Comm::irecv(MutBytes buf, int src, int tag) {
  validate_recv_tag(tag);
  return guarded([&] { return irecv_internal(buf, src, tag); });
}

Status Comm::complete_recv(PendingRecv& pr) {
  const double timeout = world_->config().recv_timeout;
  const double wait_begin = proc_->now();
  {
    const verify::Verifier::BlockScope block(
        vrf_, wrank(), {verify::BlockKind::kRecv, pr.want_src, pr.want_tag});
    if (ft_ == nullptr) {
      while (!pr.matched) {
        if (timeout <= 0.0) {
          proc_->wait(pr.cond);
        } else if (!proc_->wait_for(pr.cond, timeout)) {
          throw MpiError("receive timed out after " + std::to_string(timeout) +
                         " virtual seconds (message dropped or sender "
                         "failed)");
        }
      }
    } else {
      // Bounded wait: poll at the failure detector's granularity so a
      // receive from a dead rank (or on a revoked epoch) fails fast
      // instead of hanging. recv_timeout still applies on top, rounded
      // up to the polling granularity.
      const double poll = ft_->config().detect_timeout;
      while (!pr.matched) {
        if (!recovery_ && ft_->revoked(epoch_)) ft_->throw_revoked(epoch_);
        if (pr.want_src != kAnySource) {
          const int ws = to_world(pr.want_src);
          if (ws != wrank() && ft_->detectable(ws, proc_->now())) {
            throw reliable::PeerUnreachable(ws, wrank(), 0);
          }
        } else {
          bool someone_alive = false;
          for (int i = 0; i < size(); ++i) {
            if (i != rank() && !ft_->detectable(to_world(i), proc_->now())) {
              someone_alive = true;
              break;
            }
          }
          if (!someone_alive) {
            throw reliable::PeerUnreachable(-1, wrank(), 0);
          }
        }
        if (timeout > 0.0 && proc_->now() - wait_begin >= timeout) {
          throw MpiError("receive timed out after " + std::to_string(timeout) +
                         " virtual seconds (message dropped or sender "
                         "failed)");
        }
        (void)proc_->wait_for(pr.cond, poll);
      }
      // Matched, but the epoch may have been revoked while parked:
      // pending operations on a revoked communicator fail fast, and
      // doing so before touching the envelope is what makes sender
      // abandonment memory-safe (see await_handshake).
      if (!recovery_ && ft_->revoked(epoch_)) {
        pr.matched.reset();
        ft_->throw_revoked(epoch_);
      }
    }
  }
  trace_span(trace::Category::kSyncWait, wait_begin, pr.want_src);
  Envelope& env = *pr.matched;
  const net::NetworkProfile& prof =
      world_->fabric().profile(env.world_src, wrank());

  Status status;
  status.source = env.src;
  status.tag = env.tag;

  if (env.poisoned) {
    // Dead-link tombstone: the sender's retry budget ran out mid-
    // delivery. Fail the receive fast with the structured error
    // instead of letting it block until the timeout.
    const int src = env.world_src;
    const std::uint64_t attempts = env.arq_transmissions;
    pr.matched.reset();
    throw reliable::PeerUnreachable(src, wrank(), attempts);
  }

  if (ft_ != nullptr && env.rendezvous &&
      ft_->crashed_by(env.world_src, proc_->now())) {
    // Ground-truth crash check (no detection delay): the sender died,
    // so its handshake and the buffer behind rndv_data are gone —
    // fail the pull without dereferencing either.
    const int src = env.world_src;
    pr.matched.reset();
    throw reliable::PeerUnreachable(src, wrank(), 0);
  }

  if (!env.rendezvous) {
    if (env.payload.size() > pr.buf.size()) {
      throw MpiError("receive buffer too small: need " +
                     std::to_string(env.payload.size()) + " bytes, have " +
                     std::to_string(pr.buf.size()));
    }
    if (env.arq_transmissions > 1) {
      // The wire time includes at least one ARQ retransmission
      // dialogue; attribute the whole parked interval to recovery.
      const double begin = proc_->now();
      sleep_until(env.arrival);
      trace_span(trace::Category::kArqRetransmit, begin, env.src,
                 env.payload.size());
    } else {
      sleep_traced(env.arrival, env.nic_queue, trace::Category::kWire,
                   env.src, env.payload.size(), env.relay_delay);
    }
    const double copy_begin = proc_->now();
    proc_->advance(prof.recv_overhead +
                   static_cast<double>(env.payload.size()) /
                       prof.copy_bandwidth);
    trace_span(trace::Category::kCopy, copy_begin, env.src,
               env.payload.size());
    if (!env.payload.empty()) {
      std::memcpy(pr.buf.data(), env.payload.data(), env.payload.size());
    }
    // Exposure accounting: every relay this payload crossed could
    // observe it. What that means is the secure layer's call
    // (plaintext under hop-trusted relays, sealed bytes end-to-end).
    world_->fabric().note_relay_exposure(
        world_->fabric().relay_count(env.world_src, wrank()));
    status.bytes = env.payload.size();
    if (arq_ != nullptr && env.damage.kind == net::FaultKind::kCorrupt) {
      // Apply the in-flight damage at copy-out and stash the clean
      // payload: it models the sender's retransmit buffer, which
      // end-to-end NACK recovery (recover_damaged_recv) replays from.
      pr.buf[env.damage.position] ^= env.damage.flip_mask;
      reliable::RetransmitStash& st = arq_->stash(wrank());
      st.valid = true;
      st.src = env.src;
      st.tag = env.tag;
      st.seq = env.arq_seq;
      st.transmissions = env.arq_transmissions;
      st.clean = std::move(env.payload);
    }
  } else if (arq_ != nullptr && env.src != rank() &&
             world_->fabric().faults_for(env.world_src, wrank()) != nullptr) {
    status = complete_rndv_reliable(pr);
    return status;
  } else {
    if (env.rndv_data.size() > pr.buf.size()) {
      throw MpiError("receive buffer too small for rendezvous payload");
    }
    // CTS back to the sender, then an RDMA-style pull of the payload
    // through the sender's egress NIC. The sender CPU does not
    // participate (zero-copy), so only its NIC is reserved.
    const double handshake_start = std::max(proc_->now(), env.arrival);
    const net::PathTimes cts = world_->fabric().reserve_route(
        wrank(), env.world_src, world_->config().ctrl_bytes, handshake_start,
        relay_policy_.hop_delay(world_->config().ctrl_bytes));
    const net::PathTimes data = world_->fabric().reserve_route(
        env.world_src, wrank(), env.rndv_data.size(), cts.arrival,
        relay_policy_.hop_delay(env.rndv_data.size()));
    // Fault the pulled data in place. Losing the transfer outright
    // would leave the sender parked on the handshake, so the injector
    // degrades drop/duplicate to corruption on this path.
    std::size_t deliver_len = env.rndv_data.size();
    net::FaultDecision fault;
    if (net::FaultInjector* faults =
            world_->fabric().faults_for(env.world_src, wrank());
        faults != nullptr && env.src != rank()) {
      fault = faults->next(env.world_src, wrank(), deliver_len,
                           /*allow_loss=*/false);
    }
    if (fault.kind == net::FaultKind::kTruncate) deliver_len = fault.new_length;
    if (deliver_len > 0) {
      std::memcpy(pr.buf.data(), env.rndv_data.data(), deliver_len);
    }
    if (fault.kind == net::FaultKind::kCorrupt) {
      pr.buf[fault.position] ^= fault.flip_mask;
    }
    status.bytes = deliver_len;
    env.handshake->sender_complete = data.egress_done;
    env.handshake->completed = true;
    proc_->notify_all(env.handshake->done);
    // A latency spike on the pull delays the receiver, not the sender
    // (whose NIC finished at egress_done either way). Fault delays are
    // attributed to the wire span like the latency they model.
    sleep_traced(fault.kind == net::FaultKind::kDelay
                     ? data.arrival + fault.delay_seconds
                     : data.arrival,
                 cts.queue_delay + data.queue_delay, trace::Category::kWire,
                 env.src, env.rndv_data.size(), data.relay_delay);
    world_->fabric().note_relay_exposure(
        world_->fabric().relay_count(env.world_src, wrank()));
    const double copy_begin = proc_->now();
    proc_->advance(prof.recv_overhead);
    trace_span(trace::Category::kCopy, copy_begin, env.src,
               env.rndv_data.size());
  }
  pr.matched.reset();
  return status;
}

Status Comm::complete_rndv_reliable(PendingRecv& pr) {
  Envelope& env = *pr.matched;
  const int ws = env.world_src;
  const net::NetworkProfile& prof = world_->fabric().profile(ws, wrank());
  Status status;
  status.source = env.src;
  status.tag = env.tag;
  if (env.rndv_data.size() > pr.buf.size()) {
    throw MpiError("receive buffer too small for rendezvous payload");
  }
  const std::size_t len = env.rndv_data.size();
  net::FaultInjector* faults = world_->fabric().faults_for(ws, wrank());
  reliable::ReliabilityStats& st = arq_->stats_mut();

  if (arq_->link_dead(ws, wrank())) {
    // The pull link is already dead: unpark the sender (its buffer is
    // free — nothing will ever read it) and fail the receive.
    env.handshake->sender_complete = proc_->now();
    env.handshake->completed = true;
    proc_->notify_all(env.handshake->done);
    pr.matched.reset();
    throw reliable::PeerUnreachable(ws, wrank(), 0);
  }

  // Receiver-driven ARQ over the RDMA pull: the CTS names the pull
  // sequence; lost pulls are re-issued when the receiver's timer
  // fires (wait_for — real virtual-time waiting, since this loop runs
  // on the receiving rank), truncated pulls are NACKed to the
  // sender's NIC, corrupted pulls are delivered damaged with the
  // clean bytes stashed for end-to-end recovery.
  const double handshake_start = std::max(proc_->now(), env.arrival);
  const net::PathTimes cts = world_->fabric().reserve_route(
      wrank(), ws, world_->config().ctrl_bytes, handshake_start,
      relay_policy_.hop_delay(world_->config().ctrl_bytes));
  double pull_start = cts.arrival;
  // Move this rank's clock to the handshake so the retransmission
  // timers below measure real waiting, not a stale local time.
  const double rts_begin = proc_->now();
  sleep_until(handshake_start);
  trace_span(trace::Category::kWire, rts_begin, env.src, len);

  const auto budget = static_cast<std::uint32_t>(arq_->config().max_retries);
  std::uint32_t attempts = 0;
  net::PathTimes data{};
  net::FaultDecision fault{};
  bool delivered = false;
  for (int attempt = 0; attempts <= budget; ++attempt) {
    ++attempts;
    ++st.data_frames;
    if (attempt > 0) ++st.retransmits;
    // Routed pulls replay the whole route per attempt; faults stay at
    // end-to-end granularity on this receiver-driven path.
    data = world_->fabric().reserve_route(ws, wrank(), len, pull_start,
                                          relay_policy_.hop_delay(len));
    fault = faults->next(ws, wrank(), len, /*allow_loss=*/true);
    if (fault.kind == net::FaultKind::kDrop) {
      // The pull vanished: wait out the retransmission timer on this
      // rank, then re-issue the pull.
      ++st.rto_expirations;
      wait_timer(arq_->rto(ws, wrank(), env.seq, attempt));
      pull_start = std::max(proc_->now(), pull_start);
      continue;
    }
    if (fault.kind == net::FaultKind::kTruncate ||
        (fault.kind == net::FaultKind::kCorrupt &&
         env.tag >= (1 << 28))) {
      // Link NACK back to the sender's NIC; it replays the pull.
      // Corruption only qualifies on link-checksummed collective-
      // internal frames — user payloads defer integrity upward.
      ++st.link_nacks;
      pull_start = world_->fabric()
                       .reserve_route(wrank(), ws, arq_->config().ctrl_bytes,
                                      data.arrival,
                                      relay_policy_.hop_delay(
                                          arq_->config().ctrl_bytes))
                       .arrival;
      continue;
    }
    delivered = true;
    break;
  }

  if (ft_ != nullptr && ft_->crashed_by(ws, proc_->now())) {
    // The sender died while the retry timers above were running: its
    // handshake and send buffer are gone. Fail without touching them
    // (ground truth, no detection delay — this is memory safety, not
    // failure detection).
    pr.matched.reset();
    throw reliable::PeerUnreachable(ws, wrank(), attempts);
  }
  if (ft_ != nullptr && !recovery_ && ft_->revoked(epoch_)) {
    // Revoked while parked: complete the handshake so the (alive)
    // sender unparks promptly, then fail this pending receive fast.
    env.handshake->sender_complete = proc_->now();
    env.handshake->completed = true;
    proc_->notify_all(env.handshake->done);
    pr.matched.reset();
    ft_->throw_revoked(epoch_);
  }

  if (!delivered) {
    // Budget exhausted. Complete the handshake first so the sender
    // unparks, then degrade: mark the link dead, tell the verifier,
    // raise the structured error on this rank.
    env.handshake->sender_complete = proc_->now();
    env.handshake->completed = true;
    proc_->notify_all(env.handshake->done);
    arq_->mark_link_dead(ws, wrank());
    if (vrf_ != nullptr) {
      vrf_->on_peer_unreachable(wrank(), ws, attempts);
    }
    pr.matched.reset();
    throw reliable::PeerUnreachable(ws, wrank(), attempts);
  }

  double arrival = data.arrival;
  if (fault.kind == net::FaultKind::kDuplicate) {
    // The extra copy still crosses the wire before the window drops it.
    (void)world_->fabric().reserve_route(ws, wrank(), len, data.arrival,
                                         relay_policy_.hop_delay(len));
    ++st.duplicates_suppressed;
  } else if (fault.kind == net::FaultKind::kDelay) {
    arrival += fault.delay_seconds;
    ++st.delays_absorbed;
  }

  if (len > 0) {
    std::memcpy(pr.buf.data(), env.rndv_data.data(), len);
  }
  if (fault.kind == net::FaultKind::kCorrupt) {
    // Deliver damaged; keep the clean copy (still valid here — the
    // sender is parked on the handshake) for end-to-end recovery.
    pr.buf[fault.position] ^= fault.flip_mask;
    ++st.damaged_deliveries;
    reliable::RetransmitStash& stash = arq_->stash(wrank());
    stash.valid = true;
    stash.src = env.src;
    stash.tag = env.tag;
    stash.seq = env.seq;
    stash.transmissions = attempts;
    stash.clean.assign(env.rndv_data.begin(), env.rndv_data.end());
  }
  ++st.deliveries;
  if (attempts > 1) {
    ++st.recoveries;
    st.recovery_delay_total += arrival - cts.arrival;
  }
  status.bytes = len;
  env.handshake->sender_complete = data.egress_done;
  env.handshake->completed = true;
  proc_->notify_all(env.handshake->done);
  if (attempts > 1) {
    // A recovered pull: the remaining park includes the retransmitted
    // transfer, so the whole interval is ARQ recovery time.
    const double begin = proc_->now();
    sleep_until(arrival);
    trace_span(trace::Category::kArqRetransmit, begin, env.src, len);
  } else {
    sleep_traced(arrival, cts.queue_delay + data.queue_delay,
                 trace::Category::kWire, env.src, len, data.relay_delay);
  }
  world_->fabric().note_relay_exposure(
      world_->fabric().relay_count(ws, wrank()));
  const double copy_begin = proc_->now();
  proc_->advance(prof.recv_overhead);
  trace_span(trace::Category::kCopy, copy_begin, env.src, len);
  pr.matched.reset();
  return status;
}

bool Comm::recover_damaged_recv(MutBytes wire, int src, int tag) {
  if (arq_ == nullptr) return false;
  return guarded([&] { return recover_damaged_internal(wire, src, tag); });
}

bool Comm::recover_damaged_internal(MutBytes wire, int src, int tag) {
  reliable::RetransmitStash& st = arq_->stash(wrank());
  if (!st.valid || st.src != src || st.tag != tag ||
      st.clean.size() != wire.size()) {
    return false;  // no fabric stash: genuine attack, not line damage
  }
  // Replay the NACK + retransmission dialogue in virtual time: the
  // channel resolves the clean copy's arrival, this rank waits for it
  // on a timer, and the retransmitted bytes replace the damaged ones.
  const double t =
      arq_->e2e_recover(to_world(src), wrank(), wire.size(), proc_->now(),
                        st.transmissions, relay_policy_);
  wait_timer(t - proc_->now());
  if (!wire.empty()) {
    std::memcpy(wire.data(), st.clean.data(), wire.size());
  }
  st.valid = false;
  st.clean.clear();
  return true;
}

std::optional<Status> Comm::recv_or_abort(
    MutBytes buf, int src, int tag, const std::function<bool()>& stop) {
  if (ft_ == nullptr) {
    throw MpiError("recv_or_abort requires the fault-tolerance layer");
  }
  validate_recv_peer(src, size());
  if (src == kAnySource) {
    throw MpiError("recv_or_abort needs a specific source rank");
  }
  Request request = irecv_internal(buf, src, tag);
  auto owned = request.take();
  auto* state = dynamic_cast<RecvState*>(owned.get());
  state->waited = true;
  PendingRecv& pr = state->pr;
  const double poll = ft_->config().detect_timeout;
  const int ws = to_world(src);
  {
    const verify::Verifier::BlockScope block(
        vrf_, wrank(), {verify::BlockKind::kRecv, src, tag});
    while (!pr.matched) {
      // The stop predicate (e.g. "the decision board settled") wins
      // over everything: the posted receive is abandoned and cleanly
      // deregistered by the request state's destructor.
      if (stop()) return std::nullopt;
      if (ws != wrank() && ft_->detectable(ws, proc_->now())) {
        throw reliable::PeerUnreachable(ws, wrank(), 0);
      }
      (void)proc_->wait_for(pr.cond, poll);
    }
  }
  const Status status = complete_recv(pr);
  if (vrf_ != nullptr) {
    vrf_->on_request_finish(state->vid, verify::ReqFinish::kCompleted);
    state->vid = 0;
  }
  return status;
}

Status Comm::recv(MutBytes buf, int src, int tag) {
  validate_recv_tag(tag);
  return guarded([&] {
    Request request = irecv_internal(buf, src, tag);
    return wait(request);
  });
}

// ----------------------------------------------------------- completion

Status Comm::wait(Request& request) {
  if (!request.valid()) throw_invalid_wait(vrf_, wrank(), request);
  return guarded([&]() -> Status {
    ft_guard(/*post=*/false);
    auto owned = request.take();
    if (auto* send_state = dynamic_cast<SendState*>(owned.get())) {
      send_state->waited = true;
      if (send_state->handshake) {
        await_handshake(*send_state->handshake, send_state->dst,
                        send_state->tag, 0);
      }
      if (vrf_ != nullptr) {
        vrf_->on_request_finish(send_state->vid,
                                verify::ReqFinish::kCompleted);
        send_state->vid = 0;
      }
      return Status{};  // send completions carry no matching info
    }
    if (auto* recv_state = dynamic_cast<RecvState*>(owned.get())) {
      recv_state->waited = true;
      const Status status = complete_recv(recv_state->pr);
      if (vrf_ != nullptr) {
        vrf_->on_request_finish(recv_state->vid,
                                verify::ReqFinish::kCompleted);
        recv_state->vid = 0;
      }
      return status;
    }
    throw MpiError("request does not belong to this communicator");
  });
}

std::vector<Status> Comm::waitall(std::span<Request> requests) {
  std::vector<Status> statuses;
  statuses.reserve(requests.size());
  for (Request& r : requests) statuses.push_back(wait(r));
  return statuses;
}

Status Comm::sendrecv(BytesView senddata, int dst, int sendtag,
                      MutBytes recvbuf, int src, int recvtag) {
  validate_user_tag(sendtag);
  validate_recv_tag(recvtag);
  return guarded([&] {
    Request rr = irecv_internal(recvbuf, src, recvtag);
    Request rs = isend_internal(senddata, dst, sendtag);
    const Status status = wait(rr);
    wait(rs);
    return status;
  });
}

// ----------------------------------------------------------- collectives

void Comm::barrier() {
  guarded([&] {
    ft_guard(/*post=*/true);
    note_collective(verify::CollKind::kBarrier, -1, 0);
    const int base = next_coll_tag();
    const int n = size();
    const int r = rank();
    std::uint8_t token = 0;
    std::uint8_t sink = 0;
    int round = 0;
    for (int k = 1; k < n; k <<= 1, ++round) {
      const int dst = (r + k) % n;
      const int src = (r - k + n) % n;
      Request rr = irecv_internal(MutBytes(&sink, 1), src, base + round);
      Request rs = isend_internal(BytesView(&token, 1), dst, base + round);
      wait(rr);
      wait(rs);
    }
  });
}

void Comm::bcast(MutBytes data, int root) {
  validate_peer(root, size());
  guarded([&] {
    ft_guard(/*post=*/true);
    note_collective(verify::CollKind::kBcast, root, data.size());
    const int base = next_coll_tag();
    const int n = size();
    if (n == 1) return;
    const int vrank = (rank() - root + n) % n;

    // Binomial tree: receive from the parent, then forward to children.
    // Forward exactly the received byte count, so a non-root rank with
    // an oversized buffer still relays the correct message.
    std::size_t len = data.size();
    int mask = 1;
    while (mask < n) {
      if ((vrank & mask) != 0) {
        const int parent = (vrank - mask + root) % n;
        Request rr = irecv_internal(data, parent, base);
        len = wait(rr).bytes;
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < n) {
        const int child = (vrank + mask + root) % n;
        send_internal(BytesView(data).first(len), child, base);
      }
      mask >>= 1;
    }
  });
}

void Comm::allgather(BytesView sendpart, MutBytes recvall) {
  const int n = size();
  const std::size_t block = sendpart.size();
  if (recvall.size() != block * static_cast<std::size_t>(n)) {
    throw MpiError("allgather: recv buffer must be size()*block bytes");
  }
  guarded([&] {
    ft_guard(/*post=*/true);
    note_collective(verify::CollKind::kAllgather, -1, block);
    const int base = next_coll_tag();
    const int r = rank();
    if (!sendpart.empty()) {
      std::memcpy(recvall.data() + static_cast<std::size_t>(r) * block,
                  sendpart.data(), block);
    }
    if (n == 1) return;

    // Ring: in step s, pass along the block that originated s hops
    // back.
    const int right = (r + 1) % n;
    const int left = (r - 1 + n) % n;
    for (int s = 0; s < n - 1; ++s) {
      const auto send_idx = static_cast<std::size_t>((r - s + n) % n);
      const auto recv_idx = static_cast<std::size_t>((r - s - 1 + n) % n);
      Request rr = irecv_internal(
          recvall.subspan(recv_idx * block, block), left, base + (s & 63));
      Request rs = isend_internal(
          BytesView(recvall.subspan(send_idx * block, block)), right,
          base + (s & 63));
      wait(rr);
      wait(rs);
    }
  });
}

void Comm::alltoall(BytesView sendbuf, MutBytes recvbuf, std::size_t block) {
  const int n = size();
  const auto total = block * static_cast<std::size_t>(n);
  if (sendbuf.size() != total || recvbuf.size() != total) {
    throw MpiError("alltoall: buffers must be size()*block bytes");
  }
  guarded([&] {
    ft_guard(/*post=*/true);
    note_collective(verify::CollKind::kAlltoall, -1, block);
    const int base = next_coll_tag();
    const int r = rank();

    // Posted-window algorithm: all receives first, then all sends,
    // peers staggered by rank to spread NIC load.
    std::vector<Request> requests;
    requests.reserve(2 * static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int peer = (r + i) % n;
      requests.push_back(irecv_internal(
          recvbuf.subspan(static_cast<std::size_t>(peer) * block, block),
          peer, base));
    }
    for (int i = 0; i < n; ++i) {
      const int peer = (r + i) % n;
      requests.push_back(isend_internal(
          sendbuf.subspan(static_cast<std::size_t>(peer) * block, block),
          peer, base));
    }
    waitall(requests);
  });
}

void Comm::alltoallv(BytesView sendbuf,
                     std::span<const std::size_t> sendcounts,
                     std::span<const std::size_t> senddispls, MutBytes recvbuf,
                     std::span<const std::size_t> recvcounts,
                     std::span<const std::size_t> recvdispls) {
  const auto n = static_cast<std::size_t>(size());
  if (sendcounts.size() != n || senddispls.size() != n ||
      recvcounts.size() != n || recvdispls.size() != n) {
    throw MpiError("alltoallv: count/displacement arrays must have size() entries");
  }
  guarded([&] {
    ft_guard(/*post=*/true);
    note_collective(verify::CollKind::kAlltoallv, -1, 0);
    const int base = next_coll_tag();
    const int r = rank();

    std::vector<Request> requests;
    requests.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto peer =
          static_cast<std::size_t>((static_cast<std::size_t>(r) + i) % n);
      requests.push_back(
          irecv_internal(recvbuf.subspan(recvdispls[peer], recvcounts[peer]),
                         static_cast<int>(peer), base));
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto peer =
          static_cast<std::size_t>((static_cast<std::size_t>(r) + i) % n);
      requests.push_back(
          isend_internal(sendbuf.subspan(senddispls[peer], sendcounts[peer]),
                         static_cast<int>(peer), base));
    }
    waitall(requests);
  });
}

void Comm::gather(BytesView sendpart, MutBytes recvall, int root) {
  validate_peer(root, size());
  const int n = size();
  const std::size_t block = sendpart.size();
  guarded([&] {
    ft_guard(/*post=*/true);
    note_collective(verify::CollKind::kGather, root, block);
    const int base = next_coll_tag();
    if (rank() == root) {
      if (recvall.size() != block * static_cast<std::size_t>(n)) {
        throw MpiError("gather: root recv buffer must be size()*block bytes");
      }
      std::vector<Request> requests;
      requests.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        if (i == root) {
          if (!sendpart.empty()) {
            std::memcpy(recvall.data() + static_cast<std::size_t>(i) * block,
                        sendpart.data(), block);
          }
          continue;
        }
        requests.push_back(irecv_internal(
            recvall.subspan(static_cast<std::size_t>(i) * block, block), i,
            base));
      }
      waitall(requests);
    } else {
      send_internal(sendpart, root, base);
    }
  });
}

void Comm::scatter(BytesView sendall, MutBytes recvpart, int root) {
  validate_peer(root, size());
  const int n = size();
  const std::size_t block = recvpart.size();
  guarded([&] {
    ft_guard(/*post=*/true);
    note_collective(verify::CollKind::kScatter, root, block);
    const int base = next_coll_tag();
    if (rank() == root) {
      if (sendall.size() != block * static_cast<std::size_t>(n)) {
        throw MpiError("scatter: root send buffer must be size()*block bytes");
      }
      std::vector<Request> requests;
      requests.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        if (i == root) {
          if (!recvpart.empty()) {
            std::memcpy(recvpart.data(),
                        sendall.data() + static_cast<std::size_t>(i) * block,
                        block);
          }
          continue;
        }
        requests.push_back(isend_internal(
            sendall.subspan(static_cast<std::size_t>(i) * block, block), i,
            base));
      }
      waitall(requests);
    } else {
      Request rr = irecv_internal(recvpart, root, base);
      wait(rr);
    }
  });
}

}  // namespace emc::mpi
