#include "emc/mpi/world.hpp"

#include "emc/mpi/comm.hpp"

namespace emc::mpi {

World::World(const WorldConfig& config)
    : config_(config),
      fabric_(config.cluster),
      engine_(config.cluster.total_ranks()),
      mailboxes_(static_cast<std::size_t>(config.cluster.total_ranks())) {
  engine_.set_charge_scale(config.cpu_scale);
}

double World::run(const std::function<void(Comm&)>& body) {
  return engine_.run([this, &body](sim::Process& proc) {
    Comm comm(*this, proc);
    body(comm);
  });
}

double run_world(const WorldConfig& config,
                 const std::function<void(Comm&)>& body) {
  World world(config);
  return world.run(body);
}

}  // namespace emc::mpi
