#include "emc/mpi/world.hpp"

#include "emc/mpi/comm.hpp"

namespace emc::mpi {

World::World(const WorldConfig& config)
    : config_(config),
      fabric_(config.cluster),
      engine_(config.cluster.total_ranks()),
      mailboxes_(static_cast<std::size_t>(config.cluster.total_ranks())) {
  if (config_.recv_timeout < 0.0) {
    throw std::invalid_argument(
        "WorldConfig: recv_timeout must be non-negative (0.0 = wait "
        "forever), got " + std::to_string(config_.recv_timeout));
  }
  config_.reliability.validate();
  engine_.set_charge_scale(config.cpu_scale);
  if (config_.verify.enabled) {
    verifier_ = std::make_unique<verify::Verifier>(config_.verify, engine_);
  }
  if (config_.reliability.enabled) {
    channel_ = std::make_unique<reliable::Channel>(config_.reliability,
                                                   fabric_);
  }
  if (config_.trace != nullptr) {
    if (config_.trace->num_ranks() != size()) {
      throw std::invalid_argument(
          "WorldConfig: trace recorder built for " +
          std::to_string(config_.trace->num_ranks()) +
          " ranks attached to a world of " + std::to_string(size()));
    }
    // Attribute every Process::charge interval. SecureComm retags the
    // next charge (crypto encrypt/decrypt) via set_charge_category;
    // everything else — NAS kernels, application compute — defaults
    // to kCompute.
    trace::TraceRecorder* rec = config_.trace.get();
    engine_.set_charge_observer([rec](int rank, double begin, double end) {
      rec->record(rank, rec->take_charge_category(rank), begin, end);
    });
  }
}

double World::run(const std::function<void(Comm&)>& body) {
  if (verifier_ != nullptr) verifier_->begin_run();
  if (config_.trace != nullptr) config_.trace->begin_run(engine_.now());
  const double end = engine_.run([this, &body](sim::Process& proc) {
    Comm comm(*this, proc);
    body(comm);
    if (config_.trace != nullptr) {
      config_.trace->note_rank_done(proc.index(), proc.now());
    }
  });
  if (verifier_ != nullptr) {
    // Shutdown audit: anything still sitting in a mailbox was sent or
    // posted but never consumed by the program that just finished.
    for (int rank = 0; rank < size(); ++rank) {
      const detail::Mailbox& box = mailbox(rank);
      for (const auto& env : box.unexpected) {
        verifier_->on_unmatched_envelope(
            rank, env->src, env->tag,
            env->rendezvous ? env->rndv_data.size() : env->payload.size());
      }
      for (const detail::PendingRecv* pr : box.posted) {
        verifier_->on_unmatched_posted(rank, pr->want_src, pr->want_tag);
      }
    }
    verifier_->finish_run();
  }
  return end;
}

double run_world(const WorldConfig& config,
                 const std::function<void(Comm&)>& body) {
  World world(config);
  return world.run(body);
}

std::vector<PerturbedRun> run_perturbed(const WorldConfig& config,
                                        const std::function<void(Comm&)>& body,
                                        int runs, std::uint64_t seed) {
  std::vector<PerturbedRun> results;
  results.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    WorldConfig perturbed = config;
    perturbed.verify.enabled = true;
    // Run 0 keeps the baseline FIFO tie-break so the unperturbed
    // behaviour is always part of the report.
    perturbed.verify.schedule_salt =
        i == 0 ? 0 : verify::splitmix64(seed + static_cast<std::uint64_t>(i));

    PerturbedRun result;
    result.salt = perturbed.verify.schedule_salt;
    World world(perturbed);
    try {
      result.end_time = world.run(body);
    } catch (const std::exception& e) {
      result.failed = true;
      result.error = e.what();
    }
    result.diagnostics = world.verifier()->diagnostics();
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace emc::mpi
