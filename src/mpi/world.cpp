#include "emc/mpi/world.hpp"

#include <limits>

#include "emc/mpi/comm.hpp"

namespace emc::mpi {

World::World(const WorldConfig& config)
    : config_(config),
      fabric_(config.cluster),
      engine_(config.cluster.total_ranks()),
      mailboxes_(static_cast<std::size_t>(config.cluster.total_ranks())) {
  if (config_.recv_timeout < 0.0) {
    throw std::invalid_argument(
        "WorldConfig: recv_timeout must be non-negative (0.0 = wait "
        "forever), got " + std::to_string(config_.recv_timeout));
  }
  config_.reliability.validate();
  config_.cluster.faults.validate_crashes(size());
  engine_.set_charge_scale(config.cpu_scale);
  if (config_.ft.enabled || !config_.cluster.faults.crashes.empty()) {
    if (!(config_.ft.detect_timeout > 0.0)) {
      throw std::invalid_argument(
          "WorldConfig: ft.detect_timeout must be positive, got " +
          std::to_string(config_.ft.detect_timeout));
    }
    std::vector<double> crash_at(
        static_cast<std::size_t>(size()),
        std::numeric_limits<double>::infinity());
    for (const net::RankCrash& c : config_.cluster.faults.crashes) {
      crash_at[static_cast<std::size_t>(c.rank)] = c.at;
      engine_.set_kill_time(c.rank, c.at);
    }
    ft_ = std::make_unique<ft::State>(config_.ft, std::move(crash_at));
  }
  if (config_.verify.enabled) {
    verifier_ = std::make_unique<verify::Verifier>(config_.verify, engine_);
  }
  if (config_.reliability.enabled) {
    channel_ = std::make_unique<reliable::Channel>(config_.reliability,
                                                   fabric_);
  }
  if (config_.trace != nullptr) {
    if (config_.trace->num_ranks() != size()) {
      throw std::invalid_argument(
          "WorldConfig: trace recorder built for " +
          std::to_string(config_.trace->num_ranks()) +
          " ranks attached to a world of " + std::to_string(size()));
    }
    // Attribute every Process::charge interval. SecureComm retags the
    // next charge (crypto encrypt/decrypt) via set_charge_category;
    // everything else — NAS kernels, application compute — defaults
    // to kCompute.
    trace::TraceRecorder* rec = config_.trace.get();
    engine_.set_charge_observer([rec](int rank, double begin, double end) {
      rec->record(rank, rec->take_charge_category(rank), begin, end);
    });
  }
}

double World::run(const std::function<void(Comm&)>& body) {
  if (verifier_ != nullptr) verifier_->begin_run();
  if (config_.trace != nullptr) config_.trace->begin_run(engine_.now());
  const double end = engine_.run([this, &body](sim::Process& proc) {
    Comm comm(*this, proc);
    try {
      body(comm);
    } catch (const sim::Killed&) {
      // Scripted rank crash: the rank simply stops existing at its
      // kill time. Survivors detect and recover through the ft layer;
      // the dead rank's thread unwinds and finishes normally here.
    }
    if (config_.trace != nullptr) {
      config_.trace->note_rank_done(proc.index(), proc.now());
    }
  });
  if (verifier_ != nullptr) {
    // Shutdown audit: anything still sitting in a mailbox was sent or
    // posted but never consumed by the program that just finished.
    // With the ft layer active, debris of a crash is expected, not a
    // bug: traffic on revoked epochs, recovery-internal messages
    // (high-bit epochs) abandoned once the decision board settled, and
    // anything sent by or addressed to a rank that died.
    const double end_time = end;
    for (int rank = 0; rank < size(); ++rank) {
      const detail::Mailbox& box = mailbox(rank);
      const bool owner_dead = ft_ != nullptr && ft_->crashed_by(rank, end_time);
      for (const auto& env : box.unexpected) {
        if (ft_ != nullptr &&
            (owner_dead || ft_->revoked(env->comm_epoch) ||
             (env->comm_epoch >> 63) != 0 ||
             ft_->crashed_by(env->world_src, end_time))) {
          continue;
        }
        verifier_->on_unmatched_envelope(
            rank, env->src, env->tag,
            env->rendezvous ? env->rndv_data.size() : env->payload.size());
      }
      for (const detail::PendingRecv* pr : box.posted) {
        if (ft_ != nullptr &&
            (owner_dead || ft_->revoked(pr->want_epoch) ||
             (pr->want_epoch >> 63) != 0)) {
          continue;
        }
        verifier_->on_unmatched_posted(rank, pr->want_src, pr->want_tag);
      }
    }
    verifier_->finish_run();
  }
  return end;
}

double run_world(const WorldConfig& config,
                 const std::function<void(Comm&)>& body) {
  World world(config);
  return world.run(body);
}

std::vector<PerturbedRun> run_perturbed(const WorldConfig& config,
                                        const std::function<void(Comm&)>& body,
                                        int runs, std::uint64_t seed) {
  std::vector<PerturbedRun> results;
  results.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    WorldConfig perturbed = config;
    perturbed.verify.enabled = true;
    // Run 0 keeps the baseline FIFO tie-break so the unperturbed
    // behaviour is always part of the report.
    perturbed.verify.schedule_salt =
        i == 0 ? 0 : verify::splitmix64(seed + static_cast<std::uint64_t>(i));

    PerturbedRun result;
    result.salt = perturbed.verify.schedule_salt;
    World world(perturbed);
    try {
      result.end_time = world.run(body);
    } catch (const std::exception& e) {
      result.failed = true;
      result.error = e.what();
    }
    result.diagnostics = world.verifier()->diagnostics();
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace emc::mpi
