// Plain (unencrypted) MiniMPI communicator — the baseline of the study.
#pragma once

#include <optional>

#include "emc/mpi/communicator.hpp"
#include "emc/mpi/world.hpp"
#include "emc/sim/engine.hpp"

namespace emc::mpi {

/// Communicator bound to one rank (one simulated process) of a World.
/// Point-to-point uses the eager protocol below the network profile's
/// threshold and an RDMA-style RTS/CTS rendezvous above it; the
/// collectives use the classic MPICH algorithms (binomial bcast, ring
/// allgather, posted-window alltoall, dissemination barrier).
///
/// A Comm is either the world communicator (epoch 0, identity rank
/// mapping) or a re-ranked sub-communicator over an explicit group of
/// world ranks with its own epoch (built by ft::shrink during
/// recovery). Message matching is epoch-scoped, so traffic of a
/// revoked communicator can never leak into its successor.
class Comm final : public Communicator {
 public:
  Comm(World& world, sim::Process& proc);

  /// Sub-communicator over @p group — a strictly ascending list of
  /// world ranks that must contain the calling process. Ranks are the
  /// positions within @p group. @p recovery marks the ft-internal
  /// communicator that runs the agreement protocol: its operations
  /// skip the revocation guard (recovery must proceed exactly while
  /// the application epoch is revoked) and poll the failure detector
  /// instead of blocking forever on dead peers.
  Comm(World& world, sim::Process& proc, std::vector<int> group,
       std::uint64_t epoch, bool recovery = false);

  [[nodiscard]] int rank() const override { return local_rank_; }
  [[nodiscard]] int size() const override {
    return group_.empty() ? world_->size()
                          : static_cast<int>(group_.size());
  }

  /// Matching epoch of this communicator (0 = the world communicator;
  /// recovery communicators have the high bit set).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// World rank behind local rank @p r (identity on the world
  /// communicator; kAnySource passes through).
  [[nodiscard]] int to_world(int r) const {
    return group_.empty() || r < 0
               ? r
               : group_.at(static_cast<std::size_t>(r));
  }

  /// Local rank of world rank @p world_rank, or -1 when that rank is
  /// not part of this communicator's group.
  [[nodiscard]] int to_local(int world_rank) const;

  /// Virtual time as seen by this rank.
  [[nodiscard]] double now() const { return proc_->now(); }

  /// The simulated process behind this rank; used by benches to charge
  /// compute time (`process().advance(...)` / `process().charge(...)`).
  [[nodiscard]] sim::Process& process() { return *proc_; }
  [[nodiscard]] World& world() { return *world_; }

  void send(BytesView data, int dst, int tag) override;
  Status recv(MutBytes buf, int src, int tag) override;
  Request isend(BytesView data, int dst, int tag) override;
  Request irecv(MutBytes buf, int src, int tag) override;
  Status wait(Request& request) override;
  std::vector<Status> waitall(std::span<Request> requests) override;
  Status sendrecv(BytesView senddata, int dst, int sendtag, MutBytes recvbuf,
                  int src, int recvtag) override;

  /// Pipelined-chunk send primitive for the secure layer's chunked
  /// encrypt->send pipeline (docs/PIPELINE.md): always eager (a chunk
  /// is a self-contained sealed frame — rendezvous would serialize
  /// the pipeline behind a handshake), and the payload may not start
  /// on the wire before @p wire_not_before (virtual seconds) — the
  /// time its helper core finished sealing it. The sender's own clock
  /// only advances by the per-message CPU overhead + copy, exactly
  /// like an eager send, so successive chunks overlap on the wire.
  void send_chunk(BytesView data, int dst, int tag, double wire_not_before);

  /// Hard ceiling on collectives per communicator: the internal tag
  /// space above kMaxUserTag fits this many 64-slot collective
  /// invocations; next_coll_tag throws MpiError once it is exhausted
  /// (tags never silently wrap into reuse).
  static constexpr std::uint32_t kMaxCollectives =
      ((std::uint32_t{1} << 31) - (std::uint32_t{1} << 28)) / 64;

  /// Test hook: burns @p n collective-tag slots as if n collectives
  /// had run, to exercise the exhaustion guard without running them.
  void consume_coll_tags(std::uint32_t n) noexcept {
    coll_seq_ = n > kMaxCollectives - coll_seq_ ? kMaxCollectives
                                                : coll_seq_ + n;
  }

  /// End-to-end NACK hook for upper layers that authenticate payloads
  /// (reliability only). When the most recent completed receive on
  /// this rank was damaged in flight by the fabric, simulates the
  /// NACK + retransmission dialogue in virtual time (wait_for-based
  /// backoff timers), rewrites @p wire with the clean retransmitted
  /// copy, and returns true. Returns false when the damage did not
  /// come from the fabric (a real attacker — the caller should keep
  /// treating it as an integrity failure) or reliability is off.
  /// Throws reliable::PeerUnreachable when the retry budget runs out.
  bool recover_damaged_recv(MutBytes wire, int src, int tag);

  /// Abortable bounded receive — the primitive the ft agreement
  /// protocol is built on (only available with the ft layer active).
  /// Waits for a message from local rank @p src, polling at the
  /// failure detector's granularity; returns std::nullopt as soon as
  /// @p stop returns true (e.g. the decision board settled), and
  /// throws reliable::PeerUnreachable once @p src is detectably dead.
  std::optional<Status> recv_or_abort(MutBytes buf, int src, int tag,
                                      const std::function<bool()>& stop);

  /// Installs the relay policy for multi-hop routed traffic: the
  /// per-relay processing surcharge and whether hops re-verify payload
  /// integrity. The secure layer maps its RelayTrust decision here
  /// (hop-trusted relays decrypt + re-encrypt; end-to-end relays
  /// forward sealed bytes for free). Default: transparent relays.
  void set_relay_policy(const net::RelayPolicy& policy) {
    relay_policy_ = policy;
  }
  [[nodiscard]] const net::RelayPolicy& relay_policy() const noexcept {
    return relay_policy_;
  }

  void barrier() override;
  void bcast(MutBytes data, int root) override;
  void allgather(BytesView sendpart, MutBytes recvall) override;
  void alltoall(BytesView sendbuf, MutBytes recvbuf,
                std::size_t block) override;
  void alltoallv(BytesView sendbuf, std::span<const std::size_t> sendcounts,
                 std::span<const std::size_t> senddispls, MutBytes recvbuf,
                 std::span<const std::size_t> recvcounts,
                 std::span<const std::size_t> recvdispls) override;
  void gather(BytesView sendpart, MutBytes recvall, int root) override;
  void scatter(BytesView sendall, MutBytes recvpart, int root) override;

 private:
  /// Posts an envelope to @p dst, matching a posted receive if one fits.
  void post_envelope(int dst, std::unique_ptr<detail::Envelope> env);

  /// Runs an eager envelope through the fabric's fault injector (if
  /// any) before posting: may corrupt or truncate the payload, post a
  /// duplicate, or drop the envelope entirely. With the reliability
  /// layer enabled the ARQ dialogue is resolved here instead
  /// (deliver_reliable) and only drops caused by a dead link survive.
  void deliver_eager(int dst, std::unique_ptr<detail::Envelope> env);

  /// ARQ delivery of an eager envelope (reliability enabled): resolves
  /// retransmissions/backoff via the channel, suppresses duplicates,
  /// stashes clean copies of damaged payloads for end-to-end NACK
  /// recovery, and converts retry-budget exhaustion into a tombstone
  /// plus a thrown reliable::PeerUnreachable.
  void deliver_reliable(int dst, std::unique_ptr<detail::Envelope> env);

  /// Receiver-driven ARQ loop for the rendezvous pull: retries
  /// dropped or truncated pulls with wait_for-based backoff timers,
  /// delivers corrupted pulls damaged (stashing the clean bytes), and
  /// throws reliable::PeerUnreachable on budget exhaustion.
  Status complete_rndv_reliable(detail::PendingRecv& pr);

  /// recover_damaged_recv body (the public entry adds the ft guard).
  bool recover_damaged_internal(MutBytes wire, int src, int tag);

  /// Sends with internal tags allowed (collectives).
  void send_internal(BytesView data, int dst, int tag);
  Request isend_internal(BytesView data, int dst, int tag);
  Request irecv_internal(MutBytes buf, int src, int tag);

  /// Completes a bound receive: sleeps to arrival, charges receiver
  /// costs, copies the payload (or executes the rendezvous pull).
  Status complete_recv(detail::PendingRecv& pr);

  void sleep_until(double t);

  /// Records the attribution span [@p begin, now] when tracing is on
  /// (and the span is non-empty). Observation only.
  void trace_span(trace::Category cat, double begin, int peer = -1,
                  std::uint64_t bytes = 0);

  /// sleep_until(@p arrival), attributing the parked interval as a
  /// kNicQueue prefix of up to @p queue_delay seconds (time the
  /// message spent queued behind a busy NIC), then @p cat, then a
  /// kRelayForward suffix of up to @p relay_delay seconds (time spent
  /// in store-and-forward beyond the first hop of a routed path).
  void sleep_traced(double arrival, double queue_delay, trace::Category cat,
                    int peer, std::uint64_t bytes, double relay_delay = 0.0);

  /// True when the ARQ channel resolves wire reservations itself for
  /// traffic to world rank @p wd (clocked transport or routed path):
  /// the send path must then skip its own reserve and let
  /// deliver_reliable fill arrival/queue/relay from the Delivery.
  [[nodiscard]] bool arq_resolves_wire(int wd) const {
    return arq_ != nullptr && arq_->engaged(wrank(), wd);
  }

  /// Fresh tag for the next collective (all ranks call collectives in
  /// the same order, so the per-rank counter stays aligned).
  int next_coll_tag();

  /// Reports this rank's entry into the collective the next
  /// next_coll_tag() call will number (no-op without verification).
  void note_collective(verify::CollKind kind, int root, std::size_t bytes);

  /// Parks this rank for @p dt virtual seconds on a private waitable —
  /// a pure virtual-time timer (sim wait_for), used by the ARQ backoff.
  void wait_timer(double dt);

  /// This rank's world rank — the coordinate for fabric paths, fault
  /// injection, tracing, and the ft crash checks.
  [[nodiscard]] int wrank() const { return proc_->index(); }

  /// Fails fast on a revoked epoch (no-op when the ft layer is off or
  /// this is the recovery communicator). @p post marks calls that
  /// would post *new* work — those feed the keeps-posting-after-revoke
  /// diagnostic.
  void ft_guard(bool post);

  /// Wraps a public operation: a reliable::PeerUnreachable escaping
  /// @p f revokes this communicator's epoch (first observation wins)
  /// and is rethrown as ft::RevokedError. Identity when ft is off.
  template <typename F>
  decltype(auto) guarded(F&& f);

  /// Parks on a rendezvous handshake until the receiver completes it,
  /// then drains the sender NIC. With the ft layer active the park is
  /// bounded: the sender polls for epoch revocation and for @p dst's
  /// detected death instead of blocking forever.
  void await_handshake(detail::RndvHandshake& handshake, int dst, int tag,
                       std::uint64_t bytes);

  World* world_;
  sim::Process* proc_;
  verify::Verifier* vrf_;  ///< null unless WorldConfig::verify.enabled
  reliable::Channel* arq_; ///< null unless WorldConfig::reliability.enabled
  trace::TraceRecorder* trc_;  ///< null unless WorldConfig::trace is set
  ft::State* ft_;          ///< null unless the ft layer is active
  std::vector<int> group_; ///< world ranks; empty = world communicator
  net::RelayPolicy relay_policy_;  ///< multi-hop forwarding behavior
  int local_rank_;
  std::uint64_t epoch_ = 0;
  bool recovery_ = false;
  std::uint32_t coll_seq_ = 0;
};

}  // namespace emc::mpi
