// Plain (unencrypted) MiniMPI communicator — the baseline of the study.
#pragma once

#include "emc/mpi/communicator.hpp"
#include "emc/mpi/world.hpp"
#include "emc/sim/engine.hpp"

namespace emc::mpi {

/// Communicator bound to one rank (one simulated process) of a World.
/// Point-to-point uses the eager protocol below the network profile's
/// threshold and an RDMA-style RTS/CTS rendezvous above it; the
/// collectives use the classic MPICH algorithms (binomial bcast, ring
/// allgather, posted-window alltoall, dissemination barrier).
class Comm final : public Communicator {
 public:
  Comm(World& world, sim::Process& proc);

  [[nodiscard]] int rank() const override { return proc_->index(); }
  [[nodiscard]] int size() const override { return world_->size(); }

  /// Virtual time as seen by this rank.
  [[nodiscard]] double now() const { return proc_->now(); }

  /// The simulated process behind this rank; used by benches to charge
  /// compute time (`process().advance(...)` / `process().charge(...)`).
  [[nodiscard]] sim::Process& process() { return *proc_; }
  [[nodiscard]] World& world() { return *world_; }

  void send(BytesView data, int dst, int tag) override;
  Status recv(MutBytes buf, int src, int tag) override;
  Request isend(BytesView data, int dst, int tag) override;
  Request irecv(MutBytes buf, int src, int tag) override;
  Status wait(Request& request) override;
  std::vector<Status> waitall(std::span<Request> requests) override;
  Status sendrecv(BytesView senddata, int dst, int sendtag, MutBytes recvbuf,
                  int src, int recvtag) override;

  /// Hard ceiling on collectives per communicator: the internal tag
  /// space above kMaxUserTag fits this many 64-slot collective
  /// invocations; next_coll_tag throws MpiError once it is exhausted
  /// (tags never silently wrap into reuse).
  static constexpr std::uint32_t kMaxCollectives =
      ((std::uint32_t{1} << 31) - (std::uint32_t{1} << 28)) / 64;

  /// Test hook: burns @p n collective-tag slots as if n collectives
  /// had run, to exercise the exhaustion guard without running them.
  void consume_coll_tags(std::uint32_t n) noexcept {
    coll_seq_ = n > kMaxCollectives - coll_seq_ ? kMaxCollectives
                                                : coll_seq_ + n;
  }

  /// End-to-end NACK hook for upper layers that authenticate payloads
  /// (reliability only). When the most recent completed receive on
  /// this rank was damaged in flight by the fabric, simulates the
  /// NACK + retransmission dialogue in virtual time (wait_for-based
  /// backoff timers), rewrites @p wire with the clean retransmitted
  /// copy, and returns true. Returns false when the damage did not
  /// come from the fabric (a real attacker — the caller should keep
  /// treating it as an integrity failure) or reliability is off.
  /// Throws reliable::PeerUnreachable when the retry budget runs out.
  bool recover_damaged_recv(MutBytes wire, int src, int tag);

  void barrier() override;
  void bcast(MutBytes data, int root) override;
  void allgather(BytesView sendpart, MutBytes recvall) override;
  void alltoall(BytesView sendbuf, MutBytes recvbuf,
                std::size_t block) override;
  void alltoallv(BytesView sendbuf, std::span<const std::size_t> sendcounts,
                 std::span<const std::size_t> senddispls, MutBytes recvbuf,
                 std::span<const std::size_t> recvcounts,
                 std::span<const std::size_t> recvdispls) override;
  void gather(BytesView sendpart, MutBytes recvall, int root) override;
  void scatter(BytesView sendall, MutBytes recvpart, int root) override;

 private:
  /// Posts an envelope to @p dst, matching a posted receive if one fits.
  void post_envelope(int dst, std::unique_ptr<detail::Envelope> env);

  /// Runs an eager envelope through the fabric's fault injector (if
  /// any) before posting: may corrupt or truncate the payload, post a
  /// duplicate, or drop the envelope entirely. With the reliability
  /// layer enabled the ARQ dialogue is resolved here instead
  /// (deliver_reliable) and only drops caused by a dead link survive.
  void deliver_eager(int dst, std::unique_ptr<detail::Envelope> env);

  /// ARQ delivery of an eager envelope (reliability enabled): resolves
  /// retransmissions/backoff via the channel, suppresses duplicates,
  /// stashes clean copies of damaged payloads for end-to-end NACK
  /// recovery, and converts retry-budget exhaustion into a tombstone
  /// plus a thrown reliable::PeerUnreachable.
  void deliver_reliable(int dst, std::unique_ptr<detail::Envelope> env);

  /// Receiver-driven ARQ loop for the rendezvous pull: retries
  /// dropped or truncated pulls with wait_for-based backoff timers,
  /// delivers corrupted pulls damaged (stashing the clean bytes), and
  /// throws reliable::PeerUnreachable on budget exhaustion.
  Status complete_rndv_reliable(detail::PendingRecv& pr);

  /// Sends with internal tags allowed (collectives).
  void send_internal(BytesView data, int dst, int tag);
  Request isend_internal(BytesView data, int dst, int tag);
  Request irecv_internal(MutBytes buf, int src, int tag);

  /// Completes a bound receive: sleeps to arrival, charges receiver
  /// costs, copies the payload (or executes the rendezvous pull).
  Status complete_recv(detail::PendingRecv& pr);

  void sleep_until(double t);

  /// Records the attribution span [@p begin, now] when tracing is on
  /// (and the span is non-empty). Observation only.
  void trace_span(trace::Category cat, double begin, int peer = -1,
                  std::uint64_t bytes = 0);

  /// sleep_until(@p arrival), attributing the parked interval as a
  /// kNicQueue prefix of up to @p queue_delay seconds (time the
  /// message spent queued behind a busy NIC) followed by @p cat.
  void sleep_traced(double arrival, double queue_delay, trace::Category cat,
                    int peer, std::uint64_t bytes);

  /// Fresh tag for the next collective (all ranks call collectives in
  /// the same order, so the per-rank counter stays aligned).
  int next_coll_tag();

  /// Reports this rank's entry into the collective the next
  /// next_coll_tag() call will number (no-op without verification).
  void note_collective(verify::CollKind kind, int root, std::size_t bytes);

  /// Parks this rank for @p dt virtual seconds on a private waitable —
  /// a pure virtual-time timer (sim wait_for), used by the ARQ backoff.
  void wait_timer(double dt);

  World* world_;
  sim::Process* proc_;
  verify::Verifier* vrf_;  ///< null unless WorldConfig::verify.enabled
  reliable::Channel* arq_; ///< null unless WorldConfig::reliability.enabled
  trace::TraceRecorder* trc_;  ///< null unless WorldConfig::trace is set
  std::uint32_t coll_seq_ = 0;
};

}  // namespace emc::mpi
