// Typed reductions layered over the abstract Communicator interface.
//
// These are header-only templates built from point-to-point traffic +
// bcast, so they work identically over the plain and the encrypted
// communicator (the NAS kernels use them for residual/verification
// scalars). All ranks must call them in the same order, like any MPI
// collective.
#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "emc/mpi/communicator.hpp"

namespace emc::mpi {

namespace detail {
/// Tag reserved for the typed reductions (top of the user tag space).
inline constexpr int kReduceTag = kMaxUserTag;
}  // namespace detail

/// Element-wise reduction to @p root using a binomial tree.
/// @p in and @p out must have equal sizes; @p out is written on every
/// rank but only meaningful at the root.
template <typename T, typename BinaryOp>
void reduce(Communicator& comm, std::span<const T> in, std::span<T> out,
            int root, BinaryOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (in.size() != out.size()) throw MpiError("reduce: size mismatch");
  const int n = comm.size();
  const int vrank = (comm.rank() - root + n) % n;
  std::copy(in.begin(), in.end(), out.begin());

  std::vector<T> incoming(in.size());
  const auto bytes = in.size() * sizeof(T);
  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      const int parent = (vrank - mask + root) % n;
      comm.send(BytesView(reinterpret_cast<const std::uint8_t*>(out.data()),
                          bytes),
                parent, detail::kReduceTag);
      break;
    }
    if (vrank + mask < n) {
      const int child = (vrank + mask + root) % n;
      comm.recv(MutBytes(reinterpret_cast<std::uint8_t*>(incoming.data()),
                         bytes),
                child, detail::kReduceTag);
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = op(out[i], incoming[i]);
      }
    }
    mask <<= 1;
  }
}

/// Element-wise all-reduce: binomial reduce to rank 0, then bcast.
template <typename T, typename BinaryOp>
void allreduce(Communicator& comm, std::span<const T> in, std::span<T> out,
               BinaryOp op) {
  reduce(comm, in, out, 0, op);
  comm.bcast(MutBytes(reinterpret_cast<std::uint8_t*>(out.data()),
                      out.size() * sizeof(T)),
             0);
}

/// Scalar sum all-reduce convenience.
template <typename T>
[[nodiscard]] T allreduce_sum(Communicator& comm, T value) {
  T out{};
  allreduce(comm, std::span<const T>(&value, 1), std::span<T>(&out, 1),
            std::plus<T>{});
  return out;
}

/// Scalar max all-reduce convenience.
template <typename T>
[[nodiscard]] T allreduce_max(Communicator& comm, T value) {
  T out{};
  allreduce(comm, std::span<const T>(&value, 1), std::span<T>(&out, 1),
            [](T a, T b) { return a > b ? a : b; });
  return out;
}

}  // namespace emc::mpi
