// Shared types of the MiniMPI message-passing library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace emc::mpi {

/// Wildcard source for receive matching (like MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag for receive matching (like MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// User tags must stay below this; higher tags are reserved for
/// collective-internal traffic.
inline constexpr int kMaxUserTag = (1 << 28) - 1;

/// Completion information of a receive.
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// All MiniMPI usage errors surface as this exception.
struct MpiError : std::runtime_error {
  explicit MpiError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// Opaque per-request state; concrete types live with the
/// communicator implementation that created the request.
struct RequestState {
  virtual ~RequestState() = default;
};
}  // namespace detail

/// Move-only handle for a non-blocking operation. Every request must
/// be completed with wait/waitall on the communicator that created it
/// (the usual MPI contract).
class Request {
 public:
  Request() = default;
  explicit Request(std::unique_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}

  Request(Request&& other) noexcept
      : state_(std::move(other.state_)),
        consumed_(std::exchange(other.consumed_, false)) {}
  Request& operator=(Request&& other) noexcept {
    state_ = std::move(other.state_);
    consumed_ = std::exchange(other.consumed_, false);
    return *this;
  }
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True until the request has been waited on (or never held state).
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// True when this request once held state that wait() has since
  /// consumed — distinguishes a double wait (a verifier diagnostic)
  /// from a wait on a never-initialized request.
  [[nodiscard]] bool consumed() const noexcept { return consumed_; }

  /// Implementation access; user code never needs this.
  [[nodiscard]] detail::RequestState* state() noexcept { return state_.get(); }

  /// Releases the state (called by wait implementations).
  std::unique_ptr<detail::RequestState> take() noexcept {
    consumed_ = state_ != nullptr;
    return std::move(state_);
  }

 private:
  std::unique_ptr<detail::RequestState> state_;
  bool consumed_ = false;
};

}  // namespace emc::mpi
