// Argument validation shared by every communicator implementation.
//
// Both the plain Comm and the encrypted SecureComm validate user tags
// and peer ranks through these helpers, so the two layers reject bad
// arguments with identical error text — and the secure layer can
// reject them *before* spending crypto time sealing a payload that
// could never be sent.
#pragma once

#include <string>

#include "emc/mpi/types.hpp"
#include "emc/verify/verifier.hpp"

namespace emc::mpi {

/// Throws MpiError unless 0 <= tag <= kMaxUserTag.
inline void validate_user_tag(int tag) {
  if (tag < 0 || tag > kMaxUserTag) {
    throw MpiError("user tag out of range: " + std::to_string(tag) +
                   " (valid range [0, " + std::to_string(kMaxUserTag) + "])");
  }
}

/// Like validate_user_tag, but kAnyTag is accepted (receive matching).
inline void validate_recv_tag(int tag) {
  if (tag != kAnyTag) validate_user_tag(tag);
}

/// Throws MpiError unless 0 <= peer < size.
inline void validate_peer(int peer, int size) {
  if (peer < 0 || peer >= size) {
    throw MpiError("peer rank out of range: " + std::to_string(peer) +
                   " (world size " + std::to_string(size) + ")");
  }
}

/// Like validate_peer, but kAnySource is accepted (receive matching).
inline void validate_recv_peer(int peer, int size) {
  if (peer != kAnySource) validate_peer(peer, size);
}

/// Shared rejection path for wait() on an invalid request: reports a
/// double wait to the verifier (when attached) and throws MpiError
/// either way, so misuse is loud even without verification.
[[noreturn]] inline void throw_invalid_wait(verify::Verifier* vrf, int rank,
                                            const Request& request) {
  if (vrf != nullptr) vrf->on_wait_invalid(rank, request.consumed());
  throw MpiError(request.consumed()
                     ? "wait on an already-completed request (double wait)"
                     : "wait on an empty request");
}

}  // namespace emc::mpi
