// Abstract communicator interface.
//
// Both the plain MiniMPI communicator (emc::mpi::Comm) and the
// encrypted wrapper (emc::secure::SecureComm) implement this surface,
// so applications — the examples, the NAS kernels, the benchmark
// harness — are written once and run over either. The routine set is
// exactly the one the paper instruments (§IV): Send/Recv/Isend/Irecv/
// Wait/Waitall plus Allgather, Alltoall, Alltoallv, Bcast, and the
// Barrier every benchmark needs.
#pragma once

#include <span>
#include <vector>

#include "emc/common/bytes.hpp"
#include "emc/mpi/types.hpp"

namespace emc::mpi {

class Communicator {
 public:
  virtual ~Communicator() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;

  // --- Point-to-point --------------------------------------------------
  /// Blocking send of @p data to @p dst with @p tag (0 <= tag <= kMaxUserTag).
  virtual void send(BytesView data, int dst, int tag) = 0;

  /// Blocking receive into @p buf (capacity >= incoming payload).
  /// Returns the matched source/tag and actual byte count.
  virtual Status recv(MutBytes buf, int src, int tag) = 0;

  /// Non-blocking send; @p data must stay valid until wait().
  virtual Request isend(BytesView data, int dst, int tag) = 0;

  /// Non-blocking receive; @p buf must stay valid until wait().
  virtual Request irecv(MutBytes buf, int src, int tag) = 0;

  /// Completes one request (fills receive buffers, frees send buffers).
  virtual Status wait(Request& request) = 0;

  /// Completes all requests in order of completion availability.
  virtual std::vector<Status> waitall(std::span<Request> requests) = 0;

  /// Combined blocking send + receive (deadlock-free pairwise exchange).
  virtual Status sendrecv(BytesView senddata, int dst, int sendtag,
                          MutBytes recvbuf, int src, int recvtag) = 0;

  // --- Collectives ------------------------------------------------------
  /// All ranks block until every rank entered.
  virtual void barrier() = 0;

  /// Root's @p data is replicated into every rank's @p data.
  virtual void bcast(MutBytes data, int root) = 0;

  /// Each rank contributes @p sendpart; @p recvall (size() * block
  /// bytes, block == sendpart.size()) receives all contributions in
  /// rank order.
  virtual void allgather(BytesView sendpart, MutBytes recvall) = 0;

  /// Personalized all-to-all with fixed @p block bytes per peer.
  /// sendbuf/recvbuf hold size() consecutive blocks.
  virtual void alltoall(BytesView sendbuf, MutBytes recvbuf,
                        std::size_t block) = 0;

  /// Vector all-to-all: block i of sendbuf (sendcounts[i] bytes at
  /// senddispls[i]) goes to rank i; symmetric for receives.
  virtual void alltoallv(BytesView sendbuf,
                         std::span<const std::size_t> sendcounts,
                         std::span<const std::size_t> senddispls,
                         MutBytes recvbuf,
                         std::span<const std::size_t> recvcounts,
                         std::span<const std::size_t> recvdispls) = 0;

  /// Root gathers equal-size blocks from all ranks (rank order).
  virtual void gather(BytesView sendpart, MutBytes recvall, int root) = 0;

  /// Root scatters equal-size blocks to all ranks.
  virtual void scatter(BytesView sendall, MutBytes recvpart, int root) = 0;
};

}  // namespace emc::mpi
