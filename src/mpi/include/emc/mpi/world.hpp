// The simulated MPI world: owns the discrete-event engine, the network
// fabric, and the per-rank mailboxes; `run_world` is the entry point
// that spawns one simulated process per rank.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "emc/common/bytes.hpp"
#include "emc/ft/state.hpp"
#include "emc/mpi/types.hpp"
#include "emc/netsim/fabric.hpp"
#include "emc/reliable/reliable.hpp"
#include "emc/sim/engine.hpp"
#include "emc/trace/trace.hpp"
#include "emc/verify/verifier.hpp"

namespace emc::mpi {

class Comm;

namespace detail {

/// Sender-owned rendezvous completion channel. The receiver fills in
/// `sender_complete` and notifies `done`; the envelope merely points
/// here so receiver-side teardown can never dangle the sender.
struct RndvHandshake {
  sim::Waitable done;
  bool completed = false;
  double sender_complete = 0.0;  ///< virtual time the send buffer is free
};

/// One in-flight message (eager payload or rendezvous announcement).
struct Envelope {
  int src = 0;               ///< sender's rank *within its communicator*
  int tag = 0;
  /// Sender's world rank: the coordinate used for fabric paths, fault
  /// injection, and the fault-tolerance layer's crash checks. Equal to
  /// `src` on the world communicator (epoch 0).
  int world_src = 0;
  /// Epoch of the sending communicator. Receives only match envelopes
  /// of their own epoch, so a revoked epoch's stragglers can never
  /// cross into the shrunken communicator built during recovery.
  std::uint64_t comm_epoch = 0;
  std::uint64_t seq = 0;     ///< global send order (deterministic matching)
  double arrival = 0.0;      ///< eager: payload arrival; rndv: RTS arrival
  bool rendezvous = false;
  Bytes payload;             ///< eager only
  BytesView rndv_data{};     ///< rndv: view into the sender's buffer
  RndvHandshake* handshake = nullptr;  ///< rndv only
  // Reliability-layer bookkeeping (only set when the ARQ channel is
  // active). With reliability on, `payload` stays clean in the mailbox
  // (the sender's retransmit buffer); `damage` is applied at delivery
  // so the link layer can redeliver the clean copy on an end-to-end
  // NACK. A poisoned envelope is a dead-link tombstone: receiving it
  // raises reliable::PeerUnreachable instead of blocking forever.
  std::uint64_t arq_seq = 0;
  std::uint32_t arq_transmissions = 0;  ///< retry budget spent in flight
  net::FaultDecision damage{};
  bool poisoned = false;
  /// NIC queue delay of the (last) transmission that produced this
  /// envelope; lets the receiver split its arrival sleep into
  /// nic_queue + wire trace spans.
  double nic_queue = 0.0;
  /// Virtual seconds the payload spent beyond the first hop of a
  /// routed path (relay store-and-forward + per-hop surcharge); feeds
  /// the receiver's relay_forward trace span. 0 on direct links.
  double relay_delay = 0.0;
  /// Earliest virtual time this payload may start on the wire: a
  /// pipelined chunk cannot transmit before its helper core finished
  /// sealing it (docs/PIPELINE.md). 0 (the default) keeps every
  /// existing path bit-exact; the ARQ layer honours it by clamping
  /// its send time.
  double wire_not_before = 0.0;
};

/// A posted (not yet matched) receive.
struct PendingRecv {
  int want_src = kAnySource;
  int want_tag = kAnyTag;
  std::uint64_t want_epoch = 0;  ///< posting communicator's epoch
  MutBytes buf{};
  std::unique_ptr<Envelope> matched;  ///< set when an envelope binds
  sim::Waitable cond;
};

/// Per-rank matching queues. Only ever touched by the currently
/// running simulated process (engine serialization), so lock-free.
struct Mailbox {
  std::deque<std::unique_ptr<Envelope>> unexpected;
  std::deque<PendingRecv*> posted;
};

}  // namespace detail

/// Configuration for one simulated world.
struct WorldConfig {
  net::ClusterConfig cluster;

  /// Control-message size used by the rendezvous RTS/CTS handshake.
  std::size_t ctrl_bytes = 64;

  /// Delivery timeout for blocking/waited receives, in virtual
  /// seconds; a receive with no matching message after this long
  /// throws MpiError instead of blocking forever. 0.0 means wait
  /// forever; negative values are rejected at World construction.
  /// Required for progress when the fault plan drops messages and the
  /// reliability layer is off.
  double recv_timeout = 0.0;

  /// Simulated-CPU speed relative to the build host: every charged
  /// host measurement (crypto, kernel compute) is multiplied by this
  /// before entering virtual time. 1.0 = "the cluster CPUs are as
  /// fast as this host"; benchmarks can calibrate it so the simulated
  /// nodes match the paper's Xeon E5-2620 v4.
  double cpu_scale = 1.0;

  /// Opt-in runtime correctness analysis (deadlock cycles, request
  /// lifecycle, collective call order, unmatched messages). Disabled
  /// by default: no verifier is constructed and the hot paths skip
  /// every hook. Verification never advances virtual time, so an
  /// enabled run replays the disabled one exactly.
  verify::Config verify;

  /// Opt-in ARQ reliability layer between the communicators and the
  /// fabric (see docs/RESILIENCE.md). Disabled by default: no channel
  /// is constructed and every wire path replays bit-exact.
  reliable::Config reliability;

  /// ULFM-style fault tolerance (revoke/agree/shrink — see
  /// docs/RESILIENCE.md). The layer activates when this is enabled or
  /// when the fault plan scripts rank crashes; otherwise no ft::State
  /// is built and every hot path skips the hooks.
  ft::Config ft;

  /// Opt-in virtual-time tracing (see docs/TRACING.md). When set, the
  /// recorder must be constructed with this world's rank count; the
  /// World installs the engine charge observer and every layer records
  /// attribution spans into it. Null (the default) keeps every
  /// instrumentation site on the single-branch fast path — no recorder
  /// is allocated and traced state is never touched. Shared so copies
  /// of a config (e.g. benchmark sweeps) observe one recorder.
  std::shared_ptr<trace::TraceRecorder> trace;
};

/// Shared state of a running world. Created by run_world; exposed so
/// benchmarks can build Comm objects for sub-experiments.
class World {
 public:
  explicit World(const WorldConfig& config);

  [[nodiscard]] int size() const noexcept { return fabric_.config().total_ranks(); }
  [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
  [[nodiscard]] net::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

  [[nodiscard]] detail::Mailbox& mailbox(int rank) {
    return mailboxes_.at(static_cast<std::size_t>(rank));
  }

  [[nodiscard]] std::uint64_t next_seq() noexcept { return seq_++; }

  /// The correctness verifier, or null when config.verify.enabled is
  /// false. Valid for the lifetime of the World.
  [[nodiscard]] verify::Verifier* verifier() noexcept {
    return verifier_.get();
  }

  /// The ARQ reliability channel, or null when config.reliability is
  /// disabled. Valid for the lifetime of the World.
  [[nodiscard]] reliable::Channel* reliability() noexcept {
    return channel_.get();
  }

  /// The attached trace recorder, or null when tracing is off.
  [[nodiscard]] trace::TraceRecorder* trace() noexcept {
    return config_.trace.get();
  }

  /// Fault-tolerance state (failure detector, revocation records,
  /// agreement decision board), or null when the ft layer is off.
  [[nodiscard]] ft::State* ft_state() noexcept { return ft_.get(); }

  /// Runs @p body once per rank inside the simulation; returns the
  /// virtual time at which the last rank finished. May be called
  /// repeatedly; virtual time accumulates. With verification enabled,
  /// the unmatched-message audit runs after every successful run and
  /// (in fail-fast mode) pending error diagnostics are thrown as
  /// verify::VerifyError.
  double run(const std::function<void(Comm&)>& body);

 private:
  WorldConfig config_;
  net::Fabric fabric_;
  sim::Engine engine_;
  std::vector<detail::Mailbox> mailboxes_;
  std::uint64_t seq_ = 0;
  std::unique_ptr<verify::Verifier> verifier_;  ///< after engine_ (attaches)
  std::unique_ptr<reliable::Channel> channel_;  ///< after fabric_ (attaches)
  std::unique_ptr<ft::State> ft_;               ///< null when ft is off
};

/// One-shot convenience: build a world and run @p body on every rank.
/// Returns the final virtual time (seconds).
double run_world(const WorldConfig& config,
                 const std::function<void(Comm&)>& body);

/// Outcome of one schedule-perturbation run (see run_perturbed).
struct PerturbedRun {
  std::uint64_t salt = 0;    ///< engine tie-break salt of this run
  bool failed = false;       ///< an exception escaped World::run
  std::string error;         ///< its what() when failed
  double end_time = 0.0;     ///< final virtual time (0 when failed)
  std::vector<verify::Diagnostic> diagnostics;
};

/// Schedule-perturbation mode: runs @p body under @p runs different
/// engine tie-break orders (run 0 uses the baseline FIFO order, later
/// runs use salts derived from @p seed), each in a fresh fully
/// verified World, and reports per-run diagnostics. Deterministic for
/// a fixed (config, seed): wildcard-receive matches or collective
/// orderings that only hold under one tie-break order show up as
/// failures or diagnostics in some perturbed run.
std::vector<PerturbedRun> run_perturbed(const WorldConfig& config,
                                        const std::function<void(Comm&)>& body,
                                        int runs, std::uint64_t seed = 1);

}  // namespace emc::mpi
