// EMC_LINT_ALLOW_FILE(ct-branch): schoolbook/Montgomery arithmetic is
// variable-time by construction (limb-count- and bit-dependent loops).
// The threat model (docs/RESILIENCE.md) scopes DH to simulated
// handshakes with ephemeral research keys; a production build would
// swap in a constant-time ladder.
// EMC_LINT_ALLOW_FILE(ct-index): same rationale — limb indices derive
// from operand magnitudes, which are secret-length-dependent here.
#include "emc/crypto/bignum.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "emc/common/rng.hpp"

namespace emc::crypto {

namespace {

using u64 = std::uint64_t;
__extension__ using u128 = unsigned __int128;

}  // namespace

void BigUint::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

void BigUint::wipe() noexcept {
  if (!limbs_.empty()) {
    secure_zero({reinterpret_cast<std::uint8_t*>(limbs_.data()),
                 limbs_.size() * sizeof(u64)});
  }
  limbs_.clear();
}

BigUint BigUint::from_u64(u64 value) {
  BigUint out;
  if (value != 0) out.limbs_.push_back(value);
  return out;
}

BigUint BigUint::from_hex(std::string_view hex) {
  BigUint out;
  std::string clean;
  clean.reserve(hex.size());
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (!std::isxdigit(static_cast<unsigned char>(c))) {
      throw std::invalid_argument("BigUint::from_hex: non-hex character");
    }
    clean.push_back(c);
  }
  // Consume 16 hex digits per limb from the least significant end.
  std::size_t end = clean.size();
  while (end > 0) {
    const std::size_t begin = end >= 16 ? end - 16 : 0;
    out.limbs_.push_back(
        std::stoull(clean.substr(begin, end - begin), nullptr, 16));
    end = begin;
  }
  out.trim();
  return out;
}

BigUint BigUint::from_bytes(BytesView be) {
  BigUint out;
  const std::size_t n = be.size();
  out.limbs_.resize((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t byte_from_lsb = n - 1 - i;
    out.limbs_[byte_from_lsb / 8] |=
        static_cast<u64>(be[i]) << (8 * (byte_from_lsb % 8));
  }
  out.trim();
  return out;
}

Bytes BigUint::to_bytes(std::size_t min_len) const {
  Bytes out;
  const std::size_t bytes = (bit_length() + 7) / 8;
  const std::size_t total = std::max(bytes, min_len);
  out.resize(total, 0);
  for (std::size_t i = 0; i < bytes; ++i) {
    out[total - 1 - i] = static_cast<std::uint8_t>(
        limbs_[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

std::string BigUint::to_hex() const {
  if (is_zero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(digits[(*it >> shift) & 0xf]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::size_t BigUint::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  return (limbs_.size() - 1) * 64 +
         (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool BigUint::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigUint::compare(const BigUint& other) const noexcept {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint BigUint::add(const BigUint& other) const {
  BigUint out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 sum = static_cast<u128>(i < limbs_.size() ? limbs_[i] : 0) +
                     (i < other.limbs_.size() ? other.limbs_[i] : 0) + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.trim();
  return out;
}

BigUint BigUint::sub(const BigUint& other) const {
  if (*this < other) {
    throw std::underflow_error("BigUint::sub would underflow");
  }
  BigUint out;
  out.limbs_.resize(limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 rhs = (i < other.limbs_.size() ? other.limbs_[i] : 0);
    const u64 lhs = limbs_[i];
    const u64 with_borrow = rhs + borrow;
    // Detect wraparound of rhs + borrow, then of the subtraction.
    const bool overflow = with_borrow < rhs;
    out.limbs_[i] = lhs - with_borrow;
    borrow = (overflow || lhs < with_borrow) ? 1 : 0;
  }
  out.trim();
  return out;
}

BigUint BigUint::mul(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return {};
  BigUint out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.trim();
  return out;
}

BigUint BigUint::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  BigUint out;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

std::pair<BigUint, BigUint> BigUint::divmod(const BigUint& m) const {
  if (m.is_zero()) throw std::domain_error("BigUint division by zero");
  if (*this < m) {
    return {BigUint{}, *this};
  }
  const std::size_t shift = bit_length() - m.bit_length();
  BigUint divisor = m.shifted_left(shift);
  BigUint remainder = *this;
  BigUint quotient;
  quotient.limbs_.assign(shift / 64 + 1, 0);
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (remainder >= divisor) {
      remainder = remainder.sub(divisor);
      quotient.limbs_[i / 64] |= u64{1} << (i % 64);
    }
    // divisor >>= 1
    for (std::size_t j = 0; j < divisor.limbs_.size(); ++j) {
      divisor.limbs_[j] >>= 1;
      if (j + 1 < divisor.limbs_.size()) {
        divisor.limbs_[j] |= divisor.limbs_[j + 1] << 63;
      }
    }
    divisor.trim();
  }
  quotient.trim();
  return {std::move(quotient), std::move(remainder)};
}

BigUint BigUint::mod(const BigUint& m) const { return divmod(m).second; }

BigUint BigUint::modexp_slow(const BigUint& base, const BigUint& exp,
                             const BigUint& m) {
  if (m.is_zero()) throw std::domain_error("modexp modulus is zero");
  BigUint result = from_u64(1).mod(m);
  BigUint b = base.mod(m);
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mul(result, b).mod(m);
    b = mul(b, b).mod(m);
  }
  return result;
}

// ------------------------------------------------------------ Montgomery

namespace {

/// -m^{-1} mod 2^64 via Newton iteration (m odd).
u64 mont_n0(u64 m0) noexcept {
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - m0 * inv;  // inv = m0^{-1} mod 2^64
  return ~inv + 1;                                  // -inv
}

/// CIOS Montgomery multiplication: returns a*b*R^{-1} mod m with
/// R = 2^(64*n); all operands have exactly n limbs (m normalized).
void mont_mul(const std::vector<u64>& a, const std::vector<u64>& b,
              const std::vector<u64>& m, u64 n0, std::vector<u64>& out,
              std::vector<u64>& scratch) {
  const std::size_t n = m.size();
  scratch.assign(n + 2, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // scratch += a[i] * b
    u64 carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const u128 cur =
          static_cast<u128>(a[i]) * b[j] + scratch[j] + carry;
      scratch[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 top = static_cast<u128>(scratch[n]) + carry;
    scratch[n] = static_cast<u64>(top);
    scratch[n + 1] = static_cast<u64>(top >> 64);

    // q = scratch[0] * n0 mod 2^64; scratch += q * m; scratch >>= 64
    const u64 q = scratch[0] * n0;
    carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const u128 cur = static_cast<u128>(q) * m[j] + scratch[j] + carry;
      scratch[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    top = static_cast<u128>(scratch[n]) + carry;
    scratch[n] = static_cast<u64>(top);
    scratch[n + 1] += static_cast<u64>(top >> 64);

    // Shift right one limb.
    for (std::size_t j = 0; j < n + 1; ++j) scratch[j] = scratch[j + 1];
    scratch[n + 1] = 0;
  }

  // Conditional final subtraction.
  bool ge = scratch[n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t j = n; j-- > 0;) {
      if (scratch[j] != m[j]) {
        ge = scratch[j] > m[j];
        break;
      }
    }
  }
  out.assign(n, 0);
  if (ge) {
    u64 borrow = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const u64 with_borrow = m[j] + borrow;
      const bool overflow = with_borrow < m[j];
      out[j] = scratch[j] - with_borrow;
      borrow = (overflow || scratch[j] < with_borrow) ? 1 : 0;
    }
  } else {
    std::copy(scratch.begin(), scratch.begin() + static_cast<long>(n),
              out.begin());
  }
}

}  // namespace

BigUint BigUint::modexp(const BigUint& base, const BigUint& exp,
                        const BigUint& m) {
  if (m.is_zero()) throw std::domain_error("modexp modulus is zero");
  if (!m.is_odd()) return modexp_slow(base, exp, m);  // Montgomery needs odd m
  if (m.compare(from_u64(1)) == 0) return {};

  const std::size_t n = m.limbs_.size();
  std::vector<u64> mod_limbs = m.limbs_;
  const u64 n0 = mont_n0(mod_limbs[0]);

  // R mod m and R^2 mod m with R = 2^(64n).
  const BigUint r = from_u64(1).shifted_left(64 * n);
  const BigUint r_mod = r.mod(m);
  const BigUint r2_mod = mul(r_mod, r_mod).mod(m);

  const auto to_limbs = [n](const BigUint& x) {
    std::vector<u64> limbs = x.limbs_;
    limbs.resize(n, 0);
    return limbs;
  };

  std::vector<u64> result = to_limbs(r_mod);        // 1 in Montgomery form
  std::vector<u64> b;
  std::vector<u64> scratch;
  mont_mul(to_limbs(base.mod(m)), to_limbs(r2_mod), mod_limbs, n0, b,
           scratch);                                 // base -> Montgomery

  const std::size_t bits = exp.bit_length();
  std::vector<u64> tmp;
  for (std::size_t i = bits; i-- > 0;) {
    mont_mul(result, result, mod_limbs, n0, tmp, scratch);
    result.swap(tmp);
    if (exp.bit(i)) {
      mont_mul(result, b, mod_limbs, n0, tmp, scratch);
      result.swap(tmp);
    }
  }
  // Leave Montgomery form: multiply by 1.
  std::vector<u64> one(n, 0);
  one[0] = 1;
  mont_mul(result, one, mod_limbs, n0, tmp, scratch);

  BigUint out;
  out.limbs_ = std::move(tmp);
  out.trim();
  return out;
}

BigUint BigUint::random_below(const BigUint& bound, std::uint64_t seed) {
  if (bound.is_zero()) throw std::domain_error("random_below(0)");
  Xoshiro256 rng(seed);
  const std::size_t bytes = (bound.bit_length() + 7) / 8;
  for (;;) {
    Bytes raw(bytes);
    rng.fill(raw);
    // Mask the top byte to the bound's bit length to cut rejections.
    const std::size_t top_bits = bound.bit_length() % 8;
    if (top_bits != 0) {
      raw[0] &= static_cast<std::uint8_t>((1u << top_bits) - 1);
    }
    BigUint candidate = from_bytes(raw);
    if (candidate < bound) return candidate;
  }
}

bool BigUint::probably_prime(const BigUint& n, int rounds,
                             std::uint64_t seed) {
  if (n < from_u64(2)) return false;
  for (u64 small : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull}) {
    const BigUint p = from_u64(small);
    if (n == p) return true;
    if (n.mod(p).is_zero()) return false;
  }
  // n - 1 = d * 2^r with d odd.
  const BigUint n_minus_1 = n.sub(from_u64(1));
  BigUint d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    // d >>= 1
    BigUint half;
    half.limbs_.resize(d.limbs_.size());
    for (std::size_t j = 0; j < d.limbs_.size(); ++j) {
      half.limbs_[j] = d.limbs_[j] >> 1;
      if (j + 1 < d.limbs_.size()) {
        half.limbs_[j] |= d.limbs_[j + 1] << 63;
      }
    }
    half.trim();
    d = std::move(half);
    ++r;
  }

  const BigUint two = from_u64(2);
  const BigUint n_minus_3 = n.sub(from_u64(3));
  for (int round = 0; round < rounds; ++round) {
    const BigUint a =
        random_below(n_minus_3, seed + static_cast<u64>(round)).add(two);
    BigUint x = modexp(a, d, n);
    if (x == from_u64(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < std::max<std::size_t>(r, 1); ++i) {
      x = modexp(x, two, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

}  // namespace emc::crypto
