#include "emc/crypto/sha256.hpp"

#include <cstring>
#include <stdexcept>

namespace emc::crypto {

namespace {

// First 32 bits of the fractional parts of the cube roots of the
// first 64 primes (FIPS 180-4 §4.2.2).
constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

Sha256::Sha256() noexcept { reset(); }

void Sha256::reset() noexcept {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha256::process_block(const std::uint8_t block[kSha256Block]) noexcept {
  std::uint32_t w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = load_be32(block + 4 * t);
  }
  for (int t = 16; t < 64; ++t) {
    const std::uint32_t s0 =
        rotr(w[t - 15], 7) ^ rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[t - 2], 17) ^ rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];
  std::uint32_t f = state_[5];
  std::uint32_t g = state_[6];
  std::uint32_t h = state_[7];

  for (int t = 0; t < 64; ++t) {
    const std::uint32_t sigma1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + sigma1 + ch + kK[t] + w[t];
    const std::uint32_t sigma0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = sigma0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(BytesView data) noexcept {
  total_bytes_ += data.size();
  std::size_t i = 0;
  if (buffered_ > 0) {
    const std::size_t take =
        std::min(kSha256Block - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    i = take;
    if (buffered_ == kSha256Block) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (i + kSha256Block <= data.size()) {
    process_block(data.data() + i);
    i += kSha256Block;
  }
  if (i < data.size()) {
    std::memcpy(buffer_.data(), data.data() + i, data.size() - i);
    buffered_ = data.size() - i;
  }
}

void Sha256::finalize(std::uint8_t out[kSha256Digest]) noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(BytesView(&pad_byte, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(BytesView(&zero, 1));
  }
  std::uint8_t length_block[8];
  store_be64(length_block, bit_length);
  update(BytesView(length_block, 8));
  for (int i = 0; i < 8; ++i) {
    store_be32(out + 4 * i, state_[static_cast<std::size_t>(i)]);
  }
}

Bytes Sha256::digest(BytesView data) {
  Sha256 hasher;
  hasher.update(data);
  Bytes out(kSha256Digest);
  hasher.finalize(out.data());
  return out;
}

Bytes hmac_sha256(BytesView key, BytesView data) {
  std::array<std::uint8_t, kSha256Block> k_block{};
  if (key.size() > kSha256Block) {
    const Bytes hashed = Sha256::digest(key);
    std::memcpy(k_block.data(), hashed.data(), hashed.size());
  } else if (!key.empty()) {
    std::memcpy(k_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kSha256Block> ipad{};
  std::array<std::uint8_t, kSha256Block> opad{};
  for (std::size_t i = 0; i < kSha256Block; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  Bytes inner_digest(kSha256Digest);
  inner.finalize(inner_digest.data());

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  Bytes out(kSha256Digest);
  outer.finalize(out.data());
  secure_zero(k_block);
  secure_zero(ipad);
  secure_zero(opad);
  return out;
}

Bytes hkdf_sha256(BytesView ikm, BytesView salt, BytesView info,
                  std::size_t length) {
  if (length > 255 * kSha256Digest) {
    throw std::invalid_argument("hkdf: requested length too large");
  }
  // Extract.
  Bytes prk = hmac_sha256(salt, ikm);
  // Expand.
  Bytes out;
  out.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    const std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(),
               t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  secure_zero(prk);
  secure_zero(t);
  return out;
}

}  // namespace emc::crypto
