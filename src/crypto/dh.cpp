#include "emc/crypto/dh.hpp"

#include <stdexcept>

namespace emc::crypto {

const DhGroup& modp_group14() {
  static const DhGroup group = [] {
    DhGroup g;
    g.name = "modp-2048 (RFC 3526 group 14)";
    g.p = BigUint::from_hex(
        "FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1"
        "29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD"
        "EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245"
        "E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED"
        "EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D"
        "C2007CB8 A163BF05 98DA4836 1C55D39A 69163FA8 FD24CF5F"
        "83655D23 DCA3AD96 1C62F356 208552BB 9ED52907 7096966D"
        "670C354E 4ABC9804 F1746C08 CA18217C 32905E46 2E36CE3B"
        "E39E772C 180E8603 9B2783A2 EC07A28F B5C55DF0 6F4C52C9"
        "DE2BCBF6 95581718 3995497C EA956AE5 15D22618 98FA0510"
        "15728E5A 8AACAA68 FFFFFFFF FFFFFFFF");
    g.g = BigUint::from_u64(2);
    return g;
  }();
  return group;
}

DhGroup generate_test_group(std::size_t bits, std::uint64_t seed) {
  if (bits < 16) throw std::invalid_argument("test group too small");
  // Seeded random odd starting point with the top bit set.
  BigUint candidate = BigUint::random_below(
      BigUint::from_u64(1).shifted_left(bits), seed);
  candidate = candidate.add(BigUint::from_u64(1).shifted_left(bits - 1));
  if (!candidate.is_odd()) candidate = candidate.add(BigUint::from_u64(1));

  const BigUint two = BigUint::from_u64(2);
  while (!BigUint::probably_prime(candidate, 12, seed ^ 0x9e3779b9)) {
    candidate = candidate.add(two);
  }
  DhGroup g;
  g.name = "test-modp-" + std::to_string(bits);
  g.p = candidate;
  g.g = BigUint::from_u64(5);
  return g;
}

DhKeyPair dh_generate(const DhGroup& group, std::uint64_t seed) {
  // Private key in [2, p-2].
  const BigUint bound = group.p.sub(BigUint::from_u64(3));
  DhKeyPair pair;
  pair.private_key =
      BigUint::random_below(bound, seed).add(BigUint::from_u64(2));
  pair.public_key = BigUint::modexp(group.g, pair.private_key, group.p);
  return pair;
}

Bytes dh_shared_secret(const DhGroup& group, const BigUint& private_key,
                       const BigUint& peer_public) {
  if (peer_public.is_zero() || peer_public >= group.p) {
    throw std::invalid_argument("peer public key out of range");
  }
  BigUint secret = BigUint::modexp(peer_public, private_key, group.p);
  Bytes out = secret.to_bytes(group.byte_length());
  secret.wipe();
  return out;
}

}  // namespace emc::crypto
