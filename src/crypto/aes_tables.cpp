// S-box tables generated from the field definition rather than
// transcribed, so a typo cannot silently corrupt the cipher; the FIPS
// known-answer tests validate the construction.
#include "emc/crypto/aes.hpp"

namespace emc::crypto::detail {

namespace {

constexpr std::uint8_t gf_inverse(std::uint8_t a) noexcept {
  if (a == 0) return 0;
  // a^254 = a^-1 in GF(2^8).
  std::uint8_t result = 1;
  std::uint8_t base = a;
  int exp = 254;
  while (exp > 0) {
    if ((exp & 1) != 0) result = gf_mul(result, base);
    base = gf_mul(base, base);
    exp >>= 1;
  }
  return result;
}

constexpr std::uint8_t rotl8(std::uint8_t x, int k) noexcept {
  return static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(x << k) |
      static_cast<std::uint8_t>(x >> (8 - k)));
}

constexpr std::array<std::uint8_t, 256> make_sbox() noexcept {
  std::array<std::uint8_t, 256> box{};
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t b = gf_inverse(static_cast<std::uint8_t>(i));
    box[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63);
  }
  return box;
}

constexpr std::array<std::uint8_t, 256> make_inv_sbox(
    const std::array<std::uint8_t, 256>& box) noexcept {
  std::array<std::uint8_t, 256> inv{};
  for (int i = 0; i < 256; ++i) {
    inv[box[static_cast<std::size_t>(i)]] = static_cast<std::uint8_t>(i);
  }
  return inv;
}

constexpr auto kSbox = make_sbox();
constexpr auto kInvSbox = make_inv_sbox(kSbox);

static_assert(kSbox[0x00] == 0x63, "S-box generation broken");
static_assert(kSbox[0x01] == 0x7c, "S-box generation broken");
static_assert(kSbox[0x53] == 0xed, "S-box generation broken");
static_assert(kInvSbox[0x63] == 0x00, "inverse S-box generation broken");

}  // namespace

const std::array<std::uint8_t, 256>& aes_sbox() noexcept { return kSbox; }
const std::array<std::uint8_t, 256>& aes_inv_sbox() noexcept {
  return kInvSbox;
}

}  // namespace emc::crypto::detail
