#include "emc/crypto/provider.hpp"

#include <memory>
#include <stdexcept>

#include "emc/crypto/gcm.hpp"

namespace emc::crypto {

namespace {

using SoftFast = GcmKey<AesTtable, GhashTable8>;      // tuned software tier
using SoftSlow = GcmKey<AesPortable, GhashTable4>;    // portable tier

void check_key_size(const Provider& p, BytesView key) {
  if (!p.supports_key_size(key.size())) {
    throw std::invalid_argument(p.name + " does not support " +
                                std::to_string(key.size() * 8) +
                                "-bit keys");
  }
}

/// The tuned hardware path when available, otherwise the best software
/// tier (keeps the registry usable on hosts without AES-NI).
AeadKeyPtr make_hw_tier(BytesView key) {
  if (gcm_ni_available()) return make_gcm_ni(key);
  return std::make_unique<SoftFast>(key, "ttable+tab8 (no AES-NI host)");
}

/// The mid-grade hardware path (AES-NI, per-block GHASH): the real
/// Libsodium only exposes AES-256-GCM on AES-NI hosts, but its
/// implementation is not OpenSSL-grade — this tier captures that gap.
AeadKeyPtr make_hw_basic_tier(BytesView key) {
  if (gcm_ni_available()) return make_gcm_ni_basic(key);
  return std::make_unique<SoftFast>(key, "ttable+tab8 (no AES-NI host)");
}

/// CryptoPP built with the MVAPICH toolchain (paper Fig. 9): that
/// build enabled the vectorized bulk path, so throughput jumps for
/// messages of 64 KB and above while small-buffer speed stays at the
/// portable-build tier.
class CryptoppOptKey final : public AeadKey {
 public:
  explicit CryptoppOptKey(BytesView key)
      : slow_(key, "ttable+tab8"), fast_(make_hw_basic_tier(key)) {}

  void seal(BytesView nonce, BytesView aad, BytesView pt,
            MutBytes out) const override {
    tier(pt.size()).seal(nonce, aad, pt, out);
  }
  bool open(BytesView nonce, BytesView aad, BytesView ct_tag,
            MutBytes out) const override {
    return tier(out.size()).open(nonce, aad, ct_tag, out);
  }
  [[nodiscard]] std::size_t key_size() const override {
    return slow_.key_size();
  }
  [[nodiscard]] const char* engine() const override {
    return "ttable+tab8 / hw basic (>=64KB)";
  }

 private:
  static constexpr std::size_t kBulkThreshold = 64 * 1024;
  [[nodiscard]] const AeadKey& tier(std::size_t payload) const {
    return payload >= kBulkThreshold ? *fast_
                                     : static_cast<const AeadKey&>(slow_);
  }

  SoftFast slow_;
  AeadKeyPtr fast_;
};

std::vector<Provider> build_registry() {
  std::vector<Provider> registry;

  registry.push_back(Provider{
      .name = "boringssl-sim",
      .models = "BoringSSL (hardware AES-GCM path)",
      .key_sizes = {16, 24, 32},
      .make_key = [](BytesView key) { return make_hw_tier(key); },
  });
  registry.push_back(Provider{
      .name = "openssl-sim",
      .models = "OpenSSL 1.1.1 (hardware AES-GCM path; on par with "
                "BoringSSL, paper §V)",
      .key_sizes = {16, 24, 32},
      .make_key = [](BytesView key) { return make_hw_tier(key); },
  });
  registry.push_back(Provider{
      .name = "libsodium-sim",
      .models = "Libsodium 1.0.16 (AES-NI, per-block GHASH; AES-256-GCM "
                "only, and only on AES-NI hosts — like the real library)",
      .key_sizes = {32},
      .make_key = [](BytesView key) { return make_hw_basic_tier(key); },
  });
  registry.push_back(Provider{
      .name = "cryptopp-sim",
      .models = "CryptoPP 7.0 built with gcc 4.8.5 (portable software "
                "build without the ASM paths, Fig. 2)",
      .key_sizes = {16, 24, 32},
      .make_key =
          [](BytesView key) {
            return std::make_unique<SoftFast>(key, "ttable+tab8");
          },
  });
  registry.push_back(Provider{
      .name = "cryptopp-opt-sim",
      .models = "CryptoPP 7.0 built with the MVAPICH toolchain (bulk fast "
                "path, Fig. 9)",
      .key_sizes = {16, 24, 32},
      .make_key =
          [](BytesView key) {
            return std::make_unique<CryptoppOptKey>(key);
          },
  });

  for (auto& p : registry) {
    const Provider* self = &p;
    auto inner = p.make_key;
    p.make_key = [self, inner](BytesView key) {
      check_key_size(*self, key);
      return inner(key);
    };
  }
  return registry;
}

}  // namespace

const std::vector<Provider>& providers() {
  static const std::vector<Provider> registry = build_registry();
  return registry;
}

std::vector<const Provider*> reported_providers(bool optimized_cryptopp) {
  return {
      &provider("boringssl-sim"),
      &provider("libsodium-sim"),
      &provider(optimized_cryptopp ? "cryptopp-opt-sim" : "cryptopp-sim"),
  };
}

const Provider& provider(std::string_view name) {
  for (const Provider& p : providers()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown crypto provider: " +
                              std::string(name));
}

AeadKeyPtr make_aes_gcm(std::string_view provider_name, BytesView key) {
  return provider(provider_name).make_key(key);
}

Bytes demo_key(std::size_t bytes) {
  // Fixed, obviously non-secret pattern — mirrors the paper's
  // hardcoded experiment key.
  Bytes key(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    key[i] = static_cast<std::uint8_t>(0xA5 ^ (i * 7));
  }
  return key;
}

bool self_test(const Provider& p) {
  // NIST AES-256-GCM known answer: zero key, zero nonce, one zero block.
  // EMC_LINT_ALLOW(secret-wipe): published NIST KAT vector, not a live key
  const Bytes key(32, 0x00);
  const Bytes nonce(kGcmNonceBytes, 0x00);
  const Bytes pt(16, 0x00);
  const Bytes expect_ct = from_hex("cea7403d4d606b6e074ec5d3baf39d18");
  const Bytes expect_tag = from_hex("d0d1c8a799996bf0265b98b5d48ab919");

  const AeadKeyPtr k = p.make_key(key);
  Bytes out(pt.size() + kGcmTagBytes);
  k->seal(nonce, {}, pt, out);
  if (!ct_equal(BytesView(out).first(16), expect_ct)) return false;
  if (!ct_equal(BytesView(out).last(16), expect_tag)) return false;

  Bytes round(pt.size());
  if (!k->open(nonce, {}, out, round)) return false;
  if (!ct_equal(round, pt)) return false;

  Bytes tampered = out;
  tampered[3] ^= 0x80;
  if (k->open(nonce, {}, tampered, round)) return false;
  return true;
}

}  // namespace emc::crypto
