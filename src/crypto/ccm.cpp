#include "emc/crypto/ccm.hpp"

#include <cstring>
#include <stdexcept>

#include "emc/crypto/aes.hpp"

namespace emc::crypto {

namespace {

// With a 12-byte nonce, the length field Q occupies q = 15-12 = 3
// bytes (messages up to 2^24-1 bytes) and the tag is 16 bytes.
constexpr std::size_t kQ = 15 - kGcmNonceBytes;

class CcmKey final : public AeadKey {
 public:
  explicit CcmKey(BytesView key) : aes_(key), key_size_(key.size()) {}

  void seal(BytesView nonce, BytesView aad, BytesView pt,
            MutBytes out) const override {
    check_nonce(nonce);
    if (out.size() != pt.size() + kGcmTagBytes) {
      throw std::invalid_argument("ccm seal: out must be pt+16 bytes");
    }
    if (pt.size() >= (1u << (8 * kQ))) {
      throw std::invalid_argument("ccm: message too long for 12-byte nonce");
    }
    std::uint8_t tag[kAesBlock];
    cbc_mac(nonce, aad, pt, tag);
    ctr_crypt(nonce, pt, out.first(pt.size()));
    // Encrypt the tag with counter block 0.
    std::uint8_t a0[kAesBlock];
    counter_block(nonce, 0, a0);
    std::uint8_t s0[kAesBlock];
    aes_.encrypt_block(a0, s0);
    for (std::size_t i = 0; i < kGcmTagBytes; ++i) {
      out[pt.size() + i] = static_cast<std::uint8_t>(tag[i] ^ s0[i]);
    }
  }

  bool open(BytesView nonce, BytesView aad, BytesView ct_tag,
            MutBytes out) const override {
    check_nonce(nonce);
    if (ct_tag.size() < kGcmTagBytes) return false;
    const std::size_t ct_len = ct_tag.size() - kGcmTagBytes;
    if (out.size() != ct_len) {
      throw std::invalid_argument("ccm open: out must be ct-16 bytes");
    }
    ctr_crypt(nonce, ct_tag.first(ct_len), out);

    std::uint8_t tag[kAesBlock];
    cbc_mac(nonce, aad, out, tag);
    std::uint8_t a0[kAesBlock];
    counter_block(nonce, 0, a0);
    std::uint8_t s0[kAesBlock];
    aes_.encrypt_block(a0, s0);
    std::uint8_t expected[kGcmTagBytes];
    for (std::size_t i = 0; i < kGcmTagBytes; ++i) {
      expected[i] = static_cast<std::uint8_t>(tag[i] ^ s0[i]);
    }
    if (!ct_equal(BytesView(expected, kGcmTagBytes),
                  ct_tag.last(kGcmTagBytes))) {
      secure_zero(out);
      return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t key_size() const override { return key_size_; }
  [[nodiscard]] const char* engine() const override {
    return "aes-ccm (cbc-mac + ctr, ttable)";
  }

 private:
  static void check_nonce(BytesView nonce) {
    if (nonce.size() != kGcmNonceBytes) {
      throw std::invalid_argument("ccm: nonce must be 12 bytes here");
    }
  }

  /// A_i = flags(q-1) || N || i  (SP 800-38C A.3).
  static void counter_block(BytesView nonce, std::uint32_t i,
                            std::uint8_t out[kAesBlock]) {
    out[0] = static_cast<std::uint8_t>(kQ - 1);
    std::memcpy(out + 1, nonce.data(), kGcmNonceBytes);
    out[13] = static_cast<std::uint8_t>(i >> 16);
    out[14] = static_cast<std::uint8_t>(i >> 8);
    out[15] = static_cast<std::uint8_t>(i);
  }

  void ctr_crypt(BytesView nonce, BytesView in, MutBytes out) const {
    std::uint8_t block[kAesBlock];
    std::uint8_t keystream[kAesBlock];
    std::uint32_t counter = 1;
    std::size_t i = 0;
    while (i < in.size()) {
      counter_block(nonce, counter++, block);
      aes_.encrypt_block(block, keystream);
      const std::size_t n =
          std::min<std::size_t>(kAesBlock, in.size() - i);
      for (std::size_t j = 0; j < n; ++j) {
        out[i + j] = static_cast<std::uint8_t>(in[i + j] ^ keystream[j]);
      }
      i += n;
    }
    secure_zero(keystream);
  }

  /// CBC-MAC over B0 || encoded(aad) || pt (SP 800-38C A.2).
  void cbc_mac(BytesView nonce, BytesView aad, BytesView pt,
               std::uint8_t mac[kAesBlock]) const {
    std::uint8_t block[kAesBlock];
    // B0: flags = 64*[a>0] + 8*((t-2)/2) + (q-1); t = 16.
    block[0] = static_cast<std::uint8_t>(
        (aad.empty() ? 0 : 0x40) | (((kGcmTagBytes - 2) / 2) << 3) |
        (kQ - 1));
    std::memcpy(block + 1, nonce.data(), kGcmNonceBytes);
    block[13] = static_cast<std::uint8_t>(pt.size() >> 16);
    block[14] = static_cast<std::uint8_t>(pt.size() >> 8);
    block[15] = static_cast<std::uint8_t>(pt.size());
    aes_.encrypt_block(block, mac);

    const auto absorb = [&](BytesView data, std::size_t prefix_used) {
      // Continues the CBC chain over data, with `prefix_used` bytes of
      // the current block already consumed by a length prefix.
      std::size_t fill = prefix_used;
      std::uint8_t cur[kAesBlock];
      std::memset(cur, 0, kAesBlock);
      for (std::size_t i = 0; i < data.size(); ++i) {
        cur[fill++] = data[i];
        if (fill == kAesBlock) {
          for (std::size_t j = 0; j < kAesBlock; ++j) cur[j] ^= mac[j];
          aes_.encrypt_block(cur, mac);
          std::memset(cur, 0, kAesBlock);
          fill = 0;
        }
      }
      if (fill != 0) {
        for (std::size_t j = 0; j < kAesBlock; ++j) cur[j] ^= mac[j];
        aes_.encrypt_block(cur, mac);
      }
    };

    if (!aad.empty()) {
      if (aad.size() >= 0xFF00) {
        throw std::invalid_argument("ccm: AAD longer than supported");
      }
      // 2-byte big-endian AAD length prefix shares the first block.
      std::uint8_t prefix_block[kAesBlock] = {};
      prefix_block[0] = static_cast<std::uint8_t>(aad.size() >> 8);
      prefix_block[1] = static_cast<std::uint8_t>(aad.size());
      const std::size_t first =
          std::min<std::size_t>(kAesBlock - 2, aad.size());
      std::memcpy(prefix_block + 2, aad.data(), first);
      if (first + 2 == kAesBlock || first == aad.size()) {
        for (std::size_t j = 0; j < kAesBlock; ++j) {
          prefix_block[j] ^= mac[j];
        }
        aes_.encrypt_block(prefix_block, mac);
        if (first < aad.size()) absorb(aad.subspan(first), 0);
      }
    }
    absorb(pt, 0);
  }

  AesTtable aes_;
  std::size_t key_size_;
};

}  // namespace

AeadKeyPtr make_aes_ccm(BytesView key) {
  return std::make_unique<CcmKey>(key);
}

}  // namespace emc::crypto
