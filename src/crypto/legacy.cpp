#include "emc/crypto/legacy.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace emc::crypto::legacy {

namespace {

Bytes pkcs7_pad(BytesView pt) {
  const std::size_t pad = kAesBlock - (pt.size() % kAesBlock);
  Bytes padded(pt.begin(), pt.end());
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));
  return padded;
}

Bytes pkcs7_unpad(Bytes padded) {
  if (padded.empty() || padded.size() % kAesBlock != 0) {
    throw std::runtime_error("pkcs7: invalid ciphertext length");
  }
  const std::uint8_t pad = padded.back();
  if (pad == 0 || pad > kAesBlock || pad > padded.size()) {
    throw std::runtime_error("pkcs7: invalid padding byte");
  }
  for (std::size_t i = padded.size() - pad; i < padded.size(); ++i) {
    if (padded[i] != pad) throw std::runtime_error("pkcs7: corrupt padding");
  }
  padded.resize(padded.size() - pad);
  return padded;
}

void check_iv(BytesView iv) {
  if (iv.size() != kAesBlock) {
    throw std::invalid_argument("IV must be 16 bytes");
  }
}

}  // namespace

Bytes ecb_encrypt(const AesPortable& aes, BytesView pt) {
  Bytes padded = pkcs7_pad(pt);
  for (std::size_t i = 0; i < padded.size(); i += kAesBlock) {
    aes.encrypt_block(padded.data() + i, padded.data() + i);
  }
  return padded;
}

Bytes ecb_decrypt(const AesPortable& aes, BytesView ct) {
  if (ct.empty() || ct.size() % kAesBlock != 0) {
    throw std::runtime_error("ecb: invalid ciphertext length");
  }
  Bytes out(ct.begin(), ct.end());
  for (std::size_t i = 0; i < out.size(); i += kAesBlock) {
    aes.decrypt_block(out.data() + i, out.data() + i);
  }
  return pkcs7_unpad(std::move(out));
}

Bytes cbc_encrypt(const AesPortable& aes, BytesView iv, BytesView pt) {
  check_iv(iv);
  Bytes out = pkcs7_pad(pt);
  const std::uint8_t* chain = iv.data();
  for (std::size_t i = 0; i < out.size(); i += kAesBlock) {
    for (std::size_t j = 0; j < kAesBlock; ++j) out[i + j] ^= chain[j];
    aes.encrypt_block(out.data() + i, out.data() + i);
    chain = out.data() + i;
  }
  return out;
}

Bytes cbc_decrypt(const AesPortable& aes, BytesView iv, BytesView ct) {
  check_iv(iv);
  if (ct.empty() || ct.size() % kAesBlock != 0) {
    throw std::runtime_error("cbc: invalid ciphertext length");
  }
  Bytes out(ct.size());
  std::uint8_t chain[kAesBlock];
  std::copy(iv.begin(), iv.end(), chain);
  for (std::size_t i = 0; i < ct.size(); i += kAesBlock) {
    aes.decrypt_block(ct.data() + i, out.data() + i);
    for (std::size_t j = 0; j < kAesBlock; ++j) out[i + j] ^= chain[j];
    std::copy(ct.begin() + static_cast<std::ptrdiff_t>(i),
              ct.begin() + static_cast<std::ptrdiff_t>(i + kAesBlock), chain);
  }
  return pkcs7_unpad(std::move(out));
}

Bytes ctr_crypt(const AesPortable& aes, BytesView iv, BytesView data) {
  check_iv(iv);
  Bytes out(data.begin(), data.end());
  std::uint8_t counter[kAesBlock];
  std::copy(iv.begin(), iv.end(), counter);
  std::uint8_t keystream[kAesBlock];
  for (std::size_t i = 0; i < out.size(); i += kAesBlock) {
    aes.encrypt_block(counter, keystream);
    const std::size_t n = std::min(kAesBlock, out.size() - i);
    for (std::size_t j = 0; j < n; ++j) out[i + j] ^= keystream[j];
    // Increment the full counter block (big-endian).
    for (int j = kAesBlock - 1; j >= 0; --j) {
      if (++counter[j] != 0) break;
    }
  }
  secure_zero(keystream);
  return out;
}

BigKeyPad::BigKeyPad(Bytes big_key) : key_(std::move(big_key)) {
  if (key_.empty()) throw std::invalid_argument("big key must be non-empty");
}

Bytes BigKeyPad::encrypt(BytesView msg) {
  Bytes out(msg.begin(), msg.end());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] ^= key_[(consumed_ + i) % key_.size()];  // wrap = pad reuse
  }
  consumed_ += out.size();
  return out;
}

std::size_t duplicate_block_count(BytesView ct, std::size_t block) {
  std::unordered_map<std::string, std::size_t> seen;
  std::size_t duplicates = 0;
  for (std::size_t i = 0; i + block <= ct.size(); i += block) {
    std::string block_bytes(reinterpret_cast<const char*>(ct.data() + i),
                            block);
    if (++seen[block_bytes] == 2) ++duplicates;
  }
  return duplicates;
}

Bytes recover_second_plaintext(BytesView c1, BytesView c2,
                               BytesView known_m1) {
  const std::size_t n = std::min({c1.size(), c2.size(), known_m1.size()});
  Bytes m2(n);
  for (std::size_t i = 0; i < n; ++i) {
    m2[i] = static_cast<std::uint8_t>(c1[i] ^ c2[i] ^ known_m1[i]);
  }
  return m2;
}

Bytes cbc_bitflip(BytesView ct, std::size_t block, std::size_t index,
                  std::uint8_t delta) {
  const std::size_t pos = block * kAesBlock + index;
  if (pos >= ct.size()) {
    throw std::out_of_range("cbc_bitflip: position beyond ciphertext");
  }
  Bytes forged(ct.begin(), ct.end());
  forged[pos] ^= delta;
  return forged;
}

}  // namespace emc::crypto::legacy
