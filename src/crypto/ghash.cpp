#include "emc/crypto/ghash.hpp"

namespace emc::crypto {

namespace {

struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

/// Right-shift GF(2^128) multiply per SP 800-38D algorithm 1:
/// Z = X · H with the reduction polynomial R = 0xE1 << 120.
U128 soft_mul(U128 x, U128 h) noexcept {
  U128 z;
  U128 v = h;
  for (int i = 0; i < 128; ++i) {
    // Constant-time: both the accumulate and the reduction are
    // selected with arithmetic masks — no data-dependent branches on
    // bits of X or V (EMC-CT-BRANCH). The i < 64 split is on the
    // public loop counter only.
    const std::uint64_t word = i < 64 ? x.hi : x.lo;
    const std::uint64_t bit = (word >> (63 - (i & 63))) & 1;
    const std::uint64_t bit_mask = 0 - bit;
    z.hi ^= v.hi & bit_mask;
    z.lo ^= v.lo & bit_mask;
    const std::uint64_t lsb_mask = 0 - (v.lo & 1);
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi = (v.hi >> 1) ^ (lsb_mask & 0xe100000000000000ULL);
  }
  return z;
}

U128 load_block(const std::uint8_t b[kGhashBlock]) noexcept {
  return U128{load_be64(b), load_be64(b + 8)};
}

void store_block(std::uint8_t b[kGhashBlock], U128 v) noexcept {
  store_be64(b, v.hi);
  store_be64(b + 8, v.lo);
}

}  // namespace

// ------------------------------------------------------------- GhashSoft

GhashSoft::GhashSoft(const std::uint8_t h[kGhashBlock]) noexcept
    : h_hi_(load_be64(h)), h_lo_(load_be64(h + 8)) {}

void GhashSoft::mul(std::uint8_t x[kGhashBlock]) const noexcept {
  store_block(x, soft_mul(load_block(x), U128{h_hi_, h_lo_}));
}

// ----------------------------------------------------------- GhashTable4

GhashTable4::GhashTable4(const std::uint8_t h[kGhashBlock]) noexcept {
  const U128 hv = load_block(h);
  for (int nibble = 0; nibble < 32; ++nibble) {
    const int byte = nibble / 2;
    const bool high = (nibble % 2) == 0;
    for (int v = 0; v < 16; ++v) {
      std::uint8_t block[kGhashBlock] = {};
      block[byte] = static_cast<std::uint8_t>(high ? v << 4 : v);
      const U128 prod = soft_mul(load_block(block), hv);
      auto& entry = table_[static_cast<std::size_t>(nibble)]
                          [static_cast<std::size_t>(v)];
      entry[0] = prod.hi;
      entry[1] = prod.lo;
    }
  }
}

void GhashTable4::mul(std::uint8_t x[kGhashBlock]) const noexcept {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (std::size_t byte = 0; byte < kGhashBlock; ++byte) {
    const std::uint8_t b = x[byte];
    // EMC_LINT_ALLOW(ct-index): models the 4-bit table GHASH tier
    // (Shoup tables); its cache footprint is a studied property.
    const auto& hi_entry = table_[2 * byte][b >> 4];
    // EMC_LINT_ALLOW(ct-index): second nibble of the same tier.
    const auto& lo_entry = table_[2 * byte + 1][b & 0x0f];
    hi ^= hi_entry[0] ^ lo_entry[0];
    lo ^= hi_entry[1] ^ lo_entry[1];
  }
  store_be64(x, hi);
  store_be64(x + 8, lo);
}

// ----------------------------------------------------------- GhashTable8

GhashTable8::GhashTable8(const std::uint8_t h[kGhashBlock]) noexcept {
  const U128 hv = load_block(h);
  for (std::size_t byte = 0; byte < kGhashBlock; ++byte) {
    for (int v = 0; v < 256; ++v) {
      std::uint8_t block[kGhashBlock] = {};
      block[byte] = static_cast<std::uint8_t>(v);
      const U128 prod = soft_mul(load_block(block), hv);
      auto& entry = table_[byte][static_cast<std::size_t>(v)];
      entry[0] = prod.hi;
      entry[1] = prod.lo;
    }
  }
}

void GhashTable8::mul(std::uint8_t x[kGhashBlock]) const noexcept {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (std::size_t byte = 0; byte < kGhashBlock; ++byte) {
    // EMC_LINT_ALLOW(ct-index): models the 8-bit table GHASH tier
    // (64 KiB tables, the OpenSSL software-GHASH layout).
    const auto& entry = table_[byte][x[byte]];
    hi ^= entry[0];
    lo ^= entry[1];
  }
  store_be64(x, hi);
  store_be64(x + 8, lo);
}

}  // namespace emc::crypto
