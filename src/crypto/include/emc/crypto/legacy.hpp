// The insecure legacy constructions the paper's Related Work (§II)
// dissects, re-implemented so their flaws can be demonstrated
// concretely (tests/crypto/attacks_test, examples/legacy_pitfalls):
//
//   * ECB mode            — ES-MPICH2's choice; leaks plaintext
//                           structure (equal blocks -> equal blocks).
//   * CBC mode            — privacy-only; malleable, no integrity even
//                           with an encrypted checksum (An–Bellare).
//   * CTR mode (raw)      — privacy-only; trivially bit-flippable.
//   * Big-key one-time pad — VAN-MPICH2's scheme; pad reuse after
//                           wrap-around enables two-time-pad recovery.
//
// None of these are used by the encrypted MPI layer; they exist purely
// for the security study.
#pragma once

#include <cstddef>

#include "emc/common/bytes.hpp"
#include "emc/crypto/aes.hpp"

namespace emc::crypto::legacy {

/// ECB with PKCS#7 padding. Deterministic and structure-leaking.
[[nodiscard]] Bytes ecb_encrypt(const AesPortable& aes, BytesView pt);
/// Throws std::runtime_error on malformed padding.
[[nodiscard]] Bytes ecb_decrypt(const AesPortable& aes, BytesView ct);

/// CBC with PKCS#7 padding and an explicit 16-byte IV.
[[nodiscard]] Bytes cbc_encrypt(const AesPortable& aes, BytesView iv,
                                BytesView pt);
[[nodiscard]] Bytes cbc_decrypt(const AesPortable& aes, BytesView iv,
                                BytesView ct);

/// Raw CTR keystream XOR (no authentication); iv is the initial
/// 16-byte counter block. Encryption and decryption are identical.
[[nodiscard]] Bytes ctr_crypt(const AesPortable& aes, BytesView iv,
                              BytesView data);

/// VAN-MPICH2-style encryption: one big random key K, each message
/// XORed with the next |M| bytes of K. When the running offset wraps
/// past the end of K, pads overlap — the exact flaw §II describes.
class BigKeyPad {
 public:
  explicit BigKeyPad(Bytes big_key);

  /// XORs @p msg with the next slice of the big key (wrapping).
  [[nodiscard]] Bytes encrypt(BytesView msg);

  /// Bytes of key consumed so far (not wrapped).
  [[nodiscard]] std::size_t consumed() const noexcept { return consumed_; }

  /// True once at least one pad byte has been reused.
  [[nodiscard]] bool pad_reused() const noexcept {
    return consumed_ > key_.size();
  }

  /// The pad is key material; scrub it on destruction
  /// (EMC-SECRET-WIPE).
  ~BigKeyPad() { secure_zero(key_); }
  BigKeyPad(const BigKeyPad&) = default;
  BigKeyPad& operator=(const BigKeyPad&) = default;
  BigKeyPad(BigKeyPad&&) noexcept = default;
  BigKeyPad& operator=(BigKeyPad&&) noexcept = default;

 private:
  Bytes key_;
  std::size_t consumed_ = 0;
};

// --- Attack demonstrations ---------------------------------------------

/// Number of ciphertext block values that occur more than once —
/// nonzero counts reveal plaintext structure under ECB.
[[nodiscard]] std::size_t duplicate_block_count(BytesView ct,
                                                std::size_t block = 16);

/// Two-time-pad recovery: given two ciphertexts whose pads overlap on
/// [0, n) and the first plaintext, recovers the second plaintext
/// (M2 = C1 XOR C2 XOR M1 on the overlap).
[[nodiscard]] Bytes recover_second_plaintext(BytesView c1, BytesView c2,
                                             BytesView known_m1);

/// CBC bit-flip: XORs @p delta into byte @p index of ciphertext block
/// b, which XORs delta into byte index of *plaintext* block b+1 after
/// decryption (garbling block b). Returns the forged ciphertext.
[[nodiscard]] Bytes cbc_bitflip(BytesView ct, std::size_t block,
                                std::size_t index, std::uint8_t delta);

}  // namespace emc::crypto::legacy
