// AES block cipher cores (FIPS-197).
//
// GCM only needs the forward cipher, so the tuned cores implement
// encryption only; the portable core also implements the inverse
// cipher for the legacy ECB/CBC study modes. Three engines model the
// implementation tiers of the benchmarked libraries:
//   * AesPortable — straightforward byte-oriented code, no lookup-table
//     MixColumns fusion (CryptoPP built with an old compiler).
//   * AesTtable  — classic 4x 32-bit T-table implementation (Libsodium
//     tier and the tuned-CryptoPP tier).
//   * AES-NI     — hardware path, in gcm_ni.cpp (OpenSSL/BoringSSL tier).
#pragma once

#include <array>
#include <cstdint>

#include "emc/common/bytes.hpp"

namespace emc::crypto {

inline constexpr std::size_t kAesBlock = 16;

/// Valid AES key sizes in bytes.
[[nodiscard]] constexpr bool valid_aes_key_size(std::size_t bytes) {
  return bytes == 16 || bytes == 24 || bytes == 32;
}

/// Expanded round keys, shared by every software core.
class AesKeySchedule {
 public:
  /// Expands a 128/192/256-bit key; throws std::invalid_argument on
  /// other sizes.
  explicit AesKeySchedule(BytesView key);

  /// Number of rounds (10/12/14).
  [[nodiscard]] int rounds() const noexcept { return rounds_; }

  /// Round key r as 16 bytes (r in [0, rounds()]).
  [[nodiscard]] const std::uint8_t* round_key(int r) const noexcept {
    return bytes_.data() + static_cast<std::size_t>(r) * kAesBlock;
  }

  /// Round key words, big-endian packed (T-table and NI cores).
  [[nodiscard]] const std::uint32_t* words() const noexcept {
    return words_.data();
  }

  ~AesKeySchedule() noexcept {
    secure_zero(bytes_);
    secure_zero({reinterpret_cast<std::uint8_t*>(words_.data()),
                 words_.size() * sizeof(std::uint32_t)});
  }
  AesKeySchedule(const AesKeySchedule&) = default;
  AesKeySchedule& operator=(const AesKeySchedule&) = default;
  AesKeySchedule(AesKeySchedule&&) noexcept = default;
  AesKeySchedule& operator=(AesKeySchedule&&) noexcept = default;

 private:
  int rounds_;
  std::array<std::uint8_t, 15 * kAesBlock> bytes_{};
  std::array<std::uint32_t, 60> words_{};
};

/// Byte-oriented AES (textbook structure, S-box lookups + xtime
/// MixColumns). Implements both cipher directions.
class AesPortable {
 public:
  explicit AesPortable(BytesView key) : ks_(key) {}

  void encrypt_block(const std::uint8_t in[kAesBlock],
                     std::uint8_t out[kAesBlock]) const noexcept;
  void decrypt_block(const std::uint8_t in[kAesBlock],
                     std::uint8_t out[kAesBlock]) const noexcept;

  [[nodiscard]] const AesKeySchedule& schedule() const noexcept { return ks_; }

 private:
  AesKeySchedule ks_;
};

/// 32-bit T-table AES (encryption only; the tier used by tuned
/// software implementations before AES-NI).
class AesTtable {
 public:
  explicit AesTtable(BytesView key) : ks_(key) {}

  void encrypt_block(const std::uint8_t in[kAesBlock],
                     std::uint8_t out[kAesBlock]) const noexcept;

  [[nodiscard]] const AesKeySchedule& schedule() const noexcept { return ks_; }

 private:
  AesKeySchedule ks_;
};

namespace detail {
/// Forward S-box (exposed for the key schedule and tests).
[[nodiscard]] const std::array<std::uint8_t, 256>& aes_sbox() noexcept;
/// Inverse S-box.
[[nodiscard]] const std::array<std::uint8_t, 256>& aes_inv_sbox() noexcept;
/// GF(2^8) multiply by 2 (xtime). Branchless: the conditional 0x1b
/// reduction is selected with an arithmetic mask so no secret bit
/// steers control flow or cmov-free codegen (EMC-CT-BRANCH).
[[nodiscard]] constexpr std::uint8_t xtime(std::uint8_t x) noexcept {
  const std::uint8_t mask =
      static_cast<std::uint8_t>(0 - static_cast<std::uint8_t>(x >> 7));
  return static_cast<std::uint8_t>(static_cast<std::uint8_t>(x << 1) ^
                                   (mask & 0x1b));
}
/// General GF(2^8) multiplication. Constant-time: the conditional
/// accumulate is masked on the low bit of b instead of branching.
[[nodiscard]] constexpr std::uint8_t gf_mul(std::uint8_t a,
                                            std::uint8_t b) noexcept {
  std::uint8_t result = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint8_t mask =
        static_cast<std::uint8_t>(0 - static_cast<std::uint8_t>(b & 1));
    result = static_cast<std::uint8_t>(result ^ (a & mask));
    a = xtime(a);
    b = static_cast<std::uint8_t>(b >> 1);
  }
  return result;
}
}  // namespace detail

}  // namespace emc::crypto
