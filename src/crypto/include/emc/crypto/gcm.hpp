// Generic AES-GCM composition (NIST SP 800-38D §7) over any software
// AES core and GHASH engine.
#pragma once

#include <cstring>
#include <stdexcept>

#include "emc/crypto/aead.hpp"
#include "emc/crypto/aes.hpp"
#include "emc/crypto/ghash.hpp"

namespace emc::crypto {

/// AES-GCM with compile-time chosen cipher/hash engines. Supports the
/// standard 96-bit nonce fast path and the GHASH-derived J0 for other
/// nonce lengths.
template <typename Cipher, typename Ghash>
class GcmKey final : public AeadKey {
 public:
  explicit GcmKey(BytesView key, const char* engine_label)
      : cipher_(key),
        ghash_(make_ghash(cipher_)),
        key_size_(key.size()),
        engine_(engine_label) {}

  void seal(BytesView nonce, BytesView aad, BytesView pt,
            MutBytes out) const override {
    if (out.size() != pt.size() + kGcmTagBytes) {
      throw std::invalid_argument("gcm seal: out must be pt+16 bytes");
    }
    std::uint8_t j0[kAesBlock];
    derive_j0(nonce, j0);
    MutBytes ct = out.first(pt.size());
    ctr_crypt(j0, pt, ct);
    compute_tag(j0, aad, ct, out.data() + pt.size());
  }

  bool open(BytesView nonce, BytesView aad, BytesView ct_tag,
            MutBytes out) const override {
    if (ct_tag.size() < kGcmTagBytes) return false;
    const std::size_t ct_len = ct_tag.size() - kGcmTagBytes;
    if (out.size() != ct_len) {
      throw std::invalid_argument("gcm open: out must be ct-16 bytes");
    }
    std::uint8_t j0[kAesBlock];
    derive_j0(nonce, j0);
    std::uint8_t tag[kGcmTagBytes];
    const BytesView ct = ct_tag.first(ct_len);
    compute_tag(j0, aad, ct, tag);
    if (!ct_equal(BytesView(tag, kGcmTagBytes), ct_tag.last(kGcmTagBytes))) {
      secure_zero(out);
      return false;
    }
    ctr_crypt(j0, ct, out);
    return true;
  }

  [[nodiscard]] std::size_t key_size() const override { return key_size_; }
  [[nodiscard]] const char* engine() const override { return engine_; }

 private:
  static Ghash make_ghash(const Cipher& cipher) {
    std::uint8_t zero[kAesBlock] = {};
    std::uint8_t h[kAesBlock];
    cipher.encrypt_block(zero, h);
    return Ghash(h);
  }

  void derive_j0(BytesView nonce, std::uint8_t j0[kAesBlock]) const {
    if (nonce.size() == kGcmNonceBytes) {
      std::memcpy(j0, nonce.data(), kGcmNonceBytes);
      store_be32(j0 + 12, 1);
      return;
    }
    // General nonce: J0 = GHASH(N || pad || [0]64 || [len(N)]64).
    std::uint8_t y[kAesBlock] = {};
    ghash_update(ghash_, y, nonce);
    ghash_lengths(ghash_, y, 0, nonce.size());
    std::memcpy(j0, y, kAesBlock);
  }

  /// CTR with the 32-bit big-endian counter in the last word,
  /// starting from inc32(J0).
  void ctr_crypt(const std::uint8_t j0[kAesBlock], BytesView in,
                 MutBytes out) const noexcept {
    std::uint8_t counter[kAesBlock];
    std::memcpy(counter, j0, kAesBlock);
    std::uint32_t ctr = load_be32(counter + 12);
    std::uint8_t keystream[kAesBlock];
    std::size_t i = 0;
    while (i < in.size()) {
      store_be32(counter + 12, ++ctr);
      cipher_.encrypt_block(counter, keystream);
      const std::size_t n =
          in.size() - i < kAesBlock ? in.size() - i : kAesBlock;
      for (std::size_t j = 0; j < n; ++j) {
        out[i + j] = static_cast<std::uint8_t>(in[i + j] ^ keystream[j]);
      }
      i += n;
    }
    secure_zero(keystream);
  }

  void compute_tag(const std::uint8_t j0[kAesBlock], BytesView aad,
                   BytesView ct, std::uint8_t tag[kGcmTagBytes]) const {
    std::uint8_t y[kAesBlock] = {};
    ghash_update(ghash_, y, aad);
    ghash_update(ghash_, y, ct);
    ghash_lengths(ghash_, y, aad.size(), ct.size());
    std::uint8_t ekj0[kAesBlock];
    cipher_.encrypt_block(j0, ekj0);
    for (std::size_t j = 0; j < kGcmTagBytes; ++j) {
      tag[j] = static_cast<std::uint8_t>(y[j] ^ ekj0[j]);
    }
  }

  Cipher cipher_;
  Ghash ghash_;
  std::size_t key_size_;
  const char* engine_;
};

/// Hardware AES-GCM (AES-NI + PCLMULQDQ); defined in gcm_ni.cpp.
/// Construction throws std::runtime_error when the host lacks the ISA
/// extensions (check emc::has_aes_hardware() first).
/// This is the tuned tier: 4-block interleaved CTR and 4-block
/// aggregated-reduction GHASH (the OpenSSL/BoringSSL class).
[[nodiscard]] AeadKeyPtr make_gcm_ni(BytesView key);

/// Hardware AES-GCM with per-block GHASH reduction: same ISA, less
/// tuning — the mid-tier hardware implementation class (the paper's
/// Libsodium sits here: AES-NI, but not OpenSSL-grade assembly).
[[nodiscard]] AeadKeyPtr make_gcm_ni_basic(BytesView key);

/// True when make_gcm_ni can be used on this host.
[[nodiscard]] bool gcm_ni_available() noexcept;

}  // namespace emc::crypto
