// Cryptographic-library provider registry.
//
// The paper benchmarks four real libraries (OpenSSL, BoringSSL,
// Libsodium, CryptoPP). This reproduction builds every AES-GCM tier
// from scratch and registers one provider per library, mapped to the
// implementation strategy that gives the real library its measured
// character (see DESIGN.md §1):
//
//   boringssl-sim / openssl-sim : AES-NI + PCLMULQDQ hardware path
//   libsodium-sim               : T-table AES + 8-bit-table GHASH,
//                                 AES-256 only (the real API limit)
//   cryptopp-sim                : byte-oriented AES + 4-bit GHASH
//                                 (the paper's gcc-4.8.5 build, Fig. 2)
//   cryptopp-opt-sim            : same small-buffer path, switching to
//                                 the T-table tier at >=64 KB (the
//                                 MVAPICH-toolchain build, Fig. 9)
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "emc/crypto/aead.hpp"

namespace emc::crypto {

struct Provider {
  std::string name;    ///< registry key, e.g. "boringssl-sim"
  std::string models;  ///< which real library/build this stands in for
  std::vector<std::size_t> key_sizes;  ///< supported key lengths (bytes)

  /// Builds a ready AEAD key; throws std::invalid_argument for
  /// unsupported key sizes.
  std::function<AeadKeyPtr(BytesView key)> make_key;

  [[nodiscard]] bool supports_key_size(std::size_t bytes) const {
    for (std::size_t s : key_sizes) {
      if (s == bytes) return true;
    }
    return false;
  }
};

/// All registered providers, in the paper's reporting order.
[[nodiscard]] const std::vector<Provider>& providers();

/// The three providers the paper actually plots (BoringSSL, Libsodium,
/// CryptoPP); @p optimized_cryptopp selects the Fig. 9 build.
[[nodiscard]] std::vector<const Provider*> reported_providers(
    bool optimized_cryptopp);

/// Lookup by name; throws std::invalid_argument on unknown names.
[[nodiscard]] const Provider& provider(std::string_view name);

/// Convenience: make an AES-GCM key under the named provider.
[[nodiscard]] AeadKeyPtr make_aes_gcm(std::string_view provider_name,
                                      BytesView key);

/// The hardcoded experiment key (the paper embeds the key in the
/// source and leaves key distribution as future work, §IV).
[[nodiscard]] Bytes demo_key(std::size_t bytes);

/// Quick functional check: a NIST known-answer vector plus a
/// seal/open/tamper roundtrip. Returns false on any mismatch.
[[nodiscard]] bool self_test(const Provider& p);

}  // namespace emc::crypto
