// AES-CCM (NIST SP 800-38C): CBC-MAC then CTR.
//
// The paper (§III-A) notes that among the standardized modes only GCM
// and CCM provide both privacy and integrity, and picks GCM because it
// is faster. This implementation exists to *measure* that claim: the
// ablation benchmark compares AES-GCM and AES-CCM seal/open throughput
// under identical framing (12-byte nonce, 16-byte tag), reproducing
// the Krovetz-Rogaway observation the paper cites.
//
// CCM is inherently two-pass serial (CBC-MAC cannot be parallelized),
// so even with AES-NI it trails GCM; the software core used here makes
// the structural gap visible on any host.
#pragma once

#include "emc/crypto/aead.hpp"

namespace emc::crypto {

/// AES-CCM key with 12-byte nonces and 16-byte tags (the same wire
/// framing as the AES-GCM providers). Key sizes 16/24/32.
[[nodiscard]] AeadKeyPtr make_aes_ccm(BytesView key);

}  // namespace emc::crypto
