// GHASH — the GF(2^128) universal hash of GCM (NIST SP 800-38D §6.3).
//
// Three software engines with different speed/precomputation
// trade-offs (the tiers of the benchmarked libraries), plus a
// PCLMULQDQ engine in ghash_pclmul.cpp:
//   * GhashSoft   — bit-serial shift-and-xor, no tables (reference).
//   * GhashTable4 — 8 KB of nibble-position tables per key.
//   * GhashTable8 — 64 KB of byte-position tables per key.
// The table engines exploit linearity of field multiplication: X·H is
// the XOR over positions j of T[j][X_j] where T was filled with the
// reference multiplier, so they are correct by construction.
#pragma once

#include <array>
#include <cstdint>

#include "emc/common/bytes.hpp"

namespace emc::crypto {

inline constexpr std::size_t kGhashBlock = 16;

/// Bit-serial GF(2^128) multiplier (right-shift algorithm).
class GhashSoft {
 public:
  explicit GhashSoft(const std::uint8_t h[kGhashBlock]) noexcept;

  /// x = x · H in GF(2^128).
  void mul(std::uint8_t x[kGhashBlock]) const noexcept;

 private:
  std::uint64_t h_hi_;
  std::uint64_t h_lo_;
};

/// Nibble-position tables: 32 tables of 16 entries.
class GhashTable4 {
 public:
  explicit GhashTable4(const std::uint8_t h[kGhashBlock]) noexcept;
  void mul(std::uint8_t x[kGhashBlock]) const noexcept;

 private:
  // table_[2j + (high ? 0 : 1)][v] = (v at nibble position) · H
  std::array<std::array<std::array<std::uint64_t, 2>, 16>, 32> table_{};
};

/// Byte-position tables: 16 tables of 256 entries.
class GhashTable8 {
 public:
  explicit GhashTable8(const std::uint8_t h[kGhashBlock]) noexcept;
  void mul(std::uint8_t x[kGhashBlock]) const noexcept;

 private:
  std::array<std::array<std::array<std::uint64_t, 2>, 256>, 16> table_{};
};

/// Feeds @p data into the GHASH accumulator @p y, zero-padding the
/// final partial block (the standard GHASH block iteration).
template <typename Ghash>
void ghash_update(const Ghash& ghash, std::uint8_t y[kGhashBlock],
                  BytesView data) noexcept {
  std::size_t i = 0;
  while (i + kGhashBlock <= data.size()) {
    for (std::size_t j = 0; j < kGhashBlock; ++j) y[j] ^= data[i + j];
    ghash.mul(y);
    i += kGhashBlock;
  }
  if (i < data.size()) {
    for (std::size_t j = 0; i + j < data.size(); ++j) y[j] ^= data[i + j];
    ghash.mul(y);
  }
}

/// Appends the [len(A)]64 || [len(C)]64 length block (bit lengths).
template <typename Ghash>
void ghash_lengths(const Ghash& ghash, std::uint8_t y[kGhashBlock],
                   std::uint64_t aad_bytes, std::uint64_t ct_bytes) noexcept {
  std::uint8_t block[kGhashBlock];
  store_be64(block, aad_bytes * 8);
  store_be64(block + 8, ct_bytes * 8);
  for (std::size_t j = 0; j < kGhashBlock; ++j) y[j] ^= block[j];
  ghash.mul(y);
}

}  // namespace emc::crypto
