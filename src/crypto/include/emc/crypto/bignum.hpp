// Arbitrary-precision unsigned integers for the Diffie-Hellman key
// exchange (the key-distribution mechanism the paper's §IV leaves as
// future work). Little-endian 64-bit limbs, schoolbook multiplication,
// binary long division, and two modular-exponentiation paths: a
// straightforward shift-subtract one (obviously correct, used as the
// test oracle) and Montgomery CIOS (fast, used in production).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <string_view>
#include <vector>

#include "emc/common/bytes.hpp"

namespace emc::crypto {

class BigUint {
 public:
  BigUint() = default;  ///< zero

  [[nodiscard]] static BigUint from_u64(std::uint64_t value);
  /// Parses big-endian hex (whitespace tolerated, case-insensitive).
  [[nodiscard]] static BigUint from_hex(std::string_view hex);
  /// Parses big-endian bytes.
  [[nodiscard]] static BigUint from_bytes(BytesView be);

  /// Big-endian bytes, left-padded with zeros to at least @p min_len.
  [[nodiscard]] Bytes to_bytes(std::size_t min_len = 0) const;
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const noexcept {
    return !limbs_.empty() && (limbs_[0] & 1) != 0;
  }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;
  [[nodiscard]] bool bit(std::size_t i) const noexcept;

  [[nodiscard]] int compare(const BigUint& other) const noexcept;
  bool operator==(const BigUint& o) const noexcept { return compare(o) == 0; }
  bool operator<(const BigUint& o) const noexcept { return compare(o) < 0; }
  bool operator<=(const BigUint& o) const noexcept { return compare(o) <= 0; }
  bool operator>(const BigUint& o) const noexcept { return compare(o) > 0; }
  bool operator>=(const BigUint& o) const noexcept { return compare(o) >= 0; }

  [[nodiscard]] BigUint add(const BigUint& other) const;
  /// Requires *this >= other.
  [[nodiscard]] BigUint sub(const BigUint& other) const;
  [[nodiscard]] static BigUint mul(const BigUint& a, const BigUint& b);
  [[nodiscard]] BigUint shifted_left(std::size_t bits) const;

  /// {quotient, remainder} by binary long division; m must be nonzero.
  [[nodiscard]] std::pair<BigUint, BigUint> divmod(const BigUint& m) const;
  [[nodiscard]] BigUint mod(const BigUint& m) const;

  /// base^exp mod m via square-and-multiply with division-based
  /// reduction. The slow, transparent oracle.
  [[nodiscard]] static BigUint modexp_slow(const BigUint& base,
                                           const BigUint& exp,
                                           const BigUint& m);

  /// base^exp mod m via Montgomery multiplication (m must be odd).
  [[nodiscard]] static BigUint modexp(const BigUint& base,
                                      const BigUint& exp, const BigUint& m);

  /// Miller-Rabin probabilistic primality test with @p rounds bases
  /// drawn from the deterministic RNG seed. Used by the tests to
  /// verify the published DH prime.
  [[nodiscard]] static bool probably_prime(const BigUint& n, int rounds,
                                           std::uint64_t seed);

  /// Uniform value in [0, bound) from a deterministic seed.
  [[nodiscard]] static BigUint random_below(const BigUint& bound,
                                            std::uint64_t seed);

  [[nodiscard]] const std::vector<std::uint64_t>& limbs() const noexcept {
    return limbs_;
  }

  /// Zeroizes the limb storage (volatile-safe) and empties the value.
  /// For secrets — private exponents, shared secrets — once consumed
  /// (EMC-SECRET-WIPE).
  void wipe() noexcept;

 private:
  void trim() noexcept;

  std::vector<std::uint64_t> limbs_;  // little-endian, normalized
};

}  // namespace emc::crypto
