// Authenticated-encryption interface (nonce-based AEAD, the paper's
// Fig. 1 abstraction): Enc(K, N, A, P) -> C || T and the inverse.
#pragma once

#include <cstddef>
#include <memory>

#include "emc/common/bytes.hpp"

namespace emc::crypto {

inline constexpr std::size_t kGcmNonceBytes = 12;
inline constexpr std::size_t kGcmTagBytes = 16;
/// Per-message wire expansion of the encrypted MPI framing:
/// 12-byte nonce + 16-byte tag (paper §IV).
inline constexpr std::size_t kWireOverhead = kGcmNonceBytes + kGcmTagBytes;

/// A ready-to-use AEAD key (key schedule + GHASH tables precomputed).
class AeadKey {
 public:
  virtual ~AeadKey() = default;

  /// Encrypts and authenticates: writes ciphertext || tag into @p out,
  /// which must be exactly pt.size() + kGcmTagBytes bytes.
  /// @p nonce must be kGcmNonceBytes long and unique per key.
  virtual void seal(BytesView nonce, BytesView aad, BytesView pt,
                    MutBytes out) const = 0;

  /// Verifies and decrypts ct||tag; writes the plaintext into @p out
  /// (exactly ct_tag.size() - kGcmTagBytes bytes). Returns false (and
  /// wipes @p out) when authentication fails.
  [[nodiscard]] virtual bool open(BytesView nonce, BytesView aad,
                                  BytesView ct_tag, MutBytes out) const = 0;

  /// Key length in bytes (16 or 32 in this study).
  [[nodiscard]] virtual std::size_t key_size() const = 0;

  /// Engine label for reports ("aes-ni+pclmul", "ttable+tab8", ...).
  [[nodiscard]] virtual const char* engine() const = 0;
};

using AeadKeyPtr = std::unique_ptr<AeadKey>;

}  // namespace emc::crypto
