// Finite-field Diffie-Hellman primitives for the key-distribution
// extension (the paper's §IV future work). Groups are classic MODP
// groups; arithmetic is the from-scratch BigUint with Montgomery
// exponentiation.
#pragma once

#include <cstdint>
#include <string>

#include "emc/crypto/bignum.hpp"

namespace emc::crypto {

struct DhGroup {
  std::string name;
  BigUint p;  ///< prime modulus
  BigUint g;  ///< generator

  [[nodiscard]] std::size_t byte_length() const {
    return (p.bit_length() + 7) / 8;
  }
};

/// RFC 3526 group 14: the 2048-bit MODP group, generator 2. The test
/// suite Miller-Rabin-verifies the modulus.
[[nodiscard]] const DhGroup& modp_group14();

/// Deterministically generates a small test group: the first probable
/// prime at/above a seeded random @p bits-bit odd number, generator 5.
/// For tests and fast demos — NOT for real security margins.
[[nodiscard]] DhGroup generate_test_group(std::size_t bits,
                                          std::uint64_t seed);

struct DhKeyPair {
  // EMC_LINT_ALLOW(secret-wipe): aggregate by design; owners wipe
  // private_key via BigUint::wipe() once the shared secret is derived
  // (see secure_mpi/key_exchange.cpp).
  BigUint private_key;
  BigUint public_key;  ///< g^private mod p
};

/// Deterministic keypair from @p seed (research reproducibility; a
/// production system would draw from an OS CSPRNG).
[[nodiscard]] DhKeyPair dh_generate(const DhGroup& group,
                                    std::uint64_t seed);

/// peer_public^private mod p, serialized big-endian at the group width.
[[nodiscard]] Bytes dh_shared_secret(const DhGroup& group,
                                     const BigUint& private_key,
                                     const BigUint& peer_public);

}  // namespace emc::crypto
