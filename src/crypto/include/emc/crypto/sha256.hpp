// SHA-256 (FIPS 180-4), HMAC-SHA-256 (RFC 2104), and HKDF (RFC 5869),
// implemented from scratch.
//
// These support the key-distribution extension (the paper's §IV leaves
// key management as future work): Diffie-Hellman shared secrets are
// fed through HKDF to derive communicator/session AES-GCM keys.
#pragma once

#include <array>
#include <cstdint>

#include "emc/common/bytes.hpp"

namespace emc::crypto {

inline constexpr std::size_t kSha256Digest = 32;
inline constexpr std::size_t kSha256Block = 64;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() noexcept;

  /// Feeds more message bytes.
  void update(BytesView data) noexcept;

  /// Finalizes into @p out (32 bytes); the object must not be reused
  /// afterwards without reset().
  void finalize(std::uint8_t out[kSha256Digest]) noexcept;

  void reset() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Bytes digest(BytesView data);

 private:
  void process_block(const std::uint8_t block[kSha256Block]) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, kSha256Block> buffer_{};
  std::size_t buffered_ = 0;
};

/// HMAC-SHA-256 of @p data under @p key (any key length).
[[nodiscard]] Bytes hmac_sha256(BytesView key, BytesView data);

/// HKDF-SHA-256 extract+expand: derives @p length bytes (<= 255*32)
/// from input keying material, salt, and context info.
[[nodiscard]] Bytes hkdf_sha256(BytesView ikm, BytesView salt,
                                BytesView info, std::size_t length);

}  // namespace emc::crypto
