// Hardware AES-GCM: AES-NI for the block cipher (4-block interleaved
// CTR) and PCLMULQDQ for GHASH. This is the implementation tier that
// gives OpenSSL/BoringSSL their speed in the paper.
//
// The carry-less GHASH multiply follows Intel's GCM whitepaper
// (byte-reflected operands, shift-left-by-one bit correction, then
// reduction modulo x^128 + x^7 + x^2 + x + 1); its output is verified
// against the bit-serial reference in the test suite.
#include <stdexcept>

#include "emc/common/cpu.hpp"
#include "emc/crypto/gcm.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define EMC_HAVE_NI 1
#include <immintrin.h>
#include <wmmintrin.h>
#endif

namespace emc::crypto {

#ifdef EMC_HAVE_NI

namespace {

inline __m128i bswap128(__m128i x) noexcept {
  const __m128i mask =
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  return _mm_shuffle_epi8(x, mask);
}

/// 256-bit carry-less product of byte-reflected blocks (no reduction).
/// Aggregated GHASH XOR-accumulates several products before a single
/// reduction — both the bit-shift fix-up and the reduction are linear,
/// so deferring them over an XOR of products is exact.
inline void clmul256(__m128i a, __m128i b, __m128i& lo,
                     __m128i& hi) noexcept {
  __m128i t3 = _mm_clmulepi64_si128(a, b, 0x00);
  __m128i t4 = _mm_clmulepi64_si128(a, b, 0x10);
  const __m128i t5 = _mm_clmulepi64_si128(a, b, 0x01);
  const __m128i t6 = _mm_clmulepi64_si128(a, b, 0x11);
  t4 = _mm_xor_si128(t4, t5);
  const __m128i mid_lo = _mm_slli_si128(t4, 8);
  const __m128i mid_hi = _mm_srli_si128(t4, 8);
  lo = _mm_xor_si128(t3, mid_lo);
  hi = _mm_xor_si128(t6, mid_hi);
}

/// Shift-left-by-one fix-up + reduction modulo x^128 + x^7 + x^2 + x + 1
/// of a 256-bit carry-less product.
inline __m128i gfreduce(__m128i tmp3, __m128i tmp6) noexcept {
  // Shift the 256-bit product left by one bit (bit-reflection fix-up).
  __m128i tmp7 = _mm_srli_epi32(tmp3, 31);
  __m128i tmp8 = _mm_srli_epi32(tmp6, 31);
  tmp3 = _mm_slli_epi32(tmp3, 1);
  tmp6 = _mm_slli_epi32(tmp6, 1);
  __m128i tmp4;
  __m128i tmp5;
  __m128i tmp9 = _mm_srli_si128(tmp7, 12);
  tmp8 = _mm_slli_si128(tmp8, 4);
  tmp7 = _mm_slli_si128(tmp7, 4);
  tmp3 = _mm_or_si128(tmp3, tmp7);
  tmp6 = _mm_or_si128(tmp6, tmp8);
  tmp6 = _mm_or_si128(tmp6, tmp9);

  // Reduction modulo x^128 + x^7 + x^2 + x + 1.
  tmp7 = _mm_slli_epi32(tmp3, 31);
  tmp8 = _mm_slli_epi32(tmp3, 30);
  tmp9 = _mm_slli_epi32(tmp3, 25);
  tmp7 = _mm_xor_si128(tmp7, tmp8);
  tmp7 = _mm_xor_si128(tmp7, tmp9);
  tmp8 = _mm_srli_si128(tmp7, 4);
  tmp7 = _mm_slli_si128(tmp7, 12);
  tmp3 = _mm_xor_si128(tmp3, tmp7);

  __m128i tmp2 = _mm_srli_epi32(tmp3, 1);
  tmp4 = _mm_srli_epi32(tmp3, 2);
  tmp5 = _mm_srli_epi32(tmp3, 7);
  tmp2 = _mm_xor_si128(tmp2, tmp4);
  tmp2 = _mm_xor_si128(tmp2, tmp5);
  tmp2 = _mm_xor_si128(tmp2, tmp8);
  tmp3 = _mm_xor_si128(tmp3, tmp2);
  return _mm_xor_si128(tmp6, tmp3);
}

/// Carry-less GF(2^128) multiply of byte-reflected GCM blocks.
inline __m128i gfmul(__m128i a, __m128i b) noexcept {
  __m128i lo;
  __m128i hi;
  clmul256(a, b, lo, hi);
  return gfreduce(lo, hi);
}

class GcmNiKey final : public AeadKey {
 public:
  /// @p aggregated selects the 4-block aggregated-reduction GHASH (the
  /// OpenSSL/BoringSSL tier); off, GHASH reduces per block (the
  /// less-tuned hardware tier the paper's Libsodium represents).
  GcmNiKey(BytesView key, bool aggregated) : ks_(key), aggregated_(aggregated) {
    if (!has_aes_hardware()) {
      throw std::runtime_error("AES-NI/PCLMUL not available on this host");
    }
    for (int i = 0; i <= ks_.rounds(); ++i) {
      rk_[i] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(ks_.round_key(i)));
    }
    std::uint8_t zero[kAesBlock] = {};
    std::uint8_t h[kAesBlock];
    encrypt_block(zero, h);
    h_ = bswap128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(h)));
    secure_zero(h);
    h2_ = gfmul(h_, h_);
    h3_ = gfmul(h2_, h_);
    h4_ = gfmul(h3_, h_);
  }

  // Round keys and GHASH key powers are key material; scrub them when
  // the key object dies (EMC-SECRET-WIPE).
  ~GcmNiKey() override {
    secure_zero({reinterpret_cast<std::uint8_t*>(rk_), sizeof(rk_)});
    secure_zero({reinterpret_cast<std::uint8_t*>(&h_), sizeof(h_)});
    secure_zero({reinterpret_cast<std::uint8_t*>(&h2_), sizeof(h2_)});
    secure_zero({reinterpret_cast<std::uint8_t*>(&h3_), sizeof(h3_)});
    secure_zero({reinterpret_cast<std::uint8_t*>(&h4_), sizeof(h4_)});
  }
  GcmNiKey(const GcmNiKey&) = delete;
  GcmNiKey& operator=(const GcmNiKey&) = delete;

  void seal(BytesView nonce, BytesView aad, BytesView pt,
            MutBytes out) const override {
    if (out.size() != pt.size() + kGcmTagBytes) {
      throw std::invalid_argument("gcm seal: out must be pt+16 bytes");
    }
    std::uint8_t j0[kAesBlock];
    derive_j0(nonce, j0);
    MutBytes ct = out.first(pt.size());
    ctr_crypt(j0, pt, ct);
    compute_tag(j0, aad, ct, out.data() + pt.size());
  }

  bool open(BytesView nonce, BytesView aad, BytesView ct_tag,
            MutBytes out) const override {
    if (ct_tag.size() < kGcmTagBytes) return false;
    const std::size_t ct_len = ct_tag.size() - kGcmTagBytes;
    if (out.size() != ct_len) {
      throw std::invalid_argument("gcm open: out must be ct-16 bytes");
    }
    std::uint8_t j0[kAesBlock];
    derive_j0(nonce, j0);
    std::uint8_t tag[kGcmTagBytes];
    const BytesView ct = ct_tag.first(ct_len);
    compute_tag(j0, aad, ct, tag);
    if (!ct_equal(BytesView(tag, kGcmTagBytes), ct_tag.last(kGcmTagBytes))) {
      secure_zero(out);
      return false;
    }
    ctr_crypt(j0, ct, out);
    return true;
  }

  [[nodiscard]] std::size_t key_size() const override {
    return ks_.rounds() == 10 ? 16u : ks_.rounds() == 12 ? 24u : 32u;
  }
  [[nodiscard]] const char* engine() const override {
    return aggregated_ ? "aes-ni + 4x aggregated pclmul ghash"
                       : "aes-ni + per-block pclmul ghash";
  }

 private:
  void encrypt_block(const std::uint8_t in[kAesBlock],
                     std::uint8_t out[kAesBlock]) const noexcept {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
    b = _mm_xor_si128(b, rk_[0]);
    for (int r = 1; r < ks_.rounds(); ++r) b = _mm_aesenc_si128(b, rk_[r]);
    b = _mm_aesenclast_si128(b, rk_[ks_.rounds()]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
  }

  void derive_j0(BytesView nonce, std::uint8_t j0[kAesBlock]) const {
    if (nonce.size() == kGcmNonceBytes) {
      for (std::size_t i = 0; i < kGcmNonceBytes; ++i) j0[i] = nonce[i];
      store_be32(j0 + 12, 1);
      return;
    }
    __m128i y = _mm_setzero_si128();
    ghash_data(y, nonce);
    std::uint8_t lens[kAesBlock];
    store_be64(lens, 0);
    store_be64(lens + 8, static_cast<std::uint64_t>(nonce.size()) * 8);
    y = gfmul(_mm_xor_si128(y, bswap128(_mm_loadu_si128(
                                   reinterpret_cast<const __m128i*>(lens)))),
              h_);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(j0), bswap128(y));
  }

  /// 4-block interleaved CTR.
  void ctr_crypt(const std::uint8_t j0[kAesBlock], BytesView in,
                 MutBytes out) const noexcept {
    std::uint8_t counter[kAesBlock];
    for (std::size_t i = 0; i < kAesBlock; ++i) counter[i] = j0[i];
    std::uint32_t ctr = load_be32(counter + 12);
    const int rounds = ks_.rounds();
    std::size_t i = 0;

    // The tuned tier interleaves four counter blocks to fill the
    // AES-NI pipeline; the basic tier encrypts one block at a time.
    while (aggregated_ && i + 4 * kAesBlock <= in.size()) {
      __m128i b[4];
      for (int k = 0; k < 4; ++k) {
        store_be32(counter + 12, ++ctr);
        b[k] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(counter));
        b[k] = _mm_xor_si128(b[k], rk_[0]);
      }
      for (int r = 1; r < rounds; ++r) {
        for (int k = 0; k < 4; ++k) b[k] = _mm_aesenc_si128(b[k], rk_[r]);
      }
      for (int k = 0; k < 4; ++k) {
        b[k] = _mm_aesenclast_si128(b[k], rk_[rounds]);
        const __m128i data = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(in.data() + i +
                                             static_cast<std::size_t>(k) * 16));
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(out.data() + i +
                                       static_cast<std::size_t>(k) * 16),
            _mm_xor_si128(data, b[k]));
      }
      i += 4 * kAesBlock;
    }

    std::uint8_t keystream[kAesBlock];
    while (i < in.size()) {
      store_be32(counter + 12, ++ctr);
      encrypt_block(counter, keystream);
      const std::size_t n =
          in.size() - i < kAesBlock ? in.size() - i : kAesBlock;
      for (std::size_t j = 0; j < n; ++j) {
        out[i + j] = static_cast<std::uint8_t>(in[i + j] ^ keystream[j]);
      }
      i += n;
    }
    secure_zero(keystream);
  }

  void ghash_data(__m128i& y, BytesView data) const noexcept {
    std::size_t i = 0;
    if (aggregated_) {
      // Four blocks per round trip through the reducer:
      // y' = (y^b0)*H^4 ^ b1*H^3 ^ b2*H^2 ^ b3*H, one reduction.
      while (i + 4 * kAesBlock <= data.size()) {
        const auto block = [&](std::size_t k) {
          return bswap128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(
              data.data() + i + k * kAesBlock)));
        };
        __m128i lo;
        __m128i hi;
        __m128i l;
        __m128i h;
        clmul256(_mm_xor_si128(y, block(0)), h4_, lo, hi);
        clmul256(block(1), h3_, l, h);
        lo = _mm_xor_si128(lo, l);
        hi = _mm_xor_si128(hi, h);
        clmul256(block(2), h2_, l, h);
        lo = _mm_xor_si128(lo, l);
        hi = _mm_xor_si128(hi, h);
        clmul256(block(3), h_, l, h);
        lo = _mm_xor_si128(lo, l);
        hi = _mm_xor_si128(hi, h);
        y = gfreduce(lo, hi);
        i += 4 * kAesBlock;
      }
    }
    while (i + kAesBlock <= data.size()) {
      const __m128i block = bswap128(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(data.data() + i)));
      y = gfmul(_mm_xor_si128(y, block), h_);
      i += kAesBlock;
    }
    if (i < data.size()) {
      std::uint8_t last[kAesBlock] = {};
      for (std::size_t j = 0; i + j < data.size(); ++j) last[j] = data[i + j];
      const __m128i block =
          bswap128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(last)));
      y = gfmul(_mm_xor_si128(y, block), h_);
    }
  }

  void compute_tag(const std::uint8_t j0[kAesBlock], BytesView aad,
                   BytesView ct, std::uint8_t tag[kGcmTagBytes]) const {
    __m128i y = _mm_setzero_si128();
    ghash_data(y, aad);
    ghash_data(y, ct);
    std::uint8_t lens[kAesBlock];
    store_be64(lens, static_cast<std::uint64_t>(aad.size()) * 8);
    store_be64(lens + 8, static_cast<std::uint64_t>(ct.size()) * 8);
    y = gfmul(_mm_xor_si128(y, bswap128(_mm_loadu_si128(
                                   reinterpret_cast<const __m128i*>(lens)))),
              h_);
    std::uint8_t s[kAesBlock];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(s), bswap128(y));
    std::uint8_t ekj0[kAesBlock];
    encrypt_block(j0, ekj0);
    for (std::size_t j = 0; j < kGcmTagBytes; ++j) {
      tag[j] = static_cast<std::uint8_t>(s[j] ^ ekj0[j]);
    }
  }

  AesKeySchedule ks_;
  bool aggregated_;
  __m128i rk_[15];
  __m128i h_;
  __m128i h2_;
  __m128i h3_;
  __m128i h4_;
};

}  // namespace

AeadKeyPtr make_gcm_ni(BytesView key) {
  return std::make_unique<GcmNiKey>(key, /*aggregated=*/true);
}

AeadKeyPtr make_gcm_ni_basic(BytesView key) {
  return std::make_unique<GcmNiKey>(key, /*aggregated=*/false);
}

bool gcm_ni_available() noexcept { return has_aes_hardware(); }

#else  // !EMC_HAVE_NI

AeadKeyPtr make_gcm_ni(BytesView) {
  throw std::runtime_error("AES-NI path not compiled for this architecture");
}

AeadKeyPtr make_gcm_ni_basic(BytesView) {
  throw std::runtime_error("AES-NI path not compiled for this architecture");
}

bool gcm_ni_available() noexcept { return false; }

#endif

}  // namespace emc::crypto
