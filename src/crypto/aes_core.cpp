// Key schedule (FIPS-197 §5.2) and the portable + T-table cores.
//
// EMC_LINT_ALLOW_FILE(ct-index): the portable S-box core and the
// T-table core deliberately model the table-based software tiers the
// paper benchmarks (its OpenSSL-without-AES-NI datapoints); their
// cache-timing leakage is a *studied property*, not an accident. The
// constant-time production path is the AES-NI core in gcm_ni.cpp.
#include <stdexcept>

#include "emc/crypto/aes.hpp"

namespace emc::crypto {

using detail::aes_inv_sbox;
using detail::aes_sbox;
using detail::gf_mul;
using detail::xtime;

// --------------------------------------------------------- key schedule

AesKeySchedule::AesKeySchedule(BytesView key) {
  if (!valid_aes_key_size(key.size())) {
    throw std::invalid_argument("AES key must be 16, 24, or 32 bytes");
  }
  const int nk = static_cast<int>(key.size() / 4);
  rounds_ = nk + 6;
  const int total_words = 4 * (rounds_ + 1);

  const auto& sbox = aes_sbox();
  const auto sub_word = [&sbox](std::uint32_t w) {
    return (std::uint32_t{sbox[(w >> 24) & 0xff]} << 24) |
           (std::uint32_t{sbox[(w >> 16) & 0xff]} << 16) |
           (std::uint32_t{sbox[(w >> 8) & 0xff]} << 8) |
           std::uint32_t{sbox[w & 0xff]};
  };

  for (int i = 0; i < nk; ++i) {
    words_[static_cast<std::size_t>(i)] =
        load_be32(key.data() + static_cast<std::size_t>(4 * i));
  }
  std::uint8_t rcon = 0x01;
  for (int i = nk; i < total_words; ++i) {
    std::uint32_t temp = words_[static_cast<std::size_t>(i - 1)];
    if (i % nk == 0) {
      temp = sub_word(rotl32(temp, 8)) ^ (std::uint32_t{rcon} << 24);
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      temp = sub_word(temp);
    }
    words_[static_cast<std::size_t>(i)] =
        words_[static_cast<std::size_t>(i - nk)] ^ temp;
  }

  for (int i = 0; i < total_words; ++i) {
    store_be32(bytes_.data() + static_cast<std::size_t>(4 * i),
               words_[static_cast<std::size_t>(i)]);
  }
}

// -------------------------------------------------------- portable core

namespace {

/// SubBytes + ShiftRows into @p t (column-major state layout).
inline void sub_shift(const std::uint8_t s[16], std::uint8_t t[16],
                      const std::array<std::uint8_t, 256>& box) noexcept {
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) {
      t[4 * c + r] = box[s[4 * ((c + r) & 3) + r]];
    }
  }
}

}  // namespace

void AesPortable::encrypt_block(const std::uint8_t in[kAesBlock],
                                std::uint8_t out[kAesBlock]) const noexcept {
  const auto& sbox = aes_sbox();
  std::uint8_t s[16];
  std::uint8_t t[16];
  const std::uint8_t* rk = ks_.round_key(0);
  for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(in[i] ^ rk[i]);

  for (int round = 1; round < ks_.rounds(); ++round) {
    sub_shift(s, t, sbox);
    rk = ks_.round_key(round);
    for (int c = 0; c < 4; ++c) {
      const std::uint8_t a0 = t[4 * c];
      const std::uint8_t a1 = t[4 * c + 1];
      const std::uint8_t a2 = t[4 * c + 2];
      const std::uint8_t a3 = t[4 * c + 3];
      s[4 * c + 0] = static_cast<std::uint8_t>(
          xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^ a3 ^ rk[4 * c + 0]);
      s[4 * c + 1] = static_cast<std::uint8_t>(
          a0 ^ xtime(a1) ^ xtime(a2) ^ a2 ^ a3 ^ rk[4 * c + 1]);
      s[4 * c + 2] = static_cast<std::uint8_t>(
          a0 ^ a1 ^ xtime(a2) ^ xtime(a3) ^ a3 ^ rk[4 * c + 2]);
      s[4 * c + 3] = static_cast<std::uint8_t>(
          xtime(a0) ^ a0 ^ a1 ^ a2 ^ xtime(a3) ^ rk[4 * c + 3]);
    }
  }

  sub_shift(s, t, sbox);
  rk = ks_.round_key(ks_.rounds());
  for (int i = 0; i < 16; ++i) {
    out[i] = static_cast<std::uint8_t>(t[i] ^ rk[i]);
  }
}

void AesPortable::decrypt_block(const std::uint8_t in[kAesBlock],
                                std::uint8_t out[kAesBlock]) const noexcept {
  const auto& inv = aes_inv_sbox();
  std::uint8_t s[16];
  std::uint8_t t[16];
  const std::uint8_t* rk = ks_.round_key(ks_.rounds());
  for (int i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(in[i] ^ rk[i]);

  for (int round = ks_.rounds() - 1; round >= 1; --round) {
    // InvShiftRows + InvSubBytes.
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        t[4 * c + r] = inv[s[4 * ((c - r + 4) & 3) + r]];
      }
    }
    rk = ks_.round_key(round);
    for (int i = 0; i < 16; ++i) {
      t[i] = static_cast<std::uint8_t>(t[i] ^ rk[i]);
    }
    // InvMixColumns.
    for (int c = 0; c < 4; ++c) {
      const std::uint8_t a0 = t[4 * c];
      const std::uint8_t a1 = t[4 * c + 1];
      const std::uint8_t a2 = t[4 * c + 2];
      const std::uint8_t a3 = t[4 * c + 3];
      s[4 * c + 0] = static_cast<std::uint8_t>(
          gf_mul(a0, 0x0e) ^ gf_mul(a1, 0x0b) ^ gf_mul(a2, 0x0d) ^
          gf_mul(a3, 0x09));
      s[4 * c + 1] = static_cast<std::uint8_t>(
          gf_mul(a0, 0x09) ^ gf_mul(a1, 0x0e) ^ gf_mul(a2, 0x0b) ^
          gf_mul(a3, 0x0d));
      s[4 * c + 2] = static_cast<std::uint8_t>(
          gf_mul(a0, 0x0d) ^ gf_mul(a1, 0x09) ^ gf_mul(a2, 0x0e) ^
          gf_mul(a3, 0x0b));
      s[4 * c + 3] = static_cast<std::uint8_t>(
          gf_mul(a0, 0x0b) ^ gf_mul(a1, 0x0d) ^ gf_mul(a2, 0x09) ^
          gf_mul(a3, 0x0e));
    }
  }

  rk = ks_.round_key(0);
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) {
      out[4 * c + r] = static_cast<std::uint8_t>(
          inv[s[4 * ((c - r + 4) & 3) + r]] ^ rk[4 * c + r]);
    }
  }
}

// --------------------------------------------------------- T-table core

namespace {

struct Ttables {
  std::array<std::uint32_t, 256> te0{};
  std::array<std::uint32_t, 256> te1{};
  std::array<std::uint32_t, 256> te2{};
  std::array<std::uint32_t, 256> te3{};
};

const Ttables& ttables() noexcept {
  static const Ttables tables = [] {
    Ttables t;
    const auto& sbox = aes_sbox();
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t s = sbox[static_cast<std::size_t>(i)];
      const std::uint8_t s2 = xtime(s);
      const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
      const auto idx = static_cast<std::size_t>(i);
      t.te0[idx] = (std::uint32_t{s2} << 24) | (std::uint32_t{s} << 16) |
                   (std::uint32_t{s} << 8) | std::uint32_t{s3};
      t.te1[idx] = (std::uint32_t{s3} << 24) | (std::uint32_t{s2} << 16) |
                   (std::uint32_t{s} << 8) | std::uint32_t{s};
      t.te2[idx] = (std::uint32_t{s} << 24) | (std::uint32_t{s3} << 16) |
                   (std::uint32_t{s2} << 8) | std::uint32_t{s};
      t.te3[idx] = (std::uint32_t{s} << 24) | (std::uint32_t{s} << 16) |
                   (std::uint32_t{s3} << 8) | std::uint32_t{s2};
    }
    return t;
  }();
  return tables;
}

}  // namespace

void AesTtable::encrypt_block(const std::uint8_t in[kAesBlock],
                              std::uint8_t out[kAesBlock]) const noexcept {
  const Ttables& t = ttables();
  const std::uint32_t* rk = ks_.words();
  std::uint32_t s0 = load_be32(in) ^ rk[0];
  std::uint32_t s1 = load_be32(in + 4) ^ rk[1];
  std::uint32_t s2 = load_be32(in + 8) ^ rk[2];
  std::uint32_t s3 = load_be32(in + 12) ^ rk[3];

  for (int round = 1; round < ks_.rounds(); ++round) {
    rk += 4;
    const std::uint32_t t0 = t.te0[s0 >> 24] ^ t.te1[(s1 >> 16) & 0xff] ^
                             t.te2[(s2 >> 8) & 0xff] ^ t.te3[s3 & 0xff] ^
                             rk[0];
    const std::uint32_t t1 = t.te0[s1 >> 24] ^ t.te1[(s2 >> 16) & 0xff] ^
                             t.te2[(s3 >> 8) & 0xff] ^ t.te3[s0 & 0xff] ^
                             rk[1];
    const std::uint32_t t2 = t.te0[s2 >> 24] ^ t.te1[(s3 >> 16) & 0xff] ^
                             t.te2[(s0 >> 8) & 0xff] ^ t.te3[s1 & 0xff] ^
                             rk[2];
    const std::uint32_t t3 = t.te0[s3 >> 24] ^ t.te1[(s0 >> 16) & 0xff] ^
                             t.te2[(s1 >> 8) & 0xff] ^ t.te3[s2 & 0xff] ^
                             rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  const auto& sbox = aes_sbox();
  rk += 4;
  const auto final_word = [&](std::uint32_t a, std::uint32_t b,
                              std::uint32_t c, std::uint32_t d,
                              std::uint32_t k) {
    return ((std::uint32_t{sbox[(a >> 24) & 0xff]} << 24) |
            (std::uint32_t{sbox[(b >> 16) & 0xff]} << 16) |
            (std::uint32_t{sbox[(c >> 8) & 0xff]} << 8) |
            std::uint32_t{sbox[d & 0xff]}) ^
           k;
  };
  store_be32(out, final_word(s0, s1, s2, s3, rk[0]));
  store_be32(out + 4, final_word(s1, s2, s3, s0, rk[1]));
  store_be32(out + 8, final_word(s2, s3, s0, s1, rk[2]));
  store_be32(out + 12, final_word(s3, s0, s1, s2, rk[3]));
}

}  // namespace emc::crypto
