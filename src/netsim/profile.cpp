#include "emc/netsim/profile.hpp"

#include <stdexcept>

namespace emc::net {

NetworkProfile ethernet_10g() {
  NetworkProfile p;
  p.name = "ethernet-10g";
  // Calibrated against the paper's unencrypted MPICH baselines:
  // 1 B ping-pong ~20 us one-way, 2 MB ping-pong ~1.0 GB/s.
  p.latency = 13.5e-6;
  p.bandwidth = 1.17e9;       // ~94% of the 1.25 GB/s line rate
  p.send_overhead = 3.0e-6;   // TCP/socket stack per message
  p.recv_overhead = 3.0e-6;
  p.per_msg_nic = 0.6e-6;
  p.copy_bandwidth = 4.0e9;
  p.eager_threshold = 64 * 1024;
  p.contention_threshold = 0;  // ETH baseline saturates, no throttling
  return p;
}

NetworkProfile infiniband_qdr_40g() {
  NetworkProfile p;
  p.name = "infiniband-qdr-40g";
  // Calibrated against the MVAPICH2 baselines: 1 B ping-pong ~1.7 us
  // one-way, 2 MB ping-pong ~3.0 GB/s.
  p.latency = 0.9e-6;
  p.bandwidth = 3.25e9;       // effective QDR payload rate
  p.send_overhead = 0.4e-6;
  p.recv_overhead = 0.4e-6;
  p.per_msg_nic = 0.12e-6;
  p.copy_bandwidth = 9.0e9;   // eager copies; rendezvous is zero-copy
  p.eager_threshold = 16 * 1024;
  // Paper Fig. 11: baseline throughput plummets from 4 to 8 pairs —
  // modeled as NIC message-processing inflation once more than four
  // distinct flows overlap, plus a mild bandwidth derating.
  p.contention_threshold = 5;
  p.contention_msg_factor = 14.0;
  p.contention_bw_factor = 0.85;
  return p;
}

NetworkProfile intra_node() {
  NetworkProfile p;
  p.name = "intra-node-shm";
  p.latency = 0.45e-6;
  p.bandwidth = 6.0e9;
  p.send_overhead = 0.25e-6;
  p.recv_overhead = 0.25e-6;
  p.per_msg_nic = 0.05e-6;
  p.copy_bandwidth = 8.0e9;
  p.eager_threshold = 32 * 1024;
  return p;
}

NetworkProfile profile_by_name(const std::string& name) {
  if (name == "eth" || name == "ethernet" || name == "ethernet-10g") {
    return ethernet_10g();
  }
  if (name == "ib" || name == "infiniband" || name == "infiniband-qdr-40g") {
    return infiniband_qdr_40g();
  }
  if (name == "shm" || name == "intra" || name == "intra-node-shm") {
    return intra_node();
  }
  throw std::invalid_argument("unknown network profile: " + name);
}

}  // namespace emc::net
