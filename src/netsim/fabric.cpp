#include "emc/netsim/fabric.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

namespace emc::net {

namespace {

// SplitMix64 finalizer — the same hash family the fault injector uses,
// so every per-link draw is a pure function of (seed, link, index).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_double(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t link_key(int src, int dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
}

}  // namespace

Fabric::Fabric(ClusterConfig config) : config_(std::move(config)) {
  if (config_.num_nodes < 1 || config_.ranks_per_node < 1) {
    throw std::invalid_argument("cluster must have >=1 node and >=1 rank/node");
  }
  validate_topology();
  inter_nics_.resize(static_cast<std::size_t>(config_.num_nodes));
  intra_nics_.resize(static_cast<std::size_t>(config_.num_nodes));
  for (const LinkSpec& spec : config_.links) {
    LinkState& ls = links_[{spec.src_node, spec.dst_node}];
    ls.spec = &spec;
    if (spec.profile.faults.enabled()) {
      ls.injector = std::make_unique<FaultInjector>(spec.profile.faults);
    }
    if (spec.profile.cross.enabled()) {
      // First burst lands near one mean period in, jittered like every
      // later gap, so t=0 traffic is not systematically penalized.
      const std::uint64_t h =
          mix64(spec.profile.cross.seed ^
                mix64(link_key(spec.src_node, spec.dst_node)));
      ls.cross_next = spec.profile.cross.period *
                      (1.0 + spec.profile.cross.jitter *
                                 (2.0 * unit_double(h) - 1.0));
    }
  }
  for (const RouteSpec& route : config_.routes) {
    routes_[{route.src_node, route.dst_node}] = &route;
  }
  set_fault_plan(config_.faults);
}

void Fabric::validate_topology() const {
  const auto check_node = [this](int node, const char* what) {
    if (node < 0 || node >= config_.num_nodes) {
      throw std::invalid_argument(std::string(what) + " node " +
                                  std::to_string(node) +
                                  " out of range [0, " +
                                  std::to_string(config_.num_nodes) + ")");
    }
  };

  // Satellite hardening: validate the cluster-wide plan even when it is
  // disabled — a silently out-of-range probability must not lurk until
  // someone flips the plan on.
  config_.faults.validate();

  std::set<std::pair<int, int>> seen_links;
  for (const LinkSpec& spec : config_.links) {
    check_node(spec.src_node, "LinkSpec source");
    check_node(spec.dst_node, "LinkSpec destination");
    if (spec.src_node == spec.dst_node) {
      throw std::invalid_argument(
          "LinkSpec: src_node == dst_node (intra-node transport models "
          "the memory bus and is not overridable)");
    }
    if (!seen_links.insert({spec.src_node, spec.dst_node}).second) {
      throw std::invalid_argument(
          "duplicate LinkSpec for directed pair (" +
          std::to_string(spec.src_node) + " -> " +
          std::to_string(spec.dst_node) + ")");
    }
    spec.profile.validate();
  }

  std::set<std::pair<int, int>> seen_routes;
  for (const RouteSpec& route : config_.routes) {
    check_node(route.src_node, "RouteSpec source");
    check_node(route.dst_node, "RouteSpec destination");
    if (route.src_node == route.dst_node) {
      throw std::invalid_argument("RouteSpec: src_node == dst_node");
    }
    if (route.via.empty()) {
      throw std::invalid_argument(
          "RouteSpec: via is empty (a route with no relays is the direct "
          "link; omit the route instead)");
    }
    if (!seen_routes.insert({route.src_node, route.dst_node}).second) {
      throw std::invalid_argument(
          "duplicate RouteSpec for directed pair (" +
          std::to_string(route.src_node) + " -> " +
          std::to_string(route.dst_node) + ")");
    }
    std::set<int> hops;
    for (int hop : route.via) {
      check_node(hop, "RouteSpec relay");
      if (hop == route.src_node || hop == route.dst_node) {
        throw std::invalid_argument(
            "RouteSpec: relay node " + std::to_string(hop) +
            " is a route endpoint");
      }
      if (!hops.insert(hop).second) {
        throw std::invalid_argument("RouteSpec: relay node " +
                                    std::to_string(hop) +
                                    " appears twice on one route");
      }
    }
  }
}

void Fabric::set_fault_plan(const FaultPlan& plan) {
  plan.validate();
  injector_ = plan.enabled() ? std::make_unique<FaultInjector>(plan) : nullptr;
}

const Fabric::LinkState* Fabric::link_state(int src_node,
                                            int dst_node) const {
  const auto it = links_.find({src_node, dst_node});
  return it == links_.end() ? nullptr : &it->second;
}

Fabric::LinkState* Fabric::link_state(int src_node, int dst_node) {
  return const_cast<LinkState*>(
      std::as_const(*this).link_state(src_node, dst_node));
}

const NetworkProfile& Fabric::profile(int src, int dst) const {
  if (same_node(src, dst)) return config_.intra;
  if (const LinkState* ls = link_state(node_of(src), node_of(dst))) {
    return ls->spec->profile.net;
  }
  return config_.inter;
}

const NetworkProfile& Fabric::hop_profile(int src_node, int dst_node) const {
  if (const LinkState* ls = link_state(src_node, dst_node)) {
    return ls->spec->profile.net;
  }
  return config_.inter;
}

const Fabric::Nic& Fabric::nic_for(int src, int dst) const {
  const auto node = static_cast<std::size_t>(node_of(src));
  if (same_node(src, dst)) return intra_nics_[node];
  if (const LinkState* ls = link_state(node_of(src), node_of(dst))) {
    return ls->nic;
  }
  return inter_nics_[node];
}

Fabric::Nic& Fabric::nic_for(int src, int dst) {
  return const_cast<Nic&>(std::as_const(*this).nic_for(src, dst));
}

int Fabric::active_flows(int src, int dst, double at) const {
  const Nic& nic = nic_for(src, dst);
  std::vector<int> sources;
  for (const auto& [source, end] : nic.active) {
    if (end > at &&
        std::find(sources.begin(), sources.end(), source) == sources.end()) {
      sources.push_back(source);
    }
  }
  return static_cast<int>(sources.size());
}

PathTimes Fabric::reserve_core(Nic& nic, const NetworkProfile& prof, int flow,
                               std::size_t bytes, double earliest) {
  const double start = std::max(earliest, nic.next_free);

  // Contention: count distinct *flows* (source ranks) with traffic
  // still pending when this transfer was submitted — the mechanism
  // behind the paper's 8-pair InfiniBand throttling (Fig. 11). Window
  // depth from a single sender does not trigger it.
  double per_msg = prof.per_msg_nic;
  double bandwidth = prof.bandwidth;
  if (prof.contention_threshold > 0) {
    std::erase_if(nic.active, [earliest](const std::pair<int, double>& e) {
      return e.second <= earliest;
    });
    std::vector<int> sources;
    for (const auto& [source, end] : nic.active) {
      if (end > earliest &&
          std::find(sources.begin(), sources.end(), source) == sources.end()) {
        sources.push_back(source);
      }
    }
    if (static_cast<int>(sources.size()) >= prof.contention_threshold) {
      per_msg *= prof.contention_msg_factor;
      bandwidth *= prof.contention_bw_factor;
    }
  }

  const double busy = per_msg + static_cast<double>(bytes) / bandwidth;
  nic.next_free = start + busy;
  if (prof.contention_threshold > 0) {
    nic.active.emplace_back(flow, nic.next_free);
  }

  return PathTimes{
      .start = start,
      .egress_done = start + busy,
      .arrival = start + busy + prof.latency,
      .queue_delay = start - earliest,
  };
}

PathTimes Fabric::reserve_link(LinkState& ls, int flow, std::size_t bytes,
                               double earliest) {
  const LinkProfile& lp = ls.spec->profile;
  const std::uint64_t lk = link_key(ls.spec->src_node, ls.spec->dst_node);

  // Drain background cross-traffic bursts that are due before this
  // message could start. Each burst occupies the NIC like a foreign
  // transfer; sizes and gaps are pure hashes of (seed, link, k).
  // Termination: validate() guarantees mean utilization < 1, so
  // next_free advances strictly slower than cross_next.
  if (lp.cross.enabled()) {
    for (;;) {
      const double candidate = std::max(earliest, ls.nic.next_free);
      if (ls.cross_next > candidate) break;
      const std::uint64_t h =
          mix64(lp.cross.seed ^ mix64(lk ^ mix64(ls.cross_emitted)));
      const double size =
          static_cast<double>(lp.cross.burst_bytes) *
          (1.0 + lp.cross.jitter * (2.0 * unit_double(h) - 1.0));
      ls.nic.next_free = std::max(ls.nic.next_free, ls.cross_next) +
                         size / lp.net.bandwidth;
      const double gap =
          lp.cross.period *
          (1.0 + lp.cross.jitter * (2.0 * unit_double(mix64(h)) - 1.0));
      ls.cross_next += gap;
      ++ls.cross_emitted;
    }
  }

  PathTimes pt = reserve_core(ls.nic, lp.net, flow, bytes, earliest);

  if (lp.jitter > 0.0) {
    const std::uint64_t h = mix64(lp.seed ^ mix64(lk ^ mix64(ls.msg_count)));
    pt.arrival += lp.jitter * unit_double(h);
  }
  ++ls.msg_count;

  // FIFO reorder guard: a jitter draw must not let message k arrive
  // before message k-1 unless the link explicitly models reordering.
  if (!lp.allow_reorder && pt.arrival < ls.last_arrival) {
    pt.arrival = ls.last_arrival;
  }
  ls.last_arrival = std::max(ls.last_arrival, pt.arrival);

  return pt;
}

PathTimes Fabric::reserve_path(int src, int dst, std::size_t bytes,
                               double earliest) {
  check_rank(src);
  check_rank(dst);
  if (!same_node(src, dst)) {
    if (LinkState* ls = link_state(node_of(src), node_of(dst))) {
      return reserve_link(*ls, src, bytes, earliest);
    }
  }
  Nic& nic = nic_for(src, dst);
  return reserve_core(nic, profile(src, dst), src, bytes, earliest);
}

PathTimes Fabric::reserve_hop(int src_node, int dst_node, int flow,
                              std::size_t bytes, double earliest) {
  if (LinkState* ls = link_state(src_node, dst_node)) {
    return reserve_link(*ls, flow, bytes, earliest);
  }
  Nic& nic = inter_nics_[static_cast<std::size_t>(src_node)];
  return reserve_core(nic, config_.inter, flow, bytes, earliest);
}

PathTimes Fabric::reserve_route(int src, int dst, std::size_t bytes,
                                double earliest, double per_relay_delay) {
  check_rank(src);
  check_rank(dst);
  const RouteSpec* route =
      same_node(src, dst) ? nullptr : route_for(node_of(src), node_of(dst));
  if (route == nullptr) return reserve_path(src, dst, bytes, earliest);

  const std::vector<int> nodes = path_nodes(src, dst);
  PathTimes first = reserve_hop(nodes[0], nodes[1], src, bytes, earliest);
  double t = first.arrival;
  for (std::size_t i = 1; i + 1 < nodes.size(); ++i) {
    t += per_relay_delay;
    // Relay hops are driven by the relay node, not the origin rank:
    // encode the node as a negative flow id so the contention model
    // sees it as a distinct sender and it cannot collide with a rank.
    const PathTimes hop =
        reserve_hop(nodes[i], nodes[i + 1], -2 - nodes[i], bytes, t);
    t = hop.arrival;
  }
  first.relay_delay = t - first.arrival;
  first.arrival = t;
  return first;
}

const RouteSpec* Fabric::route_for(int src_node, int dst_node) const {
  const auto it = routes_.find({src_node, dst_node});
  return it == routes_.end() ? nullptr : it->second;
}

std::vector<int> Fabric::path_nodes(int src, int dst) const {
  const int sn = node_of(src);
  const int dn = node_of(dst);
  if (sn == dn) return {sn};
  std::vector<int> nodes{sn};
  if (const RouteSpec* route = route_for(sn, dn)) {
    nodes.insert(nodes.end(), route->via.begin(), route->via.end());
  }
  nodes.push_back(dn);
  return nodes;
}

bool Fabric::relayed(int src, int dst) const {
  return !same_node(src, dst) &&
         route_for(node_of(src), node_of(dst)) != nullptr;
}

int Fabric::relay_count(int src, int dst) const {
  if (same_node(src, dst)) return 0;
  const RouteSpec* route = route_for(node_of(src), node_of(dst));
  return route == nullptr ? 0 : static_cast<int>(route->via.size());
}

FaultInjector* Fabric::faults_for(int src, int dst) {
  if (!same_node(src, dst)) {
    if (LinkState* ls = link_state(node_of(src), node_of(dst))) {
      if (ls->injector != nullptr) return ls->injector.get();
    }
  }
  return injector_.get();
}

FaultInjector* Fabric::faults_for_hop(int src_node, int dst_node) {
  if (LinkState* ls = link_state(src_node, dst_node)) {
    if (ls->injector != nullptr) return ls->injector.get();
  }
  return injector_.get();
}

}  // namespace emc::net
