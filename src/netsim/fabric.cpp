#include "emc/netsim/fabric.hpp"

#include <algorithm>
#include <utility>

namespace emc::net {

Fabric::Fabric(ClusterConfig config) : config_(std::move(config)) {
  if (config_.num_nodes < 1 || config_.ranks_per_node < 1) {
    throw std::invalid_argument("cluster must have >=1 node and >=1 rank/node");
  }
  inter_nics_.resize(static_cast<std::size_t>(config_.num_nodes));
  intra_nics_.resize(static_cast<std::size_t>(config_.num_nodes));
  set_fault_plan(config_.faults);
}

void Fabric::set_fault_plan(const FaultPlan& plan) {
  injector_ = plan.enabled() ? std::make_unique<FaultInjector>(plan) : nullptr;
}

const Fabric::Nic& Fabric::nic_for(int src, int dst) const {
  const auto node = static_cast<std::size_t>(node_of(src));
  return same_node(src, dst) ? intra_nics_[node] : inter_nics_[node];
}

Fabric::Nic& Fabric::nic_for(int src, int dst) {
  return const_cast<Nic&>(std::as_const(*this).nic_for(src, dst));
}

int Fabric::active_flows(int src, int dst, double at) const {
  const Nic& nic = nic_for(src, dst);
  std::vector<int> sources;
  for (const auto& [source, end] : nic.active) {
    if (end > at &&
        std::find(sources.begin(), sources.end(), source) == sources.end()) {
      sources.push_back(source);
    }
  }
  return static_cast<int>(sources.size());
}

PathTimes Fabric::reserve_path(int src, int dst, std::size_t bytes,
                               double earliest) {
  check_rank(src);
  check_rank(dst);
  const NetworkProfile& prof = profile(src, dst);
  Nic& nic = nic_for(src, dst);

  const double start = std::max(earliest, nic.next_free);

  // Contention: count distinct *flows* (source ranks) with traffic
  // still pending when this transfer was submitted — the mechanism
  // behind the paper's 8-pair InfiniBand throttling (Fig. 11). Window
  // depth from a single sender does not trigger it.
  double per_msg = prof.per_msg_nic;
  double bandwidth = prof.bandwidth;
  if (prof.contention_threshold > 0) {
    std::erase_if(nic.active, [earliest](const std::pair<int, double>& e) {
      return e.second <= earliest;
    });
    if (active_flows(src, dst, earliest) >= prof.contention_threshold) {
      per_msg *= prof.contention_msg_factor;
      bandwidth *= prof.contention_bw_factor;
    }
  }

  const double busy = per_msg + static_cast<double>(bytes) / bandwidth;
  nic.next_free = start + busy;
  if (prof.contention_threshold > 0) {
    nic.active.emplace_back(src, nic.next_free);
  }

  return PathTimes{
      .start = start,
      .egress_done = start + busy,
      .arrival = start + busy + prof.latency,
      .queue_delay = start - earliest,
  };
}

}  // namespace emc::net
