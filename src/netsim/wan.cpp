#include "emc/netsim/wan.hpp"

#include <stdexcept>
#include <string>

namespace emc::net {

void CrossTraffic::validate(double link_bandwidth) const {
  if (period < 0.0) {
    throw std::invalid_argument("CrossTraffic: period must be non-negative");
  }
  if (jitter < 0.0 || jitter >= 1.0) {
    throw std::invalid_argument("CrossTraffic: jitter must be in [0, 1)");
  }
  if (!enabled()) return;
  // Worst-case burst duration vs best-case inter-burst gap: mean
  // utilization must stay below 1 or the burst drain loop (and the
  // simulated link) never catches up.
  const double burst_seconds =
      static_cast<double>(burst_bytes) * (1.0 + jitter) / link_bandwidth;
  const double min_gap = period * (1.0 - jitter);
  if (burst_seconds >= min_gap) {
    throw std::invalid_argument(
        "CrossTraffic: bursts of " + std::to_string(burst_bytes) +
        " bytes every " + std::to_string(period) +
        " s saturate the link (utilization >= 1); lower burst_bytes or "
        "raise period");
  }
}

void LinkProfile::validate() const {
  if (net.latency < 0.0) {
    throw std::invalid_argument("LinkProfile: latency must be non-negative");
  }
  if (!(net.bandwidth > 0.0)) {
    throw std::invalid_argument("LinkProfile: bandwidth must be positive");
  }
  if (!(net.copy_bandwidth > 0.0)) {
    throw std::invalid_argument(
        "LinkProfile: copy_bandwidth must be positive");
  }
  if (net.send_overhead < 0.0 || net.recv_overhead < 0.0 ||
      net.per_msg_nic < 0.0) {
    throw std::invalid_argument(
        "LinkProfile: per-message overheads must be non-negative");
  }
  if (jitter < 0.0) {
    throw std::invalid_argument("LinkProfile: jitter must be non-negative");
  }
  faults.validate();
  if (!faults.crashes.empty()) {
    throw std::invalid_argument(
        "LinkProfile: rank crashes are a cluster-wide property; script "
        "them on ClusterConfig::faults, not on a link");
  }
  cross.validate(net.bandwidth);
}

NetworkProfile wan_metro() {
  NetworkProfile p;
  p.name = "wan-metro";
  // A metro-area leased path: ~2 ms one-way, 1 Gb/s, TCP-stack
  // overheads a bit above the LAN profile.
  p.latency = 2e-3;
  p.bandwidth = 1.25e8;
  p.send_overhead = 5.0e-6;
  p.recv_overhead = 5.0e-6;
  p.per_msg_nic = 1.0e-6;
  p.copy_bandwidth = 4.0e9;
  p.eager_threshold = 64 * 1024;
  return p;
}

NetworkProfile wan_continental() {
  NetworkProfile p;
  p.name = "wan-continental";
  // A continental internet path: ~40 ms one-way, 200 Mb/s. RTT is four
  // orders of magnitude above the IB profile — the regime where a
  // LAN-tuned fixed RTO spuriously retransmits every frame.
  p.latency = 40e-3;
  p.bandwidth = 2.5e7;
  p.send_overhead = 8.0e-6;
  p.recv_overhead = 8.0e-6;
  p.per_msg_nic = 2.0e-6;
  p.copy_bandwidth = 4.0e9;
  p.eager_threshold = 64 * 1024;
  return p;
}

LinkProfile wan_link(NetworkProfile base, double p_drop, double jitter,
                     std::uint64_t seed) {
  LinkProfile link;
  link.net = std::move(base);
  link.jitter = jitter;
  link.seed = seed;
  link.faults.seed = seed;
  link.faults.p_drop = p_drop;
  link.validate();
  return link;
}

}  // namespace emc::net
