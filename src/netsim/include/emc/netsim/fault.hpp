// Deterministic fault injection for the simulated fabric.
//
// A FaultPlan describes the adversarial (or just lossy) behaviour of
// the wire: per-link probabilities for bit-flip corruption,
// truncation, duplication, and message drop, plus scripted triggers
// that fire a specific fault on the Nth message of a link. Every
// decision is a pure function of (seed, link, per-link message index),
// so the same seed reproduces the exact same fault schedule no matter
// how the simulation interleaves — the property Hunold-style
// reproducible fault campaigns need.
//
// The injector only *decides*; applying the damage to an envelope is
// the communicator's job (src/mpi/comm.cpp), and surviving it is the
// secure layer's (src/secure_mpi/).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace emc::net {

enum class FaultKind : std::uint8_t {
  kNone,       ///< deliver untouched
  kCorrupt,    ///< flip one bit of the payload
  kTruncate,   ///< deliver only a prefix of the payload
  kDuplicate,  ///< deliver the message twice
  kDrop,       ///< never deliver
  kDelay,      ///< deliver intact, but late (seeded latency spike)
  /// Permanently kill a rank's process at a scripted virtual time (a
  /// node crash, not a wire fault). Never drawn probabilistically and
  /// never applied to a message in flight: it is declared through
  /// FaultPlan::crashes and armed on the engine at world construction
  /// (sim::Engine::set_kill_time).
  kRankCrash,
};

/// Scripted fault: fire @p kind on the @p nth message (0-based count
/// of fault-eligible messages) crossing the (src, dst) link. A
/// negative src/dst matches any rank. Triggers take precedence over
/// the probabilistic draws and fire at most once each.
struct FaultTrigger {
  int src = -1;
  int dst = -1;
  std::uint64_t nth = 0;
  FaultKind kind = FaultKind::kCorrupt;
  /// For kTruncate: delivered prefix length, or kAutoLength to pick a
  /// seeded-random strictly-shorter length.
  std::size_t new_length = kAutoLength;

  /// For kDelay: extra latency in virtual seconds, or kAutoDelay to
  /// pick a seeded-random spike within the plan's delay_seconds.
  double delay_seconds = kAutoDelay;

  static constexpr std::size_t kAutoLength = static_cast<std::size_t>(-1);
  static constexpr double kAutoDelay = -1.0;
};

/// Scripted rank crash (FaultKind::kRankCrash): rank @p rank's
/// process is permanently killed at virtual time @p at. Validated at
/// World construction (time >= 0, rank within the cluster).
struct RankCrash {
  int rank = -1;
  double at = 0.0;
};

/// Seeded description of how unreliable every link is. All
/// probabilities are per-message and must sum to at most 1.
struct FaultPlan {
  std::uint64_t seed = 1;
  double p_corrupt = 0.0;
  double p_truncate = 0.0;
  double p_duplicate = 0.0;
  double p_drop = 0.0;
  double p_delay = 0.0;
  /// Upper bound of the seeded latency spike a kDelay draw adds, in
  /// virtual seconds (each spike is uniform in (0, delay_seconds]).
  double delay_seconds = 1e-3;
  std::vector<FaultTrigger> triggers;

  /// Scripted permanent rank crashes. Orthogonal to the wire faults
  /// above: the injector never draws kRankCrash; the world arms each
  /// entry on the engine and the fault-tolerance layer (src/ft/)
  /// handles detection and recovery.
  std::vector<RankCrash> crashes;

  [[nodiscard]] bool enabled() const noexcept {
    return p_corrupt > 0.0 || p_truncate > 0.0 || p_duplicate > 0.0 ||
           p_drop > 0.0 || p_delay > 0.0 || !triggers.empty();
  }

  /// Throws std::invalid_argument on negative or over-unity
  /// probabilities. Crash specs are additionally range-checked
  /// against the cluster size at World construction
  /// (validate_crashes).
  void validate() const;

  /// Validates the crash specs against a world of @p num_ranks ranks:
  /// each rank must be in [0, num_ranks), each time non-negative and
  /// finite, and no rank may crash twice. Throws
  /// std::invalid_argument.
  void validate_crashes(int num_ranks) const;
};

/// One resolved decision: what to do to the message at hand. Position
/// and lengths are already reduced modulo the payload size.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  std::size_t position = 0;      ///< kCorrupt: byte index to damage
  std::uint8_t flip_mask = 0;    ///< kCorrupt: single-bit XOR mask
  std::size_t new_length = 0;    ///< kTruncate: delivered prefix length
  double delay_seconds = 0.0;    ///< kDelay: extra latency before arrival
};

/// Cumulative injection accounting (decisions actually handed out).
struct FaultStats {
  std::uint64_t messages_seen = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delayed = 0;

  [[nodiscard]] std::uint64_t total_injected() const noexcept {
    return corrupted + truncated + duplicated + dropped + delayed;
  }
  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

class FaultInjector {
 public:
  /// Validates and captures @p plan.
  explicit FaultInjector(FaultPlan plan);

  /// Decides the fate of the next message on the (src, dst) link.
  /// @p bytes is the payload size; zero-byte payloads are never
  /// corrupted or truncated. When @p allow_loss is false (RDMA-style
  /// pulls, where losing the transfer would deadlock the sender),
  /// drop and duplicate decisions degrade to corruption.
  FaultDecision next(int src, int dst, std::size_t bytes,
                     bool allow_loss = true);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  FaultPlan plan_;
  FaultStats stats_;
  /// Per-link count of fault-eligible messages, the `nth` coordinate
  /// of both triggers and the deterministic probability draws.
  std::map<std::pair<int, int>, std::uint64_t> link_count_;
};

}  // namespace emc::net
