// Cluster fabric: maps ranks to nodes, owns per-node NIC arbiters, and
// computes message path timings in virtual time.
//
// All state is mutated only by the currently running simulated process
// (the sim engine serializes process threads), so no locking is needed.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "emc/netsim/fault.hpp"
#include "emc/netsim/profile.hpp"

namespace emc::net {

/// Static description of the simulated cluster.
struct ClusterConfig {
  int num_nodes = 1;
  int ranks_per_node = 1;
  NetworkProfile inter = ethernet_10g();
  NetworkProfile intra = intra_node();

  /// Wire fault model (disabled unless probabilities/triggers are set).
  FaultPlan faults;

  [[nodiscard]] int total_ranks() const noexcept {
    return num_nodes * ranks_per_node;
  }
};

/// Result of reserving the egress path for one message.
struct PathTimes {
  double start = 0.0;        ///< when the NIC begins serializing the bytes
  double egress_done = 0.0;  ///< when the sender-side buffer is free
  double arrival = 0.0;      ///< when the last byte reaches the receiver
  double queue_delay = 0.0;  ///< start - earliest: time queued at the NIC
};

class Fabric {
 public:
  explicit Fabric(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] int node_of(int rank) const {
    check_rank(rank);
    return rank / config_.ranks_per_node;
  }

  [[nodiscard]] bool same_node(int a, int b) const {
    return node_of(a) == node_of(b);
  }

  /// Profile governing traffic between two ranks.
  [[nodiscard]] const NetworkProfile& profile(int src, int dst) const {
    return same_node(src, dst) ? config_.intra : config_.inter;
  }

  /// Reserves the sender-side NIC for a @p bytes message from @p src
  /// to @p dst, no earlier than @p earliest, applying FIFO bandwidth
  /// sharing and the profile's contention model. Advances the NIC
  /// "next free" pointer; returns the path timing. CPU-side costs
  /// (software overheads, eager copies) are charged by the caller.
  PathTimes reserve_path(int src, int dst, std::size_t bytes, double earliest);

  /// Number of distinct source ranks with transfers still in flight
  /// through src's relevant NIC at time @p at. Exposed for tests of
  /// the contention model.
  [[nodiscard]] int active_flows(int src, int dst, double at) const;

  /// Installs @p plan, replacing any active injector (a plan with no
  /// probabilities and no triggers uninstalls it).
  void set_fault_plan(const FaultPlan& plan);

  /// The active fault injector, or nullptr when the wire is reliable.
  [[nodiscard]] FaultInjector* faults() noexcept { return injector_.get(); }

 private:
  struct Nic {
    double next_free = 0.0;
    /// (source rank, completion time) of recent transfers; used to
    /// count concurrent *flows* for the contention model.
    std::vector<std::pair<int, double>> active;
  };

  void check_rank(int rank) const {
    if (rank < 0 || rank >= config_.total_ranks()) {
      throw std::out_of_range("rank out of range");
    }
  }

  Nic& nic_for(int src, int dst);
  [[nodiscard]] const Nic& nic_for(int src, int dst) const;

  ClusterConfig config_;
  std::vector<Nic> inter_nics_;  // one per node
  std::vector<Nic> intra_nics_;  // one per node (memory bus)
  std::unique_ptr<FaultInjector> injector_;
};

}  // namespace emc::net
