// Cluster fabric: maps ranks to nodes, owns per-node NIC arbiters, and
// computes message path timings in virtual time.
//
// All state is mutated only by the currently running simulated process
// (the sim engine serializes process threads), so no locking is needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "emc/netsim/fault.hpp"
#include "emc/netsim/profile.hpp"
#include "emc/netsim/wan.hpp"

namespace emc::net {

/// Static description of the simulated cluster.
struct ClusterConfig {
  int num_nodes = 1;
  int ranks_per_node = 1;
  NetworkProfile inter = ethernet_10g();
  NetworkProfile intra = intra_node();

  /// Wire fault model (disabled unless probabilities/triggers are set).
  FaultPlan faults;

  /// Per-directed-node-pair link overrides (WAN links, asymmetric
  /// bandwidth, seeded jitter, per-link faults, cross-traffic). Empty
  /// keeps the uniform fabric. Validated at Fabric construction: at
  /// most one spec per directed pair, nodes in range, rates sane.
  std::vector<LinkSpec> links;

  /// Multi-hop relayed routes (see RouteSpec). Traffic between ranks
  /// whose node pair matches a route is store-and-forwarded through
  /// the intermediate nodes. Empty keeps direct delivery.
  std::vector<RouteSpec> routes;

  [[nodiscard]] int total_ranks() const noexcept {
    return num_nodes * ranks_per_node;
  }
};

/// Result of reserving the egress path for one message.
struct PathTimes {
  double start = 0.0;        ///< when the NIC begins serializing the bytes
  double egress_done = 0.0;  ///< when the sender-side buffer is free
  double arrival = 0.0;      ///< when the last byte reaches the receiver
  double queue_delay = 0.0;  ///< start - earliest: time queued at the NIC
  /// Relayed routes only: virtual seconds spent beyond the first hop
  /// (store-and-forward through the intermediate nodes, including any
  /// per-relay processing surcharge). 0 on direct paths. The receiver
  /// attributes this span to trace::Category::kRelayForward.
  double relay_delay = 0.0;
};

class Fabric {
 public:
  explicit Fabric(ClusterConfig config);

  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] int node_of(int rank) const {
    check_rank(rank);
    return rank / config_.ranks_per_node;
  }

  [[nodiscard]] bool same_node(int a, int b) const {
    return node_of(a) == node_of(b);
  }

  /// Profile governing traffic between two ranks (the link override's
  /// profile when the node pair has one).
  [[nodiscard]] const NetworkProfile& profile(int src, int dst) const;

  /// Profile of the directed (src_node -> dst_node) inter-node link.
  [[nodiscard]] const NetworkProfile& hop_profile(int src_node,
                                                  int dst_node) const;

  /// Reserves the sender-side NIC for a @p bytes message from @p src
  /// to @p dst, no earlier than @p earliest, applying FIFO bandwidth
  /// sharing and the profile's contention model. Advances the NIC
  /// "next free" pointer; returns the path timing. CPU-side costs
  /// (software overheads, eager copies) are charged by the caller.
  /// Single-link only: multi-hop routes are ignored (see
  /// reserve_route).
  PathTimes reserve_path(int src, int dst, std::size_t bytes, double earliest);

  /// Route-aware reservation: like reserve_path, but when the rank
  /// pair's node pair matches a RouteSpec the payload is chained
  /// store-and-forward through every hop, paying @p per_relay_delay
  /// extra virtual seconds at each intermediate node (the relay
  /// processing surcharge — see RelayPolicy). egress_done and
  /// queue_delay describe the first hop (the sender's NIC);
  /// arrival/relay_delay describe the full route.
  PathTimes reserve_route(int src, int dst, std::size_t bytes,
                          double earliest, double per_relay_delay = 0.0);

  /// Reserves one directed inter-node hop (used by the per-hop ARQ).
  /// @p flow identifies the sending entity for the contention model.
  PathTimes reserve_hop(int src_node, int dst_node, int flow,
                        std::size_t bytes, double earliest);

  /// The route governing (src_node -> dst_node) traffic, or nullptr.
  [[nodiscard]] const RouteSpec* route_for(int src_node,
                                           int dst_node) const;

  /// Node sequence a (src -> dst) payload crosses, endpoints included
  /// (size 1 intra-node, 2 direct, 3+ relayed).
  [[nodiscard]] std::vector<int> path_nodes(int src, int dst) const;

  /// True when (src -> dst) rank traffic crosses at least one relay.
  [[nodiscard]] bool relayed(int src, int dst) const;

  /// Number of intermediate relay nodes on the (src -> dst) path.
  [[nodiscard]] int relay_count(int src, int dst) const;

  /// Number of distinct source ranks with transfers still in flight
  /// through src's relevant NIC at time @p at. Exposed for tests of
  /// the contention model.
  [[nodiscard]] int active_flows(int src, int dst, double at) const;

  /// Installs @p plan, replacing any active injector (a plan with no
  /// probabilities and no triggers uninstalls it). Validates the plan
  /// even when disabled.
  void set_fault_plan(const FaultPlan& plan);

  /// The cluster-wide fault injector, or nullptr when no cluster plan
  /// is active. Per-link plans (LinkProfile::faults) live on their
  /// links — use faults_for for the injector governing a rank pair.
  [[nodiscard]] FaultInjector* faults() noexcept { return injector_.get(); }

  /// The injector governing (src -> dst) rank traffic: the node
  /// pair's per-link injector when its LinkSpec carries an enabled
  /// plan, else the cluster-wide injector (may be nullptr).
  [[nodiscard]] FaultInjector* faults_for(int src, int dst);

  /// Same, for one directed inter-node hop of a relayed route.
  [[nodiscard]] FaultInjector* faults_for_hop(int src_node, int dst_node);

  /// Accounting hook for the secure layer's exposure counting: called
  /// by the communicator once per payload delivery that crossed
  /// @p relays intermediate nodes. Under a hop-trusted relay policy
  /// every such crossing exposes plaintext to the relay operator.
  void note_relay_exposure(int relays) noexcept {
    relay_exposures_ += static_cast<std::uint64_t>(relays);
  }
  [[nodiscard]] std::uint64_t relay_exposures() const noexcept {
    return relay_exposures_;
  }

 private:
  struct Nic {
    double next_free = 0.0;
    /// (source rank, completion time) of recent transfers; used to
    /// count concurrent *flows* for the contention model.
    std::vector<std::pair<int, double>> active;
  };

  /// Mutable state of one overridden directed link.
  struct LinkState {
    const LinkSpec* spec = nullptr;  ///< into config_.links (stable)
    Nic nic;
    std::uint64_t msg_count = 0;     ///< jitter draw index
    double last_arrival = 0.0;       ///< FIFO reorder guard watermark
    std::uint64_t cross_emitted = 0; ///< cross-traffic bursts consumed
    double cross_next = 0.0;         ///< next burst start time
    std::unique_ptr<FaultInjector> injector;  ///< per-link plan, if any
  };

  void check_rank(int rank) const {
    if (rank < 0 || rank >= config_.total_ranks()) {
      throw std::out_of_range("rank out of range");
    }
  }

  void validate_topology() const;

  Nic& nic_for(int src, int dst);
  [[nodiscard]] const Nic& nic_for(int src, int dst) const;

  [[nodiscard]] LinkState* link_state(int src_node, int dst_node);
  [[nodiscard]] const LinkState* link_state(int src_node,
                                            int dst_node) const;

  /// Shared FIFO + contention reservation core.
  PathTimes reserve_core(Nic& nic, const NetworkProfile& prof, int flow,
                         std::size_t bytes, double earliest);

  /// Reservation on an overridden link: cross-traffic drain, core
  /// reservation, seeded jitter, FIFO reorder guard.
  PathTimes reserve_link(LinkState& ls, int flow, std::size_t bytes,
                         double earliest);

  ClusterConfig config_;
  std::vector<Nic> inter_nics_;  // one per node
  std::vector<Nic> intra_nics_;  // one per node (memory bus)
  std::map<std::pair<int, int>, LinkState> links_;  // overridden pairs
  std::map<std::pair<int, int>, const RouteSpec*> routes_;
  std::unique_ptr<FaultInjector> injector_;
  std::uint64_t relay_exposures_ = 0;
};

}  // namespace emc::net
