// Network performance profiles for the simulated cluster.
//
// The model is LogGP-flavoured: a one-way message of s bytes posted at
// time t completes at the receiver at
//
//   arrival = nic_start + per_msg_nic + s / bandwidth + latency
//
// where nic_start is when the sender's NIC becomes free (FIFO byte
// serialization models link saturation with concurrent flows), and the
// sender/receiver CPUs additionally pay per-message software overheads
// and, on the eager path, a buffer-copy cost. Profiles are calibrated
// so the baseline (unencrypted) ping-pong and multi-pair curves have
// the shape the paper reports for its 10 GbE and 40 Gb IB QDR testbed.
#pragma once

#include <cstddef>
#include <string>

namespace emc::net {

struct NetworkProfile {
  std::string name;

  double latency = 0.0;         ///< one-way wire latency (s)
  double bandwidth = 1.0;       ///< wire bandwidth (bytes/s)
  double send_overhead = 0.0;   ///< per-message sender CPU cost (s)
  double recv_overhead = 0.0;   ///< per-message receiver CPU cost (s)
  double per_msg_nic = 0.0;     ///< NIC occupancy per message (s)
  double copy_bandwidth = 1.0;  ///< eager-path buffer copy speed (bytes/s)

  /// Messages larger than this use the rendezvous (RTS/CTS, zero-copy)
  /// protocol; smaller ones are sent eagerly.
  std::size_t eager_threshold = 0;

  /// Contention model: once more than `contention_threshold` transfers
  /// overlap on one NIC, per-message NIC cost is multiplied by
  /// `contention_msg_factor` and effective bandwidth by
  /// `contention_bw_factor`. threshold 0 disables the model.
  int contention_threshold = 0;
  double contention_msg_factor = 1.0;
  double contention_bw_factor = 1.0;

  /// Effective per-byte wire time (s/byte).
  [[nodiscard]] double byte_time() const noexcept { return 1.0 / bandwidth; }
};

/// 10 Gbps Ethernet with a TCP/sockets MPI stack (paper's MPICH side).
[[nodiscard]] NetworkProfile ethernet_10g();

/// 40 Gbps InfiniBand QDR with an RDMA MPI stack (paper's MVAPICH side);
/// includes the >4-flow NIC contention the paper observes (Fig. 11).
[[nodiscard]] NetworkProfile infiniband_qdr_40g();

/// Intra-node shared-memory transport.
[[nodiscard]] NetworkProfile intra_node();

/// Looks up a profile by name ("eth", "ib"); throws on unknown names.
[[nodiscard]] NetworkProfile profile_by_name(const std::string& name);

}  // namespace emc::net
