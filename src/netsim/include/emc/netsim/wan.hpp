// Heterogeneous / hostile network extensions for the simulated fabric.
//
// The baseline cluster model is a uniform trusted LAN: every inter-node
// pair shares one NetworkProfile and one global FaultPlan. This header
// adds the hostile-network scenario pack:
//
//   * LinkProfile / LinkSpec — per-directed-node-pair overrides (WAN
//     links with high RTT, asymmetric bandwidth, seeded latency jitter,
//     their own FaultPlan, and deterministic background cross-traffic),
//   * RouteSpec — multi-hop relayed routes through intermediate nodes
//     that store-and-forward every payload (the untrusted-overlay
//     topology; trust policy lives in the secure layer, see
//     net::RelayPolicy and secure::RelayTrust),
//   * RelayPolicy — what an intermediate hop does to a payload in
//     flight (per-hop processing surcharge, per-hop integrity checks).
//
// Everything stays deterministic: jitter draws and cross-traffic burst
// schedules are pure SplitMix64 functions of (seed, link, index), so a
// fixed configuration replays byte-identically — the same property the
// fault injector guarantees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "emc/netsim/fault.hpp"
#include "emc/netsim/profile.hpp"

namespace emc::net {

/// Deterministic background cross-traffic on one directed link: a
/// seeded burst process that occupies the link's NIC independently of
/// the simulated application. Burst k starts at a seeded time near
/// k * period and carries a seeded size near burst_bytes; both are
/// jittered by +-`jitter` relative variation. The schedule is a pure
/// function of (seed, link, k) — no RNG state, no clock.
struct CrossTraffic {
  std::uint64_t seed = 1;
  double period = 0.0;          ///< mean seconds between bursts; 0 = off
  std::size_t burst_bytes = 0;  ///< mean bytes per burst; 0 = off
  double jitter = 0.5;          ///< relative variation of period/size, [0, 1)

  [[nodiscard]] bool enabled() const noexcept {
    return period > 0.0 && burst_bytes > 0;
  }

  /// Throws std::invalid_argument on out-of-range values, including a
  /// mean utilization >= 1 of a link of @p link_bandwidth bytes/s
  /// (cross traffic that saturates the link forever would starve every
  /// application message — reject it up front instead of hanging).
  void validate(double link_bandwidth) const;
};

/// Per-directed-link override of the uniform fabric. Applies to every
/// message whose (source node -> destination node) pair matches a
/// LinkSpec, including individual hops of a multi-hop route.
struct LinkProfile {
  /// Wire timing/contention model of this link (replaces the cluster's
  /// `inter` profile). Asymmetric links are two LinkSpecs — one per
  /// direction — with different bandwidths.
  NetworkProfile net = ethernet_10g();

  /// Upper bound of the seeded extra one-way latency added per message
  /// (uniform in [0, jitter)); 0 disables jitter.
  double jitter = 0.0;

  /// Seed of the jitter stream (independent of faults/cross seeds).
  std::uint64_t seed = 1;

  /// When false (default), jittered arrivals are clamped to stay
  /// monotone per link: a FIFO link must not silently reorder its
  /// envelopes. Set true to let large jitter draws model genuine
  /// packet reordering (later send, earlier arrival).
  bool allow_reorder = false;

  /// Per-link fault plan. When enabled it *replaces* the cluster-wide
  /// plan for traffic on this link; a disabled plan inherits the
  /// cluster plan.
  FaultPlan faults;

  /// Deterministic background load on this link.
  CrossTraffic cross;

  /// Throws std::invalid_argument on out-of-range rates (negative
  /// latency/jitter, non-positive bandwidth, invalid fault
  /// probabilities, over-saturating cross traffic).
  void validate() const;
};

/// Binds a LinkProfile to one directed node pair. At most one spec per
/// (src_node, dst_node); src_node != dst_node (intra-node transport is
/// not overridable — it models the memory bus, not a wire).
struct LinkSpec {
  int src_node = 0;
  int dst_node = 1;
  LinkProfile profile;
};

/// Multi-hop relayed route: traffic from src_node to dst_node is
/// store-and-forwarded through the `via` nodes in order instead of
/// using the direct link. Routes are directional — configure both
/// directions for bidirectional relaying. Each hop uses that node
/// pair's LinkSpec override when one exists, else the cluster `inter`
/// profile, and (with the ARQ layer on) runs its own per-hop
/// retransmission dialogue.
struct RouteSpec {
  int src_node = 0;
  int dst_node = 1;
  std::vector<int> via;  ///< intermediate node ids, in forwarding order
};

/// What an intermediate hop does to a relayed payload. Installed on
/// the communicator by the layer that owns the trust decision
/// (secure::SecureComm maps its RelayTrust policy here); the default
/// is a transparent store-and-forward relay.
struct RelayPolicy {
  /// Per-relay processing surcharge, affine in the payload size
  /// (virtual seconds): fixed + bytes * per_byte. Hop-trusted secure
  /// relays pay a decrypt + re-encrypt here; end-to-end relays forward
  /// sealed bytes for free.
  double per_hop_fixed = 0.0;
  double per_hop_byte = 0.0;

  /// When true, every hop verifies payload integrity on arrival (the
  /// hop-trusted re-authentication), so corruption is caught and
  /// NACKed at the faulty hop instead of riding to the destination.
  bool hop_integrity = false;

  [[nodiscard]] double hop_delay(std::size_t bytes) const noexcept {
    return per_hop_fixed + static_cast<double>(bytes) * per_hop_byte;
  }
};

/// Metro-area WAN path: ~2 ms one-way, 1 Gb/s, socket-stack overheads.
[[nodiscard]] NetworkProfile wan_metro();

/// Continental WAN path: ~40 ms one-way, 200 Mb/s — the regime of the
/// light-weight wide-area communication-library study (arXiv
/// 1008.2767), where RTT dwarfs serialization.
[[nodiscard]] NetworkProfile wan_continental();

/// Convenience: a lossy WAN link with seeded loss and latency jitter.
[[nodiscard]] LinkProfile wan_link(NetworkProfile base, double p_drop,
                                   double jitter, std::uint64_t seed);

}  // namespace emc::net
