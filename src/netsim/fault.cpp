#include "emc/netsim/fault.hpp"

#include <limits>
#include <stdexcept>
#include <string>

namespace emc::net {

namespace {

/// SplitMix64 finalizer — the avalanche step that makes the decision
/// stream a pure function of (seed, link, message index).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t link_key(int src, int dst) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
}

/// Uniform double in [0, 1) from 53 high bits.
constexpr double unit_double(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void check_probability(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                " must be in [0, 1]");
  }
}

}  // namespace

void FaultPlan::validate() const {
  check_probability(p_corrupt, "p_corrupt");
  check_probability(p_truncate, "p_truncate");
  check_probability(p_duplicate, "p_duplicate");
  check_probability(p_drop, "p_drop");
  check_probability(p_delay, "p_delay");
  if (p_corrupt + p_truncate + p_duplicate + p_drop + p_delay > 1.0) {
    throw std::invalid_argument(
        "FaultPlan: fault probabilities must sum to at most 1");
  }
  if (p_delay > 0.0 && delay_seconds <= 0.0) {
    throw std::invalid_argument(
        "FaultPlan: delay_seconds must be positive when p_delay is set");
  }
  for (const FaultTrigger& t : triggers) {
    if (t.kind == FaultKind::kRankCrash) {
      throw std::invalid_argument(
          "FaultPlan: kRankCrash is not a wire fault; declare crashes "
          "through FaultPlan::crashes, not triggers");
    }
  }
}

void FaultPlan::validate_crashes(int num_ranks) const {
  for (const RankCrash& c : crashes) {
    if (c.rank < 0 || c.rank >= num_ranks) {
      throw std::invalid_argument(
          "FaultPlan: crash rank " + std::to_string(c.rank) +
          " out of range for a world of " + std::to_string(num_ranks) +
          " ranks");
    }
    if (!(c.at >= 0.0) || c.at == std::numeric_limits<double>::infinity()) {
      throw std::invalid_argument(
          "FaultPlan: crash time for rank " + std::to_string(c.rank) +
          " must be a finite non-negative virtual time, got " +
          std::to_string(c.at));
    }
    for (const RankCrash& other : crashes) {
      if (&other != &c && other.rank == c.rank) {
        throw std::invalid_argument("FaultPlan: rank " +
                                    std::to_string(c.rank) +
                                    " has more than one crash spec");
      }
    }
  }
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
}

FaultDecision FaultInjector::next(int src, int dst, std::size_t bytes,
                                  bool allow_loss) {
  const std::uint64_t n = link_count_[{src, dst}]++;
  ++stats_.messages_seen;

  FaultKind kind = FaultKind::kNone;
  std::size_t trigger_length = FaultTrigger::kAutoLength;
  double trigger_delay = FaultTrigger::kAutoDelay;
  for (const FaultTrigger& t : plan_.triggers) {
    if ((t.src < 0 || t.src == src) && (t.dst < 0 || t.dst == dst) &&
        t.nth == n) {
      kind = t.kind;
      trigger_length = t.new_length;
      trigger_delay = t.delay_seconds;
      break;
    }
  }

  const std::uint64_t draw = mix64(plan_.seed ^ mix64(link_key(src, dst) ^
                                                      mix64(n)));
  if (kind == FaultKind::kNone) {
    const double u = unit_double(draw);
    if (u < plan_.p_drop) {
      kind = FaultKind::kDrop;
    } else if (u < plan_.p_drop + plan_.p_truncate) {
      kind = FaultKind::kTruncate;
    } else if (u < plan_.p_drop + plan_.p_truncate + plan_.p_corrupt) {
      kind = FaultKind::kCorrupt;
    } else if (u <
               plan_.p_drop + plan_.p_truncate + plan_.p_corrupt +
                   plan_.p_duplicate) {
      kind = FaultKind::kDuplicate;
    } else if (u < plan_.p_drop + plan_.p_truncate + plan_.p_corrupt +
                       plan_.p_duplicate + plan_.p_delay) {
      kind = FaultKind::kDelay;
    }
  }

  if (!allow_loss &&
      (kind == FaultKind::kDrop || kind == FaultKind::kDuplicate)) {
    kind = FaultKind::kCorrupt;  // losing an RDMA pull would deadlock
  }
  if (bytes == 0 &&
      (kind == FaultKind::kCorrupt || kind == FaultKind::kTruncate)) {
    kind = FaultKind::kNone;  // nothing to damage
  }

  FaultDecision d;
  d.kind = kind;
  const std::uint64_t aux = mix64(draw);
  switch (kind) {
    case FaultKind::kCorrupt:
      d.position = static_cast<std::size_t>(aux % bytes);
      d.flip_mask = static_cast<std::uint8_t>(1u << ((aux >> 32) % 8));
      ++stats_.corrupted;
      break;
    case FaultKind::kTruncate:
      d.new_length = trigger_length != FaultTrigger::kAutoLength
                         ? (trigger_length < bytes ? trigger_length
                                                   : bytes - 1)
                         : static_cast<std::size_t>(aux % bytes);
      ++stats_.truncated;
      break;
    case FaultKind::kDuplicate:
      ++stats_.duplicated;
      break;
    case FaultKind::kDrop:
      ++stats_.dropped;
      break;
    case FaultKind::kDelay:
      // Seeded spike, uniform in (0, delay_seconds] so a delay never
      // degenerates to an on-time delivery.
      d.delay_seconds = trigger_delay >= 0.0
                            ? trigger_delay
                            : plan_.delay_seconds *
                                  (1.0 - unit_double(aux) * 0.999);
      ++stats_.delayed;
      break;
    case FaultKind::kNone:
    case FaultKind::kRankCrash:  // never drawn: crashes are scripted
      break;
  }
  return d;
}

}  // namespace emc::net
