// Structured correctness diagnostics emitted by the MiniMPI verifier.
//
// Every checker reports through one record type so tests, benches, and
// tools can match on the check kind instead of parsing prose. A
// Diagnostic names the ranks involved and the virtual time at which
// the misuse was observed; `format()` renders the canonical one-line
// form used in exception messages and logs.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace emc::verify {

/// Which checker produced a diagnostic.
enum class Check {
  kDeadlock,            ///< wait-for-graph cycle at global block
  kRequestLeak,         ///< isend/irecv request destroyed without wait
  kDoubleWait,          ///< wait on an already-completed request
  kSendBufferMutated,   ///< send buffer changed between isend and wait
  kOverlappingReceives, ///< two in-flight irecv buffers alias
  kCollectiveMismatch,  ///< ranks diverge on op kind / root / byte count
  kUnmatchedMessage,    ///< envelope or posted receive never consumed
  kPeerUnreachable,     ///< ARQ retry budget exhausted; link declared dead
  kRevokeIgnored,       ///< rank keeps posting on a revoked comm epoch
};

enum class Severity {
  kWarning,  ///< collected, never aborts the run
  kError,    ///< thrown as VerifyError when Config::fail_fast is set
};

[[nodiscard]] const char* to_string(Check check) noexcept;
[[nodiscard]] const char* to_string(Severity severity) noexcept;

/// One verifier finding.
struct Diagnostic {
  Check check = Check::kDeadlock;
  Severity severity = Severity::kError;
  /// Ranks involved; the first entry is the detecting / diverging rank
  /// (for kDeadlock: the cycle in wait-for order).
  std::vector<int> ranks;
  /// Virtual time at which the condition was observed.
  double time = 0.0;
  std::string message;

  /// "[error] collective-mismatch @ t=0.0012s ranks {0,2}: ..."
  [[nodiscard]] std::string format() const;
};

/// Thrown (fail-fast mode) when a checker records an error-severity
/// diagnostic; carries the full structured record.
struct VerifyError : std::runtime_error {
  explicit VerifyError(Diagnostic d)
      : std::runtime_error(d.format()), diagnostic(std::move(d)) {}
  Diagnostic diagnostic;
};

}  // namespace emc::verify
