// Opt-in runtime correctness analysis for the MiniMPI simulator —
// MUST-style verification made cheap by the cooperative scheduler.
//
// The engine serializes simulated processes, so at every block point
// the verifier sees a precise, race-free global state. Four checkers
// run against it:
//
//   * deadlock analysis     — when the engine finds every process
//     parked, a wait-for graph (recv source/tag, parked rendezvous
//     sender) is reconstructed and the cycle is named.
//   * request lifecycle     — leaked isend/irecv requests, double
//     wait, send-buffer mutation while in flight (checksum at post vs
//     completion), overlapping in-flight receive buffers.
//   * collective call order — op kind, root, and byte counts are
//     cross-checked across ranks per collective sequence number; the
//     first diverging rank is reported.
//   * unmatched messages    — eager envelopes and posted receives
//     still sitting in a mailbox at the end of a run.
//
// All hooks are invoked from the currently running simulated process
// (engine-serialized), except request-teardown hooks which may run
// concurrently during abort unwinding — recording is mutex-guarded.
// Hooks never advance virtual time, so enabling verification does not
// change the schedule: a verified run replays the unverified one.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "emc/sim/engine.hpp"
#include "emc/verify/diagnostic.hpp"

namespace emc::verify {

/// SplitMix64 — bijective mix used to derive schedule-perturbation
/// tie-break keys and per-run salts from a seed.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Verification knobs; embedded in mpi::WorldConfig as `verify`.
struct Config {
  /// Master switch. Off = no verifier is constructed, zero overhead.
  bool enabled = false;

  /// When true (default), the first error-severity diagnostic raised
  /// inside an MPI call throws VerifyError immediately, and errors
  /// that can only be recorded (request leaks, which surface in
  /// destructors) are thrown at the end of World::run. When false,
  /// everything is collected for inspection via diagnostics().
  bool fail_fast = true;

  // Per-checker switches (all on by default).
  bool check_deadlock = true;
  bool check_requests = true;
  bool check_collectives = true;
  bool check_unmatched = true;

  /// Non-zero: perturb the engine's same-virtual-time tie-break order
  /// with this salt (see Engine::set_tiebreak_salt). Deterministic per
  /// salt; used by mpi::run_perturbed to flush order-dependent
  /// matching bugs.
  std::uint64_t schedule_salt = 0;

  /// Hard cap on stored diagnostics (protects pathological runs).
  std::size_t max_diagnostics = 256;
};

/// Why a rank is blocked (wait-for-graph node payload).
enum class BlockKind {
  kRecv,      ///< parked in a receive wait
  kRndvSend,  ///< parked on a rendezvous handshake
};

struct BlockInfo {
  BlockKind kind = BlockKind::kRecv;
  int peer = -1;  ///< recv source / rendezvous destination; -1 = any source
  int tag = -1;
};

enum class ReqKind { kSend, kRecv };

/// How a tracked request left the in-flight set.
enum class ReqFinish {
  kCompleted,  ///< waited on; send checksums are verified here
  kLeaked,     ///< destroyed without wait on a healthy path
  kDropped,    ///< destroyed during exception unwinding (no diagnostic)
};

enum class CollKind {
  kBarrier,
  kBcast,
  kAllgather,
  kAlltoall,
  kAlltoallv,
  kGather,
  kScatter,
};

[[nodiscard]] const char* to_string(CollKind kind) noexcept;

class Verifier {
 public:
  /// Attaches to @p engine: installs the deadlock explainer and the
  /// schedule-perturbation salt. The verifier must outlive the last
  /// engine run it is attached to.
  Verifier(const Config& config, sim::Engine& engine);

  Verifier(const Verifier&) = delete;
  Verifier& operator=(const Verifier&) = delete;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Snapshot of everything recorded so far (thread-safe copy).
  [[nodiscard]] std::vector<Diagnostic> diagnostics() const;
  [[nodiscard]] std::size_t error_count() const;
  /// True when no error-severity diagnostic has been recorded.
  [[nodiscard]] bool clean() const { return error_count() == 0; }

  /// Clears per-run tracking state (collective records, in-flight
  /// requests, block markers). Recorded diagnostics are kept.
  void begin_run();

  /// End-of-run gate: in fail-fast mode, throws the first error-
  /// severity diagnostic that could not be thrown at its detection
  /// point (request leaks, unmatched-audit escalations).
  void finish_run();

  // --- Hooks (called by the MPI layer) --------------------------------

  /// Rank @p rank is about to park; pair with on_unblock. RAII via
  /// BlockScope below.
  void on_block(int rank, const BlockInfo& info);
  void on_unblock(int rank);

  /// Registers an in-flight request; returns its tracking id. Sends
  /// are checksummed (@p data stays owned by the caller and must be
  /// readable until the matching on_request_finish). Receives are
  /// checked for overlap against this rank's other in-flight receive
  /// buffers. May throw VerifyError (fail-fast, overlap).
  std::uint64_t on_request_start(int rank, ReqKind kind, int peer, int tag,
                                 const std::uint8_t* data, std::size_t len);

  /// Removes a request from the in-flight set. kCompleted re-checksums
  /// send buffers and may throw VerifyError (fail-fast, mutation);
  /// kLeaked records a leak diagnostic without throwing (destructor
  /// context); kDropped is silent. Unknown ids are ignored.
  void on_request_finish(std::uint64_t id, ReqFinish finish);

  /// wait() was called on an invalid request. @p consumed says the
  /// request was once live and already waited on (double wait, a
  /// diagnostic) rather than never initialized.
  void on_wait_invalid(int rank, bool consumed);

  /// Rank entered collective number @p seq on its communicator. For
  /// kBcast, @p bytes is the payload on the root and the buffer
  /// capacity elsewhere (non-root capacity may legally exceed the root
  /// payload); for alltoallv, byte counts are not cross-checked.
  void on_collective(int rank, std::uint64_t seq, CollKind kind, int root,
                     std::size_t bytes);

  /// Shutdown audit entries (called by World::run after the engine
  /// returns cleanly).
  void on_unmatched_envelope(int rank, int src, int tag, std::size_t bytes);
  void on_unmatched_posted(int rank, int want_src, int want_tag);

  /// The ARQ channel on @p rank exhausted its retry budget for the
  /// link to @p peer (graceful degradation). Recorded as a warning —
  /// an environment fault must not abort the surviving ranks.
  void on_peer_unreachable(int rank, int peer, std::uint64_t attempts);

  /// Rank @p rank attempted to post new work on communicator epoch
  /// @p epoch after it was revoked, for the @p count'th time. One
  /// failed post is how a rank *learns* about the revocation; repeated
  /// posts (count >= 2) mean the application swallows RevokedError and
  /// keeps going instead of entering recovery — recorded as a warning
  /// diagnostic the first time the repetition is seen.
  void on_post_after_revoke(int rank, std::uint64_t epoch,
                            std::uint64_t count);

  /// RAII wrapper for on_block/on_unblock; no-op when @p vrf is null.
  class BlockScope {
   public:
    BlockScope(Verifier* vrf, int rank, const BlockInfo& info)
        : vrf_(vrf), rank_(rank) {
      if (vrf_ != nullptr) vrf_->on_block(rank_, info);
    }
    ~BlockScope() {
      if (vrf_ != nullptr) vrf_->on_unblock(rank_);
    }
    BlockScope(const BlockScope&) = delete;
    BlockScope& operator=(const BlockScope&) = delete;

   private:
    Verifier* vrf_;
    int rank_;
  };

 private:
  struct ReqRecord {
    int rank = 0;
    ReqKind kind = ReqKind::kSend;
    int peer = -1;
    int tag = -1;
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
    std::uint64_t checksum = 0;
  };

  struct CollRecord {
    int first_rank = -1;
    CollKind kind = CollKind::kBarrier;
    int root = -1;
    std::size_t bytes = 0;     ///< reference byte count (bcast: root payload)
    bool root_seen = false;    ///< bcast: the root has recorded
    std::size_t min_cap = 0;   ///< bcast: smallest non-root capacity so far
    int min_cap_rank = -1;
    bool mismatched = false;   ///< stop cascading reports for this seq
  };

  /// Records @p d; when @p throwable and fail_fast and d is an error,
  /// throws VerifyError(d). Never throws when !throwable.
  void record(Diagnostic d, bool throwable);

  /// Builds the wait-for-graph report for the engine's Deadlock
  /// message and records the kDeadlock diagnostic.
  std::string explain_deadlock();

  Config config_;
  sim::Engine* engine_;

  mutable std::mutex mu_;  ///< guards diagnostics_ (teardown may race)
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
  std::size_t pending_throw_ = 0;  ///< errors recorded but not yet thrown

  // Per-run state; only touched by the running process (serialized).
  std::vector<std::optional<BlockInfo>> blocked_;
  std::unordered_map<std::uint64_t, ReqRecord> inflight_;
  std::unordered_map<std::uint64_t, CollRecord> collectives_;
  std::uint64_t next_req_id_ = 1;
};

}  // namespace emc::verify
