#include "emc/verify/verifier.hpp"

#include <algorithm>
#include <sstream>

namespace emc::verify {

namespace {

/// FNV-1a 64-bit — cheap, order-sensitive content fingerprint for the
/// send-buffer mutation check.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Internal collective tags start here (see Comm::next_coll_tag: 64
/// slots per collective invocation above the user tag range).
constexpr int kInternalTagBase = 1 << 28;

/// Human label for a tag: user tags print verbatim, internal
/// collective tags are decoded into invocation number and round.
std::string tag_label(int tag) {
  if (tag < 0) return "any";
  if (tag < kInternalTagBase) return std::to_string(tag);
  const int off = tag - kInternalTagBase;
  return "collective #" + std::to_string(off / 64) + " round " +
         std::to_string(off % 64);
}

std::string peer_label(int peer) {
  return peer < 0 ? "any source" : "rank " + std::to_string(peer);
}

std::string block_label(const BlockInfo& info) {
  if (info.kind == BlockKind::kRndvSend) {
    return "rendezvous send to rank " + std::to_string(info.peer) +
           " (tag " + tag_label(info.tag) + "), waiting for the receiver";
  }
  return "recv from " + peer_label(info.peer) + " (tag " +
         tag_label(info.tag) + ")";
}

}  // namespace

const char* to_string(Check check) noexcept {
  switch (check) {
    case Check::kDeadlock: return "deadlock";
    case Check::kRequestLeak: return "request-leak";
    case Check::kDoubleWait: return "double-wait";
    case Check::kSendBufferMutated: return "send-buffer-mutated";
    case Check::kOverlappingReceives: return "overlapping-receives";
    case Check::kCollectiveMismatch: return "collective-mismatch";
    case Check::kUnmatchedMessage: return "unmatched-message";
    case Check::kPeerUnreachable: return "peer-unreachable";
    case Check::kRevokeIgnored: return "revoke-ignored";
  }
  return "unknown";
}

const char* to_string(Severity severity) noexcept {
  return severity == Severity::kError ? "error" : "warning";
}

const char* to_string(CollKind kind) noexcept {
  switch (kind) {
    case CollKind::kBarrier: return "barrier";
    case CollKind::kBcast: return "bcast";
    case CollKind::kAllgather: return "allgather";
    case CollKind::kAlltoall: return "alltoall";
    case CollKind::kAlltoallv: return "alltoallv";
    case CollKind::kGather: return "gather";
    case CollKind::kScatter: return "scatter";
  }
  return "unknown";
}

std::string Diagnostic::format() const {
  std::ostringstream os;
  os << '[' << to_string(severity) << "] " << to_string(check)
     << " @ t=" << time << "s ranks {";
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    os << (i == 0 ? "" : ",") << ranks[i];
  }
  os << "}: " << message;
  return os.str();
}

// ---------------------------------------------------------------- Verifier

Verifier::Verifier(const Config& config, sim::Engine& engine)
    : config_(config), engine_(&engine) {
  engine_->set_tiebreak_salt(config_.schedule_salt);
  if (config_.check_deadlock) {
    engine_->set_deadlock_explainer([this] { return explain_deadlock(); });
  }
  blocked_.resize(static_cast<std::size_t>(engine_->size()));
}

std::vector<Diagnostic> Verifier::diagnostics() const {
  std::lock_guard<std::mutex> lk(mu_);
  return diagnostics_;
}

std::size_t Verifier::error_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return errors_;
}

void Verifier::begin_run() {
  std::lock_guard<std::mutex> lk(mu_);
  std::fill(blocked_.begin(), blocked_.end(), std::nullopt);
  inflight_.clear();
  collectives_.clear();
}

void Verifier::record(Diagnostic d, bool throwable) {
  bool do_throw = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (d.severity == Severity::kError) {
      ++errors_;
      do_throw = throwable && config_.fail_fast;
      if (!do_throw) ++pending_throw_;
    }
    if (diagnostics_.size() < config_.max_diagnostics) {
      diagnostics_.push_back(d);
    }
  }
  if (do_throw) throw VerifyError(std::move(d));
}

void Verifier::finish_run() {
  Diagnostic pending;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!config_.fail_fast || pending_throw_ == 0) return;
    pending_throw_ = 0;
    const auto it =
        std::find_if(diagnostics_.begin(), diagnostics_.end(),
                     [](const Diagnostic& d) {
                       return d.severity == Severity::kError;
                     });
    if (it == diagnostics_.end()) return;
    pending = *it;
  }
  throw VerifyError(std::move(pending));
}

// ------------------------------------------------------------ wait graph

void Verifier::on_block(int rank, const BlockInfo& info) {
  std::lock_guard<std::mutex> lk(mu_);
  blocked_.at(static_cast<std::size_t>(rank)) = info;
}

void Verifier::on_unblock(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  blocked_.at(static_cast<std::size_t>(rank)).reset();
}

std::string Verifier::explain_deadlock() {
  // Called by the engine (under its scheduler lock) when every live
  // process is parked, so the block table is frozen; snapshot it and
  // do the graph walk lock-free.
  std::vector<std::optional<BlockInfo>> blocked;
  {
    std::lock_guard<std::mutex> lk(mu_);
    blocked = blocked_;
  }
  const int n = static_cast<int>(blocked.size());

  // Follow each rank's unique wait-for successor (a wildcard receive
  // has none) until a rank repeats: that suffix is the cycle.
  std::vector<int> cycle;
  for (int start = 0; start < n && cycle.empty(); ++start) {
    if (!blocked[static_cast<std::size_t>(start)]) continue;
    std::vector<int> path;
    std::vector<char> on_path(static_cast<std::size_t>(n), 0);
    int cur = start;
    while (cur >= 0 && cur < n && blocked[static_cast<std::size_t>(cur)] &&
           !on_path[static_cast<std::size_t>(cur)]) {
      on_path[static_cast<std::size_t>(cur)] = 1;
      path.push_back(cur);
      cur = blocked[static_cast<std::size_t>(cur)]->peer;
    }
    if (cur >= 0 && cur < n && blocked[static_cast<std::size_t>(cur)] &&
        on_path[static_cast<std::size_t>(cur)]) {
      const auto first = std::find(path.begin(), path.end(), cur);
      cycle.assign(first, path.end());
    }
  }

  std::ostringstream os;
  if (!cycle.empty()) {
    os << "wait-for cycle:";
    for (const int r : cycle) os << " rank " << r << " ->";
    os << " rank " << cycle.front();
  } else {
    os << "no definite wait-for cycle (wildcard receives present); "
          "blocked ranks listed below";
  }
  std::vector<int> blocked_ranks;
  for (int r = 0; r < n; ++r) {
    if (const auto& info = blocked[static_cast<std::size_t>(r)]) {
      os << "\n  rank " << r << ": blocked in " << block_label(*info);
      blocked_ranks.push_back(r);
    }
  }

  Diagnostic d;
  d.check = Check::kDeadlock;
  d.severity = Severity::kError;
  d.ranks = cycle.empty() ? blocked_ranks : cycle;
  d.time = engine_->now();
  d.message = os.str();
  // Never throw here: the engine raises sim::Deadlock with this text.
  record(std::move(d), /*throwable=*/false);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (pending_throw_ > 0) --pending_throw_;  // Deadlock supersedes it
  }
  return os.str();
}

// ------------------------------------------------------ request lifecycle

std::uint64_t Verifier::on_request_start(int rank, ReqKind kind, int peer,
                                         int tag, const std::uint8_t* data,
                                         std::size_t len) {
  if (!config_.check_requests) return 0;
  ReqRecord rec;
  rec.rank = rank;
  rec.kind = kind;
  rec.peer = peer;
  rec.tag = tag;
  rec.data = data;
  rec.len = len;
  if (kind == ReqKind::kSend) rec.checksum = fnv1a(data, len);

  std::uint64_t id = 0;
  Diagnostic overlap;
  bool have_overlap = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    id = next_req_id_++;
    if (kind == ReqKind::kRecv && len > 0) {
      for (const auto& [other_id, other] : inflight_) {
        if (other.rank != rank || other.kind != ReqKind::kRecv ||
            other.len == 0) {
          continue;
        }
        const auto a = reinterpret_cast<std::uintptr_t>(data);
        const auto b = reinterpret_cast<std::uintptr_t>(other.data);
        if (a < b + other.len && b < a + len) {
          overlap.check = Check::kOverlappingReceives;
          overlap.severity = Severity::kError;
          overlap.ranks = {rank};
          overlap.time = engine_->now();
          overlap.message =
              "irecv(src=" + peer_label(peer) + ", tag " + tag_label(tag) +
              ", " + std::to_string(len) +
              "B) overlaps the in-flight irecv(src=" +
              peer_label(other.peer) + ", tag " + tag_label(other.tag) +
              ", " + std::to_string(other.len) +
              "B) posted by the same rank";
          have_overlap = true;
          break;
        }
      }
    }
    inflight_.emplace(id, rec);
  }
  if (have_overlap) record(std::move(overlap), /*throwable=*/true);
  return id;
}

void Verifier::on_request_finish(std::uint64_t id, ReqFinish finish) {
  if (id == 0) return;
  ReqRecord rec;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = inflight_.find(id);
    if (it == inflight_.end()) return;
    rec = it->second;
    inflight_.erase(it);
  }
  if (finish == ReqFinish::kDropped) return;

  const char* kind_name = rec.kind == ReqKind::kSend ? "isend" : "irecv";
  if (finish == ReqFinish::kLeaked) {
    Diagnostic d;
    d.check = Check::kRequestLeak;
    d.severity = Severity::kError;
    d.ranks = {rec.rank};
    d.time = engine_->now();
    d.message = std::string(kind_name) + "(" + peer_label(rec.peer) +
                ", tag " + tag_label(rec.tag) + ", " +
                std::to_string(rec.len) +
                "B) request destroyed without wait";
    record(std::move(d), /*throwable=*/false);  // destructor context
    return;
  }
  if (rec.kind == ReqKind::kSend && fnv1a(rec.data, rec.len) != rec.checksum) {
    Diagnostic d;
    d.check = Check::kSendBufferMutated;
    d.severity = Severity::kError;
    d.ranks = {rec.rank};
    d.time = engine_->now();
    d.message = "isend(" + peer_label(rec.peer) + ", tag " +
                tag_label(rec.tag) + ", " + std::to_string(rec.len) +
                "B) buffer was modified between isend and wait";
    record(std::move(d), /*throwable=*/true);
  }
}

void Verifier::on_wait_invalid(int rank, bool consumed) {
  if (!config_.check_requests || !consumed) return;
  Diagnostic d;
  d.check = Check::kDoubleWait;
  d.severity = Severity::kError;
  d.ranks = {rank};
  d.time = engine_->now();
  d.message = "wait called on a request that was already completed";
  record(std::move(d), /*throwable=*/true);
}

// ----------------------------------------------------------- collectives

void Verifier::on_collective(int rank, std::uint64_t seq, CollKind kind,
                             int root, std::size_t bytes) {
  if (!config_.check_collectives) return;

  Diagnostic d;
  bool mismatch = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto [it, fresh] = collectives_.try_emplace(seq);
    CollRecord& rec = it->second;
    if (fresh) {
      rec.first_rank = rank;
      rec.kind = kind;
      rec.root = root;
      if (kind == CollKind::kBcast && rank != root) {
        rec.min_cap = bytes;
        rec.min_cap_rank = rank;
      } else {
        rec.bytes = bytes;
        rec.root_seen = kind != CollKind::kBcast || rank == root;
        rec.min_cap = ~std::size_t{0};
      }
    } else if (!rec.mismatched) {
      const auto report = [&](const std::string& what) {
        d.check = Check::kCollectiveMismatch;
        d.severity = Severity::kError;
        d.time = engine_->now();
        d.message = "collective #" + std::to_string(seq) + ": " + what;
        rec.mismatched = true;
        mismatch = true;
      };
      if (kind != rec.kind) {
        d.ranks = {rank, rec.first_rank};
        report("rank " + std::to_string(rank) + " called " +
               to_string(kind) + " but rank " +
               std::to_string(rec.first_rank) + " called " +
               to_string(rec.kind));
      } else if (root != rec.root) {
        d.ranks = {rank, rec.first_rank};
        report("rank " + std::to_string(rank) + " called " +
               to_string(kind) + " with root " + std::to_string(root) +
               " but rank " + std::to_string(rec.first_rank) +
               " used root " + std::to_string(rec.root));
      } else if (kind == CollKind::kBcast) {
        // Non-root capacity may exceed the root payload, but never
        // undercut it; cross-check lazily once both sides are known.
        if (rank == root) {
          rec.bytes = bytes;
          rec.root_seen = true;
        } else if (bytes < rec.min_cap || rec.min_cap_rank < 0) {
          rec.min_cap = bytes;
          rec.min_cap_rank = rank;
        }
        if (rec.root_seen && rec.min_cap_rank >= 0 &&
            rec.min_cap < rec.bytes) {
          d.ranks = {rec.min_cap_rank, root};
          report("rank " + std::to_string(rec.min_cap_rank) +
                 " entered bcast with a " + std::to_string(rec.min_cap) +
                 "B buffer but root " + std::to_string(root) +
                 " broadcasts " + std::to_string(rec.bytes) + "B");
        }
      } else if (kind != CollKind::kBarrier &&
                 kind != CollKind::kAlltoallv && bytes != rec.bytes) {
        d.ranks = {rank, rec.first_rank};
        report("rank " + std::to_string(rank) + " called " +
               to_string(kind) + " with " + std::to_string(bytes) +
               "B blocks but rank " + std::to_string(rec.first_rank) +
               " used " + std::to_string(rec.bytes) + "B");
      }
    }
  }
  if (mismatch) record(std::move(d), /*throwable=*/true);
}

// -------------------------------------------------------- shutdown audit

void Verifier::on_unmatched_envelope(int rank, int src, int tag,
                                     std::size_t bytes) {
  if (!config_.check_unmatched) return;
  Diagnostic d;
  d.check = Check::kUnmatchedMessage;
  d.severity = Severity::kWarning;
  d.ranks = {rank, src};
  d.time = engine_->now();
  d.message = "message from rank " + std::to_string(src) + " (tag " +
              tag_label(tag) + ", " + std::to_string(bytes) +
              "B) was never received by rank " + std::to_string(rank);
  record(std::move(d), /*throwable=*/false);
}

void Verifier::on_peer_unreachable(int rank, int peer,
                                   std::uint64_t attempts) {
  // Environment degradation, not program misuse: recorded as a warning
  // so fail-fast mode never turns graceful degradation into an abort.
  Diagnostic d;
  d.check = Check::kPeerUnreachable;
  d.severity = Severity::kWarning;
  d.ranks = {rank, peer};
  d.time = engine_->now();
  d.message = "rank " + std::to_string(rank) + " declared the link to rank " +
              std::to_string(peer) + " dead after " +
              std::to_string(attempts) +
              " transmission attempts (retry budget exhausted)";
  record(std::move(d), /*throwable=*/false);
}

void Verifier::on_post_after_revoke(int rank, std::uint64_t epoch,
                                    std::uint64_t count) {
  // Only report when the repetition is first established; later posts
  // on the same epoch would just repeat the same finding.
  if (count != 2) return;
  Diagnostic d;
  d.check = Check::kRevokeIgnored;
  d.severity = Severity::kWarning;
  d.ranks = {rank};
  d.time = engine_->now();
  d.message = "rank " + std::to_string(rank) +
              " keeps posting operations on revoked communicator epoch " +
              std::to_string(epoch) +
              " instead of entering recovery (agree/shrink)";
  record(std::move(d), /*throwable=*/false);
}

void Verifier::on_unmatched_posted(int rank, int want_src, int want_tag) {
  if (!config_.check_unmatched) return;
  Diagnostic d;
  d.check = Check::kUnmatchedMessage;
  d.severity = Severity::kWarning;
  d.ranks = {rank};
  d.time = engine_->now();
  d.message = "posted receive (src=" + peer_label(want_src) + ", tag " +
              tag_label(want_tag) + ") on rank " + std::to_string(rank) +
              " was never matched";
  record(std::move(d), /*throwable=*/false);
}

}  // namespace emc::verify
