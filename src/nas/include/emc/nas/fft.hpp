// Iterative radix-2 complex FFT used by the mini-NAS FT kernel.
#pragma once

#include <complex>
#include <cstddef>
#include <span>

namespace emc::nas {

using Complex = std::complex<double>;

/// In-place radix-2 Cooley-Tukey FFT; data.size() must be a power of
/// two. @p inverse applies the conjugate transform with 1/N scaling.
void fft(std::span<Complex> data, bool inverse);

/// Strided in-place FFT over data[offset + k*stride], k in [0, n).
/// Gathers into a contiguous scratch buffer (length n) and scatters
/// back; @p scratch must have at least n elements.
void fft_strided(Complex* data, std::size_t n, std::size_t stride,
                 bool inverse, std::span<Complex> scratch);

/// True when @p n is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

}  // namespace emc::nas
