// Shared helpers for the mini NAS kernels: block partitioning, typed
// message views, and compute-time charging.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "emc/common/bytes.hpp"
#include "emc/mpi/communicator.hpp"
#include "emc/sim/engine.hpp"

namespace emc::nas::detail {

/// Contiguous block partition of [0, total) over `parts` owners; the
/// first `total % parts` owners get one extra element.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t count() const noexcept { return end - begin; }
};

[[nodiscard]] inline Range block_range(std::size_t total, int parts,
                                       int index) {
  const auto p = static_cast<std::size_t>(parts);
  const auto i = static_cast<std::size_t>(index);
  const std::size_t base = total / p;
  const std::size_t extra = total % p;
  const std::size_t begin = i * base + (i < extra ? i : extra);
  return Range{begin, begin + base + (i < extra ? 1 : 0)};
}

/// Raw-byte views over trivially copyable element spans.
template <typename T>
[[nodiscard]] BytesView as_bytes(std::span<const T> data) noexcept {
  return BytesView(reinterpret_cast<const std::uint8_t*>(data.data()),
                   data.size_bytes());
}

template <typename T>
[[nodiscard]] MutBytes as_writable_bytes(std::span<T> data) noexcept {
  return MutBytes(reinterpret_cast<std::uint8_t*>(data.data()),
                  data.size_bytes());
}

/// Sends/receives typed rows (convenience wrappers).
template <typename T>
void send_span(mpi::Communicator& comm, std::span<const T> data, int dst,
               int tag) {
  comm.send(as_bytes(data), dst, tag);
}

template <typename T>
void recv_span(mpi::Communicator& comm, std::span<T> data, int src, int tag) {
  comm.recv(as_writable_bytes(data), src, tag);
}

/// Charges @p work's measured host time to the virtual clock and
/// accumulates the *virtual* (scale-adjusted) seconds into
/// @p compute_seconds so comm-fraction statistics stay consistent
/// under CPU-speed calibration.
template <typename Fn>
void charged_compute(sim::Process& proc, double& compute_seconds, Fn&& work) {
  compute_seconds += proc.charge(std::forward<Fn>(work)) * proc.charge_scale();
}

}  // namespace emc::nas::detail
