// Mini NAS Parallel Benchmarks (communication-pattern-faithful,
// scaled-down re-implementations of CG, FT, MG, LU, BT, SP, IS).
//
// The paper evaluates encrypted MPI with the NAS suite, Class C, on
// 64 ranks / 8 nodes (Tables IV and VIII). These kernels reproduce the
// communication structure that drives those results:
//   CG  — 1-D row-partitioned sparse CG: neighbour halo exchange per
//         matvec + dot-product allreduces.
//   FT  — 3-D FFT with a slab decomposition: local FFTs + a global
//         alltoall transpose per step (the alltoall-heavy workload).
//   MG  — multigrid V-cycles: halo exchanges at every level, with the
//         surface/volume ratio growing on coarse grids.
//   LU  — SSOR with a pipelined wavefront: many small boundary
//         messages with tight dependencies (latency-sensitive).
//   BT  — ADI with block line solves: pipelined forward/backward
//         sweeps across the partition, heavier per-cell compute.
//   SP  — ADI with scalar penta-diagonal solves: same pipeline, less
//         compute per cell (higher comm/compute ratio than BT).
//   IS  — integer bucket sort: key histogram allreduce + alltoallv
//         redistribution + boundary check.
//
// All compute executes for real and is charged to the virtual clock at
// sweep granularity, so the comm/compute overlap behaviour — the thing
// that makes NAS overheads modest in the paper — is preserved.
// Every kernel self-verifies (residual/idempotence/sortedness).
#pragma once

#include <string>
#include <vector>

#include "emc/mpi/communicator.hpp"
#include "emc/sim/engine.hpp"

namespace emc::nas {

enum class Kernel { kCG, kFT, kMG, kLU, kBT, kSP, kIS };

/// Scaled-down problem classes (the paper runs real Class C; these
/// keep 64 simulated ranks runnable on a laptop-scale host).
enum class ProblemClass { kS, kW, kA };

struct KernelResult {
  std::string name;
  bool verified = false;
  double residual = 0.0;    ///< kernel-specific verification value
  double comm_fraction = 0.0;  ///< rough fraction of virtual time in comm
};

[[nodiscard]] const char* kernel_name(Kernel k);
[[nodiscard]] const char* class_name(ProblemClass c);
[[nodiscard]] std::vector<Kernel> all_kernels();
[[nodiscard]] Kernel kernel_by_name(const std::string& name);
[[nodiscard]] ProblemClass class_by_name(const std::string& name);

/// Runs one kernel on the calling rank. Collective: every rank of
/// @p comm must call with identical arguments. @p proc is the rank's
/// simulated process (used to charge compute time).
KernelResult run_kernel(Kernel k, mpi::Communicator& comm,
                        sim::Process& proc, ProblemClass cls);

// Individual kernels (same contract as run_kernel).
KernelResult run_cg(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls);
KernelResult run_ft(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls);
KernelResult run_mg(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls);
KernelResult run_lu(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls);
KernelResult run_bt(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls);
KernelResult run_sp(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls);
KernelResult run_is(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls);

}  // namespace emc::nas
