// Mini-NAS BT and SP: alternating-direction-implicit line solvers on a
// 2-D grid, rows partitioned across ranks. The x-direction Thomas
// solves are local; the y-direction solves run a distributed Thomas
// pipeline (forward-elimination coefficients stream down the ranks,
// back-substitution values stream back up) — the pipelined line-solve
// pattern of NAS BT/SP. BT carries three coupled components per cell
// (heavier compute), SP one (higher comm/compute ratio).
#include <cmath>

#include "emc/mpi/reduce.hpp"
#include "emc/nas/detail.hpp"
#include "emc/nas/nas.hpp"

namespace emc::nas {

namespace {

using detail::charged_compute;

struct AdiParams {
  std::size_t n;
  int steps;
};

AdiParams params_for(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {96, 5};
    case ProblemClass::kW: return {160, 6};
    case ProblemClass::kA: return {256, 8};
  }
  return {96, 5};
}

// Diagonal shift: b = 2 + sigma. Sigma > 1 makes the implicit
// operator's inverse a strict contraction (min eigenvalue of the
// tridiagonal is sigma), so the ADI field decays monotonically.
constexpr double kSigma = 1.2;
constexpr int kTagElim = 400;    // forward elimination, downstream
constexpr int kTagBack = 401;    // back substitution, upstream
constexpr int kTagHalo = 402;

/// Tridiagonal system constants for (-1, 2+sigma, -1).
constexpr double kA = -1.0;
constexpr double kB = 2.0 + kSigma;
constexpr double kC = -1.0;

struct AdiState {
  std::size_t n = 0;
  std::size_t rows = 0;
  int ncomp = 1;
  std::vector<double> u;  // u[comp][row][col], no halos

  [[nodiscard]] double* row(int comp, std::size_t i) {
    return u.data() + (static_cast<std::size_t>(comp) * rows + i) * n;
  }
  [[nodiscard]] const double* row(int comp, std::size_t i) const {
    return u.data() + (static_cast<std::size_t>(comp) * rows + i) * n;
  }
};

/// Local Thomas solve along x for every row and component, in place.
void solve_x(AdiState& s, std::vector<double>& cp, std::vector<double>& dp) {
  const std::size_t n = s.n;
  for (int comp = 0; comp < s.ncomp; ++comp) {
    for (std::size_t i = 0; i < s.rows; ++i) {
      double* d = s.row(comp, i);
      cp[0] = kC / kB;
      dp[0] = d[0] / kB;
      for (std::size_t j = 1; j < n; ++j) {
        const double denom = kB - kA * cp[j - 1];
        cp[j] = kC / denom;
        dp[j] = (d[j] - kA * dp[j - 1]) / denom;
      }
      d[n - 1] = dp[n - 1];
      for (std::size_t j = n - 1; j-- > 0;) d[j] = dp[j] - cp[j] * d[j + 1];
    }
  }
}

}  // namespace

static KernelResult run_adi(const char* name, int ncomp,
                            mpi::Communicator& comm, sim::Process& proc,
                            ProblemClass cls) {
  const AdiParams params = params_for(cls);
  const std::size_t n = params.n;
  const auto range = detail::block_range(n, comm.size(), comm.rank());
  const int r = comm.rank();
  const bool has_up = r > 0;
  const bool has_down = r + 1 < comm.size();

  AdiState s;
  s.n = n;
  s.rows = range.count();
  s.ncomp = ncomp;
  s.u.assign(static_cast<std::size_t>(ncomp) * s.rows * n, 0.0);

  const double start_time = proc.now();
  double compute_seconds = 0.0;

  charged_compute(proc, compute_seconds, [&] {
    for (int comp = 0; comp < ncomp; ++comp) {
      for (std::size_t i = 0; i < s.rows; ++i) {
        const double y =
            static_cast<double>(range.begin + i) / static_cast<double>(n);
        double* row = s.row(comp, i);
        for (std::size_t j = 0; j < n; ++j) {
          const double x = static_cast<double>(j) / static_cast<double>(n);
          row[j] = std::exp(-8.0 * ((x - 0.5) * (x - 0.5) +
                                    (y - 0.5) * (y - 0.5))) *
                   (1.0 + 0.1 * comp);
        }
      }
    }
  });

  const auto norm_of = [&] {
    double sum = 0.0;
    for (double v : s.u) sum += v * v;
    return std::sqrt(mpi::allreduce_sum(comm, sum));
  };
  const double initial_norm = norm_of();

  std::vector<double> cp(n);
  std::vector<double> dp(n);
  const std::size_t lanes = static_cast<std::size_t>(ncomp) * n;
  std::vector<double> col_cp(lanes * s.rows);
  std::vector<double> col_dp(lanes * s.rows);
  std::vector<double> boundary(2 * lanes);
  std::vector<double> xedge(lanes);
  std::vector<double> rhs_snapshot;  // RHS of the final y-solve

  for (int step = 0; step < params.steps; ++step) {
    const bool last_step = step + 1 == params.steps;
    charged_compute(proc, compute_seconds, [&] {
      solve_x(s, cp, dp);
      if (last_step) rhs_snapshot = s.u;
    });

    // --- y-direction distributed Thomas ------------------------------
    if (has_up) {
      detail::recv_span(comm, std::span<double>(boundary), r - 1, kTagElim);
    }
    charged_compute(proc, compute_seconds, [&] {
      for (int comp = 0; comp < ncomp; ++comp) {
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t lane = static_cast<std::size_t>(comp) * n + j;
          double prev_cp = has_up ? boundary[lane] : 0.0;
          double prev_dp = has_up ? boundary[lanes + lane] : 0.0;
          for (std::size_t i = 0; i < s.rows; ++i) {
            const bool first_global = !has_up && i == 0;
            const double a = first_global ? 0.0 : kA;
            const double denom = kB - a * prev_cp;
            const double cpi = kC / denom;
            const double dpi = (s.row(comp, i)[j] - a * prev_dp) / denom;
            col_cp[i * lanes + lane] = cpi;
            col_dp[i * lanes + lane] = dpi;
            prev_cp = cpi;
            prev_dp = dpi;
          }
          boundary[lane] = prev_cp;
          boundary[lanes + lane] = prev_dp;
        }
      }
    });
    if (has_down) {
      detail::send_span(comm, std::span<const double>(boundary), r + 1,
                        kTagElim);
      detail::recv_span(comm, std::span<double>(xedge), r + 1, kTagBack);
    }
    charged_compute(proc, compute_seconds, [&] {
      for (int comp = 0; comp < ncomp; ++comp) {
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t lane = static_cast<std::size_t>(comp) * n + j;
          double next_x = has_down ? xedge[lane] : 0.0;
          for (std::size_t i = s.rows; i-- > 0;) {
            const bool last_global = !has_down && i + 1 == s.rows;
            const double x = last_global
                                 ? col_dp[i * lanes + lane]
                                 : col_dp[i * lanes + lane] -
                                       col_cp[i * lanes + lane] * next_x;
            s.row(comp, i)[j] = x;
            next_x = x;
          }
          xedge[lane] = next_x;  // x of my first row, heading upstream
        }
      }
      // BT's block coupling: mix components after each full solve,
      // except on the last step so the verification below can check
      // the raw tridiagonal identity.
      if (ncomp == 3 && !last_step) {
        for (std::size_t i = 0; i < s.rows; ++i) {
          double* c0 = s.row(0, i);
          double* c1 = s.row(1, i);
          double* c2 = s.row(2, i);
          for (std::size_t j = 0; j < n; ++j) {
            const double a0 = c0[j];
            const double a1 = c1[j];
            const double a2 = c2[j];
            c0[j] = 0.90 * a0 + 0.05 * a1 + 0.05 * a2;
            c1[j] = 0.05 * a0 + 0.90 * a1 + 0.05 * a2;
            c2[j] = 0.05 * a0 + 0.05 * a1 + 0.90 * a2;
          }
        }
      }
    });
    if (has_up) {
      detail::send_span(comm, std::span<const double>(xedge), r - 1,
                        kTagBack);
    }
  }

  // Verification: the y-direction solve is a direct method, so the
  // solved field must satisfy the tridiagonal identity
  //   a*x[i-1][j] + b*x[i][j] + c*x[i+1][j] == rhs[i][j]
  // to round-off, including across partition cuts. Fetch the
  // neighbours' edge rows and evaluate the residual exactly.
  std::vector<double> up_last(lanes, 0.0);    // neighbour-above's last row
  std::vector<double> down_first(lanes, 0.0); // neighbour-below's first row
  {
    std::vector<double> first(lanes);
    std::vector<double> last(lanes);
    for (int comp = 0; comp < ncomp; ++comp) {
      for (std::size_t j = 0; j < n; ++j) {
        first[static_cast<std::size_t>(comp) * n + j] = s.row(comp, 0)[j];
        last[static_cast<std::size_t>(comp) * n + j] =
            s.row(comp, s.rows - 1)[j];
      }
    }
    std::vector<mpi::Request> requests;
    if (has_up) {
      requests.push_back(
          comm.irecv(detail::as_writable_bytes(std::span<double>(up_last)),
                     r - 1, kTagHalo));
      requests.push_back(comm.isend(
          detail::as_bytes(std::span<const double>(first)), r - 1, kTagHalo));
    }
    if (has_down) {
      requests.push_back(
          comm.irecv(detail::as_writable_bytes(std::span<double>(down_first)),
                     r + 1, kTagHalo));
      requests.push_back(comm.isend(
          detail::as_bytes(std::span<const double>(last)), r + 1, kTagHalo));
    }
    comm.waitall(requests);
  }

  double max_residual = 0.0;
  charged_compute(proc, compute_seconds, [&] {
    for (int comp = 0; comp < ncomp; ++comp) {
      for (std::size_t i = 0; i < s.rows; ++i) {
        const double* xc = s.row(comp, i);
        for (std::size_t j = 0; j < n; ++j) {
          const std::size_t lane = static_cast<std::size_t>(comp) * n + j;
          const bool first_global = !has_up && i == 0;
          const bool last_global = !has_down && i + 1 == s.rows;
          const double xm = i > 0 ? s.row(comp, i - 1)[j]
                                  : (has_up ? up_last[lane] : 0.0);
          const double xp = i + 1 < s.rows ? s.row(comp, i + 1)[j]
                                           : (has_down ? down_first[lane]
                                                       : 0.0);
          const double lhs = (first_global ? 0.0 : kA * xm) + kB * xc[j] +
                             (last_global ? 0.0 : kC * xp);
          const double rhs =
              rhs_snapshot[(static_cast<std::size_t>(comp) * s.rows + i) * n +
                           j];
          max_residual = std::max(max_residual, std::abs(lhs - rhs));
        }
      }
    }
  });
  max_residual = mpi::allreduce_max(comm, max_residual);

  const double final_norm = norm_of();
  const double elapsed = proc.now() - start_time;
  KernelResult result;
  result.name = name;
  result.residual = max_residual;
  // Direct solve must be exact to round-off, and the ADI operator's
  // spectral radius < 1 makes the field decay monotonically.
  result.verified = std::isfinite(final_norm) && final_norm > 0.0 &&
                    final_norm < initial_norm && max_residual < 1e-9;
  result.comm_fraction =
      elapsed > 0 ? std::max(0.0, 1.0 - compute_seconds / elapsed) : 0.0;
  return result;
}

KernelResult run_bt(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls) {
  return run_adi("BT", 3, comm, proc, cls);
}

KernelResult run_sp(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls) {
  return run_adi("SP", 1, comm, proc, cls);
}

}  // namespace emc::nas
