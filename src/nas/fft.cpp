#include "emc/nas/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace emc::nas {

void fft(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  assert(is_pow2(n));
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Complex& c : data) c *= scale;
  }
}

void fft_strided(Complex* data, std::size_t n, std::size_t stride,
                 bool inverse, std::span<Complex> scratch) {
  assert(scratch.size() >= n);
  for (std::size_t k = 0; k < n; ++k) scratch[k] = data[k * stride];
  fft(scratch.first(n), inverse);
  for (std::size_t k = 0; k < n; ++k) data[k * stride] = scratch[k];
}

}  // namespace emc::nas
