// Mini-NAS LU: SSOR sweeps with a pipelined wavefront. Rows are
// partitioned across ranks; each sweep walks column blocks so the
// update front streams down (and back up) the rank pipeline in many
// small boundary messages — the latency-bound traffic of NAS LU.
#include <cmath>

#include "emc/mpi/reduce.hpp"
#include "emc/nas/detail.hpp"
#include "emc/nas/nas.hpp"

namespace emc::nas {

namespace {

using detail::charged_compute;

struct LuParams {
  std::size_t n;
  std::size_t col_blocks;
  int sweeps;
};

LuParams params_for(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {96, 4, 6};
    case ProblemClass::kW: return {160, 8, 8};
    case ProblemClass::kA: return {256, 8, 10};
  }
  return {96, 4, 6};
}

// Shifted operator: SSOR contracts fast enough that a few sweeps
// verifiably converge (the pure Laplacian would need hundreds).
constexpr double kDiag = 4.6;

constexpr int kTagFwd = 200;  // forward wavefront, +block
constexpr int kTagBwd = 300;  // backward wavefront, +block
constexpr double kOmega = 1.2;

}  // namespace

KernelResult run_lu(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls) {
  const LuParams params = params_for(cls);
  const std::size_t n = params.n;
  const auto range = detail::block_range(n, comm.size(), comm.rank());
  const std::size_t rows = range.count();
  const int r = comm.rank();
  const bool has_up = r > 0;
  const bool has_down = r + 1 < comm.size();

  // u with halo rows above and below; f is local.
  std::vector<double> u((rows + 2) * n, 0.0);
  std::vector<double> f(rows * n, 1.0);
  const auto row = [&](std::size_t i) { return u.data() + (i + 1) * n; };

  const double start_time = proc.now();
  double compute_seconds = 0.0;

  const auto local_residual_sq = [&] {
    double sum = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
      const double* um = row(i) - n;
      const double* uc = row(i);
      const double* up = row(i) + n;
      for (std::size_t j = 0; j < n; ++j) {
        const double left = j > 0 ? uc[j - 1] : 0.0;
        const double right = j + 1 < n ? uc[j + 1] : 0.0;
        const double res =
            f[i * n + j] - (kDiag * uc[j] - um[j] - up[j] - left - right);
        sum += res * res;
      }
    }
    return sum;
  };

  // Refresh both halos (only needed for residual evaluation; the
  // sweeps carry boundary data inside the pipeline messages).
  const auto refresh_halos = [&] {
    std::vector<mpi::Request> requests;
    const auto view = [&](double* p) {
      return MutBytes(reinterpret_cast<std::uint8_t*>(p), n * sizeof(double));
    };
    if (has_up) {
      requests.push_back(comm.irecv(view(u.data()), r - 1, kTagFwd + 90));
      requests.push_back(
          comm.isend(BytesView(view(row(0))), r - 1, kTagBwd + 90));
    }
    if (has_down) {
      requests.push_back(
          comm.irecv(view(u.data() + (rows + 1) * n), r + 1, kTagBwd + 90));
      requests.push_back(
          comm.isend(BytesView(view(row(rows - 1))), r + 1, kTagFwd + 90));
    }
    comm.waitall(requests);
  };

  refresh_halos();
  double initial = 0.0;
  charged_compute(proc, compute_seconds,
                  [&] { initial = local_residual_sq(); });
  initial = std::sqrt(mpi::allreduce_sum(comm, initial));

  const std::size_t nb = params.col_blocks;
  const std::size_t bw = n / nb;  // block width (n chosen divisible)

  for (int sweep = 0; sweep < params.sweeps; ++sweep) {
    // Forward wavefront: top-left to bottom-right.
    for (std::size_t b = 0; b < nb; ++b) {
      const std::size_t j0 = b * bw;
      const std::size_t j1 = b + 1 == nb ? n : j0 + bw;
      if (has_up) {
        detail::recv_span(
            comm, std::span<double>(u.data() + j0, j1 - j0), r - 1,
            kTagFwd + static_cast<int>(b));
      }
      charged_compute(proc, compute_seconds, [&] {
        for (std::size_t i = 0; i < rows; ++i) {
          const double* um = row(i) - n;
          double* uc = row(i);
          const double* up = row(i) + n;
          for (std::size_t j = j0; j < j1; ++j) {
            const double left = j > 0 ? uc[j - 1] : 0.0;
            const double right = j + 1 < n ? uc[j + 1] : 0.0;
            const double gs = (f[i * n + j] + um[j] + up[j] + left + right) / kDiag;
            uc[j] += kOmega * (gs - uc[j]);
          }
        }
      });
      if (has_down) {
        detail::send_span(
            comm,
            std::span<const double>(row(rows - 1) + j0, j1 - j0), r + 1,
            kTagFwd + static_cast<int>(b));
      }
    }
    // Backward wavefront: bottom-right to top-left.
    for (std::size_t bi = nb; bi-- > 0;) {
      const std::size_t j0 = bi * bw;
      const std::size_t j1 = bi + 1 == nb ? n : j0 + bw;
      if (has_down) {
        detail::recv_span(
            comm,
            std::span<double>(u.data() + (rows + 1) * n + j0, j1 - j0),
            r + 1, kTagBwd + static_cast<int>(bi));
      }
      charged_compute(proc, compute_seconds, [&] {
        for (std::size_t ii = rows; ii-- > 0;) {
          const double* um = row(ii) - n;
          double* uc = row(ii);
          const double* up = row(ii) + n;
          for (std::size_t j = j1; j-- > j0;) {
            const double left = j > 0 ? uc[j - 1] : 0.0;
            const double right = j + 1 < n ? uc[j + 1] : 0.0;
            const double gs = (f[ii * n + j] + um[j] + up[j] + left + right) / kDiag;
            uc[j] += kOmega * (gs - uc[j]);
          }
        }
      });
      if (has_up) {
        detail::send_span(comm,
                          std::span<const double>(row(0) + j0, j1 - j0),
                          r - 1, kTagBwd + static_cast<int>(bi));
      }
    }
  }

  refresh_halos();
  double final_sq = 0.0;
  charged_compute(proc, compute_seconds,
                  [&] { final_sq = local_residual_sq(); });
  const double final_norm = std::sqrt(mpi::allreduce_sum(comm, final_sq));

  const double elapsed = proc.now() - start_time;
  KernelResult result;
  result.name = "LU";
  result.residual = final_norm / (initial > 0 ? initial : 1.0);
  result.verified = std::isfinite(final_norm) && result.residual < 0.05;
  result.comm_fraction =
      elapsed > 0 ? std::max(0.0, 1.0 - compute_seconds / elapsed) : 0.0;
  return result;
}

}  // namespace emc::nas
