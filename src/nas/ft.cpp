// Mini-NAS FT: 3-D FFT with slab decomposition. Each iteration does a
// full forward transform (local 2-D FFTs, then a global alltoall
// transpose, then 1-D FFTs along the redistributed axis), a spectral
// "evolve" multiply, and the inverse transform — the alltoall-dominated
// traffic that makes FT the paper's collective-heavy NAS member.
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "emc/common/rng.hpp"
#include "emc/mpi/reduce.hpp"
#include "emc/nas/detail.hpp"
#include "emc/nas/fft.hpp"
#include "emc/nas/nas.hpp"

namespace emc::nas {

namespace {

using detail::charged_compute;

std::size_t grid_for(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return 32;
    case ProblemClass::kW: return 64;
    case ProblemClass::kA: return 128;
  }
  return 32;
}

int evolve_steps(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return 3;
    case ProblemClass::kW: return 4;
    case ProblemClass::kA: return 5;
  }
  return 3;
}

}  // namespace

KernelResult run_ft(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls) {
  const int p = comm.size();
  std::size_t n = grid_for(cls);
  while (n % static_cast<std::size_t>(p) != 0 || n < static_cast<std::size_t>(p)) {
    n <<= 1;  // grow to the next power of two divisible by the ranks
  }
  if (!is_pow2(static_cast<std::size_t>(p))) {
    throw std::invalid_argument(
        "mini-NAS FT requires a power-of-two rank count");
  }
  const std::size_t zloc = n / static_cast<std::size_t>(p);
  const std::size_t xloc = zloc;
  const int rank = comm.rank();

  // u[z][y][x] (x fastest) for the z-slab phase.
  std::vector<Complex> u(zloc * n * n);
  // v[xl][y][z] (z fastest) for the x-slab phase.
  std::vector<Complex> v(xloc * n * n);
  std::vector<Complex> sendbuf(u.size());
  std::vector<Complex> recvbuf(u.size());
  std::vector<Complex> scratch(n);

  const double start_time = proc.now();
  double compute_seconds = 0.0;

  // Deterministic pseudo-random initial field.
  charged_compute(proc, compute_seconds, [&] {
    Xoshiro256 rng(0xF7 + static_cast<std::uint64_t>(rank));
    for (Complex& c : u) {
      c = Complex(rng.next_double() - 0.5, rng.next_double() - 0.5);
    }
  });

  double initial_energy = 0.0;
  charged_compute(proc, compute_seconds, [&] {
    for (const Complex& c : u) initial_energy += std::norm(c);
  });
  initial_energy = mpi::allreduce_sum(comm, initial_energy);

  const std::size_t block = zloc * n * xloc;  // complexes per peer

  const auto transpose_forward = [&] {
    charged_compute(proc, compute_seconds, [&] {
      // Pack: block q holds my z-planes restricted to q's x-range.
      for (int q = 0; q < p; ++q) {
        Complex* out = sendbuf.data() + static_cast<std::size_t>(q) * block;
        const std::size_t x0 = static_cast<std::size_t>(q) * xloc;
        for (std::size_t z = 0; z < zloc; ++z) {
          for (std::size_t y = 0; y < n; ++y) {
            const Complex* src = &u[(z * n + y) * n + x0];
            for (std::size_t x = 0; x < xloc; ++x) *out++ = src[x];
          }
        }
      }
    });
    comm.alltoall(detail::as_bytes(std::span<const Complex>(sendbuf)),
                  detail::as_writable_bytes(std::span<Complex>(recvbuf)),
                  block * sizeof(Complex));
    charged_compute(proc, compute_seconds, [&] {
      // Unpack: source s's block carries z-range [s*zloc, ...) of my
      // x-slab; lay out as v[xl][y][z].
      for (int s = 0; s < p; ++s) {
        const Complex* in = recvbuf.data() + static_cast<std::size_t>(s) * block;
        const std::size_t z0 = static_cast<std::size_t>(s) * zloc;
        for (std::size_t dz = 0; dz < zloc; ++dz) {
          for (std::size_t y = 0; y < n; ++y) {
            for (std::size_t xl = 0; xl < xloc; ++xl) {
              v[(xl * n + y) * n + (z0 + dz)] = *in++;
            }
          }
        }
      }
    });
  };

  const auto transpose_backward = [&] {
    charged_compute(proc, compute_seconds, [&] {
      for (int s = 0; s < p; ++s) {
        Complex* out = sendbuf.data() + static_cast<std::size_t>(s) * block;
        const std::size_t z0 = static_cast<std::size_t>(s) * zloc;
        for (std::size_t dz = 0; dz < zloc; ++dz) {
          for (std::size_t y = 0; y < n; ++y) {
            for (std::size_t xl = 0; xl < xloc; ++xl) {
              *out++ = v[(xl * n + y) * n + (z0 + dz)];
            }
          }
        }
      }
    });
    comm.alltoall(detail::as_bytes(std::span<const Complex>(sendbuf)),
                  detail::as_writable_bytes(std::span<Complex>(recvbuf)),
                  block * sizeof(Complex));
    charged_compute(proc, compute_seconds, [&] {
      for (int q = 0; q < p; ++q) {
        const Complex* in = recvbuf.data() + static_cast<std::size_t>(q) * block;
        const std::size_t x0 = static_cast<std::size_t>(q) * xloc;
        for (std::size_t z = 0; z < zloc; ++z) {
          for (std::size_t y = 0; y < n; ++y) {
            Complex* dst = &u[(z * n + y) * n + x0];
            for (std::size_t x = 0; x < xloc; ++x) dst[x] = *in++;
          }
        }
      }
    });
  };

  const auto fft_xy = [&](bool inverse) {
    charged_compute(proc, compute_seconds, [&] {
      for (std::size_t z = 0; z < zloc; ++z) {
        Complex* plane = &u[z * n * n];
        for (std::size_t y = 0; y < n; ++y) {
          fft(std::span<Complex>(plane + y * n, n), inverse);
        }
        for (std::size_t x = 0; x < n; ++x) {
          fft_strided(plane + x, n, n, inverse, scratch);
        }
      }
    });
  };

  const auto fft_z = [&](bool inverse) {
    charged_compute(proc, compute_seconds, [&] {
      for (std::size_t xl = 0; xl < xloc; ++xl) {
        for (std::size_t y = 0; y < n; ++y) {
          fft(std::span<Complex>(&v[(xl * n + y) * n], n), inverse);
        }
      }
    });
  };

  const auto evolve = [&](int step) {
    charged_compute(proc, compute_seconds, [&] {
      const double theta =
          1e-4 * static_cast<double>(step + 1) * 2.0 * std::numbers::pi;
      const std::size_t x0 = static_cast<std::size_t>(rank) * xloc;
      for (std::size_t xl = 0; xl < xloc; ++xl) {
        const auto kx = static_cast<double>(x0 + xl);
        for (std::size_t y = 0; y < n; ++y) {
          const auto ky = static_cast<double>(y);
          for (std::size_t z = 0; z < n; ++z) {
            const auto kz = static_cast<double>(z);
            const double phase = theta * (kx + ky + kz);
            v[(xl * n + y) * n + z] *=
                Complex(std::cos(phase), std::sin(phase));
          }
        }
      }
    });
  };

  for (int step = 0; step < evolve_steps(cls); ++step) {
    fft_xy(false);
    transpose_forward();
    fft_z(false);
    evolve(step);  // unit-modulus multiply: total energy is conserved
    fft_z(true);
    transpose_backward();
    fft_xy(true);
  }

  double final_energy = 0.0;
  charged_compute(proc, compute_seconds, [&] {
    for (const Complex& c : u) final_energy += std::norm(c);
  });
  final_energy = mpi::allreduce_sum(comm, final_energy);

  const double elapsed = proc.now() - start_time;
  KernelResult result;
  result.name = "FT";
  // Parseval: the unit-modulus evolve conserves energy through the
  // forward/inverse pipeline; drift measures FFT+transpose fidelity.
  result.residual = std::abs(final_energy - initial_energy) /
                    (initial_energy > 0 ? initial_energy : 1.0);
  result.verified = std::isfinite(final_energy) && result.residual < 1e-9;
  result.comm_fraction =
      elapsed > 0 ? std::max(0.0, 1.0 - compute_seconds / elapsed) : 0.0;
  return result;
}

}  // namespace emc::nas
