// Mini-NAS MG: V-cycle multigrid for the 2-D Poisson problem,
// 1-D row partition. Every smoothing step at every level exchanges
// halo rows, so coarse levels have the high surface-to-volume message
// mix that characterizes NAS MG.
#include <cmath>
#include <stdexcept>

#include "emc/mpi/reduce.hpp"
#include "emc/nas/detail.hpp"
#include "emc/nas/nas.hpp"

namespace emc::nas {

namespace {

using detail::charged_compute;

struct MgParams {
  std::size_t n;  // finest grid n x n
  int levels;     // grid levels (0 = finest)
  int cycles;
};

MgParams params_for(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {128, 3, 3};
    case ProblemClass::kW: return {256, 3, 4};
    case ProblemClass::kA: return {256, 3, 6};
  }
  return {128, 3, 3};
}

// Shifted operator -nabla^2 + sigma/h^2: the shift must scale by 4
// per coarsening level to represent the same continuum operator, and
// it keeps every level's smoother strongly contracting.
constexpr double kSigma = 0.6;

constexpr int kTagUp = 111;
constexpr int kTagDown = 112;

/// One grid level: local rows plus two halo rows.
struct Level {
  std::size_t n = 0;     // global columns
  std::size_t rows = 0;  // local rows
  double diag = 4.0 + kSigma;  // 4 + sigma * 4^level
  std::vector<double> u;  // solution, (rows+2)*n
  std::vector<double> f;  // right-hand side / restricted residual
  std::vector<double> scratch;

  void resize(std::size_t n_, std::size_t rows_) {
    n = n_;
    rows = rows_;
    u.assign((rows + 2) * n, 0.0);
    f.assign(rows * n, 0.0);
    scratch.assign(rows * n, 0.0);
  }
  [[nodiscard]] double* row(std::size_t i) { return u.data() + (i + 1) * n; }
};

void exchange_halo(mpi::Communicator& comm, Level& lvl, int tag_salt) {
  const int r = comm.rank();
  const auto bytes = lvl.n * sizeof(double);
  std::vector<mpi::Request> requests;
  const auto view = [bytes](double* p) {
    return MutBytes(reinterpret_cast<std::uint8_t*>(p), bytes);
  };
  if (r > 0) {
    requests.push_back(
        comm.irecv(view(lvl.u.data()), r - 1, kTagDown + tag_salt));
    requests.push_back(
        comm.isend(BytesView(view(lvl.row(0))), r - 1, kTagUp + tag_salt));
  }
  if (r + 1 < comm.size()) {
    requests.push_back(comm.irecv(view(lvl.u.data() + (lvl.rows + 1) * lvl.n),
                                  r + 1, kTagUp + tag_salt));
    requests.push_back(comm.isend(BytesView(view(lvl.row(lvl.rows - 1))),
                                  r + 1, kTagDown + tag_salt));
  }
  comm.waitall(requests);
}

/// Weighted-Jacobi smoothing sweeps (halo exchange before each sweep).
void smooth(mpi::Communicator& comm, sim::Process& proc,
            double& compute_seconds, Level& lvl, int sweeps, int tag_salt) {
  constexpr double kOmega = 0.8;
  for (int s = 0; s < sweeps; ++s) {
    exchange_halo(comm, lvl, tag_salt);
    charged_compute(proc, compute_seconds, [&] {
      const std::size_t n = lvl.n;
      for (std::size_t i = 0; i < lvl.rows; ++i) {
        const double* um = lvl.row(i) - n;
        double* uc = lvl.row(i);
        const double* up = lvl.row(i) + n;
        const double* fi = lvl.f.data() + i * n;
        double* out = lvl.scratch.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) {
          const double left = j > 0 ? uc[j - 1] : 0.0;
          const double right = j + 1 < n ? uc[j + 1] : 0.0;
          const double gs = (fi[j] + um[j] + up[j] + left + right) / lvl.diag;
          out[j] = (1.0 - kOmega) * uc[j] + kOmega * gs;
        }
      }
      for (std::size_t i = 0; i < lvl.rows; ++i) {
        std::copy(lvl.scratch.begin() + static_cast<std::ptrdiff_t>(i * n),
                  lvl.scratch.begin() + static_cast<std::ptrdiff_t>((i + 1) * n),
                  lvl.row(i));
      }
    });
  }
}

/// residual = f - A u into @p out (rows*n), after a halo exchange.
void residual(mpi::Communicator& comm, sim::Process& proc,
              double& compute_seconds, Level& lvl, std::vector<double>& out,
              int tag_salt) {
  exchange_halo(comm, lvl, tag_salt);
  charged_compute(proc, compute_seconds, [&] {
    const std::size_t n = lvl.n;
    out.assign(lvl.rows * n, 0.0);
    for (std::size_t i = 0; i < lvl.rows; ++i) {
      const double* um = lvl.row(i) - n;
      const double* uc = lvl.row(i);
      const double* up = lvl.row(i) + n;
      const double* fi = lvl.f.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double left = j > 0 ? uc[j - 1] : 0.0;
        const double right = j + 1 < n ? uc[j + 1] : 0.0;
        out[i * n + j] =
            fi[j] - (lvl.diag * uc[j] - um[j] - up[j] - left - right);
      }
    }
  });
}

}  // namespace

KernelResult run_mg(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls) {
  const MgParams params = params_for(cls);
  const auto p = static_cast<std::size_t>(comm.size());
  const std::size_t rows0 = params.n / p;
  if (params.n % p != 0 || rows0 < (1u << (params.levels - 1))) {
    throw std::invalid_argument(
        "mini-NAS MG needs n divisible by ranks with >= 2^(levels-1) "
        "rows per rank");
  }

  std::vector<Level> levels(static_cast<std::size_t>(params.levels));
  double level_shift = kSigma;
  for (int l = 0; l < params.levels; ++l) {
    levels[static_cast<std::size_t>(l)].resize(params.n >> l, rows0 >> l);
    levels[static_cast<std::size_t>(l)].diag = 4.0 + level_shift;
    level_shift *= 4.0;  // (2h)^2 / h^2
  }

  const double start_time = proc.now();
  double compute_seconds = 0.0;

  // RHS: a smooth bump, deterministic and rank-consistent.
  charged_compute(proc, compute_seconds, [&] {
    Level& fine = levels[0];
    const auto range =
        detail::block_range(params.n, comm.size(), comm.rank());
    for (std::size_t i = 0; i < fine.rows; ++i) {
      const double y =
          static_cast<double>(range.begin + i) / static_cast<double>(params.n);
      for (std::size_t j = 0; j < fine.n; ++j) {
        const double x = static_cast<double>(j) / static_cast<double>(params.n);
        fine.f[i * fine.n + j] = std::sin(3.1 * x) * std::cos(2.7 * y);
      }
    }
  });

  std::vector<double> res;
  const auto norm_of = [&](const std::vector<double>& v) {
    double sum = 0.0;
    for (double x : v) sum += x * x;
    return std::sqrt(mpi::allreduce_sum(comm, sum));
  };

  residual(comm, proc, compute_seconds, levels[0], res, 0);
  const double initial_norm = norm_of(res);

  for (int cycle = 0; cycle < params.cycles; ++cycle) {
    // Descend: smooth, compute residual, restrict to the coarse RHS.
    for (int l = 0; l + 1 < params.levels; ++l) {
      Level& fine = levels[static_cast<std::size_t>(l)];
      Level& coarse = levels[static_cast<std::size_t>(l + 1)];
      smooth(comm, proc, compute_seconds, fine, 2, l * 8);
      residual(comm, proc, compute_seconds, fine, res, l * 8);
      charged_compute(proc, compute_seconds, [&] {
        // Injection restriction (even rows/cols); partition alignment
        // is guaranteed by the rows-per-rank divisibility check.
        for (std::size_t i = 0; i < coarse.rows; ++i) {
          for (std::size_t j = 0; j < coarse.n; ++j) {
            coarse.f[i * coarse.n + j] = 4.0 * res[(2 * i) * fine.n + 2 * j];
          }
        }
        std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
      });
    }
    // Coarsest: heavy smoothing stands in for a direct solve.
    smooth(comm, proc, compute_seconds,
           levels[static_cast<std::size_t>(params.levels - 1)], 12,
           (params.levels - 1) * 8);
    // Ascend: prolongate the correction and post-smooth.
    for (int l = params.levels - 2; l >= 0; --l) {
      Level& fine = levels[static_cast<std::size_t>(l)];
      Level& coarse = levels[static_cast<std::size_t>(l + 1)];
      charged_compute(proc, compute_seconds, [&] {
        for (std::size_t i = 0; i < coarse.rows; ++i) {
          for (std::size_t j = 0; j < coarse.n; ++j) {
            const double c = coarse.row(i)[j];
            double* f0 = fine.row(2 * i);
            double* f1 = fine.row(2 * i + 1);
            f0[2 * j] += c;
            if (2 * j + 1 < fine.n) f0[2 * j + 1] += c;
            f1[2 * j] += c;
            if (2 * j + 1 < fine.n) f1[2 * j + 1] += c;
          }
        }
      });
      smooth(comm, proc, compute_seconds, fine, 2, l * 8);
    }
  }

  residual(comm, proc, compute_seconds, levels[0], res, 0);
  const double final_norm = norm_of(res);

  const double elapsed = proc.now() - start_time;
  KernelResult result;
  result.name = "MG";
  result.residual = final_norm / (initial_norm > 0 ? initial_norm : 1.0);
  result.verified = std::isfinite(final_norm) && result.residual < 0.05;
  result.comm_fraction =
      elapsed > 0 ? std::max(0.0, 1.0 - compute_seconds / elapsed) : 0.0;
  return result;
}

}  // namespace emc::nas
