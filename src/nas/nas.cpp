#include "emc/nas/nas.hpp"

#include <stdexcept>

namespace emc::nas {

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kCG: return "CG";
    case Kernel::kFT: return "FT";
    case Kernel::kMG: return "MG";
    case Kernel::kLU: return "LU";
    case Kernel::kBT: return "BT";
    case Kernel::kSP: return "SP";
    case Kernel::kIS: return "IS";
  }
  return "?";
}

const char* class_name(ProblemClass c) {
  switch (c) {
    case ProblemClass::kS: return "S";
    case ProblemClass::kW: return "W";
    case ProblemClass::kA: return "A";
  }
  return "?";
}

std::vector<Kernel> all_kernels() {
  // The paper's reporting order (Tables IV/VIII): CG FT MG LU BT SP IS.
  return {Kernel::kCG, Kernel::kFT, Kernel::kMG, Kernel::kLU,
          Kernel::kBT, Kernel::kSP, Kernel::kIS};
}

Kernel kernel_by_name(const std::string& name) {
  for (Kernel k : all_kernels()) {
    if (name == kernel_name(k)) return k;
  }
  throw std::invalid_argument("unknown NAS kernel: " + name);
}

ProblemClass class_by_name(const std::string& name) {
  if (name == "S" || name == "s") return ProblemClass::kS;
  if (name == "W" || name == "w") return ProblemClass::kW;
  if (name == "A" || name == "a") return ProblemClass::kA;
  throw std::invalid_argument("unknown problem class: " + name);
}

KernelResult run_kernel(Kernel k, mpi::Communicator& comm,
                        sim::Process& proc, ProblemClass cls) {
  switch (k) {
    case Kernel::kCG: return run_cg(comm, proc, cls);
    case Kernel::kFT: return run_ft(comm, proc, cls);
    case Kernel::kMG: return run_mg(comm, proc, cls);
    case Kernel::kLU: return run_lu(comm, proc, cls);
    case Kernel::kBT: return run_bt(comm, proc, cls);
    case Kernel::kSP: return run_sp(comm, proc, cls);
    case Kernel::kIS: return run_is(comm, proc, cls);
  }
  throw std::invalid_argument("unknown kernel");
}

}  // namespace emc::nas
