// Mini-NAS IS: parallel integer bucket sort. Each rank generates
// random keys, histograms them (allreduce), redistributes keys to
// their bucket owners with alltoallv, sorts locally, and verifies
// global sortedness with a neighbour boundary exchange — the same
// phases (and the alltoallv dominance) as NAS IS.
#include <algorithm>
#include <cstdint>

#include "emc/common/rng.hpp"
#include "emc/mpi/reduce.hpp"
#include "emc/nas/detail.hpp"
#include "emc/nas/nas.hpp"

namespace emc::nas {

namespace {

using detail::charged_compute;

struct IsParams {
  std::size_t keys_per_rank;
  int repetitions;
};

IsParams params_for(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {1u << 14, 4};
    case ProblemClass::kW: return {1u << 15, 5};
    case ProblemClass::kA: return {1u << 16, 6};
  }
  return {1u << 14, 4};
}

constexpr std::uint32_t kMaxKey = 1u << 20;
constexpr int kTagEdge = 500;

}  // namespace

KernelResult run_is(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls) {
  const IsParams params = params_for(cls);
  const int p = comm.size();
  const auto up = static_cast<std::size_t>(p);
  const int r = comm.rank();

  const double start_time = proc.now();
  double compute_seconds = 0.0;

  bool all_sorted = true;
  bool counts_conserved = true;
  std::size_t last_total = 0;

  for (int rep = 0; rep < params.repetitions; ++rep) {
    std::vector<std::uint32_t> keys(params.keys_per_rank);
    charged_compute(proc, compute_seconds, [&] {
      Xoshiro256 rng(0x15 + static_cast<std::uint64_t>(r) * 1009 +
                     static_cast<std::uint64_t>(rep));
      for (auto& k : keys) {
        k = static_cast<std::uint32_t>(rng.next_below(kMaxKey));
      }
    });

    // Bucket b owns keys in [b*width, (b+1)*width).
    const std::uint32_t width =
        (kMaxKey + static_cast<std::uint32_t>(p) - 1) /
        static_cast<std::uint32_t>(p);
    std::vector<std::size_t> sendcounts(up, 0);
    std::vector<std::size_t> senddispls(up, 0);
    std::vector<std::uint32_t> staged(keys.size());
    charged_compute(proc, compute_seconds, [&] {
      for (std::uint32_t k : keys) ++sendcounts[k / width];
      std::size_t offset = 0;
      for (std::size_t b = 0; b < up; ++b) {
        senddispls[b] = offset;
        offset += sendcounts[b];
      }
      std::vector<std::size_t> cursor = senddispls;
      for (std::uint32_t k : keys) staged[cursor[k / width]++] = k;
    });

    // Everyone learns everyone's bucket counts (NAS IS uses an
    // alltoall of counts; an allgather of the count vector is the
    // same traffic shape).
    std::vector<std::size_t> all_counts(up * up);
    comm.allgather(detail::as_bytes(std::span<const std::size_t>(sendcounts)),
                   detail::as_writable_bytes(std::span<std::size_t>(all_counts)));

    std::vector<std::size_t> recvcounts(up);
    std::vector<std::size_t> recvdispls(up);
    std::size_t recv_total = 0;
    charged_compute(proc, compute_seconds, [&] {
      for (std::size_t s = 0; s < up; ++s) {
        recvcounts[s] = all_counts[s * up + static_cast<std::size_t>(r)];
        recvdispls[s] = recv_total;
        recv_total += recvcounts[s];
      }
    });

    // Redistribute the keys (counts converted to bytes for alltoallv).
    std::vector<std::uint32_t> incoming(recv_total);
    std::vector<std::size_t> sc(up);
    std::vector<std::size_t> sd(up);
    std::vector<std::size_t> rc(up);
    std::vector<std::size_t> rd(up);
    for (std::size_t i = 0; i < up; ++i) {
      sc[i] = sendcounts[i] * sizeof(std::uint32_t);
      sd[i] = senddispls[i] * sizeof(std::uint32_t);
      rc[i] = recvcounts[i] * sizeof(std::uint32_t);
      rd[i] = recvdispls[i] * sizeof(std::uint32_t);
    }
    comm.alltoallv(detail::as_bytes(std::span<const std::uint32_t>(staged)),
                   sc, sd,
                   detail::as_writable_bytes(std::span<std::uint32_t>(incoming)),
                   rc, rd);

    charged_compute(proc, compute_seconds,
                    [&] { std::sort(incoming.begin(), incoming.end()); });

    // Verification 1: local sortedness and bucket-range containment.
    charged_compute(proc, compute_seconds, [&] {
      for (std::size_t i = 1; i < incoming.size(); ++i) {
        if (incoming[i - 1] > incoming[i]) all_sorted = false;
      }
      for (std::uint32_t k : incoming) {
        if (k / width != static_cast<std::uint32_t>(r)) all_sorted = false;
      }
    });

    // Verification 2: boundary order across ranks (my max <= next min).
    // Empty buckets forward the previous boundary unchanged.
    std::uint32_t boundary_max =
        incoming.empty() ? 0u : incoming.back();
    if (r > 0) {
      std::uint32_t prev_max = 0;
      detail::recv_span(comm, std::span<std::uint32_t>(&prev_max, 1), r - 1,
                        kTagEdge);
      const std::uint32_t my_min =
          incoming.empty() ? prev_max : incoming.front();
      if (prev_max > my_min) all_sorted = false;
      if (incoming.empty()) boundary_max = prev_max;
      boundary_max = std::max(boundary_max, prev_max);
    }
    if (r + 1 < p) {
      detail::send_span(comm,
                        std::span<const std::uint32_t>(&boundary_max, 1),
                        r + 1, kTagEdge);
    }

    // Verification 3: no key lost in redistribution.
    const auto total = mpi::allreduce_sum(
        comm, static_cast<std::uint64_t>(incoming.size()));
    counts_conserved =
        counts_conserved &&
        total == static_cast<std::uint64_t>(params.keys_per_rank) * up;
    last_total = total;
  }

  const double elapsed = proc.now() - start_time;
  KernelResult result;
  result.name = "IS";
  result.residual = static_cast<double>(last_total);
  result.verified = all_sorted && counts_conserved;
  result.comm_fraction =
      elapsed > 0 ? std::max(0.0, 1.0 - compute_seconds / elapsed) : 0.0;
  return result;
}

}  // namespace emc::nas
