// Mini-NAS CG: conjugate gradient on the 2-D five-point Laplacian,
// 1-D row-partitioned. Communication per iteration: one halo exchange
// (sendrecv with both neighbours) inside the matvec and two scalar
// allreduces for the dot products — the same traffic mix as NAS CG.
#include <cmath>

#include "emc/mpi/reduce.hpp"
#include "emc/nas/detail.hpp"
#include "emc/nas/nas.hpp"

namespace emc::nas {

namespace {

using detail::as_bytes;
using detail::as_writable_bytes;
using detail::block_range;
using detail::charged_compute;

struct CgParams {
  std::size_t n;      // grid is n x n
  int iterations;
};

CgParams params_for(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kS: return {96, 12};
    case ProblemClass::kW: return {160, 16};
    case ProblemClass::kA: return {256, 20};
  }
  return {96, 12};
}

// Diagonal shift keeps the operator well conditioned so a dozen
// CG iterations converge measurably at every class size.
constexpr double kDiag = 4.5;

constexpr int kTagUp = 101;    // to rank-1 (my top row travels up)
constexpr int kTagDown = 102;  // to rank+1

/// Local slab with one halo row above and below.
class Slab {
 public:
  Slab(std::size_t rows, std::size_t n) : rows_(rows), n_(n),
        data_((rows + 2) * n, 0.0) {}

  [[nodiscard]] double* row(std::size_t local_row) noexcept {
    return data_.data() + (local_row + 1) * n_;
  }
  [[nodiscard]] double* halo_top() noexcept { return data_.data(); }
  [[nodiscard]] double* halo_bottom() noexcept {
    return data_.data() + (rows_ + 1) * n_;
  }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t n() const noexcept { return n_; }

 private:
  std::size_t rows_;
  std::size_t n_;
  std::vector<double> data_;
};

/// Exchanges halo rows with both neighbours (boundary ranks keep the
/// zero Dirichlet halo).
void exchange_halo(mpi::Communicator& comm, Slab& x) {
  const int r = comm.rank();
  const int up = r - 1;
  const int down = r + 1;
  const std::size_t n = x.n();
  const auto row_bytes = [n](double* p) { return MutBytes(
      reinterpret_cast<std::uint8_t*>(p), n * sizeof(double)); };

  std::vector<mpi::Request> requests;
  if (up >= 0) {
    requests.push_back(comm.irecv(row_bytes(x.halo_top()), up, kTagDown));
    requests.push_back(comm.isend(BytesView(row_bytes(x.row(0))), up, kTagUp));
  }
  if (down < comm.size()) {
    requests.push_back(
        comm.irecv(row_bytes(x.halo_bottom()), down, kTagUp));
    requests.push_back(
        comm.isend(BytesView(row_bytes(x.row(x.rows() - 1))), down, kTagDown));
  }
  comm.waitall(requests);
}

/// y = A x for the 5-point Laplacian (after a halo exchange).
void matvec(Slab& x, Slab& y) {
  const std::size_t n = x.n();
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* xm = x.row(i) - n;  // halo-safe: row(-1) == halo_top
    const double* xc = x.row(i);
    const double* xp = x.row(i) + n;
    double* out = y.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double left = j > 0 ? xc[j - 1] : 0.0;
      const double right = j + 1 < n ? xc[j + 1] : 0.0;
      out[j] = kDiag * xc[j] - xm[j] - xp[j] - left - right;
    }
  }
}

double local_dot(Slab& a, Slab& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* pa = a.row(i);
    const double* pb = b.row(i);
    for (std::size_t j = 0; j < a.n(); ++j) sum += pa[j] * pb[j];
  }
  return sum;
}

}  // namespace

KernelResult run_cg(mpi::Communicator& comm, sim::Process& proc,
                    ProblemClass cls) {
  const CgParams params = params_for(cls);
  const auto range = block_range(params.n, comm.size(), comm.rank());
  const std::size_t rows = range.count();
  const std::size_t n = params.n;

  Slab x(rows, n);
  Slab r(rows, n);
  Slab p(rows, n);
  Slab q(rows, n);

  const double start_time = proc.now();
  double compute_seconds = 0.0;

  // b = 1 everywhere; x0 = 0 so r0 = b, p0 = r0.
  charged_compute(proc, compute_seconds, [&] {
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        r.row(i)[j] = 1.0;
        p.row(i)[j] = 1.0;
      }
    }
  });

  double rho = 0.0;
  charged_compute(proc, compute_seconds, [&] { rho = local_dot(r, r); });
  rho = mpi::allreduce_sum(comm, rho);
  const double initial_residual = std::sqrt(rho);

  for (int it = 0; it < params.iterations; ++it) {
    exchange_halo(comm, p);
    double pq = 0.0;
    charged_compute(proc, compute_seconds, [&] {
      matvec(p, q);
      pq = local_dot(p, q);
    });
    pq = mpi::allreduce_sum(comm, pq);
    const double alpha = rho / pq;

    double rho_new = 0.0;
    charged_compute(proc, compute_seconds, [&] {
      for (std::size_t i = 0; i < rows; ++i) {
        double* xi = x.row(i);
        double* ri = r.row(i);
        const double* pi = p.row(i);
        const double* qi = q.row(i);
        for (std::size_t j = 0; j < n; ++j) {
          xi[j] += alpha * pi[j];
          ri[j] -= alpha * qi[j];
        }
      }
      rho_new = local_dot(r, r);
    });
    rho_new = mpi::allreduce_sum(comm, rho_new);
    const double beta = rho_new / rho;
    rho = rho_new;

    charged_compute(proc, compute_seconds, [&] {
      for (std::size_t i = 0; i < rows; ++i) {
        double* pi = p.row(i);
        const double* ri = r.row(i);
        for (std::size_t j = 0; j < n; ++j) pi[j] = ri[j] + beta * pi[j];
      }
    });
  }

  const double final_residual = std::sqrt(rho);

  // Invariant check: the maintained residual must equal b - A x to
  // round-off. This validates the matvec *and* the halo exchanges it
  // rode on, independent of convergence speed.
  exchange_halo(comm, x);
  double drift_sq = 0.0;
  charged_compute(proc, compute_seconds, [&] {
    matvec(x, q);  // q = A x
    for (std::size_t i = 0; i < rows; ++i) {
      const double* qi = q.row(i);
      const double* ri = r.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double truth = 1.0 - qi[j];  // b - A x
        drift_sq += (truth - ri[j]) * (truth - ri[j]);
      }
    }
  });
  const double drift =
      std::sqrt(mpi::allreduce_sum(comm, drift_sq)) / initial_residual;

  const double elapsed = proc.now() - start_time;

  KernelResult result;
  result.name = "CG";
  result.residual = final_residual / initial_residual;
  result.verified = std::isfinite(final_residual) &&
                    result.residual < 0.05 && drift < 1e-10;
  result.comm_fraction =
      elapsed > 0 ? std::max(0.0, 1.0 - compute_seconds / elapsed) : 0.0;
  return result;
}

}  // namespace emc::nas
