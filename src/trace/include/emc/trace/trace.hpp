// Virtual-time tracing: opt-in, per-rank span recording for the
// overhead-attribution story the paper tells in §IV–V.
//
// Every virtual-time charge in the simulator has a cause — crypto
// cycles, wire serialization, NIC queueing, waiting for a peer, ARQ
// retransmission dialogues, buffer copies, application compute. A
// TraceRecorder attached via mpi::WorldConfig::trace collects those
// causes as scoped spans stamped with the sim virtual clock:
//
//   * recording is observation only — it never advances virtual time,
//     so a traced run replays the untraced schedule bit-exactly;
//   * events land in per-rank ring buffers preallocated at
//     construction — the hot path never allocates, and when no
//     recorder is attached every instrumentation site is a single
//     null-pointer check;
//   * per-category running totals are accumulated independently of
//     the ring, so the attribution summary stays exact even when a
//     long run wraps the ring and drops old events;
//   * spans are deterministic functions of the simulation: a world
//     whose virtual time is fully analytic (no wall-clock charges, or
//     crypto under secure::CryptoCostModel) produces byte-identical
//     exports for the same seed.
//
// Exporters (Chrome trace_event JSON for Perfetto, attribution
// summary tables) live in emc/trace/export.hpp; the categories and
// the rules for who records what are documented in docs/TRACING.md
// and docs/ARCHITECTURE.md.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace emc::trace {

/// Where a slice of one rank's virtual time went. The causes mirror
/// the decomposition of the paper and its successors (crypto vs wire
/// vs concurrency): see docs/TRACING.md for the exact recording rules
/// of every category.
///
/// All categories except kCryptoHelper describe the rank's own
/// timeline and are disjoint; kCryptoHelper spans run on the rank's
/// simulated helper crypto cores (docs/PIPELINE.md) CONCURRENTLY with
/// the main timeline, so they are excluded from the idle residual and
/// may overlap every other category.
enum class Category : std::uint8_t {
  kCryptoEncrypt = 0,  ///< secure_mpi seal (AES-GCM encrypt + tag)
  kCryptoDecrypt,      ///< secure_mpi open (decrypt + tag verify)
  kWire,               ///< parked while bytes serialize/fly on a link
  kNicQueue,           ///< queued behind a busy NIC (egress drain too)
  kSyncWait,           ///< blocked until a matching peer operation
  kArqRetransmit,      ///< reliability-layer backoff + retransmission
  kCopy,               ///< CPU message handling: overheads + copies
  kCompute,            ///< application compute (Process::charge)
  kRelayForward,       ///< store-and-forward through route relay hops
  kCryptoHelper,       ///< per-chunk seal/open on a helper crypto core
                       ///< (concurrent lane; `peer` holds the core id)
  kPipelineStall,      ///< main timeline blocked on helper-core crypto
                       ///< (the unhidden tail of a pipelined message)
  kKeyMgmt,            ///< key lifecycle: handshake asymmetric crypto,
                       ///< ratchet steps, group rekey fan-out
};

inline constexpr std::size_t kNumCategories = 12;

/// Stable lower_snake_case name ("crypto_encrypt", ...); used by both
/// exporters, so it is part of the trace file format.
[[nodiscard]] const char* category_name(Category c) noexcept;

/// Recorder sizing knobs.
struct Config {
  /// Ring capacity in events per rank, rounded up to a power of two.
  /// When a rank records more, the oldest events are overwritten
  /// (counted in dropped()); summary totals are unaffected.
  std::size_t ring_capacity = std::size_t{1} << 14;
};

/// One completed span on one rank's virtual timeline.
struct Event {
  double begin = 0.0;        ///< virtual seconds
  double end = 0.0;          ///< virtual seconds, >= begin
  std::uint64_t bytes = 0;   ///< payload bytes involved (0 = n/a)
  std::int32_t peer = -1;    ///< other rank involved (-1 = none)
  Category category = Category::kCompute;
};

/// Per-rank virtual-time span recorder. All mutation happens on the
/// currently running simulated process (the engine serializes rank
/// threads), so no locking is needed — the same invariant the
/// mailboxes rely on. Construct with the world's rank count and
/// attach via mpi::WorldConfig::trace.
class TraceRecorder {
 public:
  TraceRecorder(const Config& config, int num_ranks);

  [[nodiscard]] int num_ranks() const noexcept {
    return static_cast<int>(ranks_.size());
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Records a completed span. Never allocates; clamps end to begin
  /// when a caller hands a reversed interval (defensive — callers
  /// always pass now() pairs).
  void record(int rank, Category category, double begin, double end,
              int peer = -1, std::uint64_t bytes = 0) noexcept;

  /// One-shot category override for the next engine charge observed
  /// on @p rank (see mpi::World: Process::charge spans default to
  /// kCompute; SecureComm retags its seal/open charges).
  void set_charge_category(int rank, Category category) noexcept {
    ranks_[checked(rank)].next_charge = category;
  }
  [[nodiscard]] Category take_charge_category(int rank) noexcept {
    Rank& r = ranks_[checked(rank)];
    const Category c = r.next_charge;
    r.next_charge = Category::kCompute;
    return c;
  }

  /// Marks the start of the traced run window (virtual time). Called
  /// by World::run; re-running a world moves the window, so the
  /// summary always describes the most recent run.
  void begin_run(double at) noexcept;

  /// Records when @p rank's body returned; the rank's attribution
  /// total is rank_end - run_begin.
  void note_rank_done(int rank, double at) noexcept {
    ranks_[checked(rank)].end_time = at;
  }

  [[nodiscard]] double run_begin() const noexcept { return run_begin_; }
  [[nodiscard]] double rank_end(int rank) const {
    return ranks_[checked(rank)].end_time;
  }

  /// Events still held for @p rank, oldest first (the ring unwound).
  [[nodiscard]] std::vector<Event> events(int rank) const;

  /// Events overwritten after the ring filled.
  [[nodiscard]] std::uint64_t dropped(int rank) const {
    const Rank& r = ranks_[checked(rank)];
    const std::uint64_t cap = r.ring.size();
    return r.count > cap ? r.count - cap : 0;
  }

  /// Total spans ever recorded for @p rank.
  [[nodiscard]] std::uint64_t recorded(int rank) const {
    return ranks_[checked(rank)].count;
  }

  /// Exact per-category virtual-second totals for the current run
  /// window (independent of ring capacity).
  [[nodiscard]] const std::array<double, kNumCategories>& category_seconds(
      int rank) const {
    return ranks_[checked(rank)].seconds;
  }

 private:
  struct Rank {
    std::vector<Event> ring;   ///< power-of-two capacity, preallocated
    std::uint64_t count = 0;   ///< spans ever recorded
    std::array<double, kNumCategories> seconds{};
    double end_time = 0.0;
    Category next_charge = Category::kCompute;
  };

  [[nodiscard]] std::size_t checked(int rank) const;

  Config config_;
  std::size_t mask_;  ///< ring capacity - 1
  double run_begin_ = 0.0;
  std::vector<Rank> ranks_;
};

}  // namespace emc::trace
