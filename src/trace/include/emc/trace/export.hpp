// Trace exporters: Chrome trace_event JSON (loadable in Perfetto /
// chrome://tracing) and the per-rank overhead-attribution summary
// that reproduces the paper's crypto-vs-wire-vs-wait decomposition.
//
// Both exporters format numbers deterministically (integer
// nanoseconds for timestamps, fixed 9-digit seconds for the summary),
// so two runs with identical virtual timelines produce byte-identical
// files — the property the determinism tests and the traced bench
// acceptance check assert.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "emc/trace/trace.hpp"

namespace emc::trace {

/// Streams one or more traced worlds into a single Chrome trace_event
/// JSON array: one "process" (pid) per world, one "thread" (tid) per
/// rank, complete ("X") events carrying category/bytes/peer args.
/// Load the file in https://ui.perfetto.dev or chrome://tracing.
class ChromeTraceWriter {
 public:
  /// Starts the JSON array on @p os (kept by reference; must outlive
  /// the writer and finish() must be called before it is read).
  explicit ChromeTraceWriter(std::ostream& os);

  /// Appends every retained event of @p rec as pid=@p pid, plus
  /// process/thread metadata naming it @p process_name.
  void add_world(const TraceRecorder& rec, const std::string& process_name,
                 int pid);

  /// Closes the JSON array. Idempotent.
  void finish();

 private:
  std::ostream* os_;
  bool first_ = true;
  bool finished_ = false;
};

/// Per-rank decomposition of a traced run: where every virtual second
/// went. `idle` is the residual total - sum(timeline seconds); with
/// complete instrumentation it is zero (asserted by tests for the p2p
/// paths) and it guarantees the rows always sum to the rank total
/// exactly. crypto_helper is NOT part of the residual: helper-core
/// spans run concurrently with the main timeline (docs/PIPELINE.md),
/// so their seconds overlap other categories by design.
struct SummaryRow {
  int rank = 0;
  double total = 0.0;  ///< rank end - run begin (virtual seconds)
  std::array<double, kNumCategories> seconds{};
  double idle = 0.0;

  /// Grouped percentages of total (0 when total is 0): the paper's
  /// three-way split. crypto = encrypt+decrypt+pipeline_stall (the
  /// crypto left on the critical path; hidden helper time is
  /// excluded); wire = wire + nic_queue + copy + relay_forward (bytes
  /// moving); wait = sync_wait + arq_retransmit (concurrency +
  /// recovery).
  [[nodiscard]] double crypto_pct() const noexcept;
  [[nodiscard]] double wire_pct() const noexcept;
  [[nodiscard]] double wait_pct() const noexcept;

  /// Helper-core crypto seconds that were hidden behind the main
  /// timeline: crypto_helper - pipeline_stall, clamped at 0. This is
  /// the CryptMPI overlap win — crypto work done without the rank
  /// paying for it (docs/PIPELINE.md).
  [[nodiscard]] double pipeline_overlap_s() const noexcept;
};

/// Attribution summary over all ranks of one traced run window.
struct Summary {
  std::vector<SummaryRow> rows;

  [[nodiscard]] static Summary from(const TraceRecorder& rec);

  /// Whole-run totals (sum over ranks).
  [[nodiscard]] SummaryRow aggregate() const;
};

/// Writes @p summary as CSV rows labelled @p config (one row per rank
/// plus an "all"-ranks aggregate), with a header when @p header is
/// true. Columns: config,rank,total_s,<every category>_s,idle_s,
/// pipeline_overlap_s,crypto_pct,wire_pct,wait_pct. Seconds use fixed
/// 9-digit formatting (deterministic); percentages 3 digits.
void write_attribution_csv(std::ostream& os, const Summary& summary,
                           const std::string& config, bool header);

/// Renders the summary as a human-readable table (for bench stdout).
void print_summary(std::ostream& os, const Summary& summary,
                   const std::string& title);

}  // namespace emc::trace
