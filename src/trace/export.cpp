#include "emc/trace/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace emc::trace {

namespace {

/// Virtual seconds -> trace_event microseconds with fixed 3-digit
/// fraction, computed through integer nanoseconds so the text is a
/// deterministic function of the double (no locale, no shortest-form
/// ambiguity).
std::string us_fixed(double seconds) {
  const auto ns = static_cast<long long>(std::llround(seconds * 1e9));
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld", ns / 1000,
                ns < 0 ? -(ns % 1000) : ns % 1000);
  return buf;
}

std::string sec_fixed(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9f", seconds);
  return buf;
}

std::string pct_fixed(double pct) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", pct);
  return buf;
}

/// Minimal JSON string escaping (labels are ASCII identifiers, but
/// stay safe on quotes/backslashes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

}  // namespace

// -------------------------------------------------------- Chrome JSON

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(&os) {
  *os_ << "[";
}

void ChromeTraceWriter::add_world(const TraceRecorder& rec,
                                  const std::string& process_name, int pid) {
  auto emit = [&](const std::string& line) {
    if (!first_) *os_ << ",";
    first_ = false;
    *os_ << "\n" << line;
  };
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
       std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
       json_escape(process_name) + "\"}}");
  const int num_ranks = rec.num_ranks();
  for (int rank = 0; rank < num_ranks; ++rank) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":" + std::to_string(rank) +
         ",\"args\":{\"name\":\"rank " + std::to_string(rank) + "\"}}");
    const std::vector<Event> events = rec.events(rank);
    // Helper-core seal/open spans overlap the rank's own timeline, so
    // they render on per-(rank, core) lanes: tid = num_ranks*(1+core)
    // + rank never collides with the main lanes [0, num_ranks). Name
    // each lane the first time it appears (event order is
    // deterministic, so the metadata order is too).
    std::vector<bool> lane_named;
    auto helper_tid = [&](int core) {
      return num_ranks * (1 + core) + rank;
    };
    for (const Event& e : events) {
      if (e.category != Category::kCryptoHelper || e.peer < 0) continue;
      const auto core = static_cast<std::size_t>(e.peer);
      if (core >= lane_named.size()) lane_named.resize(core + 1, false);
      if (lane_named[core]) continue;
      lane_named[core] = true;
      emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) +
           ",\"tid\":" + std::to_string(helper_tid(e.peer)) +
           ",\"args\":{\"name\":\"rank " + std::to_string(rank) +
           " crypto core " + std::to_string(e.peer) + "\"}}");
    }
    for (const Event& e : events) {
      const char* cat = category_name(e.category);
      const int tid = (e.category == Category::kCryptoHelper && e.peer >= 0)
                          ? helper_tid(e.peer)
                          : rank;
      std::string line = "{\"name\":\"";
      line += cat;
      line += "\",\"cat\":\"";
      line += cat;
      line += "\",\"ph\":\"X\",\"ts\":" + us_fixed(e.begin) +
              ",\"dur\":" + us_fixed(e.end - e.begin) +
              ",\"pid\":" + std::to_string(pid) +
              ",\"tid\":" + std::to_string(tid) + ",\"args\":{\"bytes\":" +
              std::to_string(e.bytes) +
              ",\"peer\":" + std::to_string(e.peer) + "}}";
      emit(line);
    }
  }
}

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  *os_ << "\n]\n";
}

// ------------------------------------------------------------ Summary

double SummaryRow::crypto_pct() const noexcept {
  if (total <= 0.0) return 0.0;
  return 100.0 *
         (seconds[static_cast<std::size_t>(Category::kCryptoEncrypt)] +
          seconds[static_cast<std::size_t>(Category::kCryptoDecrypt)] +
          seconds[static_cast<std::size_t>(Category::kPipelineStall)] +
          seconds[static_cast<std::size_t>(Category::kKeyMgmt)]) /
         total;
}

double SummaryRow::wire_pct() const noexcept {
  if (total <= 0.0) return 0.0;
  return 100.0 *
         (seconds[static_cast<std::size_t>(Category::kWire)] +
          seconds[static_cast<std::size_t>(Category::kNicQueue)] +
          seconds[static_cast<std::size_t>(Category::kCopy)] +
          seconds[static_cast<std::size_t>(Category::kRelayForward)]) /
         total;
}

double SummaryRow::wait_pct() const noexcept {
  if (total <= 0.0) return 0.0;
  return 100.0 *
         (seconds[static_cast<std::size_t>(Category::kSyncWait)] +
          seconds[static_cast<std::size_t>(Category::kArqRetransmit)]) /
         total;
}

double SummaryRow::pipeline_overlap_s() const noexcept {
  const double hidden =
      seconds[static_cast<std::size_t>(Category::kCryptoHelper)] -
      seconds[static_cast<std::size_t>(Category::kPipelineStall)];
  return hidden > 0.0 ? hidden : 0.0;
}

Summary Summary::from(const TraceRecorder& rec) {
  Summary summary;
  summary.rows.reserve(static_cast<std::size_t>(rec.num_ranks()));
  for (int rank = 0; rank < rec.num_ranks(); ++rank) {
    SummaryRow row;
    row.rank = rank;
    row.total = rec.rank_end(rank) - rec.run_begin();
    row.seconds = rec.category_seconds(rank);
    // Helper-core spans are a concurrent lane, not timeline coverage:
    // leaving them out keeps "idle + timeline categories == total"
    // exact even when crypto hides behind the wire.
    double covered = 0.0;
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      if (static_cast<Category>(c) == Category::kCryptoHelper) continue;
      covered += row.seconds[c];
    }
    row.idle = row.total - covered;
    summary.rows.push_back(row);
  }
  return summary;
}

SummaryRow Summary::aggregate() const {
  SummaryRow agg;
  agg.rank = -1;
  for (const SummaryRow& row : rows) {
    agg.total += row.total;
    agg.idle += row.idle;
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      agg.seconds[c] += row.seconds[c];
    }
  }
  return agg;
}

void write_attribution_csv(std::ostream& os, const Summary& summary,
                           const std::string& config, bool header) {
  if (header) {
    os << "config,rank,total_s";
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      os << "," << category_name(static_cast<Category>(c)) << "_s";
    }
    os << ",idle_s,pipeline_overlap_s,crypto_pct,wire_pct,wait_pct\n";
  }
  auto emit = [&](const SummaryRow& row, const std::string& rank_label) {
    os << config << "," << rank_label << "," << sec_fixed(row.total);
    for (const double s : row.seconds) os << "," << sec_fixed(s);
    os << "," << sec_fixed(row.idle) << ","
       << sec_fixed(row.pipeline_overlap_s()) << ","
       << pct_fixed(row.crypto_pct()) << "," << pct_fixed(row.wire_pct())
       << "," << pct_fixed(row.wait_pct()) << "\n";
  };
  for (const SummaryRow& row : summary.rows) {
    emit(row, std::to_string(row.rank));
  }
  emit(summary.aggregate(), "all");
}

void print_summary(std::ostream& os, const Summary& summary,
                   const std::string& title) {
  os << title << "\n";
  const SummaryRow agg = summary.aggregate();
  os << "  total " << sec_fixed(agg.total) << " s over "
     << summary.rows.size() << " rank(s): crypto "
     << pct_fixed(agg.crypto_pct()) << "%, wire/copy "
     << pct_fixed(agg.wire_pct()) << "%, wait "
     << pct_fixed(agg.wait_pct()) << "%\n";
  const double overlap = agg.pipeline_overlap_s();
  if (overlap > 0.0) {
    os << "  pipeline: " << sec_fixed(overlap)
       << " s of helper-core crypto hidden behind the timeline ("
       << sec_fixed(
              agg.seconds[static_cast<std::size_t>(Category::kPipelineStall)])
       << " s stalled)\n";
  }
}

}  // namespace emc::trace
