#include "emc/trace/trace.hpp"

#include <stdexcept>
#include <string>

namespace emc::trace {

const char* category_name(Category c) noexcept {
  switch (c) {
    case Category::kCryptoEncrypt: return "crypto_encrypt";
    case Category::kCryptoDecrypt: return "crypto_decrypt";
    case Category::kWire: return "wire";
    case Category::kNicQueue: return "nic_queue";
    case Category::kSyncWait: return "sync_wait";
    case Category::kArqRetransmit: return "arq_retransmit";
    case Category::kCopy: return "copy";
    case Category::kCompute: return "compute";
    case Category::kRelayForward: return "relay_forward";
    case Category::kCryptoHelper: return "crypto_helper";
    case Category::kPipelineStall: return "pipeline_stall";
    case Category::kKeyMgmt: return "key_mgmt";
  }
  return "unknown";
}

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 1;
  while (cap < n) cap <<= 1;
  return cap;
}
}  // namespace

TraceRecorder::TraceRecorder(const Config& config, int num_ranks)
    : config_(config) {
  if (num_ranks < 1) {
    throw std::invalid_argument("TraceRecorder: num_ranks must be >= 1");
  }
  if (config_.ring_capacity < 1) {
    throw std::invalid_argument("TraceRecorder: ring_capacity must be >= 1");
  }
  const std::size_t cap = round_up_pow2(config_.ring_capacity);
  mask_ = cap - 1;
  ranks_.resize(static_cast<std::size_t>(num_ranks));
  for (Rank& r : ranks_) r.ring.resize(cap);
}

std::size_t TraceRecorder::checked(int rank) const {
  if (rank < 0 || static_cast<std::size_t>(rank) >= ranks_.size()) {
    throw std::out_of_range("TraceRecorder: rank " + std::to_string(rank) +
                            " out of range");
  }
  return static_cast<std::size_t>(rank);
}

void TraceRecorder::record(int rank, Category category, double begin,
                           double end, int peer,
                           std::uint64_t bytes) noexcept {
  if (rank < 0 || static_cast<std::size_t>(rank) >= ranks_.size()) return;
  if (end < begin) end = begin;
  Rank& r = ranks_[static_cast<std::size_t>(rank)];
  r.seconds[static_cast<std::size_t>(category)] += end - begin;
  Event& slot = r.ring[r.count & mask_];
  slot.begin = begin;
  slot.end = end;
  slot.bytes = bytes;
  slot.peer = peer;
  slot.category = category;
  ++r.count;
}

void TraceRecorder::begin_run(double at) noexcept {
  run_begin_ = at;
  for (Rank& r : ranks_) {
    r.seconds = {};
    r.end_time = at;
    r.next_charge = Category::kCompute;
  }
}

std::vector<Event> TraceRecorder::events(int rank) const {
  const Rank& r = ranks_[checked(rank)];
  const std::uint64_t cap = r.ring.size();
  const std::uint64_t held = r.count < cap ? r.count : cap;
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(held));
  for (std::uint64_t i = r.count - held; i < r.count; ++i) {
    out.push_back(r.ring[i & mask_]);
  }
  return out;
}

}  // namespace emc::trace
