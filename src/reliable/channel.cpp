#include "emc/reliable/reliable.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace emc::reliable {

namespace {

/// SplitMix64 finalizer — same avalanche the fault injector uses, so
/// the jitter stream is a pure function of (seed, link, seq, attempt).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr double unit_double(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t link_key(int src, int dst) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
}

void check_positive(double v, const char* name) {
  if (v <= 0.0) {
    throw std::invalid_argument(std::string("reliable::Config: ") + name +
                                " must be positive");
  }
}

}  // namespace

void Config::validate() const {
  if (!enabled) return;
  if (max_retries < 1) {
    throw std::invalid_argument(
        "reliable::Config: max_retries must be at least 1");
  }
  check_positive(rto_initial, "rto_initial");
  check_positive(rto_max, "rto_max");
  if (rto_max < rto_initial) {
    throw std::invalid_argument(
        "reliable::Config: rto_max must be >= rto_initial");
  }
  if (backoff < 1.0) {
    throw std::invalid_argument("reliable::Config: backoff must be >= 1");
  }
  if (jitter < 0.0 || jitter >= 1.0) {
    throw std::invalid_argument(
        "reliable::Config: jitter must be in [0, 1)");
  }
  if (ctrl_bytes == 0) {
    throw std::invalid_argument(
        "reliable::Config: ctrl_bytes must be positive");
  }
  if (cwnd_initial < 1) {
    throw std::invalid_argument(
        "reliable::Config: cwnd_initial must be at least 1");
  }
  if (cwnd_limit < cwnd_initial) {
    throw std::invalid_argument(
        "reliable::Config: cwnd_limit must be >= cwnd_initial");
  }
  if (rto_min < 0.0) {
    throw std::invalid_argument(
        "reliable::Config: rto_min must be non-negative");
  }
}

Channel::Channel(const Config& config, net::Fabric& fabric)
    : config_(config),
      fabric_(&fabric),
      stash_(static_cast<std::size_t>(fabric.config().total_ranks())) {
  config_.validate();
}

double Channel::rto(int src, int dst, std::uint64_t seq, int attempt) const {
  double base = config_.rto_initial;
  for (int k = 0; k < attempt; ++k) {
    base = std::min(base * config_.backoff, config_.rto_max);
  }
  base = std::min(base, config_.rto_max);
  if (config_.jitter == 0.0) return base;
  const std::uint64_t h =
      mix64(config_.seed ^ mix64(link_key(src, dst) ^ mix64(seq) ^
                                 static_cast<std::uint64_t>(attempt)));
  const double factor = 1.0 + config_.jitter * (2.0 * unit_double(h) - 1.0);
  return base * factor;
}

Delivery Channel::deliver(int src, int dst, std::size_t bytes,
                          double send_time, double first_arrival,
                          bool frame_checksummed,
                          const net::RelayPolicy& relay) {
  Delivery out;
  out.seq = next_seq(src, dst);

  if (link_dead(src, dst)) {
    out.result = Delivery::Result::kDeadLink;
    return out;
  }

  if (fabric_->relayed(src, dst)) {
    return deliver_routed(std::move(out), src, dst, bytes, send_time,
                          frame_checksummed, relay);
  }
  if (config_.transport != Transport::kAnalytic) {
    return deliver_clocked(std::move(out), src, dst, bytes, send_time,
                           frame_checksummed);
  }

  net::FaultInjector* faults = fabric_->faults_for(src, dst);
  double t_send = send_time;
  double arrival = first_arrival;

  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    ++out.transmissions;
    ++stats_.data_frames;
    if (attempt > 0) {
      ++stats_.retransmits;
      arrival = fabric_->reserve_path(src, dst, bytes, t_send).arrival;
    }
    const net::FaultDecision d =
        faults != nullptr ? faults->next(src, dst, bytes)
                          : net::FaultDecision{};

    switch (d.kind) {
      case net::FaultKind::kNone:
      case net::FaultKind::kRankCrash:  // not a wire fault; never drawn
        out.arrival = arrival;
        break;
      case net::FaultKind::kDelay: {
        // The copy is intact but late. If the spike outlives the RTO
        // the sender retransmits spuriously; the earlier arrival wins
        // and the other copy is absorbed by the sequence window.
        const double delayed = arrival + d.delay_seconds;
        const double timer = rto(src, dst, out.seq, attempt);
        if (d.delay_seconds > timer) {
          ++out.transmissions;
          ++stats_.data_frames;
          ++stats_.spurious_retransmits;
          ++stats_.duplicates_suppressed;
          const double copy_arrival =
              fabric_->reserve_path(src, dst, bytes, t_send + timer).arrival;
          out.arrival = std::min(delayed, copy_arrival);
        } else {
          out.arrival = delayed;
        }
        ++stats_.delays_absorbed;
        break;
      }
      case net::FaultKind::kDuplicate: {
        // Both copies cross the wire; the second is suppressed by the
        // receiver's sequence window (it still occupies the NIC).
        (void)fabric_->reserve_path(src, dst, bytes, arrival);
        ++stats_.duplicates_suppressed;
        out.arrival = arrival;
        break;
      }
      case net::FaultKind::kDrop: {
        // Nothing arrives; the sender's RTO fires and the frame is
        // retransmitted after the backoff interval.
        ++stats_.rto_expirations;
        t_send += rto(src, dst, out.seq, attempt);
        continue;
      }
      case net::FaultKind::kTruncate: {
        // The header length field exposes the truncation at the
        // receiving link layer, which NACKs; the sender retransmits
        // as soon as the NACK lands.
        ++stats_.link_nacks;
        t_send = fabric_->reserve_path(dst, src, config_.ctrl_bytes, arrival)
                     .arrival;
        continue;
      }
      case net::FaultKind::kCorrupt: {
        if (frame_checksummed) {
          // Collective-internal frames carry a link checksum: the
          // corruption is caught on arrival and NACKed like a
          // truncation.
          ++stats_.link_nacks;
          t_send =
              fabric_->reserve_path(dst, src, config_.ctrl_bytes, arrival)
                  .arrival;
          continue;
        }
        // Point-to-point payloads defer integrity to the upper layer:
        // the damaged copy is delivered and, if the upper layer
        // authenticates, recovered through e2e_recover.
        ++stats_.damaged_deliveries;
        out.result = Delivery::Result::kDeliveredDamaged;
        out.damage = d;
        out.arrival = arrival;
        break;
      }
    }

    // Delivered (clean or damaged).
    ++stats_.deliveries;
    if (attempt > 0) {
      ++stats_.recoveries;
      stats_.recovery_delay_total += out.arrival - first_arrival;
    }
    return out;
  }

  mark_link_dead(src, dst);
  out.result = Delivery::Result::kDeadLink;
  return out;
}

Channel::CcState& Channel::cc_state(int a, int b) {
  auto [it, inserted] = cc_.try_emplace({a, b});
  if (inserted) {
    // kFixedRto has no AIMD: it always runs the full window.
    it->second.cwnd = config_.transport == Transport::kAdaptive
                          ? static_cast<double>(config_.cwnd_initial)
                          : static_cast<double>(config_.cwnd_limit);
    it->second.ssthresh = static_cast<double>(config_.cwnd_limit);
  }
  return it->second;
}

void Channel::rtt_sample(CcState& cc, double sample) {
  // RFC 6298: SRTT/RTTVAR with alpha = 1/8, beta = 1/4.
  if (!cc.seeded) {
    cc.srtt = sample;
    cc.rttvar = sample / 2.0;
    cc.seeded = true;
  } else {
    const double err = std::abs(cc.srtt - sample);
    cc.rttvar = 0.75 * cc.rttvar + 0.25 * err;
    cc.srtt = 0.875 * cc.srtt + 0.125 * sample;
  }
  ++stats_.rtt_samples;
}

void Channel::cc_on_loss(CcState& cc) {
  cc.ssthresh = std::max(cc.cwnd / 2.0, 2.0);
  cc.cwnd = cc.ssthresh;
  ++stats_.cwnd_halvings;
}

void Channel::cc_on_ack(CcState& cc) {
  if (cc.cwnd < cc.ssthresh) {
    cc.cwnd += 1.0;  // slow start
  } else {
    cc.cwnd += 1.0 / cc.cwnd;  // congestion avoidance
  }
  cc.cwnd = std::min(cc.cwnd, static_cast<double>(config_.cwnd_limit));
}

double Channel::transport_rto(const CcState& cc,
                              const net::NetworkProfile& prof, int a, int b,
                              std::uint64_t seq, int attempt) const {
  if (config_.transport != Transport::kAdaptive) {
    return rto(a, b, seq, attempt);
  }
  // Adaptive base: SRTT + max(G, 4 * RTTVAR) once seeded (RFC 6298,
  // with rto_min doubling as the clock granularity G so a fully
  // converged RTTVAR can never shave the timer to exactly the RTT);
  // before the first sample, fall back to twice the nominal path RTT
  // so a WAN link never starts below its own propagation delay.
  // Retries back off uncapped (Karn) — max_retries bounds the ladder.
  double base =
      cc.seeded
          ? std::max(config_.rto_min,
                     cc.srtt + std::max(config_.rto_min, 4.0 * cc.rttvar))
          : std::max(config_.rto_min, 4.0 * prof.latency);
  for (int k = 0; k < attempt; ++k) base *= config_.backoff;
  if (config_.jitter == 0.0) return base;
  const std::uint64_t h =
      mix64(config_.seed ^ mix64(link_key(a, b) ^ mix64(seq) ^
                                 static_cast<std::uint64_t>(attempt)));
  return base * (1.0 + config_.jitter * (2.0 * unit_double(h) - 1.0));
}

Delivery Channel::deliver_clocked(Delivery out, int src, int dst,
                                  std::size_t bytes, double send_time,
                                  bool frame_checksummed) {
  net::FaultInjector* faults = fabric_->faults_for(src, dst);
  CcState& cc = cc_state(src, dst);
  const net::NetworkProfile& fwd = fabric_->profile(src, dst);
  const net::NetworkProfile& rev = fabric_->profile(dst, src);
  const bool adaptive = config_.transport == Transport::kAdaptive;

  double t_send = send_time;

  // Ack-clocked window gate: every un-ACKed frame occupies one window
  // slot; a full window stalls the sender until the earliest
  // outstanding ACK returns.
  while (!cc.inflight.empty() && *cc.inflight.begin() <= t_send) {
    cc.inflight.erase(cc.inflight.begin());
  }
  while (static_cast<int>(cc.inflight.size()) >=
         std::max(1, static_cast<int>(cc.cwnd))) {
    const double wake = *cc.inflight.begin();
    cc.inflight.erase(cc.inflight.begin());
    if (wake > t_send) {
      ++stats_.window_stalls;
      stats_.window_stall_seconds += wake - t_send;
      t_send = wake;
    }
  }

  double ideal = 0.0;
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    ++out.transmissions;
    ++stats_.data_frames;
    if (attempt > 0) ++stats_.retransmits;
    const net::PathTimes path = fabric_->reserve_path(src, dst, bytes, t_send);
    if (attempt == 0) {
      out.queue_delay = path.queue_delay;
      ideal = path.arrival;
    }
    const double timer = transport_rto(cc, fwd, src, dst, out.seq, attempt);
    const net::FaultDecision d =
        faults != nullptr ? faults->next(src, dst, bytes)
                          : net::FaultDecision{};

    switch (d.kind) {
      case net::FaultKind::kNone:
      case net::FaultKind::kRankCrash:  // not a wire fault; never drawn
        out.arrival = path.arrival;
        break;
      case net::FaultKind::kDelay:
        // Late but intact: the timer-vs-ACK race below models any
        // spurious copies the lateness provokes.
        out.arrival = path.arrival + d.delay_seconds;
        ++stats_.delays_absorbed;
        break;
      case net::FaultKind::kDuplicate:
        (void)fabric_->reserve_path(src, dst, bytes, path.arrival);
        ++stats_.duplicates_suppressed;
        out.arrival = path.arrival;
        break;
      case net::FaultKind::kDrop:
        ++stats_.rto_expirations;
        if (adaptive) cc_on_loss(cc);
        t_send += timer;
        continue;
      case net::FaultKind::kTruncate:
        ++stats_.link_nacks;
        if (adaptive) cc_on_loss(cc);
        t_send = fabric_->reserve_path(dst, src, config_.ctrl_bytes,
                                       path.arrival)
                     .arrival;
        continue;
      case net::FaultKind::kCorrupt:
        if (frame_checksummed) {
          ++stats_.link_nacks;
          if (adaptive) cc_on_loss(cc);
          t_send = fabric_->reserve_path(dst, src, config_.ctrl_bytes,
                                         path.arrival)
                       .arrival;
          continue;
        }
        ++stats_.damaged_deliveries;
        out.result = Delivery::Result::kDeliveredDamaged;
        out.damage = d;
        out.arrival = path.arrival;
        break;
    }

    // Delivered. The ACK crosses back on the reverse profile; it is
    // modeled analytically (latency + serialization, no NIC
    // reservation) so tiny control frames do not perturb the reverse
    // data path. NACKs above DO reserve the NIC — they gate forward
    // progress.
    const double ack_time =
        out.arrival + rev.latency +
        static_cast<double>(config_.ctrl_bytes) / rev.bandwidth;

    // Spurious-retransmit race: the sender's timer keeps firing until
    // the ACK lands; every extra copy burns real NIC time and is
    // absorbed by the receiver's sequence window. On a WAN path whose
    // RTT exceeds the fixed rto_max this fires on EVERY frame — the
    // failure mode the adaptive transport exists to avoid. The timer
    // arms when the frame hits the wire (path.start), as TCP's does —
    // not when the application handed it to a possibly-backlogged NIC.
    double timer_start = path.start;
    double r = timer;
    int spur = 0;
    int ladder = attempt;
    while (timer_start + r < ack_time && spur < config_.max_retries) {
      ++spur;
      ++out.transmissions;
      ++stats_.data_frames;
      ++stats_.spurious_retransmits;
      ++stats_.duplicates_suppressed;
      (void)fabric_->reserve_path(src, dst, bytes, timer_start + r);
      timer_start += r;
      ++ladder;
      r = transport_rto(cc, fwd, src, dst, out.seq, ladder);
    }

    if (adaptive) {
      // Karn's rule: only a frame that was transmitted exactly once
      // yields an unambiguous RTT sample — measured from the wire
      // transmission, so sender-side NIC queueing does not masquerade
      // as path RTT.
      if (attempt == 0 && spur == 0) rtt_sample(cc, ack_time - path.start);
      if (attempt == 0) cc_on_ack(cc);
    }
    cc.inflight.insert(ack_time);

    ++stats_.deliveries;
    if (attempt > 0) {
      ++stats_.recoveries;
      stats_.recovery_delay_total += out.arrival - ideal;
    }
    return out;
  }

  mark_link_dead(src, dst);
  out.result = Delivery::Result::kDeadLink;
  return out;
}

Delivery Channel::deliver_routed(Delivery out, int src, int dst,
                                 std::size_t bytes, double send_time,
                                 bool frame_checksummed,
                                 const net::RelayPolicy& relay) {
  const std::vector<int> nodes = fabric_->path_nodes(src, dst);
  // Relay hops are identified by negative coordinates (-2 - node) in
  // the injector/RTO/cc hash streams so they can never collide with a
  // rank id or the FaultTrigger -1 wildcard.
  const auto hop_coord = [](int node) { return -2 - node; };
  const bool adaptive = config_.transport == Transport::kAdaptive;

  double t = send_time;
  double first_hop_arrival = 0.0;
  double penalty = 0.0;
  bool retransmitted = false;
  bool damaged = false;
  net::FaultDecision first_damage;

  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const int a = nodes[i];
    const int b = nodes[i + 1];
    const bool first_hop = i == 0;
    const bool last_hop = i + 2 == nodes.size();
    const int flow = first_hop ? src : hop_coord(a);
    const int ia = first_hop ? src : hop_coord(a);
    const int ib = last_hop ? dst : hop_coord(b);
    net::FaultInjector* faults = fabric_->faults_for_hop(a, b);
    const net::NetworkProfile& prof = fabric_->hop_profile(a, b);
    const net::NetworkProfile& rev = fabric_->hop_profile(b, a);
    CcState& cc = cc_state(ia, ib);

    double t_hop = t;
    double hop_ideal = 0.0;
    bool hop_done = false;
    for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
      ++out.transmissions;
      ++stats_.data_frames;
      if (!first_hop) ++stats_.relay_frames;
      if (attempt > 0) {
        ++stats_.retransmits;
        retransmitted = true;
      }
      const net::PathTimes path =
          fabric_->reserve_hop(a, b, flow, bytes, t_hop);
      if (first_hop && attempt == 0) out.queue_delay = path.queue_delay;
      if (attempt == 0) hop_ideal = path.arrival;
      const double timer = transport_rto(cc, prof, ia, ib, out.seq, attempt);
      const net::FaultDecision d =
          faults != nullptr ? faults->next(ia, ib, bytes)
                            : net::FaultDecision{};

      double accepted = 0.0;
      bool spurious_copy = false;
      switch (d.kind) {
        case net::FaultKind::kNone:
        case net::FaultKind::kRankCrash:  // not a wire fault; never drawn
          accepted = path.arrival;
          break;
        case net::FaultKind::kDelay: {
          accepted = path.arrival + d.delay_seconds;
          if (d.delay_seconds > timer) {
            ++out.transmissions;
            ++stats_.data_frames;
            ++stats_.spurious_retransmits;
            ++stats_.duplicates_suppressed;
            spurious_copy = true;
            const double copy =
                fabric_->reserve_hop(a, b, flow, bytes, t_hop + timer)
                    .arrival;
            accepted = std::min(accepted, copy);
          }
          ++stats_.delays_absorbed;
          break;
        }
        case net::FaultKind::kDuplicate:
          (void)fabric_->reserve_hop(a, b, flow, bytes, path.arrival);
          ++stats_.duplicates_suppressed;
          accepted = path.arrival;
          break;
        case net::FaultKind::kDrop:
          ++stats_.rto_expirations;
          if (adaptive) cc_on_loss(cc);
          t_hop += timer;
          continue;
        case net::FaultKind::kTruncate:
          ++stats_.link_nacks;
          if (adaptive) cc_on_loss(cc);
          t_hop = fabric_
                      ->reserve_hop(b, a, flow, config_.ctrl_bytes,
                                    path.arrival)
                      .arrival;
          continue;
        case net::FaultKind::kCorrupt:
          if (frame_checksummed || relay.hop_integrity) {
            // Per-hop integrity (hop-trusted relays re-authenticate):
            // the corruption is caught and NACKed at THIS hop instead
            // of riding to the destination.
            ++stats_.link_nacks;
            if (adaptive) cc_on_loss(cc);
            t_hop = fabric_
                        ->reserve_hop(b, a, flow, config_.ctrl_bytes,
                                      path.arrival)
                        .arrival;
            continue;
          }
          // End-to-end mode: the sealed payload is damaged in place
          // and the corruption rides the rest of the route; only the
          // destination can detect it. Keep the first damage — later
          // hops forward the already-damaged bytes.
          if (!damaged) {
            damaged = true;
            first_damage = d;
          }
          accepted = path.arrival;
          break;
      }

      // Per-hop ARQ runs open-loop (no ack-clocked window across
      // hops); kAdaptive still learns each hop's RTT for its timer.
      if (adaptive && attempt == 0 && !spurious_copy) {
        rtt_sample(cc, (accepted - t_hop) + rev.latency +
                           static_cast<double>(config_.ctrl_bytes) /
                               rev.bandwidth);
      }
      penalty += accepted - hop_ideal;
      t = accepted;
      hop_done = true;
      if (first_hop) {
        first_hop_arrival = accepted;
      } else {
        ++stats_.relay_deliveries;
      }
      break;
    }

    if (!hop_done) {
      // One saturated hop kills the end-to-end path: same graceful
      // degradation as a direct link (tombstones + PeerUnreachable).
      mark_link_dead(src, dst);
      out.result = Delivery::Result::kDeadLink;
      return out;
    }
    if (!last_hop) t += relay.hop_delay(bytes);
  }

  out.arrival = t;
  out.relay_delay = t - first_hop_arrival;
  if (damaged) {
    ++stats_.damaged_deliveries;
    out.result = Delivery::Result::kDeliveredDamaged;
    out.damage = first_damage;
  }
  ++stats_.deliveries;
  if (retransmitted) {
    ++stats_.recoveries;
    stats_.recovery_delay_total += penalty;
  }
  return out;
}

double Channel::e2e_recover(int src, int dst, std::size_t bytes, double now,
                            std::uint32_t already_spent,
                            const net::RelayPolicy& relay) {
  if (link_dead(src, dst)) throw PeerUnreachable(src, dst, already_spent);

  net::FaultInjector* faults = fabric_->faults_for(src, dst);
  std::uint32_t attempts = already_spent;
  double t = now;

  // Outer loop: one end-to-end NACK round per upper-layer detection.
  // Inner loop: the sender's retransmissions until a copy arrives.
  for (;;) {
    ++stats_.e2e_nacks;
    double t_send = fabric_
                        ->reserve_route(dst, src, config_.ctrl_bytes, t,
                                        relay.hop_delay(config_.ctrl_bytes))
                        .arrival;
    for (int attempt = 0;; ++attempt) {
      if (attempts >= static_cast<std::uint32_t>(config_.max_retries) + 1) {
        mark_link_dead(src, dst);
        throw PeerUnreachable(src, dst, attempts);
      }
      ++attempts;
      ++stats_.data_frames;
      ++stats_.retransmits;
      const net::PathTimes path = fabric_->reserve_route(
          src, dst, bytes, t_send, relay.hop_delay(bytes));
      const net::FaultDecision d =
          faults != nullptr ? faults->next(src, dst, bytes)
                            : net::FaultDecision{};
      switch (d.kind) {
        case net::FaultKind::kDrop:
          ++stats_.rto_expirations;
          t_send += rto(src, dst, /*seq=*/attempts, attempt);
          continue;
        case net::FaultKind::kTruncate:
          ++stats_.link_nacks;
          t_send = fabric_
                       ->reserve_route(dst, src, config_.ctrl_bytes,
                                       path.arrival,
                                       relay.hop_delay(config_.ctrl_bytes))
                       .arrival;
          continue;
        case net::FaultKind::kCorrupt:
          // Damaged again: the upper layer will fail authentication at
          // arrival and issue the next NACK round.
          t = path.arrival;
          break;
        case net::FaultKind::kDuplicate:
          (void)fabric_->reserve_route(src, dst, bytes, path.arrival,
                                       relay.hop_delay(bytes));
          ++stats_.duplicates_suppressed;
          ++stats_.recoveries;
          stats_.recovery_delay_total += path.arrival - now;
          return path.arrival;
        case net::FaultKind::kDelay:
          ++stats_.delays_absorbed;
          ++stats_.recoveries;
          stats_.recovery_delay_total += path.arrival + d.delay_seconds - now;
          return path.arrival + d.delay_seconds;
        case net::FaultKind::kNone:
        case net::FaultKind::kRankCrash:  // not a wire fault; never drawn
          ++stats_.recoveries;
          stats_.recovery_delay_total += path.arrival - now;
          return path.arrival;
      }
      break;  // kCorrupt: back to the outer NACK loop
    }
  }
}

}  // namespace emc::reliable
