#include "emc/reliable/reliable.hpp"

#include <algorithm>

namespace emc::reliable {

namespace {

/// SplitMix64 finalizer — same avalanche the fault injector uses, so
/// the jitter stream is a pure function of (seed, link, seq, attempt).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr double unit_double(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t link_key(int src, int dst) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
}

void check_positive(double v, const char* name) {
  if (v <= 0.0) {
    throw std::invalid_argument(std::string("reliable::Config: ") + name +
                                " must be positive");
  }
}

}  // namespace

void Config::validate() const {
  if (!enabled) return;
  if (max_retries < 1) {
    throw std::invalid_argument(
        "reliable::Config: max_retries must be at least 1");
  }
  check_positive(rto_initial, "rto_initial");
  check_positive(rto_max, "rto_max");
  if (rto_max < rto_initial) {
    throw std::invalid_argument(
        "reliable::Config: rto_max must be >= rto_initial");
  }
  if (backoff < 1.0) {
    throw std::invalid_argument("reliable::Config: backoff must be >= 1");
  }
  if (jitter < 0.0 || jitter >= 1.0) {
    throw std::invalid_argument(
        "reliable::Config: jitter must be in [0, 1)");
  }
  if (ctrl_bytes == 0) {
    throw std::invalid_argument(
        "reliable::Config: ctrl_bytes must be positive");
  }
}

Channel::Channel(const Config& config, net::Fabric& fabric)
    : config_(config),
      fabric_(&fabric),
      stash_(static_cast<std::size_t>(fabric.config().total_ranks())) {
  config_.validate();
}

double Channel::rto(int src, int dst, std::uint64_t seq, int attempt) const {
  double base = config_.rto_initial;
  for (int k = 0; k < attempt; ++k) {
    base = std::min(base * config_.backoff, config_.rto_max);
  }
  base = std::min(base, config_.rto_max);
  if (config_.jitter == 0.0) return base;
  const std::uint64_t h =
      mix64(config_.seed ^ mix64(link_key(src, dst) ^ mix64(seq) ^
                                 static_cast<std::uint64_t>(attempt)));
  const double factor = 1.0 + config_.jitter * (2.0 * unit_double(h) - 1.0);
  return base * factor;
}

Delivery Channel::deliver(int src, int dst, std::size_t bytes,
                          double send_time, double first_arrival,
                          bool frame_checksummed) {
  Delivery out;
  out.seq = next_seq(src, dst);

  if (link_dead(src, dst)) {
    out.result = Delivery::Result::kDeadLink;
    return out;
  }

  net::FaultInjector* faults = fabric_->faults();
  double t_send = send_time;
  double arrival = first_arrival;

  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    ++out.transmissions;
    ++stats_.data_frames;
    if (attempt > 0) {
      ++stats_.retransmits;
      arrival = fabric_->reserve_path(src, dst, bytes, t_send).arrival;
    }
    const net::FaultDecision d =
        faults != nullptr ? faults->next(src, dst, bytes)
                          : net::FaultDecision{};

    switch (d.kind) {
      case net::FaultKind::kNone:
      case net::FaultKind::kRankCrash:  // not a wire fault; never drawn
        out.arrival = arrival;
        break;
      case net::FaultKind::kDelay: {
        // The copy is intact but late. If the spike outlives the RTO
        // the sender retransmits spuriously; the earlier arrival wins
        // and the other copy is absorbed by the sequence window.
        const double delayed = arrival + d.delay_seconds;
        const double timer = rto(src, dst, out.seq, attempt);
        if (d.delay_seconds > timer) {
          ++out.transmissions;
          ++stats_.data_frames;
          ++stats_.spurious_retransmits;
          ++stats_.duplicates_suppressed;
          const double copy_arrival =
              fabric_->reserve_path(src, dst, bytes, t_send + timer).arrival;
          out.arrival = std::min(delayed, copy_arrival);
        } else {
          out.arrival = delayed;
        }
        ++stats_.delays_absorbed;
        break;
      }
      case net::FaultKind::kDuplicate: {
        // Both copies cross the wire; the second is suppressed by the
        // receiver's sequence window (it still occupies the NIC).
        (void)fabric_->reserve_path(src, dst, bytes, arrival);
        ++stats_.duplicates_suppressed;
        out.arrival = arrival;
        break;
      }
      case net::FaultKind::kDrop: {
        // Nothing arrives; the sender's RTO fires and the frame is
        // retransmitted after the backoff interval.
        ++stats_.rto_expirations;
        t_send += rto(src, dst, out.seq, attempt);
        continue;
      }
      case net::FaultKind::kTruncate: {
        // The header length field exposes the truncation at the
        // receiving link layer, which NACKs; the sender retransmits
        // as soon as the NACK lands.
        ++stats_.link_nacks;
        t_send = fabric_->reserve_path(dst, src, config_.ctrl_bytes, arrival)
                     .arrival;
        continue;
      }
      case net::FaultKind::kCorrupt: {
        if (frame_checksummed) {
          // Collective-internal frames carry a link checksum: the
          // corruption is caught on arrival and NACKed like a
          // truncation.
          ++stats_.link_nacks;
          t_send =
              fabric_->reserve_path(dst, src, config_.ctrl_bytes, arrival)
                  .arrival;
          continue;
        }
        // Point-to-point payloads defer integrity to the upper layer:
        // the damaged copy is delivered and, if the upper layer
        // authenticates, recovered through e2e_recover.
        ++stats_.damaged_deliveries;
        out.result = Delivery::Result::kDeliveredDamaged;
        out.damage = d;
        out.arrival = arrival;
        break;
      }
    }

    // Delivered (clean or damaged).
    ++stats_.deliveries;
    if (attempt > 0) {
      ++stats_.recoveries;
      stats_.recovery_delay_total += out.arrival - first_arrival;
    }
    return out;
  }

  mark_link_dead(src, dst);
  out.result = Delivery::Result::kDeadLink;
  return out;
}

double Channel::e2e_recover(int src, int dst, std::size_t bytes, double now,
                            std::uint32_t already_spent) {
  if (link_dead(src, dst)) throw PeerUnreachable(src, dst, already_spent);

  net::FaultInjector* faults = fabric_->faults();
  std::uint32_t attempts = already_spent;
  double t = now;

  // Outer loop: one end-to-end NACK round per upper-layer detection.
  // Inner loop: the sender's retransmissions until a copy arrives.
  for (;;) {
    ++stats_.e2e_nacks;
    double t_send =
        fabric_->reserve_path(dst, src, config_.ctrl_bytes, t).arrival;
    for (int attempt = 0;; ++attempt) {
      if (attempts >= static_cast<std::uint32_t>(config_.max_retries) + 1) {
        mark_link_dead(src, dst);
        throw PeerUnreachable(src, dst, attempts);
      }
      ++attempts;
      ++stats_.data_frames;
      ++stats_.retransmits;
      const net::PathTimes path =
          fabric_->reserve_path(src, dst, bytes, t_send);
      const net::FaultDecision d =
          faults != nullptr ? faults->next(src, dst, bytes)
                            : net::FaultDecision{};
      switch (d.kind) {
        case net::FaultKind::kDrop:
          ++stats_.rto_expirations;
          t_send += rto(src, dst, /*seq=*/attempts, attempt);
          continue;
        case net::FaultKind::kTruncate:
          ++stats_.link_nacks;
          t_send = fabric_
                       ->reserve_path(dst, src, config_.ctrl_bytes,
                                      path.arrival)
                       .arrival;
          continue;
        case net::FaultKind::kCorrupt:
          // Damaged again: the upper layer will fail authentication at
          // arrival and issue the next NACK round.
          t = path.arrival;
          break;
        case net::FaultKind::kDuplicate:
          (void)fabric_->reserve_path(src, dst, bytes, path.arrival);
          ++stats_.duplicates_suppressed;
          ++stats_.recoveries;
          stats_.recovery_delay_total += path.arrival - now;
          return path.arrival;
        case net::FaultKind::kDelay:
          ++stats_.delays_absorbed;
          ++stats_.recoveries;
          stats_.recovery_delay_total += path.arrival + d.delay_seconds - now;
          return path.arrival + d.delay_seconds;
        case net::FaultKind::kNone:
        case net::FaultKind::kRankCrash:  // not a wire fault; never drawn
          ++stats_.recoveries;
          stats_.recovery_delay_total += path.arrival - now;
          return path.arrival;
      }
      break;  // kCorrupt: back to the outer NACK loop
    }
  }
}

}  // namespace emc::reliable
