// Reliable delivery over the faulty fabric: a sequence-numbered ARQ
// channel layered between the MPI communicators and the network.
//
// The fault injector (src/netsim/fault.hpp) decides the fate of every
// frame as a pure function of (seed, link, per-link frame index), so
// the whole retransmission dialogue — RTO expirations, link NACKs,
// exponential backoff with seeded jitter, duplicate suppression — can
// be resolved deterministically at the moment a frame is handed to the
// wire. The channel plays that dialogue out in virtual time:
//
//   * every frame carries a per-link sequence number and a header
//     length field; truncated frames are NACKed by the receiving link
//     layer and retransmitted,
//   * dropped frames are retransmitted when the sender's RTO fires
//     (exponential backoff, seeded jitter, capped at rto_max),
//   * fabric-duplicated frames are suppressed by the receiver's
//     sequence window (distinct from — and below — the secure layer's
//     anti-replay window),
//   * delayed frames that outlive the RTO provoke a spurious
//     retransmission whose extra copy is suppressed like a duplicate,
//   * corrupted frames on user point-to-point traffic are delivered
//     (the link header CRC covers only the header); integrity is the
//     upper layer's job, and SecureComm turns an authentication
//     failure into an end-to-end NACK + retransmit through
//     Channel::e2e_recover instead of a thrown IntegrityError.
//     Collective-internal frames are checksummed by the link layer and
//     recovered transparently (see docs/RESILIENCE.md).
//
// A bounded retry budget degrades gracefully: when it is exhausted the
// link is marked dead, the failing operation raises a structured
// PeerUnreachable (never a hang, never an uncaught IntegrityError),
// and surviving ranks keep running.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "emc/common/bytes.hpp"
#include "emc/netsim/fabric.hpp"

namespace emc::reliable {

/// Transport discipline of the ARQ sender.
enum class Transport : std::uint8_t {
  /// Original behavior: fixed analytic backoff ladder, no send window —
  /// the whole dialogue resolved at send time. Default; replays
  /// existing worlds bit-exact.
  kAnalytic,
  /// Ack-clocked transport with a fixed-size window and the same fixed
  /// RTO ladder — the LAN-tuned baseline whose timer collapses into a
  /// spurious-retransmit storm once the path RTT exceeds rto_max.
  kFixedRto,
  /// Ack-clocked AIMD congestion window plus RFC 6298 SRTT/RTTVAR
  /// adaptive RTO with Karn's sampling rule.
  kAdaptive,
};

/// Reliability knobs; embedded in mpi::WorldConfig as `reliability`.
/// Every default is tuned for the simulated 10 GbE / IB profiles:
/// the full backoff ladder resolves well inside a one-second
/// recv_timeout.
struct Config {
  /// Master switch. Off = no channel is constructed; every send/recv
  /// path replays the unreliable wire bit-exact.
  bool enabled = false;

  /// Retransmissions allowed per delivery (beyond the first copy).
  /// Exhaustion marks the link dead and raises PeerUnreachable.
  int max_retries = 8;

  /// Retransmission timer: attempt k waits rto_initial * backoff^k
  /// (capped at rto_max), multiplied by a seeded jitter factor in
  /// [1 - jitter, 1 + jitter].
  double rto_initial = 200e-6;
  double rto_max = 20e-3;
  double backoff = 2.0;
  double jitter = 0.2;

  /// Wire size of ACK/NACK control frames.
  std::size_t ctrl_bytes = 32;

  /// Seed for the jitter stream (independent of the FaultPlan seed).
  std::uint64_t seed = 1;

  /// Sender discipline. kAnalytic keeps every existing path bit-exact;
  /// the clocked modes add ACK return, window stalls, and (kAdaptive)
  /// RTT estimation to the resolved dialogue.
  Transport transport = Transport::kAnalytic;

  /// Clocked modes: initial congestion window (frames in flight before
  /// the first ACK) and its upper bound. kFixedRto always runs a full
  /// cwnd_limit window; kAdaptive slow-starts from cwnd_initial.
  int cwnd_initial = 4;
  int cwnd_limit = 64;

  /// kAdaptive: floor of the adaptive RTO (RFC 6298 recommends 1 s on
  /// real internet paths; simulated WAN links settle faster).
  double rto_min = 1e-3;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

/// Cumulative ARQ accounting across all links of one world.
struct ReliabilityStats {
  std::uint64_t data_frames = 0;        ///< frames put on the wire (incl. rexmit)
  std::uint64_t deliveries = 0;         ///< payloads handed up intact-or-damaged
  std::uint64_t retransmits = 0;        ///< RTO- or NACK-driven resends
  std::uint64_t rto_expirations = 0;    ///< sender timer fired (frame lost)
  std::uint64_t link_nacks = 0;         ///< receiver link layer rejected a frame
  std::uint64_t e2e_nacks = 0;          ///< upper-layer integrity NACKs
  std::uint64_t duplicates_suppressed = 0;  ///< fabric copies absorbed by seq window
  std::uint64_t spurious_retransmits = 0;   ///< RTO fired on a delayed (not lost) frame
  std::uint64_t delays_absorbed = 0;    ///< latency spikes survived without loss
  std::uint64_t damaged_deliveries = 0; ///< corrupt payloads handed to the upper layer
  std::uint64_t recoveries = 0;         ///< deliveries that needed >1 attempt
  double recovery_delay_total = 0.0;    ///< extra virtual seconds those waited
  std::uint64_t links_dead = 0;         ///< retry budgets exhausted
  std::uint64_t rtt_samples = 0;        ///< unambiguous RTT measurements taken
  std::uint64_t cwnd_halvings = 0;      ///< AIMD multiplicative decreases
  std::uint64_t window_stalls = 0;      ///< sends blocked on a full cwnd
  double window_stall_seconds = 0.0;    ///< virtual seconds spent in stalls
  std::uint64_t relay_frames = 0;       ///< frames forwarded by relay hops
  std::uint64_t relay_deliveries = 0;   ///< successful relay hop handoffs

  friend bool operator==(const ReliabilityStats&,
                         const ReliabilityStats&) = default;
};

/// Structured graceful-degradation error: the retry budget for the
/// (src -> dst) link is exhausted (or the link was already declared
/// dead). Raised on the sender for failed transmissions and on the
/// receiver for tombstoned or unrecoverable receives.
struct PeerUnreachable : std::runtime_error {
  PeerUnreachable(int src_rank, int dst_rank, std::uint64_t attempts_made)
      : std::runtime_error(
            "peer unreachable: link " + std::to_string(src_rank) + " -> " +
            std::to_string(dst_rank) + " declared dead after " +
            std::to_string(attempts_made) + " transmission attempts"),
        src(src_rank),
        dst(dst_rank),
        attempts(attempts_made) {}
  int src;
  int dst;
  std::uint64_t attempts;
};

/// Outcome of one ARQ delivery resolved at send time.
struct Delivery {
  enum class Result {
    kDelivered,        ///< clean payload arrives at `arrival`
    kDeliveredDamaged, ///< payload arrives with `damage` applied
    kDeadLink,         ///< retry budget exhausted; nothing arrives
  };
  Result result = Result::kDelivered;
  double arrival = 0.0;           ///< virtual time the accepted copy lands
  net::FaultDecision damage;      ///< valid when kDeliveredDamaged
  std::uint64_t seq = 0;          ///< ARQ sequence number of the payload
  std::uint32_t transmissions = 0;///< frames this delivery put on the wire
  /// Clocked/routed modes (where the channel reserves the wire itself):
  /// NIC queueing of the first copy, for trace attribution.
  double queue_delay = 0.0;
  /// Routed deliveries: virtual seconds past the first hop (relay
  /// store-and-forward + per-hop surcharge). 0 on direct links.
  double relay_delay = 0.0;
};

/// Clean-payload retransmit buffer entry for one receiving rank: the
/// sender-side copy of the most recent damaged delivery, used by
/// end-to-end NACK recovery to materialize the retransmitted frame.
struct RetransmitStash {
  bool valid = false;
  int src = -1;
  int tag = -1;
  std::uint64_t seq = 0;
  std::uint32_t transmissions = 0;  ///< budget already spent on this payload
  Bytes clean;
};

class Channel {
 public:
  /// Validates @p config and attaches to @p fabric (whose fault
  /// injector drives every per-attempt decision). The fabric must
  /// outlive the channel.
  Channel(const Config& config, net::Fabric& fabric);

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const ReliabilityStats& stats() const noexcept {
    return stats_;
  }

  /// Mutable accounting for the receiver-driven parts of the ARQ
  /// (the rendezvous pull retry loop runs on the receiving rank, in
  /// mpi::Comm, outside deliver()).
  [[nodiscard]] ReliabilityStats& stats_mut() noexcept { return stats_; }

  /// Resolves the full ARQ dialogue for one payload frame from @p src
  /// to @p dst. @p send_time is when the first copy left the sender,
  /// @p first_arrival its already-reserved arrival (ignored when the
  /// channel resolves the wire itself — clocked transports and routed
  /// paths, see engaged()). When @p frame_checksummed is true
  /// (collective-internal traffic) the link layer detects corruption
  /// and recovers it; otherwise a corrupted copy is delivered damaged
  /// and recovery is left to the upper layer (e2e_recover). @p relay
  /// governs what intermediate hops of a routed path do (surcharge,
  /// per-hop integrity); ignored on direct links.
  Delivery deliver(int src, int dst, std::size_t bytes, double send_time,
                   double first_arrival, bool frame_checksummed,
                   const net::RelayPolicy& relay = {});

  /// True when the channel (not the caller) resolves wire reservations
  /// for (src -> dst) payloads: any clocked transport, or any routed
  /// path. The caller must then skip its own reserve and take
  /// arrival/queue_delay/relay_delay from the Delivery.
  [[nodiscard]] bool engaged(int src, int dst) const {
    return config_.transport != Transport::kAnalytic ||
           fabric_->relayed(src, dst);
  }

  /// End-to-end recovery: the upper layer on rank @p dst detected an
  /// integrity failure at @p now for a frame from @p src. Simulates
  /// the NACK control frame plus the sender's retransmissions until a
  /// clean copy arrives; returns its arrival time. Routed pairs replay
  /// the dialogue over the full route at end-to-end fault granularity.
  /// Throws PeerUnreachable (and marks the link dead) when the
  /// remaining retry budget is exhausted.
  double e2e_recover(int src, int dst, std::size_t bytes, double now,
                     std::uint32_t already_spent,
                     const net::RelayPolicy& relay = {});

  /// True once the (src -> dst) retry budget has been exhausted.
  [[nodiscard]] bool link_dead(int src, int dst) const {
    return dead_links_.contains({src, dst});
  }
  void mark_link_dead(int src, int dst) {
    if (dead_links_.insert({src, dst}).second) ++stats_.links_dead;
  }

  /// Retransmit-buffer slot for deliveries damaged in flight, one per
  /// receiving rank (the upper layer NACKs immediately after the
  /// damaged receive, so one slot suffices).
  [[nodiscard]] RetransmitStash& stash(int dst_rank) {
    return stash_.at(static_cast<std::size_t>(dst_rank));
  }

  /// Retransmission timer for attempt @p attempt on (src, dst, seq):
  /// exponential backoff with seeded jitter. Exposed for tests.
  [[nodiscard]] double rto(int src, int dst, std::uint64_t seq,
                           int attempt) const;

 private:
  /// Per-directed-link congestion/RTT state (clocked transports).
  struct CcState {
    bool seeded = false;   ///< true once the first RTT sample landed
    double srtt = 0.0;     ///< smoothed RTT (RFC 6298)
    double rttvar = 0.0;   ///< RTT variance estimate
    double cwnd = 0.0;     ///< congestion window, frames
    double ssthresh = 0.0; ///< slow-start threshold, frames
    /// ACK return times of frames still occupying the window.
    std::multiset<double> inflight;
  };

  [[nodiscard]] std::uint64_t next_seq(int src, int dst) {
    return seq_[{src, dst}]++;
  }

  CcState& cc_state(int a, int b);
  void rtt_sample(CcState& cc, double sample);
  void cc_on_loss(CcState& cc);
  void cc_on_ack(CcState& cc);

  /// RTO of attempt @p attempt under the configured transport:
  /// kAdaptive derives the base from SRTT/RTTVAR (nominal-RTT fallback
  /// from @p prof before the first sample) and backs off uncapped
  /// (Karn); the other modes use the fixed rto() ladder.
  [[nodiscard]] double transport_rto(const CcState& cc,
                                     const net::NetworkProfile& prof, int a,
                                     int b, std::uint64_t seq,
                                     int attempt) const;

  Delivery deliver_clocked(Delivery out, int src, int dst, std::size_t bytes,
                           double send_time, bool frame_checksummed);
  Delivery deliver_routed(Delivery out, int src, int dst, std::size_t bytes,
                          double send_time, bool frame_checksummed,
                          const net::RelayPolicy& relay);

  Config config_;
  net::Fabric* fabric_;
  ReliabilityStats stats_;
  /// Per-link ARQ sequence counters (send side).
  std::map<std::pair<int, int>, std::uint64_t> seq_;
  /// Per-link congestion-control state (clocked transports and routed
  /// hops; relay hops are keyed by negative hop coordinates).
  std::map<std::pair<int, int>, CcState> cc_;
  /// Links whose retry budget has been exhausted.
  std::set<std::pair<int, int>> dead_links_;
  std::vector<RetransmitStash> stash_;
};

}  // namespace emc::reliable
