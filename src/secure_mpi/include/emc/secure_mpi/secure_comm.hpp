// Encrypted MPI communication — the paper's core contribution (§IV).
//
// SecureComm wraps a plain MiniMPI communicator and encrypts every
// payload with AES-GCM under a user-selectable cryptographic provider.
// Framing per message (Fig. 1): a fresh 12-byte nonce, the ciphertext,
// and the 16-byte authentication tag — 28 bytes of wire expansion.
// Collectives follow Algorithm 1: encrypt each outgoing block with a
// fresh nonce, run the ordinary collective on nonce||ct||tag blocks,
// decrypt each received block. Decryption for non-blocking receives
// happens inside wait(), preserving the non-blocking property.
//
// Inside the simulation, seal/open really execute on the host and
// their measured wall time is charged to the calling rank's virtual
// clock, so encryption cost and network cost compose exactly as they
// would on a real cluster.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "emc/crypto/provider.hpp"
#include "emc/mpi/comm.hpp"
#include "emc/secure_mpi/pipeline.hpp"

namespace emc::keys {
class LinkKeyring;
}  // namespace emc::keys

namespace emc::secure {

/// Authentication failure on received data (tampering or corruption).
struct IntegrityError : std::runtime_error {
  explicit IntegrityError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Fail-closed guard against nonce reuse: thrown by a seal once the
/// per-key AEAD invocation count reaches the configured rekey
/// threshold. AES-GCM security collapses on a repeated (key, nonce)
/// pair, so the communicator refuses to encrypt rather than risk it —
/// the application must rekey() (e.g. via ft::shrink_secure) to
/// continue.
struct NonceExhaustedError : std::runtime_error {
  NonceExhaustedError(std::uint64_t used_, std::uint64_t threshold_)
      : std::runtime_error(
            "nonce space exhausted: " + std::to_string(used_) +
            " AEAD invocations under one key reached the rekey threshold "
            "of " + std::to_string(threshold_) +
            "; rekey() before sending more"),
        used(used_),
        threshold(threshold_) {}
  std::uint64_t used;
  std::uint64_t threshold;
};

/// How per-message nonces are produced.
enum class NonceMode {
  kRandom,   ///< uniformly random 12 bytes (the paper's RAND_bytes(12))
  kCounter,  ///< rank || message counter (deterministic, still unique)
};

/// Analytic crypto timing: virtual seconds a seal/open costs as an
/// affine function of the plaintext size (per_op + bytes * per_byte).
/// When installed on SecureConfig::cost_model it replaces wall-clock
/// charging: the crypto still really executes (ciphertexts, tags and
/// integrity semantics are unchanged) but the virtual clock advances
/// by the model instead of the measured host time, making encrypted
/// timelines fully deterministic — the mode traced benchmark runs use
/// so same-seed traces are byte-identical. Model values are virtual
/// seconds of the simulated CPU; WorldConfig::cpu_scale is NOT
/// applied on top.
struct CryptoCostModel {
  double seal_per_op = 0.0;    ///< fixed cost per encryption
  double seal_per_byte = 0.0;  ///< per plaintext byte encrypted
  double open_per_op = 0.0;    ///< fixed cost per decryption attempt
  double open_per_byte = 0.0;  ///< per plaintext byte decrypted
};

/// Trust model for intermediate hops of multi-hop routed paths
/// (ClusterConfig::routes). Irrelevant on direct links.
enum class RelayTrust : std::uint8_t {
  /// The paper's implicit model, made explicit: every relay terminates
  /// the cryptographic session — it decrypts, re-authenticates, and
  /// re-encrypts the payload. Corruption is caught per hop (cheap
  /// recovery), but the relay operator sees plaintext: every crossing
  /// is counted as an exposure event (see exposure_events()).
  kHopTrusted,
  /// End-to-end sealing: relays forward the sealed envelope untouched.
  /// No plaintext exposure (exposure_events() == 0) and no per-relay
  /// crypto surcharge, but in-flight corruption rides to the
  /// destination and recovery costs a full end-to-end NACK round trip.
  kEndToEnd,
};

struct SecureConfig {
  /// Registry name of the cryptographic library tier to use.
  std::string provider = "boringssl-sim";

  /// Symmetric key; defaults to the hardcoded 256-bit experiment key
  /// (the paper leaves key distribution as future work).
  // EMC_LINT_ALLOW(secret-wipe): must stay an aggregate (designated
  // init everywhere); the owning SecureComm scrubs its copy on
  // destruction and the AEAD key schedules wipe themselves.
  Bytes key = crypto::demo_key(32);

  NonceMode nonce_mode = NonceMode::kRandom;

  /// Extension beyond the paper (its footnote 1 scopes replay attacks
  /// out): when true, every message authenticates a context of
  /// (source, destination, tag, per-channel sequence number) as AAD,
  /// so replayed, re-routed, or re-ordered ciphertexts are rejected.
  bool bind_context = false;

  /// Sliding acceptance window over the per-channel sequence numbers
  /// (requires bind_context). 0 keeps the strict in-order behaviour:
  /// exactly the next sequence number authenticates. A window of W
  /// additionally (a) accepts a message up to W-1 sequence numbers
  /// ahead, so the channel recovers after dropped or damaged traffic,
  /// and (b) trial-authenticates up to W numbers behind to classify a
  /// duplicate as a replay (rejected, counted in replays_rejected).
  std::size_t replay_window = 0;

  /// Fail-closed nonce-exhaustion guard: a seal throws
  /// NonceExhaustedError once this many AEAD invocations have run
  /// under the current key (counter and random mode alike — the
  /// NIST SP 800-38D random-nonce bound is 2^32 invocations, which is
  /// the default). rekey() resets the count. 0 disables the guard.
  std::uint64_t nonce_rekey_threshold = std::uint64_t{1} << 32;

  /// When true (default), the wall-clock cost of every seal/open is
  /// charged to the rank's virtual clock. Disable only in functional
  /// tests that want timing-independent determinism.
  bool charge_crypto = true;

  /// Optional analytic crypto timing (see CryptoCostModel). Only
  /// meaningful while charge_crypto is true; ignored otherwise.
  std::optional<CryptoCostModel> cost_model;

  /// What multi-hop relays do with sealed traffic (hop-trusted
  /// decrypt/re-encrypt vs end-to-end forwarding). Installed on the
  /// wrapped Comm's relay policy at construction; with a cost_model,
  /// hop-trusted relays additionally pay one open + one seal of
  /// analytic time per payload per hop.
  RelayTrust relay_trust = RelayTrust::kHopTrusted;

  /// CryptMPI-style chunked encrypt->send pipelining for large
  /// point-to-point messages (docs/PIPELINE.md). Requires a
  /// cost_model while charge_crypto is on: helper cores are not
  /// simulated processes, so their per-chunk crypto can only be
  /// billed analytically (validated at construction).
  PipelineConfig pipeline;

  /// Per-link key lifecycle (docs/RESILIENCE.md): when set,
  /// point-to-point traffic is sealed under the keyring's per-link
  /// forward-secure epoch keys (installed by keys::link_handshake)
  /// instead of the group key; collectives stay on the group key. The
  /// keyring is strictly per rank — every simulated rank must hold its
  /// OWN LinkKeyring (sharing one across ranks would merge their
  /// ratchet states). Link ids are WORLD ranks, so keyrings survive
  /// communicator shrinks. Sealing to a link with no installed chain
  /// throws keys::KeyringError; to a quarantined link,
  /// keys::LinkQuarantined — both fail closed. Instead of
  /// NonceExhaustedError, a keyring link that reaches
  /// nonce_rekey_threshold seals under one key ratchets forward
  /// in-place and traffic continues (counters().link_ratchets).
  std::shared_ptr<keys::LinkKeyring> keyring;
};

/// Cumulative per-rank crypto accounting (drives the overhead
/// decompositions of Figs. 7/8/14/15).
struct CryptoCounters {
  std::uint64_t messages_sealed = 0;
  std::uint64_t bytes_sealed = 0;    ///< plaintext bytes through seal
  std::uint64_t messages_opened = 0;
  std::uint64_t bytes_opened = 0;    ///< plaintext bytes out of open
  double seal_seconds = 0.0;         ///< measured host time in seal
  double open_seconds = 0.0;         ///< measured host time in open

  // Fault detections (each increments exactly once per IntegrityError).
  std::uint64_t auth_failures = 0;    ///< tag mismatch: tampered/spliced
  std::uint64_t length_failures = 0;  ///< wire shorter than nonce+tag framing
  std::uint64_t replays_rejected = 0; ///< repeated re-injection of a delivered seq

  // Benign-anomaly accounting, kept strictly apart from the attack
  // counters above: a fabric-duplicated frame authenticates as an
  // already-delivered sequence number exactly once and is absorbed
  // silently (the receive loops for the next message). Only a second
  // copy of the same sequence number is classified as a replay attack
  // and rejected.
  std::uint64_t duplicates_suppressed = 0;  ///< first extra copy of a seq

  // End-to-end recovery accounting (reliability layer enabled): an
  // authentication failure whose damage the ARQ stash can explain is
  // NACKed and retransmitted instead of thrown.
  std::uint64_t nacks_sent = 0;             ///< integrity NACKs issued
  std::uint64_t retransmits_recovered = 0;  ///< opens salvaged by retransmit

  /// Times rekey() installed a fresh session key (ft recovery or
  /// nonce-threshold rotation).
  std::uint64_t rekeys = 0;

  // Per-link key-lifecycle accounting (SecureConfig::keyring;
  // mirrors of the keyring's own counters scoped to this SecureComm).
  std::uint64_t link_ratchets = 0;  ///< epoch advances triggered by seals
  std::uint64_t grace_opens = 0;    ///< opens under a superseded epoch
  std::uint64_t catchup_opens = 0;  ///< opens that advanced local state

  // Pipelined-transport accounting (PipelineConfig; docs/PIPELINE.md).
  // Chunk seals/opens also count in messages_sealed/opened and the
  // byte totals above; the *_seconds here are analytic virtual
  // seconds billed to helper cores, kept apart from the host-measured
  // seal_seconds/open_seconds (helper cores never run wall-clock
  // measurement — determinism, EMC-DET-CLOCK).
  std::uint64_t messages_pipelined = 0;  ///< messages sent chunked
  std::uint64_t chunks_sealed = 0;
  std::uint64_t chunks_opened = 0;
  double helper_seal_seconds = 0.0;   ///< analytic helper-core seal time
  double helper_open_seconds = 0.0;   ///< analytic helper-core open time
  /// Virtual seconds the main timeline spent blocked on helper-core
  /// crypto (the unhidden tail of pipelined messages).
  double pipeline_stall_seconds = 0.0;

  [[nodiscard]] std::uint64_t faults_detected() const noexcept {
    return auth_failures + length_failures + replays_rejected;
  }
};

class SecureComm final : public mpi::Communicator {
 public:
  /// @p comm must outlive this object.
  SecureComm(mpi::Comm& comm, const SecureConfig& config);

  [[nodiscard]] int rank() const override { return comm_->rank(); }
  [[nodiscard]] int size() const override { return comm_->size(); }

  void send(BytesView data, int dst, int tag) override;
  mpi::Status recv(MutBytes buf, int src, int tag) override;
  mpi::Request isend(BytesView data, int dst, int tag) override;
  mpi::Request irecv(MutBytes buf, int src, int tag) override;
  mpi::Status wait(mpi::Request& request) override;
  std::vector<mpi::Status> waitall(std::span<mpi::Request> requests) override;
  mpi::Status sendrecv(BytesView senddata, int dst, int sendtag,
                       MutBytes recvbuf, int src, int recvtag) override;

  void barrier() override;
  void bcast(MutBytes data, int root) override;
  void allgather(BytesView sendpart, MutBytes recvall) override;
  void alltoall(BytesView sendbuf, MutBytes recvbuf,
                std::size_t block) override;
  void alltoallv(BytesView sendbuf, std::span<const std::size_t> sendcounts,
                 std::span<const std::size_t> senddispls, MutBytes recvbuf,
                 std::span<const std::size_t> recvcounts,
                 std::span<const std::size_t> recvdispls) override;
  void gather(BytesView sendpart, MutBytes recvall, int root) override;
  void scatter(BytesView sendall, MutBytes recvpart, int root) override;

  /// The wrapped plain communicator.
  [[nodiscard]] mpi::Comm& plain() { return *comm_; }

  /// Plaintext-exposure events at untrusted relays since this
  /// SecureComm attached: under kHopTrusted, one event per relay node
  /// each delivered payload crossed (world-wide — the fabric counts
  /// crossings, this object scopes them to its lifetime); exactly 0
  /// under kEndToEnd, where relays only ever see sealed bytes.
  [[nodiscard]] std::uint64_t exposure_events() const {
    if (config_.relay_trust == RelayTrust::kEndToEnd) return 0;
    return comm_->world().fabric().relay_exposures() - exposure_base_;
  }

  /// Scrubs the session-key copy held by the effective config; the
  /// provider-side key schedules wipe themselves (EMC-SECRET-WIPE).
  ~SecureComm() { secure_zero(config_.key); }

  /// Effective configuration (the key reflects the latest rekey).
  [[nodiscard]] const SecureConfig& config() const noexcept {
    return config_;
  }

  /// Installs @p new_key as the session key and restarts every
  /// key-scoped stream from zero: the nonce counter, the per-channel
  /// send/recv sequence numbers, and the replay-window bookkeeping.
  /// Used after ft recovery (the shrunken communicator must never
  /// extend the old key's nonce stream) and for nonce-threshold
  /// rotation. Collective in spirit: every rank must rekey with the
  /// same key before traffic resumes.
  void rekey(BytesView new_key);

  [[nodiscard]] const CryptoCounters& counters() const noexcept {
    return counters_;
  }
  void reset_counters() noexcept { counters_ = {}; }

  /// Wire size of an encrypted message carrying @p payload bytes.
  [[nodiscard]] static constexpr std::size_t wire_size(
      std::size_t payload) noexcept {
    return payload + crypto::kWireOverhead;
  }

 private:
  /// nonce || ct || tag for @p pt, written at @p out (wire_size(pt)),
  /// authenticating @p aad (empty unless context binding is on).
  /// @p peer (comm-local, >= 0 for point-to-point traffic) selects the
  /// keyring's per-link epoch key when a keyring is configured; -1
  /// (collectives) always seals under the group key.
  void seal_into(BytesView pt, MutBytes out, BytesView aad = {},
                 int peer = -1);

  /// Inverse of seal_into; throws IntegrityError on tag failure.
  /// @p wire is nonce||ct||tag; @p out receives wire.size()-28 bytes.
  void open_into(BytesView wire, MutBytes out, BytesView aad = {});

  /// Non-throwing open: true and plaintext in @p out on success.
  /// Charges crypto time; the caller accounts accepted messages. For
  /// keyring links (@p peer >= 0), trial-opens the link's epoch
  /// candidates (current, ahead up to max_skew, grace) — each trial is
  /// one charged open — and reports the success to the keyring.
  [[nodiscard]] bool try_open_into(BytesView wire, MutBytes out,
                                   BytesView aad, int peer = -1);

  /// True when @p peer's point-to-point traffic uses the keyring.
  [[nodiscard]] bool keyring_link(int peer) const noexcept;

  /// Hop-trusted routes only: counts the re-seal every relay on the
  /// way to @p peer performs under the group key against the
  /// nonce-exhaustion budget, throwing NonceExhaustedError BEFORE the
  /// payload leaves if the route's re-seals would overrun it (fail
  /// closed at the sender, not at an unaccountable relay). No-op for
  /// end-to-end trust, unrouted peers, collectives (@p peer < 0), and
  /// keyring links (their per-link budget rotates online instead).
  void charge_relay_reseals(int peer);

  /// Keyring seal setup for one message/chunk to @p peer: fetches the
  /// epoch seal key (ratcheting in place on budget/interval triggers —
  /// billed on the key_mgmt lane), writes the rank||seq nonce (the two
  /// directions of a link share the epoch key; the rank prefix keeps
  /// their nonce streams disjoint), returns the AEAD to seal under.
  const crypto::AeadKey* keyring_seal(int peer,
                                      std::uint8_t out[crypto::kGcmNonceBytes]);

  /// Keyring open: trial-opens the link's epoch candidates (current,
  /// ahead up to max_skew, grace) and reports a success to the
  /// keyring. When @p charged, every trial is one charged open
  /// (point-to-point path); uncharged trials are for pipelined chunks,
  /// whose time the helper cores bill.
  [[nodiscard]] bool keyring_open(int peer, BytesView wire, BytesView aad,
                                  MutBytes out, bool charged);

  /// Validates a received wire length BEFORE any size arithmetic:
  /// anything outside [kWireOverhead, wire_size(capacity)] throws
  /// IntegrityError (counted in length_failures). Returns the
  /// plaintext length.
  std::size_t checked_pt_len(std::size_t wire_bytes, std::size_t capacity);

  /// Shared completion of a point-to-point receive: length check,
  /// open (with the sliding replay window when configured), status
  /// rewrite to plaintext size. Returns std::nullopt when the message
  /// was a benign fabric duplicate absorbed by the window — the caller
  /// must loop and receive the next message. When the reliability
  /// layer is on, an authentication failure that the ARQ stash can
  /// explain is NACKed and retransmitted in place (@p wire_buf is
  /// rewritten with the clean copy) instead of thrown. When @p
  /// became_chunked is non-null and an ARQ recovery reveals the clean
  /// frame is actually a pipelined chunk (the damage had destroyed
  /// the magic), it is set and std::nullopt returned so the caller
  /// can re-dispatch to the chunked path.
  std::optional<mpi::Status> open_p2p(MutBytes wire_buf,
                                      const mpi::Status& wire_status,
                                      MutBytes user,
                                      bool* became_chunked = nullptr);

  // ------------------------------------------------- chunked pipeline
  // (docs/PIPELINE.md; all billing below is analytic — helper cores
  // never measure host time, keeping src/secure_mpi EMC-DET-CLOCK
  // clean without suppressions.)

  /// True when a payload of @p bytes takes the pipelined path.
  [[nodiscard]] bool pipeline_engages(std::size_t bytes) const noexcept;

  /// Wire capacity a receive buffer needs so any frame — unchunked
  /// message or single pipelined chunk — of a payload up to
  /// @p payload bytes fits.
  [[nodiscard]] static constexpr std::size_t recv_wire_capacity(
      std::size_t payload) noexcept {
    return kPipeHeaderBytes + wire_size(payload);
  }

  /// Schedules one chunk's seal/open of @p bytes plaintext on the
  /// earliest-free helper core, no earlier than @p ready (the chunk's
  /// data-available time). Returns the completion time and records a
  /// crypto_helper trace span on the core's lane. With helper_cores
  /// == 0 (or crypto charging off) the cost is billed serially on the
  /// main clock instead and now() is returned.
  double helper_crypto(std::size_t bytes, bool encrypt);

  /// Seals @p pt as the chunk AEAD frame at @p out (wire_size(pt)
  /// bytes, already behind the plaintext header) and returns the
  /// helper-core completion time — the chunk's wire_not_before.
  /// Draws the nonce from the sanctioned stream (per-chunk exhaustion
  /// guard; keyring links use their epoch key and rank||seq stream)
  /// and bills analytically via helper_crypto.
  double seal_chunk(BytesView pt, MutBytes out, BytesView aad, int peer);

  /// Sender side of the pipeline: chunk, seal on helper cores, send
  /// each frame with its seal-completion wire gate.
  void send_pipelined(BytesView data, int dst, int tag);

  /// Dispatches one received frame: pipelined chunk frames (magic +
  /// consistent header) go to open_pipelined, everything else to
  /// open_p2p; an ARQ recovery that flips the classification
  /// re-dispatches. Same nullopt contract as open_p2p.
  std::optional<mpi::Status> open_any(MutBytes wire_buf,
                                      const mpi::Status& wire_status,
                                      MutBytes user);

  /// Receiver side of the pipeline, entered with the first chunk
  /// frame of a message already received: receives the remaining
  /// frames, opens every chunk on helper cores while later chunks are
  /// still on the wire, reassembles into @p user, and stalls only for
  /// crypto the wire did not hide. Returns std::nullopt when the
  /// frame was a stale duplicate of an already-delivered message.
  std::optional<mpi::Status> open_pipelined(MutBytes first_frame,
                                            const mpi::Status& wire_status,
                                            MutBytes user);

  /// Context AAD helpers (replay-protection extension). The 28-byte
  /// AAD layout is src(4) || dst(4) || tag(4) || kind(8) || seq(8).
  [[nodiscard]] Bytes p2p_aad(int src, int dst, int tag,
                              std::uint64_t seq) const;
  /// Next sequence number for the (peer, tag) send channel.
  [[nodiscard]] std::uint64_t next_send_seq(int dst, int tag);

  /// Runs @p work (a seal when @p encrypt, else an open of @p bytes
  /// plaintext bytes) and bills its cost to the virtual clock when
  /// charge_crypto is on — measured wall time by default, the analytic
  /// cost_model when one is configured. Tags the billed interval for
  /// the tracing layer (crypto_encrypt / crypto_decrypt). Returns the
  /// measured host seconds.
  double charged_crypto(const std::function<void()>& work, std::size_t bytes,
                        bool encrypt);

  void next_nonce(std::uint8_t out[crypto::kGcmNonceBytes]);

  mpi::Comm* comm_;
  SecureConfig config_;
  crypto::AeadKeyPtr key_;
  CryptoCounters counters_;
  std::uint64_t nonce_counter_ = 0;
  // Replay-protection channel counters (only used with bind_context).
  std::map<std::pair<int, int>, std::uint64_t> send_seq_;
  std::map<std::pair<int, int>, std::uint64_t> recv_seq_;
  /// Extra copies seen per already-delivered (src, tag, seq): copy 1
  /// is a benign fabric duplicate, copy 2+ is a replay attack.
  std::map<std::tuple<int, int, std::uint64_t>, std::uint32_t> extra_copies_;
  std::uint64_t coll_seq_ = 0;
  // Pipelined-transport state (all key-scoped; rekey() resets it).
  // helper_free_[c] is helper core c's next-free virtual time —
  // scheduling always picks the earliest-free (lowest-index) core, a
  // pure function of the simulated timeline (EMC-DET).
  std::vector<double> helper_free_;
  std::uint64_t pipe_msg_id_ = 0;  ///< next pipelined send's message id
  /// Per-(src, tag) next-expected pipelined message id; frames of
  /// already-delivered ids are absorbed as benign duplicates.
  std::map<std::pair<int, int>, std::uint64_t> pipe_recv_next_;
  /// Fabric-wide relay-exposure count at attach; exposure_events()
  /// reports the delta so stacked experiments don't bleed into each
  /// other.
  std::uint64_t exposure_base_ = 0;
};

/// Convenience: run a world where every rank gets a SecureComm.
double run_secure_world(const mpi::WorldConfig& world_config,
                        const SecureConfig& secure_config,
                        const std::function<void(SecureComm&)>& body);

}  // namespace emc::secure
