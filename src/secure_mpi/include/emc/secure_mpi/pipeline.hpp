// Chunked encrypt->send pipelining, the CryptMPI design (arXiv
// 2010.06471, modelled in arXiv 2010.06139): a large message is split
// into fixed-size chunks, each sealed independently on a simulated
// helper crypto core while earlier chunks are already on the wire, so
// encryption cost hides behind transmission instead of adding to it.
// The receiver opens chunk k on its own helper cores while chunk k+1
// is still in flight.
//
// This header holds the configuration knob (PipelineConfig, installed
// on SecureConfig::pipeline) and the chunk wire framing shared by the
// sender, the receiver, and the tests. The full design — nonce
// derivation, helper-core billing rules, interaction with the ARQ
// layer — is documented in docs/PIPELINE.md.
#pragma once

#include <cstddef>
#include <cstdint>

#include "emc/common/bytes.hpp"

namespace emc::secure {

/// Knobs of the chunked encrypt->send pipeline. Disabled by default:
/// every existing path replays bit-exact. When enabled, a
/// point-to-point payload of more than max(min_bytes, chunk_bytes)
/// bytes is split into ceil(size / chunk_bytes) chunks, each framed
/// as header || nonce || ct || tag and sent eagerly (the pipeline
/// supersedes the RTS/CTS rendezvous — a handshake would serialize
/// exactly the overlap it exists to create). Messages at or below the
/// threshold, and all collectives, use the unchunked path unchanged.
struct PipelineConfig {
  bool enabled = false;

  /// Plaintext bytes per chunk (the last chunk takes the remainder).
  /// Must be >= 1 when enabled.
  std::size_t chunk_bytes = std::size_t{64} * 1024;

  /// Simulated helper crypto cores per rank. Each seal/open of a
  /// chunk is billed to the earliest-free core as analytic virtual
  /// time running concurrently with the rank's own timeline; the rank
  /// only stalls when it needs a result a helper has not finished
  /// (docs/PIPELINE.md). 0 bills chunk crypto serially on the rank
  /// itself (chunked framing without overlap — the degenerate
  /// baseline bench_pipeline compares against).
  int helper_cores = 2;

  /// Smallest payload the pipeline engages for. Chunking a message
  /// that fits one chunk only adds header bytes, so the effective
  /// threshold is max(min_bytes, chunk_bytes + 1).
  std::size_t min_bytes = std::size_t{128} * 1024;
};

/// First word of every chunk frame. The leading byte 0xEC can never
/// collide with the first byte of an unchunked wire message: those
/// start with the 12-byte nonce, whose first byte in kCounter mode is
/// the top byte of the big-endian rank (0 for any world smaller than
/// 2^24 ranks). In kRandom mode a collision of the full word is a
/// 2^-32 event per message — and a misclassified frame still fails
/// authentication, because chunked and unchunked AADs differ; it can
/// produce a spurious IntegrityError, never a wrong plaintext.
inline constexpr std::uint32_t kPipeMagic = 0xEC7C6E01u;

/// Frame layout: magic(4) || index(4) || count(4) || chunk_len(4) ||
/// msg_id(8) || offset(8), all big-endian, followed by the standard
/// nonce || ct || tag AEAD frame of the chunk. The header travels in
/// plaintext (the receiver needs it to pick the AAD before opening)
/// but is authenticated: it is the prefix of every chunk's AAD, so
/// any tampered field fails the tag check.
inline constexpr std::size_t kPipeHeaderBytes = 32;

/// Decoded chunk header.
struct PipeChunkHeader {
  std::uint64_t msg_id = 0;   ///< sender-scoped pipelined-message id
  std::uint32_t index = 0;    ///< chunk number, < count
  std::uint32_t count = 0;    ///< chunks in the message, >= 1
  std::uint32_t chunk_len = 0;///< plaintext bytes in this chunk
  std::uint64_t offset = 0;   ///< plaintext offset within the message
};

inline void store_pipe_header(std::uint8_t* out, const PipeChunkHeader& h) {
  store_be32(out, kPipeMagic);
  store_be32(out + 4, h.index);
  store_be32(out + 8, h.count);
  store_be32(out + 12, h.chunk_len);
  store_be64(out + 16, h.msg_id);
  store_be64(out + 24, h.offset);
}

[[nodiscard]] inline PipeChunkHeader load_pipe_header(
    const std::uint8_t* in) noexcept {
  PipeChunkHeader h;
  h.index = load_be32(in + 4);
  h.count = load_be32(in + 8);
  h.chunk_len = load_be32(in + 12);
  h.msg_id = load_be64(in + 16);
  h.offset = load_be64(in + 24);
  return h;
}

}  // namespace emc::secure
