// Group key establishment over MiniMPI — the key-distribution
// mechanism the paper's §IV explicitly leaves as future work,
// implemented here as an extension:
//
//   1. every rank generates a Diffie-Hellman keypair and allgathers
//      the public keys,
//   2. rank 0 draws a fresh session key and wraps it for each peer
//      with AES-GCM under HKDF(pairwise DH secret),
//   3. every rank unwraps, and a key-confirmation broadcast
//      (HMAC over a fixed label) proves group agreement.
//
// The exchange runs over the *plain* communicator (that is the
// bootstrap problem key distribution solves); the returned key is then
// used to construct SecureComm. All heavy modular exponentiation is
// charged to the virtual clock, so the handshake cost is measurable
// in simulated time.
#pragma once

#include <cstdint>

#include "emc/crypto/dh.hpp"
#include "emc/mpi/comm.hpp"

namespace emc::secure {

struct KeyExchangeConfig {
  /// Provider used for the key-wrap AEAD (any registered tier).
  std::string wrap_provider = "boringssl-sim";
  /// Derived session-key length in bytes (16 or 32 for AES-GCM).
  std::size_t key_bytes = 32;
  /// Seed for the deterministic per-rank randomness (reproducibility;
  /// a production system would use an OS CSPRNG).
  std::uint64_t seed = 0x5eed;
};

/// Thrown when unwrap or key confirmation fails.
struct KeyExchangeError : std::runtime_error {
  explicit KeyExchangeError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Establishes one shared session key across all ranks of @p comm.
/// Collective; every rank must pass identical @p group and @p config.
/// Returns the session key (identical on every rank).
[[nodiscard]] Bytes establish_group_key(mpi::Comm& comm,
                                        const crypto::DhGroup& group,
                                        const KeyExchangeConfig& config = {});

}  // namespace emc::secure
