#include "emc/secure_mpi/key_exchange.hpp"

#include "emc/common/rng.hpp"
#include "emc/crypto/provider.hpp"
#include "emc/crypto/sha256.hpp"
#include "emc/keys/derive.hpp"

namespace emc::secure {

namespace {

constexpr int kWrapTag = 901;

}  // namespace

Bytes establish_group_key(mpi::Comm& comm, const crypto::DhGroup& group,
                          const KeyExchangeConfig& config) {
  const int rank = comm.rank();
  const auto n = static_cast<std::size_t>(comm.size());
  const std::size_t width = group.byte_length();
  const crypto::Provider& provider = crypto::provider(config.wrap_provider);

  // 1. Keypair + allgather of public keys (charged compute).
  crypto::DhKeyPair pair;
  comm.process().charge([&] {
    pair = crypto::dh_generate(
        group, config.seed * 1000003 + static_cast<std::uint64_t>(rank));
  });
  const Bytes my_public = pair.public_key.to_bytes(width);
  Bytes all_publics(width * n);
  comm.allgather(my_public, all_publics);

  // 2. Rank 0 wraps a fresh session key for every peer. The wrap and
  // the confirmation tag both come from keys::derive — the one
  // audited derivation path shared with the per-link handshake and
  // the recovery rekey.
  if (rank == 0) {
    Bytes session_key(config.key_bytes);
    Xoshiro256 session_rng(config.seed ^ 0xA11CE);
    session_rng.fill(session_key);

    for (std::size_t peer = 1; peer < n; ++peer) {
      Bytes wire;
      comm.process().charge([&] {
        const crypto::BigUint peer_public = crypto::BigUint::from_bytes(
            BytesView(all_publics).subspan(peer * width, width));
        Bytes secret =
            crypto::dh_shared_secret(group, pair.private_key, peer_public);
        wire = keys::wrap_key(provider, secret, session_key);
        secure_zero(secret);
      });
      comm.send(wire, static_cast<int>(peer), kWrapTag);
    }
    pair.private_key.wipe();

    // 3. Key confirmation.
    Bytes confirmation = keys::confirm_tag(session_key, {});
    comm.bcast(confirmation, 0);
    return session_key;
  }

  Bytes wire(keys::wrapped_key_bytes(config.key_bytes));
  comm.recv(wire, 0, kWrapTag);
  Bytes session_key;
  comm.process().charge([&] {
    const crypto::BigUint root_public = crypto::BigUint::from_bytes(
        BytesView(all_publics).first(width));
    Bytes secret =
        crypto::dh_shared_secret(group, pair.private_key, root_public);
    std::optional<Bytes> unwrapped =
        keys::unwrap_key(provider, secret, wire, config.key_bytes);
    secure_zero(secret);
    if (!unwrapped) {
      throw KeyExchangeError(
          "session-key unwrap failed (tampered handshake?)");
    }
    session_key = std::move(*unwrapped);
  });
  pair.private_key.wipe();

  Bytes confirmation(crypto::kSha256Digest);
  comm.bcast(confirmation, 0);
  const Bytes expected = keys::confirm_tag(session_key, {});
  if (!ct_equal(confirmation, expected)) {
    throw KeyExchangeError("key confirmation mismatch");
  }
  return session_key;
}

}  // namespace emc::secure
