#include "emc/secure_mpi/key_exchange.hpp"

#include "emc/common/rng.hpp"
#include "emc/crypto/provider.hpp"
#include "emc/crypto/sha256.hpp"

namespace emc::secure {

namespace {

constexpr int kWrapTag = 901;
const char* kHkdfSalt = "emc-mpi-key-exchange-v1";
const char* kConfirmLabel = "emc-key-confirmation";

Bytes wrap_key_for_peer(const crypto::Provider& provider,
                        BytesView pairwise_secret, BytesView session_key) {
  Bytes kek = crypto::hkdf_sha256(
      pairwise_secret, bytes_of(kHkdfSalt), bytes_of("key-wrap"), 32);
  const crypto::AeadKeyPtr aead = provider.make_key(kek);
  secure_zero(kek);
  Bytes wire(crypto::kGcmNonceBytes + session_key.size() +
             crypto::kGcmTagBytes);
  // EMC_LINT_ALLOW(nonce-source): one wrap per (handshake, peer) under
  // a KEK that is freshly derived from the pairwise DH secret, so the
  // random draw can never repeat under the same key.
  random_nonce(MutBytes(wire.data(), crypto::kGcmNonceBytes));
  aead->seal(BytesView(wire.data(), crypto::kGcmNonceBytes), {}, session_key,
             MutBytes(wire).subspan(crypto::kGcmNonceBytes));
  return wire;
}

Bytes unwrap_key(const crypto::Provider& provider, BytesView pairwise_secret,
                 BytesView wire, std::size_t key_bytes) {
  Bytes kek = crypto::hkdf_sha256(
      pairwise_secret, bytes_of(kHkdfSalt), bytes_of("key-wrap"), 32);
  const crypto::AeadKeyPtr aead = provider.make_key(kek);
  secure_zero(kek);
  Bytes session_key(key_bytes);
  const bool ok =
      aead->open(wire.first(crypto::kGcmNonceBytes), {},
                 wire.subspan(crypto::kGcmNonceBytes), session_key);
  if (!ok) {
    throw KeyExchangeError("session-key unwrap failed (tampered handshake?)");
  }
  return session_key;
}

}  // namespace

Bytes establish_group_key(mpi::Comm& comm, const crypto::DhGroup& group,
                          const KeyExchangeConfig& config) {
  const int rank = comm.rank();
  const auto n = static_cast<std::size_t>(comm.size());
  const std::size_t width = group.byte_length();
  const crypto::Provider& provider = crypto::provider(config.wrap_provider);

  // 1. Keypair + allgather of public keys (charged compute).
  crypto::DhKeyPair pair;
  comm.process().charge([&] {
    pair = crypto::dh_generate(
        group, config.seed * 1000003 + static_cast<std::uint64_t>(rank));
  });
  const Bytes my_public = pair.public_key.to_bytes(width);
  Bytes all_publics(width * n);
  comm.allgather(my_public, all_publics);

  // 2. Rank 0 wraps a fresh session key for every peer.
  if (rank == 0) {
    Bytes session_key(config.key_bytes);
    Xoshiro256 session_rng(config.seed ^ 0xA11CE);
    session_rng.fill(session_key);

    for (std::size_t peer = 1; peer < n; ++peer) {
      Bytes wire;
      comm.process().charge([&] {
        const crypto::BigUint peer_public = crypto::BigUint::from_bytes(
            BytesView(all_publics).subspan(peer * width, width));
        Bytes secret =
            crypto::dh_shared_secret(group, pair.private_key, peer_public);
        wire = wrap_key_for_peer(provider, secret, session_key);
        secure_zero(secret);
      });
      comm.send(wire, static_cast<int>(peer), kWrapTag);
    }
    pair.private_key.wipe();

    // 3. Key confirmation.
    Bytes confirmation =
        crypto::hmac_sha256(session_key, bytes_of(kConfirmLabel));
    comm.bcast(confirmation, 0);
    return session_key;
  }

  Bytes wire(crypto::kGcmNonceBytes + config.key_bytes +
             crypto::kGcmTagBytes);
  comm.recv(wire, 0, kWrapTag);
  Bytes session_key;
  comm.process().charge([&] {
    const crypto::BigUint root_public = crypto::BigUint::from_bytes(
        BytesView(all_publics).first(width));
    Bytes secret =
        crypto::dh_shared_secret(group, pair.private_key, root_public);
    session_key = unwrap_key(provider, secret, wire, config.key_bytes);
    secure_zero(secret);
  });
  pair.private_key.wipe();

  Bytes confirmation(crypto::kSha256Digest);
  comm.bcast(confirmation, 0);
  const Bytes expected =
      crypto::hmac_sha256(session_key, bytes_of(kConfirmLabel));
  if (!ct_equal(confirmation, expected)) {
    throw KeyExchangeError("key confirmation mismatch");
  }
  return session_key;
}

}  // namespace emc::secure
