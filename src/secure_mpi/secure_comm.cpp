#include "emc/secure_mpi/secure_comm.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "emc/common/rng.hpp"
#include "emc/keys/keyring.hpp"
#include "emc/mpi/validate.hpp"
#include "emc/common/timer.hpp"

namespace emc::secure {

namespace {

using crypto::kGcmNonceBytes;
using crypto::kGcmTagBytes;
using crypto::kWireOverhead;

/// Request state for a non-blocking encrypted send: keeps the wire
/// buffer alive until completion (rendezvous references it in place).
struct SecureSendState final : mpi::detail::RequestState {
  Bytes wire;
  mpi::Request inner;
};

/// Request state for a non-blocking encrypted receive: the ciphertext
/// lands in `wire`; decryption into `user` happens inside wait().
/// `src`/`tag` are kept so wait() can re-post the inner receive after
/// absorbing a benign fabric duplicate.
struct SecureRecvState final : mpi::detail::RequestState {
  Bytes wire;
  MutBytes user;
  int src = mpi::kAnySource;
  int tag = mpi::kAnyTag;
  mpi::Request inner;
};

/// Request state for a non-blocking pipelined send. Every chunk was
/// already dispatched in isend (send_chunk never blocks — the sender
/// only pays per-chunk CPU overhead), so the request is born complete
/// and wait() just hands back the status.
struct SecurePipeSendState final : mpi::detail::RequestState {
  mpi::Status status;
};

/// A received frame is a pipelined chunk when it is long enough to
/// hold the chunk header plus a minimal AEAD frame and leads with the
/// magic (see kPipeMagic's collision analysis in pipeline.hpp).
bool looks_like_chunk(BytesView frame) {
  return frame.size() >= kPipeHeaderBytes + kWireOverhead &&
         load_be32(frame.data()) == kPipeMagic;
}

/// Pre-authentication header sanity: pure bounds checks against the
/// frame length and the receive capacity. Field integrity is enforced
/// later — the header is the AAD prefix of its chunk, so any tampered
/// field fails the tag.
bool pipe_header_plausible(const PipeChunkHeader& h, std::size_t frame_bytes,
                           std::size_t capacity) {
  return h.count >= 1 && h.index < h.count && h.offset <= capacity &&
         h.chunk_len <= capacity - h.offset &&
         frame_bytes == kPipeHeaderBytes + SecureComm::wire_size(h.chunk_len);
}

}  // namespace

SecureComm::SecureComm(mpi::Comm& comm, const SecureConfig& config)
    : comm_(&comm),
      config_(config),
      key_(crypto::make_aes_gcm(config.provider, config.key)) {
  if (config_.replay_window > 0 && !config_.bind_context) {
    throw std::invalid_argument(
        "SecureConfig: replay_window requires bind_context (the window "
        "slides over the authenticated per-channel sequence numbers)");
  }
  net::RelayPolicy relay;  // kEndToEnd: sealed forwarding, free relays
  if (config_.relay_trust == RelayTrust::kHopTrusted) {
    relay.hop_integrity = true;  // each hop re-verifies before re-sealing
    if (config_.charge_crypto && config_.cost_model) {
      // One open + one seal of analytic crypto time per payload per
      // relay. Without a cost model relay crypto is unbilled (relays
      // are not simulated processes, so wall-clock charging has no
      // process to bill).
      const CryptoCostModel& m = *config_.cost_model;
      relay.per_hop_fixed = m.open_per_op + m.seal_per_op;
      relay.per_hop_byte = m.open_per_byte + m.seal_per_byte;
    }
  }
  comm_->set_relay_policy(relay);
  exposure_base_ = comm_->world().fabric().relay_exposures();
  if (config_.pipeline.enabled) {
    if (config_.pipeline.chunk_bytes == 0) {
      throw std::invalid_argument(
          "SecureConfig: pipeline.chunk_bytes must be >= 1");
    }
    if (config_.pipeline.chunk_bytes >
        std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument(
          "SecureConfig: pipeline.chunk_bytes must fit the 32-bit "
          "chunk-length header field");
    }
    if (config_.pipeline.helper_cores < 0) {
      throw std::invalid_argument(
          "SecureConfig: pipeline.helper_cores must be >= 0");
    }
    if (config_.charge_crypto && !config_.cost_model) {
      throw std::invalid_argument(
          "SecureConfig: the pipeline requires a cost_model while "
          "charge_crypto is on — helper cores are not simulated "
          "processes, so their per-chunk crypto can only be billed "
          "analytically (docs/PIPELINE.md)");
    }
    helper_free_.assign(static_cast<std::size_t>(config_.pipeline.helper_cores),
                        0.0);
  }
}

double SecureComm::charged_crypto(const std::function<void()>& work,
                                  std::size_t bytes, bool encrypt) {
  const auto category = encrypt ? trace::Category::kCryptoEncrypt
                                : trace::Category::kCryptoDecrypt;
  if (!config_.charge_crypto) {
    // EMC_LINT_ALLOW(det-clock): measurement-mode only — the host
    // seconds feed BENCH JSON metrics, never the virtual timeline.
    WallTimer timer;
    work();
    return timer.seconds();
  }
  if (config_.cost_model) {
    // Analytic billing: the crypto really executes (semantics and
    // counters unchanged) but virtual time advances by the model, so
    // encrypted timelines are deterministic.
    // EMC_LINT_ALLOW(det-clock): same measurement-mode host read; the
    // virtual clock advances by the analytic model below.
    WallTimer timer;
    work();
    const double elapsed = timer.seconds();
    const CryptoCostModel& m = *config_.cost_model;
    const double cost =
        encrypt ? m.seal_per_op + static_cast<double>(bytes) * m.seal_per_byte
                : m.open_per_op + static_cast<double>(bytes) * m.open_per_byte;
    sim::Process& proc = comm_->process();
    const double begin = proc.now();
    proc.advance(cost);
    if (trace::TraceRecorder* rec = comm_->world().trace()) {
      // Trace rows are world-rank-indexed; on a shrunken communicator
      // the local rank() no longer names the right row.
      rec->record(proc.index(), category, begin, proc.now(), -1, bytes);
    }
    return elapsed;
  }
  // Wall-clock billing: the engine charge observer records the span;
  // retag it from the default kCompute before charging.
  if (trace::TraceRecorder* rec = comm_->world().trace()) {
    rec->set_charge_category(comm_->process().index(), category);
  }
  return comm_->process().charge(work);
}

bool SecureComm::keyring_link(int peer) const noexcept {
  return config_.keyring != nullptr && peer >= 0;
}

const crypto::AeadKey* SecureComm::keyring_seal(
    int peer, std::uint8_t out[kGcmNonceBytes]) {
  keys::LinkKeyring& ring = *config_.keyring;
  const int link = comm_->to_world(peer);
  const keys::LinkKeyring::SealKey sk =
      ring.seal_key(link, comm_->now(), config_.nonce_rekey_threshold);
  if (sk.ratcheted) {
    // The epoch advanced in place — traffic continues under the next
    // chain key instead of stopping on NonceExhaustedError. Bill the
    // chain step analytically on the key_mgmt lane.
    ++counters_.link_ratchets;
    sim::Process& proc = comm_->process();
    const double begin = proc.now();
    proc.advance(ring.ratchet().step_cost);
    if (trace::TraceRecorder* rec = comm_->world().trace()) {
      rec->record(proc.index(), trace::Category::kKeyMgmt, begin, proc.now(),
                  link);
    }
  }
  // Both endpoints seal under the same epoch key; the sender's world
  // rank prefixes the per-epoch sequence so the two directions' nonce
  // streams can never collide.
  store_be32(out, static_cast<std::uint32_t>(comm_->to_world(rank())));
  store_be64(out + 4, sk.seq);
  return sk.aead;
}

bool SecureComm::keyring_open(int peer, BytesView wire, BytesView aad,
                              MutBytes out, bool charged) {
  keys::LinkKeyring& ring = *config_.keyring;
  const int link = comm_->to_world(peer);
  std::vector<keys::LinkKeyring::OpenCandidate> cands;
  ring.open_candidates(link, comm_->now(), cands);
  for (const auto& cand : cands) {
    bool ok = false;
    const auto trial = [&] {
      ok = cand.aead->open(wire.first(kGcmNonceBytes), aad,
                           wire.subspan(kGcmNonceBytes), out);
    };
    if (charged) {
      counters_.open_seconds +=
          charged_crypto(trial, out.size(), /*encrypt=*/false);
    } else {
      trial();  // pipelined chunk: the helper core bills the time
    }
    if (!ok) continue;
    switch (ring.note_open(link, cand.epoch, comm_->now())) {
      case keys::LinkKeyring::OpenKind::kGrace:
        ++counters_.grace_opens;
        break;
      case keys::LinkKeyring::OpenKind::kCatchup:
        ++counters_.catchup_opens;
        break;
      case keys::LinkKeyring::OpenKind::kCurrent:
        break;
    }
    return true;
  }
  return false;
}

void SecureComm::next_nonce(std::uint8_t out[kGcmNonceBytes]) {
  // Fail-closed rekey gate: refuse to seal past the per-key invocation
  // budget rather than risk a repeated (key, nonce) pair. Counted in
  // both modes — random nonces hit the NIST birthday bound at 2^32
  // invocations just as surely as a wrapped counter would repeat.
  if (config_.nonce_rekey_threshold != 0 &&
      nonce_counter_ >= config_.nonce_rekey_threshold) {
    throw NonceExhaustedError(nonce_counter_, config_.nonce_rekey_threshold);
  }
  if (config_.nonce_mode == NonceMode::kRandom) {
    ++nonce_counter_;
    // EMC_LINT_ALLOW(nonce-source): NonceMode::kRandom reproduces the
    // paper's random-IV configuration as a studied design point; the
    // nonce-exhaustion guard above still bounds draws per key, and
    // kCounter is the default for production-shaped runs.
    random_nonce(MutBytes(out, kGcmNonceBytes));
    return;
  }
  store_be32(out, static_cast<std::uint32_t>(rank()));
  store_be64(out + 4, nonce_counter_++);
}

void SecureComm::charge_relay_reseals(int peer) {
  if (peer < 0 || config_.relay_trust != RelayTrust::kHopTrusted ||
      keyring_link(peer)) {
    return;
  }
  const net::Fabric& fabric = comm_->world().fabric();
  const net::RouteSpec* route =
      fabric.route_for(fabric.node_of(comm_->to_world(rank())),
                       fabric.node_of(comm_->to_world(peer)));
  if (route == nullptr) return;
  // Every hop-trusted relay on the route re-seals this payload under
  // the same group key: those AEAD invocations spend the key's nonce
  // budget exactly like local seals. Count them against the
  // fail-closed guard, or the true invocation count under the key
  // silently overruns the configured threshold. (Keyring links are
  // exempt: their per-link budget rotates the epoch online instead.)
  const auto hops = static_cast<std::uint64_t>(route->via.size());
  if (config_.nonce_rekey_threshold != 0 &&
      nonce_counter_ + hops >= config_.nonce_rekey_threshold) {
    throw NonceExhaustedError(nonce_counter_ + hops,
                              config_.nonce_rekey_threshold);
  }
  nonce_counter_ += hops;
}

void SecureComm::rekey(BytesView new_key) {
  key_ = crypto::make_aes_gcm(config_.provider, new_key);
  config_.key.assign(new_key.begin(), new_key.end());
  // Every key-scoped stream restarts: nonces, per-channel sequence
  // numbers, replay-window bookkeeping. The fresh key makes the reset
  // safe (no (key, nonce) or (key, seq) pair can repeat).
  nonce_counter_ = 0;
  send_seq_.clear();
  recv_seq_.clear();
  extra_copies_.clear();
  pipe_msg_id_ = 0;
  pipe_recv_next_.clear();
  ++counters_.rekeys;
}

Bytes SecureComm::p2p_aad(int src, int dst, int tag,
                          std::uint64_t seq) const {
  Bytes aad(24);
  store_be32(aad.data(), static_cast<std::uint32_t>(src));
  store_be32(aad.data() + 4, static_cast<std::uint32_t>(dst));
  store_be32(aad.data() + 8, static_cast<std::uint32_t>(tag));
  store_be32(aad.data() + 12, 0);  // kind: 0 = point-to-point
  store_be64(aad.data() + 16, seq);
  return aad;
}

namespace {
/// AAD for a collective block: origin, destination (-1 = broadcast to
/// all), the per-communicator collective sequence number.
Bytes coll_aad(int src, int dst, std::uint64_t seq) {
  Bytes aad(24);
  store_be32(aad.data(), static_cast<std::uint32_t>(src));
  store_be32(aad.data() + 4, static_cast<std::uint32_t>(dst));
  store_be32(aad.data() + 8, 0);
  store_be32(aad.data() + 12, 1);  // kind: 1 = collective
  store_be64(aad.data() + 16, seq);
  return aad;
}
}  // namespace

std::uint64_t SecureComm::next_send_seq(int dst, int tag) {
  return send_seq_[{dst, tag}]++;
}

void SecureComm::seal_into(BytesView pt, MutBytes out, BytesView aad,
                           int peer) {
  if (out.size() != wire_size(pt.size())) {
    throw std::invalid_argument("seal_into: wire buffer size mismatch");
  }
  charge_relay_reseals(peer);
  // Keyring links seal under the link's per-epoch key (ratchet + seq
  // fetched before the charged region so ratchet billing lands on the
  // key_mgmt lane, not inside the seal span).
  const crypto::AeadKey* aead =
      keyring_link(peer) ? keyring_seal(peer, out.data()) : nullptr;
  const double elapsed = charged_crypto(
      [&] {
        if (aead == nullptr) {
          next_nonce(out.data());
          aead = key_.get();
        }
        aead->seal(BytesView(out.data(), kGcmNonceBytes), aad, pt,
                   out.subspan(kGcmNonceBytes));
      },
      pt.size(), /*encrypt=*/true);
  ++counters_.messages_sealed;
  counters_.bytes_sealed += pt.size();
  counters_.seal_seconds += elapsed;
}

bool SecureComm::try_open_into(BytesView wire, MutBytes out, BytesView aad,
                               int peer) {
  if (keyring_link(peer)) {
    return keyring_open(peer, wire, aad, out, /*charged=*/true);
  }
  bool ok = false;
  const double elapsed = charged_crypto(
      [&] {
        ok = key_->open(wire.first(kGcmNonceBytes), aad,
                        wire.subspan(kGcmNonceBytes), out);
      },
      out.size(), /*encrypt=*/false);
  counters_.open_seconds += elapsed;
  return ok;
}

void SecureComm::open_into(BytesView wire, MutBytes out, BytesView aad) {
  if (wire.size() < kWireOverhead) {
    ++counters_.length_failures;
    throw IntegrityError("received message shorter than nonce+tag framing");
  }
  if (out.size() != wire.size() - kWireOverhead) {
    throw std::invalid_argument("open_into: plaintext buffer size mismatch");
  }
  if (!try_open_into(wire, out, aad)) {
    ++counters_.auth_failures;
    throw IntegrityError(
        "authentication tag mismatch: message was tampered with or "
        "corrupted (rank " +
        std::to_string(rank()) + ")");
  }
  ++counters_.messages_opened;
  counters_.bytes_opened += out.size();
}

std::size_t SecureComm::checked_pt_len(std::size_t wire_bytes,
                                       std::size_t capacity) {
  if (wire_bytes < kWireOverhead || wire_bytes > wire_size(capacity)) {
    ++counters_.length_failures;
    throw IntegrityError(
        "wire message of " + std::to_string(wire_bytes) +
        " bytes outside the valid [" + std::to_string(kWireOverhead) + ", " +
        std::to_string(wire_size(capacity)) +
        "] range for this receive: truncated or oversized in transit (rank " +
        std::to_string(rank()) + ")");
  }
  return wire_bytes - kWireOverhead;
}

std::optional<mpi::Status> SecureComm::open_p2p(
    MutBytes wire_buf, const mpi::Status& wire_status, MutBytes user,
    bool* became_chunked) {
  const std::size_t pt_len = checked_pt_len(wire_status.bytes, user.size());
  const MutBytes wire = wire_buf.first(wire_status.bytes);
  const MutBytes out = user.first(pt_len);
  const mpi::Status status{wire_status.source, wire_status.tag, pt_len};
  const int src = wire_status.source;
  const int tag = wire_status.tag;

  // Up to two authentication rounds: if the first fails and the ARQ
  // stash can prove the damage happened on the wire, the clean copy is
  // NACKed back in (recover_damaged_recv rewrites `wire`) and
  // authentication runs once more. A second failure — or any failure
  // the stash cannot explain — is a genuine integrity error.
  for (int round = 0;; ++round) {
    if (!config_.bind_context) {
      if (try_open_into(wire, out, {}, src)) {
        ++counters_.messages_opened;
        counters_.bytes_opened += out.size();
        return status;
      }
    } else {
      // The channel counter advances only when a message
      // authenticates, so damaged traffic cannot desynchronize honest
      // traffic behind it. With a replay window, sequence numbers
      // slightly ahead (dropped predecessors) still authenticate, and
      // numbers behind are trial-checked to separate benign fabric
      // duplicates from replay attacks.
      std::uint64_t& expected = recv_seq_[{src, tag}];
      const std::uint64_t ahead =
          config_.replay_window > 0 ? config_.replay_window : 1;
      for (std::uint64_t k = 0; k < ahead; ++k) {
        if (try_open_into(wire, out, p2p_aad(src, rank(), tag, expected + k),
                          src)) {
          expected += k + 1;
          ++counters_.messages_opened;
          counters_.bytes_opened += out.size();
          return status;
        }
      }
      for (std::uint64_t back = 1;
           back <= config_.replay_window && back <= expected; ++back) {
        if (try_open_into(wire, out, p2p_aad(src, rank(), tag, expected - back),
                          src)) {
          secure_zero(out);  // never hand a repeated plaintext to the caller
          const std::uint64_t seq = expected - back;
          const std::uint32_t copies = ++extra_copies_[{src, tag, seq}];
          if (copies == 1) {
            // First extra copy: the fabric duplicated the frame. Absorb
            // it silently; the caller loops for the next real message.
            ++counters_.duplicates_suppressed;
            return std::nullopt;
          }
          // The same sequence number injected yet again: an attacker
          // replaying captured traffic, not a duplicating wire.
          ++counters_.replays_rejected;
          throw IntegrityError(
              "replayed message rejected: sequence " + std::to_string(seq) +
              " from rank " + std::to_string(src) +
              " was already delivered (rank " + std::to_string(rank()) + ")");
        }
      }
    }
    if (round == 0 && comm_->recover_damaged_recv(wire, src, tag)) {
      ++counters_.nacks_sent;
      ++counters_.retransmits_recovered;
      if (became_chunked != nullptr && looks_like_chunk(wire)) {
        // The wire damage had destroyed the chunk magic: the clean
        // retransmitted frame is a pipelined chunk. Hand it back for
        // re-dispatch instead of authenticating it as a whole message.
        *became_chunked = true;
        return std::nullopt;
      }
      continue;
    }
    ++counters_.auth_failures;
    throw IntegrityError(
        "authentication tag mismatch: message was tampered with, corrupted, "
        "or spliced from another channel (rank " +
        std::to_string(rank()) + ")");
  }
}

// ------------------------------------------------------ chunked pipeline

bool SecureComm::pipeline_engages(std::size_t bytes) const noexcept {
  const PipelineConfig& p = config_.pipeline;
  // A message that fits one chunk gains nothing from chunk framing.
  return p.enabled && bytes > p.chunk_bytes && bytes >= p.min_bytes;
}

double SecureComm::helper_crypto(std::size_t bytes, bool encrypt) {
  sim::Process& proc = comm_->process();
  if (!config_.charge_crypto || !config_.cost_model) {
    // Charge-free functional mode, or a wall-clock-billed peer
    // receiving chunked traffic: the crypto really executed but no
    // virtual time is billed (measuring host time here would break
    // the determinism of src/secure_mpi — see docs/PIPELINE.md).
    return proc.now();
  }
  const CryptoCostModel& m = *config_.cost_model;
  const double cost =
      encrypt ? m.seal_per_op + static_cast<double>(bytes) * m.seal_per_byte
              : m.open_per_op + static_cast<double>(bytes) * m.open_per_byte;
  if (helper_free_.empty()) {
    // helper_cores == 0: chunk framing without overlap — the chunk's
    // crypto is billed serially on the rank itself.
    const auto category = encrypt ? trace::Category::kCryptoEncrypt
                                  : trace::Category::kCryptoDecrypt;
    const double begin = proc.now();
    proc.advance(cost);
    if (trace::TraceRecorder* rec = comm_->world().trace()) {
      rec->record(proc.index(), category, begin, proc.now(), -1, bytes);
    }
    return proc.now();
  }
  // Earliest-free core wins, lowest index on ties: a pure function of
  // the simulated timeline, so helper schedules replay bit-exact
  // (EMC-DET). The chunk cannot start before its data exists on this
  // rank (`now`), nor before the core drained its queue.
  std::size_t core = 0;
  for (std::size_t c = 1; c < helper_free_.size(); ++c) {
    if (helper_free_[c] < helper_free_[core]) core = c;
  }
  const double start = std::max(helper_free_[core], proc.now());
  const double done = start + cost;
  helper_free_[core] = done;
  (encrypt ? counters_.helper_seal_seconds
           : counters_.helper_open_seconds) += cost;
  if (trace::TraceRecorder* rec = comm_->world().trace()) {
    rec->record(proc.index(), trace::Category::kCryptoHelper, start, done,
                static_cast<int>(core), bytes);
  }
  return done;
}

double SecureComm::seal_chunk(BytesView pt, MutBytes out, BytesView aad,
                              int peer) {
  // No host-time measurement on this path (seal_seconds stays a
  // main-clock wall measurement; helper billing is purely analytic).
  charge_relay_reseals(peer);
  const crypto::AeadKey* aead;
  if (keyring_link(peer)) {
    aead = keyring_seal(peer, out.data());
  } else {
    next_nonce(out.data());
    aead = key_.get();
  }
  aead->seal(BytesView(out.data(), kGcmNonceBytes), aad, pt,
             out.subspan(kGcmNonceBytes));
  ++counters_.messages_sealed;
  ++counters_.chunks_sealed;
  counters_.bytes_sealed += pt.size();
  return helper_crypto(pt.size(), /*encrypt=*/true);
}

void SecureComm::send_pipelined(BytesView data, int dst, int tag) {
  const std::size_t chunk = config_.pipeline.chunk_bytes;
  const auto count = static_cast<std::uint32_t>((data.size() + chunk - 1) /
                                                chunk);
  const std::uint64_t msg_id = pipe_msg_id_++;
  const bool bind = config_.bind_context;
  ++counters_.messages_pipelined;
  Bytes frame;
  Bytes aad(bind ? kPipeHeaderBytes + 24 : kPipeHeaderBytes);
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::size_t off = std::size_t{k} * chunk;
    const std::size_t len = std::min(chunk, data.size() - off);
    frame.resize(kPipeHeaderBytes + wire_size(len));
    PipeChunkHeader h;
    h.msg_id = msg_id;
    h.index = k;
    h.count = count;
    h.chunk_len = static_cast<std::uint32_t>(len);
    h.offset = off;
    store_pipe_header(frame.data(), h);
    // The chunk's AAD is its own header — every field the receiver
    // steers by is under the tag — plus, with context binding, the
    // usual channel context with one fresh sequence number per chunk
    // (consecutive draws from the same stream as unchunked traffic).
    std::memcpy(aad.data(), frame.data(), kPipeHeaderBytes);
    if (bind) {
      const Bytes ctx = p2p_aad(rank(), dst, tag, next_send_seq(dst, tag));
      std::memcpy(aad.data() + kPipeHeaderBytes, ctx.data(), ctx.size());
    }
    const double sealed_at = seal_chunk(
        data.subspan(off, len), MutBytes(frame).subspan(kPipeHeaderBytes),
        aad, dst);
    // The frame flies as soon as both the NIC is free and the helper
    // core sealed it; the sender's own clock only pays the per-chunk
    // CPU overhead + copy, which is how encryption hides behind the
    // transfer of earlier chunks.
    comm_->send_chunk(frame, dst, tag, sealed_at);
  }
}

std::optional<mpi::Status> SecureComm::open_any(
    MutBytes wire_buf, const mpi::Status& wire_status, MutBytes user) {
  for (int round = 0;; ++round) {
    const MutBytes frame = wire_buf.first(wire_status.bytes);
    if (looks_like_chunk(frame)) {
      const PipeChunkHeader h = load_pipe_header(frame.data());
      if (pipe_header_plausible(h, frame.size(), user.size())) {
        return open_pipelined(frame, wire_status, user);
      }
      // Chunk-looking but inconsistent with its own length: wire
      // damage (one ARQ recovery try) or a forgery.
      if (round == 0 &&
          comm_->recover_damaged_recv(frame, wire_status.source,
                                      wire_status.tag)) {
        ++counters_.nacks_sent;
        ++counters_.retransmits_recovered;
        continue;  // re-classify the clean retransmitted copy
      }
      ++counters_.length_failures;
      throw IntegrityError(
          "pipelined chunk header inconsistent with its frame length: "
          "truncated, corrupted, or forged in transit (rank " +
          std::to_string(rank()) + ")");
    }
    bool became_chunked = false;
    const auto status = open_p2p(wire_buf, wire_status, user,
                                 &became_chunked);
    if (!became_chunked) return status;
    // open_p2p's ARQ recovery revealed a chunk frame (the damage had
    // destroyed the magic); loop to dispatch the clean copy. The
    // stash is consumed, so this cannot recurse.
  }
}

std::optional<mpi::Status> SecureComm::open_pipelined(
    MutBytes first_frame, const mpi::Status& wire_status, MutBytes user) {
  const int src = wire_status.source;
  const int tag = wire_status.tag;
  const PipeChunkHeader first = load_pipe_header(first_frame.data());
  std::uint64_t& next_id = pipe_recv_next_[{src, tag}];
  if (first.msg_id < next_id) {
    // Stale frame of an already-delivered message (a fabric duplicate
    // straggling in behind completion): absorb without crypto.
    ++counters_.duplicates_suppressed;
    return std::nullopt;
  }
  const std::uint64_t msg_id = first.msg_id;
  const std::uint32_t count = first.count;
  const std::size_t cap = user.size();
  const bool bind = config_.bind_context;
  // Chunk k authenticates channel sequence base + k — the sender drew
  // count consecutive numbers; the channel advances only on delivery.
  const std::uint64_t base = bind ? recv_seq_[{src, tag}] : 0;

  sim::Process& proc = comm_->process();
  std::vector<std::uint8_t> have(count, 0);
  std::vector<std::uint8_t> extra(count, 0);
  std::uint32_t have_n = 0;
  std::size_t bytes_accepted = 0;
  std::size_t total_len = 0;  ///< offset+len of chunk count-1
  double crypto_done = proc.now();
  Bytes aad(bind ? kPipeHeaderBytes + 24 : kPipeHeaderBytes);

  // Validates, deduplicates, authenticates, and places one frame;
  // loops over the single allowed ARQ recovery round exactly like
  // open_p2p (a recovery may change the header, so it re-parses).
  auto accept_chunk = [&](MutBytes frame) {
    for (int round = 0;; ++round) {
      const PipeChunkHeader h = load_pipe_header(frame.data());
      const bool frame_ok = h.msg_id == msg_id && h.count == count &&
                            pipe_header_plausible(h, frame.size(), cap);
      if (frame_ok && have[h.index] != 0) {
        // Another copy of an accepted chunk. The first extra copy is
        // a benign fabric duplicate, absorbed without crypto (the
        // frame carries nothing the message still needs); the second
        // is classified as a replay attack, like open_p2p's window.
        if (extra[h.index]++ == 0) {
          ++counters_.duplicates_suppressed;
          return;
        }
        secure_zero(user);
        ++counters_.replays_rejected;
        throw IntegrityError(
            "replayed pipelined chunk rejected: chunk " +
            std::to_string(h.index) + " of message " +
            std::to_string(msg_id) + " from rank " + std::to_string(src) +
            " was already delivered twice (rank " + std::to_string(rank()) +
            ")");
      }
      if (frame_ok) {
        std::memcpy(aad.data(), frame.data(), kPipeHeaderBytes);
        if (bind) {
          const Bytes ctx = p2p_aad(src, rank(), tag, base + h.index);
          std::memcpy(aad.data() + kPipeHeaderBytes, ctx.data(), ctx.size());
        }
        const BytesView wire = BytesView(frame).subspan(kPipeHeaderBytes);
        const MutBytes out = user.subspan(h.offset, h.chunk_len);
        const bool opened =
            keyring_link(src)
                ? keyring_open(src, wire, aad, out, /*charged=*/false)
                : key_->open(wire.first(kGcmNonceBytes), aad,
                             wire.subspan(kGcmNonceBytes), out);
        if (opened) {
          have[h.index] = 1;
          ++have_n;
          bytes_accepted += h.chunk_len;
          if (h.index == count - 1) total_len = h.offset + h.chunk_len;
          ++counters_.messages_opened;
          ++counters_.chunks_opened;
          counters_.bytes_opened += h.chunk_len;
          // The open runs on a helper core from the moment the frame
          // is in memory; the main timeline keeps receiving chunk k+1
          // while this one decrypts.
          crypto_done = std::max(crypto_done,
                                 helper_crypto(h.chunk_len,
                                               /*encrypt=*/false));
          return;
        }
      }
      if (round == 0 && comm_->recover_damaged_recv(frame, src, tag)) {
        ++counters_.nacks_sent;
        ++counters_.retransmits_recovered;
        continue;  // the e2e NACK recovered this one chunk, not the message
      }
      secure_zero(user);  // never leak a partially verified message
      if (!frame_ok) {
        ++counters_.length_failures;
        throw IntegrityError(
            "pipelined chunk frame inconsistent mid-message: header does "
            "not match message " +
            std::to_string(msg_id) + " (rank " + std::to_string(rank()) +
            ")");
      }
      ++counters_.auth_failures;
      throw IntegrityError(
          "authentication tag mismatch on pipelined chunk: message was "
          "tampered with, corrupted, or spliced from another channel "
          "(rank " +
          std::to_string(rank()) + ")");
    }
  };

  accept_chunk(first_frame);
  Bytes wire(recv_wire_capacity(cap));
  while (have_n < count) {
    const mpi::Status ws = comm_->recv(wire, src, tag);
    const MutBytes frame = MutBytes(wire).first(ws.bytes);
    if (!looks_like_chunk(frame)) {
      // A non-chunk frame inside a pipelined message: wire damage
      // destroyed the magic (recoverable under ARQ) or the channel is
      // being abused.
      if (comm_->recover_damaged_recv(frame, src, tag)) {
        ++counters_.nacks_sent;
        ++counters_.retransmits_recovered;
      }
      if (!looks_like_chunk(frame)) {
        secure_zero(user);
        ++counters_.length_failures;
        throw IntegrityError(
            "unchunked frame interleaved into pipelined message " +
            std::to_string(msg_id) + " from rank " + std::to_string(src) +
            " (rank " + std::to_string(rank()) + ")");
      }
    }
    if (load_pipe_header(frame.data()).msg_id < msg_id) {
      // Stale duplicate from an older message, arriving mid-stream.
      ++counters_.duplicates_suppressed;
      continue;
    }
    accept_chunk(frame);
  }
  if (bytes_accepted != total_len) {
    // Unreachable for an honest sender (headers are authenticated and
    // indices deduplicated), kept as a cheap defence in depth.
    secure_zero(user);
    ++counters_.length_failures;
    throw IntegrityError(
        "pipelined chunks do not tile the message: " +
        std::to_string(bytes_accepted) + " bytes accepted for a " +
        std::to_string(total_len) + "-byte message (rank " +
        std::to_string(rank()) + ")");
  }
  next_id = msg_id + 1;
  if (bind) recv_seq_[{src, tag}] = base + count;
  // Stall only for crypto the wire did not hide: the receive is
  // complete when the last helper core finishes its last chunk.
  const double now = proc.now();
  if (crypto_done > now) {
    proc.advance(crypto_done - now);
    counters_.pipeline_stall_seconds += crypto_done - now;
    if (trace::TraceRecorder* rec = comm_->world().trace()) {
      rec->record(proc.index(), trace::Category::kPipelineStall, now,
                  proc.now(), src, bytes_accepted);
    }
  }
  return mpi::Status{src, tag, total_len};
}

// ------------------------------------------------------- point-to-point

void SecureComm::send(BytesView data, int dst, int tag) {
  // Reject bad arguments before spending crypto time on the payload.
  mpi::validate_user_tag(tag);
  mpi::validate_peer(dst, size());
  if (pipeline_engages(data.size())) {
    send_pipelined(data, dst, tag);
    return;
  }
  Bytes wire(wire_size(data.size()));
  if (config_.bind_context) {
    seal_into(data, wire, p2p_aad(rank(), dst, tag, next_send_seq(dst, tag)),
              dst);
  } else {
    seal_into(data, wire, {}, dst);
  }
  comm_->send(wire, dst, tag);
}

mpi::Status SecureComm::recv(MutBytes buf, int src, int tag) {
  mpi::validate_recv_tag(tag);
  mpi::validate_recv_peer(src, size());
  // Sized so any frame fits: an unchunked message of up to buf.size()
  // payload bytes, or one pipelined chunk (header + AEAD frame of a
  // chunk no larger than the message).
  Bytes wire(recv_wire_capacity(buf.size()));
  for (;;) {
    const mpi::Status wire_status = comm_->recv(wire, src, tag);
    if (const auto status = open_any(wire, wire_status, buf)) {
      return *status;
    }
    // Benign fabric duplicate absorbed: wait for the next message.
  }
}

mpi::Request SecureComm::isend(BytesView data, int dst, int tag) {
  mpi::validate_user_tag(tag);
  mpi::validate_peer(dst, size());
  if (pipeline_engages(data.size())) {
    // Every chunk is dispatched right here: send_chunk never blocks
    // (eager shape, wire gated by wire_not_before), so the request is
    // born complete and wait() is a lookup.
    send_pipelined(data, dst, tag);
    auto state = std::make_unique<SecurePipeSendState>();
    state->status = mpi::Status{dst, tag, data.size()};
    return mpi::Request(std::move(state));
  }
  auto state = std::make_unique<SecureSendState>();
  state->wire.resize(wire_size(data.size()));
  if (config_.bind_context) {
    seal_into(data, state->wire,
              p2p_aad(rank(), dst, tag, next_send_seq(dst, tag)), dst);
  } else {
    seal_into(data, state->wire, {}, dst);
  }
  state->inner = comm_->isend(state->wire, dst, tag);
  return mpi::Request(std::move(state));
}

mpi::Request SecureComm::irecv(MutBytes buf, int src, int tag) {
  mpi::validate_recv_tag(tag);
  mpi::validate_recv_peer(src, size());
  auto state = std::make_unique<SecureRecvState>();
  state->wire.resize(recv_wire_capacity(buf.size()));
  state->user = buf;
  state->src = src;
  state->tag = tag;
  state->inner = comm_->irecv(state->wire, src, tag);
  return mpi::Request(std::move(state));
}

mpi::Status SecureComm::wait(mpi::Request& request) {
  if (!request.valid()) {
    mpi::throw_invalid_wait(comm_->world().verifier(), rank(), request);
  }
  auto owned = request.take();
  if (auto* send_state = dynamic_cast<SecureSendState*>(owned.get())) {
    return comm_->wait(send_state->inner);
  }
  if (auto* pipe_state = dynamic_cast<SecurePipeSendState*>(owned.get())) {
    return pipe_state->status;  // chunks were all dispatched in isend
  }
  if (auto* recv_state = dynamic_cast<SecureRecvState*>(owned.get())) {
    mpi::Status wire_status = comm_->wait(recv_state->inner);
    for (;;) {
      if (const auto status =
              open_any(recv_state->wire, wire_status, recv_state->user)) {
        return *status;
      }
      // Benign fabric duplicate absorbed: re-post and wait again.
      recv_state->inner =
          comm_->irecv(recv_state->wire, recv_state->src, recv_state->tag);
      wire_status = comm_->wait(recv_state->inner);
    }
  }
  throw mpi::MpiError("request does not belong to this secure communicator");
}

std::vector<mpi::Status> SecureComm::waitall(
    std::span<mpi::Request> requests) {
  // Every inner request is drained even when a decryption fails:
  // abandoning the rest would leave rendezvous senders parked on
  // their handshakes and deadlock the simulation. The first failure
  // is rethrown once all completions have run.
  std::vector<mpi::Status> statuses(requests.size());
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    try {
      statuses[i] = wait(requests[i]);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return statuses;
}

mpi::Status SecureComm::sendrecv(BytesView senddata, int dst, int sendtag,
                                 MutBytes recvbuf, int src, int recvtag) {
  mpi::Request rr = irecv(recvbuf, src, recvtag);
  mpi::Request rs = isend(senddata, dst, sendtag);
  const mpi::Status status = wait(rr);
  wait(rs);
  return status;
}

// ---------------------------------------------------------- collectives

void SecureComm::barrier() { comm_->barrier(); }

void SecureComm::bcast(MutBytes data, int root) {
  mpi::validate_peer(root, size());
  const std::uint64_t seq = coll_seq_++;
  const Bytes aad =
      config_.bind_context ? coll_aad(root, -1, seq) : Bytes{};
  Bytes wire(wire_size(data.size()));
  if (rank() == root) seal_into(data, wire, aad);
  comm_->bcast(wire, root);
  if (rank() != root) open_into(wire, data, aad);
}

void SecureComm::allgather(BytesView sendpart, MutBytes recvall) {
  const auto n = static_cast<std::size_t>(size());
  const std::size_t block = sendpart.size();
  if (recvall.size() != block * n) {
    throw mpi::MpiError("allgather: recv buffer must be size()*block bytes");
  }
  const std::size_t wire_block = wire_size(block);
  const std::uint64_t seq = coll_seq_++;
  const bool bind = config_.bind_context;

  Bytes wire_send(wire_block);
  seal_into(sendpart, wire_send,
            bind ? BytesView(coll_aad(rank(), -1, seq)) : BytesView{});
  Bytes wire_all(wire_block * n);
  comm_->allgather(wire_send, wire_all);
  for (std::size_t i = 0; i < n; ++i) {
    open_into(BytesView(wire_all).subspan(i * wire_block, wire_block),
              recvall.subspan(i * block, block),
              bind ? BytesView(coll_aad(static_cast<int>(i), -1, seq))
                   : BytesView{});
  }
}

void SecureComm::alltoall(BytesView sendbuf, MutBytes recvbuf,
                          std::size_t block) {
  // Algorithm 1 of the paper, verbatim structure: encrypt every block
  // with a fresh nonce, exchange (l+28)-byte blocks with the plain
  // alltoall, then decrypt every received block.
  const auto n = static_cast<std::size_t>(size());
  const auto total = block * n;
  if (sendbuf.size() != total || recvbuf.size() != total) {
    throw mpi::MpiError("alltoall: buffers must be size()*block bytes");
  }
  const std::size_t wire_block = wire_size(block);
  const std::uint64_t seq = coll_seq_++;
  const bool bind = config_.bind_context;

  Bytes enc_sendbuf(wire_block * n);
  for (std::size_t i = 0; i < n; ++i) {
    seal_into(sendbuf.subspan(i * block, block),
              MutBytes(enc_sendbuf).subspan(i * wire_block, wire_block),
              bind ? BytesView(coll_aad(rank(), static_cast<int>(i), seq))
                   : BytesView{});
  }
  Bytes enc_recvbuf(wire_block * n);
  comm_->alltoall(enc_sendbuf, enc_recvbuf, wire_block);
  for (std::size_t i = 0; i < n; ++i) {
    open_into(BytesView(enc_recvbuf).subspan(i * wire_block, wire_block),
              recvbuf.subspan(i * block, block),
              bind ? BytesView(coll_aad(static_cast<int>(i), rank(), seq))
                   : BytesView{});
  }
}

void SecureComm::alltoallv(BytesView sendbuf,
                           std::span<const std::size_t> sendcounts,
                           std::span<const std::size_t> senddispls,
                           MutBytes recvbuf,
                           std::span<const std::size_t> recvcounts,
                           std::span<const std::size_t> recvdispls) {
  const auto n = static_cast<std::size_t>(size());
  if (sendcounts.size() != n || senddispls.size() != n ||
      recvcounts.size() != n || recvdispls.size() != n) {
    throw mpi::MpiError(
        "alltoallv: count/displacement arrays must have size() entries");
  }

  std::vector<std::size_t> wire_sendcounts(n);
  std::vector<std::size_t> wire_senddispls(n);
  std::vector<std::size_t> wire_recvcounts(n);
  std::vector<std::size_t> wire_recvdispls(n);
  std::size_t send_total = 0;
  std::size_t recv_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    wire_sendcounts[i] = wire_size(sendcounts[i]);
    wire_senddispls[i] = send_total;
    send_total += wire_sendcounts[i];
    wire_recvcounts[i] = wire_size(recvcounts[i]);
    wire_recvdispls[i] = recv_total;
    recv_total += wire_recvcounts[i];
  }

  const std::uint64_t seq = coll_seq_++;
  const bool bind = config_.bind_context;
  Bytes enc_sendbuf(send_total);
  for (std::size_t i = 0; i < n; ++i) {
    seal_into(sendbuf.subspan(senddispls[i], sendcounts[i]),
              MutBytes(enc_sendbuf)
                  .subspan(wire_senddispls[i], wire_sendcounts[i]),
              bind ? BytesView(coll_aad(rank(), static_cast<int>(i), seq))
                   : BytesView{});
  }
  Bytes enc_recvbuf(recv_total);
  comm_->alltoallv(enc_sendbuf, wire_sendcounts, wire_senddispls,
                   enc_recvbuf, wire_recvcounts, wire_recvdispls);
  for (std::size_t i = 0; i < n; ++i) {
    open_into(BytesView(enc_recvbuf)
                  .subspan(wire_recvdispls[i], wire_recvcounts[i]),
              recvbuf.subspan(recvdispls[i], recvcounts[i]),
              bind ? BytesView(coll_aad(static_cast<int>(i), rank(), seq))
                   : BytesView{});
  }
}

void SecureComm::gather(BytesView sendpart, MutBytes recvall, int root) {
  mpi::validate_peer(root, size());
  const auto n = static_cast<std::size_t>(size());
  const std::size_t block = sendpart.size();
  const std::size_t wire_block = wire_size(block);
  const std::uint64_t seq = coll_seq_++;
  const bool bind = config_.bind_context;

  Bytes wire_send(wire_block);
  seal_into(sendpart, wire_send,
            bind ? BytesView(coll_aad(rank(), root, seq)) : BytesView{});
  Bytes wire_all(rank() == root ? wire_block * n : 0);
  comm_->gather(wire_send, wire_all, root);
  if (rank() == root) {
    if (recvall.size() != block * n) {
      throw mpi::MpiError("gather: root recv buffer must be size()*block");
    }
    for (std::size_t i = 0; i < n; ++i) {
      open_into(BytesView(wire_all).subspan(i * wire_block, wire_block),
                recvall.subspan(i * block, block),
                bind ? BytesView(coll_aad(static_cast<int>(i), root, seq))
                     : BytesView{});
    }
  }
}

void SecureComm::scatter(BytesView sendall, MutBytes recvpart, int root) {
  mpi::validate_peer(root, size());
  const auto n = static_cast<std::size_t>(size());
  const std::size_t block = recvpart.size();
  const std::size_t wire_block = wire_size(block);

  const std::uint64_t seq = coll_seq_++;
  const bool bind = config_.bind_context;
  Bytes wire_all;
  if (rank() == root) {
    if (sendall.size() != block * n) {
      throw mpi::MpiError("scatter: root send buffer must be size()*block");
    }
    wire_all.resize(wire_block * n);
    for (std::size_t i = 0; i < n; ++i) {
      seal_into(sendall.subspan(i * block, block),
                MutBytes(wire_all).subspan(i * wire_block, wire_block),
                bind ? BytesView(coll_aad(root, static_cast<int>(i), seq))
                     : BytesView{});
    }
  }
  Bytes wire_recv(wire_block);
  comm_->scatter(wire_all, wire_recv, root);
  open_into(wire_recv, recvpart,
            bind ? BytesView(coll_aad(root, rank(), seq)) : BytesView{});
}

double run_secure_world(const mpi::WorldConfig& world_config,
                        const SecureConfig& secure_config,
                        const std::function<void(SecureComm&)>& body) {
  return mpi::run_world(world_config, [&](mpi::Comm& comm) {
    SecureComm secure(comm, secure_config);
    body(secure);
  });
}

}  // namespace emc::secure
