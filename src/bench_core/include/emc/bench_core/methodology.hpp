// The paper's benchmark methodology (§V, "Benchmark methodology"):
// run each experiment at least `min_runs` times, up to `max_runs`,
// until the sample standard deviation is within `target_rel_stddev`
// of the mean; if still unstable, keep running until the 99%
// confidence interval is within that fraction of the mean (bounded by
// a hard cap so a pathological experiment terminates).
#pragma once

#include <cstddef>
#include <functional>

#include "emc/common/stats.hpp"

namespace emc::bench {

struct StabilityPolicy {
  std::size_t min_runs = 20;
  std::size_t max_runs = 100;
  double target_rel_stddev = 0.05;
  double fallback_confidence = 0.99;
  std::size_t hard_cap = 300;

  /// Reduced-effort policy for smoke runs / CI (set via --quick).
  [[nodiscard]] static StabilityPolicy quick() {
    return StabilityPolicy{.min_runs = 3,
                           .max_runs = 10,
                           .target_rel_stddev = 0.10,
                           .fallback_confidence = 0.99,
                           .hard_cap = 12};
  }
};

struct MeasureResult {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t runs = 0;
  bool stable = false;  ///< met the stddev or CI criterion
};

/// Repeats @p sample per the policy. @p sample returns one
/// measurement (seconds, MB/s, ... — any positive metric).
[[nodiscard]] MeasureResult run_until_stable(
    const std::function<double()>& sample,
    const StabilityPolicy& policy = {});

/// Relative overhead in percent: 100 * (value - baseline) / baseline.
/// This is also how the paper aggregates NAS results (footnote 2):
/// totals first, ratio second — never an average of ratios.
[[nodiscard]] double overhead_percent(double baseline, double value);

}  // namespace emc::bench
