// The paper's benchmark methodology (§V, "Benchmark methodology"):
// run each experiment at least `min_runs` times, up to `max_runs`,
// until the sample standard deviation is within `target_rel_stddev`
// of the mean; if still unstable, keep running until the 99%
// confidence interval is within that fraction of the mean (bounded by
// a hard cap so a pathological experiment terminates).
//
// On top of the stopping rule sits the rigorous reporting layer of
// "MPI Benchmarking Revisited" (arXiv 1505.07734): plain mean-of-N
// numbers are statistically unreliable, so every measurement also
// carries its median, a deterministic bootstrap 95% confidence
// interval of the median, the run-to-run relative stddev, and the
// repetition count — the columns every results CSV and BENCH_*.json
// trajectory row reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "emc/common/stats.hpp"

namespace emc::bench {

struct StabilityPolicy {
  std::size_t min_runs = 20;
  std::size_t max_runs = 100;
  double target_rel_stddev = 0.05;
  double fallback_confidence = 0.99;
  std::size_t hard_cap = 300;

  /// Reduced-effort policy for smoke runs / CI (set via --quick).
  [[nodiscard]] static StabilityPolicy quick() {
    return StabilityPolicy{.min_runs = 3,
                           .max_runs = 10,
                           .target_rel_stddev = 0.10,
                           .fallback_confidence = 0.99,
                           .hard_cap = 12};
  }
};

/// Repetition schedule for schedule-sensitive (simulated-world)
/// measurements: successive samples cycle through `salts` engine
/// tie-break salts, derived exactly like mpi::run_perturbed derives
/// its perturbation salts (run 0 keeps the baseline FIFO order, run i
/// uses splitmix64(seed + i)), so scheduling-order sensitivity enters
/// the sample distribution instead of hiding behind one fixed order.
struct SaltSchedule {
  std::size_t salts = 4;
  std::uint64_t seed = 1;

  /// Tie-break salt for sample @p run (cycles through the schedule).
  [[nodiscard]] std::uint64_t salt_for(std::size_t run) const noexcept;
};

struct MeasureResult {
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double ci95_low = 0.0;   ///< bootstrap 95% CI of the median, low end
  double ci95_high = 0.0;  ///< bootstrap 95% CI of the median, high end
  double rel_stddev = 0.0;
  std::size_t runs = 0;
  bool stable = false;  ///< met the stddev or CI criterion

  /// Degenerate single-shot result for deterministic campaign
  /// metrics (counts, virtual recovery times): n=1, zero-width CI.
  [[nodiscard]] static MeasureResult single(double value);
};

/// Repeats @p sample per the policy. @p sample returns one
/// measurement (seconds, MB/s, ... — any positive metric).
[[nodiscard]] MeasureResult run_until_stable(
    const std::function<double()>& sample,
    const StabilityPolicy& policy = {});

/// Repetition-schedule variant: @p sample receives the engine
/// tie-break salt to measure under (see SaltSchedule). The stopping
/// rule is evaluated on the pooled cross-salt sample, so an
/// experiment whose timing depends on scheduling order reads as
/// high-variance instead of spuriously precise.
[[nodiscard]] MeasureResult run_schedule(
    const std::function<double(std::uint64_t salt)>& sample,
    const StabilityPolicy& policy = {}, const SaltSchedule& schedule = {});

/// Relative overhead in percent: 100 * (value - baseline) / baseline.
/// This is also how the paper aggregates NAS results (footnote 2):
/// totals first, ratio second — never an average of ratios.
/// A degenerate zero baseline has no meaningful overhead: the result
/// is NaN (rendered "n/a" by the reporters), never a perfect score.
[[nodiscard]] double overhead_percent(double baseline, double value);

}  // namespace emc::bench
