// Machine-readable perf-trajectory emission: every benchmark campaign
// writes a BENCH_<area>.json next to its results CSVs, holding one
// row per measured configuration (median, bootstrap 95% CI, relative
// stddev, repetition count — the simulated metrics) plus host-side
// meta-metrics (campaign wall-clock, simulation-engine events per
// second), the git SHA, and a hash of the measured configuration set.
// scripts/bench_compare.py diffs these files against committed
// baselines and fails CI on statistically significant slowdowns.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "emc/bench_core/methodology.hpp"
#include "emc/common/timer.hpp"

namespace emc::bench {

/// One measured configuration in a trajectory file.
struct TrajectoryRow {
  std::string config;  ///< e.g. "eth/BoringSSL/16KB"
  std::string metric;  ///< e.g. "throughput", "time"
  std::string unit;    ///< e.g. "MB/s", "s", "us", "%"
  /// Regression direction: true = a drop is a slowdown (throughput),
  /// false = a rise is a slowdown (latency, runtime).
  bool higher_is_better = true;
  double mean = 0.0;
  double median = 0.0;
  double ci95_low = 0.0;
  double ci95_high = 0.0;
  double rel_stddev = 0.0;
  std::size_t n_runs = 0;
  bool stable = false;
};

/// Parsed/serializable form of one BENCH_<area>.json.
struct TrajectoryFile {
  int schema_version = 1;
  std::string area;
  std::string git_sha;
  std::string config_hash;  ///< hash of settings + row identities
  std::string settings;     ///< free-form flag summary, hashed
  double host_wall_seconds = 0.0;
  std::uint64_t engine_events = 0;
  double events_per_second = 0.0;
  std::vector<TrajectoryRow> rows;
};

/// Campaign-lifetime collector: construct at the top of a bench main,
/// add() one row per measured configuration, save() at the end. Wall
/// clock runs from construction to save; engine events are taken
/// from the global counter timed_world feeds.
class Trajectory {
 public:
  explicit Trajectory(std::string area);

  /// Free-form summary of the flags that shaped this campaign
  /// (network, policy, iteration overrides). Part of config_hash, so
  /// bench_compare refuses to diff incompatible campaigns.
  void set_settings(std::string settings);

  void add(const std::string& config, const std::string& metric,
           const std::string& unit, bool higher_is_better,
           const MeasureResult& r);

  /// Deterministic single-shot metric (campaign counts, virtual
  /// recovery times): recorded with n=1 and a zero-width CI.
  void add_scalar(const std::string& config, const std::string& metric,
                  const std::string& unit, bool higher_is_better,
                  double value);

  /// Snapshot with host metrics and config hash filled in.
  [[nodiscard]] TrajectoryFile snapshot() const;

  /// Writes BENCH_<area>.json (redirected into ./results/ when that
  /// directory exists, like Table::save_csv). Returns the path
  /// written, or nullopt on I/O failure.
  std::optional<std::string> save() const;

 private:
  TrajectoryFile file_;
  WallTimer timer_;
  std::uint64_t events_at_start_ = 0;
};

/// Engine scheduling events accumulated by timed_world across every
/// simulated world of the process; the trajectory layer turns the
/// delta into events-per-second.
[[nodiscard]] std::uint64_t& global_engine_events();

/// JSON (de)serialization. parse throws std::runtime_error on
/// malformed input or schema mismatch. Numbers may be `null` (NaN —
/// e.g. the overhead of a degenerate zero baseline).
void write_trajectory_json(std::ostream& os, const TrajectoryFile& file);
[[nodiscard]] TrajectoryFile parse_trajectory_json(std::istream& is);

/// FNV-1a hash (hex) of settings + every row's config/metric/unit —
/// the campaign-shape fingerprint bench_compare matches on.
[[nodiscard]] std::string trajectory_config_hash(const TrajectoryFile& file);

/// Commit SHA of the repo containing the CWD: resolves .git/HEAD
/// (walking up a few parents, following one level of symbolic ref,
/// falling back to packed-refs), or "unknown" outside a checkout.
[[nodiscard]] std::string git_head_sha();

}  // namespace emc::bench
