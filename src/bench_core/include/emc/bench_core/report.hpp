// Console tables and CSV emission for the benchmark binaries — each
// bench prints the same rows/series the paper's tables and figures
// report, plus a machine-readable CSV next to it. Measured cells can
// carry their full MeasureResult; the CSV then grows the rigorous
// reporting columns (<col>_median, <col>_ci95_low, <col>_ci95_high,
// <col>_rel_stddev, <col>_n_runs) after the original columns, so
// existing column content is untouched while every published number
// gains its uncertainty.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "emc/bench_core/methodology.hpp"

namespace emc::bench {

/// Right-aligned fixed-layout console table with a title.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  /// Attaches the measurement behind the @p column cell of the row
  /// added last, scaled by @p scale into the displayed unit (1e-6
  /// for MB/s cells, 1e6 for µs cells, ...). The CSV appends the
  /// median/CI/rel-stddev/n-runs columns for every column that has
  /// at least one attachment; console rendering is unchanged.
  void attach_stats(std::size_t column, const MeasureResult& r,
                    double scale = 1.0);

  /// Renders to @p os with column sizing and a rule under the header.
  void print(std::ostream& os) const;

  /// Comma-separated form (header + rows) for post-processing.
  void write_csv(std::ostream& os) const;

  /// Writes CSV to @p path (creates/truncates). A bare filename is
  /// redirected into ./results/ when that directory exists, so bench
  /// binaries run from the repo root land their CSVs next to the
  /// committed reference outputs instead of littering the CWD.
  /// Returns the path actually written, or nullopt on failure.
  std::optional<std::string> save_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  /// (row, column) -> measurement scaled into the displayed unit.
  std::map<std::pair<std::size_t, std::size_t>, MeasureResult> stats_;
};

/// "1B", "16KB", "2MB" labels the paper uses for message sizes.
[[nodiscard]] std::string size_label(std::size_t bytes);

/// Fixed-precision number formatting helpers. NaN (e.g. the overhead
/// of a degenerate zero baseline) renders as "n/a".
[[nodiscard]] std::string fmt_double(double v, int precision = 2);

/// Throughput in MB/s (decimal MB, as the paper reports).
[[nodiscard]] std::string fmt_mbps(double bytes_per_second,
                                   int precision = 2);

/// Time in microseconds with thousands grouping like the paper tables.
[[nodiscard]] std::string fmt_us(double seconds, int precision = 2);

/// Signed percentage, e.g. "+78.3%"; NaN renders as "n/a".
[[nodiscard]] std::string fmt_percent(double percent, int precision = 1);

/// Parses "1", "16k", "2m", "4MB" etc. into bytes.
[[nodiscard]] std::size_t parse_size(const std::string& text);

}  // namespace emc::bench
