// Minimal --key=value / --flag argument parsing for the bench binaries.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace emc::bench {

class Args {
 public:
  Args(int argc, char** argv);

  /// True when --name was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of --name=value, or @p fallback.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;

  /// Path of --trace=<file>: where a bench writes its Chrome
  /// trace_event JSON (and emits the attribution CSV alongside).
  /// Empty when tracing was not requested.
  [[nodiscard]] std::string trace_path() const { return get("trace", ""); }

  /// Program name (argv[0] basename).
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Unrecognized positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace emc::bench
