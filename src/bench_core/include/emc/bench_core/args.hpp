// Minimal --key=value / --flag argument parsing for the bench binaries.
//
// Parsing is strict where silence would pollute results: an explicitly
// empty value (`--iters=`), a non-numeric or out-of-range numeric
// value (`--iters=abc`, `--iters=12x`), and — once the benchmark has
// declared its flag set via allow_only() — any unknown option
// (`--itres=100`) all terminate the process with a usage message on
// stderr and exit code 2 instead of silently falling back to a
// default and benchmarking the wrong configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace emc::bench {

class Args {
 public:
  Args(int argc, char** argv);

  /// Validates every parsed --option against @p allowed (each
  /// benchmark's flag set); an unknown option is a fatal usage error
  /// that names the bad flag and lists the accepted ones. Call once,
  /// right after construction.
  void allow_only(const std::vector<std::string>& allowed) const;

  /// True when --name was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of --name=value, or @p fallback.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;

  /// Integer value of --name=value, or @p fallback. The whole value
  /// must parse: `--name=abc`, `--name=12x`, and out-of-range values
  /// are fatal usage errors naming the flag.
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;

  /// Floating-point value of --name=value, or @p fallback; same
  /// strictness as get_int.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Path of --trace=<file>: where a bench writes its Chrome
  /// trace_event JSON (and emits the attribution CSV alongside).
  /// Empty when tracing was not requested.
  [[nodiscard]] std::string trace_path() const { return get("trace", ""); }

  /// Program name (argv[0] basename).
  [[nodiscard]] const std::string& program() const { return program_; }

  /// Unrecognized positional arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Prints "<program>: <message>" (plus optional detail lines) to
  /// stderr and exits with status 2. Exposed so benches can reject
  /// semantically invalid flag combinations the same way.
  [[noreturn]] void usage_error(const std::string& message,
                                const std::string& detail = "") const;

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace emc::bench
