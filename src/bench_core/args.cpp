#include "emc/bench_core/args.hpp"

#include <stdexcept>

namespace emc::bench {

Args::Args(int argc, char** argv) {
  if (argc > 0) {
    program_ = argv[0];
    const std::size_t slash = program_.find_last_of('/');
    if (slash != std::string::npos) program_ = program_.substr(slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Args::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() || it->second.empty() ? fallback : it->second;
}

long Args::get_int(const std::string& name, long fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::stol(it->second);
}

}  // namespace emc::bench
