#include "emc/bench_core/args.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace emc::bench {

Args::Args(int argc, char** argv) {
  if (argc > 0) {
    program_ = argv[0];
    const std::size_t slash = program_.find_last_of('/');
    if (slash != std::string::npos) program_ = program_.substr(slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "";
      } else if (eq + 1 == arg.size()) {
        // `--flag=` used to silently fall back to the default — a
        // typo'd value (`--iters= 100` with a stray space) then runs
        // the wrong configuration. Explicitly empty values are fatal.
        usage_error("empty value for --" + arg.substr(2, eq - 2),
                    "pass --" + arg.substr(2, eq - 2) +
                        "=<value>, or omit the flag for the default");
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

void Args::allow_only(const std::vector<std::string>& allowed) const {
  for (const auto& [name, value] : options_) {
    bool known = false;
    for (const std::string& ok : allowed) {
      if (name == ok) {
        known = true;
        break;
      }
    }
    if (known) continue;
    std::ostringstream detail;
    detail << "accepted options:";
    for (const std::string& ok : allowed) detail << " --" << ok;
    usage_error("unknown option --" + name, detail.str());
  }
}

bool Args::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() || it->second.empty() ? fallback : it->second;
}

long Args::get_int(const std::string& name, long fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  try {
    std::size_t idx = 0;
    const long value = std::stol(it->second, &idx);
    if (idx != it->second.size()) {
      usage_error("bad value for --" + name + ": '" + it->second +
                  "' has trailing junk after the number");
    }
    return value;
  } catch (const std::invalid_argument&) {
    usage_error("bad value for --" + name + ": '" + it->second +
                "' is not an integer");
  } catch (const std::out_of_range&) {
    usage_error("bad value for --" + name + ": '" + it->second +
                "' is out of range");
  }
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  try {
    std::size_t idx = 0;
    const double value = std::stod(it->second, &idx);
    if (idx != it->second.size()) {
      usage_error("bad value for --" + name + ": '" + it->second +
                  "' has trailing junk after the number");
    }
    return value;
  } catch (const std::invalid_argument&) {
    usage_error("bad value for --" + name + ": '" + it->second +
                "' is not a number");
  } catch (const std::out_of_range&) {
    usage_error("bad value for --" + name + ": '" + it->second +
                "' is out of range");
  }
}

void Args::usage_error(const std::string& message,
                       const std::string& detail) const {
  std::cerr << (program_.empty() ? "bench" : program_) << ": " << message
            << "\n";
  if (!detail.empty()) std::cerr << "  " << detail << "\n";
  std::exit(2);
}

}  // namespace emc::bench
