#include "emc/bench_core/methodology.hpp"

#include <cmath>

namespace emc::bench {

MeasureResult run_until_stable(const std::function<double()>& sample,
                               const StabilityPolicy& policy) {
  RunningStats stats;

  const auto stddev_ok = [&] {
    return stats.rel_stddev() <= policy.target_rel_stddev;
  };
  const auto ci_ok = [&] {
    return stats.mean() != 0.0 &&
           stats.ci_halfwidth(policy.fallback_confidence) <=
               policy.target_rel_stddev * std::abs(stats.mean());
  };

  // Phase 1: min..max runs with the stddev criterion.
  while (stats.count() < policy.max_runs) {
    stats.add(sample());
    if (stats.count() >= policy.min_runs && stddev_ok()) {
      return MeasureResult{stats.mean(), stats.stddev(), stats.count(), true};
    }
  }
  // Phase 2: extend until the confidence interval tightens.
  while (stats.count() < policy.hard_cap) {
    if (ci_ok()) {
      return MeasureResult{stats.mean(), stats.stddev(), stats.count(), true};
    }
    stats.add(sample());
  }
  return MeasureResult{stats.mean(), stats.stddev(), stats.count(), ci_ok()};
}

double overhead_percent(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (value - baseline) / baseline;
}

}  // namespace emc::bench
