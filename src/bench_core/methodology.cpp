#include "emc/bench_core/methodology.hpp"

#include <cmath>
#include <limits>

namespace emc::bench {

namespace {

/// splitmix64 finalizer — the same mix mpi::run_perturbed applies to
/// derive perturbation salts (bench_core cannot link the mpi layer,
/// so the constants are replicated; verifier_test pins them).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

MeasureResult finish(const RunningStats& stats, bool stable) {
  MeasureResult r;
  r.mean = stats.mean();
  r.stddev = stats.stddev();
  r.median = stats.median();
  const Interval ci = stats.median_ci(0.95);
  r.ci95_low = ci.low;
  r.ci95_high = ci.high;
  r.rel_stddev = stats.rel_stddev();
  r.runs = stats.count();
  r.stable = stable;
  return r;
}

}  // namespace

std::uint64_t SaltSchedule::salt_for(std::size_t run) const noexcept {
  if (salts < 2) return 0;
  const std::size_t slot = run % salts;
  return slot == 0 ? 0 : mix64(seed + static_cast<std::uint64_t>(slot));
}

MeasureResult MeasureResult::single(double value) {
  MeasureResult r;
  r.mean = r.median = r.ci95_low = r.ci95_high = value;
  r.runs = 1;
  r.stable = true;
  return r;
}

MeasureResult run_schedule(
    const std::function<double(std::uint64_t salt)>& sample,
    const StabilityPolicy& policy, const SaltSchedule& schedule) {
  RunningStats stats;

  const auto stddev_ok = [&] {
    return stats.rel_stddev() <= policy.target_rel_stddev;
  };
  const auto ci_ok = [&] {
    return stats.mean() != 0.0 &&
           stats.ci_halfwidth(policy.fallback_confidence) <=
               policy.target_rel_stddev * std::abs(stats.mean());
  };
  const auto draw = [&] { stats.add(sample(schedule.salt_for(stats.count()))); };

  // Phase 1: min..max runs with the stddev criterion.
  while (stats.count() < policy.max_runs) {
    draw();
    if (stats.count() >= policy.min_runs && stddev_ok()) {
      return finish(stats, true);
    }
  }
  // Phase 2: extend until the confidence interval tightens.
  while (stats.count() < policy.hard_cap) {
    if (ci_ok()) return finish(stats, true);
    draw();
  }
  return finish(stats, ci_ok());
}

MeasureResult run_until_stable(const std::function<double()>& sample,
                               const StabilityPolicy& policy) {
  return run_schedule([&sample](std::uint64_t) { return sample(); }, policy,
                      SaltSchedule{.salts = 1, .seed = 0});
}

double overhead_percent(double baseline, double value) {
  if (baseline == 0.0) return std::numeric_limits<double>::quiet_NaN();
  return 100.0 * (value - baseline) / baseline;
}

}  // namespace emc::bench
